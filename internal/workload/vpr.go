package workload

import (
	"repro/internal/asm"
	"repro/internal/isa"
)

type vprParams struct {
	Cells    int // placement cells (power of two)
	Window   int
	Windows  int
	SeqIters int
}

func vprDefaults(scale int) vprParams {
	return vprParams{
		Cells:    16384, // 128 KB placement
		Window:   16,
		Windows:  24 * scale,
		SeqIters: 850,
	}
}

// Vpr returns the 175.vpr stand-in: placement-swap cost evaluation. Each
// iteration derives two pseudo-random cells, reads their (packed x,y)
// positions and a neighbour each, and computes a wirelength-style cost
// through a long chain of ALU operations. Iterations are short and
// ALU-bound with little memory traffic, so — as the paper observes for vpr
// — thread-level parallelism barely pays and fork overhead can make the
// parallel machine slower than a wide superscalar.
func Vpr() *Workload {
	return &Workload{
		Name:  "175.vpr",
		Short: "vpr",
		Suite: "SPEC2000/INT",
		Build: func(scale int) (*isa.Program, error) { return vprBuild(vprDefaults(scale)) },
	}
}

func vprData(p vprParams) (pos, delay []int64) {
	r := newRNG(175)
	pos = make([]int64, p.Cells)
	for i := range pos {
		pos[i] = int64(r.intn(1024))<<32 | int64(r.intn(1024))
	}
	// Hot delay lookup table (timing cost per wirelength bucket).
	delay = make([]int64, 256)
	for i := range delay {
		delay[i] = int64(i + r.intn(7))
	}
	return pos, delay
}

const vprMix = 0x2545F4914F6CDD1D

// vprDerive mirrors the assembly's cell-index derivation: cell a is local
// to a region that drifts with the move number (annealers perturb within a
// neighbourhood), cell b is fully random.
func vprDerive(i int64, cells int) (a, b int64) {
	m := i * vprMix
	a = (i*4 + ((m >> 17) & 63)) & int64(cells-1)
	m2 := (m ^ (m >> 29)) * 0x5851F42D
	b = (m2 >> 13) & int64(cells-1)
	return a, b
}

func absI64(v int64) int64 {
	s := v >> 63
	return (v ^ s) - s
}

// VprReference computes the expected out[] array of move costs.
func VprReference(scale int) []int64 {
	p := vprDefaults(scale)
	pos, delay := vprData(p)
	n := p.Windows * p.Window
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		a, b := vprDerive(int64(i), p.Cells)
		pa, pb := pos[a], pos[b]
		na, nb := pos[a^1], pos[b^1]
		xa, ya := pa>>32, pa&0xFFFFFFFF
		xb, yb := pb>>32, pb&0xFFFFFFFF
		xna, yna := na>>32, na&0xFFFFFFFF
		xnb, ynb := nb>>32, nb&0xFFFFFFFF
		before := absI64(xa-xna) + absI64(ya-yna) + absI64(xb-xnb) + absI64(yb-ynb)
		after := absI64(xb-xna) + absI64(yb-yna) + absI64(xa-xnb) + absI64(ya-ynb)
		out[i] = before*3 - after*2 + delay[before&255] - delay[after&255]
	}
	return out
}

func vprBuild(p vprParams) (*isa.Program, error) {
	b := asm.New()
	pos, delay := vprData(p)
	posArr := b.Alloc("pos", 8*p.Cells, 64)
	delayArr := b.Alloc("delay", 8*len(delay), 64)
	for i, v := range delay {
		b.InitWord(delayArr+uint64(8*i), v)
	}
	n := p.Windows * p.Window
	outArr := b.Alloc("out", 8*(n+Slack), 64)
	scratch := b.Alloc("scratch", 8*128, 64)
	result := b.Alloc("result", 8, 0)
	for i, v := range pos {
		b.InitWord(posArr+uint64(8*i), v)
	}

	b.Li(4, int64(posArr))
	b.Li(5, int64(outArr))
	b.Li(6, vprMix)
	b.Li(7, 0x5851F42D)
	b.Li(8, int64(p.Cells-1))
	b.Li(3, int64(delayArr))
	b.Li(21, 0)
	b.Li(22, int64(p.Windows))
	b.Li(23, int64(p.Window))

	// emitAbs computes |dst| in place using the sign-mask identity;
	// clobbers tmp.
	emitAbs := func(dst, tmp int) {
		b.OpI(isa.SRAI, tmp, dst, 63)
		b.Op3(isa.XOR, dst, dst, tmp)
		b.Op3(isa.SUB, dst, dst, tmp)
	}
	// emitXY splits packed position src into x (dstX) and y (dstY).
	emitXY := func(dstX, dstY, src int) {
		b.OpI(isa.SRAI, dstX, src, 32)
		b.OpI(isa.SLLI, dstY, src, 32)
		b.OpI(isa.SRLI, dstY, dstY, 32)
	}

	b.Label("vpr_outer")
	emitSeqWork(b, "vpr_seq", scratch, p.SeqIters)
	b.Op3(isa.MUL, regI, 21, 23)
	b.Op3(isa.ADD, regEnd, regI, 23)
	emitRegion(b, regionSpec{
		name: "vpr",
		mask: []int{1, 2, 3, 4, 5, 6, 7, 8, 21, 22, 23},
		body: func() {
			// Derive cells a (r10) and b (r11) from the iteration index.
			b.Op3(isa.MUL, 12, 9, 6) // m = i*mix
			b.OpI(isa.SRAI, 10, 12, 17)
			b.OpI(isa.ANDI, 10, 10, 63)
			b.OpI(isa.SLLI, 13, 9, 2)
			b.Op3(isa.ADD, 10, 10, 13)
			b.Op3(isa.AND, 10, 10, 8) // a
			b.OpI(isa.SRAI, 13, 12, 29)
			b.Op3(isa.XOR, 13, 13, 12)
			b.Op3(isa.MUL, 13, 13, 7) // m2
			b.OpI(isa.SRAI, 11, 13, 13)
			b.Op3(isa.AND, 11, 11, 8) // b
			// Load pos[a], pos[b], pos[a^1], pos[b^1].
			b.OpI(isa.SLLI, 12, 10, 3)
			b.Op3(isa.ADD, 12, 12, 4)
			b.Ld(14, 0, 12) // pa
			b.OpI(isa.XORI, 13, 10, 1)
			b.OpI(isa.SLLI, 13, 13, 3)
			b.Op3(isa.ADD, 13, 13, 4)
			b.Ld(15, 0, 13) // na
			b.OpI(isa.SLLI, 12, 11, 3)
			b.Op3(isa.ADD, 12, 12, 4)
			b.Ld(16, 0, 12) // pb
			b.OpI(isa.XORI, 13, 11, 1)
			b.OpI(isa.SLLI, 13, 13, 3)
			b.Op3(isa.ADD, 13, 13, 4)
			b.Ld(17, 0, 13) // nb
			// Unpack: xa,ya (r10,r11 reused), xna,yna (r12,r13),
			// xb,yb (r18,r19), xnb,ynb (r20,r15 reuse after).
			emitXY(10, 11, 14)
			emitXY(12, 13, 15)
			emitXY(18, 19, 16)
			emitXY(20, 15, 17) // xnb=r20, ynb=r15
			// before = |xa-xna|+|ya-yna|+|xb-xnb|+|yb-ynb| into r16.
			b.Op3(isa.SUB, 14, 10, 12)
			emitAbs(14, 17)
			b.Op3(isa.SUB, 16, 11, 13)
			emitAbs(16, 17)
			b.Op3(isa.ADD, 16, 16, 14)
			b.Op3(isa.SUB, 14, 18, 20)
			emitAbs(14, 17)
			b.Op3(isa.ADD, 16, 16, 14)
			b.Op3(isa.SUB, 14, 19, 15)
			emitAbs(14, 17)
			b.Op3(isa.ADD, 16, 16, 14)
			// after = |xb-xna|+|yb-yna|+|xa-xnb|+|ya-ynb| into r14.
			b.Op3(isa.SUB, 14, 18, 12)
			emitAbs(14, 17)
			b.Op3(isa.SUB, 18, 19, 13)
			emitAbs(18, 17)
			b.Op3(isa.ADD, 14, 14, 18)
			b.Op3(isa.SUB, 18, 10, 20)
			emitAbs(18, 17)
			b.Op3(isa.ADD, 14, 14, 18)
			b.Op3(isa.SUB, 18, 11, 15)
			emitAbs(18, 17)
			b.Op3(isa.ADD, 14, 14, 18)
			// cost = before*3 - after*2 + delay[before&255] - delay[after&255]
			b.OpI(isa.ANDI, 12, 16, 255)
			b.OpI(isa.SLLI, 12, 12, 3)
			b.Op3(isa.ADD, 12, 12, 3)
			b.Ld(12, 0, 12)
			b.OpI(isa.ANDI, 13, 14, 255)
			b.OpI(isa.SLLI, 13, 13, 3)
			b.Op3(isa.ADD, 13, 13, 3)
			b.Ld(13, 0, 13)
			b.Li(17, 3)
			b.Op3(isa.MUL, 16, 16, 17)
			b.Li(17, 2)
			b.Op3(isa.MUL, 14, 14, 17)
			b.Op3(isa.SUB, 16, 16, 14)
			b.Op3(isa.ADD, 16, 16, 12)
			b.Op3(isa.SUB, 16, 16, 13)
			// out[i] = cost
			b.OpI(isa.SLLI, 17, 9, 3)
			b.Op3(isa.ADD, 17, 17, 5)
			b.St(16, 0, 17)
		},
	})
	b.OpI(isa.ADDI, 21, 21, 1)
	b.Br(isa.BLT, 21, 22, "vpr_outer")

	emitReduce(b, "vpr_red", outArr, n, 1, result)
	b.Halt()
	return b.Build()
}
