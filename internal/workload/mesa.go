package workload

import (
	"repro/internal/asm"
	"repro/internal/isa"
)

type mesaParams struct {
	Window      int // tiles per parallel region
	Windows     int
	Tile        int // pixels per tile (per iteration)
	SeqIters    int
	TexSamples  int // texels filtered per tile (a sliding window)
	AtlasDrift  int // atlas-region drift per tile (texels)
	AtlasSpread int // atlas-region jitter (texels)
}

func mesaDefaults(scale int) mesaParams {
	return mesaParams{
		Window:      16,
		Windows:     96 * scale,
		Tile:        4, // half a cache block: adjacent iterations share blocks
		SeqIters:    600,
		TexSamples:  16,
		AtlasDrift:  4,
		AtlasSpread: 8,
	}
}

// Mesa returns the 177.mesa stand-in: a software pixel pipeline streaming a
// texture into a framebuffer with a blend. The access pattern is perfectly
// regular, so next-line effects (NLP and the WEC's next-line prefetch)
// dominate — matching the paper's report of the largest miss-count
// reduction on mesa.
func Mesa() *Workload {
	return &Workload{
		Name:  "177.mesa",
		Short: "mesa",
		Suite: "SPEC2000/FP",
		Build: func(scale int) (*isa.Program, error) { return mesaBuild(mesaDefaults(scale)) },
	}
}

func mesaData(p mesaParams) (tex, fb []int64, atlas []int64, gamma []int64) {
	r := newRNG(177)
	tiles := p.Windows*p.Window + Slack
	pixels := tiles * p.Tile
	texels := tiles*p.AtlasDrift + p.AtlasSpread + p.TexSamples + 8
	tex = make([]int64, texels)
	fb = make([]int64, pixels)
	for i := range tex {
		tex[i] = int64(r.intn(1 << 24))
	}
	for i := range fb {
		fb[i] = int64(r.intn(1 << 24))
	}
	// Texture filtering over a sliding atlas window: each tile samples
	// TexSamples texels starting near tile*AtlasDrift, so adjacent tiles
	// filter heavily overlapping texel runs — a wrong thread's sampling
	// prefetches most of the window its TU's next correct tile needs.
	atlas = make([]int64, tiles)
	for t := range atlas {
		base := t*p.AtlasDrift + r.intn(p.AtlasSpread)
		atlas[t] = int64(8 * base)
	}
	// Hot gamma/colormap table applied to every filtered value.
	gamma = make([]int64, 256)
	for i := range gamma {
		gamma[i] = int64((i*i)>>4) + int64(r.intn(3))
	}
	return tex, fb, atlas, gamma
}

// MesaReference computes the expected framebuffer contents.
func MesaReference(scale int) []int64 {
	p := mesaDefaults(scale)
	tex, fb, atlas, gamma := mesaData(p)
	out := make([]int64, len(fb))
	copy(out, fb)
	tiles := p.Windows * p.Window
	for t := 0; t < tiles; t++ {
		texBase := int(atlas[t] / 8)
		var tsum int64
		for k := 0; k < p.TexSamples; k++ {
			tsum += tex[texBase+k]
		}
		avg := gamma[(tsum>>4)&255]
		for k := 0; k < p.Tile; k++ {
			i := t*p.Tile + k
			// blend: fb = (3*fb + gamma-corrected filter) >> 2
			out[i] = (3*out[i] + avg) >> 2
		}
	}
	return out
}

func mesaBuild(p mesaParams) (*isa.Program, error) {
	b := asm.New()
	tex, fb, atlas, gamma := mesaData(p)
	texArr := b.Alloc("tex", 8*len(tex), 64)
	fbArr := b.Alloc("fb", 8*len(fb), 64)
	atlasArr := b.Alloc("atlas", 8*len(atlas), 64)
	gammaArr := b.Alloc("gamma", 8*len(gamma), 64)
	scratch := b.Alloc("scratch", 8*128, 64)
	result := b.Alloc("result", 8, 0)
	for i, v := range tex {
		b.InitWord(texArr+uint64(8*i), v)
	}
	for i, v := range fb {
		b.InitWord(fbArr+uint64(8*i), v)
	}
	for i, v := range atlas {
		b.InitWord(atlasArr+uint64(8*i), v)
	}
	for i, v := range gamma {
		b.InitWord(gammaArr+uint64(8*i), v)
	}

	b.Li(4, int64(texArr))
	b.Li(5, int64(fbArr))
	b.Li(6, int64(p.Tile))
	b.Li(7, int64(atlasArr))
	b.Li(8, int64(p.TexSamples))
	b.Li(3, int64(gammaArr))
	b.Li(21, 0)
	b.Li(22, int64(p.Windows))
	b.Li(23, int64(p.Window))

	b.Label("mesa_outer")
	emitSeqWork(b, "mesa_seq", scratch, p.SeqIters)
	b.Op3(isa.MUL, regI, 21, 23)
	b.Op3(isa.ADD, regEnd, regI, 23)
	emitRegion(b, regionSpec{
		name: "mesa",
		mask: []int{1, 2, 3, 4, 5, 6, 7, 8, 21, 22, 23},
		body: func() {
			// Tile base: i*Tile*8 bytes; texture window through the atlas.
			b.Op3(isa.MUL, 10, 9, 6)
			b.OpI(isa.SLLI, 10, 10, 3)
			b.OpI(isa.SLLI, 11, 9, 3)
			b.Op3(isa.ADD, 11, 11, 7)
			b.Ld(11, 0, 11)           // atlas[t]: texture byte offset
			b.Op3(isa.ADD, 11, 11, 4) // tex ptr
			b.Op3(isa.ADD, 12, 10, 5) // fb ptr
			// Filter: sum TexSamples texels.
			b.Li(13, 0) // k
			b.Li(14, 0) // tsum
			b.Label("mesa_tx")
			b.Ld(15, 0, 11)
			b.Op3(isa.ADD, 14, 14, 15)
			b.OpI(isa.ADDI, 11, 11, 8)
			b.OpI(isa.ADDI, 13, 13, 1)
			b.Br(isa.BLT, 13, 8, "mesa_tx")
			b.OpI(isa.SRAI, 14, 14, 4)
			// Hot gamma lookup: gamma[avg & 255].
			b.OpI(isa.ANDI, 14, 14, 255)
			b.OpI(isa.SLLI, 14, 14, 3)
			b.Op3(isa.ADD, 14, 14, 3)
			b.Ld(14, 0, 14)
			// Blend the tile's pixels with the corrected value.
			b.Li(13, 0)
			b.Label("mesa_px")
			b.Ld(15, 0, 12) // fb pixel
			// fb = (3*fb + avg) >> 2
			b.OpI(isa.SLLI, 16, 15, 1)
			b.Op3(isa.ADD, 16, 16, 15)
			b.Op3(isa.ADD, 16, 16, 14)
			b.OpI(isa.SRAI, 16, 16, 2)
			b.St(16, 0, 12)
			b.OpI(isa.ADDI, 12, 12, 8)
			b.OpI(isa.ADDI, 13, 13, 1)
			b.Br(isa.BLT, 13, 6, "mesa_px")
		},
	})
	b.OpI(isa.ADDI, 21, 21, 1)
	b.Br(isa.BLT, 21, 22, "mesa_outer")

	emitReduce(b, "mesa_red", fbArr, p.Windows*p.Window*p.Tile, 64, result)
	b.Halt()
	return b.Build()
}
