package workload

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/mem"
	"repro/internal/sta"
)

// machineCfg builds an sta config for the given TU count and variant.
func machineCfg(tus int, mut func(*sta.Config)) sta.Config {
	cfg := sta.DefaultConfig()
	cfg.NumTUs = tus
	cfg.MaxCycles = 200_000_000
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}

// TestMachineMatchesInterp is the load-bearing integration test: every
// kernel, on a parallel machine in both the baseline and the full
// wrong-execution + WEC configuration, must produce the interpreter's exact
// architectural memory image.
func TestMachineMatchesInterp(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine workload runs are slow")
	}
	for _, w := range All() {
		w := w
		t.Run(w.Short, func(t *testing.T) {
			t.Parallel()
			p, err := w.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := interp.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, variant := range []string{"orig", "wec"} {
				cfg := machineCfg(4, nil)
				if variant == "wec" {
					cfg.WrongThreadExec = true
					cfg.Core.WrongPathExec = true
					cfg.Mem.Side = mem.SideWEC
				}
				m, err := sta.New(cfg, p)
				if err != nil {
					t.Fatal(err)
				}
				r, err := m.Run()
				if err != nil {
					t.Fatalf("%s/%s: %v", w.Short, variant, err)
				}
				if r.MemCheck != ref.MemCheck {
					t.Errorf("%s/%s: machine checksum %#x, interp %#x",
						w.Short, variant, r.MemCheck, ref.MemCheck)
				}
			}
		})
	}
}
