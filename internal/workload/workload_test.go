package workload

import (
	"math"
	"testing"

	"repro/internal/interp"
	"repro/internal/isa"
	"repro/internal/memimg"
)

func runInterp(t *testing.T, w *Workload, scale int) (*isa.Program, *interp.Result) {
	t.Helper()
	p, err := w.Build(scale)
	if err != nil {
		t.Fatal(err)
	}
	r, err := interp.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, r
}

func words(img *memimg.Image, base uint64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = img.ReadWord(base + uint64(8*i))
	}
	return out
}

func TestAllWorkloadsBuildAndRun(t *testing.T) {
	for _, w := range All() {
		t.Run(w.Short, func(t *testing.T) {
			p, r := runInterp(t, w, 1)
			if r.Insts < 10000 {
				t.Errorf("%s: only %d dynamic instructions", w.Short, r.Insts)
			}
			if r.Forks == 0 {
				t.Errorf("%s: no forks — parallel region missing", w.Short)
			}
			if r.MemCheck == 0 {
				t.Errorf("%s: zero memory checksum", w.Short)
			}
			if _, ok := p.Symbols["result"]; !ok {
				t.Errorf("%s: missing result symbol", w.Short)
			}
			res := r.Mem.ReadWord(uint64(p.Symbols["result"]))
			if res == 0 {
				t.Errorf("%s: result is zero (kernel likely computing nothing)", w.Short)
			}
		})
	}
}

func TestMcfReference(t *testing.T) {
	w := Mcf()
	p, r := runInterp(t, w, 1)
	want := McfReference(1)
	got := words(r.Mem, uint64(p.Symbols["out"]), len(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out[%d] = %d, reference %d", i, got[i], want[i])
		}
	}
}

func TestParserReference(t *testing.T) {
	w := Parser()
	p, r := runInterp(t, w, 1)
	want := ParserReference(1)
	got := words(r.Mem, uint64(p.Symbols["out"]), len(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out[%d] = %d, reference %d", i, got[i], want[i])
		}
	}
}

func TestMesaReference(t *testing.T) {
	w := Mesa()
	p, r := runInterp(t, w, 1)
	want := MesaReference(1)
	n := mesaDefaults(1).Windows * mesaDefaults(1).Window * mesaDefaults(1).Tile
	got := words(r.Mem, uint64(p.Symbols["fb"]), n)
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			t.Fatalf("fb[%d] = %d, reference %d", i, got[i], want[i])
		}
	}
}

func TestGzipReference(t *testing.T) {
	w := Gzip()
	p, r := runInterp(t, w, 1)
	want := GzipReference(1)
	got := words(r.Mem, uint64(p.Symbols["out"]), len(want))
	nonzero := 0
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out[%d] = %d, reference %d", i, got[i], want[i])
		}
		if want[i] > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("gzip never found a match; data not text-like enough")
	}
}

func TestVprReference(t *testing.T) {
	w := Vpr()
	p, r := runInterp(t, w, 1)
	want := VprReference(1)
	got := words(r.Mem, uint64(p.Symbols["out"]), len(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out[%d] = %d, reference %d", i, got[i], want[i])
		}
	}
}

func TestEquakeReference(t *testing.T) {
	w := Equake()
	p, r := runInterp(t, w, 1)
	want := EquakeReference(1)
	base := uint64(p.Symbols["y"])
	for i := range want {
		got := r.Mem.ReadFloat(base + uint64(8*i))
		if got != want[i] {
			t.Fatalf("y[%d] = %g, reference %g", i, got, want[i])
		}
	}
	// The result word is the truncated sum.
	res := r.Mem.ReadWord(uint64(p.Symbols["result"]))
	if res != equakeSum(want) {
		t.Errorf("result = %d, reference %d", res, equakeSum(want))
	}
}

func TestParallelFractions(t *testing.T) {
	// Table 2 calibration bands: fractions need not be exact, but each
	// kernel must land in the neighbourhood of its SPEC counterpart.
	bands := map[string][2]float64{
		"vpr":    {0.04, 0.16}, // paper: 8.6%
		"gzip":   {0.08, 0.26}, // 15.7%
		"mcf":    {0.24, 0.50}, // 36.1%
		"parser": {0.09, 0.28}, // 17.2%
		"equake": {0.12, 0.33}, // 21.3%
		"mesa":   {0.09, 0.28}, // 17.3%
	}
	for _, w := range All() {
		t.Run(w.Short, func(t *testing.T) {
			_, r := runInterp(t, w, 1)
			frac := float64(r.ParInsts) / float64(r.Insts)
			band := bands[w.Short]
			if frac < band[0] || frac > band[1] {
				t.Errorf("%s: parallel fraction %.1f%% outside band [%.0f%%, %.0f%%]",
					w.Short, frac*100, band[0]*100, band[1]*100)
			}
		})
	}
}

func TestScaleGrowsWork(t *testing.T) {
	_, r1 := runInterp(t, Mcf(), 1)
	_, r2 := runInterp(t, Mcf(), 2)
	if r2.Insts <= r1.Insts {
		t.Errorf("scale 2 (%d insts) not larger than scale 1 (%d)", r2.Insts, r1.Insts)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("mcf"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("181.mcf"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := newRNG(7), newRNG(7)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	if newRNG(0).next() == 0 {
		t.Error("zero seed not remapped")
	}
}

func TestAbsHelper(t *testing.T) {
	for _, v := range []int64{0, 1, -1, math.MaxInt64, -5} {
		want := v
		if want < 0 {
			want = -want
		}
		if absI64(v) != want {
			t.Errorf("absI64(%d) = %d", v, absI64(v))
		}
	}
}
