package workload

import (
	"repro/internal/asm"
	"repro/internal/isa"
)

type gzipParams struct {
	BufWords int // input buffer size in 8-byte words
	HashBits int // hash table of 1<<HashBits entries
	Window   int // match positions per parallel region
	Stride   int // words between consecutive match positions
	Windows  int
	CmpLen   int // words compared per candidate
	SeqIters int
}

func gzipDefaults(scale int) gzipParams {
	return gzipParams{
		BufWords: 32768, // 256 KB input
		HashBits: 12,
		Window:   16,
		Stride:   2, // adjacent match positions share cache blocks
		Windows:  24 * scale,
		CmpLen:   4,
		SeqIters: 410,
	}
}

// Gzip returns the 164.gzip stand-in: LZ-style dictionary matching. Each
// window first rebuilds a hash table over its positions sequentially (the
// deflate dictionary from the previous block), then a parallel region
// matches the window's positions against candidates found through the
// table — scattered reads through the hash plus local window compares.
func Gzip() *Workload {
	return &Workload{
		Name:  "164.gzip",
		Short: "gzip",
		Suite: "SPEC2000/INT",
		Build: func(scale int) (*isa.Program, error) { return gzipBuild(gzipDefaults(scale)) },
	}
}

// gzipHashMul is the 64-bit Fibonacci-hash multiplier (kept in a variable
// so its int64 view can be materialized without constant overflow).
var gzipHashMul uint64 = 0x9E3779B97F4A7C15

func gzipHash(v int64, bits int) int64 {
	return int64((uint64(v) * gzipHashMul) >> (64 - uint(bits)))
}

func gzipData(p gzipParams) []int64 {
	r := newRNG(164)
	buf := make([]int64, p.BufWords)
	// Text-like data: values drawn from a small alphabet with repeated
	// phrases so matches actually occur.
	phrase := make([]int64, 64)
	for i := range phrase {
		phrase[i] = int64(r.intn(256))
	}
	for i := range buf {
		if r.intn(4) == 0 {
			buf[i] = int64(r.intn(256))
		} else {
			buf[i] = phrase[(i+r.intn(8))%len(phrase)]
		}
	}
	return buf
}

// GzipReference computes the expected out[] (match lengths).
func GzipReference(scale int) []int64 {
	p := gzipDefaults(scale)
	buf := gzipData(p)
	hashSize := 1 << p.HashBits
	h := make([]int64, hashSize) // byte offsets into buf, 0 = "points at word 0"
	n := p.Windows * p.Window
	out := make([]int64, n)
	for w := 0; w < p.Windows; w++ {
		// Sequential phase: insert this window's positions into the table.
		for i := w * p.Window; i < (w+1)*p.Window; i++ {
			pw := i * p.Stride
			h[gzipHash(buf[pw], p.HashBits)] = int64(8 * pw)
		}
		// Parallel phase: match each position against its candidate.
		for i := w * p.Window; i < (w+1)*p.Window; i++ {
			pw := i * p.Stride
			cand := h[gzipHash(buf[pw], p.HashBits)] / 8
			var length int64
			for k := 0; k < p.CmpLen; k++ {
				if buf[int(cand)+k] != buf[pw+k] {
					break
				}
				length++
			}
			out[i] = length
		}
	}
	return out
}

func gzipBuild(p gzipParams) (*isa.Program, error) {
	b := asm.New()
	buf := gzipData(p)
	bufArr := b.Alloc("buf", 8*(len(buf)+Slack*p.Stride+p.CmpLen), 64)
	hashSize := 1 << p.HashBits
	hArr := b.Alloc("hash", 8*hashSize, 64)
	n := p.Windows * p.Window
	outArr := b.Alloc("out", 8*(n+Slack), 64)
	scratch := b.Alloc("scratch", 8*128, 64)
	result := b.Alloc("result", 8, 0)
	for i, v := range buf {
		b.InitWord(bufArr+uint64(8*i), v)
	}

	b.Li(4, int64(bufArr))
	b.Li(5, int64(hArr))
	b.Li(6, int64(outArr))
	b.Li(7, int64(gzipHashMul)) // hash multiplier (full 64-bit immediate)
	b.Li(8, int64(p.CmpLen))
	b.Li(21, 0)
	b.Li(22, int64(p.Windows))
	b.Li(23, int64(p.Window))
	b.Li(24, int64(p.Stride))

	// emitHash computes h = ((v * mul) >>u (64-bits)) * 8 + hArr into reg
	// dst, with v in reg src. Clobbers dst only.
	emitHashAddr := func(dst, src int) {
		b.Op3(isa.MUL, dst, src, 7)
		b.OpI(isa.SRLI, dst, dst, int64(64-p.HashBits))
		b.OpI(isa.SLLI, dst, dst, 3)
		b.Op3(isa.ADD, dst, dst, 5)
	}

	b.Label("gz_outer")
	emitSeqWork(b, "gz_seq", scratch, p.SeqIters)
	// Sequential dictionary insert for this window's positions.
	b.Op3(isa.MUL, 10, 21, 23) // i = w*Window
	b.Op3(isa.ADD, 11, 10, 23) // end
	b.Label("gz_ins")
	b.Op3(isa.MUL, 12, 10, 24) // pw = i*Stride (words)
	b.OpI(isa.SLLI, 12, 12, 3) // byte offset
	b.Op3(isa.ADD, 13, 12, 4)  // &buf[pw]
	b.Ld(14, 0, 13)            // v = buf[pw]
	emitHashAddr(15, 14)
	b.St(12, 0, 15) // h[hash] = byte offset of pw
	b.OpI(isa.ADDI, 10, 10, 1)
	b.Br(isa.BLT, 10, 11, "gz_ins")

	b.Op3(isa.MUL, regI, 21, 23)
	b.Op3(isa.ADD, regEnd, regI, 23)
	emitRegion(b, regionSpec{
		name: "gz",
		mask: []int{1, 2, 4, 5, 6, 7, 8, 21, 22, 23, 24},
		body: func() {
			b.Op3(isa.MUL, 10, 9, 24) // pw (words)
			b.OpI(isa.SLLI, 10, 10, 3)
			b.Op3(isa.ADD, 10, 10, 4) // &buf[pw]
			b.Ld(11, 0, 10)           // v
			emitHashAddr(12, 11)
			b.Ld(13, 0, 12)           // candidate byte offset
			b.Op3(isa.ADD, 13, 13, 4) // &buf[cand]
			b.Li(14, 0)               // len
			b.Label("gz_cmp")
			b.Ld(15, 0, 13)
			b.Ld(16, 0, 10)
			b.Br(isa.BNE, 15, 16, "gz_done")
			b.OpI(isa.ADDI, 14, 14, 1)
			b.OpI(isa.ADDI, 13, 13, 8)
			b.OpI(isa.ADDI, 10, 10, 8)
			b.Br(isa.BLT, 14, 8, "gz_cmp")
			b.Label("gz_done")
			b.OpI(isa.SLLI, 17, 9, 3)
			b.Op3(isa.ADD, 17, 17, 6)
			b.St(14, 0, 17) // out[i] = len
		},
	})
	b.OpI(isa.ADDI, 21, 21, 1)
	b.Br(isa.BLT, 21, 22, "gz_outer")

	emitReduce(b, "gz_red", outArr, n, 1, result)
	b.Halt()
	return b.Build()
}
