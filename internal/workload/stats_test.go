package workload

import (
	"testing"

	"repro/internal/isa"
)

// TestKernelsUseSTAPrimitivesProperly statically inspects every kernel's
// binary: exactly one FORK per region body, a TSAGD between fork and the
// first load of each body, and an ABORT on the exit path.
func TestKernelsUseSTAPrimitivesProperly(t *testing.T) {
	for _, w := range All() {
		t.Run(w.Short, func(t *testing.T) {
			p, err := w.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			var forks, tsagds, aborts, thends, begins int
			for _, in := range p.Insts {
				switch in.Op {
				case isa.FORK:
					forks++
				case isa.TSAGD:
					tsagds++
				case isa.ABORT:
					aborts++
				case isa.THEND:
					thends++
				case isa.BEGIN:
					begins++
				}
			}
			if begins != 1 || forks != 1 || tsagds != 1 || aborts != 1 || thends != 1 {
				t.Errorf("STA ops: begin=%d fork=%d tsagd=%d abort=%d thend=%d (each static op should appear once)",
					begins, forks, tsagds, aborts, thends)
			}
			// Every FORK targets an instruction, in range.
			for _, in := range p.Insts {
				if in.Op == isa.FORK && (in.Imm < 0 || in.Imm >= int64(len(p.Insts))) {
					t.Errorf("fork target %d out of range", in.Imm)
				}
			}
		})
	}
}

// TestKernelMemoryAccessesAligned: every static memory instruction uses an
// 8-byte-aligned displacement, the workload discipline that makes exact
// store-to-load forwarding sufficient.
func TestKernelMemoryAccessesAligned(t *testing.T) {
	for _, w := range All() {
		t.Run(w.Short, func(t *testing.T) {
			p, err := w.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			for pc, in := range p.Insts {
				if in.Op.IsMem() && in.Imm%8 != 0 {
					t.Errorf("pc %d: %v has unaligned displacement %d", pc, in, in.Imm)
				}
			}
		})
	}
}

// TestKernelDataSymbols: every kernel exports the symbols the tests and
// tools rely on.
func TestKernelDataSymbols(t *testing.T) {
	for _, w := range All() {
		p, err := w.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := p.Symbols["result"]; !ok {
			t.Errorf("%s: missing result symbol", w.Short)
		}
		if _, ok := p.Symbols["scratch"]; !ok {
			t.Errorf("%s: missing scratch symbol", w.Short)
		}
	}
}

// TestWorkloadsDeterministic: building twice yields identical programs.
func TestWorkloadsDeterministic(t *testing.T) {
	for _, w := range All() {
		p1, err := w.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := w.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(p1.Insts) != len(p2.Insts) {
			t.Fatalf("%s: nondeterministic instruction count", w.Short)
		}
		for i := range p1.Insts {
			if p1.Insts[i] != p2.Insts[i] {
				t.Fatalf("%s: instruction %d differs between builds", w.Short, i)
			}
		}
	}
}
