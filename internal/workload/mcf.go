package workload

import (
	"repro/internal/asm"
	"repro/internal/isa"
)

// mcfParams sizes the mcf-like kernel.
type mcfParams struct {
	Nodes      int // node pool size (32 bytes each)
	Window     int // chains per parallel region
	Windows    int // number of regions (scaled)
	WalkLen    int // pointer-chase steps per chain
	HeadStride int // path distance between consecutive chain heads
	SeqIters   int // sequential-phase iterations per window
	Threshold  int64
	PriceSize  int // hot price table entries (power of two)
}

func mcfDefaults(scale int) mcfParams {
	return mcfParams{
		Nodes:      8192, // 256 KB of nodes
		Window:     16,
		Windows:    24 * scale,
		WalkLen:    16,
		HeadStride: 2,
		SeqIters:   420,
		Threshold:  0,
		PriceSize:  512, // 4 KB: half the L1, the kernel's hot working set
	}
}

// Mcf returns the 181.mcf stand-in: network-simplex-style pointer chasing
// over a large node pool. Each parallel iteration walks one linked chain,
// accumulating a cost that depends on a data-dependent branch, and advances
// the chain head. Chains are grouped into windows; speculative threads past
// a window's end start walking the next window's chains.
func Mcf() *Workload {
	return &Workload{
		Name:  "181.mcf",
		Short: "mcf",
		Suite: "SPEC2000/INT",
		Build: func(scale int) (*isa.Program, error) { return mcfBuild(mcfDefaults(scale)) },
	}
}

// mcfData computes the initial node pool and chain heads.
// Node layout: [next(8) val(8) cost(8) spare(8)], 32 bytes.
func mcfData(p mcfParams) (perm []int, vals, costs []int64, heads []int, prices []int64) {
	r := newRNG(181)
	n := p.Nodes
	// Random permutation cycle: node i's successor is perm[i].
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	perm = make([]int, n)
	for i := 0; i < n; i++ {
		perm[order[i]] = order[(i+1)%n]
	}
	vals = make([]int64, n)
	costs = make([]int64, n)
	for i := 0; i < n; i++ {
		vals[i] = int64(r.intn(2001) - 1000)
		costs[i] = int64(r.intn(97))
	}
	// Consecutive chains start HeadStride steps apart along the same cycle,
	// so walks of neighbouring iterations overlap heavily — the property
	// that makes a wrong thread's walk prefetch its TU's next correct walk.
	chains := p.Windows*p.Window + Slack
	heads = make([]int, chains)
	for c := range heads {
		heads[c] = order[(c*p.HeadStride)%n]
	}
	prices = make([]int64, p.PriceSize)
	for i := range prices {
		prices[i] = int64(r.intn(31) - 15)
	}
	return perm, vals, costs, heads, prices
}

// McfReference computes the expected out[] array and final chain heads in
// pure Go, mirroring the emitted assembly exactly.
func McfReference(scale int) (out []int64) {
	p := mcfDefaults(scale)
	perm, vals, costs, heads, prices := mcfData(p)
	chains := p.Windows * p.Window
	out = make([]int64, chains)
	for c := 0; c < chains; c++ {
		node := heads[c]
		var acc int64
		for k := 0; k < p.WalkLen; k++ {
			v := vals[node]
			if v < p.Threshold {
				acc -= 0 // spare field is zero-initialized
			} else {
				acc += costs[node]
			}
			// Hot price lookup, indexed by the node value.
			acc += prices[v&int64(p.PriceSize-1)]
			node = perm[node]
		}
		out[c] += acc
	}
	return out
}

func mcfBuild(p mcfParams) (*isa.Program, error) {
	b := asm.New()
	nodes := b.Alloc("nodes", 32*p.Nodes, 64)
	chains := p.Windows*p.Window + Slack
	headArr := b.Alloc("heads", 8*chains, 64)
	outArr := b.Alloc("out", 8*chains, 64)
	scratch := b.Alloc("scratch", 8*128, 64)
	result := b.Alloc("result", 8, 0)

	perm, vals, costs, heads, prices := mcfData(p)
	priceArr := b.Alloc("prices", 8*p.PriceSize, 64)
	for i, v := range prices {
		b.InitWord(priceArr+uint64(8*i), v)
	}
	nodeAddr := func(i int) int64 { return int64(nodes) + int64(32*i) }
	for i := 0; i < p.Nodes; i++ {
		base := nodes + uint64(32*i)
		b.InitWord(base, nodeAddr(perm[i]))
		b.InitWord(base+8, vals[i])
		b.InitWord(base+16, costs[i])
	}
	for c, h := range heads {
		b.InitWord(headArr+uint64(8*c), nodeAddr(h))
	}

	// Loop-invariant registers (all in the fork mask).
	b.Li(4, int64(headArr))
	b.Li(5, int64(outArr))
	b.Li(6, int64(p.WalkLen))
	b.Li(7, p.Threshold)
	b.Li(3, int64(priceArr))
	b.Li(24, int64(p.PriceSize-1))
	b.Li(21, 0)                // window counter
	b.Li(22, int64(p.Windows)) // window count
	b.Li(23, int64(p.Window))  // window width

	b.Label("mcf_outer")
	emitSeqWork(b, "mcf_seq", scratch, p.SeqIters)
	// r1 = w*W, r2 = r1+W.
	b.Op3(isa.MUL, regI, 21, 23)
	b.Op3(isa.ADD, regEnd, regI, 23)
	emitRegion(b, regionSpec{
		name: "mcf",
		mask: []int{1, 2, 3, 4, 5, 6, 7, 21, 22, 23, 24},
		body: func() {
			b.OpI(isa.SLLI, 10, 9, 3)
			b.Op3(isa.ADD, 10, 10, 4) // &heads[c]
			b.Ld(11, 0, 10)           // p = heads[c]
			b.Li(12, 0)               // acc
			b.Li(13, 0)               // k
			b.Label("mcf_walk")
			b.Ld(14, 8, 11) // val
			b.Br(isa.BLT, 14, 7, "mcf_neg")
			b.Ld(15, 16, 11) // cost
			b.Op3(isa.ADD, 12, 12, 15)
			b.Jmp("mcf_step")
			b.Label("mcf_neg")
			b.Ld(15, 24, 11) // spare field (always zero)
			b.Op3(isa.SUB, 12, 12, 15)
			b.Label("mcf_step")
			// Hot price-table lookup indexed by the node value.
			b.Op3(isa.AND, 18, 14, 24)
			b.OpI(isa.SLLI, 18, 18, 3)
			b.Op3(isa.ADD, 18, 18, 3)
			b.Ld(18, 0, 18)
			b.Op3(isa.ADD, 12, 12, 18)
			b.Ld(11, 0, 11) // p = p.next (the serial dependence)
			b.OpI(isa.ADDI, 13, 13, 1)
			b.Br(isa.BLT, 13, 6, "mcf_walk")
			// out[c] += acc; heads[c] = p.
			b.OpI(isa.SLLI, 16, 9, 3)
			b.Op3(isa.ADD, 16, 16, 5)
			b.Ld(17, 0, 16)
			b.Op3(isa.ADD, 17, 17, 12)
			b.St(17, 0, 16)
			b.St(11, 0, 10)
		},
	})
	b.OpI(isa.ADDI, 21, 21, 1)
	b.Br(isa.BLT, 21, 22, "mcf_outer")

	// Final sequential reduction: result = sum(out).
	emitReduce(b, "mcf_red", outArr, p.Windows*p.Window, 1, result)
	b.Halt()
	return b.Build()
}

// emitReduce emits a sequential sum of every step-th element of an int64
// array into result (step 1 = full sum; larger steps sample, keeping the
// verification tail from dominating runtime on large arrays).
// Clobbers r10-r13.
func emitReduce(b *asm.Builder, label string, arr uint64, n, step int, result uint64) {
	if step < 1 {
		step = 1
	}
	b.Li(10, int64(arr))
	b.Li(11, int64(arr)+int64(8*n))
	b.Li(12, 0)
	b.Label(label)
	b.Ld(13, 0, 10)
	b.Op3(isa.ADD, 12, 12, 13)
	b.OpI(isa.ADDI, 10, 10, int64(8*step))
	b.Br(isa.BLT, 10, 11, label)
	b.Li(13, int64(result))
	b.St(12, 0, 13)
}
