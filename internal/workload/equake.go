package workload

import (
	"repro/internal/asm"
	"repro/internal/isa"
)

type equakeParams struct {
	XSize    int // mesh nodes (16 bytes each: next pointer + FP value)
	NNZ      int // nodes visited per row (walk length)
	Window   int
	Windows  int
	SeqIters int
	XUpdate  int // mesh values refreshed sequentially per window
	BaseStep int // walk-start drift per row along the traversal order
}

func equakeDefaults(scale int) equakeParams {
	return equakeParams{
		XSize:    16384, // 256 KB mesh (16 B per node)
		NNZ:      8,     // short walks: a whole walk fits in the 8-entry WEC
		Window:   16,
		Windows:  24 * scale,
		SeqIters: 470,
		XUpdate:  32,
		BaseStep: 2,
	}
}

// Equake returns the 183.equake stand-in: a sparse FEM-style kernel that
// accumulates weighted mesh-node values along an unstructured traversal.
// Each row walks NNZ linked mesh nodes — a serial chain of scattered loads,
// like a matrix row gathered through an element-to-node indirection — and
// consecutive rows start a few steps apart along the same traversal, so
// their walks overlap heavily: a wrong thread's walk prefetches most of the
// mesh blocks its thread unit's next correct row needs, while the
// address-space scatter defeats next-line prefetching.
func Equake() *Workload {
	return &Workload{
		Name:  "183.equake",
		Short: "equake",
		Suite: "SPEC2000/FP",
		Build: func(scale int) (*isa.Program, error) { return equakeBuild(equakeDefaults(scale)) },
	}
}

// equakeData builds the mesh: a random traversal cycle over XSize nodes
// (order), per-node FP values, per-visit weights, and the per-row walk
// starts. Node i's successor in the walk is perm[i].
func equakeData(p equakeParams) (order, perm []int, xval []float64, weights []float64, starts []int) {
	r := newRNG(183)
	n := p.XSize
	order = make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	perm = make([]int, n)
	for i := 0; i < n; i++ {
		perm[order[i]] = order[(i+1)%n]
	}
	xval = make([]float64, n)
	for i := range xval {
		xval[i] = float64(r.intn(2000))/500.0 - 2.0
	}
	// The weight table is small and hot (element stiffness coefficients);
	// visits index it by (row*NNZ + k) mod size.
	weights = make([]float64, 512)
	for i := range weights {
		weights[i] = float64(r.intn(1000))/250.0 - 2.0
	}
	rows := p.Windows*p.Window + Slack
	starts = make([]int, rows)
	for row := range starts {
		starts[row] = order[(row*p.BaseStep)%n]
	}
	return order, perm, xval, weights, starts
}

// EquakeReference computes the expected y[] vector, replaying the
// sequential mesh-value refresh between windows exactly as the assembly.
func EquakeReference(scale int) []float64 {
	p := equakeDefaults(scale)
	order, perm, xval, weights, starts := equakeData(p)
	y := make([]float64, p.Windows*p.Window)
	for w := 0; w < p.Windows; w++ {
		// Sequential phase: refresh a window-dependent run of mesh values
		// in traversal order.
		for j := 0; j < p.XUpdate; j++ {
			node := order[(w*p.XUpdate+j)%p.XSize]
			xval[node] = xval[node]*0.5 + 0.25
		}
		for r := w * p.Window; r < (w+1)*p.Window; r++ {
			node := starts[r]
			acc := 0.0
			for k := 0; k < p.NNZ; k++ {
				acc += xval[node] * weights[(r*p.NNZ+k)&511]
				node = perm[node]
			}
			if acc < 0 {
				acc = -acc
			}
			y[r] = acc
		}
	}
	return y
}

func equakeBuild(p equakeParams) (*isa.Program, error) {
	b := asm.New()
	order, perm, xval, weights, starts := equakeData(p)
	// Mesh node layout: [next(8) val(8)], 16 bytes.
	meshArr := b.Alloc("mesh", 16*p.XSize, 64)
	wArr := b.Alloc("weights", 8*len(weights), 64)
	startArr := b.Alloc("starts", 8*len(starts), 64)
	// updorder lists node addresses in traversal order for the sequential
	// refresh phase.
	updArr := b.Alloc("updorder", 8*p.XSize, 64)
	yArr := b.Alloc("y", 8*(p.Windows*p.Window+Slack), 64)
	scratch := b.Alloc("scratch", 8*128, 64)
	result := b.Alloc("result", 8, 0)

	nodeAddr := func(i int) int64 { return int64(meshArr) + int64(16*i) }
	for i := 0; i < p.XSize; i++ {
		b.InitWord(meshArr+uint64(16*i), nodeAddr(perm[i]))
		b.InitFloat(meshArr+uint64(16*i)+8, xval[i])
	}
	for i, wt := range weights {
		b.InitFloat(wArr+uint64(8*i), wt)
	}
	for i, st := range starts {
		b.InitWord(startArr+uint64(8*i), nodeAddr(st))
	}
	for i := 0; i < p.XSize; i++ {
		b.InitWord(updArr+uint64(8*i), nodeAddr(order[i]))
	}

	b.Li(4, int64(wArr))
	b.Li(5, int64(startArr))
	b.Li(6, int64(updArr))
	b.Li(7, int64(yArr))
	b.Li(8, int64(p.NNZ))
	b.Li(21, 0)
	b.Li(22, int64(p.Windows))
	b.Li(23, int64(p.Window))
	b.Li(24, int64(p.XUpdate))
	b.Li(25, int64(p.XSize))

	b.Label("eq_outer")
	emitSeqWork(b, "eq_seq", scratch, p.SeqIters)
	// Sequential mesh refresh: nodes (w*XUpdate + j) % XSize in traversal
	// order, j = 0..XUpdate.
	b.Op3(isa.MUL, 10, 21, 24) // w*XUpdate
	b.Li(11, 0)
	b.Fli(1, 0.5)
	b.Fli(2, 0.25)
	b.Label("eq_xup")
	b.Op3(isa.ADD, 12, 10, 11)
	b.Op3(isa.REM, 12, 12, 25)
	b.OpI(isa.SLLI, 12, 12, 3)
	b.Op3(isa.ADD, 12, 12, 6)
	b.Ld(13, 0, 12) // node address
	b.Fld(3, 8, 13)
	b.Op3(isa.FMUL, 3, 3, 1)
	b.Op3(isa.FADD, 3, 3, 2)
	b.Fst(3, 8, 13)
	b.OpI(isa.ADDI, 11, 11, 1)
	b.Br(isa.BLT, 11, 24, "eq_xup")

	b.Op3(isa.MUL, regI, 21, 23)
	b.Op3(isa.ADD, regEnd, regI, 23)
	emitRegion(b, regionSpec{
		name: "eq",
		mask: []int{1, 2, 4, 5, 6, 7, 8, 21, 22, 23, 24, 25},
		body: func() {
			// node = starts[r]; weights row pointer.
			b.OpI(isa.SLLI, 10, 9, 3)
			b.Op3(isa.ADD, 10, 10, 5)
			b.Ld(11, 0, 10)          // node address (the serial chain variable)
			b.Op3(isa.MUL, 12, 9, 8) // r*NNZ: weight table index base
			b.Fli(1, 0)              // acc
			b.Li(13, 0)              // k
			b.Label("eq_nz")
			b.Fld(2, 8, 11) // mesh value
			// Hot weight-table lookup: weights[(r*NNZ+k) & 511].
			b.Op3(isa.ADD, 14, 12, 13)
			b.OpI(isa.ANDI, 14, 14, 511)
			b.OpI(isa.SLLI, 14, 14, 3)
			b.Op3(isa.ADD, 14, 14, 4)
			b.Fld(3, 0, 14)
			b.Op3(isa.FMUL, 2, 2, 3)
			b.Op3(isa.FADD, 1, 1, 2)
			b.Ld(11, 0, 11) // node = node.next (serial dependence)
			b.OpI(isa.ADDI, 13, 13, 1)
			b.Br(isa.BLT, 13, 8, "eq_nz")
			// abs then store y[r].
			b.Fli(2, 0)
			b.Op3(isa.FLT, 15, 1, 2)
			b.Br(isa.BEQ, 15, 0, "eq_store")
			b.Op3(isa.FNEG, 1, 1, 1)
			b.Label("eq_store")
			b.OpI(isa.SLLI, 16, 9, 3)
			b.Op3(isa.ADD, 16, 16, 7)
			b.Fst(1, 0, 16)
		},
	})
	b.OpI(isa.ADDI, 21, 21, 1)
	b.Br(isa.BLT, 21, 22, "eq_outer")

	emitReduceFloat(b, "eq_red", yArr, p.Windows*p.Window, result)
	b.Halt()
	return b.Build()
}

// emitReduceFloat sums float64 array elements (truncated to int64) into
// result; clobbers r10-r13 and f1-f2.
func emitReduceFloat(b *asm.Builder, label string, arr uint64, n int, result uint64) {
	b.Li(10, int64(arr))
	b.Li(11, int64(arr)+int64(8*n))
	b.Fli(1, 0)
	b.Label(label)
	b.Fld(2, 0, 10)
	b.Op3(isa.FADD, 1, 1, 2)
	b.OpI(isa.ADDI, 10, 10, 8)
	b.Br(isa.BLT, 10, 11, label)
	b.Op3(isa.F2I, 12, 1, 0)
	b.Li(13, int64(result))
	b.St(12, 0, 13)
}

// equakeSum mirrors emitReduceFloat for tests.
func equakeSum(y []float64) int64 {
	acc := 0.0
	for _, v := range y {
		acc += v
	}
	return int64(acc)
}
