package workload

import (
	"sort"

	"repro/internal/asm"
	"repro/internal/isa"
)

type parserParams struct {
	DictSize int // sorted dictionary entries
	Window   int
	Windows  int
	Levels   int // binary-search depth (fixed-trip loop)
	SeqIters int
	DictStep int // query-locality drift per position
	QSpread  int // query-locality window width
}

func parserDefaults(scale int) parserParams {
	return parserParams{
		DictSize: 32768, // 256 KB sorted dictionary
		Window:   16,
		Windows:  24 * scale,
		Levels:   15,
		SeqIters: 1100,
		DictStep: 4,
		QSpread:  16,
	}
}

// Parser returns the 197.parser stand-in: dictionary lookups via binary
// search. Every level's direction depends on loaded data, so the branch
// predictor mispredicts heavily and wrong-path execution fetches the
// sibling subtree — blocks that later queries frequently need.
func Parser() *Workload {
	return &Workload{
		Name:  "197.parser",
		Short: "parser",
		Suite: "SPEC2000/INT",
		Build: func(scale int) (*isa.Program, error) { return parserBuild(parserDefaults(scale)) },
	}
}

func parserData(p parserParams) (dict []int64, queries []int64) {
	r := newRNG(197)
	dict = make([]int64, p.DictSize)
	for i := range dict {
		dict[i] = int64(r.next() % (1 << 40))
	}
	sort.Slice(dict, func(i, j int) bool { return dict[i] < dict[j] })
	// Queries cluster around a center that drifts with position (words of a
	// sentence hit neighbouring dictionary regions), so adjacent lookups
	// walk overlapping search paths — prefetchable by wrong execution but
	// not by next-line prefetching.
	nq := p.Windows*p.Window + Slack
	queries = make([]int64, nq)
	for i := range queries {
		idx := (i*p.DictStep + r.intn(p.QSpread)) % p.DictSize
		if r.intn(4) == 0 {
			queries[i] = dict[idx] // present word
		} else {
			queries[i] = dict[idx] + 1 // near miss
		}
	}
	return dict, queries
}

// ParserReference computes the expected out[] array (the final lo bound of
// each query's binary search) exactly as the assembly does.
func ParserReference(scale int) []int64 {
	p := parserDefaults(scale)
	dict, queries := parserData(p)
	n := p.Windows * p.Window
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		q := queries[i]
		lo, hi := int64(0), int64(p.DictSize)
		for l := 0; l < p.Levels; l++ {
			mid := (lo + hi) >> 1
			if dict[mid] <= q {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[i] = lo
	}
	return out
}

func parserBuild(p parserParams) (*isa.Program, error) {
	b := asm.New()
	dictArr := b.Alloc("dict", 8*p.DictSize, 64)
	nq := p.Windows*p.Window + Slack
	qArr := b.Alloc("queries", 8*nq, 64)
	outArr := b.Alloc("out", 8*nq, 64)
	scratch := b.Alloc("scratch", 8*128, 64)
	result := b.Alloc("result", 8, 0)

	dict, queries := parserData(p)
	for i, v := range dict {
		b.InitWord(dictArr+uint64(8*i), v)
	}
	for i, v := range queries {
		b.InitWord(qArr+uint64(8*i), v)
	}

	b.Li(4, int64(dictArr))
	b.Li(5, int64(qArr))
	b.Li(6, int64(outArr))
	b.Li(7, int64(p.Levels))
	b.Li(8, int64(p.DictSize))
	b.Li(21, 0)
	b.Li(22, int64(p.Windows))
	b.Li(23, int64(p.Window))

	b.Label("par_outer")
	emitSeqWork(b, "par_seq", scratch, p.SeqIters)
	b.Op3(isa.MUL, regI, 21, 23)
	b.Op3(isa.ADD, regEnd, regI, 23)
	emitRegion(b, regionSpec{
		name: "par",
		mask: []int{1, 2, 4, 5, 6, 7, 8, 21, 22, 23},
		body: func() {
			// q = queries[i]
			b.OpI(isa.SLLI, 10, 9, 3)
			b.Op3(isa.ADD, 10, 10, 5)
			b.Ld(11, 0, 10)          // q
			b.Li(12, 0)              // lo
			b.Op3(isa.ADD, 13, 8, 0) // hi = DictSize
			b.Li(14, 0)              // level
			b.Label("par_level")
			b.Op3(isa.ADD, 15, 12, 13)
			b.OpI(isa.SRAI, 15, 15, 1) // mid
			b.OpI(isa.SLLI, 16, 15, 3)
			b.Op3(isa.ADD, 16, 16, 4)
			b.Ld(17, 0, 16)                 // dict[mid] — the data-dependent branch source
			b.Br(isa.BLT, 11, 17, "par_hi") // q < dict[mid] -> hi = mid
			b.OpI(isa.ADDI, 12, 15, 1)      // dict[mid] <= q -> lo = mid+1
			b.Jmp("par_next")
			b.Label("par_hi")
			b.Op3(isa.ADD, 13, 15, 0)
			b.Label("par_next")
			b.OpI(isa.ADDI, 14, 14, 1)
			b.Br(isa.BLT, 14, 7, "par_level")
			// out[i] = lo
			b.OpI(isa.SLLI, 18, 9, 3)
			b.Op3(isa.ADD, 18, 18, 6)
			b.St(12, 0, 18)
		},
	})
	b.OpI(isa.ADDI, 21, 21, 1)
	b.Br(isa.BLT, 21, 22, "par_outer")

	emitReduce(b, "par_red", outArr, p.Windows*p.Window, 1, result)
	b.Halt()
	return b.Build()
}
