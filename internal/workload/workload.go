// Package workload provides the six benchmark kernels used to reproduce
// the paper's evaluation. SPEC2000 binaries cannot run on this simulator,
// so each kernel reproduces the *memory-behaviour archetype* of its SPEC
// counterpart (DESIGN.md §2):
//
//	mcf    - pointer chasing over a large node pool (irregular, miss-heavy)
//	equake - sparse matrix-vector product (indirect FP streaming)
//	mesa   - framebuffer/texture pixel pipeline (regular streaming)
//	gzip   - sliding-window dictionary matching (mixed, hash-driven)
//	vpr    - placement-swap evaluation (ALU-heavy, low TLP)
//	parser - binary-search dictionary lookups (branchy)
//
// Every kernel is structured as an outer sequential loop over *windows*: a
// sequential phase followed by one parallel region processing iterations
// [w, w+W). Speculatively forked threads past the window's end are exactly
// the first iterations of the *next* window, so wrong-thread execution
// (paper §3.1.2) naturally prefetches data the next region will need — the
// effect the Wrong Execution Cache exploits.
//
// Workload discipline (enforced by the machine-vs-interpreter checksum
// tests): the BEGIN mask must carry every register that is live into the
// loop body or into the code after the region (any thread can become the
// one that resumes sequential execution); cross-iteration stores must go
// through TSA/TST; all memory accesses are 8-byte aligned; arrays indexed
// by the iteration number carry slack for wrong-thread overrun.
package workload

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Slack is the number of extra iterations' worth of data allocated beyond
// every per-iteration array, covering wrong-thread overrun (at most one
// thread per TU, machine maximum 63, rounded up).
const Slack = 80

// Workload describes one benchmark kernel.
type Workload struct {
	Name  string // paper benchmark it stands in for, e.g. "181.mcf"
	Short string // short name, e.g. "mcf"
	Suite string // "SPEC2000/INT" or "SPEC2000/FP"
	// Build assembles the kernel at the given scale (1 = quick default;
	// larger scales multiply the number of windows).
	Build func(scale int) (*isa.Program, error)
}

// All lists the six kernels in the paper's order (Table 2).
func All() []*Workload {
	return []*Workload{Vpr(), Gzip(), Mcf(), Parser(), Equake(), Mesa()}
}

// ByName returns the workload with the given short or full name.
func ByName(name string) (*Workload, error) {
	for _, w := range All() {
		if w.Short == name || w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q", name)
}

// rng is a deterministic xorshift64 generator for data initialization.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// Register conventions shared by every kernel (see package comment):
//
//	r1  - iteration index / continuation variable (in mask)
//	r2  - window end (in mask)
//	r3-r8  - array bases and loop-invariant constants (in mask as needed)
//	r9  - the thread's own iteration index (local)
//	r10-r20 - body temporaries (local)
//	r21-r27 - outer-loop and sequential-phase state (in mask when live
//	          across a region)
const (
	regI   = 1
	regEnd = 2
)

// regionSpec describes one parallel region for emitRegion.
type regionSpec struct {
	name string // unique label prefix
	mask []int  // BEGIN forward mask
	tsag func() // TSAG-stage emission (TSA announcements); may be nil
	body func() // computation stage; reads r9 as the iteration index
}

// emitRegion emits the standard thread-pipelined window loop: continuation
// (advance r1, fork), TSAG, computation, exit check, abort/thread-end.
// On entry r1 holds the window start and r2 the window end.
func emitRegion(b *asm.Builder, s regionSpec) {
	b.Begin(s.mask...)
	b.Label(s.name + "_body")
	b.Op3(isa.ADD, 9, regI, 0)     // r9 = my iteration
	b.OpI(isa.ADDI, regI, regI, 1) // continuation variable for the child
	b.Fork(s.name + "_body")
	if s.tsag != nil {
		s.tsag()
	}
	b.Tsagd()
	s.body()
	b.Br(isa.BLT, regI, regEnd, s.name+"_cont")
	b.Abort()
	b.Jmp(s.name + "_after")
	b.Label(s.name + "_cont")
	b.Thend()
	b.Label(s.name + "_after")
}

// emitSeqWork emits a sequential busy phase of roughly iters dependent
// iterations touching a small scratch buffer (L1-resident), standing in for
// the unparallelized portion of the benchmark. scratch must hold 128 words.
// Clobbers r10-r12 and r28-r29.
func emitSeqWork(b *asm.Builder, label string, scratch uint64, iters int) {
	b.Li(28, 0)
	b.Li(29, int64(iters))
	b.Li(10, int64(scratch))
	b.Label(label)
	// A short dependent chain per iteration: LCG step plus a scratch update.
	b.OpI(isa.ANDI, 11, 28, 127)
	b.OpI(isa.SLLI, 11, 11, 3)
	b.Op3(isa.ADD, 11, 11, 10)
	b.Ld(12, 0, 11)
	b.Op3(isa.ADD, 12, 12, 28)
	b.OpI(isa.SLLI, 12, 12, 1)
	b.OpI(isa.SRLI, 12, 12, 1)
	b.St(12, 0, 11)
	b.OpI(isa.ADDI, 28, 28, 1)
	b.Br(isa.BLT, 28, 29, label)
}
