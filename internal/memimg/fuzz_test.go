package memimg

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzMemImg drives a random operation stream against the sparse image and
// a flat map-of-bytes model, checking byte, word, and range accessors for
// agreement — with addresses biased toward page boundaries, where the
// split read/write paths live — plus Clone isolation and Checksum
// determinism at the end.
func FuzzMemImg(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 1, 16, 0, 255, 2, 255, 15, 7})
	f.Add([]byte{1, 255, 15, 0xde, 1, 0, 16, 0xad, 3, 255, 15, 0})
	f.Add(bytes.Repeat([]byte{2, 1, 2, 3}, 16))
	f.Add([]byte{4, 9, 9, 9, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		img := New()
		model := map[uint64]byte{}
		modelWord := func(addr uint64) int64 {
			var buf [8]byte
			for i := range buf {
				buf[i] = model[addr+uint64(i)]
			}
			return int64(binary.LittleEndian.Uint64(buf[:]))
		}
		// Decode fixed-width ops: [kind, addrHi, addrLo, val]. The address
		// space is folded to 16 pages with the low bits kept raw, so
		// straddling accesses at page edges are common.
		for len(data) >= 4 {
			kind, hi, lo, val := data[0], data[1], data[2], data[3]
			data = data[4:]
			addr := (uint64(hi%16) << PageBits) | (uint64(lo) << 5) | uint64(val&31)
			switch kind % 6 {
			case 0: // byte write
				img.SetByte(addr, val)
				model[addr] = val
			case 1: // word write (possibly straddling)
				v := int64(uint64(val) * 0x0101010101010101)
				img.WriteWord(addr, v)
				var buf [8]byte
				binary.LittleEndian.PutUint64(buf[:], uint64(v))
				for i, b := range buf {
					model[addr+uint64(i)] = b
				}
			case 2: // byte read
				if got, want := img.ByteAt(addr), model[addr]; got != want {
					t.Fatalf("ByteAt(%#x) = %d, model %d", addr, got, want)
				}
			case 3: // word read
				if got, want := img.ReadWord(addr), modelWord(addr); got != want {
					t.Fatalf("ReadWord(%#x) = %#x, model %#x", addr, got, want)
				}
			case 4: // range read crossing pages
				n := int(val)%300 + 1
				got := img.ReadRange(addr, n)
				for i := 0; i < n; i++ {
					if got[i] != model[addr+uint64(i)] {
						t.Fatalf("ReadRange(%#x,%d)[%d] = %d, model %d",
							addr, n, i, got[i], model[addr+uint64(i)])
					}
				}
			case 5: // bulk write
				n := int(val)%64 + 1
				blk := make([]byte, n)
				for i := range blk {
					blk[i] = byte(int(hi) + i)
				}
				img.SetBytes(addr, blk)
				for i, b := range blk {
					model[addr+uint64(i)] = b
				}
			}
		}
		// Float accessors share the word path bit-for-bit.
		img.WriteFloat(64, 3.75)
		if img.ReadFloat(64) != 3.75 {
			t.Fatal("float round-trip failed")
		}
		img.WriteWord(64, modelWord(64)) // restore model-agnostic state
		for i := 0; i < 8; i++ {
			img.SetByte(64+uint64(i), model[64+uint64(i)])
		}

		// Checksum is deterministic and page-allocation-order independent;
		// a clone is an equal but isolated copy.
		c1 := img.Checksum()
		if c2 := img.Checksum(); c1 != c2 {
			t.Fatalf("checksum not deterministic: %#x vs %#x", c1, c2)
		}
		cl := img.Clone()
		if cl.Checksum() != c1 {
			t.Fatalf("clone checksum %#x, original %#x", cl.Checksum(), c1)
		}
		cl.SetByte(12345, 0xab)
		if img.ByteAt(12345) == 0xab && model[12345] != 0xab {
			t.Fatal("clone write leaked into the original image")
		}
	})
}
