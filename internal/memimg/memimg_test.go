package memimg

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestZeroFill(t *testing.T) {
	m := New()
	if m.ByteAt(0) != 0 || m.ReadWord(1<<40) != 0 || m.ReadFloat(12345) != 0 {
		t.Error("fresh image should read as zero everywhere")
	}
}

func TestByteRoundtrip(t *testing.T) {
	m := New()
	m.SetByte(5, 0xAB)
	if got := m.ByteAt(5); got != 0xAB {
		t.Errorf("ByteAt = %#x", got)
	}
	if m.ByteAt(4) != 0 || m.ByteAt(6) != 0 {
		t.Error("neighbouring bytes disturbed")
	}
}

func TestWordRoundtrip(t *testing.T) {
	m := New()
	m.WriteWord(64, -123456789)
	if got := m.ReadWord(64); got != -123456789 {
		t.Errorf("ReadWord = %d", got)
	}
}

func TestWordStraddlesPage(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 3) // crosses into page 1
	m.WriteWord(addr, 0x0102030405060708)
	if got := m.ReadWord(addr); got != 0x0102030405060708 {
		t.Errorf("straddling ReadWord = %#x", got)
	}
	// Bytes landed on both pages.
	if m.ByteAt(PageSize-3) != 0x08 || m.ByteAt(PageSize) != 0x05 {
		t.Error("straddling write put bytes in the wrong place")
	}
}

func TestFloatRoundtrip(t *testing.T) {
	m := New()
	m.WriteFloat(8, 3.14159)
	if got := m.ReadFloat(8); got != 3.14159 {
		t.Errorf("ReadFloat = %g", got)
	}
}

func TestSetReadRange(t *testing.T) {
	m := New()
	src := make([]byte, 3*PageSize)
	for i := range src {
		src[i] = byte(i * 7)
	}
	addr := uint64(PageSize - 100)
	m.SetBytes(addr, src)
	got := m.ReadRange(addr, len(src))
	if !bytes.Equal(got, src) {
		t.Fatal("multi-page SetBytes/ReadRange mismatch")
	}
}

func TestReadRangeAcrossZeroPage(t *testing.T) {
	m := New()
	m.SetByte(0, 1)
	m.SetByte(2*PageSize, 2) // page 1 never allocated
	got := m.ReadRange(0, 2*PageSize+1)
	if got[0] != 1 || got[2*PageSize] != 2 {
		t.Error("endpoints wrong")
	}
	for i := 1; i < 2*PageSize; i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d should be zero, got %d", i, got[i])
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := New()
	m.WriteWord(0, 42)
	c := m.Clone()
	c.WriteWord(0, 99)
	if m.ReadWord(0) != 42 {
		t.Error("clone mutated the original")
	}
	if c.ReadWord(0) != 99 {
		t.Error("clone lost its own write")
	}
}

func TestChecksumProperties(t *testing.T) {
	a, b := New(), New()
	if a.Checksum() != b.Checksum() {
		t.Error("two empty images should hash equal")
	}
	// Zero writes don't change the digest.
	a.WriteWord(512, 0)
	if a.Checksum() != b.Checksum() {
		t.Error("writing zeros changed the checksum")
	}
	a.WriteWord(512, 7)
	if a.Checksum() == b.Checksum() {
		t.Error("different contents hash equal")
	}
	b.WriteWord(512, 7)
	if a.Checksum() != b.Checksum() {
		t.Error("equal contents hash different")
	}
	// Same value at a different address differs.
	c := New()
	c.WriteWord(520, 7)
	if c.Checksum() == b.Checksum() {
		t.Error("address should affect checksum")
	}
}

func TestChecksumOrderIndependent(t *testing.T) {
	a, b := New(), New()
	addrs := []uint64{0, 5 * PageSize, PageSize, 100 * PageSize}
	for i, ad := range addrs {
		a.WriteWord(ad, int64(i+1))
	}
	for i := len(addrs) - 1; i >= 0; i-- {
		b.WriteWord(addrs[i], int64(i+1))
	}
	if a.Checksum() != b.Checksum() {
		t.Error("checksum depends on write order")
	}
}

func TestWordPropertyRoundtrip(t *testing.T) {
	m := New()
	f := func(addr uint64, v int64) bool {
		addr %= 1 << 30
		m.WriteWord(addr, v)
		return m.ReadWord(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLastWrittenWins(t *testing.T) {
	f := func(addr uint64, a, b int64) bool {
		addr %= 1 << 30
		m := New()
		m.WriteWord(addr, a)
		m.WriteWord(addr, b)
		return m.ReadWord(addr) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFootprint(t *testing.T) {
	m := New()
	if m.FootprintBytes() != 0 {
		t.Error("empty image has footprint")
	}
	m.SetByte(0, 1)
	m.SetByte(10*PageSize, 1)
	if got := m.FootprintBytes(); got != 2*PageSize {
		t.Errorf("footprint = %d, want %d", got, 2*PageSize)
	}
}
