// Package memimg provides the simulated physical data memory: a sparse,
// page-granular byte-addressable image with 64-bit word accessors. All
// functional state (as opposed to cache timing state) lives here; caches
// only model residency and latency.
package memimg

import (
	"encoding/binary"
	"hash/crc64"
	"math"
	"sort"
)

// PageBits is log2 of the page size used for the sparse backing store.
const PageBits = 12

// PageSize is the backing-store page size in bytes.
const PageSize = 1 << PageBits

const pageMask = PageSize - 1

// Image is a sparse byte-addressable memory. The zero value is not usable;
// call New.
type Image struct {
	pages map[uint64]*[PageSize]byte
}

// New returns an empty memory image; all bytes read as zero.
func New() *Image {
	return &Image{pages: make(map[uint64]*[PageSize]byte)}
}

// Clone returns a deep copy of the image.
func (m *Image) Clone() *Image {
	c := New()
	for pn, pg := range m.pages {
		np := *pg
		c.pages[pn] = &np
	}
	return c
}

func (m *Image) page(addr uint64, alloc bool) *[PageSize]byte {
	pn := addr >> PageBits
	pg := m.pages[pn]
	if pg == nil && alloc {
		pg = new([PageSize]byte)
		m.pages[pn] = pg
	}
	return pg
}

// ByteAt returns the byte at addr.
func (m *Image) ByteAt(addr uint64) byte {
	pg := m.page(addr, false)
	if pg == nil {
		return 0
	}
	return pg[addr&pageMask]
}

// SetByte stores b at addr.
func (m *Image) SetByte(addr uint64, b byte) {
	m.page(addr, true)[addr&pageMask] = b
}

// ReadWord returns the 64-bit little-endian word at addr. The address may
// straddle a page boundary; alignment is not required.
func (m *Image) ReadWord(addr uint64) int64 {
	off := addr & pageMask
	if off <= PageSize-8 {
		pg := m.page(addr, false)
		if pg == nil {
			return 0
		}
		return int64(binary.LittleEndian.Uint64(pg[off : off+8]))
	}
	var buf [8]byte
	for i := range buf {
		buf[i] = m.ByteAt(addr + uint64(i))
	}
	return int64(binary.LittleEndian.Uint64(buf[:]))
}

// WriteWord stores a 64-bit little-endian word at addr.
func (m *Image) WriteWord(addr uint64, v int64) {
	off := addr & pageMask
	if off <= PageSize-8 {
		pg := m.page(addr, true)
		binary.LittleEndian.PutUint64(pg[off:off+8], uint64(v))
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	for i, b := range buf {
		m.SetByte(addr+uint64(i), b)
	}
}

// ReadFloat returns the float64 stored at addr.
func (m *Image) ReadFloat(addr uint64) float64 {
	return math.Float64frombits(uint64(m.ReadWord(addr)))
}

// WriteFloat stores a float64 at addr.
func (m *Image) WriteFloat(addr uint64, f float64) {
	m.WriteWord(addr, int64(math.Float64bits(f)))
}

// SetBytes copies b into memory starting at addr.
func (m *Image) SetBytes(addr uint64, b []byte) {
	for len(b) > 0 {
		pg := m.page(addr, true)
		off := addr & pageMask
		n := copy(pg[off:], b)
		b = b[n:]
		addr += uint64(n)
	}
}

// ReadRange copies n bytes starting at addr into a new slice.
func (m *Image) ReadRange(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		pg := m.page(addr+uint64(i), false)
		off := (addr + uint64(i)) & pageMask
		if pg == nil {
			// Zero page: skip to next page boundary.
			step := min(n-i, PageSize-int(off))
			i += step
			continue
		}
		step := copy(out[i:], pg[off:])
		i += step
	}
	return out
}

var crcTable = crc64.MakeTable(crc64.ECMA)

// Checksum returns a deterministic digest of the entire image, independent
// of page allocation order. All-zero pages do not affect the digest, so an
// image that was never written hashes equal to one written with zeros.
func (m *Image) Checksum() uint64 {
	pns := make([]uint64, 0, len(m.pages))
	for pn, pg := range m.pages {
		if isZero(pg) {
			continue
		}
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	var sum uint64
	var hdr [8]byte
	for _, pn := range pns {
		binary.LittleEndian.PutUint64(hdr[:], pn)
		sum = crc64.Update(sum, crcTable, hdr[:])
		sum = crc64.Update(sum, crcTable, m.pages[pn][:])
	}
	return sum
}

// FootprintBytes returns the number of allocated backing bytes.
func (m *Image) FootprintBytes() int { return len(m.pages) * PageSize }

func isZero(pg *[PageSize]byte) bool {
	for _, b := range pg {
		if b != 0 {
			return false
		}
	}
	return true
}
