package simerr

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Unknown:    "unknown",
		Panic:      "panic",
		Deadlock:   "deadlock",
		Runaway:    "runaway",
		Timeout:    "timeout",
		Canceled:   "canceled",
		BadProgram: "bad-program",
		IO:         "io",
		Kind(42):   "kind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestErrorRendering(t *testing.T) {
	e := &Error{
		Kind:   Deadlock,
		Op:     "sta.Run",
		Bench:  "mcf",
		Config: "wth-wp-wec",
		Cycle:  12345,
		TUs:    []TUState{{ID: 0, State: "run", Pred: -1, Succ: 1, Running: true, Head: "rob empty"}},
	}
	msg := e.Error()
	for _, want := range []string{"sta.Run", "deadlock", "mcf", "wth-wp-wec", "12345"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
	dump := e.DumpState()
	if !strings.Contains(dump, "tu0 run") || !strings.Contains(dump, "succ=1") {
		t.Errorf("DumpState() missing TU state:\n%s", dump)
	}
}

func TestUnwrapAndKindOf(t *testing.T) {
	cause := errors.New("boom")
	e := New(Runaway, "sta.Run", cause)
	wrapped := fmt.Errorf("harness: mcf: %w", e)
	if !errors.Is(wrapped, cause) {
		t.Error("cause lost through wrapping")
	}
	if KindOf(wrapped) != Runaway {
		t.Errorf("KindOf = %v, want Runaway", KindOf(wrapped))
	}
	if KindOf(errors.New("plain")) != Unknown {
		t.Error("plain error should classify Unknown")
	}
	if KindOf(nil) != Unknown {
		t.Error("nil error should classify Unknown")
	}
}

func TestFromPanicCarriesStack(t *testing.T) {
	var e *Error
	func() {
		defer func() {
			e = FromPanic("test.op", recover())
		}()
		panic("injected")
	}()
	if e == nil || e.Kind != Panic {
		t.Fatalf("FromPanic kind = %+v", e)
	}
	if !strings.Contains(e.Err.Error(), "injected") {
		t.Errorf("cause = %v", e.Err)
	}
	if len(e.Stack) == 0 || !strings.Contains(string(e.Stack), "TestFromPanicCarriesStack") {
		t.Error("stack missing or does not show the panicking test frame")
	}
	if !strings.Contains(e.DumpState(), "goroutine") {
		t.Error("DumpState should include the stack")
	}
}

func TestClassify(t *testing.T) {
	if Classify("op", nil, IO) != nil {
		t.Error("nil error should classify to nil")
	}
	if k := Classify("op", context.DeadlineExceeded, Unknown).Kind; k != Timeout {
		t.Errorf("deadline = %v, want Timeout", k)
	}
	if k := Classify("op", fmt.Errorf("run: %w", context.Canceled), Unknown).Kind; k != Canceled {
		t.Errorf("canceled = %v, want Canceled", k)
	}
	pathErr := &fs.PathError{Op: "open", Path: "/x", Err: errors.New("denied")}
	if k := Classify("op", pathErr, Unknown).Kind; k != IO {
		t.Errorf("path error = %v, want IO", k)
	}
	if k := Classify("op", errors.New("mystery"), BadProgram).Kind; k != BadProgram {
		t.Errorf("fallback = %v, want BadProgram", k)
	}
	// Existing taxonomy errors pass through unchanged.
	orig := New(Deadlock, "sta.Run", nil)
	if got := Classify("other", fmt.Errorf("wrap: %w", orig), IO); got != orig {
		t.Error("Classify should preserve an existing *Error")
	}
}
