// Package simerr defines the structured error taxonomy of the run
// supervision layer. Every failure a simulation or an experiment suite can
// hit is classified into a Kind, and the *Error carrying it records enough
// machine state — the cycle, the configuration key, and a per-thread-unit
// pipeline snapshot — to diagnose the failure without rerunning it.
//
// The package sits below every simulator layer (it imports only the
// standard library), so sta, mem, core, and harness can all return its
// errors without import cycles.
package simerr

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"runtime"
	"strings"
)

// Kind classifies a simulation failure.
type Kind uint8

// The failure taxonomy.
const (
	// Unknown is the zero Kind: an error that predates the taxonomy or
	// could not be classified.
	Unknown Kind = iota
	// Panic is a recovered runtime panic inside the simulator.
	Panic
	// Deadlock is the forward-progress watchdog firing: no instruction
	// retired across any thread unit for the watchdog window.
	Deadlock
	// Runaway is the MaxCycles bound: the machine kept making progress but
	// never halted.
	Runaway
	// Timeout is a per-run wall-clock deadline expiring.
	Timeout
	// Canceled is a run interrupted by its context (e.g. SIGINT).
	Canceled
	// BadProgram is a workload that failed to build, parse, or verify
	// against the functional reference.
	BadProgram
	// IO is a filesystem or export failure (ledger, metrics, attribution
	// writes). IO failures are considered transient and retried.
	IO
)

var kindNames = [...]string{
	Unknown:    "unknown",
	Panic:      "panic",
	Deadlock:   "deadlock",
	Runaway:    "runaway",
	Timeout:    "timeout",
	Canceled:   "canceled",
	BadProgram: "bad-program",
	IO:         "io",
}

// String returns the kind's stable lower-case name (used in quarantine
// reports and tests).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind maps a stable kind name (the Kind.String rendering) back onto
// the Kind. The fleet protocol ships classified failures across process
// boundaries as their names; unrecognized names come back as Unknown so a
// version-skewed worker still quarantines cleanly.
func ParseKind(s string) Kind {
	for k, name := range kindNames {
		if name == s {
			return Kind(k)
		}
	}
	return Unknown
}

// TUState is one thread unit's pipeline state at the moment of failure.
type TUState struct {
	ID      int    `json:"tu"`
	State   string `json:"state"` // idle, run, wb-wait, wb-drain
	Wrong   bool   `json:"wrong,omitempty"`
	Running bool   `json:"running"` // core has a live thread
	Pred    int    `json:"pred"`    // predecessor TU in the thread chain (-1 none)
	Succ    int    `json:"succ"`    // successor TU (-1 none)
	MemBuf  int    `json:"membuf"`  // speculative memory buffer occupancy
	Head    string `json:"head"`    // ROB head / fetch diagnostics from the core
}

func (t TUState) String() string {
	return fmt.Sprintf("tu%d %s pred=%d succ=%d wrong=%v running=%v membuf=%d %s",
		t.ID, t.State, t.Pred, t.Succ, t.Wrong, t.Running, t.MemBuf, t.Head)
}

// Error is a classified simulation failure with its diagnostic context.
type Error struct {
	Kind   Kind
	Op     string    // failing operation, e.g. "sta.Run", "harness.ledger"
	Bench  string    // benchmark short name, when known
	Config string    // configuration key or label, when known
	Run    string    // telemetry run ID, when the failure happened under one
	Span   uint64    // telemetry span ID of the failing cell, when known
	Cycle  uint64    // simulated cycle at failure (0 if not in a run)
	TUs    []TUState // per-thread-unit pipeline snapshot, when available
	Stack  []byte    // goroutine stack for Panic kinds
	Err    error     // wrapped cause (may be nil for self-describing kinds)
}

// Error renders the one-line summary; use DumpState for the full snapshot.
func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s", e.Op, e.Kind)
	if e.Bench != "" {
		fmt.Fprintf(&b, " [%s", e.Bench)
		if e.Config != "" {
			fmt.Fprintf(&b, " %s", e.Config)
		}
		b.WriteString("]")
	}
	if e.Cycle > 0 {
		fmt.Fprintf(&b, " at cycle %d", e.Cycle)
	}
	if e.Run != "" {
		fmt.Fprintf(&b, " (run %s", e.Run)
		if e.Span != 0 {
			fmt.Fprintf(&b, " span %d", e.Span)
		}
		b.WriteString(")")
	}
	if e.Err != nil {
		fmt.Fprintf(&b, ": %v", e.Err)
	}
	return b.String()
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// DumpState renders the full structured machine dump: the summary line,
// every thread unit's pipeline state, and (for panics) the stack.
func (e *Error) DumpState() string {
	var b strings.Builder
	b.WriteString(e.Error())
	for _, tu := range e.TUs {
		b.WriteString("\n  ")
		b.WriteString(tu.String())
	}
	if len(e.Stack) > 0 {
		b.WriteString("\n")
		b.Write(e.Stack)
	}
	return b.String()
}

// New builds an Error of the given kind wrapping cause (which may be nil).
func New(kind Kind, op string, cause error) *Error {
	return &Error{Kind: kind, Op: op, Err: cause}
}

// Errorf builds an Error with a formatted self-describing cause.
func Errorf(kind Kind, op, format string, args ...any) *Error {
	return &Error{Kind: kind, Op: op, Err: fmt.Errorf(format, args...)}
}

// FromPanic converts a recovered panic value into a Panic-kind Error
// carrying the recovering goroutine's stack. Call directly from the
// deferred recover site so the stack still shows the panicking frames.
func FromPanic(op string, recovered any) *Error {
	err, ok := recovered.(error)
	if !ok {
		err = fmt.Errorf("%v", recovered)
	}
	buf := make([]byte, 64<<10)
	buf = buf[:runtime.Stack(buf, false)]
	return &Error{Kind: Panic, Op: op, Err: err, Stack: buf}
}

// KindOf extracts the Kind from an error chain; Unknown when no *Error is
// present.
func KindOf(err error) Kind {
	var e *Error
	if errors.As(err, &e) {
		return e.Kind
	}
	return Unknown
}

// Classify wraps an arbitrary error into the taxonomy, preserving an
// existing *Error unchanged. Context and filesystem errors map onto
// Timeout/Canceled/IO; everything else becomes the fallback kind.
func Classify(op string, err error, fallback Kind) *Error {
	if err == nil {
		return nil
	}
	var e *Error
	if errors.As(err, &e) {
		return e
	}
	kind := fallback
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		kind = Timeout
	case errors.Is(err, context.Canceled):
		kind = Canceled
	case isIOErr(err):
		kind = IO
	}
	return &Error{Kind: kind, Op: op, Err: err}
}

// isIOErr reports whether err looks like a filesystem failure.
func isIOErr(err error) bool {
	var pe *fs.PathError
	return errors.As(err, &pe)
}
