package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/simerr"
)

// quietRun starts a run with logging discarded and the given extras.
func quietRun(t *testing.T, cfg Config) *Run {
	t.Helper()
	cfg.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	r, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestSpanLifecycle(t *testing.T) {
	r := quietRun(t, Config{})
	suite := r.BeginSuite("fig9")
	c := r.StartCell("mcf", "cfg-12345678", 7)
	if c.Span.Parent != suite.ID {
		t.Fatalf("cell parent %d, want suite span %d", c.Span.Parent, suite.ID)
	}
	if c.Span.Outcome != "" {
		t.Fatalf("fresh span has outcome %q", c.Span.Outcome)
	}
	c.Done(4242)
	if c.Span.Outcome != "ok" || c.Span.EndCycle != 4242 {
		t.Fatalf("ended span = %q/%d, want ok/4242", c.Span.Outcome, c.Span.EndCycle)
	}
	// Ending twice must not clobber the sealed state.
	c.Span.EndAt(9999, "panic", fmt.Errorf("late"))
	if c.Span.Outcome != "ok" || c.Span.EndCycle != 4242 {
		t.Fatalf("double end mutated the span: %q/%d", c.Span.Outcome, c.Span.EndCycle)
	}
	r.EndSuite("ok", nil)
	if done, failed := r.Counts(); done != 1 || failed != 0 {
		t.Fatalf("counts %d/%d, want 1/0", done, failed)
	}
	got := r.Flight().Recent()
	if len(got) != 2 || got[0].Kind != "cell" || got[1].Kind != "suite" {
		t.Fatalf("flight ring %v, want [cell suite]", got)
	}
}

func TestCellFailStampsError(t *testing.T) {
	dir := t.TempDir()
	r := quietRun(t, Config{Dir: dir})
	c := r.StartCell("vpr", "cfg-deadbeef", 0)
	e := simerr.New(simerr.Deadlock, "sta.Run", fmt.Errorf("stuck"))
	e.Cycle = 1234
	path := c.Fail(e)
	if e.Run != r.ID || e.Span != c.Span.ID {
		t.Fatalf("error not stamped: run %q span %d", e.Run, e.Span)
	}
	if !strings.Contains(e.Error(), r.ID) {
		t.Fatalf("error text %q misses run ID", e.Error())
	}
	if c.Span.Outcome != "deadlock" || c.Span.EndCycle != 1234 {
		t.Fatalf("failed span = %q/%d, want deadlock/1234", c.Span.Outcome, c.Span.EndCycle)
	}
	var dump FlightDump
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Run != r.ID || dump.Span != c.Span.ID || dump.Kind != "deadlock" || dump.Cycle != 1234 {
		t.Fatalf("dump identity wrong: %+v", dump)
	}
	if len(dump.Spans) == 0 {
		t.Fatal("dump carries no span history")
	}
}

func TestSpanJournal(t *testing.T) {
	dir := t.TempDir()
	r := quietRun(t, Config{Dir: dir})
	r.BeginSuite("table2")
	r.StartCell("gzip", "cfg-0badf00d", 0).Done(100)
	r.StartCell("mesa", "cfg-0badf00d", 0).Fail(fmt.Errorf("boom"))
	r.EndSuite("ok", nil)

	f, err := os.Open(filepath.Join(dir, "spans.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var kinds []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if s.Run != r.ID || s.Outcome == "" || s.End_.IsZero() {
			t.Fatalf("journaled span incomplete: %+v", s)
		}
		kinds = append(kinds, s.Kind)
	}
	// Journal order is completion order: the two cells, then the suite.
	want := []string{"cell", "cell", "suite"}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("journal kinds %v, want %v", kinds, want)
	}
}

func TestConvertSpans(t *testing.T) {
	dir := t.TempDir()
	r := quietRun(t, Config{Dir: dir})
	r.BeginSuite("fig8")
	r.StartCell("parser", "cfg-11112222", 0).Done(55)
	r.EndSuite("ok", nil)

	raw, err := os.ReadFile(filepath.Join(dir, "spans.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	// Append a torn tail, as a live file would have; conversion must stop
	// cleanly rather than error.
	raw = append(raw, []byte(`{"id":99,"run":"trunc`)...)
	var out bytes.Buffer
	if err := ConvertSpans(bytes.NewReader(raw), &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Cat  string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var cells, suites int
	for _, e := range doc.TraceEvents {
		switch e.Cat {
		case "cell":
			cells++
		case "suite":
			suites++
		}
	}
	if cells != 1 || suites != 1 {
		t.Fatalf("converted %d cell / %d suite events, want 1/1", cells, suites)
	}
}

func TestFlightRingBound(t *testing.T) {
	r := quietRun(t, Config{FlightSpans: 4})
	for i := 0; i < 10; i++ {
		r.StartSpan("sim", fmt.Sprintf("s%d", i), nil).End("ok", nil)
	}
	recent := r.Flight().Recent()
	if len(recent) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(recent))
	}
	if recent[0].Name != "s6" || recent[3].Name != "s9" {
		t.Fatalf("ring kept %q..%q, want s6..s9", recent[0].Name, recent[3].Name)
	}
	if d := r.Flight().Dropped(); d != 6 {
		t.Fatalf("dropped %d, want 6", d)
	}
}

// promLine matches one exposition sample: name{labels} value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]`)

func TestHTTPEndpoints(t *testing.T) {
	r := quietRun(t, Config{Addr: "127.0.0.1:0"})
	r.SetLedger("/tmp/led.jsonl")
	r.NoteLedgerAppend()
	r.NoteRetry("harness.metrics", 1, fmt.Errorf("disk full"))
	r.SetFleetSource(func() FleetCounts {
		return FleetCounts{WorkersLive: 2, WorkersJoined: 3, LeasesHeld: 1, CacheHits: 5}
	})
	r.BeginSuite("fig10")
	c := r.StartCell("equake", "cfg-33334444", 0)
	base := "http://" + r.Addr()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	if body, _ := get("/healthz"); strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %q", body)
	}

	metricsBody, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	helped := map[string]bool{}
	for _, line := range strings.Split(metricsBody, "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			helped[strings.Fields(line)[2]] = true
		case strings.HasPrefix(line, "# TYPE "):
			if !helped[strings.Fields(line)[2]] {
				t.Fatalf("TYPE before HELP: %q", line)
			}
		default:
			if !promLine.MatchString(line) {
				t.Fatalf("malformed sample line %q", line)
			}
			name := line[:strings.IndexAny(line, "{ ")]
			if !helped[name] {
				t.Fatalf("sample %q precedes its HELP/TYPE header", line)
			}
		}
	}
	for _, want := range []string{
		`sta_suite_info{run="` + r.ID + `"} 1`,
		"sta_suite_cells_inflight 1",
		"sta_suite_retries_total 1",
		"sta_fleet_workers_live 2",
		"sta_fleet_workers_joined_total 3",
		"sta_fleet_leases_held 1",
		"sta_fleet_cache_hits_total 5",
		`sta_suite_ledger_appends_total{path="/tmp/led.jsonl"} 1`,
		`sta_cell_cycle{bench="equake",config="cfg-33334444",span="` + fmt.Sprint(c.Span.ID) + `"}`,
	} {
		if !strings.Contains(metricsBody, want) {
			t.Fatalf("/metrics misses %q in:\n%s", want, metricsBody)
		}
	}

	runsBody, ct := get("/runs")
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/runs content type %q", ct)
	}
	var doc struct {
		Run   string `json:"run"`
		Suite *Span  `json:"suite"`
		Cells []struct {
			Span Span `json:"span"`
		} `json:"cells"`
		Ledger string `json:"ledger"`
	}
	if err := json.Unmarshal([]byte(runsBody), &doc); err != nil {
		t.Fatalf("/runs is not JSON: %v\n%s", err, runsBody)
	}
	if doc.Run != r.ID || doc.Suite == nil || doc.Suite.Name != "fig10" ||
		len(doc.Cells) != 1 || doc.Cells[0].Span.Bench != "equake" || doc.Ledger == "" {
		t.Fatalf("/runs document wrong: %s", runsBody)
	}

	c.Done(1)
	r.EndSuite("ok", nil)
	if body, _ := get("/runs"); !strings.Contains(body, `"cells": []`) {
		t.Fatalf("/runs after completion should have empty cells: %s", body)
	}
}

func TestRunsRaceWithCompletion(t *testing.T) {
	// Hammer /runs while cells start and end: the by-value span copies
	// under the run mutex must keep this race-free (run with -race).
	r := quietRun(t, Config{Addr: "127.0.0.1:0"})
	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c := r.StartCell("mcf", "cfg-55556666", 0)
			if i%2 == 0 {
				c.Done(uint64(i))
			} else {
				c.Fail(fmt.Errorf("fail %d", i))
			}
		}
	}()
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + r.Addr() + "/runs")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	close(stop)
}

func TestPromEscape(t *testing.T) {
	if got := promEscape(`a"b\c` + "\n"); got != `a\"b\\c\n` {
		t.Fatalf("promEscape = %q", got)
	}
	if got := promSanitize("l1d.miss-rate/0"); got != "l1d_miss_rate_0" {
		t.Fatalf("promSanitize = %q", got)
	}
}
