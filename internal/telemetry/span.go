package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/simerr"
)

// Span is one traced unit of suite work: a whole suite, one cell, one
// machine invocation, or one retry attempt. Spans are created through
// Run.StartSpan / Run.StartCell and completed with End; a span with an
// empty Outcome is still in flight.
type Span struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Run    string `json:"run"`
	Kind   string `json:"kind"` // suite | cell | sim | retry
	Name   string `json:"name"`
	Bench  string `json:"bench,omitempty"`
	// Config is the short memo-key hash ("cfg-xxxxxxxx") that also names
	// the cell's metrics/attribution exports and ledger entries.
	Config string `json:"config,omitempty"`
	// Seed is the chaos seed when fault injection is active.
	Seed       uint64    `json:"seed,omitempty"`
	Start      time.Time `json:"start"`
	End_       time.Time `json:"end,omitzero"`
	StartCycle uint64    `json:"start_cycle,omitempty"`
	EndCycle   uint64    `json:"end_cycle,omitempty"`
	// Outcome is "" while in flight, then "ok" or a simerr kind name.
	Outcome string `json:"outcome,omitempty"`
	Err     string `json:"err,omitempty"`

	run *Run
}

// Duration returns the span's wall duration (to now while in flight).
func (s *Span) Duration() time.Duration {
	if s.End_.IsZero() {
		return time.Since(s.Start)
	}
	return s.End_.Sub(s.Start)
}

// StartSpan opens a span under the run. parent may be nil: cells and
// suites parent automatically (cells to the open suite span), other kinds
// to whatever the caller passes.
func (r *Run) StartSpan(kind, name string, parent *Span) *Span {
	r.mu.Lock()
	r.nextSpan++
	s := &Span{
		ID:    r.nextSpan,
		Run:   r.ID,
		Kind:  kind,
		Name:  name,
		Start: time.Now(),
		run:   r,
	}
	if parent != nil {
		s.Parent = parent.ID
	} else if kind == "cell" && r.suite != nil {
		s.Parent = r.suite.ID
	}
	r.live[s.ID] = s
	r.mu.Unlock()
	return s
}

// End completes the span: it leaves the live set, lands in the flight
// recorder's ring, and is journaled to the span JSONL. Ending twice is a
// no-op.
func (s *Span) End(outcome string, err error) { s.EndAt(0, outcome, err) }

// EndAt is End plus the final simulated cycle (0 leaves EndCycle alone).
// All mutable span fields are written under the run mutex, so the HTTP
// handlers can copy in-flight spans race-free.
func (s *Span) EndAt(endCycle uint64, outcome string, err error) {
	if s == nil || s.run == nil {
		return
	}
	r := s.run
	r.mu.Lock()
	if s.Outcome != "" {
		r.mu.Unlock()
		return
	}
	if endCycle != 0 {
		s.EndCycle = endCycle
	}
	s.Outcome = outcome
	s.End_ = time.Now()
	if err != nil {
		s.Err = err.Error()
	}
	delete(r.live, s.ID)
	r.mu.Unlock()
	// The span is sealed: no further mutation happens, so the copies below
	// are safe without the lock.
	r.flight.add(*s)
	r.writeSpan(s)
}

// simerrAs is errors.As pinned to *simerr.Error (keeps call sites terse).
func simerrAs(err error, target **simerr.Error) bool {
	return errors.As(err, target)
}

// OutcomeOf maps an error to a span outcome: "ok" for nil, the simerr kind
// name otherwise.
func OutcomeOf(err error) string {
	if err == nil {
		return "ok"
	}
	return simerr.KindOf(err).String()
}

// traceEvent is the Chrome trace-event JSON shape used by ConvertSpans; it
// mirrors the (unexported) event type of internal/metrics.Timeline so the
// rendered file loads in the same Perfetto UI next to the cycle timeline.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ConvertSpans reads span JSONL (as written to spans.jsonl) and renders a
// Chrome trace-event / Perfetto JSON timeline: suites on track 0, each
// cell (with its sim and retry children) on the track of its span ID, all
// in wall-clock microseconds relative to the earliest span. Malformed
// lines are skipped so a live (still-appending) file converts cleanly.
func ConvertSpans(in io.Reader, out io.Writer) error {
	dec := json.NewDecoder(in)
	var spans []Span
	for {
		var s Span
		if err := dec.Decode(&s); err != nil {
			if err == io.EOF {
				break
			}
			// Torn tail of a live file: stop at the first bad record.
			break
		}
		spans = append(spans, s)
	}
	if len(spans) == 0 {
		return fmt.Errorf("telemetry: no spans to convert")
	}
	epoch := spans[0].Start
	for _, s := range spans {
		if s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	// Cells own tracks; children (sim/retry) ride on the parent's track.
	track := func(s Span) uint64 {
		switch s.Kind {
		case "suite":
			return 0
		case "cell":
			return s.ID
		default:
			if s.Parent != 0 {
				return s.Parent
			}
			return s.ID
		}
	}
	events := []traceEvent{{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "suite telemetry (run " + spans[0].Run + ")"},
	}}
	for _, s := range spans {
		if s.End_.IsZero() {
			continue
		}
		args := map[string]any{"kind": s.Kind, "outcome": s.Outcome, "span": s.ID}
		if s.Bench != "" {
			args["bench"] = s.Bench
		}
		if s.Config != "" {
			args["config"] = s.Config
		}
		if s.EndCycle > 0 {
			args["end_cycle"] = s.EndCycle
		}
		if s.Err != "" {
			args["err"] = s.Err
		}
		events = append(events, traceEvent{
			Name: s.Name, Ph: "X", Pid: 1, Tid: track(s), Cat: s.Kind,
			Ts:   s.Start.Sub(epoch).Microseconds(),
			Dur:  max64(1, s.End_.Sub(s.Start).Microseconds()),
			Args: args,
		})
	}
	doc := struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []traceEvent `json:"traceEvents"`
	}{DisplayTimeUnit: "ms", TraceEvents: events}
	return json.NewEncoder(out).Encode(doc)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
