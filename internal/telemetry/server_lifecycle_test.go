package telemetry

import (
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// A run pointed at an already-bound address must fail with an error that
// tells the operator what to do, not a bare EADDRINUSE.
func TestServerBindFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	_, err = Start(Config{
		Addr: ln.Addr().String(),
		Log:  slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err == nil {
		t.Fatal("Start on a bound address succeeded")
	}
	if !strings.Contains(err.Error(), ln.Addr().String()) {
		t.Fatalf("bind error does not name the address: %v", err)
	}
	if !strings.Contains(err.Error(), "already") || !strings.Contains(err.Error(), ":0") {
		t.Fatalf("bind error lacks the remediation hint: %v", err)
	}
}

// Close must drain an in-flight /runs request: the handler that was
// already past the snapshot when shutdown began still delivers a complete
// JSON document, rather than having its connection torn down.
func TestServerShutdownDrainsRuns(t *testing.T) {
	r := quietRun(t, Config{Addr: "127.0.0.1:0"})
	entered := make(chan struct{})
	release := make(chan struct{})
	r.server.testRunsBarrier = func() {
		close(entered)
		<-release
	}
	r.StartCell("mcf", "cfg-deadbeef", 0)

	type resp struct {
		doc runsDoc
		err error
	}
	got := make(chan resp, 1)
	go func() {
		res, err := http.Get("http://" + r.Addr() + "/runs")
		if err != nil {
			got <- resp{err: err}
			return
		}
		defer res.Body.Close()
		var doc runsDoc
		err = json.NewDecoder(res.Body).Decode(&doc)
		got <- resp{doc: doc, err: err}
	}()

	<-entered // the handler is in flight, pre-body
	closed := make(chan error, 1)
	go func() { closed <- r.Close() }()

	// Close must not complete while the handler is still held.
	select {
	case <-closed:
		t.Fatal("Close returned with a /runs handler still in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the handler finished")
	}
	g := <-got
	if g.err != nil {
		t.Fatalf("in-flight /runs was not drained: %v", g.err)
	}
}
