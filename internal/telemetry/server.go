package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"syscall"
	"time"
)

// httpServer is the run's introspection endpoint. Endpoints:
//
//	/healthz      liveness ("ok")
//	/metrics      Prometheus text format (suite gauges + live cell bridges)
//	/runs         JSON: the run header plus every in-flight span
//	/debug/pprof  the standard pprof handlers
type httpServer struct {
	run *Run
	srv *http.Server
	ln  net.Listener

	// testRunsBarrier, when set (tests only, before any request), runs
	// inside handleRuns before the response body is written — it lets the
	// lifecycle test hold a request in flight across close().
	testRunsBarrier func()
}

func newHTTPServer(r *Run, addr string) (*httpServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if errors.Is(err, syscall.EADDRINUSE) {
			return nil, fmt.Errorf("telemetry: listen %s: %w (another run is already serving there — pass a different address, or \":0\" to pick a free port)", addr, err)
		}
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &httpServer{run: r, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on close
	return s, nil
}

func (s *httpServer) addr() string { return s.ln.Addr().String() }

// close shuts the server down gracefully: the listener stops accepting
// immediately, but in-flight handlers (a scraper mid-/runs, a pprof
// profile) get up to drainTimeout to finish before the hard close.
func (s *httpServer) close() {
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		s.srv.Close()
	}
}

// drainTimeout bounds how long close waits for in-flight requests.
var drainTimeout = 2 * time.Second

func (s *httpServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *httpServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.run.WriteProm(w); err != nil {
		s.run.Log.Error("metrics write failed", "err", err)
	}
}

// runsCell is one in-flight cell in the /runs document.
type runsCell struct {
	Span         Span    `json:"span"`
	Cycle        uint64  `json:"cycle"`
	Commits      uint64  `json:"commits"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	WallSeconds  float64 `json:"wall_seconds"`
}

// runsDoc is the /runs JSON document.
type runsDoc struct {
	Run           string     `json:"run"`
	UptimeSeconds float64    `json:"uptime_seconds"`
	Suite         *Span      `json:"suite,omitempty"`
	Cells         []runsCell `json:"cells"`
	Done          uint64     `json:"done"`
	Failed        uint64     `json:"failed"`
	Ledger        string     `json:"ledger,omitempty"`
	Archive       string     `json:"archive,omitempty"`
}

func (s *httpServer) handleRuns(w http.ResponseWriter, _ *http.Request) {
	r := s.run
	// Span fields mutate under r.mu, so every span that goes into the
	// document is copied by value while the lock is held.
	r.mu.Lock()
	doc := runsDoc{
		Run:           r.ID,
		UptimeSeconds: time.Since(r.started).Seconds(),
		Done:          r.cellsDone,
		Failed:        r.cellsFailed,
		Ledger:        r.ledgerPath,
		Archive:       r.archiveRoot,
	}
	if r.suite != nil {
		suite := *r.suite
		doc.Suite = &suite
	}
	cells := make([]*Cell, 0, len(r.cells))
	spans := make([]Span, 0, len(r.cells))
	for _, c := range r.cells {
		cells = append(cells, c)
		spans = append(spans, *c.Span)
	}
	r.mu.Unlock()
	for i, c := range cells {
		cycle, commits := c.Tap.Latest()
		rc := runsCell{
			Span:         spans[i],
			Cycle:        cycle,
			Commits:      commits,
			CyclesPerSec: c.Tap.Rate(),
		}
		if st := c.Tap.Started(); !st.IsZero() {
			rc.WallSeconds = time.Since(st).Seconds()
		}
		doc.Cells = append(doc.Cells, rc)
	}
	sort.Slice(doc.Cells, func(i, j int) bool { return doc.Cells[i].Span.ID < doc.Cells[j].Span.ID })
	if doc.Cells == nil {
		doc.Cells = []runsCell{}
	}
	if s.testRunsBarrier != nil {
		s.testRunsBarrier()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		r.Log.Error("runs write failed", "err", err)
	}
}
