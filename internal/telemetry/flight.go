package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/simerr"
	"repro/internal/sta"
)

// DefaultFlightSpans bounds the flight recorder's span ring: enough recent
// history to reconstruct what the suite was doing around a failure without
// retaining a multi-hour sweep.
const DefaultFlightSpans = 256

// Recorder is the run's flight recorder: a bounded ring of recently
// completed spans. On a cell failure it is dumped together with the
// failing cell's progress-sample ring and the simerr machine snapshot,
// turning a panic, deadlock, or watchdog trip into a replayable narrative.
type Recorder struct {
	mu      sync.Mutex
	ring    []Span
	head    int
	count   int
	dropped uint64
}

func newRecorder(max int) *Recorder {
	if max <= 0 {
		max = DefaultFlightSpans
	}
	return &Recorder{ring: make([]Span, max)}
}

func (f *Recorder) add(s Span) {
	f.mu.Lock()
	if f.count == len(f.ring) {
		f.dropped++
	}
	f.ring[f.head] = s
	f.head = (f.head + 1) % len(f.ring)
	if f.count < len(f.ring) {
		f.count++
	}
	f.mu.Unlock()
}

// Recent returns the retained spans oldest-first.
func (f *Recorder) Recent() []Span {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Span, 0, f.count)
	start := f.head - f.count
	for i := 0; i < f.count; i++ {
		j := start + i
		if j < 0 {
			j += len(f.ring)
		}
		out = append(out, f.ring[j])
	}
	return out
}

// Dropped returns how many spans aged out of the ring.
func (f *Recorder) Dropped() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// FlightDump is the JSON document written when a cell dies: the failure
// identity and classified cause, the simerr per-TU machine snapshot, the
// run's recent span history, and the failing cell's progress samples plus
// bridged counters.
type FlightDump struct {
	Run     string               `json:"run"`
	Wrote   time.Time            `json:"wrote"`
	Span    uint64               `json:"span"`
	Bench   string               `json:"bench,omitempty"`
	Config  string               `json:"config,omitempty"`
	Seed    uint64               `json:"seed,omitempty"`
	Kind    string               `json:"kind"`
	Error   string               `json:"error"`
	Cycle   uint64               `json:"cycle,omitempty"`
	TUs     []simerr.TUState     `json:"tus,omitempty"`
	Stack   string               `json:"stack,omitempty"`
	Spans   []Span               `json:"spans"`
	Samples []sta.ProgressSample `json:"progress,omitempty"`
	// Counters is the failing cell's last bridged metrics-registry
	// snapshot (empty when the cell ran without a collector).
	Counters map[string]uint64 `json:"counters,omitempty"`
	// DroppedSpans counts span history lost to the ring bound.
	DroppedSpans uint64 `json:"dropped_spans,omitempty"`
}

// BuildFlightDump assembles the dump document for a failed cell without
// writing it anywhere (the HTTP server and tests use it directly).
func (r *Run) BuildFlightDump(c *Cell, cause error) *FlightDump {
	d := &FlightDump{
		Run:          r.ID,
		Wrote:        time.Now(),
		Span:         c.Span.ID,
		Bench:        c.Span.Bench,
		Config:       c.Span.Config,
		Seed:         c.Span.Seed,
		Kind:         simerr.KindOf(cause).String(),
		Spans:        r.flight.Recent(),
		DroppedSpans: r.flight.Dropped(),
	}
	if cause != nil {
		d.Error = cause.Error()
	}
	var se *simerr.Error
	if simerrAs(cause, &se) {
		d.Cycle = se.Cycle
		d.TUs = se.TUs
		d.Stack = string(se.Stack)
	}
	if c.Tap != nil {
		d.Samples = c.Tap.Samples()
		if kvs := c.Tap.Counters(); len(kvs) > 0 {
			d.Counters = kvMap(kvs)
		}
	}
	return d
}

func kvMap(kvs []metrics.KV) map[string]uint64 {
	m := make(map[string]uint64, len(kvs))
	for _, kv := range kvs {
		m[kv.Key] = kv.Value
	}
	return m
}

// DumpFlight writes the flight-recorder dump for a failed cell under the
// run's Dir and returns the file path. Without a Dir it returns "" and
// writes nothing (the dump is still reachable via BuildFlightDump).
func (r *Run) DumpFlight(c *Cell, cause error) (string, error) {
	if r.cfg.Dir == "" {
		return "", nil
	}
	d := r.BuildFlightDump(c, cause)
	name := fmt.Sprintf("flight-%s-%s-span%d.json", d.Bench, d.Config, d.Span)
	path := filepath.Join(r.cfg.Dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("telemetry: flight dump: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(d); err != nil {
		f.Close()
		return "", fmt.Errorf("telemetry: flight dump: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("telemetry: flight dump: %w", err)
	}
	return path, nil
}
