package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Prometheus text exposition (version 0.0.4) written by hand: the repo
// takes no dependencies, and the format is line-oriented enough that a
// handful of helpers cover everything the suite exports. Metric names obey
// [a-zA-Z_:][a-zA-Z0-9_:]*; label values escape \, " and newline.

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promSanitize rewrites an arbitrary registry key component into a legal
// metric-name fragment (anything outside [a-zA-Z0-9_] becomes '_').
func promSanitize(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

type promWriter struct {
	w     io.Writer
	typed map[string]bool
	err   error
}

func (p *promWriter) header(name, help, typ string) {
	if p.typed[name] {
		return
	}
	p.typed[name] = true
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *promWriter) value(name string, labels [][2]string, v float64) {
	if len(labels) == 0 {
		p.printf("%s %s\n", name, promFloat(v))
		return
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s=%q", l[0], promEscape(l[1]))
	}
	p.printf("%s{%s} %s\n", name, strings.Join(parts, ","), promFloat(v))
}

// promFloat renders a sample value: integral values without an exponent so
// counters read naturally, everything else in shortest-round-trip form.
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteProm renders the run's state in Prometheus text format: the suite
// gauges, one gauge set per in-flight cell (cycle, commits, cycles/s), and
// every counter of each live cell's bridged metrics registry, labelled
// with the cell identity.
func (r *Run) WriteProm(w io.Writer) error {
	p := &promWriter{w: w, typed: make(map[string]bool)}

	r.mu.Lock()
	done, failed := r.cellsDone, r.cellsFailed
	retries, faults := r.retries, r.faults
	inflight := len(r.cells)
	ledgerPath := r.ledgerPath
	ledgerAppends := r.ledgerAppends
	lastLedger := r.lastLedger
	fleetSource := r.fleetSource
	r.mu.Unlock()

	p.header("sta_suite_info", "Run identity (value is always 1).", "gauge")
	p.value("sta_suite_info", [][2]string{{"run", r.ID}}, 1)
	p.header("sta_suite_uptime_seconds", "Wall seconds since the run started.", "gauge")
	p.value("sta_suite_uptime_seconds", nil, time.Since(r.started).Seconds())
	p.header("sta_suite_cells_inflight", "Cells currently simulating.", "gauge")
	p.value("sta_suite_cells_inflight", nil, float64(inflight))
	p.header("sta_suite_cells_done_total", "Cells completed successfully.", "counter")
	p.value("sta_suite_cells_done_total", nil, float64(done))
	p.header("sta_suite_cells_failed_total", "Cells failed and quarantined.", "counter")
	p.value("sta_suite_cells_failed_total", nil, float64(failed))
	p.header("sta_suite_retries_total", "Transient-failure retries.", "counter")
	p.value("sta_suite_retries_total", nil, float64(retries))
	p.header("sta_suite_chaos_faults_total", "Injected chaos faults observed.", "counter")
	p.value("sta_suite_chaos_faults_total", nil, float64(faults))
	if ledgerPath != "" {
		p.header("sta_suite_ledger_appends_total", "Results-ledger entries journaled.", "counter")
		p.value("sta_suite_ledger_appends_total", [][2]string{{"path", ledgerPath}}, float64(ledgerAppends))
		p.header("sta_suite_ledger_lag_seconds", "Seconds since the last ledger append.", "gauge")
		p.value("sta_suite_ledger_lag_seconds", nil, time.Since(lastLedger).Seconds())
	}

	if fleetSource != nil {
		fc := fleetSource()
		p.header("sta_fleet_workers_live", "Fleet workers with a live lease or recent heartbeat.", "gauge")
		p.value("sta_fleet_workers_live", nil, float64(fc.WorkersLive))
		p.header("sta_fleet_workers_joined_total", "Fleet join handshakes accepted (re-joins count again).", "counter")
		p.value("sta_fleet_workers_joined_total", nil, float64(fc.WorkersJoined))
		p.header("sta_fleet_leases_held", "Cells currently leased to fleet workers.", "gauge")
		p.value("sta_fleet_leases_held", nil, float64(fc.LeasesHeld))
		p.header("sta_fleet_leases_expired_total", "Leases revoked for missed heartbeats or stalled progress.", "counter")
		p.value("sta_fleet_leases_expired_total", nil, float64(fc.LeasesExpired))
		p.header("sta_fleet_cells_reassigned_total", "Cells re-queued after revoked leases or worker-blamed failures.", "counter")
		p.value("sta_fleet_cells_reassigned_total", nil, float64(fc.CellsReassigned))
		p.header("sta_fleet_cells_quarantined_total", "Cells the coordinator gave up on (poison or attempt cap).", "counter")
		p.value("sta_fleet_cells_quarantined_total", nil, float64(fc.CellsQuarantined))
		p.header("sta_fleet_cache_hits_total", "Cells answered from the content-addressed run archive.", "counter")
		p.value("sta_fleet_cache_hits_total", nil, float64(fc.CacheHits))
		p.header("sta_fleet_remote_results_total", "Cells answered by a fleet worker's simulation.", "counter")
		p.value("sta_fleet_remote_results_total", nil, float64(fc.RemoteResults))
		p.header("sta_fleet_local_fallbacks_total", "Cells simulated in-process because no worker joined.", "counter")
		p.value("sta_fleet_local_fallbacks_total", nil, float64(fc.LocalFallbacks))
	}

	cells := r.liveCells()
	for _, c := range cells {
		label := [][2]string{
			{"bench", c.Span.Bench},
			{"config", c.Span.Config},
			{"span", fmt.Sprintf("%d", c.Span.ID)},
		}
		cycle, commits := c.Tap.Latest()
		p.header("sta_cell_cycle", "Current simulated cycle of an in-flight cell.", "gauge")
		p.value("sta_cell_cycle", label, float64(cycle))
		p.header("sta_cell_commits", "Committed instructions of an in-flight cell.", "gauge")
		p.value("sta_cell_commits", label, float64(commits))
		p.header("sta_cell_cycles_per_second", "Per-cell simulation speed (cycles per wall second).", "gauge")
		p.value("sta_cell_cycles_per_second", label, c.Tap.Rate())
	}
	// Bridged per-cycle metrics registries, one metric per scope/name key.
	// Keys are stable across cells, so collect first and emit grouped by
	// metric name (HELP/TYPE must precede all samples of a name).
	type bridged struct {
		name  string
		label [][2]string
		v     float64
	}
	var all []bridged
	for _, c := range cells {
		for _, kv := range c.Tap.Counters() {
			scope, name := kv.Key, ""
			if i := strings.IndexByte(kv.Key, '/'); i >= 0 {
				scope, name = kv.Key[:i], kv.Key[i+1:]
			}
			all = append(all, bridged{
				name: "sta_sim_" + promSanitize(name),
				label: [][2]string{
					{"bench", c.Span.Bench},
					{"config", c.Span.Config},
					{"span", fmt.Sprintf("%d", c.Span.ID)},
					{"scope", scope},
				},
				v: float64(kv.Value),
			})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].name < all[j].name })
	for _, b := range all {
		p.header(b.name, "Bridged simulator counter (see internal/metrics).", "gauge")
		p.value(b.name, b.label, b.v)
	}
	return p.err
}
