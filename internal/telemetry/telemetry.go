// Package telemetry is the run-scoped observability layer that sits above
// the per-cycle metrics and trace packages: one Run spans a whole harness
// invocation (a suite of experiments, or a single stasim simulation) and
// gives it a live control plane while it executes.
//
// A Run owns four things:
//
//   - span tracing: every suite, cell, retry, and machine invocation opens
//     a Span (run ID, config memo key, seed, start/end cycle, outcome from
//     the simerr taxonomy); completed spans stream to a JSONL file and can
//     be re-rendered as a Chrome trace-event/Perfetto timeline next to the
//     cycle-level timeline from internal/metrics.
//   - an HTTP introspection server (opt-in): /metrics in Prometheus text
//     format (suite gauges plus each live cell's bridged metrics
//     registry), /runs as live JSON of in-flight spans, /healthz, and the
//     standard pprof handlers.
//   - a flight recorder: a bounded ring of recent spans which, joined with
//     the failing cell's progress-sample ring, is dumped as JSON whenever
//     a cell panics, deadlocks, or trips the watchdog — so chaos-injected
//     failures become replayable narratives instead of bare stacks.
//   - structured logging: a slog.Logger with the run ID attached, threaded
//     through the harness, supervision, ledger, and chaos paths.
//
// The simulator itself never imports this package; it publishes through
// sta.ProgressTap, which costs one untaken nil check per run-loop
// iteration when detached. Everything here is safe for concurrent use: the
// publishing side is the harness worker pool, the reading side the HTTP
// server.
package telemetry

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/simerr"
	"repro/internal/sta"
)

// Config configures a telemetry Run.
type Config struct {
	// Addr is the HTTP introspection listen address ("" disables the
	// server). Use "127.0.0.1:0" to pick a free port; Run.Addr reports it.
	Addr string
	// Dir receives the span JSONL (spans.jsonl) and flight-recorder dumps
	// ("" disables both files; spans still feed the in-memory ring).
	Dir string
	// Log is the base logger; nil installs a text handler on stderr at
	// Info level. The Run's logger carries the run ID on every record.
	Log *slog.Logger
	// FlightSpans bounds the flight recorder's span ring (0 = default).
	FlightSpans int
}

// Run is one telemetry-scoped harness invocation.
type Run struct {
	// ID is the unique run identifier, stamped on every span, log record,
	// flight dump, and failure message.
	ID string
	// Log carries the run ID on every record.
	Log *slog.Logger

	cfg     Config
	started time.Time
	flight  *Recorder

	mu       sync.Mutex
	nextSpan uint64
	live     map[uint64]*Span
	cells    map[uint64]*Cell
	suite    *Span
	seq      int // cells completed (success or failure), for progress logs

	cellsDone   uint64
	cellsFailed uint64
	retries     uint64
	faults      uint64

	ledgerPath    string
	archiveRoot   string
	ledgerAppends uint64
	lastLedger    time.Time

	fleetSource func() FleetCounts

	spanMu   sync.Mutex
	spanFile *os.File

	server *httpServer
}

// NewRunID returns a unique, sortable run identifier: UTC timestamp plus
// random tail.
func NewRunID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.LittleEndian.PutUint32(b[:], uint32(time.Now().UnixNano()))
	}
	return time.Now().UTC().Format("20060102-150405") + fmt.Sprintf("-%08x", binary.BigEndian.Uint32(b[:]))
}

// Start opens a telemetry run: allocates the run ID, opens the span JSONL
// (when Dir is set), and starts the HTTP server (when Addr is set). Close
// the run when the suite finishes.
func Start(cfg Config) (*Run, error) {
	base := cfg.Log
	if base == nil {
		base = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))
	}
	r := &Run{
		ID:      NewRunID(),
		cfg:     cfg,
		started: time.Now(),
		flight:  newRecorder(cfg.FlightSpans),
		live:    make(map[uint64]*Span),
		cells:   make(map[uint64]*Cell),
	}
	r.Log = base.With("run", r.ID)
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("telemetry: %w", err)
		}
		f, err := os.OpenFile(filepath.Join(cfg.Dir, "spans.jsonl"),
			os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("telemetry: %w", err)
		}
		r.spanFile = f
	}
	if cfg.Addr != "" {
		srv, err := newHTTPServer(r, cfg.Addr)
		if err != nil {
			if r.spanFile != nil {
				r.spanFile.Close()
			}
			return nil, err
		}
		r.server = srv
		r.Log.Info("telemetry server listening", "addr", srv.addr())
	}
	return r, nil
}

// Addr returns the HTTP server's actual listen address ("" when disabled).
func (r *Run) Addr() string {
	if r.server == nil {
		return ""
	}
	return r.server.addr()
}

// Dir returns the telemetry output directory ("" when disabled).
func (r *Run) Dir() string { return r.cfg.Dir }

// Flight exposes the flight recorder (tests, dumps).
func (r *Run) Flight() *Recorder { return r.flight }

// Close ends the run: any still-open suite span is closed, the span file
// flushed, and the HTTP server shut down.
func (r *Run) Close() error {
	r.mu.Lock()
	suite := r.suite
	r.mu.Unlock()
	if suite != nil {
		suite.End("canceled", nil)
	}
	var err error
	r.spanMu.Lock()
	if r.spanFile != nil {
		err = r.spanFile.Close()
		r.spanFile = nil
	}
	r.spanMu.Unlock()
	if r.server != nil {
		r.server.close()
	}
	return err
}

// SetLedger records the results-ledger path so failure messages and the
// /metrics ledger gauges can reference it.
func (r *Run) SetLedger(path string) {
	r.mu.Lock()
	r.ledgerPath = path
	r.lastLedger = time.Now()
	r.mu.Unlock()
}

// LedgerPath returns the recorded ledger path ("" when none).
func (r *Run) LedgerPath() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ledgerPath
}

// SetArchive records the run-archive root so /runs and failure messages
// can point readers at the archived manifests.
func (r *Run) SetArchive(root string) {
	r.mu.Lock()
	r.archiveRoot = root
	r.mu.Unlock()
}

// ArchivePath returns the recorded archive root ("" when none).
func (r *Run) ArchivePath() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.archiveRoot
}

// FleetCounts is a snapshot of a fleet coordinator's health, sampled by
// the /metrics exporter through the source registered with SetFleetSource.
type FleetCounts struct {
	WorkersLive      int    // workers with an unexpired lease or recent heartbeat
	WorkersJoined    uint64 // join handshakes accepted (re-joins count again)
	LeasesHeld       int    // cells currently leased to a worker
	LeasesExpired    uint64 // leases revoked for missed heartbeats or stalled progress
	CellsReassigned  uint64 // cells re-queued after a revoked lease or worker-blamed failure
	CellsQuarantined uint64 // cells the coordinator gave up on (poison or attempt cap)
	CacheHits        uint64 // cells answered from the content-addressed archive
	RemoteResults    uint64 // cells answered by a worker's simulation
	LocalFallbacks   uint64 // cells simulated in-process because no worker ever joined
}

// SetFleetSource registers (or with nil clears) the callback /metrics
// samples for the sta_fleet_* gauges. The callback must be safe for
// concurrent use; a fleet coordinator registers its counter snapshot here.
func (r *Run) SetFleetSource(fn func() FleetCounts) {
	r.mu.Lock()
	r.fleetSource = fn
	r.mu.Unlock()
}

// NoteLedgerAppend records one successful ledger append (drives the
// ledger-lag gauge).
func (r *Run) NoteLedgerAppend() {
	r.mu.Lock()
	r.ledgerAppends++
	r.lastLedger = time.Now()
	r.mu.Unlock()
}

// NoteRetry records one transient-failure retry and logs it.
func (r *Run) NoteRetry(op string, attempt int, err error) {
	r.mu.Lock()
	r.retries++
	r.mu.Unlock()
	r.Log.Warn("transient failure, retrying", "op", op, "attempt", attempt, "err", err)
}

// NoteFault records one injected chaos fault. Safe from any goroutine (the
// chaos hook fires on simulation workers).
func (r *Run) NoteFault(p chaos.Point, salt string) {
	r.mu.Lock()
	r.faults++
	r.mu.Unlock()
	r.Log.Warn("chaos fault injected", "point", p.String(), "salt", salt)
}

// Counts returns the completed/failed cell counters (tests, /runs).
func (r *Run) Counts() (done, failed uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cellsDone, r.cellsFailed
}

// Cell is one in-flight simulation under the run: its span plus the live
// progress tap the machine publishes into.
type Cell struct {
	Span *Span
	// Tap is attached to the machine (sta.Machine.Tap) before Run so the
	// telemetry layer sees live cycle/commit progress and, on failure, the
	// recent progress-sample ring.
	Tap *sta.ProgressTap

	run *Run
}

// StartCell opens a cell span (parented to the current suite span, if any)
// and allocates its progress tap. bench and config label the cell; seed is
// the chaos seed when fault injection is active (0 otherwise).
func (r *Run) StartCell(bench, config string, seed uint64) *Cell {
	s := r.StartSpan("cell", bench+"/"+config, nil)
	s.Bench = bench
	s.Config = config
	s.Seed = seed
	c := &Cell{Span: s, Tap: &sta.ProgressTap{}, run: r}
	r.mu.Lock()
	r.cells[s.ID] = c
	r.mu.Unlock()
	r.Log.Debug("cell start", "span", s.ID, "bench", bench, "config", config)
	return c
}

// Done completes the cell successfully at the given final cycle.
func (c *Cell) Done(cycles uint64) {
	c.close(cycles, "ok", nil)
	r := c.run
	r.mu.Lock()
	r.cellsDone++
	seq := r.seq + 1
	r.seq = seq
	r.mu.Unlock()
	r.Log.Info("cell done",
		"seq", seq, "span", c.Span.ID, "bench", c.Span.Bench,
		"config", c.Span.Config, "cycles", cycles)
}

// Fail completes the cell with the simerr-classified outcome, stamps the
// run/span identity onto the error when it is a *simerr.Error, and dumps
// the flight recorder. It returns the dump path ("" when no Dir is set).
func (c *Cell) Fail(err error) string {
	kind := simerr.KindOf(err)
	var cycle uint64
	var se *simerr.Error
	if simerrAs(err, &se) {
		se.Run = c.run.ID
		se.Span = c.Span.ID
		cycle = se.Cycle
	}
	c.close(cycle, kind.String(), err)
	r := c.run
	r.mu.Lock()
	r.cellsFailed++
	seq := r.seq + 1
	r.seq = seq
	r.mu.Unlock()
	path, derr := r.DumpFlight(c, err)
	if derr != nil {
		r.Log.Error("flight dump failed", "err", derr)
	}
	r.Log.Error("cell failed",
		"seq", seq, "span", c.Span.ID, "bench", c.Span.Bench,
		"config", c.Span.Config, "kind", kind.String(), "err", err, "flight", path)
	return path
}

// close ends the cell span and drops it from the live set.
func (c *Cell) close(endCycle uint64, outcome string, err error) {
	r := c.run
	r.mu.Lock()
	delete(r.cells, c.Span.ID)
	r.mu.Unlock()
	c.Span.EndAt(endCycle, outcome, err)
}

// BeginSuite opens a suite-level span; cells started while it is open are
// parented to it. The previous suite span, if still open, is closed first.
func (r *Run) BeginSuite(name string) *Span {
	r.mu.Lock()
	prev := r.suite
	r.mu.Unlock()
	if prev != nil {
		prev.End("ok", nil)
	}
	s := r.StartSpan("suite", name, nil)
	r.mu.Lock()
	r.suite = s
	r.mu.Unlock()
	r.Log.Info("suite start", "suite", name, "span", s.ID)
	return s
}

// EndSuite closes the current suite span with the given outcome.
func (r *Run) EndSuite(outcome string, err error) {
	r.mu.Lock()
	s := r.suite
	r.suite = nil
	r.mu.Unlock()
	if s != nil {
		s.End(outcome, err)
	}
}

// liveCells snapshots the in-flight cells, sorted by span ID.
func (r *Run) liveCells() []*Cell {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Cell, 0, len(r.cells))
	for _, c := range r.cells {
		out = append(out, c)
	}
	sortCells(out)
	return out
}

func sortCells(cs []*Cell) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].Span.ID < cs[j-1].Span.ID; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// writeSpan appends one completed span to the JSONL file (no-op without a
// Dir). Serialized so concurrent cell completions cannot tear lines.
func (r *Run) writeSpan(s *Span) {
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	if r.spanFile == nil {
		return
	}
	line, err := json.Marshal(s)
	if err != nil {
		return
	}
	if _, err := r.spanFile.Write(append(line, '\n')); err != nil {
		r.Log.Error("span journal write failed", "err", err)
	}
}
