package interp

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/memimg"
)

// Hooks are optional callbacks the Engine invokes while executing, used by
// the sampled-simulation fast-forward path to warm caches and the branch
// predictor functionally. Nil hooks cost one untaken branch per relevant
// instruction class; the zero Hooks value is the plain interpreter.
type Hooks struct {
	// Load/Store observe every data access with its effective address
	// (unmasked; the consumer applies its own physical mask).
	Load  func(addr uint64)
	Store func(addr uint64)
	// Branch observes every conditional branch with its resolved direction.
	Branch func(pc int, taken bool)
	// Call/Ret observe JAL/JR pairs (return-address-stack warming).
	Call func(ret int)
	Ret  func()
	// Block observes instruction-fetch locality: it fires whenever execution
	// crosses into a different aligned group of BlockPCs instructions
	// (I-cache block warming at block rather than instruction granularity).
	Block func(pc int)
}

// Counts aggregates the dynamic instruction mix an Engine has executed.
type Counts struct {
	Insts    int64
	Loads    int64
	Stores   int64
	Branches int64
	Taken    int64
	ParInsts int64
	Forks    int64
}

// Engine is a resumable functional interpreter operating on externally
// owned architectural state. RunLimit drives one over its own fresh state;
// the sampled-simulation fast-forward path drives one over a thread unit's
// live register file and the machine's memory image, so detailed execution
// resumes exactly where functional execution stopped.
//
// The sequential semantics of the superthreaded primitives are identical to
// the package-level interpreter (see the package comment); both run on this
// engine, which is what keeps the golden model and the fast-forward path
// from ever diverging.
type Engine struct {
	Prog *isa.Program
	Mem  *memimg.Image
	Int  *[isa.NumIntRegs]int64
	FP   *[isa.NumFPRegs]float64

	// PC is the next instruction to execute; InPar/ForkTo mirror the
	// sequential region state (ForkTo -1 = no FORK recorded). Halted is set
	// when a HALT retires; further StepN calls execute nothing.
	PC     int
	InPar  bool
	ForkTo int
	Halted bool

	Hooks Hooks
	// BlockPCs is the instruction-group size for Hooks.Block (a power of
	// two). Zero disables block tracking even when the hook is set.
	BlockPCs int

	Counts Counts

	lastBlock int
}

// Reset points the engine at pc with a clean region state, keeping the
// bound program, memory, and register state.
func (e *Engine) Reset(pc int) {
	e.PC = pc
	e.InPar = false
	e.ForkTo = -1
	e.Halted = false
	e.lastBlock = -1
}

// StepN executes up to n dynamic instructions, stopping early on HALT or a
// malformed program. It returns the number of instructions executed. The
// engine may be called again to continue (unless Halted).
func (e *Engine) StepN(n int64) (int64, error) {
	if e.Halted || n <= 0 {
		return 0, nil
	}
	var (
		p      = e.Prog
		img    = e.Mem
		ir     = e.Int
		fr     = e.FP
		pc     = e.PC
		forkTo = e.ForkTo
		inPar  = e.InPar
		done   int64
		hooks  = e.Hooks
		shift  = uint(0)
	)
	trackBlocks := hooks.Block != nil && e.BlockPCs > 0
	if trackBlocks {
		for 1<<shift < e.BlockPCs {
			shift++
		}
	}
	defer func() {
		e.PC = pc
		e.ForkTo = forkTo
		e.InPar = inPar
		e.Counts.Insts += done
	}()
	for done < n {
		in := p.At(pc)
		done++
		if inPar {
			e.Counts.ParInsts++
		}
		if trackBlocks {
			if b := pc >> shift; b != e.lastBlock {
				e.lastBlock = b
				hooks.Block(pc)
			}
		}
		next := pc + 1
		switch {
		case in.Op == isa.HALT:
			e.Halted = true
			return done, nil
		case in.Op == isa.NOP:
		case in.Op == isa.BEGIN:
			inPar = true
			forkTo = -1
		case in.Op == isa.FORK:
			forkTo = int(in.Imm)
			e.Counts.Forks++
		case in.Op == isa.TSAGD:
		case in.Op == isa.TSA:
		case in.Op == isa.THEND:
			if forkTo < 0 {
				return done, fmt.Errorf("interp: THEND at pc %d with no preceding FORK", pc)
			}
			next = forkTo
		case in.Op == isa.ABORT:
			inPar = false
			forkTo = -1
		case in.Op == isa.LD:
			e.Counts.Loads++
			addr := isa.EffAddr(in, ir[in.Rs1])
			if hooks.Load != nil {
				hooks.Load(addr)
			}
			if in.Rd != 0 {
				ir[in.Rd] = img.ReadWord(addr)
			}
		case in.Op == isa.FLD:
			e.Counts.Loads++
			addr := isa.EffAddr(in, ir[in.Rs1])
			if hooks.Load != nil {
				hooks.Load(addr)
			}
			fr[in.Rd] = img.ReadFloat(addr)
		case in.Op == isa.ST || in.Op == isa.TST:
			e.Counts.Stores++
			addr := isa.EffAddr(in, ir[in.Rs1])
			img.WriteWord(addr, ir[in.Rs2])
			if hooks.Store != nil {
				hooks.Store(addr)
			}
		case in.Op == isa.FST:
			e.Counts.Stores++
			addr := isa.EffAddr(in, ir[in.Rs1])
			img.WriteFloat(addr, fr[in.Rs2])
			if hooks.Store != nil {
				hooks.Store(addr)
			}
		case in.Op.IsBranch():
			e.Counts.Branches++
			taken := isa.BranchTaken(in, ir[in.Rs1], ir[in.Rs2])
			if taken {
				e.Counts.Taken++
				next = int(in.Imm)
			}
			if hooks.Branch != nil {
				hooks.Branch(pc, taken)
			}
		case in.Op == isa.JMP:
			next = int(in.Imm)
		case in.Op == isa.JAL:
			if in.Rd != 0 {
				ir[in.Rd] = int64(pc + 1)
			}
			if hooks.Call != nil {
				hooks.Call(pc + 1)
			}
			next = int(in.Imm)
		case in.Op == isa.JR:
			next = int(ir[in.Rs1])
			if hooks.Ret != nil {
				hooks.Ret()
			}
		default:
			iv, fv := isa.Eval(in, ir[in.Rs1], ir[in.Rs2], fr[in.Rs1], fr[in.Rs2])
			if in.Op.FPDest() {
				fr[in.Rd] = fv
			} else if in.Rd != 0 {
				ir[in.Rd] = iv
			}
		}
		pc = next
	}
	return done, nil
}
