package interp

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

func mustRun(t *testing.T, b *asm.Builder) *Result {
	t.Helper()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestStraightLine(t *testing.T) {
	b := asm.New()
	b.Li(1, 5)
	b.Li(2, 7)
	b.Op3(isa.ADD, 3, 1, 2)
	b.Op3(isa.MUL, 4, 3, 3)
	b.Halt()
	r := mustRun(t, b)
	if r.IntRegs[3] != 12 || r.IntRegs[4] != 144 {
		t.Errorf("regs = %d %d", r.IntRegs[3], r.IntRegs[4])
	}
	if r.Insts != 5 {
		t.Errorf("inst count = %d", r.Insts)
	}
}

func TestR0Hardwired(t *testing.T) {
	b := asm.New()
	b.Li(0, 42)
	b.Op3(isa.ADD, 1, 0, 0)
	b.Halt()
	r := mustRun(t, b)
	if r.IntRegs[0] != 0 || r.IntRegs[1] != 0 {
		t.Errorf("r0 = %d, r1 = %d; r0 must stay 0", r.IntRegs[0], r.IntRegs[1])
	}
}

func TestLoop(t *testing.T) {
	b := asm.New()
	b.Li(1, 0)  // i
	b.Li(2, 10) // n
	b.Li(3, 0)  // sum
	b.Label("loop")
	b.Op3(isa.ADD, 3, 3, 1)
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Br(isa.BLT, 1, 2, "loop")
	b.Halt()
	r := mustRun(t, b)
	if r.IntRegs[3] != 45 {
		t.Errorf("sum = %d, want 45", r.IntRegs[3])
	}
	if r.Branches != 10 || r.Taken != 9 {
		t.Errorf("branches=%d taken=%d", r.Branches, r.Taken)
	}
}

func TestMemoryOps(t *testing.T) {
	b := asm.New()
	a := b.Alloc("buf", 64, 0)
	b.InitWord(a, 100)
	b.Li(1, int64(a))
	b.Ld(2, 0, 1) // r2 = 100
	b.OpI(isa.ADDI, 2, 2, 1)
	b.St(2, 8, 1) // mem[a+8] = 101
	b.Ld(3, 8, 1) // r3 = 101
	b.Halt()
	r := mustRun(t, b)
	if r.IntRegs[3] != 101 {
		t.Errorf("r3 = %d", r.IntRegs[3])
	}
	if r.Mem.ReadWord(a+8) != 101 {
		t.Error("store not visible in memory")
	}
	if r.Loads != 2 || r.Stores != 1 {
		t.Errorf("loads=%d stores=%d", r.Loads, r.Stores)
	}
}

func TestFloatOps(t *testing.T) {
	b := asm.New()
	a := b.Alloc("f", 16, 0)
	b.InitFloat(a, 1.5)
	b.Li(1, int64(a))
	b.Fld(1, 0, 1)
	b.Fli(2, 2.0)
	b.Op3(isa.FMUL, 3, 1, 2)
	b.Fst(3, 8, 1)
	b.Halt()
	r := mustRun(t, b)
	if r.Mem.ReadFloat(a+8) != 3.0 {
		t.Errorf("fp result = %g", r.Mem.ReadFloat(a+8))
	}
}

func TestJalJr(t *testing.T) {
	b := asm.New()
	b.Jal(31, "func")
	b.Li(2, 99) // executed after return
	b.Halt()
	b.Label("func")
	b.Li(1, 7)
	b.Jr(31)
	r := mustRun(t, b)
	if r.IntRegs[1] != 7 || r.IntRegs[2] != 99 {
		t.Errorf("r1=%d r2=%d", r.IntRegs[1], r.IntRegs[2])
	}
}

// TestParallelLoopSequentialSemantics checks the STA primitives: a counted
// loop written in thread-pipelining style must compute the same result as
// the plain sequential loop.
func TestParallelLoopSequentialSemantics(t *testing.T) {
	const n = 20
	b := asm.New()
	arr := b.Alloc("arr", 8*(n+8), 0)
	for i := 0; i < n; i++ {
		b.InitWord(arr+uint64(8*i), int64(i))
	}
	b.Li(1, 0)          // i
	b.Li(2, n)          // n
	b.Li(3, int64(arr)) // base
	b.Begin(1, 2, 3)
	b.Label("body")
	// Continuation: i' = i+1, fork next iteration.
	b.OpI(isa.ADDI, 4, 1, 1)
	b.Emit(isa.Inst{Op: isa.FORK}) // patched below via named fork
	b.Tsagd()
	// Computation: arr[i] *= 2.
	b.OpI(isa.SLLI, 5, 1, 3)
	b.Op3(isa.ADD, 5, 5, 3)
	b.Ld(6, 0, 5)
	b.Op3(isa.ADD, 6, 6, 6)
	b.St(6, 0, 5)
	// Exit check (i+1 >= n means this was the last iteration).
	b.Br(isa.BLT, 4, 2, "cont")
	b.Abort()
	b.Jmp("after")
	b.Label("cont")
	b.Op3(isa.ADD, 1, 4, 0) // i = i' for next iteration (sequential view)
	b.Thend()
	b.Label("after")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Patch the raw FORK to target "body".
	for i := range p.Insts {
		if p.Insts[i].Op == isa.FORK {
			p.Insts[i].Imm = p.Symbols["body"]
		}
	}
	r, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got := r.Mem.ReadWord(arr + uint64(8*i))
		if got != int64(2*i) {
			t.Errorf("arr[%d] = %d, want %d", i, got, 2*i)
		}
	}
	if r.Forks != n {
		t.Errorf("forks = %d, want %d", r.Forks, n)
	}
	if r.ParInsts == 0 || r.ParInsts >= r.Insts {
		t.Errorf("parallel inst count %d of %d looks wrong", r.ParInsts, r.Insts)
	}
}

func TestThendWithoutForkFails(t *testing.T) {
	b := asm.New()
	b.Thend()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p); err == nil {
		t.Fatal("THEND without FORK accepted")
	}
}

func TestRunawayDetected(t *testing.T) {
	b := asm.New()
	b.Label("spin")
	b.Jmp("spin")
	p, _ := b.Build()
	if _, err := RunLimit(p, 10_000); err == nil {
		t.Fatal("infinite loop not detected")
	}
}

func TestInterpDeterminism(t *testing.T) {
	b := asm.New()
	a := b.Alloc("x", 256, 0)
	b.Li(1, int64(a))
	b.Li(2, 0)
	b.Li(3, 20)
	b.Label("loop")
	b.Op3(isa.MUL, 4, 2, 2)
	b.St(4, 0, 1)
	b.OpI(isa.ADDI, 1, 1, 8)
	b.OpI(isa.ADDI, 2, 2, 1)
	b.Br(isa.BLT, 2, 3, "loop")
	b.Halt()
	p, _ := b.Build()
	r1, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.MemCheck != r2.MemCheck || r1.Insts != r2.Insts {
		t.Error("interpreter not deterministic")
	}
}

func TestAbortClearsForkTarget(t *testing.T) {
	// After ABORT ends a loop, a THEND without a new FORK must fail: the
	// recorded fork target does not leak across regions.
	b := asm.New()
	b.Label("body")
	b.Fork("body")
	b.Abort()
	b.Thend() // invalid: no fork since the abort
	p, _ := b.Build()
	if _, err := Run(p); err == nil {
		t.Fatal("stale fork target accepted after ABORT")
	}
}

func TestTargetStoreActsAsStore(t *testing.T) {
	b := asm.New()
	a := b.Alloc("x", 8, 0)
	b.Li(1, int64(a))
	b.Li(2, 55)
	b.Tst(2, 0, 1)
	b.Halt()
	r := mustRun(t, b)
	if r.Mem.ReadWord(a) != 55 {
		t.Error("TST did not store")
	}
}

func TestChecksumStable(t *testing.T) {
	build := func() *Result {
		b := asm.New()
		a := b.Alloc("x", 128, 0)
		b.Li(1, int64(a))
		for i := 0; i < 16; i++ {
			b.Li(2, int64(i*i))
			b.St(2, int64(8*i), 1)
		}
		b.Halt()
		return mustRun(t, b)
	}
	r1, r2 := build(), build()
	if r1.MemCheck != r2.MemCheck || r1.MemCheck == 0 {
		t.Errorf("checksums: %#x vs %#x", r1.MemCheck, r2.MemCheck)
	}
}
