// Package interp provides a functional (untimed) reference interpreter for
// the simulator ISA, including sequential semantics for the superthreaded
// thread-pipelining primitives. Every timing configuration of the cycle
// simulator must produce the same architectural result as this interpreter;
// the integration tests enforce that invariant, which is what guarantees
// wrong-path and wrong-thread execution change only timing, never results.
//
// Sequential semantics of the STA primitives:
//
//	BEGIN  - enters a parallel region (no functional effect)
//	FORK t - records t as the start of the next iteration
//	TSAGD  - no effect
//	TSA    - no effect (address announcement only)
//	TST    - an ordinary store
//	THEND  - jumps to the most recent FORK target (next iteration)
//	ABORT  - ends the loop; falls through to the next instruction
package interp

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/memimg"
)

// Result is the architectural outcome of a program run.
type Result struct {
	IntRegs  [isa.NumIntRegs]int64
	FPRegs   [isa.NumFPRegs]float64
	Mem      *memimg.Image
	Insts    int64 // dynamic instruction count
	Loads    int64
	Stores   int64
	Branches int64
	Taken    int64
	ParInsts int64 // dynamic instructions inside parallel regions
	Forks    int64
	MemCheck uint64 // memory checksum
}

// MaxInsts guards against runaway programs.
const MaxInsts = 2_000_000_000

// Run executes p to completion and returns the architectural result.
func Run(p *isa.Program) (*Result, error) {
	return RunLimit(p, MaxInsts)
}

// RunLimit is Run with an explicit dynamic-instruction bound; exceeding it
// returns an error (runaway detection). It drives the same Engine the
// sampled-simulation fast-forward path uses, so the golden model and the
// fast-forward executor share one set of semantics by construction.
func RunLimit(p *isa.Program, maxInsts int64) (*Result, error) {
	img := memimg.New()
	asm.LoadData(p, img)
	r := &Result{Mem: img}
	e := Engine{Prog: p, Mem: img, Int: &r.IntRegs, FP: &r.FPRegs}
	e.Reset(p.Entry)
	_, err := e.StepN(maxInsts)
	r.Insts = e.Counts.Insts
	r.Loads = e.Counts.Loads
	r.Stores = e.Counts.Stores
	r.Branches = e.Counts.Branches
	r.Taken = e.Counts.Taken
	r.ParInsts = e.Counts.ParInsts
	r.Forks = e.Counts.Forks
	if err != nil {
		return nil, err
	}
	if !e.Halted {
		return nil, fmt.Errorf("interp: exceeded %d instructions (runaway program?)", maxInsts)
	}
	r.MemCheck = img.Checksum()
	return r, nil
}
