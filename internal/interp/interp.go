// Package interp provides a functional (untimed) reference interpreter for
// the simulator ISA, including sequential semantics for the superthreaded
// thread-pipelining primitives. Every timing configuration of the cycle
// simulator must produce the same architectural result as this interpreter;
// the integration tests enforce that invariant, which is what guarantees
// wrong-path and wrong-thread execution change only timing, never results.
//
// Sequential semantics of the STA primitives:
//
//	BEGIN  - enters a parallel region (no functional effect)
//	FORK t - records t as the start of the next iteration
//	TSAGD  - no effect
//	TSA    - no effect (address announcement only)
//	TST    - an ordinary store
//	THEND  - jumps to the most recent FORK target (next iteration)
//	ABORT  - ends the loop; falls through to the next instruction
package interp

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/memimg"
)

// Result is the architectural outcome of a program run.
type Result struct {
	IntRegs  [isa.NumIntRegs]int64
	FPRegs   [isa.NumFPRegs]float64
	Mem      *memimg.Image
	Insts    int64 // dynamic instruction count
	Loads    int64
	Stores   int64
	Branches int64
	Taken    int64
	ParInsts int64 // dynamic instructions inside parallel regions
	Forks    int64
	MemCheck uint64 // memory checksum
}

// MaxInsts guards against runaway programs.
const MaxInsts = 2_000_000_000

// Run executes p to completion and returns the architectural result.
func Run(p *isa.Program) (*Result, error) {
	return RunLimit(p, MaxInsts)
}

// RunLimit is Run with an explicit dynamic-instruction bound; exceeding it
// returns an error (runaway detection).
func RunLimit(p *isa.Program, maxInsts int64) (*Result, error) {
	img := memimg.New()
	asm.LoadData(p, img)
	r := &Result{Mem: img}
	var (
		pc     = p.Entry
		forkTo = -1
		inPar  bool
	)
	for r.Insts < maxInsts {
		in := p.At(pc)
		r.Insts++
		if inPar {
			r.ParInsts++
		}
		next := pc + 1
		switch {
		case in.Op == isa.HALT:
			r.MemCheck = img.Checksum()
			return r, nil
		case in.Op == isa.NOP:
		case in.Op == isa.BEGIN:
			inPar = true
			forkTo = -1
		case in.Op == isa.FORK:
			forkTo = int(in.Imm)
			r.Forks++
		case in.Op == isa.TSAGD:
		case in.Op == isa.TSA:
		case in.Op == isa.THEND:
			if forkTo < 0 {
				return nil, fmt.Errorf("interp: THEND at pc %d with no preceding FORK", pc)
			}
			next = forkTo
		case in.Op == isa.ABORT:
			inPar = false
			forkTo = -1
		case in.Op == isa.LD:
			r.Loads++
			addr := isa.EffAddr(in, r.IntRegs[in.Rs1])
			if in.Rd != 0 {
				r.IntRegs[in.Rd] = img.ReadWord(addr)
			}
		case in.Op == isa.FLD:
			r.Loads++
			addr := isa.EffAddr(in, r.IntRegs[in.Rs1])
			r.FPRegs[in.Rd] = img.ReadFloat(addr)
		case in.Op == isa.ST || in.Op == isa.TST:
			r.Stores++
			addr := isa.EffAddr(in, r.IntRegs[in.Rs1])
			img.WriteWord(addr, r.IntRegs[in.Rs2])
		case in.Op == isa.FST:
			r.Stores++
			addr := isa.EffAddr(in, r.IntRegs[in.Rs1])
			img.WriteFloat(addr, r.FPRegs[in.Rs2])
		case in.Op.IsBranch():
			r.Branches++
			if isa.BranchTaken(in, r.IntRegs[in.Rs1], r.IntRegs[in.Rs2]) {
				r.Taken++
				next = int(in.Imm)
			}
		case in.Op == isa.JMP:
			next = int(in.Imm)
		case in.Op == isa.JAL:
			if in.Rd != 0 {
				r.IntRegs[in.Rd] = int64(pc + 1)
			}
			next = int(in.Imm)
		case in.Op == isa.JR:
			next = int(r.IntRegs[in.Rs1])
		default:
			iv, fv := isa.Eval(in, r.IntRegs[in.Rs1], r.IntRegs[in.Rs2],
				r.FPRegs[in.Rs1], r.FPRegs[in.Rs2])
			if in.Op.FPDest() {
				r.FPRegs[in.Rd] = fv
			} else if in.Rd != 0 {
				r.IntRegs[in.Rd] = iv
			}
		}
		pc = next
	}
	return nil, fmt.Errorf("interp: exceeded %d instructions (runaway program?)", maxInsts)
}
