package cache

import "fmt"

// MSHRFile tracks outstanding misses so that concurrent requests for the
// same block merge into one fill from the next level. Waiters are opaque
// request tokens owned by the memory system.
type MSHRFile struct {
	max     int
	pending map[uint64][]int64 // block address -> waiting request tokens

	// Statistics.
	Allocations uint64
	Merges      uint64
	FullStalls  uint64
}

// NewMSHRFile returns a file with capacity max outstanding blocks.
func NewMSHRFile(max int) *MSHRFile {
	if max <= 0 {
		max = 1
	}
	return &MSHRFile{max: max, pending: make(map[uint64][]int64, max)}
}

// Lookup reports whether block already has an outstanding miss.
func (f *MSHRFile) Lookup(block uint64) bool {
	_, ok := f.pending[block]
	return ok
}

// Outstanding returns the number of blocks currently in flight.
func (f *MSHRFile) Outstanding() int { return len(f.pending) }

// Full reports whether a new block allocation would be refused.
func (f *MSHRFile) Full() bool { return len(f.pending) >= f.max }

// Add registers token as waiting on block. It returns true if this
// allocated a new entry (the caller must then issue the fill request) and
// false if the miss merged into an existing entry. If the file is full and
// block has no entry, ok is false and the caller must retry later.
func (f *MSHRFile) Add(block uint64, token int64) (allocated, ok bool) {
	if waiters, exists := f.pending[block]; exists {
		f.pending[block] = append(waiters, token)
		f.Merges++
		return false, true
	}
	if len(f.pending) >= f.max {
		f.FullStalls++
		return false, false
	}
	f.pending[block] = []int64{token}
	f.Allocations++
	return true, true
}

// Complete removes block's entry and returns the waiting tokens in arrival
// order. Completing an absent block is a simulator bug and panics.
func (f *MSHRFile) Complete(block uint64) []int64 {
	waiters, ok := f.pending[block]
	if !ok {
		panic(fmt.Sprintf("cache: MSHR complete for absent block %#x", block))
	}
	delete(f.pending, block)
	return waiters
}

// Reset clears all entries and statistics.
func (f *MSHRFile) Reset() {
	f.pending = make(map[uint64][]int64, f.max)
	f.Allocations, f.Merges, f.FullStalls = 0, 0, 0
}
