package cache

import "fmt"

// mshrEntry is one outstanding block with its waiter tokens. The waiters
// slice keeps its capacity across reuse of the slot, so steady-state merges
// allocate nothing.
type mshrEntry struct {
	block   uint64
	waiters []int64
	valid   bool
}

// MSHRFile tracks outstanding misses so that concurrent requests for the
// same block merge into one fill from the next level. Waiters are opaque
// request tokens owned by the memory system. Entries live in a fixed array
// scanned linearly; MSHR files are small (single digits to low tens), so
// the scan beats a map and never allocates.
type MSHRFile struct {
	max     int
	entries []mshrEntry
	n       int // valid entries

	// Statistics.
	Allocations uint64
	Merges      uint64
	FullStalls  uint64
}

// NewMSHRFile returns a file with capacity max outstanding blocks.
func NewMSHRFile(max int) *MSHRFile {
	if max <= 0 {
		max = 1
	}
	return &MSHRFile{max: max, entries: make([]mshrEntry, max)}
}

func (f *MSHRFile) find(block uint64) *mshrEntry {
	for i := range f.entries {
		if f.entries[i].valid && f.entries[i].block == block {
			return &f.entries[i]
		}
	}
	return nil
}

// Lookup reports whether block already has an outstanding miss.
func (f *MSHRFile) Lookup(block uint64) bool { return f.find(block) != nil }

// Outstanding returns the number of blocks currently in flight.
func (f *MSHRFile) Outstanding() int { return f.n }

// Full reports whether a new block allocation would be refused.
func (f *MSHRFile) Full() bool { return f.n >= f.max }

// Add registers token as waiting on block. It returns true if this
// allocated a new entry (the caller must then issue the fill request) and
// false if the miss merged into an existing entry. If the file is full and
// block has no entry, ok is false and the caller must retry later.
func (f *MSHRFile) Add(block uint64, token int64) (allocated, ok bool) {
	var free *mshrEntry
	for i := range f.entries {
		e := &f.entries[i]
		if e.valid {
			if e.block == block {
				e.waiters = append(e.waiters, token)
				f.Merges++
				return false, true
			}
			continue
		}
		if free == nil {
			free = e
		}
	}
	if free == nil {
		f.FullStalls++
		return false, false
	}
	free.block = block
	free.waiters = append(free.waiters[:0], token)
	free.valid = true
	f.n++
	f.Allocations++
	return true, true
}

// Complete removes block's entry and returns the waiting tokens in arrival
// order. The returned slice aliases the entry's storage and is valid only
// until the slot is next allocated; callers consume it immediately.
// Completing an absent block is a simulator bug and panics.
func (f *MSHRFile) Complete(block uint64) []int64 {
	e := f.find(block)
	if e == nil {
		panic(fmt.Sprintf("cache: MSHR complete for absent block %#x", block))
	}
	e.valid = false
	f.n--
	return e.waiters
}

// Reset clears all entries and statistics.
func (f *MSHRFile) Reset() {
	for i := range f.entries {
		f.entries[i].valid = false
		f.entries[i].waiters = f.entries[i].waiters[:0]
	}
	f.n = 0
	f.Allocations, f.Merges, f.FullStalls = 0, 0, 0
}
