// Package cache implements the tag-array structures used throughout the
// memory hierarchy: set-associative caches with true LRU replacement,
// fully-associative small buffers (victim cache, prefetch buffer, and the
// Wrong Execution Cache storage), and a miss-status holding register (MSHR)
// file that merges concurrent misses to the same block.
//
// Caches here track residency and per-line metadata only; data values live
// in the functional memory image (package memimg). That split mirrors how
// timing simulators such as sim-outorder treat caches.
package cache

import "fmt"

// Per-line metadata flags.
const (
	// FlagWrong marks a block fetched by a wrong-execution (wrong-path or
	// wrong-thread) load. A correct-path hit on such a block in the WEC
	// triggers the next-line prefetch described in the paper (§3.2.1).
	FlagWrong uint8 = 1 << iota
	// FlagPrefetch marks a block fetched by a prefetch. Tagged next-line
	// prefetching issues a new prefetch on the first demand hit to such a
	// block.
	FlagPrefetch
)

// Params sizes a cache.
type Params struct {
	SizeBytes  int
	Assoc      int // 0 means fully associative
	BlockBytes int
}

type line struct {
	tag   uint64 // block address (addr >> blockShift)
	valid bool
	dirty bool
	flags uint8
	used  uint64 // LRU stamp; higher = more recent
}

// Cache is a set-associative tag array with true LRU replacement. It is not
// safe for concurrent use; each simulated cache belongs to one goroutine.
type Cache struct {
	sets       [][]line
	setMask    uint64
	blockShift uint
	blockBytes int
	assoc      int
	clock      uint64

	// Statistics maintained by the structure itself.
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// New builds a cache from p. SizeBytes must be a positive multiple of
// BlockBytes*Assoc and the set count must be a power of two.
func New(p Params) (*Cache, error) {
	if p.BlockBytes <= 0 || p.BlockBytes&(p.BlockBytes-1) != 0 {
		return nil, fmt.Errorf("cache: block size %d not a positive power of two", p.BlockBytes)
	}
	blocks := p.SizeBytes / p.BlockBytes
	if blocks <= 0 || p.SizeBytes%p.BlockBytes != 0 {
		return nil, fmt.Errorf("cache: size %d not a positive multiple of block size %d", p.SizeBytes, p.BlockBytes)
	}
	assoc := p.Assoc
	if assoc == 0 {
		assoc = blocks
	}
	if blocks%assoc != 0 {
		return nil, fmt.Errorf("cache: %d blocks not divisible by associativity %d", blocks, assoc)
	}
	nsets := blocks / assoc
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d not a power of two", nsets)
	}
	c := &Cache{
		sets:       make([][]line, nsets),
		setMask:    uint64(nsets - 1),
		blockBytes: p.BlockBytes,
		assoc:      assoc,
	}
	for i := range c.sets {
		c.sets[i] = make([]line, assoc)
	}
	for bs := p.BlockBytes; bs > 1; bs >>= 1 {
		c.blockShift++
	}
	return c, nil
}

// NewFullyAssoc builds a fully-associative cache with the given entry count.
func NewFullyAssoc(entries, blockBytes int) (*Cache, error) {
	return New(Params{SizeBytes: entries * blockBytes, Assoc: 0, BlockBytes: blockBytes})
}

// BlockBytes returns the block size in bytes.
func (c *Cache) BlockBytes() int { return c.blockBytes }

// Blocks returns the total line count.
func (c *Cache) Blocks() int { return len(c.sets) * c.assoc }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

// BlockAddr returns the block-aligned address containing addr.
func (c *Cache) BlockAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.blockBytes) - 1)
}

// NextBlock returns the block address following the one containing addr.
func (c *Cache) NextBlock(addr uint64) uint64 {
	return c.BlockAddr(addr) + uint64(c.blockBytes)
}

func (c *Cache) find(addr uint64) (*line, []line) {
	tag := addr >> c.blockShift
	set := c.sets[tag&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i], set
		}
	}
	return nil, set
}

// Probe reports whether addr's block is resident, without touching LRU
// state or statistics.
func (c *Cache) Probe(addr uint64) bool {
	ln, _ := c.find(addr)
	return ln != nil
}

// Flags returns the metadata flags of addr's block, if resident.
func (c *Cache) Flags(addr uint64) (uint8, bool) {
	ln, _ := c.find(addr)
	if ln == nil {
		return 0, false
	}
	return ln.flags, true
}

// Access performs a demand access: on a hit it refreshes LRU state, clears
// nothing, and returns the line's flags before the access along with true.
// On a miss it returns false. Statistics are updated either way.
func (c *Cache) Access(addr uint64, write bool) (uint8, bool) {
	c.Accesses++
	ln, _ := c.find(addr)
	if ln == nil {
		c.Misses++
		return 0, false
	}
	c.Hits++
	c.clock++
	ln.used = c.clock
	flags := ln.flags
	// A demand hit "claims" the block for correct execution: wrong/prefetch
	// provenance only matters for the first demand touch.
	ln.flags = 0
	if write {
		ln.dirty = true
	}
	return flags, true
}

// Touch refreshes LRU state of a resident block without altering flags or
// statistics (used by wrong-execution hits, which must not perturb the
// demand-provenance metadata).
func (c *Cache) Touch(addr uint64) bool {
	ln, _ := c.find(addr)
	if ln == nil {
		return false
	}
	c.clock++
	ln.used = c.clock
	return true
}

// Victim describes a block evicted by Insert.
type Victim struct {
	Addr  uint64
	Dirty bool
	Flags uint8
	Valid bool
}

// Untouched reports whether the evicted block still carried speculative
// provenance when it left the cache — i.e. it was brought in by wrong
// execution or a prefetch and no correct-path demand access ever claimed it
// (a demand hit clears the flags). This is the per-eviction signal the
// attribution layer classifies as a "useless" speculative fill.
func (v Victim) Untouched() bool {
	return v.Valid && v.Flags&(FlagWrong|FlagPrefetch) != 0
}

// Insert places addr's block with the given flags, evicting the LRU line of
// the set if necessary. Inserting an already-resident block just refreshes
// its LRU state and ORs the flags. The evicted block, if any, is returned.
func (c *Cache) Insert(addr uint64, flags uint8, dirty bool) Victim {
	if ln, _ := c.find(addr); ln != nil {
		c.clock++
		ln.used = c.clock
		ln.flags |= flags
		ln.dirty = ln.dirty || dirty
		return Victim{}
	}
	tag := addr >> c.blockShift
	set := c.sets[tag&c.setMask]
	vi := 0
	for i := range set {
		if !set[i].valid {
			vi = i
			break
		}
		if set[i].used < set[vi].used {
			vi = i
		}
	}
	var victim Victim
	if set[vi].valid {
		victim = Victim{
			Addr:  set[vi].tag << c.blockShift,
			Dirty: set[vi].dirty,
			Flags: set[vi].flags,
			Valid: true,
		}
		c.Evictions++
	}
	c.clock++
	set[vi] = line{tag: tag, valid: true, dirty: dirty, flags: flags, used: c.clock}
	return victim
}

// Remove extracts addr's block from the cache, returning its metadata.
// Used for the L1<->WEC swap on a WEC hit.
func (c *Cache) Remove(addr uint64) (flags uint8, dirty, ok bool) {
	ln, _ := c.find(addr)
	if ln == nil {
		return 0, false, false
	}
	flags, dirty = ln.flags, ln.dirty
	ln.valid = false
	return flags, dirty, true
}

// Invalidate drops addr's block if resident.
func (c *Cache) Invalidate(addr uint64) bool {
	_, _, ok := c.Remove(addr)
	return ok
}

// SetDirty marks a resident block dirty (sequential-mode update coherence).
func (c *Cache) SetDirty(addr uint64) bool {
	ln, _ := c.find(addr)
	if ln == nil {
		return false
	}
	ln.dirty = true
	return true
}

// ResidentBlocks returns the addresses of all valid blocks (for tests and
// invariant checks).
func (c *Cache) ResidentBlocks() []uint64 {
	var out []uint64
	for _, set := range c.sets {
		for _, ln := range set {
			if ln.valid {
				out = append(out, ln.tag<<c.blockShift)
			}
		}
	}
	return out
}

// Reset invalidates every line and clears statistics.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
	c.clock = 0
	c.Accesses, c.Hits, c.Misses, c.Evictions = 0, 0, 0, 0
}
