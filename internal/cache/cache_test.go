package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mk(t *testing.T, size, assoc, block int) *Cache {
	t.Helper()
	c, err := New(Params{SizeBytes: size, Assoc: assoc, BlockBytes: block})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	bad := []Params{
		{SizeBytes: 1024, Assoc: 1, BlockBytes: 0},
		{SizeBytes: 1024, Assoc: 1, BlockBytes: 48},   // not power of two
		{SizeBytes: 100, Assoc: 1, BlockBytes: 64},    // not multiple
		{SizeBytes: 3 * 64, Assoc: 2, BlockBytes: 64}, // blocks % assoc != 0
		{SizeBytes: 6 * 64, Assoc: 2, BlockBytes: 64}, // 3 sets, not pow2
		{SizeBytes: 0, Assoc: 1, BlockBytes: 64},
	}
	for _, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
	c := mk(t, 8192, 0, 64)
	if c.Assoc() != 128 || c.Blocks() != 128 {
		t.Errorf("fully assoc: assoc=%d blocks=%d", c.Assoc(), c.Blocks())
	}
}

func TestBlockAddr(t *testing.T) {
	c := mk(t, 1024, 2, 64)
	if c.BlockAddr(130) != 128 || c.BlockAddr(128) != 128 || c.BlockAddr(127) != 64 {
		t.Error("BlockAddr wrong")
	}
	if c.NextBlock(130) != 192 {
		t.Errorf("NextBlock = %d", c.NextBlock(130))
	}
}

func TestHitMiss(t *testing.T) {
	c := mk(t, 1024, 2, 64)
	if _, hit := c.Access(0, false); hit {
		t.Fatal("hit in empty cache")
	}
	c.Insert(0, 0, false)
	if _, hit := c.Access(63, false); !hit {
		t.Fatal("miss within inserted block")
	}
	if _, hit := c.Access(64, false); hit {
		t.Fatal("hit in neighbouring block")
	}
	if c.Accesses != 3 || c.Hits != 1 || c.Misses != 2 {
		t.Errorf("stats: %d/%d/%d", c.Accesses, c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, one set: blocks map to set 0 when size=2 blocks.
	c := mk(t, 128, 2, 64)
	c.Insert(0, 0, false)
	c.Insert(1024, 0, false)
	c.Access(0, false) // 0 now MRU
	v := c.Insert(2048, 0, false)
	if !v.Valid || v.Addr != 1024 {
		t.Fatalf("evicted %+v, want 1024", v)
	}
	if !c.Probe(0) || !c.Probe(2048) || c.Probe(1024) {
		t.Error("residency after eviction wrong")
	}
}

func TestInsertExistingRefreshes(t *testing.T) {
	c := mk(t, 128, 2, 64)
	c.Insert(0, 0, false)
	c.Insert(1024, 0, false)
	c.Insert(0, FlagWrong, true) // refresh, no eviction
	v := c.Insert(2048, 0, false)
	if v.Addr != 1024 {
		t.Errorf("refresh did not update LRU: evicted %#x", v.Addr)
	}
	fl, _ := c.Flags(0)
	if fl&FlagWrong == 0 {
		t.Error("flags not ORed on refresh")
	}
}

func TestDirtyEviction(t *testing.T) {
	c := mk(t, 64, 1, 64)
	c.Insert(0, 0, false)
	c.Access(0, true) // write makes it dirty
	v := c.Insert(4096, 0, false)
	if !v.Valid || !v.Dirty {
		t.Errorf("dirty victim = %+v", v)
	}
}

func TestAccessClearsFlags(t *testing.T) {
	c := mk(t, 64, 1, 64)
	c.Insert(0, FlagWrong|FlagPrefetch, false)
	fl, hit := c.Access(0, false)
	if !hit || fl != FlagWrong|FlagPrefetch {
		t.Fatalf("first access: flags=%#x hit=%v", fl, hit)
	}
	fl, _ = c.Access(0, false)
	if fl != 0 {
		t.Error("flags should clear after first demand hit")
	}
}

func TestVictimUntouched(t *testing.T) {
	c := mk(t, 64, 1, 64)
	// A wrong-fetched block never claimed by a demand access is evicted
	// with its speculative flags intact: Untouched reports it.
	c.Insert(0, FlagWrong, false)
	if v := c.Insert(4096, 0, false); !v.Untouched() {
		t.Errorf("unclaimed speculative victim = %+v", v)
	}
	// A demand access clears the flags; the eviction is of a claimed block.
	c.Insert(0, FlagPrefetch, false)
	c.Access(0, false)
	if v := c.Insert(4096, 0, false); v.Untouched() {
		t.Errorf("claimed victim reported untouched: %+v", v)
	}
	// An invalid victim is never "untouched".
	if (Victim{Flags: FlagWrong}).Untouched() {
		t.Error("invalid victim reported untouched")
	}
}

func TestTouchKeepsFlags(t *testing.T) {
	c := mk(t, 128, 2, 64)
	c.Insert(0, FlagWrong, false)
	if !c.Touch(0) {
		t.Fatal("Touch missed resident block")
	}
	fl, _ := c.Flags(0)
	if fl != FlagWrong {
		t.Error("Touch cleared flags")
	}
	if c.Touch(4096) {
		t.Error("Touch hit absent block")
	}
}

func TestRemoveAndInvalidate(t *testing.T) {
	c := mk(t, 128, 2, 64)
	c.Insert(0, FlagPrefetch, true)
	fl, dirty, ok := c.Remove(0)
	if !ok || fl != FlagPrefetch || !dirty {
		t.Fatalf("Remove = %#x %v %v", fl, dirty, ok)
	}
	if c.Probe(0) {
		t.Error("block still resident after Remove")
	}
	if c.Invalidate(0) {
		t.Error("Invalidate of absent block reported success")
	}
}

func TestSetIndexingIsolation(t *testing.T) {
	// 4 sets, direct mapped: addresses with different set bits don't evict
	// each other.
	c := mk(t, 256, 1, 64)
	for i := uint64(0); i < 4; i++ {
		c.Insert(i*64, 0, false)
	}
	for i := uint64(0); i < 4; i++ {
		if !c.Probe(i * 64) {
			t.Errorf("block %d evicted by a different set", i)
		}
	}
	// Same set, different tag evicts.
	c.Insert(256, 0, false)
	if c.Probe(0) {
		t.Error("direct-mapped conflict not evicted")
	}
}

// TestLRUMatchesModel drives the cache with random accesses and compares
// against a simple reference LRU model.
func TestLRUMatchesModel(t *testing.T) {
	const (
		entries = 8
		block   = 64
	)
	c, err := NewFullyAssoc(entries, block)
	if err != nil {
		t.Fatal(err)
	}
	var model []uint64 // model[0] is LRU, last is MRU
	ref := func(addr uint64) {
		for i, a := range model {
			if a == addr {
				model = append(append(model[:i:i], model[i+1:]...), addr)
				return
			}
		}
		if len(model) == entries {
			model = model[1:]
		}
		model = append(model, addr)
	}
	rng := rand.New(rand.NewSource(7))
	for n := 0; n < 5000; n++ {
		addr := uint64(rng.Intn(24)) * block
		if _, hit := c.Access(addr, false); !hit {
			c.Insert(addr, 0, false)
		}
		ref(addr)
		// Residency must match exactly.
		for _, a := range model {
			if !c.Probe(a) {
				t.Fatalf("step %d: model says %#x resident, cache disagrees", n, a)
			}
		}
		if got := len(c.ResidentBlocks()); got != len(model) {
			t.Fatalf("step %d: resident count %d != model %d", n, got, len(model))
		}
	}
}

func TestResidentNeverExceedsCapacity(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := mustNew(t, Params{SizeBytes: 512, Assoc: 2, BlockBytes: 64})
		for _, a := range addrs {
			addr := uint64(a)
			if _, hit := c.Access(addr, false); !hit {
				c.Insert(addr, 0, false)
			}
			if len(c.ResidentBlocks()) > c.Blocks() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInsertedBlockAlwaysResident(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := mustNew(t, Params{SizeBytes: 1024, Assoc: 4, BlockBytes: 32})
		for _, a := range addrs {
			addr := uint64(a)
			c.Insert(addr, 0, false)
			if !c.Probe(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	c := mk(t, 128, 2, 64)
	c.Insert(0, 0, false)
	c.Access(0, false)
	c.Reset()
	if c.Probe(0) || c.Accesses != 0 || c.Hits != 0 {
		t.Error("Reset incomplete")
	}
}

func TestMSHRMerge(t *testing.T) {
	f := NewMSHRFile(2)
	alloc, ok := f.Add(0x100, 1)
	if !alloc || !ok {
		t.Fatal("first add should allocate")
	}
	alloc, ok = f.Add(0x100, 2)
	if alloc || !ok {
		t.Fatal("second add should merge")
	}
	if f.Outstanding() != 1 || f.Merges != 1 {
		t.Errorf("outstanding=%d merges=%d", f.Outstanding(), f.Merges)
	}
	waiters := f.Complete(0x100)
	if len(waiters) != 2 || waiters[0] != 1 || waiters[1] != 2 {
		t.Errorf("waiters = %v", waiters)
	}
	if f.Outstanding() != 0 {
		t.Error("entry not freed")
	}
}

func TestMSHRFull(t *testing.T) {
	f := NewMSHRFile(1)
	f.Add(0x100, 1)
	if _, ok := f.Add(0x200, 2); ok {
		t.Fatal("full file accepted new block")
	}
	if f.FullStalls != 1 {
		t.Error("full stall not counted")
	}
	// Merging into the existing block still works when full.
	if _, ok := f.Add(0x100, 3); !ok {
		t.Error("merge refused while full")
	}
	f.Complete(0x100)
	if _, ok := f.Add(0x200, 2); !ok {
		t.Error("add refused after free")
	}
}

func TestMSHRCompleteAbsentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Complete on absent block did not panic")
		}
	}()
	NewMSHRFile(4).Complete(0x1)
}

func TestMSHRWaiterOrderProperty(t *testing.T) {
	f := func(tokens []int64) bool {
		file := NewMSHRFile(4)
		for _, tok := range tokens {
			file.Add(0x40, tok)
		}
		if len(tokens) == 0 {
			return true
		}
		got := file.Complete(0x40)
		if len(got) != len(tokens) {
			return false
		}
		for i := range got {
			if got[i] != tokens[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// mustNew builds a cache from known-valid parameters, failing the test on
// a constructor error (the panicking MustNew was removed when config
// validation moved to returned errors).
func mustNew(t *testing.T, p Params) *Cache {
	t.Helper()
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
