package core

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/interp"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memimg"
)

// orderDMem wraps testDMem and records the address order in which stores
// reach memory at commit.
type orderDMem struct {
	*testDMem
	commits []uint64
}

func (d *orderDMem) CommitStore(cycle uint64, addr uint64, val int64, target bool, pc int) {
	d.commits = append(d.commits, addr)
	d.testDMem.CommitStore(cycle, addr, val, target, pc)
}

// TestLSQCommitOrderUnderMispredicts is the regression test for the LSQ
// ring buffer: stores must leave the queue in program order — oldest
// first — even while data-dependent mispredicts force partial squashes
// (recover truncates the ring to a prefix) and the queue index wraps its
// backing array many times over. The original slice implementation
// spliced the head off with an O(n) copy; the ring must preserve the
// exact same age order.
func TestLSQCommitOrderUnderMispredicts(t *testing.T) {
	const n = 96 // several times the LSQ capacity, forcing wrap-around
	b := asm.New()
	arr := b.Alloc("arr", 8*n, 0)
	out := b.Alloc("out", 8*n, 0)
	// arr[k] is a pseudo-random bit so the branch below is unpredictable.
	v := uint32(0x9e3779b9)
	for k := 0; k < n; k++ {
		v ^= v << 13
		v ^= v >> 17
		v ^= v << 5
		b.InitWord(arr+uint64(8*k), int64(v&1))
	}
	b.Li(1, 0)          // k
	b.Li(2, n)          // limit
	b.Li(3, int64(arr)) // arr base
	b.Li(4, int64(out)) // out base
	b.Label("loop")
	b.OpI(isa.SLLI, 5, 1, 3)
	b.Op3(isa.ADD, 6, 5, 3)
	b.Ld(7, 0, 6) // arr[k]: 0 or 1, load-dependent branch => mispredicts
	b.Op3(isa.ADD, 8, 5, 4)
	b.Br(isa.BEQ, 7, 0, "even")
	b.OpI(isa.ADDI, 9, 7, 5)
	b.Jmp("store")
	b.Label("even")
	b.OpI(isa.ADDI, 9, 7, 11)
	b.Label("store")
	b.St(9, 0, 8) // out[k]
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Br(isa.BLT, 1, 2, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	h, err := mem.NewHierarchy(1, mem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	img := memimg.New()
	asm.LoadData(p, img)
	d := &orderDMem{testDMem: newTestDMem(img)}
	e := &testEnv{}
	c, err := New(DefaultConfig(), p, h.IUnit(0), d, e)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{c: c, h: h, d: d.testDMem, e: e, prog: p}
	r.warmI(t)

	c.StartMain()
	var cyc uint64
	for ; cyc < 200_000; cyc++ {
		h.BeginCycle(cyc)
		d.begin()
		c.Step(cyc)
		h.Tick(cyc)
		if e.halted {
			break
		}
	}
	if !e.halted {
		t.Fatal("program did not halt")
	}

	// Every committed store must be out[k] for consecutive k: program order,
	// no skips, no duplicates from squashed wrong-path stores.
	if len(d.commits) != n {
		t.Fatalf("committed %d stores, want %d", len(d.commits), n)
	}
	for k, addr := range d.commits {
		if want := out + uint64(8*k); addr != want {
			t.Fatalf("commit %d went to %#x, want %#x (program order violated)", k, addr, want)
		}
	}
	if c.Stats.Mispredicts == 0 {
		t.Fatal("no mispredicts: the test did not exercise recovery")
	}

	// And the architectural outcome still matches the interpreter.
	ref, err := interp.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := img.Checksum(), ref.MemCheck; got != want {
		t.Errorf("memory checksum %#x, interp says %#x", got, want)
	}
}
