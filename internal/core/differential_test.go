package core

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// randProgram generates a random, terminating, sequential program: a fixed
// number of basic blocks of random arithmetic/memory operations linked by
// bounded loops and forward branches, followed by HALT. Every generated
// program is valid by construction, so the differential test compares the
// out-of-order core against the functional interpreter on arbitrary code.
func randProgram(rng *rand.Rand) *isa.Program {
	b := asm.New()
	const (
		blocks    = 8
		blockOps  = 12
		dataWords = 256
	)
	data := b.Alloc("data", 8*dataWords, 0)
	for i := 0; i < dataWords; i++ {
		b.InitWord(data+uint64(8*i), rng.Int63n(1<<32)-1<<31)
	}
	// r1 = data base; r2 = word-index mask; r27..r29 loop counters.
	b.Li(1, int64(data))
	b.Li(2, dataWords-1)

	intOps := []isa.Op{isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR,
		isa.SLL, isa.SRL, isa.SRA, isa.SLT, isa.SLTU, isa.DIV, isa.REM}
	immOps := []isa.Op{isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLTI}
	shiftImmOps := []isa.Op{isa.SLLI, isa.SRLI, isa.SRAI}
	fpOps := []isa.Op{isa.FADD, isa.FSUB, isa.FMUL, isa.FMIN, isa.FMAX}

	// Working registers r3..r14 (integer), f1..f6 (FP). r15 scratch address.
	reg := func() int { return 3 + rng.Intn(12) }
	freg := func() int { return 1 + rng.Intn(6) }

	// emitAddr materializes a random in-bounds data address into r15.
	emitAddr := func() {
		b.OpI(isa.ANDI, 15, reg(), int64(dataWords-1))
		b.OpI(isa.SLLI, 15, 15, 3)
		b.Op3(isa.ADD, 15, 15, 1)
	}

	for blk := 0; blk < blocks; blk++ {
		for op := 0; op < blockOps; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2:
				b.Op3(intOps[rng.Intn(len(intOps))], reg(), reg(), reg())
			case 3:
				b.OpI(immOps[rng.Intn(len(immOps))], reg(), reg(), rng.Int63n(1024)-512)
			case 4:
				b.OpI(shiftImmOps[rng.Intn(len(shiftImmOps))], reg(), reg(), rng.Int63n(63))
			case 5:
				emitAddr()
				b.Ld(reg(), 0, 15)
			case 6:
				emitAddr()
				b.St(reg(), 0, 15)
			case 7:
				b.Op3(fpOps[rng.Intn(len(fpOps))], freg(), freg(), freg())
			case 8:
				emitAddr()
				if rng.Intn(2) == 0 {
					b.Fld(freg(), 0, 15)
				} else {
					b.Fst(freg(), 0, 15)
				}
			case 9:
				// Data-dependent forward branch within the block.
				label := blockLabel(blk, op)
				cond := []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.BGE}[rng.Intn(4)]
				b.Br(cond, reg(), reg(), label)
				b.OpI(isa.ADDI, reg(), reg(), 1)
				b.Label(label)
			}
		}
		// A bounded loop back over this block? Keep it simple: each block
		// runs a small counted self-loop to exercise backward branches.
		if rng.Intn(2) == 0 {
			cnt := 27 + rng.Intn(3) // r27..r29
			label := blockLabel(blk, 999)
			b.Li(cnt, 0)
			b.Label(label)
			b.Op3(isa.ADD, reg(), reg(), cnt)
			b.OpI(isa.ADDI, cnt, cnt, 1)
			b.OpI(isa.SLTI, 16, cnt, int64(2+rng.Intn(6)))
			b.Br(isa.BNE, 16, 0, label)
		}
	}
	b.Halt()
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

func blockLabel(blk, op int) string {
	return "L" + string(rune('a'+blk)) + "_" + string(rune('a'+op%26)) + string(rune('a'+op/26))
}

// TestDifferentialRandomPrograms runs randomly generated programs on the
// out-of-order core and on the reference interpreter and requires
// bit-identical architectural results: registers, FP registers, and the
// full memory image. This catches forwarding, ordering, and recovery bugs
// that targeted tests miss.
func TestDifferentialRandomPrograms(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 5
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed) * 7919))
		p := randProgram(rng)
		r := buildRig(t, DefaultConfig(), p)
		r.runToHalt(t, 2_000_000)
		if t.Failed() {
			t.Fatalf("seed %d failed (see above)", seed)
		}
		checkAgainstInterp(t, r)
		if t.Failed() {
			t.Fatalf("seed %d: architectural divergence", seed)
		}
	}
}

// TestDifferentialNarrowCore repeats the differential test on a 1-wide,
// small-ROB core, which exercises structural-stall paths.
func TestDifferentialNarrowCore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IssueWidth = 1
	cfg.ROBSize = 8
	cfg.LSQSize = 4
	cfg.IntALU = 1
	cfg.IntMul = 1
	cfg.FPAdd = 1
	cfg.FPMul = 1
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	for seed := 100; seed < 100+seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed) * 104729))
		p := randProgram(rng)
		r := buildRig(t, cfg, p)
		r.runToHalt(t, 5_000_000)
		checkAgainstInterp(t, r)
		if t.Failed() {
			t.Fatalf("seed %d: divergence on narrow core", seed)
		}
	}
}

// TestDifferentialWrongPathCore repeats the differential test with
// wrong-path execution enabled: extracted wrong loads must never alter
// architectural state.
func TestDifferentialWrongPathCore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WrongPathExec = true
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	for seed := 200; seed < 200+seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed) * 15485863))
		p := randProgram(rng)
		r := buildRig(t, cfg, p)
		r.runToHalt(t, 2_000_000)
		checkAgainstInterp(t, r)
		if t.Failed() {
			t.Fatalf("seed %d: divergence with wrong-path execution", seed)
		}
	}
}
