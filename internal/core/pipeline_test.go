package core

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

func TestFPPipelineMatchesInterp(t *testing.T) {
	b := asm.New()
	a := b.Alloc("v", 8*32, 0)
	for i := 0; i < 16; i++ {
		b.InitFloat(a+uint64(8*i), float64(i)+0.5)
	}
	b.Li(1, int64(a))
	b.Fli(1, 0) // acc
	b.Li(2, 0)
	b.Li(3, 16)
	b.Label("loop")
	b.OpI(isa.SLLI, 4, 2, 3)
	b.Op3(isa.ADD, 4, 4, 1)
	b.Fld(2, 0, 4)
	b.Fli(3, 1.5)
	b.Op3(isa.FMUL, 2, 2, 3)
	b.Op3(isa.FADD, 1, 1, 2)
	b.OpI(isa.ADDI, 2, 2, 1)
	b.Br(isa.BLT, 2, 3, "loop")
	b.Fst(1, 128, 1) // store the sum past the inputs
	b.Halt()
	p, _ := b.Build()
	r := buildRig(t, DefaultConfig(), p)
	r.runToHalt(t, 100000)
	checkAgainstInterp(t, r)
	want := 0.0
	for i := 0; i < 16; i++ {
		want += (float64(i) + 0.5) * 1.5
	}
	if got := r.d.img.ReadFloat(a + 128); got != want {
		t.Errorf("FP sum = %g, want %g", got, want)
	}
}

func TestJRMispredictRecovers(t *testing.T) {
	// An indirect jump whose target the RAS cannot predict (no matching
	// JAL): the core must recover to the register target.
	b := asm.New()
	b.Li(1, 6) // target: the Li r3 below
	b.Li(2, 0)
	b.Jr(1)
	b.Li(2, 99) // skipped
	b.Li(2, 98) // skipped
	b.Nop()
	b.Li(3, 7) // pc 6: landed here
	b.Halt()
	p, _ := b.Build()
	r := buildRig(t, DefaultConfig(), p)
	r.runToHalt(t, 10000)
	checkAgainstInterp(t, r)
	if r.c.IntRegs[2] != 0 || r.c.IntRegs[3] != 7 {
		t.Errorf("r2=%d r3=%d", r.c.IntRegs[2], r.c.IntRegs[3])
	}
	if r.c.Stats.Mispredicts == 0 {
		t.Error("unpredicted JR should count as a misprediction")
	}
}

func TestROBWrapAround(t *testing.T) {
	// A program much longer than the ROB forces head/tail wraparound many
	// times; results must stay exact.
	b := asm.New()
	b.Li(1, 0)
	for i := 0; i < 500; i++ {
		b.OpI(isa.ADDI, 1, 1, 2)
	}
	b.Halt()
	p, _ := b.Build()
	cfg := DefaultConfig()
	cfg.ROBSize = 16
	cfg.LSQSize = 16
	r := buildRig(t, cfg, p)
	r.runToHalt(t, 100000)
	if r.c.IntRegs[1] != 1000 {
		t.Errorf("r1 = %d, want 1000", r.c.IntRegs[1])
	}
}

func TestLSQCapacityStallsFetch(t *testing.T) {
	// More outstanding loads than LSQ entries: must not deadlock or drop.
	b := asm.New()
	a := b.Alloc("arr", 8*64, 0)
	for i := 0; i < 64; i++ {
		b.InitWord(a+uint64(8*i), int64(i))
	}
	b.Li(1, int64(a))
	b.Li(3, 0)
	for i := 0; i < 64; i++ {
		b.Ld(2, int64(8*i), 1)
		b.Op3(isa.ADD, 3, 3, 2)
	}
	b.Halt()
	p, _ := b.Build()
	cfg := DefaultConfig()
	cfg.LSQSize = 4
	r := buildRig(t, cfg, p)
	r.runToHalt(t, 100000)
	if r.c.IntRegs[3] != 63*64/2 {
		t.Errorf("sum = %d", r.c.IntRegs[3])
	}
}

func TestSeqLoopsRunsThreadCode(t *testing.T) {
	// With SeqLoops, a thread-pipelined loop runs as sequential code on the
	// bare core: FORK records, THEND jumps back, ABORT falls through.
	b := asm.New()
	a := b.Alloc("arr", 8*90, 0)
	b.Li(1, 0)
	b.Li(2, 10)
	b.Li(3, int64(a))
	b.Begin(1, 2, 3)
	b.Label("body")
	b.Op3(isa.ADD, 9, 1, 0)
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Fork("body")
	b.Tsagd()
	b.OpI(isa.SLLI, 5, 9, 3)
	b.Op3(isa.ADD, 5, 5, 3)
	b.St(9, 0, 5)
	b.Br(isa.BLT, 1, 2, "cont")
	b.Abort()
	b.Jmp("after")
	b.Label("cont")
	b.Thend()
	b.Label("after")
	b.Halt()
	p, _ := b.Build()
	cfg := DefaultConfig()
	cfg.SeqLoops = true
	r := buildRig(t, cfg, p)
	r.runToHalt(t, 100000)
	checkAgainstInterp(t, r)
	for i := 0; i < 10; i++ {
		if got := r.d.img.ReadWord(a + uint64(8*i)); got != int64(i) {
			t.Errorf("arr[%d] = %d", i, got)
		}
	}
	if len(r.e.forks) != 10 {
		t.Errorf("forks = %d, want 10", len(r.e.forks))
	}
	if r.e.aborts != 1 {
		t.Errorf("aborts = %d", r.e.aborts)
	}
}

func TestNestedMispredictRecovery(t *testing.T) {
	// Two data-dependent branches back to back: recovery of the older one
	// must squash the younger's in-flight recovery state cleanly.
	b := asm.New()
	a := b.Alloc("bits", 8*128, 0)
	seed := uint64(12345)
	for i := 0; i < 128; i++ {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		b.InitWord(a+uint64(8*i), int64(seed&3))
	}
	b.Li(1, 0)
	b.Li(2, 128)
	b.Li(3, int64(a))
	b.Li(4, 0)
	b.Label("loop")
	b.OpI(isa.SLLI, 5, 1, 3)
	b.Op3(isa.ADD, 5, 5, 3)
	b.Ld(6, 0, 5)
	b.OpI(isa.ANDI, 7, 6, 1)
	b.Br(isa.BNE, 7, 0, "b1")
	b.OpI(isa.ADDI, 4, 4, 1)
	b.Label("b1")
	b.OpI(isa.ANDI, 7, 6, 2)
	b.Br(isa.BNE, 7, 0, "b2")
	b.OpI(isa.ADDI, 4, 4, 100)
	b.Label("b2")
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Br(isa.BLT, 1, 2, "loop")
	b.Halt()
	p, _ := b.Build()
	cfg := DefaultConfig()
	cfg.WrongPathExec = true
	r := buildRig(t, cfg, p)
	r.runToHalt(t, 1000000)
	checkAgainstInterp(t, r)
	if r.c.Stats.Mispredicts == 0 {
		t.Error("expected mispredictions")
	}
}

func TestWrongCommitAccounting(t *testing.T) {
	b := asm.New()
	b.Li(1, 0)
	for i := 0; i < 20; i++ {
		b.OpI(isa.ADDI, 1, 1, 1)
	}
	b.Halt()
	p, _ := b.Build()
	r := buildRig(t, DefaultConfig(), p)
	r.c.StartMain()
	r.c.MarkWrong()
	var cyc uint64
	for ; cyc < 10000 && !r.e.halted; cyc++ {
		r.h.BeginCycle(cyc)
		r.d.begin()
		r.c.Step(cyc)
		r.h.Tick(cyc)
	}
	if r.c.Stats.Commits != 0 {
		t.Errorf("wrong-mode core counted %d correct commits", r.c.Stats.Commits)
	}
	if r.c.Stats.WrongCommits == 0 {
		t.Error("wrong-mode commits not counted")
	}
}

func TestContinueAtKeepsArchState(t *testing.T) {
	b := asm.New()
	b.Li(1, 5)
	b.Halt()   // pc 1
	b.Li(2, 7) // pc 2: resumed here
	b.Halt()
	p, _ := b.Build()
	r := buildRig(t, DefaultConfig(), p)
	r.c.StartMain()
	var cyc uint64
	for ; cyc < 1000 && !r.e.halted; cyc++ {
		r.h.BeginCycle(cyc)
		r.d.begin()
		r.c.Step(cyc)
		r.h.Tick(cyc)
	}
	r.e.halted = false
	r.c.ContinueAt(2)
	for ; cyc < 2000 && !r.e.halted; cyc++ {
		r.h.BeginCycle(cyc)
		r.d.begin()
		r.c.Step(cyc)
		r.h.Tick(cyc)
	}
	if r.c.IntRegs[1] != 5 || r.c.IntRegs[2] != 7 {
		t.Errorf("r1=%d r2=%d after resume", r.c.IntRegs[1], r.c.IntRegs[2])
	}
}

func TestIssueWidthLimitsThroughput(t *testing.T) {
	// With issue width 2 and 8 independent ops per "bundle", IPC can never
	// exceed 2.
	b := asm.New()
	const n = 400
	for i := 0; i < n; i++ {
		b.Li(1+(i%8), int64(i))
	}
	b.Halt()
	p, _ := b.Build()
	cfg := DefaultConfig()
	cfg.IssueWidth = 2
	r := buildRig(t, cfg, p)
	r.warmI(t)
	cycles := r.runToHalt(t, 100000)
	if float64(n)/float64(cycles) > 2.01 {
		t.Errorf("IPC %.2f exceeds issue width 2", float64(n)/float64(cycles))
	}
}

func TestFUContentionSerializesMultiplies(t *testing.T) {
	// One multiplier: independent MULs serialize at 1 per cycle issue into
	// the pipelined unit; with 8 multipliers they overlap more. Compare.
	prog := func() *isa.Program {
		b := asm.New()
		for i := 0; i < 64; i++ {
			b.Op3(isa.MUL, 1+(i%8), 9, 10)
		}
		b.Halt()
		p, _ := b.Build()
		return p
	}
	one := DefaultConfig()
	one.IntMul = 1
	r1 := buildRig(t, one, prog())
	r1.warmI(t)
	c1 := r1.runToHalt(t, 10000)
	r8 := buildRig(t, DefaultConfig(), prog())
	r8.warmI(t)
	c8 := r8.runToHalt(t, 10000)
	if c1 <= c8 {
		t.Errorf("1 multiplier (%d cyc) not slower than 4 (%d cyc)", c1, c8)
	}
}
