package core

import (
	"math"
	"testing"

	"repro/internal/asm"
	"repro/internal/interp"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memimg"
)

// testDMem is a functional memory with a per-cycle port limit and optional
// stalling addresses; loads complete at hit latency.
type testDMem struct {
	img        *memimg.Image
	ports      int
	used       int
	stalls     map[uint64]int // addr -> remaining stall polls
	wrongLoads []uint64
	gate       bool // when true, LoadsAllowed returns false
}

func newTestDMem(img *memimg.Image) *testDMem {
	return &testDMem{img: img, ports: 2, stalls: map[uint64]int{}}
}

func (d *testDMem) begin() { d.used = 0 }

func (d *testDMem) TryLoad(cycle uint64, addr uint64, wrong bool, pc int) LoadResult {
	if n := d.stalls[addr]; n > 0 {
		d.stalls[addr] = n - 1
		return LoadResult{Status: LoadStall}
	}
	if d.used >= d.ports {
		return LoadResult{Status: LoadNoPort}
	}
	d.used++
	return LoadResult{Status: LoadForwarded, Value: d.img.ReadWord(addr)}
}

func (d *testDMem) WrongLoad(cycle uint64, addr uint64, pc int) bool {
	if d.used >= d.ports {
		return false
	}
	d.used++
	d.wrongLoads = append(d.wrongLoads, addr)
	return true
}

func (d *testDMem) CommitStore(cycle uint64, addr uint64, val int64, target bool, pc int) {
	d.img.WriteWord(addr, val)
}

func (d *testDMem) LoadsAllowed() bool { return !d.gate }

// testEnv records STA control events.
type testEnv struct {
	halted bool
	forks  []int
	aborts int
	thends int
	begins int
	tsas   []uint64
}

func (e *testEnv) OnBegin(cycle uint64, mask int64)   { e.begins++ }
func (e *testEnv) OnFork(cycle uint64, target int)    { e.forks = append(e.forks, target) }
func (e *testEnv) OnTsagd(cycle uint64)               {}
func (e *testEnv) OnTsa(cycle uint64, addr uint64)    { e.tsas = append(e.tsas, addr) }
func (e *testEnv) OnThend(cycle uint64)               { e.thends++ }
func (e *testEnv) OnAbort(cycle uint64, resumePC int) { e.aborts++ }
func (e *testEnv) OnHalt(cycle uint64)                { e.halted = true }

type rig struct {
	c    *Core
	h    *mem.Hierarchy
	d    *testDMem
	e    *testEnv
	prog *isa.Program
}

func buildRig(t *testing.T, cfg Config, p *isa.Program) *rig {
	t.Helper()
	h, err := mem.NewHierarchy(1, mem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	img := memimg.New()
	asm.LoadData(p, img)
	d := newTestDMem(img)
	e := &testEnv{}
	c, err := New(cfg, p, h.IUnit(0), d, e)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{c: c, h: h, d: d, e: e, prog: p}
}

// warmI touches every program block so fetch starts warm (as it would be
// inside any loop); cold-code fetch behaviour is covered by the mem tests.
func (r *rig) warmI(t *testing.T) {
	t.Helper()
	var cyc uint64 = 0
	for pc := 0; pc < len(r.prog.Insts); pc += 4 {
		for i := 0; i < 1000; i++ {
			r.h.BeginCycle(cyc)
			ok := r.h.IUnit(0).FetchReady(cyc, pc)
			r.h.Tick(cyc)
			cyc++
			if ok {
				break
			}
		}
	}
}

// runToHalt drives the rig until OnHalt or the cycle limit.
func (r *rig) runToHalt(t *testing.T, limit uint64) uint64 {
	t.Helper()
	r.c.StartMain()
	var cyc uint64
	for ; cyc < limit; cyc++ {
		r.h.BeginCycle(cyc)
		r.d.begin()
		r.c.Step(cyc)
		r.h.Tick(cyc)
		if r.e.halted {
			return cyc
		}
	}
	t.Fatalf("program did not halt within %d cycles", limit)
	return cyc
}

// checkAgainstInterp runs the same program functionally and compares
// architectural results.
func checkAgainstInterp(t *testing.T, r *rig) *interp.Result {
	t.Helper()
	ref, err := interp.Run(r.prog)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < isa.NumIntRegs; i++ {
		if r.c.IntRegs[i] != ref.IntRegs[i] {
			t.Errorf("r%d = %d, interp says %d", i, r.c.IntRegs[i], ref.IntRegs[i])
		}
	}
	for i := 0; i < isa.NumFPRegs; i++ {
		if math.Float64bits(r.c.FPRegs[i]) != math.Float64bits(ref.FPRegs[i]) {
			t.Errorf("f%d = %g (%#x), interp says %g (%#x)", i,
				r.c.FPRegs[i], math.Float64bits(r.c.FPRegs[i]),
				ref.FPRegs[i], math.Float64bits(ref.FPRegs[i]))
		}
	}
	if got, want := r.d.img.Checksum(), ref.MemCheck; got != want {
		t.Errorf("memory checksum %#x, interp says %#x", got, want)
	}
	return ref
}

func TestStraightLineMatchesInterp(t *testing.T) {
	b := asm.New()
	b.Li(1, 10)
	b.Li(2, 3)
	b.Op3(isa.ADD, 3, 1, 2)
	b.Op3(isa.MUL, 4, 3, 2)
	b.Op3(isa.SUB, 5, 4, 1)
	b.OpI(isa.SLLI, 6, 5, 4)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := buildRig(t, DefaultConfig(), p)
	r.runToHalt(t, 10000)
	checkAgainstInterp(t, r)
}

func TestDependencyChainLatency(t *testing.T) {
	// A chain of dependent adds cannot finish faster than its length.
	b := asm.New()
	b.Li(1, 0)
	const chain = 50
	for i := 0; i < chain; i++ {
		b.OpI(isa.ADDI, 1, 1, 1)
	}
	b.Halt()
	p, _ := b.Build()
	r := buildRig(t, DefaultConfig(), p)
	cycles := r.runToHalt(t, 10000)
	if r.c.IntRegs[1] != chain {
		t.Fatalf("r1 = %d", r.c.IntRegs[1])
	}
	if cycles < chain {
		t.Errorf("dependent chain of %d finished in %d cycles", chain, cycles)
	}
}

func TestIndependentOpsOverlap(t *testing.T) {
	// Independent ops should achieve IPC well above 1 on an 8-wide core.
	b := asm.New()
	const n = 200
	for i := 0; i < n; i++ {
		b.Li(1+(i%8), int64(i))
	}
	b.Halt()
	p, _ := b.Build()
	r := buildRig(t, DefaultConfig(), p)
	r.warmI(t)
	cycles := r.runToHalt(t, 10000)
	if cycles > n/2 {
		t.Errorf("independent ops took %d cycles for %d insts (no overlap?)", cycles, n)
	}
}

func TestLoopMatchesInterp(t *testing.T) {
	b := asm.New()
	b.Li(1, 0)
	b.Li(2, 100)
	b.Li(3, 0)
	b.Label("loop")
	b.Op3(isa.ADD, 3, 3, 1)
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Br(isa.BLT, 1, 2, "loop")
	b.Halt()
	p, _ := b.Build()
	r := buildRig(t, DefaultConfig(), p)
	r.runToHalt(t, 100000)
	checkAgainstInterp(t, r)
	if r.c.IntRegs[3] != 4950 {
		t.Errorf("sum = %d", r.c.IntRegs[3])
	}
	if r.c.Stats.Branches != 100 {
		t.Errorf("branches = %d", r.c.Stats.Branches)
	}
}

func TestDataDependentBranchesMatchInterp(t *testing.T) {
	// Alternating branch pattern forces mispredictions; results must still
	// be architecturally exact.
	b := asm.New()
	a := b.Alloc("arr", 8*64, 0)
	for i := 0; i < 64; i++ {
		b.InitWord(a+uint64(8*i), int64(i*37%13))
	}
	b.Li(1, 0)        // i
	b.Li(2, 64)       // n
	b.Li(3, int64(a)) // base
	b.Li(4, 0)        // acc
	b.Li(7, 6)        // threshold
	b.Label("loop")
	b.OpI(isa.SLLI, 5, 1, 3)
	b.Op3(isa.ADD, 5, 5, 3)
	b.Ld(6, 0, 5)
	b.Br(isa.BLT, 6, 7, "small")
	b.Op3(isa.ADD, 4, 4, 6)
	b.Jmp("next")
	b.Label("small")
	b.Op3(isa.SUB, 4, 4, 6)
	b.Label("next")
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Br(isa.BLT, 1, 2, "loop")
	b.Halt()
	p, _ := b.Build()
	r := buildRig(t, DefaultConfig(), p)
	r.runToHalt(t, 100000)
	checkAgainstInterp(t, r)
	if r.c.Stats.Mispredicts == 0 {
		t.Error("expected some mispredictions on a data-dependent branch")
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	b := asm.New()
	a := b.Alloc("x", 8, 0)
	b.Li(1, int64(a))
	b.Li(2, 77)
	b.St(2, 0, 1)
	b.Ld(3, 0, 1) // must see 77 via LSQ forwarding (store not yet committed)
	b.OpI(isa.ADDI, 3, 3, 1)
	b.Halt()
	p, _ := b.Build()
	r := buildRig(t, DefaultConfig(), p)
	r.runToHalt(t, 10000)
	checkAgainstInterp(t, r)
	if r.c.IntRegs[3] != 78 {
		t.Errorf("r3 = %d, want 78", r.c.IntRegs[3])
	}
}

func TestLoadWaitsForUnknownStoreAddress(t *testing.T) {
	// A load must not bypass an older store whose address is unresolved;
	// this program would read the wrong value if it did.
	b := asm.New()
	a := b.Alloc("arr", 64, 0)
	b.InitWord(a, 5)
	b.Li(1, int64(a))
	b.Li(2, 9)
	// The store address depends on a long-latency op (division chain).
	b.Li(4, 640)
	b.Li(5, 10)
	b.Op3(isa.DIV, 4, 4, 5) // 64
	b.Op3(isa.DIV, 4, 4, 5) // 6
	b.Op3(isa.MUL, 4, 4, 0) // 0
	b.Op3(isa.ADD, 6, 1, 4) // addr = a
	b.St(2, 0, 6)           // mem[a] = 9, address late
	b.Ld(3, 0, 1)           // must see 9
	b.Halt()
	p, _ := b.Build()
	r := buildRig(t, DefaultConfig(), p)
	r.runToHalt(t, 10000)
	checkAgainstInterp(t, r)
	if r.c.IntRegs[3] != 9 {
		t.Errorf("r3 = %d, want 9 (load bypassed unresolved store)", r.c.IntRegs[3])
	}
}

func TestJalJrReturn(t *testing.T) {
	b := asm.New()
	b.Jal(31, "fn")
	b.Li(2, 1)
	b.Jal(31, "fn")
	b.Li(3, 1)
	b.Halt()
	b.Label("fn")
	b.OpI(isa.ADDI, 4, 4, 1)
	b.Jr(31)
	p, _ := b.Build()
	r := buildRig(t, DefaultConfig(), p)
	r.runToHalt(t, 10000)
	checkAgainstInterp(t, r)
	if r.c.IntRegs[4] != 2 {
		t.Errorf("fn called %d times", r.c.IntRegs[4])
	}
}

func TestWrongPathLoadExtraction(t *testing.T) {
	// A branch whose not-taken path contains ready loads: with
	// WrongPathExec those loads continue to memory after the recovery.
	b := asm.New()
	arr := b.Alloc("arr", 8*32, 0)
	b.Li(1, int64(arr))
	// Branch condition resolves slowly (division chain), giving the fetch
	// unit time to run down the predicted (fall-through) path and make the
	// loads ready — the scenario of the paper's Figure 3.
	b.Li(2, 640)
	b.Li(5, 10)
	b.Op3(isa.DIV, 2, 2, 5) // 64
	b.Op3(isa.DIV, 2, 2, 5) // 6
	b.Li(3, 0)
	b.Br(isa.BNE, 2, 0, "skip") // taken (r2 = 6); trained not-taken below
	// Fall-through (wrong) path: loads with ready addresses.
	b.Ld(4, 0, 1)
	b.Ld(6, 64, 1)
	b.Ld(7, 128, 1)
	b.Label("skip")
	b.OpI(isa.ADDI, 3, 3, 1)
	b.Halt()
	p, _ := b.Build()
	cfg := DefaultConfig()
	cfg.WrongPathExec = true
	r := buildRig(t, cfg, p)
	r.warmI(t)
	// Hold loads at the issue gate so they are address-ready but not yet
	// issued when the branch resolves (Figure 3's loads C and D: "waiting
	// for a free port"). The correct path has no loads, so the program
	// still completes.
	r.d.gate = true
	// Force a misprediction: train the branch PC to predict not-taken.
	r.c.StartMain()
	bpc := int(p.Symbols["skip"]) - 4 // the BNE
	for i := 0; i < 8; i++ {
		r.c.Predictor().UpdateDirection(bpc, false, false)
	}
	var cyc uint64
	for ; cyc < 10000 && !r.e.halted; cyc++ {
		r.h.BeginCycle(cyc)
		r.d.begin()
		r.c.Step(cyc)
		r.h.Tick(cyc)
	}
	if !r.e.halted {
		t.Fatal("did not halt")
	}
	if r.c.Stats.Mispredicts == 0 {
		t.Fatal("branch was not mispredicted; test setup broken")
	}
	if len(r.d.wrongLoads) == 0 {
		t.Fatal("no wrong-path loads continued to memory")
	}
	// The wrong loads must target the fall-through path's addresses.
	want := map[uint64]bool{arr: true, arr + 64: true, arr + 128: true}
	for _, a := range r.d.wrongLoads {
		if !want[a] {
			t.Errorf("unexpected wrong load to %#x", a)
		}
	}
	// Architectural state must be untouched by wrong-path execution.
	if r.c.IntRegs[4] != 0 || r.c.IntRegs[6] != 0 || r.c.IntRegs[7] != 0 {
		t.Error("wrong-path loads altered registers")
	}
}

func TestNoWrongPathLoadsWhenDisabled(t *testing.T) {
	b := asm.New()
	arr := b.Alloc("arr", 256, 0)
	b.Li(1, int64(arr))
	b.Li(2, 1)
	b.Br(isa.BNE, 2, 0, "skip")
	b.Ld(4, 0, 1)
	b.Label("skip")
	b.Halt()
	p, _ := b.Build()
	r := buildRig(t, DefaultConfig(), p) // WrongPathExec off (orig)
	r.c.StartMain()
	bpc := 2
	for i := 0; i < 8; i++ {
		r.c.Predictor().UpdateDirection(bpc, false, false)
	}
	var cyc uint64
	for ; cyc < 10000 && !r.e.halted; cyc++ {
		r.h.BeginCycle(cyc)
		r.d.begin()
		r.c.Step(cyc)
		r.h.Tick(cyc)
	}
	if len(r.d.wrongLoads) != 0 {
		t.Error("orig configuration issued wrong-path loads")
	}
}

func TestSTAEventsReachEnv(t *testing.T) {
	b := asm.New()
	b.Begin(1)
	b.Li(1, 0)
	b.Label("body")
	b.Fork("body")
	b.Tsagd()
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Abort()
	b.Halt() // not reached in this sequential harness; env stops at abort
	p, _ := b.Build()
	r := buildRig(t, DefaultConfig(), p)
	r.c.StartMain()
	var cyc uint64
	for ; cyc < 10000 && r.e.aborts == 0; cyc++ {
		r.h.BeginCycle(cyc)
		r.d.begin()
		r.c.Step(cyc)
		r.h.Tick(cyc)
	}
	if r.e.begins != 1 {
		t.Errorf("begins = %d", r.e.begins)
	}
	if len(r.e.forks) != 1 || r.e.forks[0] != int(p.Symbols["body"]) {
		t.Errorf("forks = %v", r.e.forks)
	}
	if r.e.aborts != 1 {
		t.Errorf("aborts = %d", r.e.aborts)
	}
	if r.c.Running() {
		t.Error("core still running after ABORT commit")
	}
}

func TestStartThreadPoisonsUnforwardedRegs(t *testing.T) {
	b := asm.New()
	b.Halt()
	p, _ := b.Build()
	r := buildRig(t, DefaultConfig(), p)
	var regs [isa.NumIntRegs]int64
	regs[1] = 42
	regs[2] = 43
	r.c.StartThread(0, 1<<1, &regs, false)
	if r.c.IntRegs[1] != 42 {
		t.Error("forwarded register lost")
	}
	if r.c.IntRegs[2] != PoisonValue {
		t.Error("unforwarded register not poisoned")
	}
	if r.c.IntRegs[0] != 0 {
		t.Error("r0 poisoned")
	}
}

func TestLoadsAllowedGate(t *testing.T) {
	b := asm.New()
	a := b.Alloc("x", 8, 0)
	b.InitWord(a, 5)
	b.Li(1, int64(a))
	b.Ld(2, 0, 1)
	b.Halt()
	p, _ := b.Build()
	r := buildRig(t, DefaultConfig(), p)
	r.d.gate = true
	r.c.StartMain()
	var cyc uint64
	for ; cyc < 100; cyc++ {
		r.h.BeginCycle(cyc)
		r.d.begin()
		r.c.Step(cyc)
		r.h.Tick(cyc)
	}
	if r.e.halted {
		t.Fatal("program halted although loads were gated")
	}
	r.d.gate = false
	for ; cyc < 10000 && !r.e.halted; cyc++ {
		r.h.BeginCycle(cyc)
		r.d.begin()
		r.c.Step(cyc)
		r.h.Tick(cyc)
	}
	if !r.e.halted || r.c.IntRegs[2] != 5 {
		t.Error("load did not complete after gate opened")
	}
}

func TestKillDiscardsState(t *testing.T) {
	b := asm.New()
	b.Li(1, 0)
	b.Label("spin")
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Jmp("spin")
	p, _ := b.Build()
	r := buildRig(t, DefaultConfig(), p)
	r.c.StartMain()
	for cyc := uint64(0); cyc < 50; cyc++ {
		r.h.BeginCycle(cyc)
		r.d.begin()
		r.c.Step(cyc)
		r.h.Tick(cyc)
	}
	r.c.Kill()
	if r.c.Running() {
		t.Error("core running after Kill")
	}
	if r.c.Step(51) {
		t.Error("killed core still stepping")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.IssueWidth = 0
	if bad.Validate() == nil {
		t.Error("zero width accepted")
	}
	bad = DefaultConfig()
	bad.IntALU = 0
	if bad.Validate() == nil {
		t.Error("zero ALUs accepted")
	}
}

func TestSingleIssueSlower(t *testing.T) {
	prog := func() *isa.Program {
		b := asm.New()
		b.Li(1, 0)
		b.Li(2, 200)
		b.Label("loop")
		b.OpI(isa.ADDI, 3, 1, 5)
		b.OpI(isa.ADDI, 4, 1, 6)
		b.OpI(isa.ADDI, 5, 1, 7)
		b.OpI(isa.ADDI, 1, 1, 1)
		b.Br(isa.BLT, 1, 2, "loop")
		b.Halt()
		p, _ := b.Build()
		return p
	}
	wide := buildRig(t, DefaultConfig(), prog())
	wideCycles := wide.runToHalt(t, 1000000)
	narrowCfg := DefaultConfig()
	narrowCfg.IssueWidth = 1
	narrowCfg.IntALU = 1
	narrowCfg.IntMul = 1
	narrowCfg.FPAdd = 1
	narrowCfg.FPMul = 1
	narrow := buildRig(t, narrowCfg, prog())
	narrowCycles := narrow.runToHalt(t, 1000000)
	if narrowCycles <= wideCycles {
		t.Errorf("1-issue (%d cyc) not slower than 8-issue (%d cyc)", narrowCycles, wideCycles)
	}
}
