// Package core implements one thread unit of the superthreaded processor:
// an out-of-order superscalar pipeline with branch prediction, a reorder
// buffer, a load/store queue with conservative memory disambiguation and
// store-to-load forwarding, per-class functional unit pools, and full
// speculative register state (values are computed at execute, so loads on
// mispredicted paths have real addresses — the property wrong-path
// prefetching depends on).
//
// The core is driven cycle by cycle via Step. It delegates all data-memory
// access to a DMem (implemented by the sta package, which adds the
// speculative memory buffer and run-time dependence checking) and all
// superthreaded control effects to an Env, invoked in program order at
// commit.
//
// Wrong-path load continuation (paper §3.1.1): on a branch misprediction
// recovery, squashed loads whose effective address was already computed but
// which had not yet accessed memory are moved to a wrong-load queue; the
// queue keeps issuing them to the memory system — tagged wrong-execution —
// under normal port arbitration. Loads whose address was not ready are
// squashed outright, exactly as in the paper's Figure 3.
package core

import (
	"fmt"
	"math"

	"repro/internal/bpred"
	"repro/internal/chaos"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/metrics"
)

// Config sizes one thread unit's pipeline (Table 3 / §5.2 resources).
type Config struct {
	IssueWidth int // fetch, issue, and commit width
	ROBSize    int
	LSQSize    int

	IntALU int
	IntMul int
	FPAdd  int
	FPMul  int

	// WrongPathExec enables wrong-path load continuation (wp configs).
	WrongPathExec bool

	// SeqLoops runs thread-pipelined code sequentially: FORK records its
	// target, THEND jumps back to it, ABORT and BEGIN fall through. Used
	// for single-thread-unit machines, which then behave as a conventional
	// superscalar processor with no threading overhead (paper §5.1).
	SeqLoops bool

	Bpred bpred.Config
}

// DefaultConfig returns the 8-issue thread unit used in §5.2.
func DefaultConfig() Config {
	return Config{
		IssueWidth: 8,
		ROBSize:    64,
		LSQSize:    64,
		IntALU:     8,
		IntMul:     4,
		FPAdd:      8,
		FPMul:      4,
		Bpred:      bpred.Default(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.IssueWidth <= 0 || c.ROBSize <= 0 || c.LSQSize <= 0 {
		return fmt.Errorf("core: width/ROB/LSQ must be positive")
	}
	if c.IntALU <= 0 || c.IntMul <= 0 || c.FPAdd <= 0 || c.FPMul <= 0 {
		return fmt.Errorf("core: all FU counts must be positive")
	}
	return nil
}

// LoadStatus is the outcome of DMem.TryLoad.
type LoadStatus uint8

// TryLoad outcomes.
const (
	LoadStall     LoadStatus = iota // dependence unresolved; retry later
	LoadNoPort                      // no cache port this cycle; retry
	LoadForwarded                   // value supplied now, hit latency
	LoadIssued                      // request in flight; value valid at completion
)

// LoadResult carries the outcome of a load issue attempt.
type LoadResult struct {
	Status LoadStatus
	Value  int64        // raw 64-bit memory word (bits for FP loads)
	Req    *mem.Request // non-nil when Status == LoadIssued
}

// DMem is the data-memory interface the core issues accesses through. The
// sta package implements it with the speculative memory buffer, target
// store forwarding, and the cache hierarchy underneath.
type DMem interface {
	// TryLoad attempts to issue a load at the given cycle. wrong marks
	// wrong-execution loads (wrong-thread mode); pc is the issuing
	// instruction, threaded through for attribution and the timeline.
	TryLoad(cycle uint64, addr uint64, wrong bool, pc int) LoadResult
	// WrongLoad issues a squashed-path load purely for its cache effects.
	// Returns false when no port was available this cycle.
	WrongLoad(cycle uint64, addr uint64, pc int) bool
	// CommitStore performs a store in program order at commit time.
	// target marks TST target stores; pc is the issuing instruction.
	CommitStore(cycle uint64, addr uint64, val int64, target bool, pc int)
	// LoadsAllowed gates the computation stage: loads may not issue until
	// the thread's run-time dependence-checking state is ready (§2.2).
	LoadsAllowed() bool
}

// Env receives superthreaded control events, in program order, at commit.
type Env interface {
	OnBegin(cycle uint64, mask int64)
	OnFork(cycle uint64, target int)
	OnTsagd(cycle uint64)
	OnTsa(cycle uint64, addr uint64)
	OnThend(cycle uint64)
	// OnAbort receives the PC following the ABORT so the superthreaded
	// machine can resume sequential execution there after write-back.
	OnAbort(cycle uint64, resumePC int)
	OnHalt(cycle uint64)
}

// entry state machine.
const (
	stDispatched uint8 = iota
	stExecuting
	stDone
)

// wrongLoad is one extracted wrong-path load awaiting issue.
type wrongLoad struct {
	addr uint64
	pc   int
}

// Per-entry flag bits (robSoA.flags). Cleared at dispatch; every read of a
// value array below is gated by one of these (or by state), so stale values
// from a slot's previous occupant are never observable.
const (
	fUse1      uint8 = 1 << iota // operand 1 is read by this instruction
	fUse2                        // operand 2 is read
	fS1Rdy                       // operand 1 value resolved
	fS2Rdy                       // operand 2 value resolved
	fAddrKnown                   // effective address computed
	fMemIssued                   // load has accessed memory (or forwarded)
	fValKnown                    // store data ready
)

// Branch-bookkeeping bits (robSoA.bflags).
const (
	bPredTaken uint8 = 1 << iota // predicted taken at dispatch
	bTaken                       // resolved direction
	bMispredict                  // prediction missed
)

// robSoA is the reorder buffer in structure-of-arrays layout, one parallel
// array per field, indexed by ROB slot. The per-cycle sweeps — complete and
// NextWake walk the executing set touching state/doneAt/req, issue walks
// the ready set touching flags and operand values, recover re-scans
// everything — each visit only a few fields of many entries, so parallel
// arrays keep every sweep's working set dense instead of striding a
// ~200-byte struct per element.
//
// Wake-up chain: waitHead is the first waiter on an entry's result; each
// link encodes consumer slot*2+operand, and wNext0/wNext1 hold a waiter's
// own next-waiter links, one per operand. Registration happens at dispatch
// (readOperand found a non-ready producer); broadcast consumes the chain.
// Squash recovery rebuilds all chains from the surviving entries.
type robSoA struct {
	inst   []isa.Inst
	pc     []int32
	state  []uint8
	flags  []uint8
	bflags []uint8
	doneAt []uint64

	// Operand capture: producer slot while waiting, value once resolved.
	s1rob []int32
	s2rob []int32
	s1i   []int64
	s2i   []int64
	s1f   []float64
	s2f   []float64

	waitHead []int32
	wNext0   []int32
	wNext1   []int32

	// Results.
	ival []int64
	fval []float64

	predTarget []int32

	// Memory bookkeeping.
	addr      []uint64
	storeBits []int64
	req       []*mem.Request
}

func newROB(n int) robSoA {
	return robSoA{
		inst:       make([]isa.Inst, n),
		pc:         make([]int32, n),
		state:      make([]uint8, n),
		flags:      make([]uint8, n),
		bflags:     make([]uint8, n),
		doneAt:     make([]uint64, n),
		s1rob:      make([]int32, n),
		s2rob:      make([]int32, n),
		s1i:        make([]int64, n),
		s2i:        make([]int64, n),
		s1f:        make([]float64, n),
		s2f:        make([]float64, n),
		waitHead:   make([]int32, n),
		wNext0:     make([]int32, n),
		wNext1:     make([]int32, n),
		ival:       make([]int64, n),
		fval:       make([]float64, n),
		predTarget: make([]int32, n),
		addr:       make([]uint64, n),
		storeBits:  make([]int64, n),
		req:        make([]*mem.Request, n),
	}
}

// Stats collects the core's own counters.
type Stats struct {
	Commits              uint64 // correct-execution committed instructions
	WrongCommits         uint64 // instructions committed in wrong-thread mode
	Branches             uint64
	Mispredicts          uint64
	Loads                uint64
	Stores               uint64
	WrongPathLoadsIssued uint64 // squashed loads continued to memory
	FetchStallICache     uint64
	SquashedInsts        uint64
}

// Core is one thread unit's pipeline. Not safe for concurrent use.
type Core struct {
	cfg  Config
	dmem DMem
	env  Env
	imem *mem.IUnit
	bp   *bpred.Predictor
	prog *isa.Program

	// Architectural state.
	IntRegs [isa.NumIntRegs]int64
	FPRegs  [isa.NumFPRegs]float64

	// Pipeline state.
	rob       robSoA
	robHead   int
	robTail   int // next free slot
	robCount  int
	renameInt [isa.NumIntRegs]int // producer ROB slot, -1 = architectural
	renameFP  [isa.NumFPRegs]int

	// LSQ ring buffer: ROB slots of in-flight memory ops in program
	// order. Commit always retires the front (program order), so removal
	// is a pop, not a splice.
	lsqBuf   []int
	lsqHead  int
	lsqCount int

	// Occupancy bitmaps over ROB slots, one bit per slot. readyMask marks
	// dispatched entries whose operands are all ready (issue candidates);
	// execMask marks executing entries awaiting completion. Issue and
	// complete iterate set bits in age order instead of scanning the ROB.
	readyMask []uint64
	execMask  []uint64

	fetchPC       int
	fetchStopped  bool
	redirectStall int // front-end bubble cycles after misprediction
	running       bool
	wrongMode     bool // wrong-thread execution: all loads tagged wrong

	// Wrong-path load continuation queue: effective addresses plus the
	// squashed load's PC, kept so the memory system can attribute the
	// wrong-path fill to its instruction.
	wrongQ []wrongLoad

	// seqForkTarget is the last FORK target seen by fetch in SeqLoops mode.
	seqForkTarget int

	fuUsed [6]int // per FUClass, reset each cycle

	// metrics, when non-nil, observes load-to-use distances at dispatch.
	metrics *metrics.Collector

	// obsDefer, when set, buffers load-to-use observations in defLoadUse
	// instead of calling the (shared) metrics collector: the parallel
	// stepping compute phase may not touch shared state. FlushObservations
	// drains the buffer during the serial commit phase.
	obsDefer   bool
	defLoadUse []uint64

	// ctlInFlight counts ROB entries whose commit has effects outside this
	// thread unit (Env callbacks and TST target-store delivery). While zero,
	// stepping this core cannot touch another TU for at least two cycles —
	// every such opcode needs a dispatch-to-commit latency of at least two —
	// which is what lets the sta parallel stepper batch it safely.
	ctlInFlight int

	// chaos, when non-nil, draws deterministic panic injections at the top
	// of Step (the supervision layer's core-level fault point).
	chaos *chaos.Injector

	Stats Stats
}

// isCtl reports whether an opcode's commit has cross-TU effects: the
// superthreaded control markers (Env callbacks) and the TST target store,
// which delivers its value to downstream memory buffers.
func isCtl(op isa.Op) bool {
	switch op {
	case isa.BEGIN, isa.FORK, isa.TSAGD, isa.TSA, isa.THEND, isa.ABORT,
		isa.HALT, isa.TST:
		return true
	}
	return false
}

// CtlQuiet reports that no instruction with cross-TU commit effects is in
// flight. While true, Step cannot invoke Env or deliver a target store this
// cycle or the next (such an instruction dispatched now reaches commit no
// earlier than two cycles later).
func (c *Core) CtlQuiet() bool { return c.ctlInFlight == 0 }

// SetObsDefer switches metrics observation into deferred mode (parallel
// compute phases) or back to direct calls.
func (c *Core) SetObsDefer(on bool) { c.obsDefer = on }

// FlushObservations forwards observations buffered during deferred mode to
// the metrics collector. Called from the serial commit phase, in TU order.
func (c *Core) FlushObservations() {
	for _, d := range c.defLoadUse {
		c.metrics.ObserveLoadUse(d)
	}
	c.defLoadUse = c.defLoadUse[:0]
}

// SetMetrics attaches (or detaches, with nil) an observability collector.
func (c *Core) SetMetrics(m *metrics.Collector) { c.metrics = m }

// SetChaos attaches (or detaches, with nil) a fault injector.
func (c *Core) SetChaos(in *chaos.Injector) { c.chaos = in }

// New builds a core bound to a program, an instruction port, and memory.
func New(cfg Config, prog *isa.Program, imem *mem.IUnit, dmem DMem, env Env) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bp, err := bpred.New(cfg.Bpred)
	if err != nil {
		return nil, err
	}
	words := (cfg.ROBSize + 63) / 64
	c := &Core{
		cfg:       cfg,
		dmem:      dmem,
		env:       env,
		imem:      imem,
		bp:        bp,
		prog:      prog,
		rob:       newROB(cfg.ROBSize),
		lsqBuf:    make([]int, cfg.LSQSize),
		readyMask: make([]uint64, words),
		execMask:  make([]uint64, words),
	}
	c.clearPipeline()
	return c, nil
}

// PoisonValue initializes non-forwarded registers of a freshly forked
// thread; deterministic garbage that surfaces mis-parallelized workloads.
const PoisonValue = int64(-0x2152411021524110)

// StartThread resets the pipeline and begins execution at pc with the
// given forwarded integer registers (mask selects which entries of regs are
// meaningful). All other registers are poisoned. wrongMode marks the thread
// as wrong from birth (a wrong thread's fork).
func (c *Core) StartThread(pc int, mask int64, regs *[isa.NumIntRegs]int64, wrongMode bool) {
	c.clearPipeline()
	for i := 1; i < isa.NumIntRegs; i++ {
		if mask&(1<<uint(i)) != 0 {
			c.IntRegs[i] = regs[i]
		} else {
			c.IntRegs[i] = PoisonValue
		}
	}
	c.IntRegs[0] = 0
	pv := PoisonValue
	poisonFP := math.Float64frombits(uint64(pv))
	for i := range c.FPRegs {
		c.FPRegs[i] = poisonFP
	}
	c.fetchPC = pc
	c.running = true
	c.wrongMode = wrongMode
}

// StartMain begins sequential execution at the program entry with zeroed
// registers (the machine's first thread).
func (c *Core) StartMain() {
	c.clearPipeline()
	for i := range c.IntRegs {
		c.IntRegs[i] = 0
	}
	for i := range c.FPRegs {
		c.FPRegs[i] = 0
	}
	c.fetchPC = c.prog.Entry
	c.running = true
	c.wrongMode = false
}

// Kill stops the thread immediately, discarding all in-flight state.
func (c *Core) Kill() {
	c.clearPipeline()
	c.running = false
}

// Running reports whether the core is executing a thread.
func (c *Core) Running() bool { return c.running }

// Wrong reports whether the core is in wrong-thread mode.
func (c *Core) Wrong() bool { return c.wrongMode }

// MarkWrong switches the thread into wrong-execution mode: it keeps
// running, but every memory access from now on is tagged wrong (§3.1.2).
func (c *Core) MarkWrong() { c.wrongMode = true }

// ContinueAt redirects an idle (non-running) core to resume sequential
// execution at pc, keeping architectural state. Used when a thread resumes
// after its write-back stage, e.g. the abort thread continuing into
// sequential code.
func (c *Core) ContinueAt(pc int) {
	c.clearPipeline()
	c.fetchPC = pc
	c.running = true
}

// Predictor exposes the branch predictor (stats).
func (c *Core) Predictor() *bpred.Predictor { return c.bp }

// Quiet reports that the core holds no in-flight state at all: not
// running, empty ROB, and an empty wrong-load queue (a detached TU's core
// keeps draining wrong loads after its thread ends). Sampling safepoints
// require every non-running core quiet so a functional fast-forward never
// races in-flight pipeline work.
func (c *Core) Quiet() bool {
	return !c.running && c.robCount == 0 && len(c.wrongQ) == 0
}

// SquashForSample flushes the pipeline ahead of a functional fast-forward
// and returns the architecturally exact resume PC: the oldest un-retired
// instruction when the ROB holds any (commit has already written
// everything older into the architectural registers), the fetch PC
// otherwise. The core is left stopped; the fast-forward leg runs the
// functional engine over the architectural state and ContinueAt resumes
// detailed execution.
func (c *Core) SquashForSample() int {
	pc := c.fetchPC
	if c.robCount > 0 {
		pc = int(c.rob.pc[c.robHead])
	}
	c.clearPipeline()
	c.running = false
	return pc
}

func (c *Core) clearPipeline() {
	c.releaseInFlight()
	c.robHead, c.robTail, c.robCount = 0, 0, 0
	for i := range c.renameInt {
		c.renameInt[i] = -1
	}
	for i := range c.renameFP {
		c.renameFP[i] = -1
	}
	c.lsqHead, c.lsqCount = 0, 0
	for i := range c.readyMask {
		c.readyMask[i] = 0
		c.execMask[i] = 0
	}
	c.wrongQ = c.wrongQ[:0]
	c.fetchStopped = false
	c.redirectStall = 0
	c.ctlInFlight = 0
}

// releaseInFlight returns every outstanding memory request held by live ROB
// entries to the request pool (the pool defers reuse while the request is
// still pending in an MSHR).
func (c *Core) releaseInFlight() {
	for p := 0; p < c.robCount; p++ {
		idx := (c.robHead + p) % c.cfg.ROBSize
		if r := c.rob.req[idx]; r != nil {
			r.Release()
			c.rob.req[idx] = nil
		}
	}
}

// DebugHead describes the ROB head entry for diagnostics.
func (c *Core) DebugHead() string {
	if c.robCount == 0 {
		return fmt.Sprintf("rob empty fetchPC=%d running=%v", c.fetchPC, c.running)
	}
	idx := c.robHead
	f := c.rob.flags[idx]
	return fmt.Sprintf("head={%v pc=%d st=%d memIssued=%v addrKnown=%v req=%v} n=%d fetchPC=%d",
		c.rob.inst[idx].Op, c.rob.pc[idx], c.rob.state[idx],
		f&fMemIssued != 0, f&fAddrKnown != 0, c.rob.req[idx] != nil, c.robCount, c.fetchPC)
}
