package core

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/chaos"
	"repro/internal/isa"
)

// TraceBranches, when positive, prints that many committed branches (debug).
var TraceBranches int

// RedirectPenalty is the fixed front-end refill bubble after a branch
// misprediction recovery, on top of the natural drain/refill latency.
const RedirectPenalty = 3

// neverWake is the NextWake value of a component with no pending events.
const neverWake = math.MaxUint64

// Step advances the pipeline one cycle. Order within the cycle: commit,
// execute completion (and branch resolution), issue, wrong-path load queue
// drain, fetch/dispatch. Returns false when the core is idle.
func (c *Core) Step(cycle uint64) bool {
	if !c.running && c.robCount == 0 && len(c.wrongQ) == 0 {
		return false
	}
	if c.chaos != nil {
		c.chaos.Panic(chaos.PointCoreStep)
	}
	for i := range c.fuUsed {
		c.fuUsed[i] = 0
	}
	c.commit(cycle)
	c.complete(cycle)
	c.issue(cycle)
	c.drainWrongQ(cycle)
	c.fetch(cycle)
	return true
}

// NextWake returns the earliest future cycle at which stepping this core
// could change any observable state, given that cycle has just been stepped.
// neverWake means the core is inert until some external event (a memory
// fill, a thread start) arrives. The bound is conservative: it may be
// earlier than the next real state change, never later.
func (c *Core) NextWake(cycle uint64) uint64 {
	if !c.running && c.robCount == 0 && len(c.wrongQ) == 0 {
		return neverWake
	}
	if len(c.wrongQ) > 0 {
		return cycle + 1 // wrong-load queue drains under port arbitration
	}
	// Fetch side: if the front end would attempt a fetch next cycle it can
	// dispatch or count an I-cache stall, so the cycle must be stepped.
	if c.running && !c.fetchStopped {
		if c.redirectStall > 0 {
			return cycle + 1 // decrements every fetched cycle
		}
		if c.robCount < len(c.rob) {
			in := c.prog.At(c.fetchPC)
			if !(in.Op.IsMem() && c.lsqCount >= c.cfg.LSQSize) {
				return cycle + 1
			}
		}
	}
	if c.robCount > 0 && c.rob[c.robHead].state == stDone {
		return cycle + 1 // commit can retire
	}
	for _, w := range c.readyMask {
		if w != 0 {
			return cycle + 1 // an entry can attempt issue
		}
	}
	// Only executing entries remain: wake at the earliest completion. An
	// entry waiting on a memory request that is not yet Done is woken by
	// the hierarchy's fill event instead.
	wake := uint64(neverWake)
	for wi, word := range c.execMask {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			e := &c.rob[wi<<6|b]
			if e.req != nil {
				if e.req.Done && e.req.DoneCycle < wake {
					wake = e.req.DoneCycle
				}
				continue
			}
			if e.doneAt < wake {
				wake = e.doneAt
			}
		}
	}
	if wake != neverWake && wake <= cycle {
		wake = cycle + 1
	}
	return wake
}

// ---- bitmap and wait-chain helpers -------------------------------------

func maskSet(m []uint64, i int)   { m[i>>6] |= 1 << (uint(i) & 63) }
func maskClear(m []uint64, i int) { m[i>>6] &^= 1 << (uint(i) & 63) }

// entryReady reports whether a dispatched entry has all operands ready.
func entryReady(e *robEntry) bool {
	return (!e.use1 || e.src1.ready) && (!e.use2 || e.src2.ready)
}

// addWaiter links waiter slot's operand op onto producer prod's wake-up
// chain. Node encoding: slot*2 + op.
func (c *Core) addWaiter(prod, slot, op int) {
	w := &c.rob[slot]
	w.wNext[op] = c.rob[prod].waitHead
	c.rob[prod].waitHead = int32(slot<<1 | op)
}

func (c *Core) slotAt(agePos int) int {
	return (c.robHead + agePos) % len(c.rob)
}

// posOf is the age position of a ROB slot (inverse of slotAt).
func (c *Core) posOf(slot int) int {
	return (slot - c.robHead + len(c.rob)) % len(c.rob)
}

// commit retires up to IssueWidth done entries from the ROB head, applying
// architectural effects in program order.
func (c *Core) commit(cycle uint64) {
	for n := 0; n < c.cfg.IssueWidth && c.robCount > 0; n++ {
		idx := c.robHead
		e := &c.rob[idx]
		if e.state != stDone {
			return
		}
		in := e.inst
		if isCtl(in.Op) {
			c.ctlInFlight--
		}
		// Architectural register writeback.
		if in.HasDest() {
			if in.Op.FPDest() {
				c.FPRegs[in.Rd] = e.fval
				if c.renameFP[in.Rd] == idx {
					c.renameFP[in.Rd] = -1
				}
			} else {
				c.IntRegs[in.Rd] = e.ival
				if c.renameInt[in.Rd] == idx {
					c.renameInt[in.Rd] = -1
				}
			}
		}
		if c.wrongMode {
			c.Stats.WrongCommits++
		} else {
			c.Stats.Commits++
		}
		switch in.Op {
		case isa.LD, isa.FLD:
			c.Stats.Loads++
			c.popLSQ(idx)
		case isa.ST, isa.FST:
			c.Stats.Stores++
			c.dmem.CommitStore(cycle, e.addr, e.storeBits, false, e.pc)
			c.popLSQ(idx)
		case isa.TST:
			c.Stats.Stores++
			c.dmem.CommitStore(cycle, e.addr, e.storeBits, true, e.pc)
			c.popLSQ(idx)
		case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
			c.Stats.Branches++
			if TraceBranches > 0 {
				TraceBranches--
				fmt.Printf("commit br pc=%d pred=%v taken=%v mispred=%v\n", e.pc, e.predTaken, e.taken, e.mispredict)
			}
			// Train the direction predictor at commit so wrong-path
			// branches never pollute it; count only committed mispredicts.
			c.bp.UpdateDirection(e.pc, e.taken, e.predTaken)
			if e.mispredict {
				c.Stats.Mispredicts++
			}
		case isa.BEGIN:
			c.env.OnBegin(cycle, in.Imm)
		case isa.FORK:
			c.env.OnFork(cycle, int(in.Imm))
		case isa.TSAGD:
			c.env.OnTsagd(cycle)
		case isa.TSA:
			c.env.OnTsa(cycle, uint64(e.ival))
		case isa.THEND:
			if c.cfg.SeqLoops {
				c.env.OnThend(cycle)
				break
			}
			c.retireROBHead()
			c.running = false
			c.squashAll()
			c.env.OnThend(cycle)
			return
		case isa.ABORT:
			if c.cfg.SeqLoops {
				c.env.OnAbort(cycle, e.pc+1)
				break
			}
			c.retireROBHead()
			c.running = false
			c.squashAll()
			c.env.OnAbort(cycle, e.pc+1)
			return
		case isa.HALT:
			c.retireROBHead()
			c.running = false
			c.squashAll()
			c.env.OnHalt(cycle)
			return
		}
		c.retireROBHead()
	}
}

func (c *Core) retireROBHead() {
	c.robHead = (c.robHead + 1) % len(c.rob)
	c.robCount--
}

// popLSQ removes a committing memory op from the LSQ. Commit proceeds in
// program order and the LSQ is kept in program order, so the committing op
// is always the ring front; the scan below is a defensive fallback only.
func (c *Core) popLSQ(idx int) {
	if c.lsqCount > 0 && c.lsqBuf[c.lsqHead] == idx {
		c.lsqHead++
		if c.lsqHead == len(c.lsqBuf) {
			c.lsqHead = 0
		}
		c.lsqCount--
		return
	}
	for i := 0; i < c.lsqCount; i++ {
		j := (c.lsqHead + i) % len(c.lsqBuf)
		if c.lsqBuf[j] != idx {
			continue
		}
		// Shift later entries forward one position, preserving age order.
		for k := i; k < c.lsqCount-1; k++ {
			from := (c.lsqHead + k + 1) % len(c.lsqBuf)
			to := (c.lsqHead + k) % len(c.lsqBuf)
			c.lsqBuf[to] = c.lsqBuf[from]
		}
		c.lsqCount--
		return
	}
}

// squashAll discards every in-flight entry (thread end or kill). The wrong
// queue is preserved: already-extracted wrong loads keep prefetching.
func (c *Core) squashAll() {
	c.Stats.SquashedInsts += uint64(c.robCount)
	c.releaseInFlight()
	c.robHead, c.robTail, c.robCount = 0, 0, 0
	c.ctlInFlight = 0
	for i := range c.renameInt {
		c.renameInt[i] = -1
	}
	for i := range c.renameFP {
		c.renameFP[i] = -1
	}
	c.lsqHead, c.lsqCount = 0, 0
	for i := range c.readyMask {
		c.readyMask[i] = 0
		c.execMask[i] = 0
	}
	c.fetchStopped = true
}

// complete marks finished executions done, broadcasts results to waiting
// consumers, and resolves branches (possibly triggering recovery). Only
// entries in the executing set are visited, in age order.
func (c *Core) complete(cycle uint64) {
	if c.robCount == 0 {
		return
	}
	n := len(c.rob)
	end := c.robHead + c.robCount
	if end <= n {
		c.completeRange(cycle, c.robHead, end)
		return
	}
	if !c.completeRange(cycle, c.robHead, n) {
		return
	}
	c.completeRange(cycle, 0, end-n)
}

// completeRange processes executing entries with slot index in [lo, hi).
// Returns false when a branch recovery squashed younger entries (the
// executing set was rebuilt; iteration must stop).
func (c *Core) completeRange(cycle uint64, lo, hi int) bool {
	for w := lo >> 6; w <= (hi-1)>>6; w++ {
		word := c.execMask[w]
		if w == lo>>6 {
			word &^= (1 << (uint(lo) & 63)) - 1
		}
		if w == (hi-1)>>6 {
			if top := uint(hi-1)&63 + 1; top < 64 {
				word &= (1 << top) - 1
			}
		}
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			idx := w<<6 | b
			e := &c.rob[idx]
			if e.req != nil {
				if e.req.Done && e.req.DoneCycle <= cycle {
					e.req.Release()
					e.req = nil
					e.state = stDone
					maskClear(c.execMask, idx)
					c.broadcast(idx)
				}
				continue
			}
			if e.doneAt > cycle {
				continue
			}
			e.state = stDone
			maskClear(c.execMask, idx)
			c.broadcast(idx)
			if e.inst.Op.IsBranch() || e.inst.Op == isa.JR {
				if c.resolveControl(cycle, idx, c.posOf(idx)) {
					return false // recovery squashed everything younger
				}
			}
		}
	}
	return true
}

// broadcast forwards a completed entry's result to the consumers chained on
// its wake-up list.
func (c *Core) broadcast(idx int) {
	e := &c.rob[idx]
	node := e.waitHead
	e.waitHead = -1
	for node >= 0 {
		k := int(node >> 1)
		op := int(node & 1)
		w := &c.rob[k]
		next := w.wNext[op]
		w.wNext[op] = -1
		// Validate the link: the waiter must still be a live dispatched
		// entry waiting on this producer (squash rebuilds chains, so stale
		// links should not occur; this guards the invariant cheaply).
		if w.state == stDispatched && c.posOf(k) < c.robCount {
			if op == 0 {
				if w.use1 && !w.src1.ready && w.src1.rob == idx {
					w.src1.ready = true
					w.src1.ival = e.ival
					w.src1.fval = e.fval
					if entryReady(w) {
						maskSet(c.readyMask, k)
					}
				}
			} else {
				if w.use2 && !w.src2.ready && w.src2.rob == idx {
					w.src2.ready = true
					w.src2.ival = e.ival
					w.src2.fval = e.fval
					if entryReady(w) {
						maskSet(c.readyMask, k)
					}
				}
			}
		}
		node = next
	}
}

// resolveControl checks a completed branch or indirect jump against its
// prediction, training the predictor and recovering on a mismatch. Returns
// true when recovery squashed younger entries.
func (c *Core) resolveControl(cycle uint64, idx, agePos int) bool {
	e := &c.rob[idx]
	var taken bool
	var target int
	if e.inst.Op == isa.JR {
		taken = true
		target = int(e.src1.ival)
	} else {
		taken = isa.BranchTaken(e.inst, e.src1.ival, e.src2.ival)
		target = int(e.inst.Imm)
	}
	e.taken = taken
	actualNext := e.pc + 1
	if taken {
		actualNext = target
	}
	predNext := e.pc + 1
	if e.predTaken {
		predNext = e.predTarget
	}
	if actualNext == predNext {
		return false
	}
	e.mispredict = true
	if e.inst.Op == isa.JR {
		// Indirect-jump mispredicts are rare; count them at resolution.
		c.Stats.Mispredicts++
	}
	c.recover(cycle, agePos, actualNext)
	return true
}

// recover squashes all entries younger than the entry at agePos, extracts
// ready wrong-path loads into the wrong queue (wp configurations), rebuilds
// the rename maps, occupancy bitmaps, and wake-up chains, and redirects
// fetch.
func (c *Core) recover(cycle uint64, agePos, nextPC int) {
	for p := agePos + 1; p < c.robCount; p++ {
		idx := c.slotAt(p)
		e := &c.rob[idx]
		c.Stats.SquashedInsts++
		if isCtl(e.inst.Op) {
			c.ctlInFlight--
		}
		if e.req != nil {
			e.req.Release()
			e.req = nil
		}
		if c.cfg.WrongPathExec && e.inst.Op.IsLoad() && !e.memIssued {
			// Compute the effective address if its operand is ready: these
			// are the "ready" wrong-path loads of Figure 3 that continue to
			// memory; address-unknown loads squash outright.
			if !e.addrKnown && e.src1.ready {
				e.addr = isa.EffAddr(e.inst, e.src1.ival)
				e.addrKnown = true
			}
			if e.addrKnown && len(c.wrongQ) < c.cfg.LSQSize {
				c.wrongQ = append(c.wrongQ, wrongLoad{addr: e.addr, pc: e.pc})
			}
		}
	}
	// Drop squashed entries.
	newCount := agePos + 1
	c.robTail = c.slotAt(newCount)
	// Truncate the LSQ: survivors are a program-order prefix of the ring.
	kept := 0
	for i := 0; i < c.lsqCount; i++ {
		s := c.lsqBuf[(c.lsqHead+i)%len(c.lsqBuf)]
		if c.posOf(s) >= newCount {
			break
		}
		kept++
	}
	c.lsqCount = kept
	c.robCount = newCount
	// Rebuild rename maps, bitmaps, and wake-up chains from the surviving
	// entries, oldest to youngest.
	for i := range c.renameInt {
		c.renameInt[i] = -1
	}
	for i := range c.renameFP {
		c.renameFP[i] = -1
	}
	for i := range c.readyMask {
		c.readyMask[i] = 0
		c.execMask[i] = 0
	}
	for p := 0; p < c.robCount; p++ {
		c.rob[c.slotAt(p)].waitHead = -1
	}
	for p := 0; p < c.robCount; p++ {
		idx := c.slotAt(p)
		e := &c.rob[idx]
		if e.inst.HasDest() {
			if e.inst.Op.FPDest() {
				c.renameFP[e.inst.Rd] = idx
			} else {
				c.renameInt[e.inst.Rd] = idx
			}
		}
		switch e.state {
		case stDispatched:
			e.wNext[0], e.wNext[1] = -1, -1
			if e.use1 && !e.src1.ready {
				c.addWaiter(e.src1.rob, idx, 0)
			}
			if e.use2 && !e.src2.ready {
				c.addWaiter(e.src2.rob, idx, 1)
			}
			if entryReady(e) {
				maskSet(c.readyMask, idx)
			}
		case stExecuting:
			maskSet(c.execMask, idx)
		}
	}
	c.fetchPC = nextPC
	c.fetchStopped = false
	c.redirectStall = RedirectPenalty
}

// issue starts execution of ready entries in age order, bounded by issue
// width and functional-unit availability. Only entries in the ready set are
// visited.
func (c *Core) issue(cycle uint64) {
	if c.robCount == 0 {
		return
	}
	issued := 0
	n := len(c.rob)
	end := c.robHead + c.robCount
	if end <= n {
		c.issueRange(cycle, c.robHead, end, &issued)
		return
	}
	c.issueRange(cycle, c.robHead, n, &issued)
	if issued < c.cfg.IssueWidth {
		c.issueRange(cycle, 0, end-n, &issued)
	}
}

// issueRange attempts issue for ready entries with slot index in [lo, hi).
func (c *Core) issueRange(cycle uint64, lo, hi int, issued *int) {
	for w := lo >> 6; w <= (hi-1)>>6 && *issued < c.cfg.IssueWidth; w++ {
		word := c.readyMask[w]
		if w == lo>>6 {
			word &^= (1 << (uint(lo) & 63)) - 1
		}
		if w == (hi-1)>>6 {
			if top := uint(hi-1)&63 + 1; top < 64 {
				word &= (1 << top) - 1
			}
		}
		for word != 0 && *issued < c.cfg.IssueWidth {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			idx := w<<6 | b
			e := &c.rob[idx]
			in := e.inst
			switch {
			case in.Op.IsLoad():
				if c.issueLoad(cycle, idx) {
					maskClear(c.readyMask, idx)
					maskSet(c.execMask, idx)
					*issued++
				}
			case in.Op.IsStore():
				// Stores compute address and data; the cache access happens
				// at commit (sequential mode) or write-back drain (parallel
				// mode).
				e.addr = isa.EffAddr(in, e.src1.ival)
				e.addrKnown = true
				if in.Op == isa.FST {
					e.storeBits = int64(math.Float64bits(e.src2.fval))
				} else {
					e.storeBits = e.src2.ival
				}
				e.valKnown = true
				e.state = stExecuting
				e.doneAt = cycle + 1
				maskClear(c.readyMask, idx)
				maskSet(c.execMask, idx)
				*issued++
			default:
				fu := in.Op.FU()
				if !c.takeFU(fu) {
					continue
				}
				c.execALU(cycle, idx)
				maskClear(c.readyMask, idx)
				maskSet(c.execMask, idx)
				*issued++
			}
		}
	}
}

func (c *Core) takeFU(fu isa.FUClass) bool {
	var limit int
	switch fu {
	case isa.FUIntALU:
		limit = c.cfg.IntALU
	case isa.FUIntMul:
		limit = c.cfg.IntMul
	case isa.FUFPAdd:
		limit = c.cfg.FPAdd
	case isa.FUFPMul:
		limit = c.cfg.FPMul
	default:
		return true // markers need no FU
	}
	if c.fuUsed[fu] >= limit {
		return false
	}
	c.fuUsed[fu]++
	return true
}

// execALU computes a non-memory result, visible after the op latency.
func (c *Core) execALU(cycle uint64, idx int) {
	e := &c.rob[idx]
	in := e.inst
	switch in.Op {
	case isa.JAL:
		e.ival = int64(e.pc + 1)
	case isa.JMP, isa.NOP, isa.HALT, isa.BEGIN, isa.FORK, isa.TSAGD,
		isa.THEND, isa.ABORT:
		// Markers and unconditional jumps carry no data result.
	default:
		e.ival, e.fval = isa.Eval(in, e.src1.ival, e.src2.ival, e.src1.fval, e.src2.fval)
	}
	e.state = stExecuting
	e.doneAt = cycle + uint64(in.Op.Latency())
}

// issueLoad attempts to start a load: memory ordering against older stores,
// store-to-load forwarding, then the DMem (memory buffer + caches).
func (c *Core) issueLoad(cycle uint64, idx int) bool {
	e := &c.rob[idx]
	if !e.addrKnown {
		e.addr = isa.EffAddr(e.inst, e.src1.ival)
		e.addrKnown = true
	}
	// Conservative disambiguation: every older store must have a known
	// address; the nearest older same-address store forwards its data.
	var fwd *robEntry
	j := c.lsqHead
	for i := 0; i < c.lsqCount; i++ {
		s := c.lsqBuf[j]
		j++
		if j == len(c.lsqBuf) {
			j = 0
		}
		if s == idx {
			break
		}
		se := &c.rob[s]
		if !se.inst.Op.IsStore() {
			continue
		}
		if !se.addrKnown {
			return false // wait: unresolved older store address
		}
		if se.addr == e.addr {
			fwd = se
		}
	}
	if fwd != nil {
		if !fwd.valKnown {
			return false // data not ready yet
		}
		c.finishLoad(e, fwd.storeBits, cycle+1)
		e.memIssued = true
		return true
	}
	if !c.dmem.LoadsAllowed() {
		return false
	}
	res := c.dmem.TryLoad(cycle, e.addr, c.wrongMode, e.pc)
	switch res.Status {
	case LoadStall, LoadNoPort:
		return false
	case LoadForwarded:
		c.finishLoad(e, res.Value, cycle+1)
		e.memIssued = true
		return true
	default: // LoadIssued
		e.req = res.Req
		c.finishLoadValue(e, res.Value)
		e.state = stExecuting
		e.memIssued = true
		return true
	}
}

func (c *Core) finishLoad(e *robEntry, bits int64, doneAt uint64) {
	c.finishLoadValue(e, bits)
	e.state = stExecuting
	e.doneAt = doneAt
}

func (c *Core) finishLoadValue(e *robEntry, bits int64) {
	if e.inst.Op == isa.FLD {
		e.fval = math.Float64frombits(uint64(bits))
	} else {
		e.ival = bits
	}
}

// drainWrongQ keeps issuing extracted wrong-path loads to the memory system
// as ports allow; correct-path demand accesses already had priority this
// cycle (issue runs first).
func (c *Core) drainWrongQ(cycle uint64) {
	for len(c.wrongQ) > 0 {
		if !c.dmem.WrongLoad(cycle, c.wrongQ[0].addr, c.wrongQ[0].pc) {
			return
		}
		c.Stats.WrongPathLoadsIssued++
		c.wrongQ = c.wrongQ[1:]
	}
}

// fetch brings new instructions into the ROB: up to IssueWidth per cycle,
// stopping at thread-ending instructions, I-cache misses, or full ROB/LSQ.
func (c *Core) fetch(cycle uint64) {
	if !c.running || c.fetchStopped {
		return
	}
	if c.redirectStall > 0 {
		c.redirectStall--
		return
	}
	for n := 0; n < c.cfg.IssueWidth; n++ {
		if c.robCount >= len(c.rob) {
			return
		}
		in := c.prog.At(c.fetchPC)
		if in.Op.IsMem() && c.lsqCount >= c.cfg.LSQSize {
			return
		}
		if !c.imem.FetchReady(cycle, c.fetchPC) {
			c.Stats.FetchStallICache++
			return
		}
		c.dispatch(cycle, in)
		if in.Op == isa.HALT {
			c.fetchStopped = true
			return
		}
		if !c.cfg.SeqLoops && (in.Op == isa.THEND || in.Op == isa.ABORT) {
			// ABORT transfers control out of the loop body; the thread
			// resumes (or dies) under sta control after commit.
			c.fetchStopped = true
			return
		}
	}
}

// dispatch decodes one instruction into the ROB tail, reading or renaming
// its operands and predicting control flow.
func (c *Core) dispatch(cycle uint64, in isa.Inst) {
	idx := c.robTail
	c.robTail = (c.robTail + 1) % len(c.rob)
	c.robCount++
	e := &c.rob[idx]
	*e = robEntry{inst: in, pc: c.fetchPC, state: stDispatched,
		waitHead: -1, wNext: [2]int32{-1, -1}}
	maskClear(c.readyMask, idx)
	maskClear(c.execMask, idx)

	r1, r2, use1, use2, fp1, fp2 := in.SrcRegs()
	e.use1, e.use2 = use1, use2
	if use1 {
		e.src1 = c.readOperand(r1, fp1)
	}
	if use2 {
		e.src2 = c.readOperand(r2, fp2)
	}
	if c.metrics != nil {
		c.observeLoadUse(idx, e)
	}
	if isCtl(in.Op) {
		c.ctlInFlight++
	}

	// Markers with no execution latency complete immediately at dispatch+1.
	switch in.Op {
	case isa.NOP, isa.HALT, isa.BEGIN, isa.FORK, isa.TSAGD, isa.THEND, isa.ABORT:
		e.state = stExecuting
		e.doneAt = cycle + 1
	}

	if e.state == stDispatched {
		if e.use1 && !e.src1.ready {
			c.addWaiter(e.src1.rob, idx, 0)
		}
		if e.use2 && !e.src2.ready {
			c.addWaiter(e.src2.rob, idx, 1)
		}
		if entryReady(e) {
			maskSet(c.readyMask, idx)
		}
	} else {
		maskSet(c.execMask, idx)
	}

	if in.Op.IsMem() {
		c.lsqBuf[(c.lsqHead+c.lsqCount)%len(c.lsqBuf)] = idx
		c.lsqCount++
	}

	// Rename the destination.
	if in.HasDest() {
		if in.Op.FPDest() {
			c.renameFP[in.Rd] = idx
		} else {
			c.renameInt[in.Rd] = idx
		}
	}

	// Control flow prediction.
	next := c.fetchPC + 1
	switch {
	case in.Op == isa.FORK && c.cfg.SeqLoops:
		c.seqForkTarget = int(in.Imm)
	case in.Op == isa.THEND && c.cfg.SeqLoops:
		// Sequential semantics: the next iteration begins at the fork
		// target (matches the functional interpreter).
		next = c.seqForkTarget
	case in.Op == isa.JMP:
		next = int(in.Imm)
	case in.Op == isa.JAL:
		c.bp.PushRAS(c.fetchPC + 1)
		next = int(in.Imm)
	case in.Op == isa.JR:
		if tgt, ok := c.bp.PopRAS(); ok {
			e.predTaken = true
			e.predTarget = tgt
			next = tgt
		} else {
			e.predTaken = false
			e.predTarget = c.fetchPC + 1
		}
	case in.Op.IsBranch():
		e.predTaken = c.bp.PredictDirection(c.fetchPC)
		e.predTarget = int(in.Imm)
		if e.predTaken {
			next = e.predTarget
		}
	}
	c.fetchPC = next
}

// observeLoadUse reports, for each source operand still waiting on an
// in-flight load, the program-order distance (in instructions) from that
// load to this consumer — the window the memory system has to hide the
// load's latency. Called only when a metrics collector is attached.
func (c *Core) observeLoadUse(idx int, e *robEntry) {
	if e.use1 && !e.src1.ready && c.rob[e.src1.rob].inst.Op.IsLoad() {
		c.obsLoadUse(uint64(c.posOf(idx) - c.posOf(e.src1.rob)))
	}
	if e.use2 && !e.src2.ready && c.rob[e.src2.rob].inst.Op.IsLoad() {
		c.obsLoadUse(uint64(c.posOf(idx) - c.posOf(e.src2.rob)))
	}
}

// obsLoadUse records one distance, buffering it when the parallel compute
// phase has deferred observation (the histogram is shared across TUs).
func (c *Core) obsLoadUse(dist uint64) {
	if c.obsDefer {
		c.defLoadUse = append(c.defLoadUse, dist)
		return
	}
	c.metrics.ObserveLoadUse(dist)
}

// readOperand resolves a source register to a value or a producer slot.
func (c *Core) readOperand(r uint8, fp bool) operand {
	if fp {
		if p := c.renameFP[r]; p >= 0 {
			pe := &c.rob[p]
			if pe.state == stDone {
				return operand{ready: true, ival: pe.ival, fval: pe.fval}
			}
			return operand{rob: p}
		}
		return operand{ready: true, fval: c.FPRegs[r]}
	}
	if r == 0 {
		return operand{ready: true}
	}
	if p := c.renameInt[r]; p >= 0 {
		pe := &c.rob[p]
		if pe.state == stDone {
			return operand{ready: true, ival: pe.ival, fval: pe.fval}
		}
		return operand{rob: p}
	}
	return operand{ready: true, ival: c.IntRegs[r]}
}
