package core

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/chaos"
	"repro/internal/isa"
)

// TraceBranches, when positive, prints that many committed branches (debug).
var TraceBranches int

// RedirectPenalty is the fixed front-end refill bubble after a branch
// misprediction recovery, on top of the natural drain/refill latency.
const RedirectPenalty = 3

// neverWake is the NextWake value of a component with no pending events.
const neverWake = math.MaxUint64

// Step advances the pipeline one cycle. Order within the cycle: commit,
// execute completion (and branch resolution), issue, wrong-path load queue
// drain, fetch/dispatch. Returns false when the core is idle.
func (c *Core) Step(cycle uint64) bool {
	if !c.running && c.robCount == 0 && len(c.wrongQ) == 0 {
		return false
	}
	if c.chaos != nil {
		c.chaos.Panic(chaos.PointCoreStep)
	}
	for i := range c.fuUsed {
		c.fuUsed[i] = 0
	}
	c.commit(cycle)
	c.complete(cycle)
	c.issue(cycle)
	c.drainWrongQ(cycle)
	c.fetch(cycle)
	return true
}

// NextWake returns the earliest future cycle at which stepping this core
// could change any observable state, given that cycle has just been stepped.
// neverWake means the core is inert until some external event (a memory
// fill, a thread start) arrives. The bound is conservative: it may be
// earlier than the next real state change, never later.
func (c *Core) NextWake(cycle uint64) uint64 {
	if !c.running && c.robCount == 0 && len(c.wrongQ) == 0 {
		return neverWake
	}
	if len(c.wrongQ) > 0 {
		return cycle + 1 // wrong-load queue drains under port arbitration
	}
	// Fetch side: if the front end would attempt a fetch next cycle it can
	// dispatch or count an I-cache stall, so the cycle must be stepped.
	if c.running && !c.fetchStopped {
		if c.redirectStall > 0 {
			return cycle + 1 // decrements every fetched cycle
		}
		if c.robCount < c.cfg.ROBSize {
			in := c.prog.At(c.fetchPC)
			if !(in.Op.IsMem() && c.lsqCount >= c.cfg.LSQSize) {
				return cycle + 1
			}
		}
	}
	if c.robCount > 0 && c.rob.state[c.robHead] == stDone {
		return cycle + 1 // commit can retire
	}
	for _, w := range c.readyMask {
		if w != 0 {
			return cycle + 1 // an entry can attempt issue
		}
	}
	// Only executing entries remain: wake at the earliest completion. An
	// entry waiting on a memory request that is not yet Done is woken by
	// the hierarchy's fill event instead.
	wake := uint64(neverWake)
	for wi, word := range c.execMask {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			idx := wi<<6 | b
			if r := c.rob.req[idx]; r != nil {
				if r.Done && r.DoneCycle < wake {
					wake = r.DoneCycle
				}
				continue
			}
			if c.rob.doneAt[idx] < wake {
				wake = c.rob.doneAt[idx]
			}
		}
	}
	if wake != neverWake && wake <= cycle {
		wake = cycle + 1
	}
	return wake
}

// ---- bitmap and wait-chain helpers -------------------------------------

func maskSet(m []uint64, i int)   { m[i>>6] |= 1 << (uint(i) & 63) }
func maskClear(m []uint64, i int) { m[i>>6] &^= 1 << (uint(i) & 63) }

// entryReady reports whether a dispatched entry has all operands ready:
// neither used operand may still be unresolved.
func (c *Core) entryReady(idx int) bool {
	f := c.rob.flags[idx]
	return f&(fUse1|fS1Rdy) != fUse1 && f&(fUse2|fS2Rdy) != fUse2
}

// addWaiter links waiter slot's operand op onto producer prod's wake-up
// chain. Node encoding: slot*2 + op.
func (c *Core) addWaiter(prod, slot, op int) {
	if op == 0 {
		c.rob.wNext0[slot] = c.rob.waitHead[prod]
	} else {
		c.rob.wNext1[slot] = c.rob.waitHead[prod]
	}
	c.rob.waitHead[prod] = int32(slot<<1 | op)
}

func (c *Core) slotAt(agePos int) int {
	return (c.robHead + agePos) % c.cfg.ROBSize
}

// posOf is the age position of a ROB slot (inverse of slotAt).
func (c *Core) posOf(slot int) int {
	return (slot - c.robHead + c.cfg.ROBSize) % c.cfg.ROBSize
}

// commit retires up to IssueWidth done entries from the ROB head, applying
// architectural effects in program order.
func (c *Core) commit(cycle uint64) {
	for n := 0; n < c.cfg.IssueWidth && c.robCount > 0; n++ {
		idx := c.robHead
		if c.rob.state[idx] != stDone {
			return
		}
		in := c.rob.inst[idx]
		if isCtl(in.Op) {
			c.ctlInFlight--
		}
		// Architectural register writeback.
		if in.HasDest() {
			if in.Op.FPDest() {
				c.FPRegs[in.Rd] = c.rob.fval[idx]
				if c.renameFP[in.Rd] == idx {
					c.renameFP[in.Rd] = -1
				}
			} else {
				c.IntRegs[in.Rd] = c.rob.ival[idx]
				if c.renameInt[in.Rd] == idx {
					c.renameInt[in.Rd] = -1
				}
			}
		}
		if c.wrongMode {
			c.Stats.WrongCommits++
		} else {
			c.Stats.Commits++
		}
		switch in.Op {
		case isa.LD, isa.FLD:
			c.Stats.Loads++
			c.popLSQ(idx)
		case isa.ST, isa.FST:
			c.Stats.Stores++
			c.dmem.CommitStore(cycle, c.rob.addr[idx], c.rob.storeBits[idx], false, int(c.rob.pc[idx]))
			c.popLSQ(idx)
		case isa.TST:
			c.Stats.Stores++
			c.dmem.CommitStore(cycle, c.rob.addr[idx], c.rob.storeBits[idx], true, int(c.rob.pc[idx]))
			c.popLSQ(idx)
		case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
			c.Stats.Branches++
			bf := c.rob.bflags[idx]
			if TraceBranches > 0 {
				TraceBranches--
				fmt.Printf("commit br pc=%d pred=%v taken=%v mispred=%v\n",
					c.rob.pc[idx], bf&bPredTaken != 0, bf&bTaken != 0, bf&bMispredict != 0)
			}
			// Train the direction predictor at commit so wrong-path
			// branches never pollute it; count only committed mispredicts.
			c.bp.UpdateDirection(int(c.rob.pc[idx]), bf&bTaken != 0, bf&bPredTaken != 0)
			if bf&bMispredict != 0 {
				c.Stats.Mispredicts++
			}
		case isa.BEGIN:
			c.env.OnBegin(cycle, in.Imm)
		case isa.FORK:
			c.env.OnFork(cycle, int(in.Imm))
		case isa.TSAGD:
			c.env.OnTsagd(cycle)
		case isa.TSA:
			c.env.OnTsa(cycle, uint64(c.rob.ival[idx]))
		case isa.THEND:
			if c.cfg.SeqLoops {
				c.env.OnThend(cycle)
				break
			}
			c.retireROBHead()
			c.running = false
			c.squashAll()
			c.env.OnThend(cycle)
			return
		case isa.ABORT:
			if c.cfg.SeqLoops {
				c.env.OnAbort(cycle, int(c.rob.pc[idx])+1)
				break
			}
			resume := int(c.rob.pc[idx]) + 1
			c.retireROBHead()
			c.running = false
			c.squashAll()
			c.env.OnAbort(cycle, resume)
			return
		case isa.HALT:
			c.retireROBHead()
			c.running = false
			c.squashAll()
			c.env.OnHalt(cycle)
			return
		}
		c.retireROBHead()
	}
}

func (c *Core) retireROBHead() {
	c.robHead = (c.robHead + 1) % c.cfg.ROBSize
	c.robCount--
}

// popLSQ removes a committing memory op from the LSQ. Commit proceeds in
// program order and the LSQ is kept in program order, so the committing op
// is always the ring front; the scan below is a defensive fallback only.
func (c *Core) popLSQ(idx int) {
	if c.lsqCount > 0 && c.lsqBuf[c.lsqHead] == idx {
		c.lsqHead++
		if c.lsqHead == len(c.lsqBuf) {
			c.lsqHead = 0
		}
		c.lsqCount--
		return
	}
	for i := 0; i < c.lsqCount; i++ {
		j := (c.lsqHead + i) % len(c.lsqBuf)
		if c.lsqBuf[j] != idx {
			continue
		}
		// Shift later entries forward one position, preserving age order.
		for k := i; k < c.lsqCount-1; k++ {
			from := (c.lsqHead + k + 1) % len(c.lsqBuf)
			to := (c.lsqHead + k) % len(c.lsqBuf)
			c.lsqBuf[to] = c.lsqBuf[from]
		}
		c.lsqCount--
		return
	}
}

// squashAll discards every in-flight entry (thread end or kill). The wrong
// queue is preserved: already-extracted wrong loads keep prefetching.
func (c *Core) squashAll() {
	c.Stats.SquashedInsts += uint64(c.robCount)
	c.releaseInFlight()
	c.robHead, c.robTail, c.robCount = 0, 0, 0
	c.ctlInFlight = 0
	for i := range c.renameInt {
		c.renameInt[i] = -1
	}
	for i := range c.renameFP {
		c.renameFP[i] = -1
	}
	c.lsqHead, c.lsqCount = 0, 0
	for i := range c.readyMask {
		c.readyMask[i] = 0
		c.execMask[i] = 0
	}
	c.fetchStopped = true
}

// complete marks finished executions done, broadcasts results to waiting
// consumers, and resolves branches (possibly triggering recovery). Only
// entries in the executing set are visited, in age order.
func (c *Core) complete(cycle uint64) {
	if c.robCount == 0 {
		return
	}
	n := c.cfg.ROBSize
	end := c.robHead + c.robCount
	if end <= n {
		c.completeRange(cycle, c.robHead, end)
		return
	}
	if !c.completeRange(cycle, c.robHead, n) {
		return
	}
	c.completeRange(cycle, 0, end-n)
}

// completeRange processes executing entries with slot index in [lo, hi).
// Returns false when a branch recovery squashed younger entries (the
// executing set was rebuilt; iteration must stop).
func (c *Core) completeRange(cycle uint64, lo, hi int) bool {
	for w := lo >> 6; w <= (hi-1)>>6; w++ {
		word := c.execMask[w]
		if w == lo>>6 {
			word &^= (1 << (uint(lo) & 63)) - 1
		}
		if w == (hi-1)>>6 {
			if top := uint(hi-1)&63 + 1; top < 64 {
				word &= (1 << top) - 1
			}
		}
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			idx := w<<6 | b
			if r := c.rob.req[idx]; r != nil {
				if r.Done && r.DoneCycle <= cycle {
					r.Release()
					c.rob.req[idx] = nil
					c.rob.state[idx] = stDone
					maskClear(c.execMask, idx)
					c.broadcast(idx)
				}
				continue
			}
			if c.rob.doneAt[idx] > cycle {
				continue
			}
			c.rob.state[idx] = stDone
			maskClear(c.execMask, idx)
			c.broadcast(idx)
			if op := c.rob.inst[idx].Op; op.IsBranch() || op == isa.JR {
				if c.resolveControl(cycle, idx, c.posOf(idx)) {
					return false // recovery squashed everything younger
				}
			}
		}
	}
	return true
}

// broadcast forwards a completed entry's result to the consumers chained on
// its wake-up list.
func (c *Core) broadcast(idx int) {
	node := c.rob.waitHead[idx]
	c.rob.waitHead[idx] = -1
	iv, fv := c.rob.ival[idx], c.rob.fval[idx]
	for node >= 0 {
		k := int(node >> 1)
		op := int(node & 1)
		var next int32
		if op == 0 {
			next = c.rob.wNext0[k]
			c.rob.wNext0[k] = -1
		} else {
			next = c.rob.wNext1[k]
			c.rob.wNext1[k] = -1
		}
		// Validate the link: the waiter must still be a live dispatched
		// entry waiting on this producer (squash rebuilds chains, so stale
		// links should not occur; this guards the invariant cheaply).
		if c.rob.state[k] == stDispatched && c.posOf(k) < c.robCount {
			f := c.rob.flags[k]
			if op == 0 {
				if f&fUse1 != 0 && f&fS1Rdy == 0 && int(c.rob.s1rob[k]) == idx {
					c.rob.flags[k] = f | fS1Rdy
					c.rob.s1i[k] = iv
					c.rob.s1f[k] = fv
					if c.entryReady(k) {
						maskSet(c.readyMask, k)
					}
				}
			} else {
				if f&fUse2 != 0 && f&fS2Rdy == 0 && int(c.rob.s2rob[k]) == idx {
					c.rob.flags[k] = f | fS2Rdy
					c.rob.s2i[k] = iv
					c.rob.s2f[k] = fv
					if c.entryReady(k) {
						maskSet(c.readyMask, k)
					}
				}
			}
		}
		node = next
	}
}

// resolveControl checks a completed branch or indirect jump against its
// prediction, training the predictor and recovering on a mismatch. Returns
// true when recovery squashed younger entries.
func (c *Core) resolveControl(cycle uint64, idx, agePos int) bool {
	in := c.rob.inst[idx]
	var taken bool
	var target int
	if in.Op == isa.JR {
		taken = true
		target = int(c.rob.s1i[idx])
	} else {
		taken = isa.BranchTaken(in, c.rob.s1i[idx], c.rob.s2i[idx])
		target = int(in.Imm)
	}
	if taken {
		c.rob.bflags[idx] |= bTaken
	}
	pc := int(c.rob.pc[idx])
	actualNext := pc + 1
	if taken {
		actualNext = target
	}
	predNext := pc + 1
	if c.rob.bflags[idx]&bPredTaken != 0 {
		predNext = int(c.rob.predTarget[idx])
	}
	if actualNext == predNext {
		return false
	}
	c.rob.bflags[idx] |= bMispredict
	if in.Op == isa.JR {
		// Indirect-jump mispredicts are rare; count them at resolution.
		c.Stats.Mispredicts++
	}
	c.recover(cycle, agePos, actualNext)
	return true
}

// recover squashes all entries younger than the entry at agePos, extracts
// ready wrong-path loads into the wrong queue (wp configurations), rebuilds
// the rename maps, occupancy bitmaps, and wake-up chains, and redirects
// fetch.
func (c *Core) recover(cycle uint64, agePos, nextPC int) {
	for p := agePos + 1; p < c.robCount; p++ {
		idx := c.slotAt(p)
		in := c.rob.inst[idx]
		c.Stats.SquashedInsts++
		if isCtl(in.Op) {
			c.ctlInFlight--
		}
		if r := c.rob.req[idx]; r != nil {
			r.Release()
			c.rob.req[idx] = nil
		}
		if c.cfg.WrongPathExec && in.Op.IsLoad() && c.rob.flags[idx]&fMemIssued == 0 {
			// Compute the effective address if its operand is ready: these
			// are the "ready" wrong-path loads of Figure 3 that continue to
			// memory; address-unknown loads squash outright.
			f := c.rob.flags[idx]
			if f&fAddrKnown == 0 && f&fS1Rdy != 0 {
				c.rob.addr[idx] = isa.EffAddr(in, c.rob.s1i[idx])
				c.rob.flags[idx] = f | fAddrKnown
			}
			if c.rob.flags[idx]&fAddrKnown != 0 && len(c.wrongQ) < c.cfg.LSQSize {
				c.wrongQ = append(c.wrongQ, wrongLoad{addr: c.rob.addr[idx], pc: int(c.rob.pc[idx])})
			}
		}
	}
	// Drop squashed entries.
	newCount := agePos + 1
	c.robTail = c.slotAt(newCount)
	// Truncate the LSQ: survivors are a program-order prefix of the ring.
	kept := 0
	for i := 0; i < c.lsqCount; i++ {
		s := c.lsqBuf[(c.lsqHead+i)%len(c.lsqBuf)]
		if c.posOf(s) >= newCount {
			break
		}
		kept++
	}
	c.lsqCount = kept
	c.robCount = newCount
	// Rebuild rename maps, bitmaps, and wake-up chains from the surviving
	// entries, oldest to youngest.
	for i := range c.renameInt {
		c.renameInt[i] = -1
	}
	for i := range c.renameFP {
		c.renameFP[i] = -1
	}
	for i := range c.readyMask {
		c.readyMask[i] = 0
		c.execMask[i] = 0
	}
	for p := 0; p < c.robCount; p++ {
		c.rob.waitHead[c.slotAt(p)] = -1
	}
	for p := 0; p < c.robCount; p++ {
		idx := c.slotAt(p)
		in := c.rob.inst[idx]
		if in.HasDest() {
			if in.Op.FPDest() {
				c.renameFP[in.Rd] = idx
			} else {
				c.renameInt[in.Rd] = idx
			}
		}
		switch c.rob.state[idx] {
		case stDispatched:
			c.rob.wNext0[idx], c.rob.wNext1[idx] = -1, -1
			f := c.rob.flags[idx]
			if f&fUse1 != 0 && f&fS1Rdy == 0 {
				c.addWaiter(int(c.rob.s1rob[idx]), idx, 0)
			}
			if f&fUse2 != 0 && f&fS2Rdy == 0 {
				c.addWaiter(int(c.rob.s2rob[idx]), idx, 1)
			}
			if c.entryReady(idx) {
				maskSet(c.readyMask, idx)
			}
		case stExecuting:
			maskSet(c.execMask, idx)
		}
	}
	c.fetchPC = nextPC
	c.fetchStopped = false
	c.redirectStall = RedirectPenalty
}

// issue starts execution of ready entries in age order, bounded by issue
// width and functional-unit availability. Only entries in the ready set are
// visited.
func (c *Core) issue(cycle uint64) {
	if c.robCount == 0 {
		return
	}
	issued := 0
	n := c.cfg.ROBSize
	end := c.robHead + c.robCount
	if end <= n {
		c.issueRange(cycle, c.robHead, end, &issued)
		return
	}
	c.issueRange(cycle, c.robHead, n, &issued)
	if issued < c.cfg.IssueWidth {
		c.issueRange(cycle, 0, end-n, &issued)
	}
}

// issueRange attempts issue for ready entries with slot index in [lo, hi).
func (c *Core) issueRange(cycle uint64, lo, hi int, issued *int) {
	for w := lo >> 6; w <= (hi-1)>>6 && *issued < c.cfg.IssueWidth; w++ {
		word := c.readyMask[w]
		if w == lo>>6 {
			word &^= (1 << (uint(lo) & 63)) - 1
		}
		if w == (hi-1)>>6 {
			if top := uint(hi-1)&63 + 1; top < 64 {
				word &= (1 << top) - 1
			}
		}
		for word != 0 && *issued < c.cfg.IssueWidth {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			idx := w<<6 | b
			in := c.rob.inst[idx]
			switch {
			case in.Op.IsLoad():
				if c.issueLoad(cycle, idx) {
					maskClear(c.readyMask, idx)
					maskSet(c.execMask, idx)
					*issued++
				}
			case in.Op.IsStore():
				// Stores compute address and data; the cache access happens
				// at commit (sequential mode) or write-back drain (parallel
				// mode).
				c.rob.addr[idx] = isa.EffAddr(in, c.rob.s1i[idx])
				if in.Op == isa.FST {
					c.rob.storeBits[idx] = int64(math.Float64bits(c.rob.s2f[idx]))
				} else {
					c.rob.storeBits[idx] = c.rob.s2i[idx]
				}
				c.rob.flags[idx] |= fAddrKnown | fValKnown
				c.rob.state[idx] = stExecuting
				c.rob.doneAt[idx] = cycle + 1
				maskClear(c.readyMask, idx)
				maskSet(c.execMask, idx)
				*issued++
			default:
				fu := in.Op.FU()
				if !c.takeFU(fu) {
					continue
				}
				c.execALU(cycle, idx)
				maskClear(c.readyMask, idx)
				maskSet(c.execMask, idx)
				*issued++
			}
		}
	}
}

func (c *Core) takeFU(fu isa.FUClass) bool {
	var limit int
	switch fu {
	case isa.FUIntALU:
		limit = c.cfg.IntALU
	case isa.FUIntMul:
		limit = c.cfg.IntMul
	case isa.FUFPAdd:
		limit = c.cfg.FPAdd
	case isa.FUFPMul:
		limit = c.cfg.FPMul
	default:
		return true // markers need no FU
	}
	if c.fuUsed[fu] >= limit {
		return false
	}
	c.fuUsed[fu]++
	return true
}

// execALU computes a non-memory result, visible after the op latency.
func (c *Core) execALU(cycle uint64, idx int) {
	in := c.rob.inst[idx]
	switch in.Op {
	case isa.JAL:
		c.rob.ival[idx] = int64(int(c.rob.pc[idx]) + 1)
	case isa.JMP, isa.NOP, isa.HALT, isa.BEGIN, isa.FORK, isa.TSAGD,
		isa.THEND, isa.ABORT:
		// Markers and unconditional jumps carry no data result.
	default:
		c.rob.ival[idx], c.rob.fval[idx] = isa.Eval(in,
			c.rob.s1i[idx], c.rob.s2i[idx], c.rob.s1f[idx], c.rob.s2f[idx])
	}
	c.rob.state[idx] = stExecuting
	c.rob.doneAt[idx] = cycle + uint64(in.Op.Latency())
}

// issueLoad attempts to start a load: memory ordering against older stores,
// store-to-load forwarding, then the DMem (memory buffer + caches).
func (c *Core) issueLoad(cycle uint64, idx int) bool {
	in := c.rob.inst[idx]
	if c.rob.flags[idx]&fAddrKnown == 0 {
		c.rob.addr[idx] = isa.EffAddr(in, c.rob.s1i[idx])
		c.rob.flags[idx] |= fAddrKnown
	}
	addr := c.rob.addr[idx]
	// Conservative disambiguation: every older store must have a known
	// address; the nearest older same-address store forwards its data.
	fwd := -1
	j := c.lsqHead
	for i := 0; i < c.lsqCount; i++ {
		s := c.lsqBuf[j]
		j++
		if j == len(c.lsqBuf) {
			j = 0
		}
		if s == idx {
			break
		}
		if !c.rob.inst[s].Op.IsStore() {
			continue
		}
		if c.rob.flags[s]&fAddrKnown == 0 {
			return false // wait: unresolved older store address
		}
		if c.rob.addr[s] == addr {
			fwd = s
		}
	}
	if fwd >= 0 {
		if c.rob.flags[fwd]&fValKnown == 0 {
			return false // data not ready yet
		}
		c.finishLoad(idx, c.rob.storeBits[fwd], cycle+1)
		c.rob.flags[idx] |= fMemIssued
		return true
	}
	if !c.dmem.LoadsAllowed() {
		return false
	}
	res := c.dmem.TryLoad(cycle, addr, c.wrongMode, int(c.rob.pc[idx]))
	switch res.Status {
	case LoadStall, LoadNoPort:
		return false
	case LoadForwarded:
		c.finishLoad(idx, res.Value, cycle+1)
		c.rob.flags[idx] |= fMemIssued
		return true
	default: // LoadIssued
		c.rob.req[idx] = res.Req
		c.finishLoadValue(idx, res.Value)
		c.rob.state[idx] = stExecuting
		c.rob.flags[idx] |= fMemIssued
		return true
	}
}

func (c *Core) finishLoad(idx int, bits int64, doneAt uint64) {
	c.finishLoadValue(idx, bits)
	c.rob.state[idx] = stExecuting
	c.rob.doneAt[idx] = doneAt
}

func (c *Core) finishLoadValue(idx int, bits int64) {
	if c.rob.inst[idx].Op == isa.FLD {
		c.rob.fval[idx] = math.Float64frombits(uint64(bits))
	} else {
		c.rob.ival[idx] = bits
	}
}

// drainWrongQ keeps issuing extracted wrong-path loads to the memory system
// as ports allow; correct-path demand accesses already had priority this
// cycle (issue runs first).
func (c *Core) drainWrongQ(cycle uint64) {
	for len(c.wrongQ) > 0 {
		if !c.dmem.WrongLoad(cycle, c.wrongQ[0].addr, c.wrongQ[0].pc) {
			return
		}
		c.Stats.WrongPathLoadsIssued++
		c.wrongQ = c.wrongQ[1:]
	}
}

// fetch brings new instructions into the ROB: up to IssueWidth per cycle,
// stopping at thread-ending instructions, I-cache misses, or full ROB/LSQ.
func (c *Core) fetch(cycle uint64) {
	if !c.running || c.fetchStopped {
		return
	}
	if c.redirectStall > 0 {
		c.redirectStall--
		return
	}
	for n := 0; n < c.cfg.IssueWidth; n++ {
		if c.robCount >= c.cfg.ROBSize {
			return
		}
		in := c.prog.At(c.fetchPC)
		if in.Op.IsMem() && c.lsqCount >= c.cfg.LSQSize {
			return
		}
		if !c.imem.FetchReady(cycle, c.fetchPC) {
			c.Stats.FetchStallICache++
			return
		}
		c.dispatch(cycle, in)
		if in.Op == isa.HALT {
			c.fetchStopped = true
			return
		}
		if !c.cfg.SeqLoops && (in.Op == isa.THEND || in.Op == isa.ABORT) {
			// ABORT transfers control out of the loop body; the thread
			// resumes (or dies) under sta control after commit.
			c.fetchStopped = true
			return
		}
	}
}

// dispatch decodes one instruction into the ROB tail, reading or renaming
// its operands and predicting control flow.
func (c *Core) dispatch(cycle uint64, in isa.Inst) {
	idx := c.robTail
	c.robTail = (c.robTail + 1) % c.cfg.ROBSize
	c.robCount++
	c.rob.inst[idx] = in
	c.rob.pc[idx] = int32(c.fetchPC)
	c.rob.state[idx] = stDispatched
	c.rob.flags[idx] = 0
	c.rob.bflags[idx] = 0
	c.rob.waitHead[idx] = -1
	c.rob.wNext0[idx], c.rob.wNext1[idx] = -1, -1
	maskClear(c.readyMask, idx)
	maskClear(c.execMask, idx)

	r1, r2, use1, use2, fp1, fp2 := in.SrcRegs()
	if use1 {
		c.rob.flags[idx] |= fUse1
		c.readOperand(idx, 0, r1, fp1)
	}
	if use2 {
		c.rob.flags[idx] |= fUse2
		c.readOperand(idx, 1, r2, fp2)
	}
	if c.metrics != nil {
		c.observeLoadUse(idx)
	}
	if isCtl(in.Op) {
		c.ctlInFlight++
	}

	// Markers with no execution latency complete immediately at dispatch+1.
	switch in.Op {
	case isa.NOP, isa.HALT, isa.BEGIN, isa.FORK, isa.TSAGD, isa.THEND, isa.ABORT:
		c.rob.state[idx] = stExecuting
		c.rob.doneAt[idx] = cycle + 1
	}

	if c.rob.state[idx] == stDispatched {
		f := c.rob.flags[idx]
		if f&fUse1 != 0 && f&fS1Rdy == 0 {
			c.addWaiter(int(c.rob.s1rob[idx]), idx, 0)
		}
		if f&fUse2 != 0 && f&fS2Rdy == 0 {
			c.addWaiter(int(c.rob.s2rob[idx]), idx, 1)
		}
		if c.entryReady(idx) {
			maskSet(c.readyMask, idx)
		}
	} else {
		maskSet(c.execMask, idx)
	}

	if in.Op.IsMem() {
		c.lsqBuf[(c.lsqHead+c.lsqCount)%len(c.lsqBuf)] = idx
		c.lsqCount++
	}

	// Rename the destination.
	if in.HasDest() {
		if in.Op.FPDest() {
			c.renameFP[in.Rd] = idx
		} else {
			c.renameInt[in.Rd] = idx
		}
	}

	// Control flow prediction.
	next := c.fetchPC + 1
	switch {
	case in.Op == isa.FORK && c.cfg.SeqLoops:
		c.seqForkTarget = int(in.Imm)
	case in.Op == isa.THEND && c.cfg.SeqLoops:
		// Sequential semantics: the next iteration begins at the fork
		// target (matches the functional interpreter).
		next = c.seqForkTarget
	case in.Op == isa.JMP:
		next = int(in.Imm)
	case in.Op == isa.JAL:
		c.bp.PushRAS(c.fetchPC + 1)
		next = int(in.Imm)
	case in.Op == isa.JR:
		if tgt, ok := c.bp.PopRAS(); ok {
			c.rob.bflags[idx] |= bPredTaken
			c.rob.predTarget[idx] = int32(tgt)
			next = tgt
		} else {
			c.rob.predTarget[idx] = int32(c.fetchPC + 1)
		}
	case in.Op.IsBranch():
		c.rob.predTarget[idx] = int32(in.Imm)
		if c.bp.PredictDirection(c.fetchPC) {
			c.rob.bflags[idx] |= bPredTaken
			next = int(c.rob.predTarget[idx])
		}
	}
	c.fetchPC = next
}

// observeLoadUse reports, for each source operand still waiting on an
// in-flight load, the program-order distance (in instructions) from that
// load to this consumer — the window the memory system has to hide the
// load's latency. Called only when a metrics collector is attached.
func (c *Core) observeLoadUse(idx int) {
	f := c.rob.flags[idx]
	if f&fUse1 != 0 && f&fS1Rdy == 0 && c.rob.inst[c.rob.s1rob[idx]].Op.IsLoad() {
		c.obsLoadUse(uint64(c.posOf(idx) - c.posOf(int(c.rob.s1rob[idx]))))
	}
	if f&fUse2 != 0 && f&fS2Rdy == 0 && c.rob.inst[c.rob.s2rob[idx]].Op.IsLoad() {
		c.obsLoadUse(uint64(c.posOf(idx) - c.posOf(int(c.rob.s2rob[idx]))))
	}
}

// obsLoadUse records one distance, buffering it when the parallel compute
// phase has deferred observation (the histogram is shared across TUs).
func (c *Core) obsLoadUse(dist uint64) {
	if c.obsDefer {
		c.defLoadUse = append(c.defLoadUse, dist)
		return
	}
	c.metrics.ObserveLoadUse(dist)
}

// readOperand resolves source register r into operand op (0 or 1) of slot
// idx: a ready value, or a link to the producer's ROB slot plus a pending
// wake-up registration (done by dispatch after both operands resolve).
func (c *Core) readOperand(idx, op int, r uint8, fp bool) {
	prod := -1
	rdy := false
	var iv int64
	var fv float64
	if fp {
		if prod = c.renameFP[r]; prod < 0 {
			rdy, fv = true, c.FPRegs[r]
		}
	} else if r == 0 {
		rdy = true
	} else if prod = c.renameInt[r]; prod < 0 {
		rdy, iv = true, c.IntRegs[r]
	}
	if prod >= 0 && c.rob.state[prod] == stDone {
		rdy, iv, fv = true, c.rob.ival[prod], c.rob.fval[prod]
	}
	if op == 0 {
		if rdy {
			c.rob.flags[idx] |= fS1Rdy
			c.rob.s1i[idx] = iv
			c.rob.s1f[idx] = fv
		} else {
			c.rob.s1rob[idx] = int32(prod)
		}
	} else {
		if rdy {
			c.rob.flags[idx] |= fS2Rdy
			c.rob.s2i[idx] = iv
			c.rob.s2f[idx] = fv
		} else {
			c.rob.s2rob[idx] = int32(prod)
		}
	}
}
