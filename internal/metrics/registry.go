// Package metrics is the simulator's observability layer: a registry of
// named counters and gauges scoped per thread unit and per cache, an
// interval sampler that turns cumulative counters into exportable time
// series (CSV + JSON), log2-bucketed latency histograms, and a Chrome
// trace-event / Perfetto timeline exporter that renders thread-pipelining
// stages and cache-miss spans on a cycle timeline.
//
// Everything hangs off a *Collector, attached to a machine before Run.
// Every hook method is safe to call on a nil *Collector, so instrumented
// code can call them unconditionally; the instrumentation sites in
// internal/core, internal/mem, and internal/sta additionally guard with a
// nil check so an uninstrumented run pays only an untaken branch.
package metrics

import (
	"sort"
	"strings"
	"sync"
)

// Counter is a monotonically increasing metric owned by the registry.
// It is not synchronized: each counter belongs to one simulation goroutine.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a point-in-time level owned by the registry.
type Gauge struct{ v int64 }

// Set replaces the level.
func (g *Gauge) Set(v int64) { g.v = v }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

// Registry names every counter and gauge of one simulation run. Metrics
// are scoped ("tu0", "l1d3", "l2", "machine") so exports group naturally.
// Besides owned Counters/Gauges, existing simulator statistics register as
// read functions snapshotted at export time.
type Registry struct {
	mu    sync.Mutex
	order []string
	read  map[string]func() uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{read: make(map[string]func() uint64)}
}

func (r *Registry) register(scope, name string, fn func() uint64) {
	key := scope + "/" + name
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.read[key]; !dup {
		r.order = append(r.order, key)
	}
	r.read[key] = fn
}

// Counter creates (and registers) an owned counter under scope/name.
func (r *Registry) Counter(scope, name string) *Counter {
	c := &Counter{}
	r.register(scope, name, c.Value)
	return c
}

// Gauge creates (and registers) an owned gauge under scope/name.
func (r *Registry) Gauge(scope, name string) *Gauge {
	g := &Gauge{}
	r.register(scope, name, func() uint64 { return uint64(g.v) })
	return g
}

// RegisterFunc exposes an externally maintained statistic (for example a
// field of mem.DUnit) under scope/name; fn is called at snapshot time.
func (r *Registry) RegisterFunc(scope, name string, fn func() uint64) {
	r.register(scope, name, fn)
}

// Snapshot reads every registered metric, sorted by key for deterministic
// export.
func (r *Registry) Snapshot() []KV {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]KV, 0, len(r.order))
	for _, key := range r.order {
		out = append(out, KV{Key: key, Value: r.read[key]()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// KV is one snapshotted metric.
type KV struct {
	Key   string
	Value uint64
}

// Scope extracts the scope component of the key ("tu0/commits" -> "tu0").
func (kv KV) Scope() string {
	if i := strings.IndexByte(kv.Key, '/'); i >= 0 {
		return kv.Key[:i]
	}
	return ""
}
