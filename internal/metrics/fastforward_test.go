package metrics

import (
	"reflect"
	"testing"
)

// ffPair builds two identical samplers over a mutable counter: one driven
// per-cycle through MaybeSample (the reference), one via FastForward over
// the same idle spans. The counter never moves during a skipped span, which
// is the invariant the event-skip fast path relies on.
func ffPair(interval uint64) (ref, ff *Sampler, counter *float64) {
	c := new(float64)
	ref = NewSampler(interval)
	ref.Add("events", Delta, func() float64 { return *c }, nil)
	ff = NewSampler(interval)
	ff.Add("events", Delta, func() float64 { return *c }, nil)
	return ref, ff, c
}

// stepRef drives the reference sampler one cycle at a time over (from, to].
func stepRef(s *Sampler, from, to uint64) {
	for c := from + 1; c <= to; c++ {
		s.MaybeSample(c)
	}
}

func sameRows(t *testing.T, ref, ff *Sampler) {
	t.Helper()
	if !reflect.DeepEqual(ref.Cycles(), ff.Cycles()) {
		t.Fatalf("cycle stamps diverge: ref %v, fast-forward %v", ref.Cycles(), ff.Cycles())
	}
	if !reflect.DeepEqual(ref.Rows(), ff.Rows()) {
		t.Fatalf("rows diverge: ref %v, fast-forward %v", ref.Rows(), ff.Rows())
	}
	if ref.NextBoundary() != ff.NextBoundary() {
		t.Fatalf("next boundary diverges: ref %d, fast-forward %d", ref.NextBoundary(), ff.NextBoundary())
	}
}

func TestFastForwardZeroLengthSkip(t *testing.T) {
	ref, ff, _ := ffPair(10)
	stepRef(ref, 0, 5)
	// to <= from must be a no-op in every representable form.
	ff.FastForward(5, 5)
	ff.FastForward(7, 5)
	stepRef(ff, 0, 5)
	sameRows(t, ref, ff)
	if got := len(ff.Rows()); got != 0 {
		t.Fatalf("zero-length skips produced %d rows, want 0", got)
	}
}

func TestFastForwardAcrossIntervalBoundary(t *testing.T) {
	ref, ff, counter := ffPair(10)
	*counter = 3
	stepRef(ref, 0, 4)
	stepRef(ff, 0, 4)
	// Skip 4 -> 25 crosses the boundaries at 10 and 20; both samplers must
	// emit identical rows there and agree on the next boundary (30).
	stepRef(ref, 4, 25)
	ff.FastForward(4, 25)
	sameRows(t, ref, ff)
	if got := ff.Cycles(); len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("boundary rows at %v, want [10 20]", got)
	}
	if want := uint64(30); ff.NextBoundary() != want {
		t.Fatalf("next boundary %d, want %d", ff.NextBoundary(), want)
	}
}

func TestFastForwardPastFinalSample(t *testing.T) {
	ref, ff, counter := ffPair(100)
	*counter = 7
	// The whole run fits inside one skip that ends past the last boundary
	// the run will ever see; Finish then adds the partial tail row.
	stepRef(ref, 0, 130)
	ff.FastForward(0, 130)
	sameRows(t, ref, ff)
	ref.Finish(130)
	ff.Finish(130)
	sameRows(t, ref, ff)
	if got := ff.Cycles(); len(got) != 2 || got[0] != 100 || got[1] != 130 {
		t.Fatalf("rows at %v, want [100 130]", got)
	}
}

func TestFastForwardOverdueBoundary(t *testing.T) {
	// MaybeSample at a cycle past the boundary re-anchors the next boundary
	// at cycle+interval; a skip starting with an already-overdue boundary
	// must fire at from+1 exactly like the per-cycle loop would.
	ref, ff, _ := ffPair(10)
	// Drive both to cycle 8 (no row yet), then jump straight to 35: the
	// per-cycle loop fires at 10, 20, 30.
	stepRef(ref, 0, 8)
	stepRef(ff, 0, 8)
	stepRef(ref, 8, 35)
	ff.FastForward(8, 35)
	sameRows(t, ref, ff)

	// Now make the boundary overdue before skipping: next is 45, but the
	// machine stalls until cycle 47 without sampling (as the fast path does
	// when it calls FastForward(from=47, ...) with s.next=45 <= from). The
	// reference loop fires at 48 = from+1.
	ref2, ff2, _ := ffPair(10)
	stepRef(ref2, 0, 35)
	ff2.FastForward(0, 35)
	// Force the overdue state directly: skip from 47 with next=45 pending.
	stepRef(ref2, 47, 60)
	ff2.FastForward(47, 60)
	sameRows(t, ref2, ff2)
	last := ff2.Cycles()[len(ff2.Cycles())-1]
	if want := uint64(58); last != want {
		t.Fatalf("overdue boundary fired at %d, want %d (from+1 then +interval)", last, want)
	}
}

func TestFastForwardBeforeNextBoundaryIsNoop(t *testing.T) {
	ref, ff, _ := ffPair(50)
	stepRef(ref, 0, 30)
	ff.FastForward(0, 30) // next boundary (50) is past `to`: nothing fires
	sameRows(t, ref, ff)
	if len(ff.Rows()) != 0 {
		t.Fatalf("skip short of the first boundary produced rows: %v", ff.Cycles())
	}
}
