package metrics

import (
	"fmt"
	"strconv"
	"strings"
)

// SeriesKind says how a sampled column is derived from its probe(s) at
// each interval boundary.
type SeriesKind uint8

// Series kinds.
const (
	// Level samples the probe's instantaneous value (occupancies).
	Level SeriesKind = iota
	// Delta samples the probe's increase over the interval (event counts).
	Delta
	// PerCycle samples the probe's increase divided by the interval's
	// cycle count (rates such as IPC or wrong-loads/cycle).
	PerCycle
	// Ratio samples the increase of the numerator probe divided by the
	// increase of the denominator probe (miss rates). 0/0 samples as 0.
	Ratio
)

type series struct {
	name    string
	kind    SeriesKind
	num     func() float64
	den     func() float64 // Ratio only
	lastNum float64
	lastDen float64
}

// Sampler snapshots a set of derived series every Interval cycles. It is
// driven from the simulation loop via MaybeSample; one uint64 compare per
// cycle is the whole cost between boundaries.
type Sampler struct {
	Interval uint64

	next      uint64
	lastCycle uint64
	cols      []*series
	cycles    []uint64
	rows      [][]float64
}

// NewSampler samples every interval cycles (interval must be positive).
func NewSampler(interval uint64) *Sampler {
	if interval == 0 {
		interval = 1
	}
	return &Sampler{Interval: interval, next: interval}
}

// Add registers a column. For Ratio, den is required; other kinds ignore
// it. Registration order fixes the column order of the export.
func (s *Sampler) Add(name string, kind SeriesKind, num func() float64, den func() float64) {
	s.cols = append(s.cols, &series{name: name, kind: kind, num: num, den: den})
}

// MaybeSample appends a row when cycle has reached the next boundary.
func (s *Sampler) MaybeSample(cycle uint64) {
	if cycle < s.next {
		return
	}
	s.sample(cycle)
	s.next = cycle + s.Interval
}

// FastForward replays every sample boundary in (from, to] in bulk, exactly
// as if MaybeSample had been called once per cycle. The event-skip fast
// path uses it to jump over idle spans in O(samples) instead of O(cycles):
// because no probe changes while the machine is idle, sampling at the same
// boundary cycles yields bit-identical rows.
func (s *Sampler) FastForward(from, to uint64) {
	if to <= from || s.next > to {
		return
	}
	c := s.next
	if c <= from {
		// Overdue boundary: the per-cycle loop would first fire at from+1.
		c = from + 1
	}
	for c <= to {
		s.sample(c)
		s.next = c + s.Interval
		c = s.next
	}
}

// NextBoundary returns the cycle of the next sample row. The parallel
// stepping batcher refuses to open a multi-cycle window across a boundary,
// so rows always sample fully committed counter state.
func (s *Sampler) NextBoundary() uint64 { return s.next }

// Finish appends a final partial row covering the tail of the run.
func (s *Sampler) Finish(cycle uint64) {
	if cycle > s.lastCycle {
		s.sample(cycle)
	}
}

func (s *Sampler) sample(cycle uint64) {
	span := float64(cycle - s.lastCycle)
	row := make([]float64, len(s.cols))
	for i, c := range s.cols {
		cur := c.num()
		switch c.kind {
		case Level:
			row[i] = cur
		case Delta:
			row[i] = cur - c.lastNum
		case PerCycle:
			if span > 0 {
				row[i] = (cur - c.lastNum) / span
			}
		case Ratio:
			curDen := c.den()
			if d := curDen - c.lastDen; d > 0 {
				row[i] = (cur - c.lastNum) / d
			}
			c.lastDen = curDen
		}
		c.lastNum = cur
	}
	s.cycles = append(s.cycles, cycle)
	s.rows = append(s.rows, row)
	s.lastCycle = cycle
}

// Columns returns the column names in export order (after "cycle").
func (s *Sampler) Columns() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.name
	}
	return out
}

// Rows returns the sampled rows; row i corresponds to Cycles()[i].
func (s *Sampler) Rows() [][]float64 { return s.rows }

// Cycles returns the cycle stamp of each row.
func (s *Sampler) Cycles() []uint64 { return s.cycles }

// CSV renders the series as comma-separated values with a "cycle" first
// column. Floats use the shortest round-trip representation.
func (s *Sampler) CSV() string {
	var sb strings.Builder
	sb.WriteString("cycle")
	for _, c := range s.cols {
		sb.WriteByte(',')
		sb.WriteString(c.name)
	}
	sb.WriteByte('\n')
	for i, row := range s.rows {
		sb.WriteString(strconv.FormatUint(s.cycles[i], 10))
		for _, v := range row {
			sb.WriteByte(',')
			sb.WriteString(formatSample(v))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// formatSample renders a sample value compactly: integers without a
// decimal point, everything else with four significant decimals.
func formatSample(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// seriesExport is the JSON schema of the interval series.
type seriesExport struct {
	Interval uint64      `json:"interval"`
	Columns  []string    `json:"columns"` // first column is always "cycle"
	Rows     [][]float64 `json:"rows"`
}

func (s *Sampler) export() seriesExport {
	cols := append([]string{"cycle"}, s.Columns()...)
	rows := make([][]float64, len(s.rows))
	for i, r := range s.rows {
		rows[i] = append([]float64{float64(s.cycles[i])}, r...)
	}
	return seriesExport{Interval: s.Interval, Columns: cols, Rows: rows}
}

// String summarizes the sampler for debugging.
func (s *Sampler) String() string {
	return fmt.Sprintf("sampler(interval=%d, cols=%d, rows=%d)", s.Interval, len(s.cols), len(s.rows))
}
