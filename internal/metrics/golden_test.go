package metrics

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

// The golden files pin the export schemas: metrics JSON, interval-series
// CSV, and the Perfetto/Chrome trace JSON. Regenerate after an intentional
// schema change with:
//
//	go test ./internal/metrics -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// goldenCollector builds a collector with fully deterministic contents.
func goldenCollector() *Collector {
	c := NewCollector(100)

	var commits, misses, accesses uint64
	c.Registry.RegisterFunc("tu0", "commits", func() uint64 { return commits })
	c.Registry.RegisterFunc("l1d0", "misses", func() uint64 { return misses })
	c.Registry.RegisterFunc("l1d0", "accesses", func() uint64 { return accesses })
	c.Sampler.Add("ipc", PerCycle, func() float64 { return float64(commits) }, nil)
	c.Sampler.Add("l1d_miss_rate", Ratio,
		func() float64 { return float64(misses) },
		func() float64 { return float64(accesses) })

	commits, misses, accesses = 150, 4, 40
	c.MaybeSample(100)
	commits, misses, accesses = 410, 4, 100
	c.MaybeSample(200)

	c.ObserveMemAccess(0, 40, 10, 11, false) // L1 hit: latency 1
	c.ObserveMemAccess(0, 41, 20, 38, false) // L2 hit: latency 18
	c.ObserveMemAccess(1, 42, 30, 150, true) // wrong-execution DRAM miss
	c.ObserveLoadUse(2)
	c.ObserveLoadUse(7)
	c.ObserveWECPromotion(25)
	c.ObserveThreadLifetime(900, true)
	c.ObserveThreadLifetime(60, false)

	c.Finish(250)
	return c
}

func TestGoldenMetricsJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenCollector().WriteJSON(&buf, 250); err != nil {
		t.Fatal(err)
	}
	// Schema sanity, independent of the byte-exact golden.
	var e struct {
		Cycles   uint64            `json:"cycles"`
		Counters map[string]uint64 `json:"counters"`
		Series   *struct {
			Interval uint64      `json:"interval"`
			Columns  []string    `json:"columns"`
			Rows     [][]float64 `json:"rows"`
		} `json:"series"`
		Histograms []json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if e.Cycles != 250 || e.Counters["tu0/commits"] != 410 {
		t.Errorf("cycles=%d counters=%v", e.Cycles, e.Counters)
	}
	if e.Series == nil || e.Series.Columns[0] != "cycle" || len(e.Series.Rows) != 3 {
		t.Errorf("series = %+v", e.Series)
	}
	if len(e.Histograms) != 5 {
		t.Errorf("histograms = %d, want 5", len(e.Histograms))
	}
	checkGolden(t, "metrics.golden.json", buf.Bytes())
}

func TestGoldenSeriesCSV(t *testing.T) {
	checkGolden(t, "series.golden.csv", []byte(goldenCollector().SeriesCSV()))
}

func TestGoldenTimelineJSON(t *testing.T) {
	tl := NewTimeline()
	// A representative run: sequential prologue, a two-thread parallel
	// region where the successor is marked wrong and killed, an abort back
	// to sequential execution, and the halt.
	for _, e := range []trace.Event{
		{Cycle: 50, TU: 0, Kind: trace.Begin, Arg: 0b11},
		{Cycle: 55, TU: 0, Kind: trace.Fork, Arg: 100},
		{Cycle: 60, TU: 0, Kind: trace.Tsagd},
		{Cycle: 63, TU: 1, Kind: trace.ThreadStart, Arg: 100},
		{Cycle: 70, TU: 1, Kind: trace.Tsagd},
		{Cycle: 120, TU: 0, Kind: trace.Abort, Arg: 200},
		{Cycle: 120, TU: 1, Kind: trace.WrongMark},
		{Cycle: 125, TU: 0, Kind: trace.WBDrain},
		{Cycle: 140, TU: 0, Kind: trace.SeqResume, Arg: 200},
		{Cycle: 180, TU: 1, Kind: trace.Kill},
		{Cycle: 300, TU: 0, Kind: trace.Halt},
	} {
		tl.Event(e)
	}
	tl.MemSpan(0, 80, 98, false, 7)
	tl.MemSpan(1, 130, 170, true, -1)

	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The trace must be well-formed Chrome trace-event JSON.
	var f struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  *int   `json:"pid"`
			Tid  *int   `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	phs := map[string]bool{}
	for _, e := range f.TraceEvents {
		phs[e.Ph] = true
		if e.Ph == "" || e.Pid == nil || e.Tid == nil {
			t.Errorf("event %q missing ph/pid/tid", e.Name)
		}
	}
	for _, ph := range []string{"M", "X", "i"} {
		if !phs[ph] {
			t.Errorf("no %q events in trace", ph)
		}
	}
	checkGolden(t, "timeline.golden.json", buf.Bytes())
}
