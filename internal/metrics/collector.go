package metrics

import (
	"encoding/json"
	"io"
)

// Collector bundles one simulation run's observability state: the counter
// registry, the optional interval sampler, the four latency histograms,
// and the optional Perfetto timeline. Attach one to sta.Machine.Metrics
// before Run.
//
// Every hook method below tolerates a nil receiver, so instrumentation
// sites can call them unconditionally; the hot paths in core/mem/sta still
// guard with an explicit nil check to keep the uninstrumented cost to a
// single untaken branch.
type Collector struct {
	Registry *Registry
	Sampler  *Sampler  // nil: no interval series
	Timeline *Timeline // nil: no timeline export

	// MemLatency observes the cycle latency of every demand access
	// (correct and wrong execution; prefetches excluded) from issue to
	// value availability.
	MemLatency *Histogram
	// LoadToUse observes, in instructions, the program-order distance
	// from a load to each in-flight consumer dispatched before the load
	// completed — small distances mean little latency can be hidden.
	LoadToUse *Histogram
	// WECPromotion observes, for correct-path hits in the side buffer,
	// the cycles the block sat there since its insertion (the prefetch
	// timeliness of wrong-execution fills and victims).
	WECPromotion *Histogram
	// ThreadRetire / ThreadKill observe speculative-thread lifetimes in
	// cycles, fork (or region begin) to retirement or to kill.
	ThreadRetire *Histogram
	ThreadKill   *Histogram

	// MissSpanMin is the minimum access latency, in cycles, for which a
	// timeline memory span is emitted; accesses faster than this (L1 and
	// side-buffer hits) would flood the trace. Default 4.
	MissSpanMin uint64
}

// NewCollector builds a collector. interval > 0 attaches an interval
// sampler; 0 disables the time series. A timeline is not attached by
// default — set Timeline explicitly.
func NewCollector(interval uint64) *Collector {
	c := &Collector{
		Registry:     NewRegistry(),
		MemLatency:   NewHistogram("mem_latency", "cycles"),
		LoadToUse:    NewHistogram("load_to_use", "insts"),
		WECPromotion: NewHistogram("wec_promotion", "cycles"),
		ThreadRetire: NewHistogram("thread_retire", "cycles"),
		ThreadKill:   NewHistogram("thread_kill", "cycles"),
		MissSpanMin:  4,
	}
	if interval > 0 {
		c.Sampler = NewSampler(interval)
	}
	return c
}

// ObserveMemAccess records a completed data access: issuing instruction
// (pc, -1 if unknown), issue cycle, value cycle, and whether wrong execution
// issued it. Prefetch completions are not reported here.
func (c *Collector) ObserveMemAccess(tu, pc int, start, done uint64, wrong bool) {
	if c == nil {
		return
	}
	lat := done - start
	c.MemLatency.Observe(lat)
	if c.Timeline != nil && lat >= c.MissSpanMin {
		c.Timeline.MemSpan(tu, start, done, wrong, pc)
	}
}

// ObserveLoadUse records one load-to-consumer distance in instructions.
func (c *Collector) ObserveLoadUse(dist uint64) {
	if c == nil {
		return
	}
	c.LoadToUse.Observe(dist)
}

// ObserveWECPromotion records the residency, in cycles, of a side-buffer
// block promoted to the L1 by a correct-path hit.
func (c *Collector) ObserveWECPromotion(cycles uint64) {
	if c == nil {
		return
	}
	c.WECPromotion.Observe(cycles)
}

// ObserveThreadLifetime records a speculative thread's lifetime from its
// start to retirement (retired=true) or to its kill (retired=false).
func (c *Collector) ObserveThreadLifetime(cycles uint64, retired bool) {
	if c == nil {
		return
	}
	if retired {
		c.ThreadRetire.Observe(cycles)
	} else {
		c.ThreadKill.Observe(cycles)
	}
}

// MaybeSample drives the interval sampler; call once per simulated cycle.
func (c *Collector) MaybeSample(cycle uint64) {
	if c == nil || c.Sampler == nil {
		return
	}
	c.Sampler.MaybeSample(cycle)
}

// FastForward replays every sample boundary in (from, to] in bulk; the
// event-skip fast path calls it instead of per-cycle MaybeSample. Rows are
// bit-identical because no counter moves while the machine is idle.
func (c *Collector) FastForward(from, to uint64) {
	if c == nil || c.Sampler == nil {
		return
	}
	c.Sampler.FastForward(from, to)
}

// NextSample returns the cycle of the next interval-series row, or 0 when
// no sampler is attached. The parallel stepping batcher keeps multi-cycle
// windows short of this boundary.
func (c *Collector) NextSample() uint64 {
	if c == nil || c.Sampler == nil {
		return 0
	}
	return c.Sampler.NextBoundary()
}

// Finish seals the run at its final cycle: the sampler takes a last
// partial sample and the timeline closes dangling spans.
func (c *Collector) Finish(cycle uint64) {
	if c == nil {
		return
	}
	if c.Sampler != nil {
		c.Sampler.Finish(cycle)
	}
	if c.Timeline != nil {
		c.Timeline.Finish(cycle)
	}
}

// export is the metrics JSON schema.
type export struct {
	Cycles     uint64            `json:"cycles"`
	Counters   map[string]uint64 `json:"counters"`
	Series     *seriesExport     `json:"series,omitempty"`
	Histograms []histExport      `json:"histograms"`
}

// WriteJSON writes the complete metrics export: final counter snapshot,
// the interval series (when sampled), and all histograms. Deterministic:
// counters are key-sorted, histograms in fixed order.
func (c *Collector) WriteJSON(w io.Writer, cycles uint64) error {
	e := export{Cycles: cycles, Counters: map[string]uint64{}}
	if c.Registry != nil {
		for _, kv := range c.Registry.Snapshot() {
			e.Counters[kv.Key] = kv.Value
		}
	}
	if c.Sampler != nil {
		se := c.Sampler.export()
		e.Series = &se
	}
	for _, h := range []*Histogram{c.MemLatency, c.LoadToUse, c.WECPromotion, c.ThreadRetire, c.ThreadKill} {
		if h != nil {
			e.Histograms = append(e.Histograms, h.export())
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(e)
}

// SeriesCSV renders the interval series as CSV ("" when no sampler).
func (c *Collector) SeriesCSV() string {
	if c == nil || c.Sampler == nil {
		return ""
	}
	return c.Sampler.CSV()
}
