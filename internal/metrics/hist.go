package metrics

import "math/bits"

// Histogram counts observations in log2 buckets: bucket i holds values v
// with 2^(i-1) < v <= 2^i (bucket 0 holds 0 and 1). Cycle latencies span
// five orders of magnitude (L1 hit at 1 cycle to DRAM round trips in the
// hundreds, thread lifetimes in the hundreds of thousands), so power-of-two
// resolution captures the shape at constant memory.
type Histogram struct {
	Name string
	Unit string // "cycles" or "insts"

	buckets  [65]uint64
	count    uint64
	sum      uint64
	min, max uint64
}

// NewHistogram names an empty histogram.
func NewHistogram(name, unit string) *Histogram {
	return &Histogram{Name: name, Unit: unit}
}

// Observe records one value. O(1), allocation-free.
func (h *Histogram) Observe(v uint64) {
	b := 0
	if v > 1 {
		b = bits.Len64(v - 1)
	}
	h.buckets[b]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the arithmetic mean of all observations.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Bucket is one non-empty histogram bin covering (Lo, Hi].
type Bucket struct {
	Lo    uint64 `json:"lo"` // exclusive lower bound (0 for the first bin)
	Hi    uint64 `json:"hi"` // inclusive upper bound
	Count uint64 `json:"count"`
}

// Buckets returns the non-empty bins in ascending order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		b := Bucket{Hi: 1, Count: n}
		if i > 0 {
			b.Lo = uint64(1) << (i - 1)
			b.Hi = uint64(1) << i
		}
		out = append(out, b)
	}
	return out
}

// histExport is the JSON schema of one histogram.
type histExport struct {
	Name    string   `json:"name"`
	Unit    string   `json:"unit"`
	Count   uint64   `json:"count"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets"`
}

func (h *Histogram) export() histExport {
	return histExport{
		Name: h.Name, Unit: h.Unit,
		Count: h.count, Min: h.min, Max: h.max, Mean: h.Mean(),
		Buckets: h.Buckets(),
	}
}
