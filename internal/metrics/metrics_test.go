package metrics

import (
	"math"
	"testing"

	"repro/internal/trace"
)

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tu0", "commits")
	g := r.Gauge("tu0", "occupancy")
	ext := uint64(7)
	r.RegisterFunc("l2", "misses", func() uint64 { return ext })

	c.Add(41)
	c.Inc()
	g.Set(3)

	snap := r.Snapshot()
	want := map[string]uint64{
		"l2/misses": 7, "tu0/commits": 42, "tu0/occupancy": 3,
	}
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d entries, want %d", len(snap), len(want))
	}
	for i, kv := range snap {
		if want[kv.Key] != kv.Value {
			t.Errorf("snapshot[%d] = %s=%d, want %d", i, kv.Key, kv.Value, want[kv.Key])
		}
		if i > 0 && snap[i-1].Key >= kv.Key {
			t.Errorf("snapshot not key-sorted: %s before %s", snap[i-1].Key, kv.Key)
		}
	}
	if got := snap[0].Scope(); got != "l2" {
		t.Errorf("Scope() = %q, want l2", got)
	}
	// Live: a later snapshot sees new increments.
	ext = 9
	if got := r.Snapshot()[0].Value; got != 9 {
		t.Errorf("RegisterFunc not read live: %d", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("lat", "cycles")
	// Bucket i covers (2^(i-1), 2^i]; bucket 0 covers {0, 1}.
	for _, v := range []uint64{0, 1, 2, 3, 4, 5, 8, 9, 1000} {
		h.Observe(v)
	}
	if h.Count() != 9 || h.Min() != 0 || h.Max() != 1000 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	got := h.Buckets()
	want := []Bucket{
		{Lo: 0, Hi: 1, Count: 2},      // 0, 1
		{Lo: 1, Hi: 2, Count: 1},      // 2
		{Lo: 2, Hi: 4, Count: 2},      // 3, 4
		{Lo: 4, Hi: 8, Count: 2},      // 5, 8
		{Lo: 8, Hi: 16, Count: 1},     // 9
		{Lo: 512, Hi: 1024, Count: 1}, // 1000
	}
	if len(got) != len(want) {
		t.Fatalf("buckets = %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if mean := h.Mean(); math.Abs(mean-1032.0/9) > 1e-9 {
		t.Errorf("mean = %v", mean)
	}
}

func TestSamplerKinds(t *testing.T) {
	var level, events, work float64
	var num, den float64
	s := NewSampler(100)
	s.Add("level", Level, func() float64 { return level }, nil)
	s.Add("delta", Delta, func() float64 { return events }, nil)
	s.Add("rate", PerCycle, func() float64 { return work }, nil)
	s.Add("ratio", Ratio, func() float64 { return num }, func() float64 { return den })

	// Nothing samples before the first boundary.
	s.MaybeSample(99)
	if len(s.Rows()) != 0 {
		t.Fatal("sampled before the boundary")
	}

	level, events, work, num, den = 3, 10, 50, 4, 8
	s.MaybeSample(100)
	level, events, work, num, den = 5, 25, 150, 4, 10 // ratio: 0/2 -> 0
	s.MaybeSample(200)
	s.Finish(250) // partial tail: 50 cycles
	work = 175    // unchanged after Finish; no extra row
	s.Finish(250)

	rows := s.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	check := func(r []float64, want ...float64) {
		t.Helper()
		for i := range want {
			if math.Abs(r[i]-want[i]) > 1e-12 {
				t.Errorf("row %v, want %v", r, want)
				return
			}
		}
	}
	check(rows[0], 3, 10, 0.5, 0.5) // first interval: deltas from zero
	check(rows[1], 5, 15, 1, 0)     // ratio num unchanged: 0/2 = 0
	check(rows[2], 5, 0, 0, 0)      // tail row
	if cy := s.Cycles(); cy[2] != 250 {
		t.Errorf("cycles = %v", cy)
	}
}

func TestNilCollectorHooksAreSafe(t *testing.T) {
	var c *Collector
	c.ObserveMemAccess(0, -1, 1, 5, false)
	c.ObserveLoadUse(3)
	c.ObserveWECPromotion(10)
	c.ObserveThreadLifetime(100, true)
	c.MaybeSample(1000)
	c.Finish(2000)
	if c.SeriesCSV() != "" {
		t.Error("nil collector produced CSV")
	}
}

func TestTimelineCap(t *testing.T) {
	tl := NewTimeline()
	tl.MaxEvents = 3
	for i := uint64(0); i < 10; i++ {
		tl.MemSpan(0, i*10, i*10+5, false, -1)
	}
	if tl.Events() != 3 {
		t.Errorf("events = %d, want 3", tl.Events())
	}
	if tl.Dropped != 7 {
		t.Errorf("dropped = %d, want 7", tl.Dropped)
	}
}

func TestTimelineStageMachine(t *testing.T) {
	tl := NewTimeline()
	// TU1: start -> tsagd -> thend -> wb -> retire.
	for _, e := range []trace.Event{
		{Cycle: 10, TU: 1, Kind: trace.ThreadStart, Arg: 42},
		{Cycle: 20, TU: 1, Kind: trace.Tsagd},
		{Cycle: 80, TU: 1, Kind: trace.ThreadEnd},
		{Cycle: 90, TU: 1, Kind: trace.WBDrain},
		{Cycle: 95, TU: 1, Kind: trace.Retire},
	} {
		tl.Event(e)
	}
	names := map[string]bool{}
	for _, e := range tl.events {
		if e.Tid == pipeTID(1) && e.Ph == "X" {
			names[e.Name] = true
		}
	}
	for _, want := range []string{"tsag", "compute", "wb-wait", "write-back"} {
		if !names[want] {
			t.Errorf("missing %q span; have %v", want, names)
		}
	}
}
