package metrics

import (
	"encoding/json"
	"io"

	"repro/internal/trace"
)

// Timeline builds a Chrome trace-event JSON file (loadable in Perfetto or
// chrome://tracing) from the machine's thread-lifecycle events plus the
// cache-miss spans reported through the Collector. One simulated cycle is
// rendered as one microsecond of trace time.
//
// Track layout: each thread unit owns two tracks — "tuN" carries the
// thread-pipelining stage spans (sequential, tsag, compute, wb-wait,
// write-back, wrong-run) with fork/abort/kill instants, and "tuN mem"
// carries cache-miss spans (demand and wrong-execution).
//
// Timeline implements trace.Tracer: attach it to a machine's Trace fan-out
// (the sta package wires this automatically when a Collector carrying a
// Timeline is attached) and it consumes lifecycle events online; memory
// use is bounded by the emitted span count, capped at MaxEvents.
type Timeline struct {
	// MaxEvents bounds the emitted event count; once reached, further
	// spans are counted in Dropped instead of stored. 0 means the
	// DefaultMaxEvents cap.
	MaxEvents int
	// Dropped counts events discarded after MaxEvents was reached.
	Dropped uint64

	events []traceEvent
	tus    map[int]*tuTimeline
	maxTU  int
}

// DefaultMaxEvents bounds a Timeline unless MaxEvents overrides it.
// 1<<20 events is roughly a 100 MB JSON file — past any useful viewer load.
const DefaultMaxEvents = 1 << 20

// tuTimeline is the per-thread-unit span state machine.
type tuTimeline struct {
	active     bool
	stage      string
	stageStart uint64
	wrong      bool
	seqOpen    bool
	seqStart   uint64
}

// traceEvent is one Chrome trace-event object. Fields follow the Trace
// Event Format: ph "X" = complete span (ts+dur), "i" = instant, "M" =
// metadata.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"` // instant scope: "t" = thread
	Args map[string]any `json:"args,omitempty"`
}

// NewTimeline returns an empty timeline. TU 0 starts with an open
// "sequential" span at cycle 0: the machine begins sequential execution
// there without emitting a lifecycle event.
func NewTimeline() *Timeline {
	tl := &Timeline{tus: make(map[int]*tuTimeline)}
	tl.tu(0).seqOpen = true
	return tl
}

func (t *Timeline) tu(id int) *tuTimeline {
	s, ok := t.tus[id]
	if !ok {
		s = &tuTimeline{}
		t.tus[id] = s
		if id > t.maxTU {
			t.maxTU = id
		}
	}
	return s
}

// pipeTID and memTID map a thread unit to its two timeline tracks.
func pipeTID(tu int) int { return tu * 2 }
func memTID(tu int) int  { return tu*2 + 1 }

func (t *Timeline) add(e traceEvent) {
	max := t.MaxEvents
	if max <= 0 {
		max = DefaultMaxEvents
	}
	if len(t.events) >= max {
		t.Dropped++
		return
	}
	t.events = append(t.events, e)
}

func (t *Timeline) span(tid int, name, cat string, start, end uint64) {
	if end <= start {
		return
	}
	t.add(traceEvent{Name: name, Ph: "X", Ts: start, Dur: end - start, Pid: 0, Tid: tid, Cat: cat})
}

func (t *Timeline) instant(tu int, name string, cycle uint64, args map[string]any) {
	t.add(traceEvent{Name: name, Ph: "i", Ts: cycle, Pid: 0, Tid: pipeTID(tu), Cat: "lifecycle", S: "t", Args: args})
}

// closeStage emits the in-flight stage span (if any) ending at cycle.
func (s *tuTimeline) closeStage(t *Timeline, tu int, cycle uint64, name string) {
	if !s.active {
		return
	}
	if name == "" {
		name = s.stage
	}
	t.span(pipeTID(tu), name, "stage", s.stageStart, cycle)
	s.active = false
}

func (s *tuTimeline) nextStage(stage string, cycle uint64) {
	s.active = true
	s.stage = stage
	s.stageStart = cycle
}

// Event implements trace.Tracer, consuming one lifecycle event.
func (t *Timeline) Event(e trace.Event) {
	s := t.tu(e.TU)
	switch e.Kind {
	case trace.Begin:
		if s.seqOpen {
			t.span(pipeTID(e.TU), "sequential", "stage", s.seqStart, e.Cycle)
			s.seqOpen = false
		}
		t.instant(e.TU, "begin", e.Cycle, nil)
		// The head thread's body starts here without a ThreadStart event.
		s.closeStage(t, e.TU, e.Cycle, "")
		s.wrong = false
		s.nextStage("tsag", e.Cycle)
	case trace.Fork:
		t.instant(e.TU, "fork", e.Cycle, map[string]any{"target": e.Arg})
	case trace.ThreadStart:
		s.closeStage(t, e.TU, e.Cycle, "")
		s.wrong = false
		s.nextStage("tsag", e.Cycle)
	case trace.Tsagd:
		s.closeStage(t, e.TU, e.Cycle, "tsag")
		s.nextStage("compute", e.Cycle)
	case trace.ThreadEnd:
		s.closeStage(t, e.TU, e.Cycle, "compute")
		s.nextStage("wb-wait", e.Cycle)
	case trace.WBDrain:
		s.closeStage(t, e.TU, e.Cycle, "")
		s.nextStage("write-back", e.Cycle)
	case trace.Retire:
		s.closeStage(t, e.TU, e.Cycle, "write-back")
	case trace.Abort:
		t.instant(e.TU, "abort", e.Cycle, map[string]any{"resume_pc": e.Arg})
		s.closeStage(t, e.TU, e.Cycle, "")
		s.nextStage("wb-wait", e.Cycle)
	case trace.WrongMark:
		t.instant(e.TU, "wrong-mark", e.Cycle, nil)
		s.closeStage(t, e.TU, e.Cycle, "")
		s.wrong = true
		s.nextStage("wrong-run", e.Cycle)
	case trace.Kill:
		name := ""
		if s.wrong {
			name = "wrong-run"
		}
		s.closeStage(t, e.TU, e.Cycle, name)
		s.wrong = false
		t.instant(e.TU, "kill", e.Cycle, nil)
	case trace.SeqResume:
		s.closeStage(t, e.TU, e.Cycle, "write-back")
		t.instant(e.TU, "resume", e.Cycle, map[string]any{"pc": e.Arg})
		s.seqOpen = true
		s.seqStart = e.Cycle
	case trace.Halt:
		t.instant(e.TU, "halt", e.Cycle, nil)
		t.Finish(e.Cycle)
	}
}

// MemSpan records one cache-miss span on the thread unit's memory track,
// labelled with the issuing instruction's PC when known (pc >= 0).
func (t *Timeline) MemSpan(tu int, start, end uint64, wrong bool, pc int) {
	t.tu(tu) // ensure the TU's tracks are named even if no stage event hit it
	name := "miss"
	if wrong {
		name = "wrong-miss"
	}
	if end <= start {
		return
	}
	e := traceEvent{Name: name, Ph: "X", Ts: start, Dur: end - start, Pid: 0, Tid: memTID(tu), Cat: "mem"}
	if pc >= 0 {
		e.Args = map[string]any{"pc": pc}
	}
	t.add(e)
}

// AttribInstant records an attribution event (pollution, useful promotion)
// as an instant on the thread unit's memory track.
func (t *Timeline) AttribInstant(tu int, name string, cycle uint64, args map[string]any) {
	t.tu(tu)
	t.add(traceEvent{Name: name, Ph: "i", Ts: cycle, Pid: 0, Tid: memTID(tu), Cat: "attrib", S: "t", Args: args})
}

// Finish closes every open span at the given end cycle (wrong threads can
// still be running when the machine halts).
func (t *Timeline) Finish(cycle uint64) {
	for tu, s := range t.tus {
		if s.seqOpen {
			t.span(pipeTID(tu), "sequential", "stage", s.seqStart, cycle)
			s.seqOpen = false
		}
		name := ""
		if s.wrong {
			name = "wrong-run"
		}
		s.closeStage(t, tu, cycle, name)
	}
}

// traceFile is the Chrome trace-event JSON envelope.
type traceFile struct {
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	TraceEvents     []traceEvent   `json:"traceEvents"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

// WriteJSON writes the timeline as Chrome trace-event JSON. Track-name
// metadata is emitted for every thread unit seen, in TU order, followed by
// the recorded events in emission order.
func (t *Timeline) WriteJSON(w io.Writer) error {
	f := traceFile{DisplayTimeUnit: "ms"}
	f.TraceEvents = append(f.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "sta machine (1 cycle = 1us)"},
	})
	for tu := 0; tu <= t.maxTU; tu++ {
		if _, ok := t.tus[tu]; !ok {
			continue
		}
		f.TraceEvents = append(f.TraceEvents,
			traceEvent{Name: "thread_name", Ph: "M", Pid: 0, Tid: pipeTID(tu),
				Args: map[string]any{"name": tuLabel(tu, "")}},
			traceEvent{Name: "thread_name", Ph: "M", Pid: 0, Tid: memTID(tu),
				Args: map[string]any{"name": tuLabel(tu, " mem")}},
		)
	}
	f.TraceEvents = append(f.TraceEvents, t.events...)
	if t.Dropped > 0 {
		f.Metadata = map[string]any{"dropped_events": t.Dropped}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// Events returns the recorded event count (tests).
func (t *Timeline) Events() int { return len(t.events) }

func tuLabel(tu int, suffix string) string {
	const digits = "0123456789"
	if tu < 10 {
		return "tu" + digits[tu:tu+1] + suffix
	}
	return "tu" + digits[tu/10:tu/10+1] + digits[tu%10:tu%10+1] + suffix
}
