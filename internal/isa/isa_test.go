package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpStringsUnique(t *testing.T) {
	seen := make(map[string]Op)
	for op := Op(0); op < Op(NumOps); op++ {
		name := op.String()
		if name == "" {
			t.Fatalf("op %d has empty name", op)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("ops %v and %v share mnemonic %q", prev, op, name)
		}
		seen[name] = op
	}
}

func TestOpClassConsistency(t *testing.T) {
	for op := Op(0); op < Op(NumOps); op++ {
		if op.IsLoad() && op.IsStore() {
			t.Errorf("%v is both load and store", op)
		}
		if op.IsMem() && op.FU() != FUMem {
			t.Errorf("%v is memory op but FU class is %v", op, op.FU())
		}
		if op.IsBranch() && op.IsJump() {
			t.Errorf("%v is both branch and jump", op)
		}
		if !op.IsMem() && op.Latency() <= 0 {
			t.Errorf("%v has non-positive latency %d", op, op.Latency())
		}
	}
}

func TestHasDest(t *testing.T) {
	cases := []struct {
		in   Inst
		want bool
	}{
		{Inst{Op: ADD, Rd: 1}, true},
		{Inst{Op: ADD, Rd: 0}, false}, // r0 hardwired to zero
		{Inst{Op: FADD, Rd: 0}, true}, // f0 is a real register
		{Inst{Op: ST, Rd: 5}, false},
		{Inst{Op: BEQ, Rd: 5}, false},
		{Inst{Op: LD, Rd: 3}, true},
		{Inst{Op: JAL, Rd: 31}, true},
		{Inst{Op: FORK}, false},
		{Inst{Op: TST, Rd: 2}, false},
		{Inst{Op: TSA}, false},
	}
	for _, c := range cases {
		if got := c.in.HasDest(); got != c.want {
			t.Errorf("%v HasDest = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSrcRegs(t *testing.T) {
	// ST: rs1 is the integer address base, rs2 the integer data.
	r1, r2, u1, u2, fp1, fp2 := Inst{Op: ST, Rs1: 4, Rs2: 7}.SrcRegs()
	if !u1 || !u2 || r1 != 4 || r2 != 7 || fp1 || fp2 {
		t.Errorf("ST SrcRegs = %d %d %v %v %v %v", r1, r2, u1, u2, fp1, fp2)
	}
	// FST: address integer, data FP.
	_, _, _, _, fp1, fp2 = Inst{Op: FST, Rs1: 4, Rs2: 7}.SrcRegs()
	if fp1 || !fp2 {
		t.Errorf("FST source files = %v %v, want false true", fp1, fp2)
	}
	// LI has no sources.
	_, _, u1, u2, _, _ = Inst{Op: LI, Rd: 1, Imm: 9}.SrcRegs()
	if u1 || u2 {
		t.Error("LI should have no sources")
	}
	// FADD reads two FP sources.
	_, _, u1, u2, fp1, fp2 = Inst{Op: FADD, Rs1: 1, Rs2: 2}.SrcRegs()
	if !u1 || !u2 || !fp1 || !fp2 {
		t.Error("FADD should read two FP sources")
	}
}

func TestEvalIntegerOps(t *testing.T) {
	cases := []struct {
		in     Inst
		s1, s2 int64
		want   int64
	}{
		{Inst{Op: ADD}, 2, 3, 5},
		{Inst{Op: SUB}, 2, 3, -1},
		{Inst{Op: MUL}, -4, 3, -12},
		{Inst{Op: DIV}, 7, 2, 3},
		{Inst{Op: DIV}, 7, 0, 0}, // defined: no trap, result 0
		{Inst{Op: REM}, 7, 3, 1},
		{Inst{Op: REM}, 7, 0, 0},
		{Inst{Op: AND}, 0b1100, 0b1010, 0b1000},
		{Inst{Op: OR}, 0b1100, 0b1010, 0b1110},
		{Inst{Op: XOR}, 0b1100, 0b1010, 0b0110},
		{Inst{Op: SLL}, 1, 4, 16},
		{Inst{Op: SRL}, -1, 60, 15},
		{Inst{Op: SRA}, -16, 2, -4},
		{Inst{Op: SLT}, -1, 0, 1},
		{Inst{Op: SLTU}, -1, 0, 0},
		{Inst{Op: ADDI, Imm: 10}, 5, 0, 15},
		{Inst{Op: SLTI, Imm: 3}, 2, 0, 1},
		{Inst{Op: LI, Imm: -42}, 0, 0, -42},
		{Inst{Op: SLLI, Imm: 3}, 2, 0, 16},
	}
	for _, c := range cases {
		got, _ := Eval(c.in, c.s1, c.s2, 0, 0)
		if got != c.want {
			t.Errorf("%v Eval(%d,%d) = %d, want %d", c.in.Op, c.s1, c.s2, got, c.want)
		}
	}
}

func TestEvalFPOps(t *testing.T) {
	fcases := []struct {
		op     Op
		f1, f2 float64
		want   float64
	}{
		{FADD, 1.5, 2.25, 3.75},
		{FSUB, 1.5, 2.25, -0.75},
		{FMUL, 1.5, 2.0, 3.0},
		{FDIV, 3.0, 2.0, 1.5},
		{FNEG, 1.5, 0, -1.5},
		{FABS, -1.5, 0, 1.5},
		{FMIN, 1.5, 2.0, 1.5},
		{FMAX, 1.5, 2.0, 2.0},
	}
	for _, c := range fcases {
		_, got := Eval(Inst{Op: c.op}, 0, 0, c.f1, c.f2)
		if got != c.want {
			t.Errorf("%v(%g,%g) = %g, want %g", c.op, c.f1, c.f2, got, c.want)
		}
	}
	if got, _ := Eval(Inst{Op: FLT}, 0, 0, 1.0, 2.0); got != 1 {
		t.Error("FLT(1,2) should be 1")
	}
	if got, _ := Eval(Inst{Op: F2I}, 0, 0, -3.7, 0); got != -3 {
		t.Errorf("F2I(-3.7) = %d, want -3", got)
	}
	if _, got := Eval(Inst{Op: I2F}, 7, 0, 0, 0); got != 7.0 {
		t.Errorf("I2F(7) = %g", got)
	}
	if _, got := Eval(Inst{Op: FLI, Imm: FloatImm(2.5)}, 0, 0, 0, 0); got != 2.5 {
		t.Errorf("FLI roundtrip = %g", got)
	}
}

func TestBranchTaken(t *testing.T) {
	cases := []struct {
		op     Op
		s1, s2 int64
		want   bool
	}{
		{BEQ, 1, 1, true}, {BEQ, 1, 2, false},
		{BNE, 1, 2, true}, {BNE, 1, 1, false},
		{BLT, -1, 0, true}, {BLT, 0, 0, false},
		{BGE, 0, 0, true}, {BGE, -1, 0, false},
		{BLTU, 1, 2, true}, {BLTU, -1, 2, false},
		{BGEU, -1, 2, true}, {BGEU, 1, 2, false},
	}
	for _, c := range cases {
		if got := BranchTaken(Inst{Op: c.op}, c.s1, c.s2); got != c.want {
			t.Errorf("%v(%d,%d) = %v, want %v", c.op, c.s1, c.s2, got, c.want)
		}
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	in := Inst{Op: BLT, Rd: 0, Rs1: 3, Rs2: 17, Imm: -123456789}
	dec, err := Decode(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec != in {
		t.Fatalf("roundtrip: got %+v, want %+v", dec, in)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm int64) bool {
		in := Inst{
			Op:  Op(op % uint8(NumOps)),
			Rd:  rd % NumIntRegs,
			Rs1: rs1 % NumIntRegs,
			Rs2: rs2 % NumIntRegs,
			Imm: imm,
		}
		dec, err := Decode(in.Encode())
		return err == nil && dec == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	var b [InstBytes]byte
	b[0] = byte(NumOps) // invalid opcode
	if _, err := Decode(b); err == nil {
		t.Error("invalid opcode accepted")
	}
	b[0] = byte(ADD)
	b[1] = NumIntRegs // register out of range
	if _, err := Decode(b); err == nil {
		t.Error("register out of range accepted")
	}
	b[1] = 0
	b[5] = 1 // nonzero padding
	if _, err := Decode(b); err == nil {
		t.Error("nonzero padding accepted")
	}
}

func TestEncodeDecodeProgram(t *testing.T) {
	p := &Program{Insts: []Inst{
		{Op: LI, Rd: 1, Imm: 5},
		{Op: ADD, Rd: 2, Rs1: 1, Rs2: 1},
		{Op: HALT},
	}}
	raw := EncodeProgram(p)
	got, err := DecodeProgram(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(p.Insts) {
		t.Fatalf("decoded %d insts, want %d", len(got), len(p.Insts))
	}
	for i := range got {
		if got[i] != p.Insts[i] {
			t.Errorf("inst %d: got %+v want %+v", i, got[i], p.Insts[i])
		}
	}
	if _, err := DecodeProgram(raw[:len(raw)-1]); err == nil {
		t.Error("truncated program accepted")
	}
}

func TestProgramAt(t *testing.T) {
	p := &Program{Insts: []Inst{{Op: NOP}}}
	if p.At(0).Op != NOP {
		t.Error("At(0) wrong")
	}
	if p.At(-1).Op != HALT || p.At(1).Op != HALT {
		t.Error("out-of-range PC should read as HALT")
	}
}

func TestEffAddr(t *testing.T) {
	if got := EffAddr(Inst{Op: LD, Imm: 16}, 100); got != 116 {
		t.Errorf("EffAddr = %d, want 116", got)
	}
	// Negative displacement.
	if got := EffAddr(Inst{Op: LD, Imm: -4}, 100); got != 96 {
		t.Errorf("EffAddr = %d, want 96", got)
	}
}

func TestFloatImmRoundtrip(t *testing.T) {
	f := func(bits uint64) bool {
		v := math.Float64frombits(bits)
		_, got := Eval(Inst{Op: FLI, Imm: FloatImm(v)}, 0, 0, 0, 0)
		return math.Float64bits(got) == math.Float64bits(v) ||
			(math.IsNaN(got) && math.IsNaN(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDisassembleForms(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Inst{Op: ADDI, Rd: 1, Rs1: 2, Imm: 4}, "addi r1, r2, 4"},
		{Inst{Op: LD, Rd: 1, Rs1: 2, Imm: 8}, "ld r1, 8(r2)"},
		{Inst{Op: ST, Rs1: 2, Rs2: 3, Imm: 8}, "st r3, 8(r2)"},
		{Inst{Op: BEQ, Rs1: 1, Rs2: 2, Imm: 42}, "beq r1, r2, 42"},
		{Inst{Op: JMP, Imm: 7}, "jmp 7"},
		{Inst{Op: FORK, Imm: 3}, "fork 3"},
		{Inst{Op: ABORT}, "abort"},
		{Inst{Op: TSA, Rs1: 5, Imm: 0}, "tsa 0(r5)"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
