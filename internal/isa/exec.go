package isa

import "math"

// Eval computes the result of a non-memory, non-control operation given its
// source operand values. Integer sources arrive in s1/s2, FP sources in
// f1/f2 (per SrcRegs). It returns the integer result and the FP result; the
// caller keeps whichever file the destination lives in (Op.FPDest). Both the
// out-of-order core's execute stage and the functional reference interpreter
// use this single definition, so their semantics agree by construction.
func Eval(in Inst, s1, s2 int64, f1, f2 float64) (int64, float64) {
	switch in.Op {
	case ADD:
		return s1 + s2, 0
	case SUB:
		return s1 - s2, 0
	case MUL:
		return s1 * s2, 0
	case DIV:
		if s2 == 0 {
			return 0, 0
		}
		return s1 / s2, 0
	case REM:
		if s2 == 0 {
			return 0, 0
		}
		return s1 % s2, 0
	case AND:
		return s1 & s2, 0
	case OR:
		return s1 | s2, 0
	case XOR:
		return s1 ^ s2, 0
	case SLL:
		return s1 << (uint64(s2) & 63), 0
	case SRL:
		return int64(uint64(s1) >> (uint64(s2) & 63)), 0
	case SRA:
		return s1 >> (uint64(s2) & 63), 0
	case SLT:
		return b2i(s1 < s2), 0
	case SLTU:
		return b2i(uint64(s1) < uint64(s2)), 0
	case ADDI:
		return s1 + in.Imm, 0
	case ANDI:
		return s1 & in.Imm, 0
	case ORI:
		return s1 | in.Imm, 0
	case XORI:
		return s1 ^ in.Imm, 0
	case SLLI:
		return s1 << (uint64(in.Imm) & 63), 0
	case SRLI:
		return int64(uint64(s1) >> (uint64(in.Imm) & 63)), 0
	case SRAI:
		return s1 >> (uint64(in.Imm) & 63), 0
	case SLTI:
		return b2i(s1 < in.Imm), 0
	case LI:
		return in.Imm, 0
	case FADD:
		return 0, f1 + f2
	case FSUB:
		return 0, f1 - f2
	case FMUL:
		return 0, f1 * f2
	case FDIV:
		return 0, f1 / f2
	case FNEG:
		return 0, -f1
	case FABS:
		return 0, math.Abs(f1)
	case FMIN:
		return 0, math.Min(f1, f2)
	case FMAX:
		return 0, math.Max(f1, f2)
	case FLT:
		return b2i(f1 < f2), 0
	case FLE:
		return b2i(f1 <= f2), 0
	case I2F:
		return 0, float64(s1)
	case F2I:
		return int64(f1), 0
	case FLI:
		return 0, math.Float64frombits(uint64(in.Imm))
	case JAL:
		// Result is the link value; the caller supplies pc+1 via s1.
		return s1, 0
	case TSA:
		// Result is the announced address.
		return s1 + in.Imm, 0
	}
	return 0, 0
}

// BranchTaken evaluates a conditional branch's direction.
func BranchTaken(in Inst, s1, s2 int64) bool {
	switch in.Op {
	case BEQ:
		return s1 == s2
	case BNE:
		return s1 != s2
	case BLT:
		return s1 < s2
	case BGE:
		return s1 >= s2
	case BLTU:
		return uint64(s1) < uint64(s2)
	case BGEU:
		return uint64(s1) >= uint64(s2)
	}
	return false
}

// EffAddr computes the effective byte address of a memory operation or TSA.
func EffAddr(in Inst, s1 int64) uint64 { return uint64(s1 + in.Imm) }

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// FloatImm packs a float64 into the Imm field for FLI.
func FloatImm(f float64) int64 { return int64(math.Float64bits(f)) }
