// Package isa defines the instruction set simulated by the superthreaded
// processor model: a small 64-bit RISC ISA extended with the superthreaded
// architecture (STA) thread-pipelining primitives (FORK, ABORT, BEGIN,
// target stores, and stage markers).
//
// Instructions are kept in decoded form (Inst) for simulation speed; a
// fixed-width binary encoding is provided for tooling and tests (see
// encode.go). Branch and jump targets are absolute instruction indices,
// resolved by the assembler. Data addresses are byte addresses into the
// simulated data memory.
package isa

import "fmt"

// Op enumerates every operation in the ISA.
type Op uint8

// Integer, floating-point, control, memory, and STA operations.
const (
	NOP Op = iota
	HALT

	// Integer register-register.
	ADD
	SUB
	MUL
	DIV
	REM
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	SLT
	SLTU

	// Integer register-immediate.
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI
	LI // rd = imm (full 64-bit immediate)

	// Floating point (operands in the FP register file).
	FADD
	FSUB
	FMUL
	FDIV
	FNEG
	FABS
	FMIN
	FMAX
	FLT // int rd = (frs1 < frs2)
	FLE // int rd = (frs1 <= frs2)
	I2F // frd = float64(rs1)
	F2I // rd = int64(frs1)
	FLI // frd = float64 immediate (bits in Imm)

	// Memory. Effective address = rs1 + imm. LD/ST move 8 bytes between
	// memory and the integer file; FLD/FST move 8 bytes to/from the FP file.
	LD
	ST
	FLD
	FST

	// Control. Targets are absolute instruction indices in Imm.
	BEQ // if rs1 == rs2 goto imm
	BNE
	BLT
	BGE
	BLTU
	BGEU
	JMP // goto imm
	JAL // rd = pc+1; goto imm
	JR  // goto rs1

	// STA thread-pipelining extensions.
	BEGIN // begin a parallel region; Imm = int-register forward mask
	FORK  // fork the next thread unit at Imm; ends the continuation stage
	TSAGD // TSAG stage complete; flag forwarded downstream
	TSA   // announce a target-store address (rs1+imm) downstream
	TST   // target store: mem[rs1+imm] = rs2, forwarded downstream
	THEND // end of iteration body; run the write-back stage, then idle
	ABORT // kill/mark-wrong all successor threads; end the parallel region

	numOps
)

// NumOps reports the number of defined opcodes.
const NumOps = int(numOps)

// NumIntRegs and NumFPRegs size the architectural register files. Integer
// register 0 is hardwired to zero.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
)

// Inst is one decoded instruction.
type Inst struct {
	Op           Op
	Rd, Rs1, Rs2 uint8
	Imm          int64
}

// FUClass identifies the functional-unit pool an operation executes on.
type FUClass uint8

// Functional unit classes, mirroring sim-outorder's resource pools.
const (
	FUNone   FUClass = iota // markers, HALT
	FUIntALU                // 1-cycle integer ops, branches
	FUIntMul                // integer multiply/divide
	FUFPAdd                 // FP add/compare/convert
	FUFPMul                 // FP multiply/divide
	FUMem                   // loads and stores (cache port)
)

// Latency in execute cycles for each non-memory op class.
const (
	LatIntALU = 1
	LatIntMul = 3
	LatIntDiv = 20
	LatFPAdd  = 2
	LatFPMul  = 4
	LatFPDiv  = 12
)

type opInfo struct {
	name    string
	fu      FUClass
	lat     int
	isBr    bool // conditional branch
	isJump  bool // unconditional control transfer
	isLoad  bool
	isStore bool
	fpRd    bool // destination is in the FP file
	fpRs    bool // sources are in the FP file
	sta     bool // STA thread-pipelining primitive
}

var opTable = [numOps]opInfo{
	NOP:   {name: "nop", fu: FUNone, lat: 1},
	HALT:  {name: "halt", fu: FUNone, lat: 1},
	ADD:   {name: "add", fu: FUIntALU, lat: LatIntALU},
	SUB:   {name: "sub", fu: FUIntALU, lat: LatIntALU},
	MUL:   {name: "mul", fu: FUIntMul, lat: LatIntMul},
	DIV:   {name: "div", fu: FUIntMul, lat: LatIntDiv},
	REM:   {name: "rem", fu: FUIntMul, lat: LatIntDiv},
	AND:   {name: "and", fu: FUIntALU, lat: LatIntALU},
	OR:    {name: "or", fu: FUIntALU, lat: LatIntALU},
	XOR:   {name: "xor", fu: FUIntALU, lat: LatIntALU},
	SLL:   {name: "sll", fu: FUIntALU, lat: LatIntALU},
	SRL:   {name: "srl", fu: FUIntALU, lat: LatIntALU},
	SRA:   {name: "sra", fu: FUIntALU, lat: LatIntALU},
	SLT:   {name: "slt", fu: FUIntALU, lat: LatIntALU},
	SLTU:  {name: "sltu", fu: FUIntALU, lat: LatIntALU},
	ADDI:  {name: "addi", fu: FUIntALU, lat: LatIntALU},
	ANDI:  {name: "andi", fu: FUIntALU, lat: LatIntALU},
	ORI:   {name: "ori", fu: FUIntALU, lat: LatIntALU},
	XORI:  {name: "xori", fu: FUIntALU, lat: LatIntALU},
	SLLI:  {name: "slli", fu: FUIntALU, lat: LatIntALU},
	SRLI:  {name: "srli", fu: FUIntALU, lat: LatIntALU},
	SRAI:  {name: "srai", fu: FUIntALU, lat: LatIntALU},
	SLTI:  {name: "slti", fu: FUIntALU, lat: LatIntALU},
	LI:    {name: "li", fu: FUIntALU, lat: LatIntALU},
	FADD:  {name: "fadd", fu: FUFPAdd, lat: LatFPAdd, fpRd: true, fpRs: true},
	FSUB:  {name: "fsub", fu: FUFPAdd, lat: LatFPAdd, fpRd: true, fpRs: true},
	FMUL:  {name: "fmul", fu: FUFPMul, lat: LatFPMul, fpRd: true, fpRs: true},
	FDIV:  {name: "fdiv", fu: FUFPMul, lat: LatFPDiv, fpRd: true, fpRs: true},
	FNEG:  {name: "fneg", fu: FUFPAdd, lat: LatFPAdd, fpRd: true, fpRs: true},
	FABS:  {name: "fabs", fu: FUFPAdd, lat: LatFPAdd, fpRd: true, fpRs: true},
	FMIN:  {name: "fmin", fu: FUFPAdd, lat: LatFPAdd, fpRd: true, fpRs: true},
	FMAX:  {name: "fmax", fu: FUFPAdd, lat: LatFPAdd, fpRd: true, fpRs: true},
	FLT:   {name: "flt", fu: FUFPAdd, lat: LatFPAdd, fpRs: true},
	FLE:   {name: "fle", fu: FUFPAdd, lat: LatFPAdd, fpRs: true},
	I2F:   {name: "i2f", fu: FUFPAdd, lat: LatFPAdd, fpRd: true},
	F2I:   {name: "f2i", fu: FUFPAdd, lat: LatFPAdd, fpRs: true},
	FLI:   {name: "fli", fu: FUFPAdd, lat: LatFPAdd, fpRd: true},
	LD:    {name: "ld", fu: FUMem, isLoad: true},
	ST:    {name: "st", fu: FUMem, isStore: true},
	FLD:   {name: "fld", fu: FUMem, isLoad: true, fpRd: true},
	FST:   {name: "fst", fu: FUMem, isStore: true, fpRs: true},
	BEQ:   {name: "beq", fu: FUIntALU, lat: LatIntALU, isBr: true},
	BNE:   {name: "bne", fu: FUIntALU, lat: LatIntALU, isBr: true},
	BLT:   {name: "blt", fu: FUIntALU, lat: LatIntALU, isBr: true},
	BGE:   {name: "bge", fu: FUIntALU, lat: LatIntALU, isBr: true},
	BLTU:  {name: "bltu", fu: FUIntALU, lat: LatIntALU, isBr: true},
	BGEU:  {name: "bgeu", fu: FUIntALU, lat: LatIntALU, isBr: true},
	JMP:   {name: "jmp", fu: FUIntALU, lat: LatIntALU, isJump: true},
	JAL:   {name: "jal", fu: FUIntALU, lat: LatIntALU, isJump: true},
	JR:    {name: "jr", fu: FUIntALU, lat: LatIntALU, isJump: true},
	BEGIN: {name: "begin", fu: FUNone, lat: 1, sta: true},
	FORK:  {name: "fork", fu: FUNone, lat: 1, sta: true},
	TSAGD: {name: "tsagd", fu: FUNone, lat: 1, sta: true},
	TSA:   {name: "tsa", fu: FUIntALU, lat: LatIntALU, sta: true},
	TST:   {name: "tst", fu: FUMem, isStore: true, sta: true},
	THEND: {name: "thend", fu: FUNone, lat: 1, sta: true},
	ABORT: {name: "abort", fu: FUNone, lat: 1, sta: true},
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op < numOps }

// String returns the mnemonic for op.
func (op Op) String() string {
	if !op.Valid() {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opTable[op].name
}

// FU returns the functional-unit class that executes op.
func (op Op) FU() FUClass { return opTable[op].fu }

// Latency returns the execute latency of op in cycles. Memory operations
// return 0: their latency comes from the cache hierarchy.
func (op Op) Latency() int { return opTable[op].lat }

// IsBranch reports whether op is a conditional branch.
func (op Op) IsBranch() bool { return opTable[op].isBr }

// IsJump reports whether op is an unconditional control transfer.
func (op Op) IsJump() bool { return opTable[op].isJump }

// IsControl reports whether op redirects the PC (branch or jump).
func (op Op) IsControl() bool { return opTable[op].isBr || opTable[op].isJump }

// IsLoad reports whether op reads data memory.
func (op Op) IsLoad() bool { return opTable[op].isLoad }

// IsStore reports whether op writes data memory (including target stores).
func (op Op) IsStore() bool { return opTable[op].isStore }

// IsMem reports whether op accesses data memory.
func (op Op) IsMem() bool { return opTable[op].isLoad || opTable[op].isStore }

// IsSTA reports whether op is a superthreaded-architecture primitive.
func (op Op) IsSTA() bool { return opTable[op].sta }

// FPDest reports whether op writes the FP register file.
func (op Op) FPDest() bool { return opTable[op].fpRd }

// FPSrc reports whether op reads the FP register file for its sources.
func (op Op) FPSrc() bool { return opTable[op].fpRs }

// HasDest reports whether the instruction writes a destination register.
func (in Inst) HasDest() bool {
	switch in.Op {
	case NOP, HALT, ST, FST, TST, BEQ, BNE, BLT, BGE, BLTU, BGEU, JMP, JR,
		BEGIN, FORK, TSAGD, TSA, THEND, ABORT:
		return false
	}
	// Integer destination register 0 is hardwired to zero: treat as no dest.
	if !in.Op.FPDest() && in.Rd == 0 {
		return false
	}
	return true
}

// SrcRegs returns the source register indices read by the instruction and
// whether each comes from the FP file. Unused slots return ok=false.
func (in Inst) SrcRegs() (r1, r2 uint8, use1, use2, fp1, fp2 bool) {
	info := opTable[in.Op]
	switch in.Op {
	case NOP, HALT, LI, FLI, JMP, JAL, BEGIN, TSAGD, THEND, ABORT, FORK:
		return 0, 0, false, false, false, false
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI:
		return in.Rs1, 0, true, false, false, false
	case I2F:
		return in.Rs1, 0, true, false, false, false
	case F2I, FNEG, FABS:
		return in.Rs1, 0, true, false, true, false
	case LD, FLD:
		return in.Rs1, 0, true, false, false, false
	case ST:
		return in.Rs1, in.Rs2, true, true, false, false
	case FST:
		// Address register is integer; data register is FP.
		return in.Rs1, in.Rs2, true, true, false, true
	case TST:
		return in.Rs1, in.Rs2, true, true, false, false
	case TSA:
		return in.Rs1, 0, true, false, false, false
	case JR:
		return in.Rs1, 0, true, false, false, false
	case FLT, FLE:
		return in.Rs1, in.Rs2, true, true, true, true
	}
	// Default three-operand form.
	return in.Rs1, in.Rs2, true, true, info.fpRs, info.fpRs
}

// String disassembles the instruction.
func (in Inst) String() string {
	op := in.Op
	switch {
	case op == NOP || op == HALT || op == TSAGD || op == THEND || op == ABORT:
		return op.String()
	case op == LI || op == FLI:
		return fmt.Sprintf("%s r%d, %d", op, in.Rd, in.Imm)
	case op == JMP:
		return fmt.Sprintf("%s %d", op, in.Imm)
	case op == JAL:
		return fmt.Sprintf("%s r%d, %d", op, in.Rd, in.Imm)
	case op == JR:
		return fmt.Sprintf("%s r%d", op, in.Rs1)
	case op == BEGIN:
		return fmt.Sprintf("%s mask=%#x", op, uint64(in.Imm))
	case op == FORK:
		return fmt.Sprintf("%s %d", op, in.Imm)
	case op.IsBranch():
		return fmt.Sprintf("%s r%d, r%d, %d", op, in.Rs1, in.Rs2, in.Imm)
	case op.IsLoad():
		return fmt.Sprintf("%s r%d, %d(r%d)", op, in.Rd, in.Imm, in.Rs1)
	case op.IsStore():
		return fmt.Sprintf("%s r%d, %d(r%d)", op, in.Rs2, in.Imm, in.Rs1)
	case op == TSA:
		return fmt.Sprintf("%s %d(r%d)", op, in.Imm, in.Rs1)
	case op == ADDI || op == ANDI || op == ORI || op == XORI ||
		op == SLLI || op == SRLI || op == SRAI || op == SLTI:
		return fmt.Sprintf("%s r%d, r%d, %d", op, in.Rd, in.Rs1, in.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", op, in.Rd, in.Rs1, in.Rs2)
	}
}

// Program is an assembled unit ready for simulation: a flat instruction
// array addressed by instruction index, an initial data image, and symbols.
type Program struct {
	Insts   []Inst
	Entry   int
	Symbols map[string]int64 // label -> instruction index or data address
	// Data holds the initial contents of data memory as (addr, bytes) runs.
	Data []DataSeg
}

// DataSeg is one initialized run of data memory.
type DataSeg struct {
	Addr  uint64
	Bytes []byte
}

// At returns the instruction at pc, or HALT if pc is out of range; the
// simulator treats running off the end of the program as termination.
func (p *Program) At(pc int) Inst {
	if pc < 0 || pc >= len(p.Insts) {
		return Inst{Op: HALT}
	}
	return p.Insts[pc]
}
