package isa

import (
	"encoding/binary"
	"fmt"
)

// InstBytes is the size of one encoded instruction: opcode, three register
// fields, four bytes of padding, and a 64-bit immediate.
const InstBytes = 16

// Encode serializes the instruction into a fixed 16-byte little-endian form.
func (in Inst) Encode() [InstBytes]byte {
	var b [InstBytes]byte
	b[0] = byte(in.Op)
	b[1] = in.Rd
	b[2] = in.Rs1
	b[3] = in.Rs2
	binary.LittleEndian.PutUint64(b[8:], uint64(in.Imm))
	return b
}

// Decode parses a 16-byte encoded instruction. It fails on undefined
// opcodes, register indices out of range, or nonzero padding.
func Decode(b [InstBytes]byte) (Inst, error) {
	op := Op(b[0])
	if !op.Valid() {
		return Inst{}, fmt.Errorf("isa: invalid opcode %d", b[0])
	}
	if b[1] >= NumIntRegs || b[2] >= NumIntRegs || b[3] >= NumIntRegs {
		return Inst{}, fmt.Errorf("isa: register index out of range in %v", b[:4])
	}
	for i := 4; i < 8; i++ {
		if b[i] != 0 {
			return Inst{}, fmt.Errorf("isa: nonzero padding byte %d", i)
		}
	}
	return Inst{
		Op:  op,
		Rd:  b[1],
		Rs1: b[2],
		Rs2: b[3],
		Imm: int64(binary.LittleEndian.Uint64(b[8:])),
	}, nil
}

// EncodeProgram serializes all instructions of p into a byte stream.
func EncodeProgram(p *Program) []byte {
	out := make([]byte, 0, len(p.Insts)*InstBytes)
	for _, in := range p.Insts {
		eb := in.Encode()
		out = append(out, eb[:]...)
	}
	return out
}

// DecodeProgram parses a byte stream produced by EncodeProgram.
func DecodeProgram(raw []byte) ([]Inst, error) {
	if len(raw)%InstBytes != 0 {
		return nil, fmt.Errorf("isa: program length %d not a multiple of %d", len(raw), InstBytes)
	}
	insts := make([]Inst, 0, len(raw)/InstBytes)
	var buf [InstBytes]byte
	for off := 0; off < len(raw); off += InstBytes {
		copy(buf[:], raw[off:off+InstBytes])
		in, err := Decode(buf)
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", off/InstBytes, err)
		}
		insts = append(insts, in)
	}
	return insts, nil
}
