package wgen_test

import (
	"reflect"
	"testing"

	"repro/internal/attrib"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sta"
	"repro/internal/stats"
	"repro/internal/wgen"
)

// simRunner is the RunFunc the tests inject: one WEC-enabled 8-TU machine
// with attribution attached — the configuration under which the coverage
// signal spans all of its dimensions.
func simRunner(t testing.TB) wgen.RunFunc {
	return func(g wgen.Genome, p *isa.Program) (*stats.Sim, *attrib.Report, error) {
		cfg := sta.DefaultConfig()
		cfg.NumTUs = 8
		cfg.MaxCycles = 20_000_000
		cfg.WrongThreadExec = true
		cfg.Core.WrongPathExec = true
		cfg.Mem.Side = mem.SideWEC
		m, err := sta.New(cfg, p)
		if err != nil {
			return nil, nil, err
		}
		ac := attrib.NewCollector()
		m.Attrib = ac
		r, err := m.Run()
		if err != nil {
			return nil, nil, err
		}
		return &r.Stats, ac.Report(r.Stats.Cycles), nil
	}
}

func TestSearchDeterministic(t *testing.T) {
	run := func() ([]string, []string) {
		s := wgen.NewSearch(31337, simRunner(t))
		var hashes []string
		for i := 0; i < 25; i++ {
			res, err := s.Step()
			if err != nil {
				t.Fatal(err)
			}
			hashes = append(hashes, res.Genome.Hash())
		}
		return hashes, s.Coverage().Buckets()
	}
	h1, c1 := run()
	h2, c2 := run()
	if !reflect.DeepEqual(h1, h2) {
		t.Fatal("same seed produced different genome trajectories")
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("same seed produced different coverage")
	}
}

func TestSearchCoverageMonotone(t *testing.T) {
	s := wgen.NewSearch(99, simRunner(t))
	prev := 0
	for i := 0; i < 30; i++ {
		res, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if res.Coverage < prev {
			t.Fatalf("step %d: coverage shrank %d -> %d", i, prev, res.Coverage)
		}
		if res.New > 0 != res.Kept {
			t.Fatalf("step %d: Kept=%v but New=%d", i, res.Kept, res.New)
		}
		prev = res.Coverage
	}
	if s.Steps() != 30 {
		t.Fatalf("Steps = %d, want 30", s.Steps())
	}
	if len(s.Corpus()) == 0 {
		t.Fatal("thirty steps kept no coverage-adding genome")
	}
}

// TestGuidedBeatsRandom is the acceptance assertion for the coverage-guided
// loop: over a size-matched budget (same number of generated programs, same
// runner), the guided search must cover strictly more behavior buckets than
// uniform-random generation. Guidance earns its margin twice over: the
// stratified exploration lattice sweeps every knob's full range on coprime
// strides (marginal bins by construction, where uniform sampling needs
// coupon-collector luck), and crossover targeting composes combination
// buckets (miss rate × branch accuracy, occupancy × WEC activity) from
// parents that cover the row and column separately. Both trajectories are
// fully deterministic, so this is a fixed comparison, not a statistical one.
func TestGuidedBeatsRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("the guided-vs-random comparison needs the full budget to reach the crossover point; run without -short")
	}
	// 300 programs is a conservative proxy for the 60-second soak budget
	// (a 60s run executes thousands); uniform random is already into its
	// saturation tail here while the lattice and the crossover targeting
	// are still earning.
	budget := 300
	run := simRunner(t)

	guided := wgen.NewSearch(2024, run)
	for i := 0; i < budget; i++ {
		if _, err := guided.Step(); err != nil {
			t.Fatal(err)
		}
	}

	random := wgen.NewCoverage()
	for i := 0; i < budget; i++ {
		g := wgen.Random(2024*1e6 + uint64(i))
		p, err := g.Program()
		if err != nil {
			t.Fatal(err)
		}
		sim, rep, err := run(g, p)
		if err != nil {
			t.Fatal(err)
		}
		random.Add(wgen.Buckets(sim, rep))
	}

	g, r := guided.Coverage().Count(), random.Count()
	t.Logf("guided %d buckets vs random %d buckets over %d programs each", g, r, budget)
	if g <= r {
		t.Errorf("guided search covered %d buckets, random covered %d: guidance is not earning its keep", g, r)
	}
}
