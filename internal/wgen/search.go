package wgen

import (
	"repro/internal/attrib"
	"repro/internal/isa"
	"repro/internal/stats"
)

// RunFunc executes one generated program on the simulator and returns its
// final counters and (optionally) the fill-attribution report. wgen does
// not import the sta package — the CLIs, the harness, and the sta tests
// each inject their own runner — so the search works identically whether
// the program runs on a bare machine, under the harness, or in a test.
type RunFunc func(g Genome, p *isa.Program) (*stats.Sim, *attrib.Report, error)

// Search is the coverage-guided generation loop: an AFL-shaped corpus
// walk over the genome space using the simulator-behavior signature
// (Buckets) as the coverage map. Each step either mutates a corpus parent
// toward a dimension whose buckets are not yet saturated, or (with
// probability 1/epsilonInv, and always while the corpus is empty) draws a
// fresh uniform-random genome. Genomes that reach any new bucket join the
// corpus. Coverage is a union, so it is monotonically non-decreasing in
// the number of steps — the soak-smoke script asserts exactly that.
type Search struct {
	Run RunFunc

	rng    *rng
	cov    *Coverage
	corpus []corpusEntry
	steps  int
	tried  map[string]bool // genome hashes already run — never rerun one

	// Stratified-exploration state: draw index and per-knob phase offsets
	// (see stratified).
	strat    int
	stratOff [15]int

	// Bandit credit per dimension: some missing bins are unreachable on
	// the injected runner (a <70% branch-accuracy bin, prefetch-origin
	// fills with prefetching off), and a naive targeter burns its whole
	// budget chasing them. Dimensions whose targeting keeps failing decay
	// toward (but never reach) zero selection weight.
	attempts   map[string]int
	wins       map[string]int
	lastTarget string

	// The explore/exploit split is a bandit too. Early in a run uniform
	// sampling discovers buckets far faster than mutating a two-entry
	// corpus, so hard-coding any fixed epsilon either wastes the early
	// phase on incest or the late phase on saturated sampling. Each arm's
	// weight is its smoothed per-step bucket yield; the search anneals
	// from exploration to targeted climbing exactly when sampling stops
	// paying.
	explore arm
	exploit arm

	// Undecayed lifetime totals, for reporting only.
	exploreSteps, exploreGained int
	exploitSteps, exploitGained int
}

// arm tracks one bandit arm's spend and yield in 1/16 fixed-point units,
// with exponential decay so the weight reflects RECENT yield: exploration's
// huge early haul must not let it hog the budget after sampling has dried
// up. Both arms decay every step; credits land in units of 16.
type arm struct {
	attempts int
	gained   int
}

func (a *arm) decay() {
	a.attempts -= a.attempts / 16
	a.gained -= a.gained / 16
}

func (a *arm) credit(fresh int) {
	a.attempts += 16
	a.gained += 16 * fresh
}

// weight is the smoothed recent yield, floored so an arm is never starved
// outright. The floor is per-arm: when both arms have gone dry the split
// reverts to the floors' ratio, so exploration — whose dry spells end on
// their own — keeps the larger share while exploitation stays a steady
// targeted minority.
func (a arm) weight(floor int) int {
	w := 1000 * (a.gained + 16) / (a.attempts + 32)
	if w < floor {
		w = floor
	}
	return w
}

// corpusEntry remembers where a coverage-adding genome landed in every
// dimension, so later steps can hill-climb from the parent nearest a
// missing bin.
type corpusEntry struct {
	g    Genome
	bins map[string]int
}

// NewSearch builds a coverage-guided search over run. The seed fixes the
// entire trajectory: same seed + same runner ⇒ same genome sequence, same
// coverage curve.
func NewSearch(seed uint64, run RunFunc) *Search {
	s := &Search{
		Run:      run,
		rng:      newRNG(seed),
		cov:      NewCoverage(),
		tried:    make(map[string]bool),
		attempts: make(map[string]int),
		wins:     make(map[string]int),
	}
	for i := range s.stratOff {
		s.stratOff[i] = int(s.rng.next() >> 40)
	}
	return s
}

// stratKnobs fixes the lattice geometry: for knob i, draw n yields
// lo + (n*stride + offset) mod span. Each stride is coprime to its span, so
// every knob sweeps its ENTIRE value range once per span draws — uniform
// sampling needs coupon-collector luck to do the same, which is exactly
// where it leaves marginal bins uncovered at small budgets. Distinct
// strides and random per-search phase offsets decorrelate the joints.
var stratKnobs = [15]struct{ lo, span, stride int }{
	{minWindows, maxWindows - minWindows + 1, 5},
	{minWindow, maxWindow - minWindow + 1, 7},
	{0, maxPct + 1, 37}, // par
	{minWSLog, maxWSLog - minWSLog + 1, 3},
	{0, maxChase + 1, 11},
	{0, maxStreams + 1, 5},
	{0, maxPct + 1, 59}, // stride%
	{0, maxPct + 1, 73}, // indir%
	{0, maxProbes + 1, 4},
	{0, maxReduce + 1, 6},
	{0, maxScans + 1, 7},
	{0, maxPct + 1, 89}, // branch%
	{0, maxPct + 1, 43}, // store%
	{0, 2, 1},           // fp
	{0, 2, 1},           // chain
}

// stratified returns the next exploration genome from the lattice.
func (s *Search) stratified() Genome {
	n := s.strat
	s.strat++
	v := func(i int) uint8 {
		k := stratKnobs[i]
		return uint8(k.lo + (n*k.stride+s.stratOff[i])%k.span)
	}
	g := Genome{
		Seed: mix64(s.rng.next()), Windows: v(0), Window: v(1), ParPct: v(2),
		WSLog: v(3), Chase: v(4), Streams: v(5), StridePct: v(6), IndirPct: v(7),
		Probes: v(8), Reduce: v(9), Scans: v(10), BranchPct: v(11), StorePct: v(12),
		// Binary knobs would be phase-locked to each other on a stride-1
		// lattice; a scrambled parity decorrelates them.
		FP:    uint8(mix64(uint64(n)+uint64(s.stratOff[13])) & 1),
		Chain: uint8(mix64(uint64(n)*3+uint64(s.stratOff[14])) & 1),
	}
	return g.normalize()
}

// StepResult reports one search step.
type StepResult struct {
	Genome   Genome
	Sig      []string // the run's full behavior signature
	New      int      // buckets newly covered by this step
	Coverage int      // total buckets covered after this step
	Kept     bool     // genome joined the corpus
}

// Step generates, runs, and scores one genome.
func (s *Search) Step() (StepResult, error) {
	g := s.nextGenome()
	s.steps++
	p, err := g.Program()
	if err != nil {
		return StepResult{Genome: g}, err
	}
	sim, rep, err := s.Run(g, p)
	if err != nil {
		return StepResult{Genome: g}, err
	}
	sig := Buckets(sim, rep)
	fresh := s.cov.Add(sig)
	s.explore.decay()
	s.exploit.decay()
	if s.lastTarget != "" {
		s.attempts[s.lastTarget]++
		if fresh > 0 {
			s.wins[s.lastTarget]++
		}
		s.lastTarget = ""
		s.exploit.credit(fresh)
		s.exploitSteps++
		s.exploitGained += fresh
	} else {
		s.explore.credit(fresh)
		s.exploreSteps++
		s.exploreGained += fresh
	}
	res := StepResult{Genome: g, Sig: sig, New: fresh, Coverage: s.cov.Count(), Kept: fresh > 0}
	if res.Kept {
		bins := make(map[string]int, len(sig))
		for _, b := range sig {
			if dim, bin, ok := splitBucket(b); ok {
				bins[dim] = bin
			}
		}
		s.corpus = append(s.corpus, corpusEntry{g: g, bins: bins})
	}
	return res, nil
}

// mix64 is the murmur3 finalizer. Raw rng outputs are successive states of
// one xorshift64 orbit, and Random seeds a NEW xorshift64 with its argument
// — so Random(rng.next()) twice in a row would walk overlapping slices of
// the same orbit and emit near-identical knob streams. Scrambling the seed
// through a multiply-xor mix puts every exploration draw on an unrelated
// orbit.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// nextGenome picks the next candidate: uniform exploration or a hill-climb
// toward a specific missing bin, weighted by each arm's measured yield.
// Duplicate genomes are rejected and redrawn — a rerun can never add
// coverage, so spending a simulator run on one is pure waste (climbs from
// the same parent frequently regenerate the same child).
func (s *Search) nextGenome() Genome {
	var g Genome
	for try := 0; ; try++ {
		we, wx := s.explore.weight(180), s.exploit.weight(60)
		if len(s.corpus) == 0 || try >= 8 || s.rng.intn(we+wx) < we {
			g = s.stratified()
		} else {
			g = s.climb()
		}
		if h := g.Hash(); !s.tried[h] {
			s.tried[h] = true
			return g
		}
		s.lastTarget = "" // the rejected climb never ran; don't score it
	}
}

// climb targets one concrete uncovered bucket: pick an unsaturated
// dimension and one of its missing bin indices, select the corpus parent
// whose own bin in that dimension is nearest the target (bin indices are
// ordinal — adjacent bins are adjacent behaviors), and nudge the knobs
// steering the dimension. Small steps from a near-missing parent reach
// middle bins that extremes-only mutation and uniform sampling both skip;
// when the parent is far from the target, the same knobs are re-drawn
// across their full range instead.
func (s *Search) climb() Genome {
	dims := s.cov.Unsaturated()
	if len(dims) == 0 {
		return s.Mutate(s.corpus[s.rng.intn(len(s.corpus))].g)
	}
	d := s.pickDimension(dims)
	s.lastTarget = d.Name
	missing := s.cov.MissingBins(d)
	if len(missing) == 0 { // dimension saturated between listing and now
		return s.Mutate(s.corpus[s.rng.intn(len(s.corpus))].g)
	}
	target := missing[s.rng.intn(len(missing))]
	if rowName, colName, ok := comboParts(d.Name); ok {
		if g, ok := s.crossover(rowName, colName, target); ok {
			return g
		}
	}
	best, bestDist := s.nearestParent(d.Name, target)
	g := best.g.normalize()
	near := bestDist <= 2
	for _, knob := range d.Knobs {
		if near {
			// Adjacent behavior: small steps, and leave some knobs alone.
			if s.rng.intn(2) == 0 {
				nudgeKnob(&g, knob, s.rng)
			}
		} else {
			mutateKnob(&g, knob, s.rng)
		}
	}
	if s.rng.intn(2) == 0 {
		g.Seed = mix64(s.rng.next())
	}
	return g.normalize()
}

// nearestParent returns the corpus entry whose bin in dim is closest to
// target (bin indices are ordinal), preferring recent entries on ties, and
// the distance. Distance 1<<30 means no parent has the dimension at all.
func (s *Search) nearestParent(dim string, target int) (corpusEntry, int) {
	best, bestDist := s.corpus[len(s.corpus)-1], 1<<30
	for i := len(s.corpus) - 1; i >= 0; i-- {
		if bin, ok := s.corpus[i].bins[dim]; ok {
			dist := bin - target
			if dist < 0 {
				dist = -dist
			}
			if dist < bestDist {
				best, bestDist = s.corpus[i], dist
			}
		}
	}
	return best, bestDist
}

// comboParts splits a combination-dimension name "row*col" into its
// component dimension names.
func comboParts(name string) (row, col string, ok bool) {
	i := indexByte(name, '*')
	if i <= 0 {
		return "", "", false
	}
	return name[:i], name[i+1:], true
}

// dimByName looks a dimension up in the registry.
func dimByName(name string) (Dimension, bool) {
	for _, d := range Dimensions() {
		if d.Name == name {
			return d, true
		}
	}
	return Dimension{}, false
}

// crossover targets a combination bucket row*col:target by grafting: take
// the parent nearest the target's row bin, splice in the column dimension's
// knobs from the parent nearest the target's column bin, and nudge whichever
// side is not already exact. The two component dimensions steer disjoint
// knob sets, so the graft composes both behaviors — this is how the search
// reaches joint buckets (a mid-range miss rate under near-perfect branch
// prediction, say) that uniform sampling only hits by coincidence and
// single-parent mutation perturbs away.
func (s *Search) crossover(rowName, colName string, target int) (Genome, bool) {
	rowDim, ok1 := dimByName(rowName)
	colDim, ok2 := dimByName(colName)
	if !ok1 || !ok2 {
		return Genome{}, false
	}
	x, y := target/colDim.Bins, target%colDim.Bins
	a, da := s.nearestParent(rowName, x)
	b, db := s.nearestParent(colName, y)
	if da >= 1<<30 || db >= 1<<30 {
		return Genome{}, false
	}
	g := a.g.normalize()
	for _, knob := range colDim.Knobs {
		copyKnob(&g, &b.g, knob)
	}
	if da > 0 {
		for _, knob := range rowDim.Knobs {
			if s.rng.intn(2) == 0 {
				nudgeKnob(&g, knob, s.rng)
			}
		}
	}
	if db > 0 {
		for _, knob := range colDim.Knobs {
			if s.rng.intn(2) == 0 {
				nudgeKnob(&g, knob, s.rng)
			}
		}
	}
	return g.normalize(), true
}

// copyKnob copies every genome field the named canonical knob groups from
// src into dst.
func copyKnob(dst, src *Genome, knob string) {
	switch knob {
	case "win":
		dst.Windows, dst.Window = src.Windows, src.Window
	case "par":
		dst.ParPct = src.ParPct
	case "ws":
		dst.WSLog = src.WSLog
	case "chase":
		dst.Chase = src.Chase
	case "stream":
		dst.Streams, dst.StridePct, dst.IndirPct = src.Streams, src.StridePct, src.IndirPct
	case "probe":
		dst.Probes = src.Probes
	case "reduce":
		dst.Reduce = src.Reduce
	case "scan":
		dst.Scans = src.Scans
	case "br":
		dst.BranchPct = src.BranchPct
	case "store":
		dst.StorePct = src.StorePct
	case "fp":
		dst.FP = src.FP
	case "chain":
		dst.Chain = src.Chain
	}
}

// pickDimension samples an unsaturated dimension with probability
// proportional to its smoothed success rate (wins+1)/(attempts+2): a
// Beta-mean bandit. A dimension that keeps yielding nothing — its missing
// bins unreachable under the injected runner — decays toward a small floor
// instead of starving the productive dimensions.
func (s *Search) pickDimension(dims []Dimension) Dimension {
	weights := make([]int, len(dims))
	total := 0
	for i, d := range dims {
		// Opportunity × success rate: a combination dimension with twenty
		// uncovered bins deserves far more targeting than a scalar one
		// missing a single (possibly unreachable) bin.
		w := len(s.cov.MissingBins(d)) * 100 * (s.wins[d.Name] + 1) / (s.attempts[d.Name] + 2)
		if w < 10 {
			w = 10 // floor: unreachable today may be reachable from a new parent
		}
		weights[i] = w
		total += w
	}
	pick := s.rng.intn(total)
	for i, w := range weights {
		pick -= w
		if pick < 0 {
			return dims[i]
		}
	}
	return dims[len(dims)-1]
}

// Mutate derives a child genome from parent: it picks a coverage dimension
// whose buckets are not yet saturated and re-draws EVERY knob steering that
// dimension, mixing range extremes (for the joint-extreme combination
// buckets uniform sampling only reaches by luck) with fresh uniform values
// and small deltas. The expansion seed is re-drawn half the time so data
// layouts and fragment interleavings vary too.
func (s *Search) Mutate(parent Genome) Genome {
	g := parent.normalize()
	dims := s.cov.Unsaturated()
	var d Dimension
	if len(dims) > 0 {
		d = dims[s.rng.intn(len(dims))]
	} else {
		all := Dimensions()
		d = all[s.rng.intn(len(all))]
	}
	for _, knob := range d.Knobs {
		mutateKnob(&g, knob, s.rng)
	}
	if s.rng.intn(2) == 0 {
		g.Seed = mix64(s.rng.next())
	}
	return g.normalize()
}

// SearchStats summarizes where a search spent its budget and what each arm
// earned — printed by the experiments CLI at the end of a wgen run.
type SearchStats struct {
	ExploreSteps, ExploreGained int
	ExploitSteps, ExploitGained int
	DimAttempts, DimWins        map[string]int
}

// Stats reports the explore/exploit split and per-dimension targeting record.
func (s *Search) Stats() SearchStats {
	da := make(map[string]int, len(s.attempts))
	dw := make(map[string]int, len(s.wins))
	for k, v := range s.attempts {
		da[k] = v
	}
	for k, v := range s.wins {
		dw[k] = v
	}
	return SearchStats{
		ExploreSteps: s.exploreSteps, ExploreGained: s.exploreGained,
		ExploitSteps: s.exploitSteps, ExploitGained: s.exploitGained,
		DimAttempts: da, DimWins: dw,
	}
}

// Coverage returns the accumulated coverage map.
func (s *Search) Coverage() *Coverage { return s.cov }

// Corpus returns the coverage-adding genomes found so far, in discovery
// order.
func (s *Search) Corpus() []Genome {
	out := make([]Genome, len(s.corpus))
	for i, e := range s.corpus {
		out[i] = e.g
	}
	return out
}

// Steps returns how many genomes have been generated and run.
func (s *Search) Steps() int { return s.steps }

// knobField resolves a canonical-line field name to one byte field and its
// range. "win" and "stream" group sub-knobs the canonical line packs
// together, so the rng picks among them. The boolean knobs fp/chain return
// ok=false — callers flip them directly.
func knobField(g *Genome, knob string, r *rng) (f *uint8, lo, hi int, ok bool) {
	switch knob {
	case "win":
		if r.intn(2) == 0 {
			return &g.Windows, minWindows, maxWindows, true
		}
		return &g.Window, minWindow, maxWindow, true
	case "par":
		return &g.ParPct, 0, maxPct, true
	case "ws":
		return &g.WSLog, minWSLog, maxWSLog, true
	case "chase":
		return &g.Chase, 0, maxChase, true
	case "stream":
		switch r.intn(3) {
		case 0:
			return &g.Streams, 0, maxStreams, true
		case 1:
			return &g.StridePct, 0, maxPct, true
		default:
			return &g.IndirPct, 0, maxPct, true
		}
	case "probe":
		return &g.Probes, 0, maxProbes, true
	case "reduce":
		return &g.Reduce, 0, maxReduce, true
	case "scan":
		return &g.Scans, 0, maxScans, true
	case "br":
		return &g.BranchPct, 0, maxPct, true
	case "store":
		return &g.StorePct, 0, maxPct, true
	case "fp":
		g.FP ^= 1
	case "chain":
		g.Chain ^= 1
	}
	return nil, 0, 0, false
}

// nudgeKnob moves the named knob by a small step — the hill-climbing move
// for reaching a bin adjacent to a parent's.
func nudgeKnob(g *Genome, knob string, r *rng) {
	f, lo, hi, ok := knobField(g, knob, r)
	if !ok {
		return
	}
	span := hi - lo
	step := 1 + r.intn(2)
	if span > 30 {
		// Percentage-scale knobs: a one-notch bin move needs a bigger step.
		step = 3 + r.intn(10)
	}
	v := int(*f)
	if r.intn(2) == 0 {
		v += step
	} else {
		v -= step
	}
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	*f = uint8(v)
}

// mutateKnob perturbs the genome field named by the canonical-line field
// name: a small delta, a fresh random value, or a range extreme —
// normalization folds whatever comes out back into the valid range.
func mutateKnob(g *Genome, knob string, r *rng) {
	f, lo, hi, ok := knobField(g, knob, r)
	if !ok {
		return
	}
	switch r.intn(8) {
	case 0: // small positive delta
		v := int(*f) + 1 + r.intn(3)
		if v > hi {
			v = hi
		}
		*f = uint8(v)
	case 1: // small negative delta
		v := int(*f) - 1 - r.intn(3)
		if v < lo {
			v = lo
		}
		*f = uint8(v)
	case 2, 3, 4: // fresh uniform value: keeps the middle bins reachable
		*f = uint8(lo + r.intn(hi-lo+1))
	default: // range extreme: 3/8 of draws pin the knob for joint extremes
		if r.intn(2) == 0 {
			*f = uint8(lo)
		} else {
			*f = uint8(hi)
		}
	}
}
