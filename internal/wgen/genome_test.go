package wgen

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

func TestNormalizeIdempotent(t *testing.T) {
	for seed := uint64(0); seed < 2000; seed++ {
		r := newRNG(seed*0x9E3779B97F4A7C15 + 1)
		g := Genome{
			Seed: r.next(), Windows: uint8(r.next()), Window: uint8(r.next()),
			ParPct: uint8(r.next()), WSLog: uint8(r.next()), Chase: uint8(r.next()),
			Streams: uint8(r.next()), StridePct: uint8(r.next()), IndirPct: uint8(r.next()),
			Probes: uint8(r.next()), Reduce: uint8(r.next()), Scans: uint8(r.next()),
			BranchPct: uint8(r.next()), StorePct: uint8(r.next()), FP: uint8(r.next()),
			Chain: uint8(r.next()),
		}
		once := g.normalize()
		if twice := once.normalize(); twice != once {
			t.Fatalf("seed %d: normalize not idempotent:\nonce:  %+v\ntwice: %+v", seed, once, twice)
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 2000; seed++ {
		g := Random(seed)
		got := FromBytes(g.Bytes())
		if got != g {
			t.Fatalf("seed %d: FromBytes(Bytes) mismatch:\nwant %+v\ngot  %+v", seed, g, got)
		}
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 2000; seed++ {
		g := Random(seed)
		got, err := ParseGenome(g.Canonical())
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, g.Canonical())
		}
		if got != g {
			t.Fatalf("seed %d: ParseGenome(Canonical) mismatch:\nwant %+v\ngot  %+v", seed, g, got)
		}
		if got.Hash() != g.Hash() {
			t.Fatalf("seed %d: hash changed across canonical round-trip", seed)
		}
	}
}

func TestParseGenomeErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"wgen2 seed=1",
		"wgen1",                   // missing seed
		"wgen1 seed=1 seed=2",     // duplicate
		"wgen1 seed=zz",           // bad seed
		"wgen1 seed=1 win=3",      // bad win form
		"wgen1 seed=1 stream=1/2", // bad stream form
		"wgen1 seed=1 bogus=1",    // unknown field
		"wgen1 seed=1 chase=999",  // overflows uint8
		"wgen1 seed=1 noequals",   // not k=v
	} {
		if _, err := ParseGenome(bad); err == nil {
			t.Errorf("ParseGenome(%q) unexpectedly succeeded", bad)
		}
	}
}

var hashRE = regexp.MustCompile(`^g[0-9a-f]{16}$`)

func TestHashAndBenchName(t *testing.T) {
	g := Random(7)
	if !hashRE.MatchString(g.Hash()) {
		t.Fatalf("hash %q does not match the runstore convention", g.Hash())
	}
	if g.BenchName() != "wgen-"+g.Hash() {
		t.Fatalf("bench name %q does not embed the genome hash", g.BenchName())
	}
	// Any knob change must change the hash.
	h := g
	h.Chase = (h.Chase + 1) % (maxChase + 1)
	h = h.normalize()
	if h.Hash() == g.Hash() {
		t.Fatal("distinct genomes share a hash")
	}
}

func TestLoad(t *testing.T) {
	g := Random(99)
	// Literal canonical line.
	got, err := Load(g.Canonical())
	if err != nil || got != g {
		t.Fatalf("Load(literal): %v, %+v", err, got)
	}
	// File whose first line is a genome.
	path := filepath.Join(t.TempDir(), "g.wgen")
	if err := os.WriteFile(path, []byte(g.Canonical()+"\n; comment\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = Load(path)
	if err != nil || got != g {
		t.Fatalf("Load(file): %v, %+v", err, got)
	}
	if _, err := Load("/nonexistent/path.wgen"); err == nil {
		t.Fatal("Load of a missing file succeeded")
	}
}

func TestIterationsBounded(t *testing.T) {
	for seed := uint64(0); seed < 500; seed++ {
		g := Random(seed)
		n := g.Iterations()
		if n < minWindows*minWindow || n > maxWindows*maxWindow {
			t.Fatalf("seed %d: iterations %d out of range", seed, n)
		}
	}
}

func TestRNGZeroSeed(t *testing.T) {
	// xorshift64 has an all-zero fixed point; the constructor must dodge it.
	r := newRNG(0)
	if r.next() == 0 && r.next() == 0 {
		t.Fatal("zero-seeded rng is stuck at zero")
	}
}

func TestBytesLength(t *testing.T) {
	if got := len(Random(1).Bytes()); got != GenomeBytes {
		t.Fatalf("Bytes() length %d, want %d", got, GenomeBytes)
	}
	// Short and long inputs must both decode to valid genomes.
	short := FromBytes([]byte{1, 2, 3})
	if short != short.normalize() {
		t.Fatal("FromBytes(short) is not normalized")
	}
	long := FromBytes(bytes.Repeat([]byte{0xFF}, 2*GenomeBytes))
	if long != long.normalize() {
		t.Fatal("FromBytes(long) is not normalized")
	}
}
