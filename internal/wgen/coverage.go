package wgen

import (
	"sort"

	"repro/internal/attrib"
	"repro/internal/stats"
)

// The coverage signal. A run's behavior signature is the set of buckets it
// lands in across a fixed set of dimensions derived from the simulator's
// own counter registries (stats.Sim) and the fill-attribution report
// (attrib.Report): L1/L2 miss-rate bins, branch-accuracy bins, parallel
// fraction and TU-occupancy bins, WEC hit/insert/promotion bins, wrong-load
// mix, prefetch bins, fork density, and per-origin fill-class flags — plus
// cross-dimension combination buckets (miss rate × branch accuracy,
// occupancy × WEC activity) that only joint extremes reach. Coverage is the
// union of signatures over a corpus; the guided search mutates genomes
// toward dimensions whose bucket sets are not yet saturated.

// Bucket edges. Each dimension quantizes a ratio into len(edges)+1 bins;
// bin(x) is the number of edges strictly below x.
var (
	missEdges  = []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.35, 0.60}
	braccEdges = []float64{0.70, 0.85, 0.93, 0.97, 0.99}
	fracEdges  = []float64{0.10, 0.30, 0.50, 0.70, 0.90}
	occEdges   = []float64{1.2, 2, 3, 4.5, 6}
	wecEdges   = []float64{0.001, 0.05, 0.15, 0.30}
	rateEdges  = []float64{0.5, 2, 8, 32} // events per 1K commits
)

func bin(x float64, edges []float64) int {
	n := 0
	for _, e := range edges {
		if x > e {
			n++
		}
	}
	return n
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Dimensions reports every coverage dimension with its bucket capacity, in
// deterministic order. The guided search uses the capacities to decide
// which dimensions are saturated; tests use it as the universe bound.
func Dimensions() []Dimension {
	return []Dimension{
		{"l1miss", len(missEdges) + 1, []string{"ws", "chase", "stream", "probe"}},
		{"l2miss", len(missEdges) + 1, []string{"ws", "chase", "probe"}},
		{"bracc", len(braccEdges) + 1, []string{"br", "scan"}},
		{"parfrac", len(fracEdges) + 1, []string{"par", "win"}},
		{"tuocc", len(occEdges) + 1, []string{"win", "par", "chain"}},
		{"wec", len(wecEdges) + 1, []string{"br", "scan", "chase", "ws"}},
		{"wloadmix", 4, []string{"br", "scan", "chain", "win"}},
		{"pref", len(rateEdges) + 1, []string{"chase", "stream", "ws"}},
		{"forks", len(rateEdges) + 1, []string{"win", "par"}},
		{"wth", 2, []string{"chain", "win"}},
		{"fill", 15, []string{"br", "scan", "store", "chase", "ws"}},
		{"l1miss*bracc", (len(missEdges) + 1) * (len(braccEdges) + 1), []string{"ws", "chase", "br", "scan"}},
		{"tuocc*wec", (len(occEdges) + 1) * (len(wecEdges) + 1), []string{"win", "par", "br", "chase"}},
	}
}

// Dimension describes one axis of the behavior-coverage signal.
type Dimension struct {
	Name  string
	Bins  int      // bucket capacity: saturated when this many are seen
	Knobs []string // canonical-field names of the genome knobs that steer it
}

// Buckets computes the behavior signature of one run: the sorted list of
// "<dim>:<bin>" bucket names the run occupies. It is a pure function of the
// final counters, so a deterministic simulation yields a deterministic
// signature on every machine shape that produces the same counters.
func Buckets(s *stats.Sim, rep *attrib.Report) []string {
	var out []string
	add := func(dim string, b int) { out = append(out, dim+":"+itoa(b)) }

	l1 := bin(s.L1DMissRate(), missEdges)
	add("l1miss", l1)
	add("l2miss", bin(ratio(s.L2Misses, s.L2Accesses), missEdges))
	ba := bin(s.BranchAccuracy(), braccEdges)
	add("bracc", ba)
	add("parfrac", bin(ratio(s.ParCycles, s.Cycles), fracEdges))
	occ := bin(ratio(s.ParCommits, s.ParCycles), occEdges)
	add("tuocc", occ)
	wec := bin(ratio(s.WECHits, s.L1DMisses+s.WECHits), wecEdges)
	add("wec", wec)

	// Wrong-load mix: which speculative load source dominates.
	switch {
	case s.WrongLoads == 0:
		add("wloadmix", 0)
	case s.WrongThLoads == 0:
		add("wloadmix", 1) // pure wrong-path
	case s.WrongPathLoads == 0:
		add("wloadmix", 2) // pure wrong-thread
	default:
		add("wloadmix", 3)
	}

	add("pref", bin(1000*ratio(s.PrefIssued, s.Commits), rateEdges))
	add("forks", bin(1000*ratio(s.Forks, s.Commits), rateEdges))
	if s.WrongThreads > 0 {
		add("wth", 1)
	} else {
		add("wth", 0)
	}

	// Per-origin fill classes from the attribution report: one bucket per
	// (origin, class) pair that occurred at all.
	if rep != nil {
		origin := func(base int, c attrib.OriginCounts) {
			if c.WrongPath > 0 {
				add("fill", base)
			}
			if c.WrongThread > 0 {
				add("fill", base+1)
			}
			if c.Prefetch > 0 {
				add("fill", base+2)
			}
		}
		origin(0, rep.Useful)
		origin(3, rep.Late)
		origin(6, rep.Useless)
		origin(9, rep.Polluting)
		if rep.VictimHits > 0 {
			add("fill", 12)
		}
		if rep.Resident.Total() > 0 {
			add("fill", 13)
		}
		if rep.SpecFills.Total() > 0 {
			add("fill", 14)
		}
	}

	// Combination buckets: joint extremes that single dimensions cannot
	// witness — these are what separates guided search from uniform random.
	add("l1miss*bracc", l1*(len(braccEdges)+1)+ba)
	add("tuocc*wec", occ*(len(wecEdges)+1)+wec)

	sort.Strings(out)
	return out
}

// itoa is strconv.Itoa for the tiny non-negative ints bucket names use,
// kept local so the hot signature path allocates nothing extra.
func itoa(v int) string {
	if v < 10 {
		return string([]byte{byte('0' + v)})
	}
	return string([]byte{byte('0' + v/10), byte('0' + v%10)})
}

// Coverage accumulates the union of behavior signatures over many runs.
type Coverage struct {
	seen     map[string]bool
	perDim   map[string]int          // dimension -> distinct buckets seen
	binsSeen map[string]map[int]bool // dimension -> set of bin indices seen
}

// NewCoverage returns an empty coverage accumulator.
func NewCoverage() *Coverage {
	return &Coverage{
		seen:     make(map[string]bool),
		perDim:   make(map[string]int),
		binsSeen: make(map[string]map[int]bool),
	}
}

// Add merges a signature and returns how many buckets were new.
func (c *Coverage) Add(sig []string) int {
	fresh := 0
	for _, b := range sig {
		if c.seen[b] {
			continue
		}
		c.seen[b] = true
		fresh++
		if dim, bin, ok := splitBucket(b); ok {
			c.perDim[dim]++
			if c.binsSeen[dim] == nil {
				c.binsSeen[dim] = make(map[int]bool)
			}
			c.binsSeen[dim][bin] = true
		}
	}
	return fresh
}

// splitBucket parses "dim:bin" into its parts.
func splitBucket(b string) (string, int, bool) {
	i := indexByte(b, ':')
	if i <= 0 {
		return "", 0, false
	}
	bin := 0
	for _, ch := range []byte(b[i+1:]) {
		if ch < '0' || ch > '9' {
			return "", 0, false
		}
		bin = bin*10 + int(ch-'0')
	}
	return b[:i], bin, true
}

// MissingBins lists the bin indices of dim not yet covered, ascending.
func (c *Coverage) MissingBins(d Dimension) []int {
	var out []int
	for b := 0; b < d.Bins; b++ {
		if !c.binsSeen[d.Name][b] {
			out = append(out, b)
		}
	}
	return out
}

func indexByte(s string, ch byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == ch {
			return i
		}
	}
	return -1
}

// Count returns the total number of distinct buckets covered.
func (c *Coverage) Count() int { return len(c.seen) }

// Buckets returns the covered bucket names, sorted.
func (c *Coverage) Buckets() []string {
	out := make([]string, 0, len(c.seen))
	for b := range c.seen {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Unsaturated returns the dimensions whose seen-bucket count is still below
// capacity, in deterministic order — the mutation targets.
func (c *Coverage) Unsaturated() []Dimension {
	var out []Dimension
	for _, d := range Dimensions() {
		if c.perDim[d.Name] < d.Bins {
			out = append(out, d)
		}
	}
	return out
}
