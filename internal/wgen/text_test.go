package wgen

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden expansion files")

// goldenGenomes are the pinned determinism witnesses: their expansions are
// committed under testdata/golden/ and their hashes are pinned below. Any
// change to the expansion algorithm, the rng, or the canonical form is a
// visible diff here — and a corpus/memo-key compatibility break, since
// genome hashes name archived cells.
var goldenGenomes = []struct {
	name string
	g    Genome
	hash string
}{
	{"minimal", Genome{Seed: 1}.normalize(), "gb9728690706531e0"},
	{"chasey", Genome{Seed: 0xABCD, Windows: 3, Window: 8, ParPct: 90, WSLog: 12,
		Chase: 12, Streams: 4, StridePct: 30, IndirPct: 60, Probes: 2,
		Reduce: 6, Scans: 4, BranchPct: 35, StorePct: 50, FP: 1, Chain: 1}.normalize(),
		"gd28f024607dbbcf9"},
	{"random77", Random(77), "gaf2679a153e2c6bc"},
}

func TestTextDeterministic(t *testing.T) {
	for _, tc := range goldenGenomes {
		a, b := tc.g.Text(), tc.g.Text()
		if a != b {
			t.Fatalf("%s: two expansions of the same genome differ", tc.name)
		}
	}
	// Determinism must hold across the whole space, not just the goldens.
	for seed := uint64(0); seed < 200; seed++ {
		g := Random(seed)
		if g.Text() != g.Text() {
			t.Fatalf("seed %d: expansion is nondeterministic", seed)
		}
	}
}

func TestGoldenExpansions(t *testing.T) {
	for _, tc := range goldenGenomes {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.Hash(); got != tc.hash {
				t.Errorf("hash %s, pinned %s (genome identity convention changed)", got, tc.hash)
			}
			path := filepath.Join("testdata", "golden", tc.name+".sta")
			text := tc.g.Text()
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if string(want) != text {
				t.Errorf("expansion differs from committed golden %s (run with -update and review the diff)", path)
			}
		})
	}
}

func TestProgramsParse(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 50
	}
	for seed := 0; seed < n; seed++ {
		g := Random(uint64(seed)*6364136223846793005 + 5)
		p, err := g.Program()
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, g.Canonical())
		}
		if len(p.Insts) == 0 {
			t.Fatalf("seed %d: empty program", seed)
		}
	}
}

func TestTextEmbedsIdentity(t *testing.T) {
	g := Random(5)
	text := g.Text()
	if !strings.Contains(text, g.Hash()) {
		t.Error("expansion does not carry the genome hash")
	}
	if !strings.Contains(text, g.Canonical()) {
		t.Error("expansion does not carry the canonical genome line (needed to replay from a .sta file)")
	}
}
