package wgen

import (
	"reflect"
	"testing"

	"repro/internal/attrib"
	"repro/internal/stats"
)

func TestBin(t *testing.T) {
	edges := []float64{0.1, 0.5, 0.9}
	for _, tc := range []struct {
		x    float64
		want int
	}{{0, 0}, {0.1, 0}, {0.11, 1}, {0.5, 1}, {0.7, 2}, {1.0, 3}} {
		if got := bin(tc.x, edges); got != tc.want {
			t.Errorf("bin(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestItoa(t *testing.T) {
	for _, tc := range []struct {
		v    int
		want string
	}{{0, "0"}, {9, "9"}, {10, "10"}, {41, "41"}, {99, "99"}} {
		if got := itoa(tc.v); got != tc.want {
			t.Errorf("itoa(%d) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

// syntheticRun builds a counter set with known ratios so bucket indices can
// be asserted exactly.
func syntheticRun() (*stats.Sim, *attrib.Report) {
	s := &stats.Sim{
		Cycles: 1000, Commits: 2000, ParCycles: 600, ParCommits: 1500,
		Forks: 40, WrongThreads: 2,
		Branches: 100, Mispredicts: 10, // accuracy 0.90
		L1DAccesses: 1000, L1DMisses: 150, L1DTraffic: 1200, // miss rate 0.15
		L2Accesses: 150, L2Misses: 30, // 0.20
		WrongLoads: 30, WrongPathLoads: 20, WrongThLoads: 10,
		WECHits: 50, WECInserts: 80, PrefIssued: 20, PrefUseful: 5,
	}
	rep := &attrib.Report{
		SpecFills: attrib.OriginCounts{WrongPath: 10, Prefetch: 5},
		Useful:    attrib.OriginCounts{WrongPath: 4},
		Useless:   attrib.OriginCounts{Prefetch: 5},
		Resident:  attrib.OriginCounts{WrongPath: 6},
	}
	return s, rep
}

func TestBucketsDeterministicAndSorted(t *testing.T) {
	s, rep := syntheticRun()
	a := Buckets(s, rep)
	b := Buckets(s, rep)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Buckets is nondeterministic for identical counters")
	}
	if len(a) == 0 {
		t.Fatal("empty signature")
	}
	for i := 1; i < len(a); i++ {
		if a[i-1] >= a[i] {
			t.Fatalf("signature not strictly sorted at %d: %q >= %q", i, a[i-1], a[i])
		}
	}
}

func TestBucketsKnownValues(t *testing.T) {
	s, rep := syntheticRun()
	got := make(map[string]bool)
	for _, b := range Buckets(s, rep) {
		got[b] = true
	}
	for _, want := range []string{
		"l1miss:4",        // 0.15 is above {1,2,5,10}% and at the 20% edge
		"l2miss:4",        // 0.20
		"bracc:2",         // 0.90 accuracy: above 0.70 and 0.85
		"parfrac:3",       // 600/1000, above the 0.10/0.30/0.50 edges
		"tuocc:2",         // 1500/600 = 2.5 occupancy
		"wloadmix:3",      // both wrong-path and wrong-thread loads
		"wth:1",           // wrong threads occurred
		"forks:3",         // 40/2000 = 20 per 1K commits, above the 0.5/2/8 edges
		"fill:0",          // wrong-path useful fills
		"fill:8",          // prefetch useless fills
		"fill:13",         // resident fills
		"fill:14",         // any speculative fill
		"l1miss*bracc:26", // 4*(5+1)+2
	} {
		if !got[want] {
			t.Errorf("signature missing %q; got %v", want, Buckets(s, rep))
		}
	}
	// Nil attribution report: fill buckets are simply absent.
	for _, b := range Buckets(s, nil) {
		if len(b) >= 5 && b[:5] == "fill:" {
			t.Errorf("nil report still produced %q", b)
		}
	}
}

func TestCoverageAccumulates(t *testing.T) {
	c := NewCoverage()
	if got := c.Add([]string{"a:0", "b:1", "a:0"}); got != 2 {
		t.Fatalf("first Add = %d, want 2", got)
	}
	if got := c.Add([]string{"a:0", "b:2"}); got != 1 {
		t.Fatalf("second Add = %d, want 1", got)
	}
	if c.Count() != 3 {
		t.Fatalf("Count = %d, want 3", c.Count())
	}
	if want := []string{"a:0", "b:1", "b:2"}; !reflect.DeepEqual(c.Buckets(), want) {
		t.Fatalf("Buckets = %v, want %v", c.Buckets(), want)
	}
}

func TestUnsaturatedShrinks(t *testing.T) {
	c := NewCoverage()
	before := len(c.Unsaturated())
	if before != len(Dimensions()) {
		t.Fatalf("empty coverage should leave all %d dimensions unsaturated, got %d", len(Dimensions()), before)
	}
	// Saturate the two-bin "wth" dimension.
	c.Add([]string{"wth:0", "wth:1"})
	after := c.Unsaturated()
	if len(after) != before-1 {
		t.Fatalf("saturating wth left %d dimensions, want %d", len(after), before-1)
	}
	for _, d := range after {
		if d.Name == "wth" {
			t.Fatal("wth still reported unsaturated")
		}
	}
}

func TestDimensionKnobsResolve(t *testing.T) {
	// Every knob name a dimension steers must be understood by mutateKnob:
	// mutating it must be able to change the genome.
	for _, d := range Dimensions() {
		for _, knob := range d.Knobs {
			changed := false
			for attempt := uint64(0); attempt < 64 && !changed; attempt++ {
				g := Random(1000 + attempt)
				r := newRNG(attempt*2654435761 + 7)
				before := g
				mutateKnob(&g, knob, r)
				if g.normalize() != before {
					changed = true
				}
			}
			if !changed {
				t.Errorf("dimension %s: knob %q never changes the genome (unknown name?)", d.Name, knob)
			}
		}
	}
}
