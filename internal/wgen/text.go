package wgen

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Register conventions of generated programs, matching the workload
// discipline (internal/workload package comment):
//
//	r1  - iteration index / continuation variable (in BEGIN mask)
//	r2  - window end (in mask)
//	r3  - &ring   pointer-chase table base (in mask)
//	r4  - &out    private per-iteration output base (in mask)
//	r5  - &idx    indirection table base (in mask)
//	r6  - &vals   streaming/probe/scan value table base (in mask)
//	r7  - &priv   private store-ratio slot base (in mask)
//	r8  - &cell   TSA/TST chain base (in mask, chain genomes only)
//	r9  - the thread's own iteration index (local)
//	r10-r17 - body temporaries, seeded from r9 before any read (local)
//	r18-r20 - address/constant scratch, always written before read (local)
//	r21-r23 - outer loop state: window counter, windows, window (in mask)
//	r24-r29 - sequential-phase and epilogue state (never live into a region)
//
// Every fragment writes its scratch registers before reading them, so the
// poisoned register files of speculatively overrun threads can never leak
// into architectural results — the property the differential soak checks.

// Text deterministically expands the genome into assembly source accepted
// by asm.Parse. The same genome always yields byte-identical text.
func (g Genome) Text() string {
	g = g.normalize()
	e := &emitter{g: g, r: newRNG(g.Seed)}
	e.emit()
	return e.sb.String()
}

// Program assembles the genome's text. Generation cannot produce invalid
// programs: any error here is a wgen bug, and the fuzz target hunts for it.
func (g Genome) Program() (*isa.Program, error) {
	p, err := asm.Parse(g.Text())
	if err != nil {
		return nil, fmt.Errorf("wgen: genome %s expands to invalid program: %w", g.Hash(), err)
	}
	return p, nil
}

type emitter struct {
	sb  strings.Builder
	g   Genome
	r   *rng
	lbl int
}

func (e *emitter) f(format string, args ...any) {
	fmt.Fprintf(&e.sb, format, args...)
	e.sb.WriteByte('\n')
}

func (e *emitter) ins(format string, args ...any) {
	e.sb.WriteString("    ")
	e.f(format, args...)
}

// temp picks one of the eight seeded body temporaries r10..r17.
func (e *emitter) temp() int { return 10 + e.r.intn(8) }

// label returns a fresh unique label with the given stem.
func (e *emitter) label(stem string) string {
	e.lbl++
	return fmt.Sprintf("wg_%s%d", stem, e.lbl)
}

// entries is the per-table word count (a power of two, so indices mask).
func (e *emitter) entries() int { return (1 << e.g.WSLog) / 8 }

// seqIters sizes the sequential phase from the parallel-fraction knob.
func (e *emitter) seqIters() int { return 8 + 2*(maxPct-int(e.g.ParPct)) }

const valMask = 1 << 40 // table values are uniform in [0, 2^40)

func (e *emitter) emit() {
	g := e.g
	n := g.Iterations()
	slots := n + Slack
	E := e.entries()

	e.f("; wgen synthesized workload %s", g.Hash())
	e.f("; %s", g.Canonical())
	e.f(".data ring %d 64", 1<<g.WSLog)
	e.f(".data vals %d 64", 1<<g.WSLog)
	e.f(".data idx %d 64", IdxEntries*8)
	e.f(".data out %d 64", 8*slots)
	e.f(".data priv %d 64", 8*slots)
	if g.Chain != 0 {
		e.f(".data cell %d 64", 8*slots)
	}
	if g.FP != 0 {
		e.f(".data fpv 1024 64")
		e.f(".data fpout %d 64", 8*slots)
	}
	e.f(".data scratch 1024 64")

	// ring: one random Hamiltonian cycle over the E slots; each word holds
	// the byte offset of the next link, so `next = ring[cur]` chases it.
	perm := make([]int, E)
	for i := range perm {
		perm[i] = i
	}
	for i := E - 1; i > 0; i-- {
		j := e.r.intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < E; i++ {
		e.f(".word ring %d %d", perm[i]*8, perm[(i+1)%E]*8)
	}
	// vals: uniform words; the branchy-scan threshold cuts this range.
	for i := 0; i < E; i++ {
		e.f(".word vals %d %d", i*8, e.r.next()%valMask)
	}
	// idx: aligned offsets into vals.
	for i := 0; i < IdxEntries; i++ {
		e.f(".word idx %d %d", i*8, e.r.intn(E)*8)
	}
	if g.FP != 0 {
		for i := 0; i < 128; i++ {
			v := 0.5 + float64(e.r.intn(4096))/1024
			e.f(".float fpv %d %s", i*8, strconv.FormatFloat(v, 'g', -1, 64))
		}
	}

	// Prologue: bases and outer-loop state.
	e.f("start:")
	e.ins("li r3, &ring")
	e.ins("li r4, &out")
	e.ins("li r5, &idx")
	e.ins("li r6, &vals")
	e.ins("li r7, &priv")
	if g.Chain != 0 {
		e.ins("li r8, &cell")
	}
	e.ins("li r21, 0")
	e.ins("li r22, %d", g.Windows)
	e.ins("li r23, %d", g.Window)

	e.f("outer:")
	e.emitSeqPhase()

	// Window bounds and the thread-pipelined region.
	e.ins("mul r1, r21, r23")
	e.ins("add r2, r1, r23")
	mask := []string{"r1", "r2", "r3", "r4", "r5", "r6", "r7"}
	if g.Chain != 0 {
		mask = append(mask, "r8")
	}
	mask = append(mask, "r21", "r22", "r23")
	e.ins("begin %s", strings.Join(mask, ", "))
	e.f("body:")
	e.ins("add r9, r1, r0")
	e.ins("addi r1, r1, 1")
	e.ins("fork body")
	if g.Chain != 0 {
		// TSAG stage: announce this iteration's target store cell[r9].
		e.ins("slli r18, r9, 3")
		e.ins("add r18, r18, r8")
		e.ins("tsa 0(r18)")
	}
	e.ins("tsagd")

	// Seed every body temporary from the iteration index before any use.
	for rr := 10; rr <= 17; rr++ {
		e.ins("addi r%d, r9, %d", rr, rr*7)
	}
	e.ins("mul r12, r9, r9")

	e.emitFragments()

	if g.Chain != 0 {
		e.emitChain()
	}

	// Private output: out[r9] = mix of temps.
	e.ins("xor r16, r10, r11")
	e.ins("add r16, r16, r12")
	e.ins("xor r16, r16, r14")
	e.ins("add r16, r16, r15")
	e.ins("slli r18, r9, 3")
	e.ins("add r18, r18, r4")
	e.ins("st r16, 0(r18)")

	// Exit check and region end.
	e.ins("blt r1, r2, cont")
	e.ins("abort")
	e.ins("jmp after")
	e.f("cont:")
	e.ins("thend")
	e.f("after:")
	e.ins("addi r21, r21, 1")
	e.ins("blt r21, r22, outer")

	e.emitEpilogue()
	e.ins("halt")
}

// emitSeqPhase is the unparallelized portion: a dependent chain over an
// L1-resident scratch buffer, sized by the parallel-fraction knob.
func (e *emitter) emitSeqPhase() {
	seq := e.label("seq")
	e.ins("li r28, 0")
	e.ins("li r29, %d", e.seqIters())
	e.ins("li r24, &scratch")
	e.f("%s:", seq)
	e.ins("andi r25, r28, 127")
	e.ins("slli r25, r25, 3")
	e.ins("add r25, r25, r24")
	e.ins("ld r26, 0(r25)")
	e.ins("add r26, r26, r28")
	e.ins("slli r26, r26, 1")
	e.ins("srli r26, r26, 1")
	e.ins("st r26, 0(r25)")
	e.ins("addi r28, r28, 1")
	e.ins("blt r28, r29, %s", seq)
}

// emitFragments interleaves the enabled kernel fragments in a seeded
// random order.
func (e *emitter) emitFragments() {
	type frag struct {
		name string
		emit func()
	}
	var frags []frag
	if e.g.Chase > 0 {
		frags = append(frags, frag{"chase", e.emitChase})
	}
	if e.g.Streams > 0 {
		frags = append(frags, frag{"stream", e.emitStream})
	}
	if e.g.Probes > 0 {
		frags = append(frags, frag{"probe", e.emitProbe})
	}
	if e.g.Reduce > 0 {
		frags = append(frags, frag{"reduce", e.emitReduce})
	}
	if e.g.Scans > 0 {
		frags = append(frags, frag{"scan", e.emitScan})
	}
	if e.g.FP != 0 {
		frags = append(frags, frag{"fp", e.emitFP})
	}
	for i := len(frags) - 1; i > 0; i-- {
		j := e.r.intn(i + 1)
		frags[i], frags[j] = frags[j], frags[i]
	}
	for _, fr := range frags {
		e.f("; fragment %s", fr.name)
		fr.emit()
		e.emitStoreRatio()
	}
}

// emitStoreRatio stores a temp into the iteration's private slot with
// probability StorePct — the store-ratio knob.
func (e *emitter) emitStoreRatio() {
	if e.r.intn(100) >= int(e.g.StorePct) {
		return
	}
	e.ins("slli r18, r9, 3")
	e.ins("add r18, r18, r7")
	e.ins("st r%d, 0(r18)", e.temp())
}

// emitChase walks the precomputed random ring for Chase hops: every load's
// address depends on the previous load's value — the mcf archetype the WEC
// targets, at a genome-controlled depth and footprint.
func (e *emitter) emitChase() {
	e.ins("andi r18, r9, %d", e.entries()-1)
	e.ins("slli r18, r18, 3")
	e.ins("add r18, r18, r3")
	for i := 0; i < int(e.g.Chase); i++ {
		e.ins("ld r19, 0(r18)")
		e.ins("add r18, r19, r3")
	}
	d, _ := e.tempPair()
	e.ins("xor r%d, r%d, r19", d, d)
}

// tempPair returns a destination temp register number twice (for
// "op rT, rT, rX" accumulations).
func (e *emitter) tempPair() (int, int) {
	t := e.temp()
	return t, t
}

// emitStream issues Streams accesses to the value table, each either
// sequential-stride, indirect through the index table, or hashed, per the
// stride/indirection mix knobs.
func (e *emitter) emitStream() {
	for j := 0; j < int(e.g.Streams); j++ {
		switch {
		case e.r.intn(100) < int(e.g.StridePct):
			// Stride: consecutive iterations touch consecutive words.
			e.ins("addi r18, r9, %d", j*(1+e.r.intn(3)))
			e.ins("andi r18, r18, %d", e.entries()-1)
			e.ins("slli r18, r18, 3")
			e.ins("add r18, r18, r6")
			e.ins("ld r19, 0(r18)")
			d, _ := e.tempPair()
			e.ins("add r%d, r%d, r19", d, d)
		case e.r.intn(100) < int(e.g.IndirPct):
			// Indirect: vals[idx[i]] — the equake gather archetype.
			e.ins("addi r18, r9, %d", j)
			e.ins("andi r18, r18, %d", IdxEntries-1)
			e.ins("slli r18, r18, 3")
			e.ins("add r18, r18, r5")
			e.ins("ld r19, 0(r18)")
			e.ins("add r19, r19, r6")
			e.ins("ld r19, 0(r19)")
			d, _ := e.tempPair()
			e.ins("xor r%d, r%d, r19", d, d)
		default:
			// Hashed: address computed from live temp values.
			e.ins("li r19, %d", 0x9E3779B1|uint64(e.r.intn(1<<16))<<1|1)
			e.ins("mul r18, r%d, r19", e.temp())
			e.ins("srli r18, r18, %d", 5+e.r.intn(9))
			e.ins("andi r18, r18, %d", e.entries()-1)
			e.ins("slli r18, r18, 3")
			e.ins("add r18, r18, r6")
			e.ins("ld r19, 0(r18)")
			d, _ := e.tempPair()
			e.ins("add r%d, r%d, r19", d, d)
		}
	}
}

// emitProbe is a two-level hash probe: a hashed index selects a table word
// whose value selects a second, dependent access — the gzip dictionary
// archetype.
func (e *emitter) emitProbe() {
	for j := 0; j < int(e.g.Probes); j++ {
		e.ins("li r19, %d", 0x85EBCA77|uint64(e.r.intn(1<<16))<<1|1)
		e.ins("mul r18, r%d, r19", e.temp())
		e.ins("srli r18, r18, %d", 7+e.r.intn(7))
		e.ins("andi r18, r18, %d", e.entries()-1)
		e.ins("slli r18, r18, 3")
		e.ins("add r18, r18, r6")
		e.ins("ld r19, 0(r18)")
		e.ins("andi r19, r19, %d", e.entries()-1)
		e.ins("slli r19, r19, 3")
		e.ins("add r19, r19, r6")
		e.ins("ld r19, 0(r19)")
		d, _ := e.tempPair()
		e.ins("xor r%d, r%d, r19", d, d)
	}
}

// emitReduce emits a dependent integer reduction chain over the temps —
// the vpr ALU-heavy archetype.
func (e *emitter) emitReduce() {
	ops := []string{"add", "mul", "xor", "sub", "and", "or"}
	for j := 0; j < int(e.g.Reduce); j++ {
		if e.r.intn(4) == 0 {
			imms := []string{"addi", "xori", "ori"}
			d, _ := e.tempPair()
			e.ins("%s r%d, r%d, %d", imms[e.r.intn(len(imms))], d, d, e.r.intn(64)-32)
			continue
		}
		d, _ := e.tempPair()
		e.ins("%s r%d, r%d, r%d", ops[e.r.intn(len(ops))], d, d, e.temp())
	}
}

// emitScan loads table words and branches on them: the threshold is placed
// at the BranchPct percentile of the uniform value distribution, so the
// knob directly sets the taken rate (and with it the branch entropy and
// the wrong-path opportunity).
func (e *emitter) emitScan() {
	threshold := int64(e.g.BranchPct) * valMask / 100
	for j := 0; j < int(e.g.Scans); j++ {
		taken := e.label("t")
		done := e.label("e")
		e.ins("xor r18, r9, r%d", e.temp())
		e.ins("addi r18, r18, %d", j*3)
		e.ins("andi r18, r18, %d", e.entries()-1)
		e.ins("slli r18, r18, 3")
		e.ins("add r18, r18, r6")
		e.ins("ld r19, 0(r18)")
		d, _ := e.tempPair()
		if e.r.intn(3) == 0 {
			// Parity hammock: irreducible 50% entropy.
			e.ins("andi r19, r19, 1")
			e.ins("bne r19, r0, %s", taken)
		} else {
			e.ins("li r20, %d", threshold)
			e.ins("blt r19, r20, %s", taken)
		}
		e.ins("xori r%d, r%d, %d", d, d, 1+e.r.intn(127))
		e.ins("jmp %s", done)
		e.f("%s:", taken)
		e.ins("addi r%d, r%d, %d", d, d, 1+e.r.intn(127))
		e.f("%s:", done)
	}
}

// emitFP is the floating-point reduction fragment (the equake/mesa FP
// archetype). FP registers are not forwarded at fork, so both sources are
// loaded before any FP register is read.
func (e *emitter) emitFP() {
	e.ins("li r20, &fpv")
	e.ins("andi r18, r9, 127")
	e.ins("slli r18, r18, 3")
	e.ins("add r18, r18, r20")
	e.ins("fld f1, 0(r18)")
	e.ins("addi r19, r9, 37")
	e.ins("andi r19, r19, 127")
	e.ins("slli r19, r19, 3")
	e.ins("add r19, r19, r20")
	e.ins("fld f2, 0(r19)")
	e.ins("fadd f3, f1, f2")
	e.ins("fmul f3, f3, f1")
	if e.r.intn(2) == 0 {
		e.ins("fsub f3, f3, f2")
	} else {
		e.ins("fmax f3, f3, f2")
	}
	e.ins("li r20, &fpout")
	e.ins("slli r18, r9, 3")
	e.ins("add r18, r18, r20")
	e.ins("fst f3, 0(r18)")
}

// emitChain carries a cross-iteration dependence through the announced
// target store: cell[i] = cell[i-1] + temp. Iteration 0 of each window
// reads the previous window's last cell, already written back when the
// region started; iteration 0 overall substitutes zero.
func (e *emitter) emitChain() {
	first := e.label("chainz")
	sum := e.label("chains")
	e.ins("slli r18, r9, 3")
	e.ins("add r18, r18, r8")
	e.ins("beq r9, r0, %s", first)
	e.ins("ld r19, -8(r18)")
	e.ins("jmp %s", sum)
	e.f("%s:", first)
	e.ins("li r19, 0")
	e.f("%s:", sum)
	e.ins("add r19, r19, r10")
	e.ins("tst r19, 0(r18)")
}

// emitEpilogue folds every out[] slot into an accumulator and then derives
// every integer register from it, so differential tests can require the
// machine's complete architectural register file — not just memory — to
// match the interpreter at halt.
func (e *emitter) emitEpilogue() {
	fold := e.label("fold")
	done := e.label("folded")
	e.ins("mul r24, r22, r23")
	e.ins("li r25, 0")
	e.ins("li r26, 0")
	e.f("%s:", fold)
	e.ins("bge r26, r24, %s", done)
	e.ins("slli r27, r26, 3")
	e.ins("add r27, r27, r4")
	e.ins("ld r28, 0(r27)")
	e.ins("xor r25, r25, r28")
	e.ins("addi r26, r26, 1")
	e.ins("jmp %s", fold)
	e.f("%s:", done)
	for k := 1; k < isa.NumIntRegs; k++ {
		if k != 25 {
			e.ins("addi r%d, r25, %d", k, k)
		}
	}
}
