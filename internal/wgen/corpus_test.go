package wgen_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/wgen"
)

// The committed seed corpus: coverage-adding genomes archived from a fixed
// coverage-guided search run. Each file is named by its genome hash and
// holds the canonical line (replayable with `stasim -wgen-genome`) plus a
// comment recording the coverage it added when discovered. Regenerate with
// `go test ./internal/wgen -run TestSeedCorpusCommitted -update-corpus`.
const corpusDir = "testdata/corpus"

var updateCorpus = flag.Bool("update-corpus", false, "regenerate the committed wgen seed corpus")

func TestSeedCorpusCommitted(t *testing.T) {
	if *updateCorpus {
		s := wgen.NewSearch(7, simRunner(t))
		if err := os.RemoveAll(corpusDir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(corpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 80; i++ {
			res, err := s.Step()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Kept {
				continue
			}
			g := res.Genome
			body := fmt.Sprintf("%s\n; step %d: +%d buckets (total %d)\n",
				g.Canonical(), i, res.New, res.Coverage)
			path := filepath.Join(corpusDir, g.Hash()+".wgen")
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	files, err := filepath.Glob(filepath.Join(corpusDir, "*.wgen"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("committed corpus has %d genomes, want at least 10 (run with -update)", len(files))
	}
	for _, path := range files {
		g, err := wgen.Load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		want := strings.TrimSuffix(filepath.Base(path), ".wgen")
		if g.Hash() != want {
			t.Errorf("%s: content hashes to %s", path, g.Hash())
		}
		if _, err := g.Program(); err != nil {
			t.Errorf("%s: expansion invalid: %v", path, err)
		}
	}
}
