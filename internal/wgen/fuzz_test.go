package wgen_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/isa"
	"repro/internal/sta"
	"repro/internal/wgen"
)

// FuzzWgen drives arbitrary bytes through the full generated-workload
// pipeline: bytes → genome (FromBytes folds anything into the valid knob
// space) → .sta text → parsed program → instruction encode/decode
// round-trip → bounded interpreter-vs-simulator differential. Every stage
// must hold for EVERY byte string — the generator's contract is that no
// genome, however degenerate, produces an invalid or divergent program.
func FuzzWgen(f *testing.F) {
	for _, seed := range []uint64{0, 1, 2, 77, 424242, 0xBEEF, 0x5EED} {
		f.Add(wgen.Random(seed).Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := wgen.FromBytes(data)

		// Identity round-trips: canonical line and byte form both rebuild
		// the same genome, and the hash is stable across them.
		if got := wgen.FromBytes(g.Bytes()); got != g {
			t.Fatalf("Bytes round-trip mutated the genome: %+v -> %+v", g, got)
		}
		g2, err := wgen.ParseGenome(g.Canonical())
		if err != nil {
			t.Fatalf("canonical line unparseable: %v\n%s", err, g.Canonical())
		}
		if g2 != g || g2.Hash() != g.Hash() {
			t.Fatalf("canonical round-trip mutated the genome:\n%s\n%s", g.Canonical(), g2.Canonical())
		}

		// Expansion must parse, and the binary encoding must round-trip.
		p, err := g.Program()
		if err != nil {
			t.Fatalf("generated program invalid: %v\n%s", err, g.Canonical())
		}
		insts, err := isa.DecodeProgram(isa.EncodeProgram(p))
		if err != nil {
			t.Fatalf("encode/decode failed: %v\n%s", err, g.Canonical())
		}
		if len(insts) != len(p.Insts) {
			t.Fatalf("encode/decode changed length %d -> %d", len(p.Insts), len(insts))
		}
		for i := range insts {
			if insts[i] != p.Insts[i] {
				t.Fatalf("inst %d changed across encode/decode: %+v -> %+v", i, p.Insts[i], insts[i])
			}
		}

		// Short differential: the simulator must reproduce the functional
		// interpreter's memory image and integer register file. The fuzzed
		// knobs feed a size-bounded variant — iteration count and working
		// set capped so each exec stays in the low milliseconds; the
		// 500-genome soak covers full-size programs.
		gd := g
		if gd.Windows > 2 {
			gd.Windows = 2
		}
		if gd.Window > 4 {
			gd.Window = 4
		}
		if gd.WSLog > 11 {
			gd.WSLog = 11
		}
		gd, err = wgen.ParseGenome(gd.Canonical()) // re-normalize the clamp
		if err != nil {
			t.Fatalf("clamped genome unparseable: %v", err)
		}
		pd, err := gd.Program()
		if err != nil {
			t.Fatalf("clamped program invalid: %v\n%s", err, gd.Canonical())
		}
		ref, err := interp.RunLimit(pd, 5_000_000)
		if err != nil {
			t.Fatalf("interp: %v\n%s", err, gd.Canonical())
		}
		cfg := sta.DefaultConfig()
		cfg.NumTUs = 2
		m, err := sta.New(cfg, pd)
		if err != nil {
			t.Fatalf("sta.New: %v\n%s", err, gd.Canonical())
		}
		r, err := m.Run()
		if err != nil {
			t.Fatalf("sim: %v\n%s", err, gd.Canonical())
		}
		if r.MemCheck != ref.MemCheck {
			t.Fatalf("memory diverged: sim %#x interp %#x\n%s", r.MemCheck, ref.MemCheck, gd.Canonical())
		}
		if r.IntRegs != ref.IntRegs {
			t.Fatalf("registers diverged\n%s", gd.Canonical())
		}
	})
}
