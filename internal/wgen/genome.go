// Package wgen synthesizes benchmark workloads for the simulator. A Genome
// is a small vector of knobs — window geometry, parallel fraction, working-
// set size, pointer-chase depth, stride/indirection mix, branch entropy,
// store ratio — plus a seed for a deterministic xorshift64 stream. Each
// genome deterministically expands into a textual assembly program (the
// same .sta dialect asm.Parse accepts) built from composable kernel
// fragments: pointer chase, streaming, hash probe, reduction, and branchy
// scan. Generated programs obey the workload discipline documented in
// internal/workload (BEGIN masks carry every live register, cross-iteration
// stores go through TSA/TST, per-iteration arrays carry wrong-thread
// slack), so every generated program must produce interpreter-identical
// architectural results on any machine configuration — which is what lets
// the differential soak, the chaos harness, and the coverage-guided search
// all feed from the same generator.
//
// The package deliberately depends only on the functional layers (asm, isa,
// stats, attrib): running programs on the cycle simulator is injected
// through a callback (see Search.Run), so the sta package's own tests can
// import wgen without an import cycle.
package wgen

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"strings"
)

// Slack mirrors workload.Slack: every per-iteration array is allocated with
// this many extra entries so wrong-thread overrun (at most one speculative
// thread per TU, machine maximum 63) stays inside mapped, private memory.
const Slack = 80

// IdxEntries sizes the indirection table. It is a power of two of at least
// MaxWindows*MaxWindow+Slack entries so overrunning threads index it with a
// mask instead of a bound check.
const IdxEntries = 256

// Knob ranges. Normalization folds arbitrary values into these bounds, so
// every byte string and every mutation yields a valid genome.
const (
	minWindows, maxWindows = 1, 6  // outer sequential windows
	minWindow, maxWindow   = 2, 16 // iterations per parallel region
	minWSLog, maxWSLog     = 9, 15 // log2 bytes per data table (512B..32KB)
	maxChase               = 24    // pointer-chase hops per iteration
	maxStreams             = 12    // streaming accesses per iteration
	maxProbes              = 8     // hash-probe accesses per iteration
	maxReduce              = 12    // reduction ops per iteration
	maxScans               = 8     // branchy-scan steps per iteration
	maxPct                 = 100   // percentage knobs
)

// Genome is one point in the workload design space. All knobs are small
// integers so genomes hash, mutate, and round-trip through bytes exactly.
type Genome struct {
	// Seed drives every random draw of the expansion: data initialization,
	// fragment interleaving, and operand selection.
	Seed uint64

	Windows   uint8 // outer windows (sequential phase + parallel region each)
	Window    uint8 // iterations per parallel region (window geometry)
	ParPct    uint8 // parallel fraction: 100 minimizes the sequential phase
	WSLog     uint8 // log2 working-set bytes per table (ring and values)
	Chase     uint8 // pointer-chase depth per iteration
	Streams   uint8 // streaming accesses per iteration
	StridePct uint8 // % of stream accesses that are sequential-stride
	IndirPct  uint8 // % of non-stride stream accesses through the index table
	Probes    uint8 // hash-probe accesses per iteration
	Reduce    uint8 // dependent reduction ops per iteration
	Scans     uint8 // branchy-scan steps per iteration
	BranchPct uint8 // branch entropy: % of scan-data below the taken threshold
	StorePct  uint8 // store ratio: % chance a fragment also stores privately
	FP        uint8 // 1 = include the floating-point reduction fragment
	Chain     uint8 // 1 = cross-iteration dependence through TSA/TST
}

// rng is the deterministic xorshift64 stream used everywhere in wgen.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// clampRange folds v into [lo, hi]. In-range values pass through unchanged,
// which makes normalize idempotent — required for Canonical/ParseGenome and
// Bytes/FromBytes to round-trip exactly.
func clampRange(v uint8, lo, hi int) uint8 {
	if int(v) >= lo && int(v) <= hi {
		return v
	}
	span := hi - lo + 1
	return uint8(lo + int(v)%span)
}

// normalize folds every knob into its valid range; the zero genome
// normalizes to the smallest valid workload.
func (g Genome) normalize() Genome {
	g.Windows = clampRange(g.Windows, minWindows, maxWindows)
	g.Window = clampRange(g.Window, minWindow, maxWindow)
	g.ParPct = clampRange(g.ParPct, 0, maxPct)
	g.WSLog = clampRange(g.WSLog, minWSLog, maxWSLog)
	g.Chase = clampRange(g.Chase, 0, maxChase)
	g.Streams = clampRange(g.Streams, 0, maxStreams)
	g.StridePct = clampRange(g.StridePct, 0, maxPct)
	g.IndirPct = clampRange(g.IndirPct, 0, maxPct)
	g.Probes = clampRange(g.Probes, 0, maxProbes)
	g.Reduce = clampRange(g.Reduce, 0, maxReduce)
	g.Scans = clampRange(g.Scans, 0, maxScans)
	g.BranchPct = clampRange(g.BranchPct, 0, maxPct)
	g.StorePct = clampRange(g.StorePct, 0, maxPct)
	g.FP = g.FP & 1
	g.Chain = g.Chain & 1
	// An iteration body must touch memory somewhere, or the workload
	// degenerates below what the discipline tests assume.
	if g.Chase == 0 && g.Streams == 0 && g.Probes == 0 && g.Scans == 0 {
		g.Streams = 2
	}
	return g
}

// Random draws a genome uniformly over the knob space from one seed.
func Random(seed uint64) Genome {
	r := newRNG(seed)
	g := Genome{
		Seed:      r.next(),
		Windows:   uint8(r.intn(256)),
		Window:    uint8(r.intn(256)),
		ParPct:    uint8(r.intn(256)),
		WSLog:     uint8(r.intn(256)),
		Chase:     uint8(r.intn(256)),
		Streams:   uint8(r.intn(256)),
		StridePct: uint8(r.intn(256)),
		IndirPct:  uint8(r.intn(256)),
		Probes:    uint8(r.intn(256)),
		Reduce:    uint8(r.intn(256)),
		Scans:     uint8(r.intn(256)),
		BranchPct: uint8(r.intn(256)),
		StorePct:  uint8(r.intn(256)),
		FP:        uint8(r.intn(256)),
		Chain:     uint8(r.intn(256)),
	}
	return g.normalize()
}

// GenomeBytes is the length of the byte form: the seed plus one byte per
// knob, in declaration order.
const GenomeBytes = 8 + 15

// FromBytes decodes arbitrary bytes into a valid genome (shorter inputs
// leave trailing knobs at their zero value; longer inputs are truncated).
// This is the fuzzing entry point: any byte string is a generatable
// workload.
func FromBytes(data []byte) Genome {
	var raw [GenomeBytes]byte
	copy(raw[:], data)
	g := Genome{
		Seed:      binary.LittleEndian.Uint64(raw[0:8]),
		Windows:   raw[8],
		Window:    raw[9],
		ParPct:    raw[10],
		WSLog:     raw[11],
		Chase:     raw[12],
		Streams:   raw[13],
		StridePct: raw[14],
		IndirPct:  raw[15],
		Probes:    raw[16],
		Reduce:    raw[17],
		Scans:     raw[18],
		BranchPct: raw[19],
		StorePct:  raw[20],
		FP:        raw[21],
		Chain:     raw[22],
	}
	return g.normalize()
}

// Bytes renders the genome so that FromBytes(g.Bytes()) == g: knobs are
// stored as their normalized values, which idempotent normalization passes
// through unchanged.
func (g Genome) Bytes() []byte {
	g = g.normalize()
	raw := make([]byte, GenomeBytes)
	binary.LittleEndian.PutUint64(raw[0:8], g.Seed)
	raw[8] = g.Windows
	raw[9] = g.Window
	raw[10] = g.ParPct
	raw[11] = g.WSLog
	raw[12] = g.Chase
	raw[13] = g.Streams
	raw[14] = g.StridePct
	raw[15] = g.IndirPct
	raw[16] = g.Probes
	raw[17] = g.Reduce
	raw[18] = g.Scans
	raw[19] = g.BranchPct
	raw[20] = g.StorePct
	raw[21] = g.FP
	raw[22] = g.Chain
	return raw
}

// Canonical renders the genome as one line of text. It is the identity the
// FNV hash is computed over, the format ParseGenome reads back, and the
// form corpus seed files are archived in.
func (g Genome) Canonical() string {
	g = g.normalize()
	return fmt.Sprintf(
		"wgen1 seed=%#016x win=%dx%d par=%d ws=%d chase=%d stream=%d/%d/%d probe=%d reduce=%d scan=%d br=%d store=%d fp=%d chain=%d",
		g.Seed, g.Windows, g.Window, g.ParPct, g.WSLog, g.Chase,
		g.Streams, g.StridePct, g.IndirPct, g.Probes, g.Reduce, g.Scans,
		g.BranchPct, g.StorePct, g.FP, g.Chain)
}

// Hash content-addresses the genome: "g" plus the 16-hex-digit FNV-64a of
// the canonical rendering — the same hash family and width the runstore
// uses for configuration addresses, so generated-cell identities follow the
// repository's memo-key convention.
func (g Genome) Hash() string {
	h := fnv.New64a()
	h.Write([]byte(g.Canonical()))
	return fmt.Sprintf("g%016x", h.Sum64())
}

// BenchName names the generated workload for the harness, the ledger, and
// the run archive: the genome hash is embedded, so every ledger entry and
// archived manifest of a generated cell carries it.
func (g Genome) BenchName() string { return "wgen-" + g.Hash() }

// ParseGenome reads a canonical genome line back (leading/trailing space
// and a trailing newline are tolerated).
func ParseGenome(s string) (Genome, error) {
	fields := strings.Fields(strings.TrimSpace(s))
	if len(fields) == 0 || fields[0] != "wgen1" {
		return Genome{}, fmt.Errorf("wgen: not a genome line (want leading %q)", "wgen1")
	}
	var g Genome
	seen := make(map[string]bool)
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return Genome{}, fmt.Errorf("wgen: bad field %q", f)
		}
		if seen[k] {
			return Genome{}, fmt.Errorf("wgen: duplicate field %q", k)
		}
		seen[k] = true
		switch k {
		case "seed":
			u, err := strconv.ParseUint(v, 0, 64)
			if err != nil {
				return Genome{}, fmt.Errorf("wgen: bad seed %q", v)
			}
			g.Seed = u
		case "win":
			a, b, ok := strings.Cut(v, "x")
			if !ok {
				return Genome{}, fmt.Errorf("wgen: bad win %q (want WxN)", v)
			}
			w, err1 := parseKnob(a)
			n, err2 := parseKnob(b)
			if err1 != nil || err2 != nil {
				return Genome{}, fmt.Errorf("wgen: bad win %q", v)
			}
			g.Windows, g.Window = w, n
		case "stream":
			parts := strings.Split(v, "/")
			if len(parts) != 3 {
				return Genome{}, fmt.Errorf("wgen: bad stream %q (want n/stride%%/indir%%)", v)
			}
			n, err1 := parseKnob(parts[0])
			sp, err2 := parseKnob(parts[1])
			ip, err3 := parseKnob(parts[2])
			if err1 != nil || err2 != nil || err3 != nil {
				return Genome{}, fmt.Errorf("wgen: bad stream %q", v)
			}
			g.Streams, g.StridePct, g.IndirPct = n, sp, ip
		default:
			u, err := parseKnob(v)
			if err != nil {
				return Genome{}, fmt.Errorf("wgen: bad value %q for %q", v, k)
			}
			switch k {
			case "par":
				g.ParPct = u
			case "ws":
				g.WSLog = u
			case "chase":
				g.Chase = u
			case "probe":
				g.Probes = u
			case "reduce":
				g.Reduce = u
			case "scan":
				g.Scans = u
			case "br":
				g.BranchPct = u
			case "store":
				g.StorePct = u
			case "fp":
				g.FP = u
			case "chain":
				g.Chain = u
			default:
				return Genome{}, fmt.Errorf("wgen: unknown field %q", k)
			}
		}
	}
	if !seen["seed"] {
		return Genome{}, fmt.Errorf("wgen: genome line missing seed")
	}
	return g.normalize(), nil
}

// Load resolves a genome from a flag value: a literal canonical line
// ("wgen1 ..."), or the path of a file whose first line is one.
func Load(v string) (Genome, error) {
	if strings.HasPrefix(strings.TrimSpace(v), "wgen1") {
		return ParseGenome(v)
	}
	raw, err := os.ReadFile(v)
	if err != nil {
		return Genome{}, fmt.Errorf("wgen: %q is neither a genome line nor a readable file: %w", v, err)
	}
	line, _, _ := strings.Cut(string(raw), "\n")
	return ParseGenome(line)
}

func parseKnob(s string) (uint8, error) {
	u, err := strconv.ParseUint(s, 10, 8)
	if err != nil {
		return 0, err
	}
	return uint8(u), nil
}

// Iterations returns the total parallel iteration count windows*window.
func (g Genome) Iterations() int {
	g = g.normalize()
	return int(g.Windows) * int(g.Window)
}
