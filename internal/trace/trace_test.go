package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	kinds := []Kind{Begin, Fork, ThreadStart, Tsagd, ThreadEnd, WBDrain,
		Retire, Abort, WrongMark, Kill, SeqResume, Halt}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(Kind(99).String(), "kind(") {
		t.Error("unknown kind should fall back")
	}
}

func TestRecorder(t *testing.T) {
	var r Recorder
	r.Event(Event{Cycle: 1, TU: 0, Kind: Fork, Arg: 5})
	r.Event(Event{Cycle: 2, TU: 1, Kind: ThreadStart, Arg: 5})
	r.Event(Event{Cycle: 9, TU: 1, Kind: Retire})
	if got := r.Count(Fork); got != 1 {
		t.Errorf("Count(Fork) = %d", got)
	}
	evs := r.Events()
	if len(evs) != 3 || evs[0].Kind != Fork || evs[2].Cycle != 9 {
		t.Errorf("events = %v", evs)
	}
	// Events returns a copy.
	evs[0].Kind = Halt
	if r.Events()[0].Kind != Fork {
		t.Error("Events exposed internal storage")
	}
}

func TestRecorderBounded(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Event(Event{Cycle: uint64(i), Kind: Fork})
	}
	if got := r.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Only the most recent four survive, in chronological order.
	for i, e := range evs {
		if want := uint64(6 + i); e.Cycle != want {
			t.Errorf("evs[%d].Cycle = %d, want %d", i, e.Cycle, want)
		}
	}
	if got := r.Count(Fork); got != 4 {
		t.Errorf("Count(Fork) = %d, want 4", got)
	}
}

func TestRecorderBoundedPartial(t *testing.T) {
	// A bounded recorder that never fills behaves like an unbounded one.
	r := NewRecorder(8)
	for i := 0; i < 3; i++ {
		r.Event(Event{Cycle: uint64(i)})
	}
	evs := r.Events()
	if len(evs) != 3 || evs[0].Cycle != 0 || evs[2].Cycle != 2 {
		t.Errorf("events = %v", evs)
	}
	if r.Total() != 3 {
		t.Errorf("Total = %d, want 3", r.Total())
	}
}

func TestWriter(t *testing.T) {
	var buf bytes.Buffer
	w := Writer{W: &buf}
	w.Event(Event{Cycle: 42, TU: 3, Kind: Abort, Arg: 17})
	out := buf.String()
	if !strings.Contains(out, "tu3") || !strings.Contains(out, "abort") ||
		!strings.Contains(out, "42") {
		t.Errorf("writer output %q", out)
	}
}

func TestMulti(t *testing.T) {
	var a, b Recorder
	m := Multi{&a, &b}
	m.Event(Event{Kind: Begin})
	if a.Count(Begin) != 1 || b.Count(Begin) != 1 {
		t.Error("Multi did not fan out")
	}
}
