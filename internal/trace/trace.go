// Package trace records thread-lifecycle events from the superthreaded
// machine: forks, thread starts, aborts, wrong-thread markings, write-back
// stages, and region boundaries. Attach a Recorder for programmatic
// inspection (tests, tools) or a Writer to stream a human-readable log.
package trace

import (
	"fmt"
	"io"
	"sync"
)

// Kind classifies a machine event.
type Kind uint8

// Thread-lifecycle event kinds.
const (
	Begin       Kind = iota // parallel region opened (TU = head)
	Fork                    // FORK committed (TU = parent; Arg = target PC)
	ThreadStart             // forked thread began execution (Arg = start PC)
	Tsagd                   // TSAG stage complete
	ThreadEnd               // THEND committed; write-back pending
	WBDrain                 // write-back stage started draining
	Retire                  // thread retired (write-back complete)
	Abort                   // ABORT committed by a correct thread
	WrongMark               // thread marked wrong instead of killed
	Kill                    // thread killed (abort kill, self-kill, BEGIN cleanup)
	SeqResume               // aborting thread resumed sequential execution (Arg = PC)
	Halt                    // program completed
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case Begin:
		return "begin"
	case Fork:
		return "fork"
	case ThreadStart:
		return "start"
	case Tsagd:
		return "tsagd"
	case ThreadEnd:
		return "thend"
	case WBDrain:
		return "wb"
	case Retire:
		return "retire"
	case Abort:
		return "abort"
	case WrongMark:
		return "wrong"
	case Kill:
		return "kill"
	case SeqResume:
		return "resume"
	case Halt:
		return "halt"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one machine occurrence.
type Event struct {
	Cycle uint64
	TU    int
	Kind  Kind
	Arg   int64 // kind-specific: a PC for Fork/ThreadStart/SeqResume
}

// String renders the event as one log line.
func (e Event) String() string {
	return fmt.Sprintf("[%8d] tu%d %-6s %d", e.Cycle, e.TU, e.Kind, e.Arg)
}

// Tracer receives machine events. Implementations must be cheap; the
// machine calls Event synchronously from the simulation loop.
type Tracer interface {
	Event(e Event)
}

// Recorder collects events in memory. The zero value records without
// bound; NewRecorder builds one that keeps only the most recent events,
// so long runs can stay attached without growing memory.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	cap    int    // 0 = unbounded
	head   int    // ring start when the buffer has wrapped
	total  uint64 // all-time event count, including overwritten ones
}

// NewRecorder returns a Recorder that retains at most capacity events,
// discarding the oldest once full. capacity <= 0 means unbounded.
func NewRecorder(capacity int) *Recorder {
	if capacity < 0 {
		capacity = 0
	}
	return &Recorder{cap: capacity}
}

// Event implements Tracer.
func (r *Recorder) Event(e Event) {
	r.mu.Lock()
	r.total++
	if r.cap > 0 && len(r.events) == r.cap {
		r.events[r.head] = e
		r.head = (r.head + 1) % r.cap
	} else {
		r.events = append(r.events, e)
	}
	r.mu.Unlock()
}

// Events returns a copy of the retained events in chronological order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.head:]...)
	out = append(out, r.events[:r.head]...)
	return out
}

// Total returns the all-time event count, including any events a bounded
// Recorder has already discarded.
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Count returns how many retained events are of the given kind.
func (r *Recorder) Count(k Kind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Writer streams events as text lines.
type Writer struct {
	W io.Writer
}

// Event implements Tracer.
func (w Writer) Event(e Event) {
	fmt.Fprintln(w.W, e.String())
}

// Multi fans an event out to several tracers.
type Multi []Tracer

// Event implements Tracer.
func (m Multi) Event(e Event) {
	for _, t := range m {
		t.Event(e)
	}
}
