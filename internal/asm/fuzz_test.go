package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/memimg"
)

// reverse mnemonic tables for the encoder, built from the parser's own
// tables so the two can never drift apart.
var revOps = func() map[isa.Op]string {
	m := make(map[isa.Op]string)
	for _, tbl := range []map[string]isa.Op{op3Table, fp3Table, opITable, brTable} {
		for name, op := range tbl {
			m[op] = name
		}
	}
	return m
}()

// encodeProgram renders an assembled program back into parser-accepted
// text: every instruction index gets a canonical label (so resolved branch
// targets re-encode as symbolic ones), and the initialized data image is
// re-emitted as one byte-aligned blob of .word directives. Returns an
// error for programs that cannot round-trip (e.g. an Op with no mnemonic).
func encodeProgram(p *isa.Program) (string, error) {
	var sb strings.Builder
	// Data: the bump allocator starts at DataBase, so a single align-1
	// symbol lands exactly there and offsets reproduce absolute addresses.
	img := memimg.New()
	LoadData(p, img)
	var end uint64
	for _, seg := range p.Data {
		if seg.Addr < DataBase {
			return "", fmt.Errorf("data below DataBase: %#x", seg.Addr)
		}
		if e := seg.Addr + uint64(len(seg.Bytes)); e > end {
			end = e
		}
	}
	if end > 0 {
		fmt.Fprintf(&sb, ".data blob %d 1\n", end-DataBase)
		for addr := uint64(DataBase); addr < end; addr += 8 {
			if v := img.ReadWord(addr); v != 0 {
				fmt.Fprintf(&sb, ".word blob %d %d\n", addr-DataBase, v)
			}
		}
	}
	label := func(target int64) (string, error) {
		if target < 0 || target > int64(len(p.Insts)) {
			return "", fmt.Errorf("control target %d out of range", target)
		}
		return fmt.Sprintf("L%d", target), nil
	}
	for pc, in := range p.Insts {
		fmt.Fprintf(&sb, "L%d:\n", pc)
		op := in.Op
		switch {
		case op == isa.NOP || op == isa.HALT || op == isa.TSAGD ||
			op == isa.THEND || op == isa.ABORT:
			fmt.Fprintf(&sb, "  %s\n", strings.ToLower(op.String()))
		case op == isa.LI:
			fmt.Fprintf(&sb, "  li r%d, %d\n", in.Rd, in.Imm)
		case op == isa.FLI:
			f := math.Float64frombits(uint64(in.Imm))
			fmt.Fprintf(&sb, "  fli f%d, %s\n", in.Rd, strconv.FormatFloat(f, 'g', -1, 64))
		case op == isa.JMP, op == isa.FORK:
			l, err := label(in.Imm)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "  %s %s\n", strings.ToLower(op.String()), l)
		case op == isa.JAL:
			l, err := label(in.Imm)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "  jal r%d, %s\n", in.Rd, l)
		case op == isa.JR:
			fmt.Fprintf(&sb, "  jr r%d\n", in.Rs1)
		case op == isa.BEGIN:
			var regs []string
			for r := 0; r < isa.NumIntRegs; r++ {
				if in.Imm&(1<<uint(r)) != 0 {
					regs = append(regs, fmt.Sprintf("r%d", r))
				}
			}
			fmt.Fprintf(&sb, "  begin %s\n", strings.Join(regs, ", "))
		case op == isa.TSA:
			fmt.Fprintf(&sb, "  tsa %d(r%d)\n", in.Imm, in.Rs1)
		case op == isa.TST:
			fmt.Fprintf(&sb, "  tst r%d, %d(r%d)\n", in.Rs2, in.Imm, in.Rs1)
		case op == isa.LD:
			fmt.Fprintf(&sb, "  ld r%d, %d(r%d)\n", in.Rd, in.Imm, in.Rs1)
		case op == isa.FLD:
			fmt.Fprintf(&sb, "  fld f%d, %d(r%d)\n", in.Rd, in.Imm, in.Rs1)
		case op == isa.ST:
			fmt.Fprintf(&sb, "  st r%d, %d(r%d)\n", in.Rs2, in.Imm, in.Rs1)
		case op == isa.FST:
			fmt.Fprintf(&sb, "  fst f%d, %d(r%d)\n", in.Rs2, in.Imm, in.Rs1)
		case op.IsBranch():
			l, err := label(in.Imm)
			if err != nil {
				return "", err
			}
			mn, ok := revOps[op]
			if !ok {
				return "", fmt.Errorf("no mnemonic for branch %v", op)
			}
			fmt.Fprintf(&sb, "  %s r%d, r%d, %s\n", mn, in.Rs1, in.Rs2, l)
		default:
			mn, ok := revOps[op]
			if !ok {
				return "", fmt.Errorf("no mnemonic for %v", op)
			}
			pre := "r"
			if _, fp := fp3Table[mn]; fp {
				pre = "f"
			}
			if _, immForm := opITable[mn]; immForm {
				fmt.Fprintf(&sb, "  %s r%d, r%d, %d\n", mn, in.Rd, in.Rs1, in.Imm)
			} else {
				fmt.Fprintf(&sb, "  %s %s%d, %s%d, %s%d\n", mn, pre, in.Rd, pre, in.Rs1, pre, in.Rs2)
			}
		}
	}
	// A label may legally point one past the last instruction.
	fmt.Fprintf(&sb, "L%d:\n", len(p.Insts))
	return sb.String(), nil
}

// FuzzAsmParse drives the parse -> encode -> parse round-trip: any source
// the parser accepts must disassemble into text the parser accepts again,
// producing the identical instruction stream and initial memory image.
func FuzzAsmParse(f *testing.F) {
	seeds := []string{
		"; empty program with a comment\n",
		"li r1, 42\nhalt\n",
		".data arr 64\n.word arr 0 7\n.word arr 8 -9\nli r1, &arr\nld r2, 0(r1)\nst r2, 8(r1)\nhalt\n",
		"loop:\n  addi r1, r1, 1\n  blt r1, r2, loop\n  halt\n",
		"begin r1, r2, r3\nbody: add r9, r1, r0\naddi r1, r1, 1\nfork body\ntsa 0(r5)\ntsagd\ntst r9, 0(r5)\nblt r1, r2, cont\nabort\njmp after\ncont: thend\nafter: halt\n",
		"fli f1, 2.5\nfadd f2, f1, f1\nfst f2, 0(r1)\nfld f3, 0(r1)\nhalt\n",
		"jal r31, sub\nhalt\nsub: jr r31\n",
		".data d 16 8\n.float d 0 3.25\nli r1, &d\nfld f1, 0(r1)\nhalt\n",
		"x: y: z: nop ; stacked labels\njmp x\n",
		"srai r3, r2, 0x1f\nsltu r4, r3, r2\nrem r5, r4, r2\nhalt\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := Parse(src)
		if err != nil {
			return // invalid input: nothing to round-trip
		}
		text, err := encodeProgram(p1)
		if err != nil {
			t.Fatalf("accepted program failed to encode: %v\nsource:\n%s", err, src)
		}
		p2, err := Parse(text)
		if err != nil {
			t.Fatalf("re-parse of encoded program failed: %v\nencoded:\n%s", err, text)
		}
		if len(p1.Insts) != len(p2.Insts) {
			t.Fatalf("instruction count %d -> %d\nencoded:\n%s", len(p1.Insts), len(p2.Insts), text)
		}
		for i := range p1.Insts {
			if p1.Insts[i] != p2.Insts[i] {
				t.Fatalf("inst %d: %+v -> %+v\nencoded:\n%s", i, p1.Insts[i], p2.Insts[i], text)
			}
		}
		if p1.Entry != p2.Entry {
			t.Fatalf("entry %d -> %d", p1.Entry, p2.Entry)
		}
		img1, img2 := memimg.New(), memimg.New()
		LoadData(p1, img1)
		LoadData(p2, img2)
		if c1, c2 := img1.Checksum(), img2.Checksum(); c1 != c2 {
			t.Fatalf("data image checksum %#x -> %#x\nencoded:\n%s", c1, c2, text)
		}
	})
}
