package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func mustParse(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBasicProgram(t *testing.T) {
	p := mustParse(t, `
		; a comment
		li   r1, 10     // another comment
		li   r2, 0x20   # and another
		add  r3, r1, r2
		halt
	`)
	if len(p.Insts) != 4 {
		t.Fatalf("got %d instructions", len(p.Insts))
	}
	if p.Insts[1].Imm != 0x20 {
		t.Errorf("hex immediate = %d", p.Insts[1].Imm)
	}
	if p.Insts[2].Op != isa.ADD || p.Insts[2].Rd != 3 {
		t.Errorf("add parsed as %+v", p.Insts[2])
	}
}

func TestParseLabelsAndBranches(t *testing.T) {
	p := mustParse(t, `
		li r1, 0
		li r2, 5
	loop:
		addi r1, r1, 1
		blt  r1, r2, loop
		jmp  done
		nop
	done: halt
	`)
	if p.Symbols["loop"] != 2 {
		t.Errorf("loop = %d", p.Symbols["loop"])
	}
	// The branch targets loop (2); jmp targets done (6).
	if p.Insts[3].Imm != 2 {
		t.Errorf("branch target = %d", p.Insts[3].Imm)
	}
	if p.Insts[4].Imm != 6 {
		t.Errorf("jmp target = %d", p.Insts[4].Imm)
	}
}

func TestParseDataDirectives(t *testing.T) {
	p := mustParse(t, `
		.data  arr 64 64
		.word  arr 0 42
		.word  arr 8 -7
		.float arr 16 2.5
		li r1, &arr
		ld r2, 0(r1)
		halt
	`)
	base := uint64(p.Symbols["arr"])
	if base == 0 || base%64 != 0 {
		t.Fatalf("arr base = %#x", base)
	}
	if p.Insts[0].Imm != int64(base) {
		t.Errorf("&arr = %d, want %d", p.Insts[0].Imm, base)
	}
	// Data segments contain the initialized values.
	found := false
	for _, seg := range p.Data {
		if seg.Addr <= base && base < seg.Addr+uint64(len(seg.Bytes)) {
			found = true
		}
	}
	if !found {
		t.Error("initialized data not in any segment")
	}
}

func TestParseMemoryOperands(t *testing.T) {
	p := mustParse(t, `
		ld  r1, 8(r2)
		ld  r1, (r2)
		st  r3, -16(r4)
		fld f1, 0(r5)
		fst f2, 24(r6)
		tst r7, 0(r8)
		tsa 32(r9)
		halt
	`)
	if p.Insts[0].Imm != 8 || p.Insts[0].Rs1 != 2 {
		t.Errorf("ld = %+v", p.Insts[0])
	}
	if p.Insts[1].Imm != 0 {
		t.Errorf("(r2) offset = %d", p.Insts[1].Imm)
	}
	if p.Insts[2].Imm != -16 || p.Insts[2].Rs2 != 3 {
		t.Errorf("st = %+v", p.Insts[2])
	}
	if p.Insts[3].Op != isa.FLD || p.Insts[4].Op != isa.FST {
		t.Error("fp memory ops wrong")
	}
	if p.Insts[5].Op != isa.TST || p.Insts[6].Op != isa.TSA || p.Insts[6].Imm != 32 {
		t.Error("target store ops wrong")
	}
}

func TestParseSTAOps(t *testing.T) {
	p := mustParse(t, `
		begin r1, r2, r3
	body:
		fork  body
		tsagd
		thend
		abort
		halt
	`)
	if p.Insts[0].Op != isa.BEGIN || p.Insts[0].Imm != (1<<1|1<<2|1<<3) {
		t.Errorf("begin = %+v", p.Insts[0])
	}
	if p.Insts[1].Op != isa.FORK || p.Insts[1].Imm != 1 {
		t.Errorf("fork = %+v", p.Insts[1])
	}
}

func TestParseFPRegisters(t *testing.T) {
	p := mustParse(t, `
		fli  f1, 1.5
		fadd f2, f1, f1
		halt
	`)
	_, got := isa.Eval(p.Insts[0], 0, 0, 0, 0)
	if got != 1.5 {
		t.Errorf("fli value = %g", got)
	}
	if p.Insts[1].Op != isa.FADD {
		t.Error("fadd wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",      // unknown mnemonic
		"add r1, r2",        // operand count
		"add r1, r2, r40",   // bad register
		"ld r1, 8[r2]",      // bad memory operand
		"li r1, &nope",      // unknown symbol
		"beq r1, r2, 5bad",  // bad label name
		".data x -4",        // bad size
		".word nope 0 1",    // unknown data symbol
		"li r1, zzz",        // bad immediate
		"fadd f1, r1, f2",   // wrong register file
		"jmp nowhere\nhalt", // undefined label (caught at Build)
		"x: nop\nx: nop",    // duplicate label
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseRoundtripThroughDisassembler(t *testing.T) {
	// Parse a program, disassemble every instruction, re-parse the
	// disassembly of the register-register subset, and compare.
	src := `
		li  r1, 7
		add r2, r1, r1
		sub r3, r2, r1
		mul r4, r3, r3
		halt
	`
	p1 := mustParse(t, src)
	var sb strings.Builder
	for _, in := range p1.Insts {
		sb.WriteString(in.String())
		sb.WriteByte('\n')
	}
	p2 := mustParse(t, sb.String())
	if len(p1.Insts) != len(p2.Insts) {
		t.Fatalf("lengths differ: %d vs %d", len(p1.Insts), len(p2.Insts))
	}
	for i := range p1.Insts {
		if p1.Insts[i] != p2.Insts[i] {
			t.Errorf("inst %d: %v vs %v", i, p1.Insts[i], p2.Insts[i])
		}
	}
}
