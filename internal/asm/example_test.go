package asm_test

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/interp"
	"repro/internal/isa"
)

// ExampleParse assembles a textual program and runs it on the functional
// interpreter.
func ExampleParse() {
	prog, err := asm.Parse(`
		.data counter 8
		li  r1, &counter
		li  r2, 0
		li  r3, 5
	loop:
		addi r2, r2, 1
		blt  r2, r3, loop
		st   r2, 0(r1)
		halt
	`)
	if err != nil {
		panic(err)
	}
	res, err := interp.Run(prog)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Mem.ReadWord(uint64(prog.Symbols["counter"])))
	// Output: 5
}

// ExampleBuilder shows the programmatic path to the same program.
func ExampleBuilder() {
	b := asm.New()
	cnt := b.Alloc("counter", 8, 0)
	b.Li(1, int64(cnt))
	b.Li(2, 41)
	b.OpI(isa.ADDI, 2, 2, 1)
	b.St(2, 0, 1)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	res, _ := interp.Run(p)
	fmt.Println(res.Mem.ReadWord(cnt))
	// Output: 42
}
