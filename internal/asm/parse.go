package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Parse assembles textual assembly into a program. The syntax mirrors the
// disassembler output plus data directives:
//
//	; comment                      — also "//" and "#"
//	.data  name size [align]       — allocate data, record symbol
//	.word  name offset value       — initialize a 64-bit word
//	.float name offset value       — initialize a float64
//	label:
//	    li    r1, 42               — also "li r1, &name" (symbol address)
//	    add   r3, r1, r2
//	    addi  r3, r1, -8
//	    ld    r2, 8(r1)            — fld/fst use f-registers: fld f1, 0(r2)
//	    st    r2, 8(r1)            — store r2 to mem[r1+8]
//	    beq   r1, r2, label
//	    jmp   label / jal r31, label / jr r1
//	    begin r1, r2, r3           — forward mask
//	    fork  label
//	    tsa   0(r5) / tst r2, 0(r5) / tsagd / thend / abort
//	    fli   f1, 2.5
//	    halt / nop
//
// Integer registers are r0-r31, FP registers f0-f31. Immediates may be
// decimal or 0x-hexadecimal.
func Parse(src string) (*isa.Program, error) {
	b := New()
	p := &parser{b: b, syms: make(map[string]uint64)}
	for lineno, raw := range strings.Split(src, "\n") {
		if err := p.line(raw); err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", lineno+1, err)
		}
	}
	return b.Build()
}

type parser struct {
	b    *Builder
	syms map[string]uint64 // data symbols for &name references
}

func (p *parser) line(raw string) error {
	// Strip comments.
	for _, marker := range []string{";", "//", "#"} {
		if i := strings.Index(raw, marker); i >= 0 {
			raw = raw[:i]
		}
	}
	s := strings.TrimSpace(raw)
	if s == "" {
		return nil
	}
	// Labels (possibly followed by an instruction on the same line).
	for {
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		name := strings.TrimSpace(s[:i])
		if !validIdent(name) {
			return fmt.Errorf("bad label %q", name)
		}
		p.b.Label(name)
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return nil
		}
	}
	if strings.HasPrefix(s, ".") {
		// Directives take space-separated operands.
		fields := strings.Fields(s)
		op := strings.ToLower(fields[0])
		args := fields[1:]
		switch op {
		case ".data":
			return p.dataDirective(args)
		case ".word", ".float":
			return p.initDirective(op, args)
		}
		return fmt.Errorf("unknown directive %q", op)
	}
	fields := splitOperands(s)
	op := strings.ToLower(fields[0])
	args := fields[1:]
	return p.instruction(op, args)
}

// splitOperands tokenizes "op a, b, c" into ["op","a","b","c"].
func splitOperands(s string) []string {
	var out []string
	mn := s
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mn, s = s[:i], strings.TrimSpace(s[i+1:])
		out = append(out, mn)
		for _, part := range strings.Split(s, ",") {
			part = strings.TrimSpace(part)
			if part != "" {
				out = append(out, part)
			}
		}
		return out
	}
	return []string{mn}
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (p *parser) dataDirective(args []string) error {
	if len(args) < 2 || len(args) > 3 {
		return fmt.Errorf(".data wants: name size [align]")
	}
	name := args[0]
	if !validIdent(name) {
		return fmt.Errorf("bad data symbol %q", name)
	}
	size, err := strconv.ParseInt(args[1], 0, 64)
	if err != nil || size <= 0 {
		return fmt.Errorf("bad size %q", args[1])
	}
	align := int64(0)
	if len(args) == 3 {
		align, err = strconv.ParseInt(args[2], 0, 64)
		if err != nil || align < 0 {
			return fmt.Errorf("bad alignment %q", args[2])
		}
	}
	p.syms[name] = p.b.Alloc(name, int(size), int(align))
	return nil
}

func (p *parser) initDirective(op string, args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("%s wants: name offset value", op)
	}
	base, ok := p.syms[args[0]]
	if !ok {
		return fmt.Errorf("unknown data symbol %q", args[0])
	}
	off, err := strconv.ParseInt(args[1], 0, 64)
	if err != nil || off < 0 {
		return fmt.Errorf("bad offset %q", args[1])
	}
	if op == ".float" {
		v, err := strconv.ParseFloat(args[2], 64)
		if err != nil {
			return fmt.Errorf("bad float %q", args[2])
		}
		p.b.InitFloat(base+uint64(off), v)
		return nil
	}
	v, err := strconv.ParseInt(args[2], 0, 64)
	if err != nil {
		return fmt.Errorf("bad value %q", args[2])
	}
	p.b.InitWord(base+uint64(off), v)
	return nil
}

func (p *parser) reg(s string, fp bool) (int, error) {
	want := byte('r')
	if fp {
		want = 'f'
	}
	if len(s) < 2 || (s[0] != want && s[0] != want-32) {
		return 0, fmt.Errorf("expected %c-register, got %q", want, s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumIntRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return n, nil
}

func (p *parser) imm(s string) (int64, error) {
	if strings.HasPrefix(s, "&") {
		base, ok := p.syms[s[1:]]
		if !ok {
			return 0, fmt.Errorf("unknown data symbol %q", s[1:])
		}
		return int64(base), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

// memOperand parses "off(rN)".
func (p *parser) memOperand(s string) (int64, int, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("expected off(reg), got %q", s)
	}
	off := int64(0)
	if open > 0 {
		var err error
		off, err = p.imm(s[:open])
		if err != nil {
			return 0, 0, err
		}
	}
	r, err := p.reg(s[open+1:len(s)-1], false)
	return off, r, err
}

var op3Table = map[string]isa.Op{
	"add": isa.ADD, "sub": isa.SUB, "mul": isa.MUL, "div": isa.DIV,
	"rem": isa.REM, "and": isa.AND, "or": isa.OR, "xor": isa.XOR,
	"sll": isa.SLL, "srl": isa.SRL, "sra": isa.SRA, "slt": isa.SLT,
	"sltu": isa.SLTU,
}

var fp3Table = map[string]isa.Op{
	"fadd": isa.FADD, "fsub": isa.FSUB, "fmul": isa.FMUL, "fdiv": isa.FDIV,
	"fmin": isa.FMIN, "fmax": isa.FMAX,
}

var opITable = map[string]isa.Op{
	"addi": isa.ADDI, "andi": isa.ANDI, "ori": isa.ORI, "xori": isa.XORI,
	"slli": isa.SLLI, "srli": isa.SRLI, "srai": isa.SRAI, "slti": isa.SLTI,
}

var brTable = map[string]isa.Op{
	"beq": isa.BEQ, "bne": isa.BNE, "blt": isa.BLT, "bge": isa.BGE,
	"bltu": isa.BLTU, "bgeu": isa.BGEU,
}

func (p *parser) instruction(op string, args []string) error {
	argn := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d operands, got %d", op, n, len(args))
		}
		return nil
	}
	if o, ok := op3Table[op]; ok {
		if err := argn(3); err != nil {
			return err
		}
		rd, err1 := p.reg(args[0], false)
		rs1, err2 := p.reg(args[1], false)
		rs2, err3 := p.reg(args[2], false)
		if err := firstErr(err1, err2, err3); err != nil {
			return err
		}
		p.b.Op3(o, rd, rs1, rs2)
		return nil
	}
	if o, ok := fp3Table[op]; ok {
		if err := argn(3); err != nil {
			return err
		}
		rd, err1 := p.reg(args[0], true)
		rs1, err2 := p.reg(args[1], true)
		rs2, err3 := p.reg(args[2], true)
		if err := firstErr(err1, err2, err3); err != nil {
			return err
		}
		p.b.Op3(o, rd, rs1, rs2)
		return nil
	}
	if o, ok := opITable[op]; ok {
		if err := argn(3); err != nil {
			return err
		}
		rd, err1 := p.reg(args[0], false)
		rs1, err2 := p.reg(args[1], false)
		imm, err3 := p.imm(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return err
		}
		p.b.OpI(o, rd, rs1, imm)
		return nil
	}
	if o, ok := brTable[op]; ok {
		if err := argn(3); err != nil {
			return err
		}
		rs1, err1 := p.reg(args[0], false)
		rs2, err2 := p.reg(args[1], false)
		if err := firstErr(err1, err2); err != nil {
			return err
		}
		if !validIdent(args[2]) {
			return fmt.Errorf("bad branch target %q", args[2])
		}
		p.b.Br(o, rs1, rs2, args[2])
		return nil
	}
	switch op {
	case "li":
		if err := argn(2); err != nil {
			return err
		}
		rd, err1 := p.reg(args[0], false)
		imm, err2 := p.imm(args[1])
		if err := firstErr(err1, err2); err != nil {
			return err
		}
		p.b.Li(rd, imm)
	case "fli":
		if err := argn(2); err != nil {
			return err
		}
		rd, err := p.reg(args[0], true)
		if err != nil {
			return err
		}
		v, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return fmt.Errorf("bad float %q", args[1])
		}
		p.b.Fli(rd, v)
	case "ld", "fld":
		if err := argn(2); err != nil {
			return err
		}
		rd, err1 := p.reg(args[0], op == "fld")
		off, rs1, err2 := p.memOperand(args[1])
		if err := firstErr(err1, err2); err != nil {
			return err
		}
		if op == "ld" {
			p.b.Ld(rd, off, rs1)
		} else {
			p.b.Fld(rd, off, rs1)
		}
	case "st", "fst", "tst":
		if err := argn(2); err != nil {
			return err
		}
		rs2, err1 := p.reg(args[0], op == "fst")
		off, rs1, err2 := p.memOperand(args[1])
		if err := firstErr(err1, err2); err != nil {
			return err
		}
		switch op {
		case "st":
			p.b.St(rs2, off, rs1)
		case "fst":
			p.b.Fst(rs2, off, rs1)
		case "tst":
			p.b.Tst(rs2, off, rs1)
		}
	case "tsa":
		if err := argn(1); err != nil {
			return err
		}
		off, rs1, err := p.memOperand(args[0])
		if err != nil {
			return err
		}
		p.b.Tsa(off, rs1)
	case "jmp":
		if err := argn(1); err != nil {
			return err
		}
		p.b.Jmp(args[0])
	case "jal":
		if err := argn(2); err != nil {
			return err
		}
		rd, err := p.reg(args[0], false)
		if err != nil {
			return err
		}
		p.b.Jal(rd, args[1])
	case "jr":
		if err := argn(1); err != nil {
			return err
		}
		rs1, err := p.reg(args[0], false)
		if err != nil {
			return err
		}
		p.b.Jr(rs1)
	case "begin":
		regs := make([]int, 0, len(args))
		for _, a := range args {
			r, err := p.reg(a, false)
			if err != nil {
				return err
			}
			regs = append(regs, r)
		}
		p.b.Begin(regs...)
	case "fork":
		if err := argn(1); err != nil {
			return err
		}
		p.b.Fork(args[0])
	case "tsagd":
		p.b.Tsagd()
	case "thend":
		p.b.Thend()
	case "abort":
		p.b.Abort()
	case "halt":
		p.b.Halt()
	case "nop":
		p.b.Nop()
	default:
		return fmt.Errorf("unknown mnemonic %q", op)
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
