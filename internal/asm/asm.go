// Package asm provides a programmatic two-pass assembler for the simulator
// ISA. Workloads are written in Go against the Builder API: instructions
// are emitted in order, control-flow targets are named labels fixed up at
// Build time, and data memory is laid out through a bump allocator with an
// initialized image.
package asm

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/memimg"
)

// DataBase is the first byte address handed out by the data allocator.
// Address zero is left unmapped so that null-pointer chasing in workloads
// reads zeros instead of aliasing real data.
const DataBase = 0x10000

// Builder accumulates instructions, labels, and data for one program.
type Builder struct {
	insts   []isa.Inst
	labels  map[string]int
	fixups  []fixup
	img     *memimg.Image
	symbols map[string]int64
	brk     uint64
	errs    []error
}

type fixup struct {
	pc    int
	label string
}

// New returns an empty Builder.
func New() *Builder {
	return &Builder{
		labels:  make(map[string]int),
		symbols: make(map[string]int64),
		img:     memimg.New(),
		brk:     DataBase,
	}
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// PC returns the index of the next instruction to be emitted.
func (b *Builder) PC() int { return len(b.insts) }

// Label defines name at the current PC. Redefinition is an error.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errf("asm: label %q redefined", name)
		return
	}
	b.labels[name] = len(b.insts)
}

func reg(r int) uint8 { return uint8(r) }

func (b *Builder) checkReg(rs ...int) {
	for _, r := range rs {
		if r < 0 || r >= isa.NumIntRegs {
			b.errf("asm: register %d out of range at pc %d", r, len(b.insts))
		}
	}
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Inst) { b.insts = append(b.insts, in) }

func (b *Builder) emitTo(in isa.Inst, label string) {
	b.fixups = append(b.fixups, fixup{pc: len(b.insts), label: label})
	b.insts = append(b.insts, in)
}

// Op3 emits a three-register operation rd = rs1 op rs2.
func (b *Builder) Op3(op isa.Op, rd, rs1, rs2 int) {
	b.checkReg(rd, rs1, rs2)
	b.Emit(isa.Inst{Op: op, Rd: reg(rd), Rs1: reg(rs1), Rs2: reg(rs2)})
}

// OpI emits a register-immediate operation rd = rs1 op imm.
func (b *Builder) OpI(op isa.Op, rd, rs1 int, imm int64) {
	b.checkReg(rd, rs1)
	b.Emit(isa.Inst{Op: op, Rd: reg(rd), Rs1: reg(rs1), Imm: imm})
}

// Li loads a 64-bit immediate into integer register rd.
func (b *Builder) Li(rd int, v int64) {
	b.checkReg(rd)
	b.Emit(isa.Inst{Op: isa.LI, Rd: reg(rd), Imm: v})
}

// Fli loads a float64 immediate into FP register frd.
func (b *Builder) Fli(frd int, v float64) {
	b.checkReg(frd)
	b.Emit(isa.Inst{Op: isa.FLI, Rd: reg(frd), Imm: isa.FloatImm(v)})
}

// Ld emits rd = mem[rs1+off] (integer file).
func (b *Builder) Ld(rd int, off int64, rs1 int) {
	b.checkReg(rd, rs1)
	b.Emit(isa.Inst{Op: isa.LD, Rd: reg(rd), Rs1: reg(rs1), Imm: off})
}

// St emits mem[rs1+off] = rs2 (integer file).
func (b *Builder) St(rs2 int, off int64, rs1 int) {
	b.checkReg(rs2, rs1)
	b.Emit(isa.Inst{Op: isa.ST, Rs1: reg(rs1), Rs2: reg(rs2), Imm: off})
}

// Fld emits frd = mem[rs1+off] (FP file).
func (b *Builder) Fld(frd int, off int64, rs1 int) {
	b.checkReg(frd, rs1)
	b.Emit(isa.Inst{Op: isa.FLD, Rd: reg(frd), Rs1: reg(rs1), Imm: off})
}

// Fst emits mem[rs1+off] = frs2 (FP file).
func (b *Builder) Fst(frs2 int, off int64, rs1 int) {
	b.checkReg(frs2, rs1)
	b.Emit(isa.Inst{Op: isa.FST, Rs1: reg(rs1), Rs2: reg(frs2), Imm: off})
}

// Br emits a conditional branch to label.
func (b *Builder) Br(op isa.Op, rs1, rs2 int, label string) {
	if !op.IsBranch() {
		b.errf("asm: Br with non-branch op %v", op)
	}
	b.checkReg(rs1, rs2)
	b.emitTo(isa.Inst{Op: op, Rs1: reg(rs1), Rs2: reg(rs2)}, label)
}

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) { b.emitTo(isa.Inst{Op: isa.JMP}, label) }

// Jal emits a jump-and-link to label, writing the return PC to rd.
func (b *Builder) Jal(rd int, label string) {
	b.checkReg(rd)
	b.emitTo(isa.Inst{Op: isa.JAL, Rd: reg(rd)}, label)
}

// Jr emits an indirect jump to the instruction index in rs1.
func (b *Builder) Jr(rs1 int) {
	b.checkReg(rs1)
	b.Emit(isa.Inst{Op: isa.JR, Rs1: reg(rs1)})
}

// Begin opens a parallel region. regs lists the integer registers forwarded
// to a newly forked thread (the continuation variables); each costs two
// cycles of transfer time at fork.
func (b *Builder) Begin(regs ...int) {
	var mask int64
	for _, r := range regs {
		b.checkReg(r)
		mask |= 1 << uint(r)
	}
	b.Emit(isa.Inst{Op: isa.BEGIN, Imm: mask})
}

// Fork emits a thread fork targeting label.
func (b *Builder) Fork(label string) { b.emitTo(isa.Inst{Op: isa.FORK}, label) }

// Tsagd marks the end of the TSAG stage.
func (b *Builder) Tsagd() { b.Emit(isa.Inst{Op: isa.TSAGD}) }

// Tsa announces target-store address rs1+off to downstream threads.
func (b *Builder) Tsa(off int64, rs1 int) {
	b.checkReg(rs1)
	b.Emit(isa.Inst{Op: isa.TSA, Rs1: reg(rs1), Imm: off})
}

// Tst emits a target store mem[rs1+off] = rs2, forwarded downstream.
func (b *Builder) Tst(rs2 int, off int64, rs1 int) {
	b.checkReg(rs2, rs1)
	b.Emit(isa.Inst{Op: isa.TST, Rs1: reg(rs1), Rs2: reg(rs2), Imm: off})
}

// Thend ends the iteration body (write-back stage follows).
func (b *Builder) Thend() { b.Emit(isa.Inst{Op: isa.THEND}) }

// Abort kills (or, under wrong-thread execution, marks wrong) all successor
// threads and ends the parallel region.
func (b *Builder) Abort() { b.Emit(isa.Inst{Op: isa.ABORT}) }

// Halt terminates the program.
func (b *Builder) Halt() { b.Emit(isa.Inst{Op: isa.HALT}) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.Emit(isa.Inst{Op: isa.NOP}) }

// Alloc reserves size bytes of data memory aligned to align (which must be
// a power of two; 0 means 64-byte alignment) and records name as a symbol.
func (b *Builder) Alloc(name string, size int, align int) uint64 {
	if align == 0 {
		align = 64
	}
	if align&(align-1) != 0 {
		b.errf("asm: Alloc %q alignment %d not a power of two", name, align)
		align = 64
	}
	a := uint64(align)
	b.brk = (b.brk + a - 1) &^ (a - 1)
	addr := b.brk
	b.brk += uint64(size)
	if name != "" {
		if _, dup := b.symbols[name]; dup {
			b.errf("asm: data symbol %q redefined", name)
		}
		b.symbols[name] = int64(addr)
	}
	return addr
}

// InitWord sets the initial 64-bit contents of data memory at addr.
func (b *Builder) InitWord(addr uint64, v int64) { b.img.WriteWord(addr, v) }

// InitFloat sets the initial float64 contents of data memory at addr.
func (b *Builder) InitFloat(addr uint64, f float64) { b.img.WriteFloat(addr, f) }

// InitBytes sets initial raw bytes at addr.
func (b *Builder) InitBytes(addr uint64, raw []byte) { b.img.SetBytes(addr, raw) }

// Image exposes the initial data image (useful to reference interpreters).
func (b *Builder) Image() *memimg.Image { return b.img }

// Build resolves label fixups and returns the assembled program. All labels
// referenced by emitted instructions must be defined.
func (b *Builder) Build() (*isa.Program, error) {
	for _, fx := range b.fixups {
		target, ok := b.labels[fx.label]
		if !ok {
			b.errf("asm: undefined label %q at pc %d", fx.label, fx.pc)
			continue
		}
		b.insts[fx.pc].Imm = int64(target)
	}
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("asm: %d errors, first: %w", len(b.errs), b.errs[0])
	}
	syms := make(map[string]int64, len(b.symbols)+len(b.labels))
	for k, v := range b.symbols {
		syms[k] = v
	}
	for k, v := range b.labels {
		if _, clash := syms[k]; clash {
			return nil, fmt.Errorf("asm: symbol %q defined as both label and data", k)
		}
		syms[k] = int64(v)
	}
	p := &isa.Program{
		Insts:   append([]isa.Inst(nil), b.insts...),
		Symbols: syms,
	}
	// Export the initialized image as page-granular data segments.
	for pn := uint64(0); pn*memimg.PageSize < b.brk+memimg.PageSize; pn++ {
		raw := b.img.ReadRange(pn*memimg.PageSize, memimg.PageSize)
		if allZero(raw) {
			continue
		}
		p.Data = append(p.Data, isa.DataSeg{Addr: pn * memimg.PageSize, Bytes: raw})
	}
	return p, nil
}

func allZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

// LoadData initializes img with a program's data segments.
func LoadData(p *isa.Program, img *memimg.Image) {
	for _, seg := range p.Data {
		img.SetBytes(seg.Addr, seg.Bytes)
	}
}
