package asm

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/memimg"
)

func TestLabelsResolve(t *testing.T) {
	b := New()
	b.Li(1, 0)
	b.Label("loop")
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Br(isa.BLT, 1, 2, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[2].Imm != 1 {
		t.Errorf("branch target = %d, want 1", p.Insts[2].Imm)
	}
	if p.Symbols["loop"] != 1 {
		t.Errorf("symbol loop = %d", p.Symbols["loop"])
	}
}

func TestForwardLabel(t *testing.T) {
	b := New()
	b.Jmp("end")
	b.Nop()
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Imm != 2 {
		t.Errorf("forward jump target = %d, want 2", p.Insts[0].Imm)
	}
}

func TestUndefinedLabelFails(t *testing.T) {
	b := New()
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("undefined label accepted")
	}
}

func TestDuplicateLabelFails(t *testing.T) {
	b := New()
	b.Label("x")
	b.Nop()
	b.Label("x")
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate label accepted")
	}
}

func TestRegisterRangeChecked(t *testing.T) {
	b := New()
	b.Op3(isa.ADD, 32, 0, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("out-of-range register accepted")
	}
}

func TestBrRejectsNonBranch(t *testing.T) {
	b := New()
	b.Label("l")
	b.Br(isa.ADD, 1, 2, "l")
	if _, err := b.Build(); err == nil {
		t.Fatal("Br with ADD accepted")
	}
}

func TestAllocAlignmentAndSymbols(t *testing.T) {
	b := New()
	a1 := b.Alloc("arr1", 100, 0)
	a2 := b.Alloc("arr2", 8, 0)
	if a1%64 != 0 || a2%64 != 0 {
		t.Errorf("allocations not 64-byte aligned: %#x %#x", a1, a2)
	}
	if a2 < a1+100 {
		t.Error("allocations overlap")
	}
	if a1 < DataBase {
		t.Errorf("allocation below DataBase: %#x", a1)
	}
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if uint64(p.Symbols["arr1"]) != a1 || uint64(p.Symbols["arr2"]) != a2 {
		t.Error("data symbols not recorded")
	}
}

func TestAllocCustomAlignment(t *testing.T) {
	b := New()
	a := b.Alloc("page", 10, 4096)
	if a%4096 != 0 {
		t.Errorf("4096 alignment violated: %#x", a)
	}
	b.Alloc("bad", 1, 3) // not a power of two
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("non-power-of-two alignment accepted")
	}
}

func TestDuplicateDataSymbolFails(t *testing.T) {
	b := New()
	b.Alloc("d", 8, 0)
	b.Alloc("d", 8, 0)
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate data symbol accepted")
	}
}

func TestLabelDataSymbolClash(t *testing.T) {
	b := New()
	b.Alloc("x", 8, 0)
	b.Label("x")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("label/data symbol clash accepted")
	}
}

func TestDataRoundtrip(t *testing.T) {
	b := New()
	a := b.Alloc("v", 24, 0)
	b.InitWord(a, 111)
	b.InitWord(a+8, -222)
	b.InitFloat(a+16, 2.5)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	img := memimg.New()
	LoadData(p, img)
	if img.ReadWord(a) != 111 || img.ReadWord(a+8) != -222 || img.ReadFloat(a+16) != 2.5 {
		t.Error("data image roundtrip failed")
	}
}

func TestBeginMask(t *testing.T) {
	b := New()
	b.Begin(1, 3, 5)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(1<<1 | 1<<3 | 1<<5)
	if p.Insts[0].Imm != want {
		t.Errorf("BEGIN mask = %#x, want %#x", p.Insts[0].Imm, want)
	}
}

func TestForkTarget(t *testing.T) {
	b := New()
	b.Label("body")
	b.Fork("body")
	b.Thend()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Op != isa.FORK || p.Insts[0].Imm != 0 {
		t.Errorf("fork inst = %+v", p.Insts[0])
	}
}

func TestStoreOperandOrder(t *testing.T) {
	b := New()
	b.St(7, 16, 3) // mem[r3+16] = r7
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := p.Insts[0]
	if in.Rs1 != 3 || in.Rs2 != 7 || in.Imm != 16 {
		t.Errorf("St encoding wrong: %+v", in)
	}
}

func TestBuildIsolatesInsts(t *testing.T) {
	b := New()
	b.Nop()
	b.Halt()
	p, _ := b.Build()
	b.Li(1, 9) // further emission must not disturb the built program
	if len(p.Insts) != 2 {
		t.Error("Build did not copy the instruction slice")
	}
}
