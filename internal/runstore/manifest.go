// Package runstore is the content-addressed archive of completed
// simulation runs that the cross-run analytics (cmd/simql) query. Every
// completed cell — from the experiments harness, stasim, or perfbench —
// archives one Manifest: the configuration hash (derived from the harness
// memoization key), the benchmark, scale, git revision, telemetry run ID,
// wall time, and the full deterministic counter set (stats.Sim), plus
// references to the artifact files (metrics / attribution JSON, span
// journals) the run exported elsewhere.
//
// The archive layout under a root directory is
//
//	runs/
//	  index.jsonl            versioned append-only journal (one manifest per line)
//	  c<cfg-hash>/           one directory per machine configuration
//	    <bench>-s<scale>.json  one manifest per archived cell
//
// The index is written through the same ledger discipline as the harness
// results ledger: a versioned header line, appends flushed per entry, and
// torn-tail truncation on reopen — so archiving is crash-safe and a
// resumed sweep converges on exactly one manifest per cell (Put is
// idempotent). The per-cell manifest files are written atomically
// (temp file + rename) and are the durable, content-addressed record; the
// index exists so queries never have to walk the tree.
package runstore

import (
	"fmt"
	"hash/fnv"
	"os/exec"
	"strings"
	"time"

	"repro/internal/attrib"
	"repro/internal/config"
	"repro/internal/sta"
	"repro/internal/stats"
)

// ManifestVersion is bumped whenever the manifest schema changes shape in
// a way old readers cannot tolerate.
const ManifestVersion = 1

// AttribSummary is the fill-classification totals of a cell that ran with
// attribution attached — enough for the dashboard's fill-class stacks
// without re-reading the full per-PC report.
type AttribSummary struct {
	SpecFills  uint64 `json:"spec_fills"`
	Useful     uint64 `json:"useful"`
	Late       uint64 `json:"late"`
	Useless    uint64 `json:"useless"`
	Polluting  uint64 `json:"polluting"`
	VictimHits uint64 `json:"victim_hits"`
}

// SummarizeAttrib distills a full attribution report into the archived
// summary.
func SummarizeAttrib(rep *attrib.Report) *AttribSummary {
	if rep == nil {
		return nil
	}
	return &AttribSummary{
		SpecFills:  rep.SpecFills.Total(),
		Useful:     rep.Useful.Total(),
		Late:       rep.Late.Total(),
		Useless:    rep.Useless.Total(),
		Polluting:  rep.Polluting.Total(),
		VictimHits: rep.VictimHits,
	}
}

// Manifest is one archived cell: everything cross-run analytics need to
// list, pair, diff, and plot the run without re-simulating it.
type Manifest struct {
	V int `json:"v"`

	// CellKey uniquely names the cell: "<CfgHash>/<bench>-s<scale>". It is
	// the idempotency key — archiving the same cell twice is a no-op.
	CellKey string `json:"cell_key"`

	Bench string `json:"bench"`
	Scale int    `json:"scale"`

	// Config is the paper configuration name when the machine matches one
	// ("orig", "wth-wp-wec", ...), else "custom".
	Config string `json:"config"`
	// CfgHash is the content address of the machine configuration:
	// "c" + 16-hex FNV-64a of the configuration's memo-key rendering. All
	// benchmarks run on the same machine share a CfgHash directory.
	CfgHash string `json:"cfg_hash"`
	// ShortKey is the 8-hex FNV-32a tag of the full memo key that also
	// names this cell's metrics/attribution exports, ledger entries, and
	// telemetry spans ("cfg-xxxxxxxx" there).
	ShortKey string `json:"short_key"`
	// MemoKey is the harness memoization key in full ("bench|{cfg...}"),
	// kept so a manifest can always be traced back to an exact sta.Config.
	MemoKey string `json:"memo_key"`

	// Distilled hardware parameters, for filtering and the cost model.
	TUs         int    `json:"tus"`
	SideKind    string `json:"side_kind"`
	SideEntries int    `json:"side_entries"`
	L1KB        int    `json:"l1_kb"`
	L1Assoc     int    `json:"l1_assoc"`
	L1Block     int    `json:"l1_block"`
	L2KB        int    `json:"l2_kb"`
	MemLat      int    `json:"mem_lat"`

	// Provenance.
	Tool        string  `json:"tool"`               // experiments | stasim | perfbench
	Sampling    string  `json:"sampling,omitempty"` // sampling-regime key for sampled runs ("" = detailed)
	Seed        uint64  `json:"seed,omitempty"`     // chaos seed, when fault injection was active
	GitRev      string  `json:"git_rev,omitempty"`  // repository revision of the producing build
	RunID       string  `json:"run_id,omitempty"`   // telemetry run, when one was attached
	WallSeconds float64 `json:"wall_seconds"`       // wall time of the fresh simulation
	Generated   string  `json:"generated"`          // RFC3339 archive time
	Workers     int     `json:"workers,omitempty"`  // intra-machine worker budget (0 = sequential/auto)

	// The deterministic result.
	Stats    stats.Sim      `json:"stats"`
	MemCheck uint64         `json:"mem_check"`
	Attrib   *AttribSummary `json:"attrib,omitempty"`
	// IntRegs is the architectural integer register file at halt. Together
	// with Stats and MemCheck it reconstructs the full sta.Result, which lets
	// the fleet coordinator answer a cell from the archive without
	// re-simulating. Manifests written before this field existed omit it (and
	// are not eligible for that fast path).
	IntRegs []int64 `json:"int_regs,omitempty"`

	// Artifacts maps artifact kind ("metrics", "attrib", "spans") to the
	// path the producing run exported it at.
	Artifacts map[string]string `json:"artifacts,omitempty"`
}

// IPC returns the archived run's committed instructions per cycle.
func (m *Manifest) IPC() float64 { return m.Stats.IPC() }

// HardwareCostKB is the Pareto cost model: total SRAM devoted to the
// speculation-visible memory hierarchy, in KB — per-TU L1 data arrays plus
// per-TU side buffers plus the shared L2. It deliberately ignores logic
// (identical across the paper's configurations) so the frontier answers
// the paper's own question: what does the WEC buy per KB of storage?
func (m *Manifest) HardwareCostKB() float64 {
	side := float64(m.SideEntries*m.L1Block) / 1024
	if m.SideKind == "none" {
		side = 0
	}
	return float64(m.TUs)*(float64(m.L1KB)+side) + float64(m.L2KB)
}

// MemoKey renders the harness memoization key for a (bench, cfg) pair.
// This is the same rendering internal/harness memoizes and journals under,
// re-exported here so every archive producer derives identical content
// addresses.
func MemoKey(bench string, cfg sta.Config) string {
	return fmt.Sprintf("%s|%+v", bench, cfg)
}

// MemoKeySampled renders the memoization key of a sampled run: the detailed
// key plus the canonical sampling suffix. Sampled and detailed runs of the
// same machine therefore hash to different CfgHash directories and can
// never be silently paired as equals.
func MemoKeySampled(bench string, cfg sta.Config, warmup, measure, period uint64) string {
	return MemoKey(bench, cfg) + "|" + stats.SampleKey(warmup, measure, period)
}

// ShortKey compresses a memo key into the 8-hex-digit tag used by metrics
// and attribution export names, ledger keys, and telemetry span configs.
func ShortKey(memoKey string) string {
	h := fnv.New32a()
	h.Write([]byte(memoKey))
	return fmt.Sprintf("%08x", h.Sum32())
}

// CfgHash content-addresses the configuration part of a memo key (the
// portion after the first '|', i.e. bench-independent).
func CfgHash(memoKey string) string {
	cfg := memoKey
	if i := strings.IndexByte(memoKey, '|'); i >= 0 {
		cfg = memoKey[i+1:]
	}
	h := fnv.New64a()
	h.Write([]byte(cfg))
	return fmt.Sprintf("c%016x", h.Sum64())
}

// CellKey names one archived cell.
func CellKey(bench string, scale int, cfgHash string) string {
	return fmt.Sprintf("%s/%s-s%d", cfgHash, bench, scale)
}

// New builds a manifest for one completed cell. The caller fills the
// provenance fields it knows (Tool, Seed, RunID, WallSeconds, Artifacts)
// on the returned value before Put. A result carrying a sampled estimate
// keys under the sampled memo key automatically.
func New(bench string, scale int, cfg sta.Config, res *sta.Result) *Manifest {
	mk := MemoKey(bench, cfg)
	sampling := ""
	if sp := res.Stats.Sampled; sp != nil {
		mk += "|" + sp.Key()
		sampling = sp.Key()
	}
	ch := CfgHash(mk)
	name := "custom"
	if n, ok := config.Infer(cfg); ok {
		name = string(n)
	}
	return &Manifest{
		V:           ManifestVersion,
		CellKey:     CellKey(bench, scale, ch),
		Bench:       bench,
		Scale:       scale,
		Config:      name,
		CfgHash:     ch,
		ShortKey:    ShortKey(mk),
		MemoKey:     mk,
		TUs:         cfg.NumTUs,
		SideKind:    cfg.Mem.Side.String(),
		SideEntries: cfg.Mem.SideEntries,
		L1KB:        cfg.Mem.L1DSize / 1024,
		L1Assoc:     cfg.Mem.L1DAssoc,
		L1Block:     cfg.Mem.L1DBlock,
		L2KB:        cfg.Mem.L2Size / 1024,
		MemLat:      cfg.Mem.MemLat,
		Sampling:    sampling,
		Generated:   time.Now().UTC().Format(time.RFC3339),
		Stats:       res.Stats,
		MemCheck:    res.MemCheck,
		IntRegs:     append([]int64(nil), res.IntRegs[:]...),
	}
}

// GitRev returns the repository's short HEAD revision, or "" when the
// producing binary runs outside a git checkout (or git is unavailable).
// Best-effort provenance only: archives must not fail over it.
func GitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
