package runstore

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// The statistical comparison engine behind `simql diff`: paired deltas
// across benchmarks with bootstrap confidence intervals. The simulator is
// deterministic, so the sampling distribution here is over *benchmarks*
// (does the effect generalize across the suite?), not over run-to-run
// noise: a self-comparison yields exactly-zero deltas and a degenerate
// [0,0] interval, which is the sanity check CI runs.

// BenchDelta is one benchmark's paired measurement.
type BenchDelta struct {
	Bench string  `json:"bench"`
	A     float64 `json:"a"`
	B     float64 `json:"b"`
	// Rel is the relative change from A to B, signed so that positive is
	// "B is better" for the metric's polarity.
	Rel float64 `json:"rel"`
}

// DeltaStat is one metric's paired comparison over a benchmark set.
type DeltaStat struct {
	Metric string `json:"metric"`
	// HigherIsBetter records the metric's polarity (false for miss rates).
	HigherIsBetter bool         `json:"higher_is_better"`
	Benches        []BenchDelta `json:"benches"`
	// Mean is the mean relative change; Lo/Hi bound the (1-alpha)
	// percentile bootstrap interval of that mean.
	Mean float64 `json:"mean"`
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
}

// Regressed reports whether the metric shows a significant regression
// beyond tol: the mean favors A by more than tol AND the whole confidence
// interval sits below zero (so benchmark-to-benchmark variation cannot
// explain it away).
func (d *DeltaStat) Regressed(tol float64) bool {
	return d.Mean < -tol && d.Hi < 0
}

// Metric extracts one comparable number from a manifest.
type Metric struct {
	Name           string
	HigherIsBetter bool
	Get            func(*Manifest) float64
}

// DiffMetrics is the metric set `simql diff` gates and reports: speedup
// (cycle-count ratio), IPC, and the correct-path L1D miss rate. Sampled
// manifests contribute their whole-run estimates (Est*) so a sampled pair
// compares estimate against estimate; mixing a sampled cell with a detailed
// one is refused at pairing time (see Sampled and cmd/simql).
func DiffMetrics() []Metric {
	return []Metric{
		{Name: "speedup", HigherIsBetter: true, Get: func(m *Manifest) float64 { return m.Stats.EstCycles() }},
		{Name: "ipc", HigherIsBetter: true, Get: func(m *Manifest) float64 { return m.Stats.EstIPC() }},
		{Name: "l1d_miss_rate", HigherIsBetter: false, Get: func(m *Manifest) float64 { return m.Stats.EstL1DMissRate() }},
	}
}

// Compare computes one metric's paired deltas plus a bootstrap CI over
// the benchmark set. boot is the resample count, seed the deterministic
// RNG seed, conf the interval mass (e.g. 0.95).
func Compare(pairs [][2]*Manifest, met Metric, boot int, seed uint64, conf float64) DeltaStat {
	d := DeltaStat{Metric: met.Name, HigherIsBetter: met.HigherIsBetter}
	rels := make([]float64, 0, len(pairs))
	for _, p := range pairs {
		a, b := met.Get(p[0]), met.Get(p[1])
		var rel float64
		switch {
		case met.Name == "speedup":
			// Cycle counts: speedup of B over A is cyclesA/cyclesB; report
			// it as a relative change so +0.05 means "B is 5% faster".
			if b != 0 {
				rel = a/b - 1
			}
		case met.HigherIsBetter:
			if a != 0 {
				rel = (b - a) / a
			}
		default:
			// Lower is better: positive rel means B improved (lower).
			if a != 0 {
				rel = (a - b) / a
			}
		}
		rels = append(rels, rel)
		d.Benches = append(d.Benches, BenchDelta{Bench: p[0].Bench, A: a, B: b, Rel: rel})
	}
	d.Mean = mean(rels)
	d.Lo, d.Hi = BootstrapCI(rels, boot, seed, conf)
	return d
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// BootstrapCI returns the percentile bootstrap confidence interval of the
// mean of xs. The implementation lives in the stats package so the
// sampled-simulation estimator draws from the same deterministic stream;
// this alias keeps runstore's historical API.
func BootstrapCI(xs []float64, boot int, seed uint64, conf float64) (lo, hi float64) {
	return stats.BootstrapCI(xs, boot, seed, conf)
}

// ParetoPoint is one configuration's position in the speedup-vs-cost
// plane: weighted-average speedup over a paired baseline, against the
// hardware cost model.
type ParetoPoint struct {
	CfgHash  string  `json:"cfg_hash"`
	Config   string  `json:"config"`
	TUs      int     `json:"tus"`
	SideKind string  `json:"side_kind"`
	SideEnts int     `json:"side_entries"`
	CostKB   float64 `json:"cost_kb"`
	// Speedup is the execution-time-weighted average speedup across the
	// benchmarks shared with the baseline (the paper's suite average).
	Speedup  float64 `json:"speedup"`
	Benches  int     `json:"benches"`
	Frontier bool    `json:"frontier"`
}

// Pareto groups the candidate manifests by configuration, computes each
// configuration's weighted-average speedup against the baseline set
// (paired per benchmark), and marks the Pareto frontier of
// (min cost, max speedup). Configurations sharing no benchmark with the
// baseline are skipped.
func Pareto(candidates, baseline []*Manifest) ([]ParetoPoint, error) {
	baseIdx := make(map[string]*Manifest)
	for _, m := range baseline {
		k := fmt.Sprintf("%s-s%d", m.Bench, m.Scale)
		if prev, dup := baseIdx[k]; dup {
			return nil, fmt.Errorf("runstore: pareto baseline is ambiguous: both %s and %s match %s", prev.CellKey, m.CellKey, k)
		}
		baseIdx[k] = m
	}
	byCfg := make(map[string][]*Manifest)
	var order []string
	for _, m := range candidates {
		if _, ok := byCfg[m.CfgHash]; !ok {
			order = append(order, m.CfgHash)
		}
		byCfg[m.CfgHash] = append(byCfg[m.CfgHash], m)
	}
	var pts []ParetoPoint
	for _, ch := range order {
		ms := byCfg[ch]
		var inv float64 // sum of 1/speedup for the weighted average
		var n int
		for _, m := range ms {
			base, ok := baseIdx[fmt.Sprintf("%s-s%d", m.Bench, m.Scale)]
			if !ok || m.Stats.Cycles == 0 {
				continue
			}
			sp := float64(base.Stats.Cycles) / float64(m.Stats.Cycles)
			if sp <= 0 {
				continue
			}
			inv += 1 / sp
			n++
		}
		if n == 0 {
			continue
		}
		rep := ms[0]
		pts = append(pts, ParetoPoint{
			CfgHash:  ch,
			Config:   rep.Config,
			TUs:      rep.TUs,
			SideKind: rep.SideKind,
			SideEnts: rep.SideEntries,
			CostKB:   rep.HardwareCostKB(),
			Speedup:  float64(n) / inv,
			Benches:  n,
		})
	}
	// Frontier: a point survives when no other point has cost <= and
	// speedup >= with at least one strict.
	for i := range pts {
		dominated := false
		for j := range pts {
			if i == j {
				continue
			}
			if pts[j].CostKB <= pts[i].CostKB && pts[j].Speedup >= pts[i].Speedup &&
				(pts[j].CostKB < pts[i].CostKB || pts[j].Speedup > pts[i].Speedup) {
				dominated = true
				break
			}
		}
		pts[i].Frontier = !dominated
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].CostKB != pts[j].CostKB {
			return pts[i].CostKB < pts[j].CostKB
		}
		return pts[i].Speedup > pts[j].Speedup
	})
	return pts, nil
}
