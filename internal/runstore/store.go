package runstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"sync"
)

// indexVersion is bumped whenever the on-disk index format changes.
const indexVersion = 1

// indexHeader is the first line of the archive index journal.
type indexHeader struct {
	V int `json:"v"`
}

// Store is an open run archive rooted at one directory. Puts are
// serialized internally; one Store may back a whole harness worker pool.
type Store struct {
	mu    sync.Mutex
	root  string
	f     *os.File // index journal, append position at EOF
	cells map[string]*Manifest
}

// Open opens (creating if needed) the archive rooted at dir and loads its
// index. Like the results ledger, a truncated trailing line — a process
// killed mid-append — is discarded and the journal truncated back to the
// last intact entry; replayed tails are harmless because entries are keyed
// and the last write for a cell wins.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	path := filepath.Join(dir, "index.jsonl")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("runstore: %w", err)
	}
	cells := make(map[string]*Manifest)
	off := 0
	for first := true; off < len(data); first = false {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: the append was interrupted mid-line
		}
		line := data[off : off+nl]
		if first {
			var h indexHeader
			if err := json.Unmarshal(line, &h); err != nil {
				f.Close()
				return nil, fmt.Errorf("runstore: %s: corrupt header (delete the file to start over): %w", path, err)
			}
			if h.V != indexVersion {
				f.Close()
				return nil, fmt.Errorf("runstore: %s was written at v%d, want v%d", path, h.V, indexVersion)
			}
		} else {
			var m Manifest
			if err := json.Unmarshal(line, &m); err != nil || m.CellKey == "" {
				break // torn or corrupt entry: drop it and everything after
			}
			cells[m.CellKey] = &m
		}
		off += nl + 1
	}
	if off < len(data) {
		// A torn (or corrupt) tail is being cut off. As with the results
		// ledger, the truncation must reach stable storage before new
		// appends land after it, or power loss could resurrect stale tail
		// bytes past the new entries.
		if err := f.Truncate(int64(off)); err != nil {
			f.Close()
			return nil, fmt.Errorf("runstore: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("runstore: %w", err)
		}
		if err := syncDir(path); err != nil {
			f.Close()
			return nil, fmt.Errorf("runstore: %w", err)
		}
	}
	if _, err := f.Seek(int64(off), io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("runstore: %w", err)
	}
	s := &Store{root: dir, f: f, cells: cells}
	if off == 0 {
		hdr, _ := json.Marshal(indexHeader{V: indexVersion})
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, fmt.Errorf("runstore: %w", err)
		}
	}
	return s, nil
}

// Root returns the archive's root directory.
func (s *Store) Root() string { return s.root }

// Len returns the number of archived cells.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cells)
}

// Get returns the manifest archived under the cell key, or nil.
func (s *Store) Get(cellKey string) *Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cells[cellKey]
}

// All returns every archived manifest, sorted by cell key (deterministic
// for queries and goldens).
func (s *Store) All() []*Manifest {
	s.mu.Lock()
	out := make([]*Manifest, 0, len(s.cells))
	for _, m := range s.cells {
		out = append(out, m)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].CellKey < out[j].CellKey })
	return out
}

// Put archives one manifest: the per-cell JSON file is written atomically
// (temp + rename), then the index journal appends. Re-archiving a cell
// whose deterministic result is unchanged is a no-op, so a resumed sweep
// replaying its ledger converges on exactly one manifest per cell; a
// changed result (same cell key, different counters — a real re-run)
// overwrites the file and appends a superseding index entry.
func (s *Store) Put(m *Manifest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.cells[m.CellKey]; ok &&
		prev.MemoKey == m.MemoKey && prev.Stats == m.Stats && prev.MemCheck == m.MemCheck &&
		(m.Attrib == nil || (prev.Attrib != nil && *prev.Attrib == *m.Attrib)) &&
		(len(m.IntRegs) == 0 || slices.Equal(prev.IntRegs, m.IntRegs)) {
		// Identical deterministic result carrying no new attribution or
		// register snapshot: replayed ledger tails and re-runs converge on
		// the stored cell. A re-run that attaches the attribution collector
		// — or records the register file (the fleet fast path's input) — for
		// the first time falls through and supersedes.
		return nil
	}
	dir := filepath.Join(s.root, m.CfgHash)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	raw, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	final := filepath.Join(dir, fmt.Sprintf("%s-s%d.json", m.Bench, m.Scale))
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("runstore: %w", err)
	}
	line, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if _, err := s.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	s.cells[m.CellKey] = m
	return nil
}

// syncDir fsyncs the directory holding path, making a just-performed
// truncation durable across power loss.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ManifestPath returns the per-cell JSON path a manifest was (or would be)
// materialized at.
func (s *Store) ManifestPath(m *Manifest) string {
	return filepath.Join(s.root, m.CfgHash, fmt.Sprintf("%s-s%d.json", m.Bench, m.Scale))
}

// Close flushes and closes the index journal.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	return nil
}
