package runstore

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/sta"
)

// mkManifest builds a manifest for tests: a real config (so Infer and the
// hardware fields engage) with distinguishable counters.
func mkManifest(t *testing.T, bench string, name config.Name, tus, side int, cycles uint64) *Manifest {
	t.Helper()
	cfg := config.Main(tus)
	cfg.Mem.SideEntries = side
	if err := config.Apply(name, &cfg); err != nil {
		t.Fatal(err)
	}
	res := &sta.Result{MemCheck: 0x1234}
	res.Stats.Cycles = cycles
	res.Stats.Commits = cycles * 2
	res.Stats.L1DAccesses = 1000
	res.Stats.L1DMisses = 100
	m := New(bench, 1, cfg, res)
	m.Tool = "test"
	return m
}

func TestContentAddressing(t *testing.T) {
	a := mkManifest(t, "mcf", config.WTHWPWEC, 8, 16, 1000)
	b := mkManifest(t, "gzip", config.WTHWPWEC, 8, 16, 2000)
	c := mkManifest(t, "mcf", config.WTHWPWEC, 8, 2, 1000)
	if a.CfgHash != b.CfgHash {
		t.Errorf("same machine, different bench: CfgHash %s vs %s, want equal", a.CfgHash, b.CfgHash)
	}
	if a.CfgHash == c.CfgHash {
		t.Errorf("different side-buffer sizes share CfgHash %s", a.CfgHash)
	}
	if a.ShortKey == b.ShortKey {
		t.Errorf("different benches share ShortKey %s", a.ShortKey)
	}
	if !strings.HasPrefix(a.CfgHash, "c") || len(a.CfgHash) != 17 {
		t.Errorf("CfgHash %q not in c+16hex form", a.CfgHash)
	}
	if a.Config != "wth-wp-wec" {
		t.Errorf("Config inferred as %q, want wth-wp-wec", a.Config)
	}
	if a.CellKey != a.CfgHash+"/mcf-s1" {
		t.Errorf("CellKey %q", a.CellKey)
	}
	if a.SideKind != "wec" || a.SideEntries != 16 || a.TUs != 8 {
		t.Errorf("hardware fields: %s/%d tus=%d", a.SideKind, a.SideEntries, a.TUs)
	}
}

func TestHardwareCostKB(t *testing.T) {
	wec := mkManifest(t, "mcf", config.WTHWPWEC, 8, 16, 1000)
	orig := mkManifest(t, "mcf", config.Orig, 8, 16, 1000)
	// orig has no side buffer, so its cost must be exactly TUs*L1 + L2.
	wantOrig := float64(orig.TUs*orig.L1KB + orig.L2KB)
	if orig.HardwareCostKB() != wantOrig {
		t.Errorf("orig cost %.1f, want %.1f", orig.HardwareCostKB(), wantOrig)
	}
	if wec.HardwareCostKB() <= orig.HardwareCostKB() {
		t.Errorf("WEC cost %.1f not above orig %.1f", wec.HardwareCostKB(), orig.HardwareCostKB())
	}
}

func TestStorePutGetReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := mkManifest(t, "mcf", config.WTHWPWEC, 8, 16, 1000)
	b := mkManifest(t, "gzip", config.WTHWPWEC, 8, 16, 2000)
	for _, m := range []*Manifest{a, b} {
		if err := st.Put(m); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != 2 {
		t.Fatalf("Len %d, want 2", st.Len())
	}
	if _, err := os.Stat(st.ManifestPath(a)); err != nil {
		t.Fatalf("per-cell manifest missing: %v", err)
	}
	st.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got := st2.Get(a.CellKey)
	if got == nil || got.Stats != a.Stats || got.MemoKey != a.MemoKey {
		t.Fatalf("reopened manifest does not round-trip: %+v", got)
	}
	all := st2.All()
	if len(all) != 2 || all[0].CellKey > all[1].CellKey {
		t.Fatalf("All() not sorted: %v", all)
	}
}

func TestStorePutIdempotent(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m := mkManifest(t, "mcf", config.WTHWPWEC, 8, 16, 1000)
	for i := 0; i < 3; i++ {
		if err := st.Put(mkManifest(t, "mcf", config.WTHWPWEC, 8, 16, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	idx, err := os.ReadFile(filepath.Join(dir, "index.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(idx), "\n"); n != 2 { // header + one entry
		t.Fatalf("idempotent Put appended %d index lines, want 2 (header + 1)", n)
	}
	// A manifest that adds attribution supersedes the stored one.
	withAttrib := mkManifest(t, "mcf", config.WTHWPWEC, 8, 16, 1000)
	withAttrib.Attrib = &AttribSummary{SpecFills: 10, Useful: 7}
	if err := st.Put(withAttrib); err != nil {
		t.Fatal(err)
	}
	if got := st.Get(m.CellKey); got.Attrib == nil || got.Attrib.Useful != 7 {
		t.Fatalf("attribution did not supersede: %+v", got.Attrib)
	}
	// Re-putting the same attribution is again a no-op.
	again := mkManifest(t, "mcf", config.WTHWPWEC, 8, 16, 1000)
	again.Attrib = &AttribSummary{SpecFills: 10, Useful: 7}
	if err := st.Put(again); err != nil {
		t.Fatal(err)
	}
	idx, _ = os.ReadFile(filepath.Join(dir, "index.jsonl"))
	if n := strings.Count(string(idx), "\n"); n != 3 {
		t.Fatalf("index has %d lines, want 3 (header + initial + attrib supersede)", n)
	}
}

func TestStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(mkManifest(t, "mcf", config.WTHWPWEC, 8, 16, 1000)); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Simulate a process killed mid-append.
	path := filepath.Join(dir, "index.jsonl")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"cell_key":"c00/torn-s1","ben`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 1 {
		t.Fatalf("torn tail not dropped: Len %d, want 1", st2.Len())
	}
	// The file must have been truncated back to intact entries.
	if err := st2.Put(mkManifest(t, "gzip", config.WTHWPWEC, 8, 16, 500)); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if st3.Len() != 2 {
		t.Fatalf("after truncate+append: Len %d, want 2", st3.Len())
	}
}

func TestSelector(t *testing.T) {
	ms := []*Manifest{
		mkManifest(t, "mcf", config.WTHWPWEC, 8, 16, 1000),
		mkManifest(t, "gzip", config.WTHWPWEC, 8, 16, 2000),
		mkManifest(t, "mcf", config.Orig, 8, 16, 3000),
		mkManifest(t, "mcf", config.WTHWPWEC, 4, 16, 4000),
	}
	cases := []struct {
		expr string
		want int
	}{
		{"config=wth-wp-wec", 3},
		{"config=wth-wp-wec,tus=8", 2},
		{"bench=mcf,config=orig", 1},
		{"wth-wp-wec", 3},                      // bare config name
		{ms[0].CfgHash[:6], 2},                 // bare hash prefix (both wth-wp-wec/8tu cells)
		{"hash=" + ms[0].CfgHash[1:5], 2},      // hash key without the 'c'
		{"sidekind=wec,side=16,scale=1", 3},    // orig has SideNone
		{"key=NumTUs:4", 1},
		{"tool=test", 4},
	}
	for _, c := range cases {
		sel, err := ParseSelector(c.expr)
		if err != nil {
			t.Fatalf("%s: %v", c.expr, err)
		}
		if got := len(Select(ms, sel)); got != c.want {
			t.Errorf("selector %q matched %d, want %d", c.expr, got, c.want)
		}
	}
	if _, err := ParseSelector("bogus=1"); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := ParseSelector("tus=abc"); err == nil {
		t.Error("non-integer tus accepted")
	}
	if got := len(Grep(ms, regexp.MustCompile("orig"))); got != 1 {
		t.Errorf("Grep(orig) matched %d, want 1", got)
	}
}

func TestPairByBench(t *testing.T) {
	a1 := mkManifest(t, "mcf", config.WTHWPWEC, 8, 16, 1000)
	a2 := mkManifest(t, "gzip", config.WTHWPWEC, 8, 16, 2000)
	b1 := mkManifest(t, "mcf", config.Orig, 8, 16, 1500)
	pairs, err := PairByBench([]*Manifest{a1, a2}, []*Manifest{b1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0][0] != a1 || pairs[0][1] != b1 {
		t.Fatalf("pairs = %v", pairs)
	}
	// Ambiguous side: two configs for the same bench.
	if _, err := PairByBench([]*Manifest{a1, b1}, []*Manifest{b1}); err == nil {
		t.Error("ambiguous A side accepted")
	}
	// Disjoint benches: no pairs is an error, not an empty success.
	if _, err := PairByBench([]*Manifest{a2}, []*Manifest{b1}); err == nil {
		t.Error("disjoint selections accepted")
	}
	// Sampled-vs-detailed: estimates and exact counts must never pair.
	s1 := mkManifest(t, "mcf", config.Orig, 8, 16, 1500)
	s1.Sampling = "sample{w:1000,m:2000,p:12000}"
	if _, err := PairByBench([]*Manifest{a1}, []*Manifest{s1}); err == nil {
		t.Error("sampled-vs-detailed pair accepted")
	}
	s2 := mkManifest(t, "mcf", config.WTHWPWEC, 8, 16, 1000)
	s2.Sampling = s1.Sampling
	if pairs, err := PairByBench([]*Manifest{s2}, []*Manifest{s1}); err != nil || len(pairs) != 1 {
		t.Errorf("same-regime sampled pair rejected: %v", err)
	}
	s2.Sampling = "sample{w:9,m:9,p:99}"
	if _, err := PairByBench([]*Manifest{s2}, []*Manifest{s1}); err == nil {
		t.Error("mismatched sampling regimes accepted")
	}
}

func TestCompareSelfIsExactlyZero(t *testing.T) {
	a := mkManifest(t, "mcf", config.WTHWPWEC, 8, 16, 1000)
	b := mkManifest(t, "gzip", config.WTHWPWEC, 8, 16, 2000)
	pairs := [][2]*Manifest{{a, a}, {b, b}}
	for _, met := range DiffMetrics() {
		d := Compare(pairs, met, 1000, 0, 0.95)
		if d.Mean != 0 || d.Lo != 0 || d.Hi != 0 {
			t.Errorf("%s: self-compare = mean %g CI [%g, %g], want exact zeros", met.Name, d.Mean, d.Lo, d.Hi)
		}
		if d.Regressed(0.01) {
			t.Errorf("%s: self-compare flagged as regression", met.Name)
		}
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	// B is uniformly ~20% slower than A on every benchmark.
	var pairs [][2]*Manifest
	for i, bench := range []string{"a", "b", "c", "d"} {
		fast := mkManifest(t, bench, config.WTHWPWEC, 8, 16, uint64(1000+i))
		slow := mkManifest(t, bench, config.Orig, 8, 16, uint64(1200+i))
		slow.Stats.Commits = fast.Stats.Commits // same work, more cycles -> lower IPC
		pairs = append(pairs, [2]*Manifest{fast, slow})
	}
	for _, met := range DiffMetrics() {
		if met.Name == "l1d_miss_rate" {
			continue // identical miss counters in this fixture
		}
		d := Compare(pairs, met, 2000, 0, 0.95)
		if !d.Regressed(0.01) {
			t.Errorf("%s: uniform 20%% slowdown not flagged (mean %g, CI [%g, %g])", met.Name, d.Mean, d.Lo, d.Hi)
		}
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	xs := []float64{0.01, -0.02, 0.03, -0.04, 0.05}
	lo1, hi1 := BootstrapCI(xs, 5000, 7, 0.95)
	lo2, hi2 := BootstrapCI(xs, 5000, 7, 0.95)
	if lo1 != lo2 || hi1 != hi2 {
		t.Errorf("same seed produced different intervals: [%g,%g] vs [%g,%g]", lo1, hi1, lo2, hi2)
	}
	if lo1 > hi1 {
		t.Errorf("inverted interval [%g, %g]", lo1, hi1)
	}
	if mean(xs) < lo1 || mean(xs) > hi1 {
		t.Errorf("interval [%g, %g] does not cover the sample mean %g", lo1, hi1, mean(xs))
	}
}

func TestPareto(t *testing.T) {
	baseline := []*Manifest{
		mkManifest(t, "mcf", config.Orig, 8, 16, 2000),
		mkManifest(t, "gzip", config.Orig, 8, 16, 1000),
	}
	// wec16: faster everywhere but costs more SRAM; vc: cheaper than wec16
	// (VC cost model is the same formula) and slower -> both on the frontier;
	// a hypothetical slower-AND-pricier config must be dominated.
	wec := []*Manifest{
		mkManifest(t, "mcf", config.WTHWPWEC, 8, 16, 1000),
		mkManifest(t, "gzip", config.WTHWPWEC, 8, 16, 800),
	}
	dominated := []*Manifest{
		mkManifest(t, "mcf", config.WTHWPWEC, 8, 32, 1900),
		mkManifest(t, "gzip", config.WTHWPWEC, 8, 32, 990),
	}
	var all []*Manifest
	all = append(all, baseline...)
	all = append(all, wec...)
	all = append(all, dominated...)
	pts, err := Pareto(all, baseline)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	byHash := make(map[string]ParetoPoint)
	for _, p := range pts {
		byHash[p.CfgHash] = p
	}
	if !byHash[wec[0].CfgHash].Frontier {
		t.Errorf("fast wec16 not on frontier: %+v", byHash[wec[0].CfgHash])
	}
	if byHash[dominated[0].CfgHash].Frontier {
		t.Errorf("slower, pricier wec32 marked frontier: %+v", byHash[dominated[0].CfgHash])
	}
	if sp := byHash[wec[0].CfgHash].Speedup; sp <= 1 {
		t.Errorf("wec16 speedup %g, want > 1", sp)
	}
	// Ambiguous baseline is rejected.
	if _, err := Pareto(all, append(baseline, mkManifest(t, "mcf", config.VC, 8, 16, 1500))); err == nil {
		t.Error("ambiguous baseline accepted")
	}
}
