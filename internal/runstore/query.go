package runstore

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// A Selector filters archived manifests. The textual form is a
// comma-separated list of k=v terms:
//
//	config=wth-wp-wec,tus=8,side=16
//	bench=mcf,hash=c3f2
//	run=20260809-101500-1a2b3c4d
//
// Keys: bench, config, tus, scale, side (entries), sidekind, l1 (KB),
// assoc, l2 (KB), memlat, hash (CfgHash prefix, with or without the 'c'),
// run (telemetry run ID), tool, key (substring of the memo key). A bare
// term with no '=' matches a configuration name first, then a CfgHash
// prefix.
type Selector struct {
	terms []func(*Manifest) bool
	// Expr is the original textual form, for error messages and reports.
	Expr string
}

// ParseSelector compiles the textual selector form.
func ParseSelector(expr string) (*Selector, error) {
	s := &Selector{Expr: expr}
	for _, raw := range strings.Split(expr, ",") {
		term := strings.TrimSpace(raw)
		if term == "" {
			continue
		}
		k, v, ok := strings.Cut(term, "=")
		if !ok {
			v := term
			s.terms = append(s.terms, func(m *Manifest) bool {
				return m.Config == v || strings.HasPrefix(m.CfgHash, v) ||
					strings.HasPrefix(m.CfgHash, "c"+v)
			})
			continue
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		intTerm := func(get func(*Manifest) int) (func(*Manifest) bool, error) {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("runstore: selector %s=%s: %v", k, v, err)
			}
			return func(m *Manifest) bool { return get(m) == n }, nil
		}
		var t func(*Manifest) bool
		var err error
		switch k {
		case "bench":
			t = func(m *Manifest) bool { return m.Bench == v }
		case "config":
			t = func(m *Manifest) bool { return m.Config == v }
		case "tus":
			t, err = intTerm(func(m *Manifest) int { return m.TUs })
		case "scale":
			t, err = intTerm(func(m *Manifest) int { return m.Scale })
		case "side":
			t, err = intTerm(func(m *Manifest) int { return m.SideEntries })
		case "sidekind":
			t = func(m *Manifest) bool { return m.SideKind == v }
		case "l1":
			t, err = intTerm(func(m *Manifest) int { return m.L1KB })
		case "assoc":
			t, err = intTerm(func(m *Manifest) int { return m.L1Assoc })
		case "l2":
			t, err = intTerm(func(m *Manifest) int { return m.L2KB })
		case "memlat":
			t, err = intTerm(func(m *Manifest) int { return m.MemLat })
		case "hash":
			t = func(m *Manifest) bool {
				return strings.HasPrefix(m.CfgHash, v) || strings.HasPrefix(m.CfgHash, "c"+v)
			}
		case "run":
			t = func(m *Manifest) bool { return m.RunID == v }
		case "tool":
			t = func(m *Manifest) bool { return m.Tool == v }
		case "key":
			t = func(m *Manifest) bool { return strings.Contains(m.MemoKey, v) }
		default:
			return nil, fmt.Errorf("runstore: unknown selector key %q (want bench, config, tus, scale, side, sidekind, l1, assoc, l2, memlat, hash, run, tool, key)", k)
		}
		if err != nil {
			return nil, err
		}
		s.terms = append(s.terms, t)
	}
	return s, nil
}

// Match reports whether every term accepts the manifest.
func (s *Selector) Match(m *Manifest) bool {
	for _, t := range s.terms {
		if !t(m) {
			return false
		}
	}
	return true
}

// Select returns the manifests matching the selector, in All() order.
func Select(ms []*Manifest, s *Selector) []*Manifest {
	var out []*Manifest
	for _, m := range ms {
		if s.Match(m) {
			out = append(out, m)
		}
	}
	return out
}

// Grep returns manifests whose memo key, cell key, config name, run ID, or
// git revision matches the regular expression.
func Grep(ms []*Manifest, re *regexp.Regexp) []*Manifest {
	var out []*Manifest
	for _, m := range ms {
		if re.MatchString(m.MemoKey) || re.MatchString(m.CellKey) ||
			re.MatchString(m.Config) || re.MatchString(m.RunID) || re.MatchString(m.GitRev) {
			out = append(out, m)
		}
	}
	return out
}

// PairByBench pairs two manifest sets by benchmark (and scale): each side
// must contribute at most one manifest per (bench, scale), and a pair
// forms when both sides have one. An ambiguous side — two manifests for
// the same (bench, scale), i.e. a selector that still spans multiple
// configurations — is an error naming the colliding cells.
func PairByBench(a, b []*Manifest) ([][2]*Manifest, error) {
	index := func(ms []*Manifest, side string) (map[string]*Manifest, error) {
		idx := make(map[string]*Manifest, len(ms))
		for _, m := range ms {
			k := fmt.Sprintf("%s-s%d", m.Bench, m.Scale)
			if prev, dup := idx[k]; dup {
				return nil, fmt.Errorf("runstore: selector %s is ambiguous: both %s and %s match %s (narrow it, e.g. add side=/tus=/hash=)",
					side, prev.CellKey, m.CellKey, k)
			}
			idx[k] = m
		}
		return idx, nil
	}
	ia, err := index(a, "A")
	if err != nil {
		return nil, err
	}
	ib, err := index(b, "B")
	if err != nil {
		return nil, err
	}
	var pairs [][2]*Manifest
	for _, ma := range a { // a's deterministic order
		k := fmt.Sprintf("%s-s%d", ma.Bench, ma.Scale)
		if mb, ok := ib[k]; ok {
			// A sampled run's counters cover only its measurement windows;
			// diffing one against a detailed run (or a differently-sampled
			// one) would compare estimates with exact counts as if they were
			// the same population.
			if ma.Sampling != mb.Sampling {
				return nil, fmt.Errorf("runstore: %s pairs a %s run with a %s run; diff like against like (rerun one side with matching sampling flags)",
					k, describeSampling(ma.Sampling), describeSampling(mb.Sampling))
			}
			pairs = append(pairs, [2]*Manifest{ma, mb})
		}
	}
	_ = ia
	if len(pairs) == 0 {
		return nil, fmt.Errorf("runstore: no common (bench, scale) cells between the two selections (%d vs %d manifests)", len(a), len(b))
	}
	return pairs, nil
}

// describeSampling renders a manifest's sampling regime for error messages.
func describeSampling(s string) string {
	if s == "" {
		return "detailed"
	}
	return "sampled (" + s + ")"
}
