package fleet

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/chaos"
)

// Transport is an http.RoundTripper that injects seeded network faults
// into the fleet protocol's client side. Faults are drawn from the chaos
// injector's network points, so they are a pure function of (seed, salt,
// draw index): a soak run reproduces its fault schedule exactly. With a
// nil injector — or one whose network probabilities are all zero — every
// draw misses and the transport is wire-identical to its base.
//
// The faults model the classic failure envelope an at-least-once protocol
// must survive:
//
//   - drop: the request reaches the server (side effects happen) but the
//     response is discarded, so the client retries a completed operation —
//     receivers must be idempotent.
//   - delay: the exchange stalls, racing heartbeats against lease expiry.
//   - dup: the request is delivered twice back to back.
//   - trunc: the response body is cut mid-JSON, so decoders must treat
//     parse failures as transient.
type Transport struct {
	Base http.RoundTripper // nil = http.DefaultTransport
	In   *chaos.Injector

	// mu serializes injector draws: the injector itself is single-stream
	// by design, but one worker's slots share this transport. Per-point
	// streams are independent, so draw order across points never matters —
	// only same-point draws need ordering, which the lock provides.
	mu sync.Mutex
}

// Draw pulls one decision from the shared injector, safely from any
// goroutine (the worker draws its kill point through this).
func (t *Transport) Draw(p chaos.Point) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.In.Hit(p)
}

// errDropped is the injected drop failure; it reads like a network error
// so clients exercise their real retry path.
type errDropped struct{ salt string }

func (e errDropped) Error() string {
	return fmt.Sprintf("chaos: injected net-drop (response discarded) (%s)", e.salt)
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if t.In == nil {
		return base.RoundTrip(req)
	}
	t.mu.Lock()
	delay := t.In.Hit(chaos.PointNetDelay)
	dup := t.In.Hit(chaos.PointNetDup)
	drop := t.In.Hit(chaos.PointNetDrop)
	trunc := t.In.Hit(chaos.PointNetTrunc)
	t.mu.Unlock()
	if delay {
		select {
		case <-time.After(t.In.NetDelaySleep()):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if dup && req.GetBody != nil {
		// Deliver the request twice: the first copy's response is discarded,
		// the caller sees the second. The server must converge.
		if body, err := req.GetBody(); err == nil {
			dup := req.Clone(req.Context())
			dup.Body = body
			if resp, err := base.RoundTrip(dup); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		if body, err := req.GetBody(); err == nil {
			req = req.Clone(req.Context())
			req.Body = body
		}
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if drop {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, errDropped{salt: t.In.Salt()}
	}
	if trunc {
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && len(raw) > 1 {
			raw = raw[:len(raw)/2]
		}
		resp.Body = io.NopCloser(bytes.NewReader(raw))
		resp.ContentLength = int64(len(raw))
	}
	return resp, nil
}
