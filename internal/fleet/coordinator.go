package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/attrib"
	"repro/internal/chaos"
	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/runstore"
	"repro/internal/simerr"
	"repro/internal/sta"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Config parameterizes a coordinator. The zero value plus Scale is usable;
// every duration and limit has a default.
type Config struct {
	// Scale is the workload scale workers must build at (it is part of the
	// cell identity; see harness.Runner.Scale).
	Scale int
	// LeaseTTL bounds how long a claimed cell may go without a heartbeat
	// before its lease is revoked (default 5s). Workers heartbeat at TTL/3;
	// the sweeper scans at TTL/4.
	LeaseTTL time.Duration
	// ProgressTTL bounds how long a leased cell's simulated cycle may sit
	// still while heartbeats keep arriving — the livelocked-worker case
	// (default 6×LeaseTTL).
	ProgressTTL time.Duration
	// FallbackAfter is how long a submitted cell waits for any worker to
	// have ever joined before the coordinator declines it back to the
	// in-process path (default 3s). Once one worker has joined, cells wait
	// indefinitely (the sweep is distributed; reassignment handles death).
	FallbackAfter time.Duration
	// FailLimit quarantines a cell after classified failures reported by
	// this many distinct worker names (default 3): the cell is poison, not
	// the workers.
	FailLimit int
	// MaxAttempts bounds total assignments of one cell across lease
	// expiries and reassignments (default 10), so a cell that kills every
	// worker it touches cannot cycle forever.
	MaxAttempts int
	// Attrib asks workers to run with fill attribution and ship the report.
	Attrib     bool
	AttribTopN int
	// Timeout is the per-cell wall-clock bound shipped to workers (0 =
	// none).
	Timeout time.Duration
	// SimChaos is the simulator-level fault-injection config shipped to
	// workers, so a chaos sweep faults identically under distribution (the
	// injector is salted by memo key, not by host).
	SimChaos chaos.Config
	// Archive, when non-nil, answers repeat cells from the
	// content-addressed run store without simulating: a manifest whose
	// memo key matches and which carries the architectural register file
	// reconstructs the full deterministic result.
	Archive *runstore.Store
	// Log receives coordinator lifecycle events (nil = slog.Default).
	Log *slog.Logger
}

// cellState tracks one submitted cell through claim, lease, reassignment,
// and completion.
type cellState struct {
	cell Cell

	done chan struct{} // closed exactly once, on completion
	res  *sta.Result
	rep  *attrib.Report
	err  error

	lease        uint64 // current lease ID (0 = unleased)
	worker       string // incarnation holding the lease
	deadline     time.Time
	lastCycle    uint64
	lastProgress time.Time

	attempts  int             // assignments so far (leases granted)
	notBefore time.Time       // backoff gate for the next assignment
	failedBy  map[string]bool // worker *names* that reported a sim failure
	lastKind  simerr.Kind     // kind to quarantine with at the attempt cap
	queued    bool
	abandoned bool // declined back to the local path; late results still accepted
}

type workerState struct {
	name     string
	lastSeen time.Time
}

// Coordinator owns the distributable half of a sweep: the cell queue,
// lease table, worker registry, failure accounting, and the archive fast
// path. It implements harness.RemoteExec via Submit.
type Coordinator struct {
	cfg Config
	log *slog.Logger

	mu        sync.Mutex
	cells     map[string]*cellState
	queue     []string // memo keys awaiting assignment, FIFO
	specs     map[string]string
	workers   map[string]*workerState
	leaseSeq  uint64
	workerSeq map[string]int // name -> incarnation counter
	everJoin  bool
	closed    bool

	// Monotonic counters behind the sta_fleet_* gauges.
	joined      uint64
	expired     uint64
	reassigned  uint64
	quarantined uint64
	cacheHits   uint64
	remoteDone  uint64
	fallbacks   uint64

	srv  *http.Server
	ln   net.Listener
	stop chan struct{}
	wg   sync.WaitGroup
}

// NewCoordinator builds a coordinator (call Start to serve).
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 5 * time.Second
	}
	if cfg.ProgressTTL <= 0 {
		cfg.ProgressTTL = 6 * cfg.LeaseTTL
	}
	if cfg.FallbackAfter <= 0 {
		cfg.FallbackAfter = 3 * time.Second
	}
	if cfg.FailLimit <= 0 {
		cfg.FailLimit = 3
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 10
	}
	log := cfg.Log
	if log == nil {
		log = slog.Default()
	}
	return &Coordinator{
		cfg:       cfg,
		log:       log,
		cells:     make(map[string]*cellState),
		workers:   make(map[string]*workerState),
		workerSeq: make(map[string]int),
		stop:      make(chan struct{}),
	}
}

// Start listens on addr (e.g. ":9381" or "127.0.0.1:0") and serves the
// fleet protocol; the lease sweeper starts with it.
func (c *Coordinator) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("fleet: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fleet/v1/join", c.handleJoin)
	mux.HandleFunc("POST /fleet/v1/claim", c.handleClaim)
	mux.HandleFunc("POST /fleet/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /fleet/v1/result", c.handleResult)
	c.ln = ln
	c.srv = &http.Server{Handler: mux}
	c.wg.Add(2)
	go func() {
		defer c.wg.Done()
		if err := c.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			c.log.Error("fleet server failed", "err", err)
		}
	}()
	go c.sweeper()
	c.log.Info("fleet coordinator listening", "addr", ln.Addr().String(),
		"lease", c.cfg.LeaseTTL, "fail_limit", c.cfg.FailLimit)
	return nil
}

// Addr returns the actual listen address ("" before Start).
func (c *Coordinator) Addr() string {
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Close stops serving and the sweeper. Pending Submit calls are declined
// (handled=false) so a shutting-down runner falls back locally or exits.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	var err error
	if c.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err = c.srv.Shutdown(ctx)
		cancel()
	}
	c.wg.Wait()
	return err
}

// RegisterSpec teaches the coordinator how to shard a synthesized
// workload: bench is the harness bench name, spec the canonical genome
// line a worker can rebuild the program from. (Registered workloads need
// no spec — their names alone rebuild the program at the shipped scale.)
func (c *Coordinator) RegisterSpec(bench, spec string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.specs == nil {
		c.specs = make(map[string]string)
	}
	c.specs[bench] = spec
}

// FleetCounts snapshots the coordinator's health for the telemetry
// /metrics exporter (telemetry.Run.SetFleetSource).
func (c *Coordinator) FleetCounts() telemetry.FleetCounts {
	c.mu.Lock()
	defer c.mu.Unlock()
	fc := telemetry.FleetCounts{
		WorkersJoined:    c.joined,
		LeasesExpired:    c.expired,
		CellsReassigned:  c.reassigned,
		CellsQuarantined: c.quarantined,
		CacheHits:        c.cacheHits,
		RemoteResults:    c.remoteDone,
		LocalFallbacks:   c.fallbacks,
	}
	cutoff := time.Now().Add(-2 * c.cfg.LeaseTTL)
	for _, w := range c.workers {
		if w.lastSeen.After(cutoff) {
			fc.WorkersLive++
		}
	}
	for _, st := range c.cells {
		if st.lease != 0 && !isDone(st) {
			fc.LeasesHeld++
		}
	}
	return fc
}

func isDone(st *cellState) bool {
	select {
	case <-st.done:
		return true
	default:
		return false
	}
}

// Submit implements harness.RemoteExec: it answers the cell from the
// archive when possible, otherwise queues it for workers and waits.
// handled=false means the runner should simulate in-process: the bench is
// not shardable, no worker ever joined within FallbackAfter, or the
// coordinator is shutting down.
func (c *Coordinator) Submit(ctx context.Context, bench string, cfg sta.Config) (*sta.Result, *attrib.Report, bool, error) {
	key := harness.MemoKey(bench, cfg)
	spec, shardable := c.shardable(bench)
	if !shardable {
		return nil, nil, false, nil
	}
	if res := c.fromArchive(bench, key); res != nil {
		return res, nil, true, nil
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, nil, false, nil
	}
	st, ok := c.cells[key]
	if !ok || st.abandoned {
		st = &cellState{
			cell: Cell{Key: key, Bench: bench, Scale: c.cfg.Scale, Cfg: cfg, Wgen: spec},
			done: make(chan struct{}),
		}
		c.cells[key] = st
		st.queued = true
		c.queue = append(c.queue, key)
	}
	everJoined := c.everJoin
	c.mu.Unlock()

	var fallback <-chan time.Time
	if !everJoined {
		t := time.NewTimer(c.cfg.FallbackAfter)
		defer t.Stop()
		fallback = t.C
	}
	for {
		select {
		case <-st.done:
			c.mu.Lock()
			res, rep, err := st.res, st.rep, st.err
			c.mu.Unlock()
			return res, rep, true, err
		case <-ctx.Done():
			return nil, nil, true, simerr.Classify("fleet.Submit", ctx.Err(), simerr.Canceled)
		case <-c.stop:
			return nil, nil, false, nil
		case <-fallback:
			c.mu.Lock()
			if c.everJoin {
				// A worker arrived while we were waiting: stay distributed.
				fallback = nil
				c.mu.Unlock()
				continue
			}
			// No worker ever joined. Pull the cell back (unless a join race
			// just leased it) and run locally.
			if st.lease == 0 && !isDone(st) {
				st.abandoned = true
				c.dequeueLocked(key)
				c.fallbacks++
				c.mu.Unlock()
				c.log.Info("fleet fallback to in-process simulation", "bench", bench, "key_tag", runstore.ShortKey(key))
				return nil, nil, false, nil
			}
			fallback = nil
			c.mu.Unlock()
		}
	}
}

// shardable reports whether bench can be rebuilt by a worker from its
// name: a registered workload, or a synthesized program with a registered
// genome spec (returned for the wire).
func (c *Coordinator) shardable(bench string) (spec string, ok bool) {
	c.mu.Lock()
	spec, isSpec := c.specs[bench]
	c.mu.Unlock()
	if isSpec {
		return spec, true
	}
	if _, err := workload.ByName(bench); err == nil {
		return "", true
	}
	return "", false
}

// fromArchive reconstructs a full deterministic result from an archived
// manifest, when one exists for exactly this cell and carries the
// register file. Attributed sweeps skip the fast path: manifests hold only
// the attribution summary, not the report the runner needs.
func (c *Coordinator) fromArchive(bench, key string) *sta.Result {
	if c.cfg.Archive == nil || c.cfg.Attrib {
		return nil
	}
	m := c.cfg.Archive.Get(runstore.CellKey(bench, c.cfg.Scale, runstore.CfgHash(key)))
	if m == nil || m.MemoKey != key || len(m.IntRegs) != isa.NumIntRegs {
		return nil
	}
	res := &sta.Result{Stats: m.Stats, MemCheck: m.MemCheck}
	copy(res.IntRegs[:], m.IntRegs)
	c.mu.Lock()
	c.cacheHits++
	c.mu.Unlock()
	c.log.Info("fleet cell answered from archive", "bench", bench, "key_tag", runstore.ShortKey(key))
	return res
}

// dequeueLocked removes key from the FIFO (c.mu held).
func (c *Coordinator) dequeueLocked(key string) {
	for i, k := range c.queue {
		if k == key {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			break
		}
	}
	if st := c.cells[key]; st != nil {
		st.queued = false
	}
}

// ---- HTTP handlers ----

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.V != protoVersion {
		http.Error(w, fmt.Sprintf("protocol version %d, want %d", req.V, protoVersion), http.StatusConflict)
		return
	}
	if req.Name == "" {
		http.Error(w, "join without a name", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.workerSeq[req.Name]++
	id := fmt.Sprintf("%s/%d", req.Name, c.workerSeq[req.Name])
	c.workers[id] = &workerState{name: req.Name, lastSeen: time.Now()}
	c.joined++
	c.everJoin = true
	c.mu.Unlock()
	c.log.Info("fleet worker joined", "worker", id, "slots", req.Slots)
	writeJSON(w, JoinResponse{
		Worker:      id,
		Scale:       c.cfg.Scale,
		LeaseMS:     c.cfg.LeaseTTL.Milliseconds(),
		HeartbeatMS: (c.cfg.LeaseTTL / 3).Milliseconds(),
		PollMS:      150,
		Attrib:      c.cfg.Attrib,
		AttribTopN:  c.cfg.AttribTopN,
		TimeoutMS:   c.cfg.Timeout.Milliseconds(),
		SimChaos:    c.cfg.SimChaos,
	})
}

func (c *Coordinator) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req ClaimRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ws, known := c.workers[req.Worker]
	if !known {
		writeJSON(w, ClaimResponse{Rejoin: true})
		return
	}
	now := time.Now()
	ws.lastSeen = now
	for i, key := range c.queue {
		st := c.cells[key]
		if st == nil || isDone(st) || now.Before(st.notBefore) {
			continue
		}
		c.queue = append(c.queue[:i], c.queue[i+1:]...)
		st.queued = false
		c.leaseSeq++
		st.lease = c.leaseSeq
		st.worker = req.Worker
		st.deadline = now.Add(c.cfg.LeaseTTL)
		st.lastCycle = 0
		st.lastProgress = now
		st.attempts++
		cell := st.cell
		writeJSON(w, ClaimResponse{Cell: &cell, Lease: st.lease})
		return
	}
	writeJSON(w, ClaimResponse{None: true})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ws, known := c.workers[req.Worker]
	if !known {
		writeJSON(w, HeartbeatResponse{Rejoin: true})
		return
	}
	now := time.Now()
	ws.lastSeen = now
	st := c.cells[req.Key]
	if st == nil || isDone(st) || st.lease != req.Lease || st.worker != req.Worker {
		// The lease was revoked (or the cell finished elsewhere): the
		// worker should stop burning cycles on it.
		writeJSON(w, HeartbeatResponse{Cancel: true})
		return
	}
	st.deadline = now.Add(c.cfg.LeaseTTL)
	if req.Cycle > st.lastCycle {
		st.lastCycle = req.Cycle
		st.lastProgress = now
	}
	writeJSON(w, HeartbeatResponse{})
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ws, known := c.workers[req.Worker]
	if known {
		ws.lastSeen = time.Now()
	}
	st := c.cells[req.Key]
	if st == nil {
		// A cell the coordinator no longer tracks (e.g. fallback took it):
		// acknowledge so the worker stops retrying.
		writeJSON(w, ResultResponse{Rejoin: !known})
		return
	}
	if isDone(st) {
		// Duplicate or late delivery — at-least-once made idempotent.
		writeJSON(w, ResultResponse{})
		return
	}
	if req.Result != nil {
		// Success is success no matter whose lease it was: the simulator is
		// deterministic, so a stale-lease result is byte-identical to the
		// one the replacement worker would produce.
		st.res = req.Result
		st.lease = 0
		c.remoteDone++
		if st.queued {
			c.dequeueLocked(req.Key)
		}
		if c.cfg.Attrib {
			if req.Attrib == nil {
				st.err = simerr.Errorf(simerr.Unknown, "fleet.result",
					"worker %s returned a result without the requested attribution report", req.Worker)
			} else {
				st.rep = req.Attrib
			}
		}
		close(st.done)
		writeJSON(w, ResultResponse{})
		return
	}
	// A classified failure. Only count it toward the poison threshold when
	// the lease is current: a stale report says more about the worker's
	// past than about the cell.
	if !known || st.lease != req.Lease || st.worker != req.Worker {
		writeJSON(w, ResultResponse{Rejoin: !known})
		return
	}
	name := ws.name
	if st.failedBy == nil {
		st.failedBy = make(map[string]bool)
	}
	st.failedBy[name] = true
	kind := simerr.ParseKind(req.ErrKind)
	st.lastKind = kind
	st.lease = 0
	st.worker = ""
	if len(st.failedBy) >= c.cfg.FailLimit || st.attempts >= c.cfg.MaxAttempts {
		c.quarantineLocked(st, &simerr.Error{Kind: kind, Op: "fleet.worker", Bench: st.cell.Bench,
			Err: fmt.Errorf("%s (reported by %d distinct workers, %d attempts)", req.ErrMsg, len(st.failedBy), st.attempts)})
	} else {
		c.requeueLocked(st, "reported "+kind.String())
	}
	writeJSON(w, ResultResponse{})
}

// quarantineLocked completes a cell with a classified failure (c.mu held).
func (c *Coordinator) quarantineLocked(st *cellState, err *simerr.Error) {
	if isDone(st) {
		return
	}
	st.err = err
	st.lease = 0
	if st.queued {
		c.dequeueLocked(st.cell.Key)
	}
	c.quarantined++
	close(st.done)
	c.log.Warn("fleet cell quarantined", "bench", st.cell.Bench,
		"key_tag", runstore.ShortKey(st.cell.Key), "kind", err.Kind.String(), "err", err.Err)
}

// requeueLocked puts a cell back in the FIFO behind a deterministic
// per-cell backoff gate (c.mu held). The jitter stream is keyed by the
// memo key — the same helper the harness IO retry path uses — so a burst
// of simultaneously-orphaned cells spreads out instead of stampeding the
// next claimant.
func (c *Coordinator) requeueLocked(st *cellState, why string) {
	if isDone(st) || st.queued {
		return
	}
	st.notBefore = time.Now().Add(harness.BackoffDelay(st.cell.Key, st.attempts, 25*time.Millisecond, 2*time.Second))
	st.queued = true
	c.queue = append(c.queue, st.cell.Key)
	c.reassigned++
	c.log.Info("fleet cell requeued", "bench", st.cell.Bench,
		"key_tag", runstore.ShortKey(st.cell.Key), "attempts", st.attempts, "why", why)
}

// sweeper periodically revokes leases whose heartbeats stopped (the worker
// died) or whose simulated cycle stopped advancing (the worker livelocked),
// requeueing the cells and deregistering dead incarnations.
func (c *Coordinator) sweeper() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.LeaseTTL / 4)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		now := time.Now()
		c.mu.Lock()
		for _, st := range c.cells {
			if st.lease == 0 || isDone(st) {
				continue
			}
			var kind simerr.Kind
			var why string
			switch {
			case now.After(st.deadline):
				kind, why = simerr.Timeout, "lease expired (missed heartbeats)"
			case now.Sub(st.lastProgress) > c.cfg.ProgressTTL:
				kind, why = simerr.Deadlock, "lease stalled (heartbeats without progress)"
			default:
				continue
			}
			worker := st.worker
			c.expired++
			st.lease = 0
			st.worker = ""
			st.lastKind = kind
			// The worker vanished (or wedged); blame it, not the cell: the
			// incarnation is deregistered — a Rejoin answer greets any
			// zombie heartbeat — and the cell goes back in the queue with
			// no poison-count advance.
			delete(c.workers, worker)
			c.log.Warn("fleet lease revoked", "worker", worker, "bench", st.cell.Bench,
				"key_tag", runstore.ShortKey(st.cell.Key), "why", why)
			if st.attempts >= c.cfg.MaxAttempts {
				c.quarantineLocked(st, &simerr.Error{Kind: kind, Op: "fleet.lease", Bench: st.cell.Bench,
					Err: fmt.Errorf("%s after %d assignments", why, st.attempts)})
			} else {
				c.requeueLocked(st, why)
			}
		}
		c.mu.Unlock()
	}
}
