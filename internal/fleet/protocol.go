// Package fleet distributes a sweep across processes: a coordinator owns
// the experiment plan, the validation/ledger/archive tail, and the memo
// table, while stateless workers simulate cells claimed under time-bounded
// leases.
//
// The design leans entirely on the simulator's determinism contract: a
// cell's result is a pure function of (bench, scale, config), so any
// worker's answer equals the in-process one bit for bit, late or duplicate
// deliveries are harmless (results are idempotent by memo key), and the
// coordinator can answer repeat cells straight from the content-addressed
// run archive without simulating at all. Everything that makes distributed
// systems hard — retries, reassignment after worker death, resumption
// after a coordinator kill — therefore reduces to at-least-once delivery
// plus idempotent application, which the existing ledger discipline
// already provides.
//
// Failure attribution distinguishes "the cell is poison" from "the worker
// is flaky": a worker that *reports* a classified simulation failure
// counts toward the cell's distinct-worker quarantine threshold, while a
// worker that silently vanishes (lease expiry, missed heartbeats, stalled
// progress) is blamed itself — its leases are revoked and the cells
// re-queued under capped exponential backoff with deterministic per-cell
// jitter, without advancing the poison count.
package fleet

import (
	"repro/internal/attrib"
	"repro/internal/chaos"
	"repro/internal/sta"
)

// protoVersion guards against coordinator/worker skew; a mismatched join
// is refused rather than silently misinterpreted.
const protoVersion = 1

// Cell is one unit of distributable work. Key is the harness memo key the
// coordinator derived; the worker re-derives it from (Bench, Cfg) and
// refuses the cell on mismatch, so a corrupted wire payload can never be
// simulated under the wrong identity.
type Cell struct {
	Key   string     `json:"key"`
	Bench string     `json:"bench"`
	Scale int        `json:"scale"`
	Cfg   sta.Config `json:"cfg"`
	// Wgen carries the canonical genome line when Bench is a synthesized
	// workload; the worker reconstructs and registers the program from it.
	Wgen string `json:"wgen,omitempty"`
}

// JoinRequest announces a worker to the coordinator. Name is stable across
// a worker's deaths and rebirths (it keys the poison-vs-flaky accounting);
// the coordinator hands back a per-incarnation worker ID.
type JoinRequest struct {
	V     int    `json:"v"`
	Name  string `json:"name"`
	Slots int    `json:"slots"`
}

// JoinResponse configures the worker: everything a simulation needs to be
// bit-identical with the coordinator's own in-process path.
type JoinResponse struct {
	Worker      string       `json:"worker"` // per-incarnation ID ("name/3")
	Scale       int          `json:"scale"`
	LeaseMS     int64        `json:"lease_ms"`
	HeartbeatMS int64        `json:"heartbeat_ms"`
	PollMS      int64        `json:"poll_ms"`
	Attrib      bool         `json:"attrib"`
	AttribTopN  int          `json:"attrib_top_n,omitempty"`
	TimeoutMS   int64        `json:"timeout_ms,omitempty"`
	SimChaos    chaos.Config `json:"sim_chaos"`
}

// ClaimRequest asks for one cell.
type ClaimRequest struct {
	Worker string `json:"worker"`
}

// ClaimResponse grants a lease (Cell non-nil), reports an empty queue
// (None), or tells an unknown incarnation to rejoin.
type ClaimResponse struct {
	Cell   *Cell  `json:"cell,omitempty"`
	Lease  uint64 `json:"lease,omitempty"`
	None   bool   `json:"none,omitempty"`
	Rejoin bool   `json:"rejoin,omitempty"`
}

// HeartbeatRequest renews a lease and publishes forward progress. Cycle
// feeds the coordinator's stall detector: a lease whose heartbeats arrive
// but whose cycle never advances is revoked just like a silent one.
type HeartbeatRequest struct {
	Worker  string `json:"worker"`
	Lease   uint64 `json:"lease"`
	Key     string `json:"key"`
	Cycle   uint64 `json:"cycle"`
	Commits uint64 `json:"commits"`
}

// HeartbeatResponse: Cancel tells the worker its lease was revoked (stop
// simulating, the cell belongs to someone else now); Rejoin that the
// incarnation itself is unknown.
type HeartbeatResponse struct {
	Cancel bool `json:"cancel,omitempty"`
	Rejoin bool `json:"rejoin,omitempty"`
}

// ResultRequest delivers a finished cell: either the deterministic result
// (plus the attribution report when the sweep runs attributed) or a
// classified failure as (kind name, message). Delivery is at-least-once;
// the coordinator applies it idempotently by memo key.
type ResultRequest struct {
	Worker  string         `json:"worker"`
	Lease   uint64         `json:"lease"`
	Key     string         `json:"key"`
	Result  *sta.Result    `json:"result,omitempty"`
	Attrib  *attrib.Report `json:"attrib,omitempty"`
	ErrKind string         `json:"err_kind,omitempty"`
	ErrMsg  string         `json:"err_msg,omitempty"`
}

// ResultResponse acknowledges a delivery (the worker retries until it gets
// one, so a dropped response just means a duplicate send).
type ResultResponse struct {
	Rejoin bool `json:"rejoin,omitempty"`
}
