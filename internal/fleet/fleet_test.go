package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/runstore"
	"repro/internal/simerr"
	"repro/internal/sta"
	"repro/internal/wgen"
)

// startCoordinator brings up a coordinator on a loopback port and tears it
// down with the test.
func startCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	c := NewCoordinator(cfg)
	if err := c.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// startWorker runs a fleet worker until the test ends.
func startWorker(t *testing.T, c *Coordinator, cfg WorkerConfig) {
	t.Helper()
	cfg.URL = "http://" + c.Addr()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		RunWorker(ctx, cfg)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
}

// fleetRunner wires a runner to a coordinator the way the experiments CLI
// does.
func fleetRunner(c *Coordinator) *harness.Runner {
	r := harness.NewRunner(c.cfg.Scale)
	r.Remote = c.Submit
	return r
}

// post is a bare fleet-protocol client for tests that play the worker role
// by hand.
func post[T any](t *testing.T, c *Coordinator, op string, req any) T {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+c.Addr()+"/fleet/v1/"+op, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("%s: %s: %s", op, resp.Status, msg)
	}
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFleetBitIdentity is the acceptance core: a sweep answered by a
// worker process equals the in-process sweep bit for bit.
func TestFleetBitIdentity(t *testing.T) {
	cells := []sta.Config{config.Main(2), config.Main(4)}

	local := harness.NewRunner(1)
	want := make([]*sta.Result, len(cells))
	for i, cfg := range cells {
		res, err := local.Result("gzip", cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	c := startCoordinator(t, Config{Scale: 1, LeaseTTL: 2 * time.Second})
	startWorker(t, c, WorkerConfig{Name: "w1", Slots: 2})
	r := fleetRunner(c)
	for i, cfg := range cells {
		res, err := r.Result("gzip", cfg)
		if err != nil {
			t.Fatal(err)
		}
		if *res != *want[i] {
			t.Errorf("cell %d: fleet result differs from local:\nfleet %+v\nlocal %+v", i, res.Stats, want[i].Stats)
		}
	}
	fc := c.FleetCounts()
	if fc.RemoteResults != uint64(len(cells)) {
		t.Errorf("RemoteResults = %d, want %d", fc.RemoteResults, len(cells))
	}
	if fc.LocalFallbacks != 0 || fc.CacheHits != 0 {
		t.Errorf("unexpected fallbacks/cache hits: %+v", fc)
	}
}

// TestFleetLocalFallback: with no worker ever joining, Submit declines and
// the runner's in-process path still produces the right answer.
func TestFleetLocalFallback(t *testing.T) {
	c := startCoordinator(t, Config{Scale: 1, FallbackAfter: 150 * time.Millisecond})
	r := fleetRunner(c)
	res, err := r.Result("gzip", config.Main(2))
	if err != nil {
		t.Fatal(err)
	}
	want, err := harness.NewRunner(1).Result("gzip", config.Main(2))
	if err != nil {
		t.Fatal(err)
	}
	if *res != *want {
		t.Error("fallback result differs from plain local run")
	}
	if fc := c.FleetCounts(); fc.LocalFallbacks != 1 {
		t.Errorf("LocalFallbacks = %d, want 1", fc.LocalFallbacks)
	}
}

// TestFleetUnshardableDeclined: a bench the worker could not rebuild from
// its name is declined immediately, not queued.
func TestFleetUnshardableDeclined(t *testing.T) {
	c := startCoordinator(t, Config{Scale: 1, FallbackAfter: time.Hour})
	_, _, handled, err := c.Submit(context.Background(), "no-such-bench", config.Main(2))
	if handled || err != nil {
		t.Fatalf("Submit(unshardable) = handled %v, err %v; want declined", handled, err)
	}
}

// TestFleetArchiveFastPath: a cell whose manifest (with register file) is
// already archived is answered without workers or simulation.
func TestFleetArchiveFastPath(t *testing.T) {
	dir := t.TempDir()
	st, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	local := harness.NewRunner(1)
	local.Archive = st
	want, err := local.Result("gzip", config.Main(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	c := startCoordinator(t, Config{Scale: 1, Archive: st2, FallbackAfter: time.Hour})
	res, _, handled, err := c.Submit(context.Background(), "gzip", config.Main(2))
	if err != nil || !handled {
		t.Fatalf("Submit = handled %v, err %v", handled, err)
	}
	if *res != *want {
		t.Error("archive fast path reconstructed a different result")
	}
	if fc := c.FleetCounts(); fc.CacheHits != 1 {
		t.Errorf("CacheHits = %d, want 1", fc.CacheHits)
	}
	// An attributed sweep must skip the fast path: manifests carry only the
	// attribution summary.
	ca := startCoordinator(t, Config{Scale: 1, Archive: st2, Attrib: true, FallbackAfter: 100 * time.Millisecond})
	_, _, handled, err = ca.Submit(context.Background(), "gzip", config.Main(2))
	if handled || err != nil {
		t.Fatalf("attributed Submit should decline to local, got handled %v err %v", handled, err)
	}
}

// TestFleetLeaseExpiryReassigns: a worker that claims a cell and then goes
// silent loses its lease; the cell is reassigned to a live worker and the
// silent incarnation is told to rejoin. Vanishing is blamed on the worker:
// no poison count accrues.
func TestFleetLeaseExpiryReassigns(t *testing.T) {
	c := startCoordinator(t, Config{Scale: 1, LeaseTTL: 300 * time.Millisecond})

	type submitOut struct {
		res *sta.Result
		err error
	}
	outc := make(chan submitOut, 1)
	go func() {
		res, _, _, err := c.Submit(context.Background(), "gzip", config.Main(2))
		outc <- submitOut{res, err}
	}()

	// A hand-rolled worker joins, claims the cell, and dies silently.
	jr := post[JoinResponse](t, c, "join", JoinRequest{V: protoVersion, Name: "ghost", Slots: 1})
	var cr ClaimResponse
	for deadline := time.Now().Add(5 * time.Second); ; {
		cr = post[ClaimResponse](t, c, "claim", ClaimRequest{Worker: jr.Worker})
		if cr.Cell != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ghost worker never got the cell")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Lease expires; a real worker picks the cell up and finishes it.
	startWorker(t, c, WorkerConfig{Name: "real", Slots: 1})
	out := <-outc
	if out.err != nil {
		t.Fatal(out.err)
	}
	want, err := harness.NewRunner(1).Result("gzip", config.Main(2))
	if err != nil {
		t.Fatal(err)
	}
	if *out.res != *want {
		t.Error("reassigned result differs from local")
	}
	fc := c.FleetCounts()
	if fc.LeasesExpired == 0 || fc.CellsReassigned == 0 {
		t.Errorf("expected expiry + reassignment, got %+v", fc)
	}
	if fc.CellsQuarantined != 0 {
		t.Errorf("silent death must not quarantine the cell: %+v", fc)
	}
	// The ghost's zombie heartbeat is told to rejoin.
	hb := post[HeartbeatResponse](t, c, "heartbeat", HeartbeatRequest{Worker: jr.Worker, Lease: cr.Lease, Key: cr.Cell.Key})
	if !hb.Rejoin {
		t.Error("deregistered incarnation's heartbeat not answered with Rejoin")
	}
}

// TestFleetPoisonQuarantine: classified failures reported by distinct
// worker names cross FailLimit and quarantine the cell with the reported
// kind — the poison-cell half of the attribution policy.
func TestFleetPoisonQuarantine(t *testing.T) {
	c := startCoordinator(t, Config{Scale: 1, LeaseTTL: 5 * time.Second, FailLimit: 2})
	outc := make(chan error, 1)
	go func() {
		_, _, _, err := c.Submit(context.Background(), "gzip", config.Main(2))
		outc <- err
	}()

	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("flaky%d", i)
		jr := post[JoinResponse](t, c, "join", JoinRequest{V: protoVersion, Name: name, Slots: 1})
		var cr ClaimResponse
		for deadline := time.Now().Add(5 * time.Second); ; {
			cr = post[ClaimResponse](t, c, "claim", ClaimRequest{Worker: jr.Worker})
			if cr.Cell != nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %d never got the cell", i)
			}
			time.Sleep(20 * time.Millisecond)
		}
		post[ResultResponse](t, c, "result", ResultRequest{
			Worker: jr.Worker, Lease: cr.Lease, Key: cr.Cell.Key,
			ErrKind: simerr.Panic.String(), ErrMsg: "injected test panic",
		})
	}
	err := <-outc
	if err == nil {
		t.Fatal("poison cell completed without error")
	}
	if kind := simerr.KindOf(err); kind != simerr.Panic {
		t.Errorf("quarantine kind = %v, want panic (the reported kind)", kind)
	}
	if fc := c.FleetCounts(); fc.CellsQuarantined != 1 {
		t.Errorf("CellsQuarantined = %d, want 1", fc.CellsQuarantined)
	}
}

// TestFleetDuplicateResultIdempotent: the same result delivered twice (the
// net-dup / net-drop retry case) is applied once and acknowledged both
// times.
func TestFleetDuplicateResultIdempotent(t *testing.T) {
	c := startCoordinator(t, Config{Scale: 1, LeaseTTL: 5 * time.Second})
	done := make(chan *sta.Result, 1)
	go func() {
		res, _, _, _ := c.Submit(context.Background(), "gzip", config.Main(2))
		done <- res
	}()
	jr := post[JoinResponse](t, c, "join", JoinRequest{V: protoVersion, Name: "dup", Slots: 1})
	var cr ClaimResponse
	for deadline := time.Now().Add(5 * time.Second); ; {
		cr = post[ClaimResponse](t, c, "claim", ClaimRequest{Worker: jr.Worker})
		if cr.Cell != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never got the cell")
		}
		time.Sleep(20 * time.Millisecond)
	}
	res, err := harness.NewRunner(1).Result("gzip", config.Main(2))
	if err != nil {
		t.Fatal(err)
	}
	req := ResultRequest{Worker: jr.Worker, Lease: cr.Lease, Key: cr.Cell.Key, Result: res}
	post[ResultResponse](t, c, "result", req)
	post[ResultResponse](t, c, "result", req) // duplicate delivery
	got := <-done
	if *got != *res {
		t.Error("result corrupted by duplicate delivery")
	}
	if fc := c.FleetCounts(); fc.RemoteResults != 1 {
		t.Errorf("RemoteResults = %d, want 1 (duplicate must not double-count)", fc.RemoteResults)
	}
}

// TestFleetWgenAttrib: a synthesized workload distributes via its genome
// spec and the worker's attribution report comes back intact.
func TestFleetWgenAttrib(t *testing.T) {
	g := wgen.Random(7)
	p, err := g.Program()
	if err != nil {
		t.Fatal(err)
	}
	bench := g.BenchName()
	cfg := config.Main(2)

	local := harness.NewRunner(1)
	local.Attrib = true
	local.RegisterProgram(bench, p)
	wantRes, err := local.Result(bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRep, err := local.AttribReport(bench, cfg)
	if err != nil {
		t.Fatal(err)
	}

	c := startCoordinator(t, Config{Scale: 1, LeaseTTL: 2 * time.Second, Attrib: true})
	c.RegisterSpec(bench, g.Canonical())
	startWorker(t, c, WorkerConfig{Name: "wg", Slots: 1})
	r := fleetRunner(c)
	r.Attrib = true
	r.RegisterProgram(bench, p) // reference interpretation still runs coordinator-side
	res, err := r.Result(bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *res != *wantRes {
		t.Error("wgen fleet result differs from local")
	}
	rep, err := r.AttribReport(bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CheckInternal(); err != nil {
		t.Errorf("wire-delivered report fails internal accounting: %v", err)
	}
	if rep.SpecFills.Total() != wantRep.SpecFills.Total() || rep.Useful.Total() != wantRep.Useful.Total() {
		t.Errorf("report totals differ: fleet %d/%d local %d/%d",
			rep.SpecFills.Total(), rep.Useful.Total(), wantRep.SpecFills.Total(), wantRep.Useful.Total())
	}
}

// TestFleetChaosSoakBitIdentity: with every network fault point firing at
// nonzero probability — plus injected worker kills — the sweep still
// converges to the bit-identical local answer.
func TestFleetChaosSoakBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	cells := []sta.Config{config.Main(2), config.Main(4)}
	local := harness.NewRunner(1)
	want := make([]*sta.Result, len(cells))
	for i, cfg := range cells {
		res, err := local.Result("gzip", cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	c := startCoordinator(t, Config{Scale: 1, LeaseTTL: 700 * time.Millisecond})
	net := chaos.Config{
		Seed:          11,
		NetDrop:       0.10,
		NetDelay:      0.10,
		NetDup:        0.10,
		NetTrunc:      0.10,
		WorkerKill:    0.03,
		NetDelaySleep: 20 * time.Millisecond,
	}
	startWorker(t, c, WorkerConfig{Name: "soak1", Slots: 1, Chaos: net})
	startWorker(t, c, WorkerConfig{Name: "soak2", Slots: 1, Chaos: net})
	r := fleetRunner(c)
	for i, cfg := range cells {
		res, err := r.Result("gzip", cfg)
		if err != nil {
			t.Fatal(err)
		}
		if *res != *want[i] {
			t.Errorf("cell %d diverged under network chaos", i)
		}
	}
}

// TestTransportZeroProbPassthrough: a transport whose injector has all
// network probabilities at zero (or no injector at all) is wire-identical
// to the bare client.
func TestTransportZeroProbPassthrough(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		fmt.Fprintf(w, `{"ok":%d}`, hits.Load())
	}))
	defer srv.Close()

	fetch := func(cl *http.Client) string {
		resp, err := cl.Post(srv.URL, "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	bare := fetch(srv.Client())
	nilInj := fetch(&http.Client{Transport: &Transport{Base: http.DefaultTransport}})
	zero := fetch(&http.Client{Transport: &Transport{Base: http.DefaultTransport, In: chaos.New(chaos.Config{Seed: 3}, "zero")}})
	wantN := hits.Load()
	if wantN != 3 {
		t.Fatalf("server saw %d requests, want 3 (no dups, no drops)", wantN)
	}
	for i, got := range []string{bare, nilInj, zero} {
		want := fmt.Sprintf(`{"ok":%d}`, i+1)
		if got != want {
			t.Errorf("response %d = %q, want %q", i, got, want)
		}
	}
}

// TestTransportFaults: each fault point at probability 1 produces its
// documented client-visible behaviour.
func TestTransportFaults(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		fmt.Fprint(w, `{"field":"a reasonably long body so truncation cuts mid-JSON"}`)
	}))
	defer srv.Close()

	t.Run("drop", func(t *testing.T) {
		hits.Store(0)
		cl := &http.Client{Transport: &Transport{In: chaos.New(chaos.Config{Seed: 1, NetDrop: 1}, "t")}}
		_, err := cl.Post(srv.URL, "application/json", strings.NewReader(`{}`))
		if err == nil {
			t.Fatal("dropped response did not error")
		}
		if hits.Load() != 1 {
			t.Errorf("server hits = %d, want 1 (request must still be delivered)", hits.Load())
		}
	})
	t.Run("dup", func(t *testing.T) {
		hits.Store(0)
		cl := &http.Client{Transport: &Transport{In: chaos.New(chaos.Config{Seed: 1, NetDup: 1}, "t")}}
		req, _ := http.NewRequest(http.MethodPost, srv.URL, strings.NewReader(`{}`))
		resp, err := cl.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if hits.Load() != 2 {
			t.Errorf("server hits = %d, want 2 (request delivered twice)", hits.Load())
		}
	})
	t.Run("trunc", func(t *testing.T) {
		cl := &http.Client{Transport: &Transport{In: chaos.New(chaos.Config{Seed: 1, NetTrunc: 1}, "t")}}
		resp, err := cl.Post(srv.URL, "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&v); err == nil {
			t.Error("truncated body still parsed as JSON")
		}
	})
	t.Run("delay", func(t *testing.T) {
		cl := &http.Client{Transport: &Transport{In: chaos.New(chaos.Config{Seed: 1, NetDelay: 1, NetDelaySleep: 60 * time.Millisecond}, "t")}}
		start := time.Now()
		resp, err := cl.Post(srv.URL, "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
			t.Errorf("delayed exchange took %v, want >= 60ms", elapsed)
		}
	})
}

// TestFleetCountsProm sanity-checks the telemetry wiring end to end: the
// gauges a coordinator exports must reflect its counters.
func TestFleetCountsProm(t *testing.T) {
	c := startCoordinator(t, Config{Scale: 1, FallbackAfter: 50 * time.Millisecond})
	_, _, handled, _ := c.Submit(context.Background(), "gzip", config.Main(2))
	if handled {
		t.Fatal("expected fallback")
	}
	fc := c.FleetCounts()
	if fc.LocalFallbacks != 1 || fc.WorkersLive != 0 {
		t.Errorf("counts = %+v", fc)
	}
}
