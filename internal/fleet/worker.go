package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/attrib"
	"repro/internal/chaos"
	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/simerr"
	"repro/internal/sta"
	"repro/internal/wgen"
)

// WorkerConfig parameterizes one worker process.
type WorkerConfig struct {
	// URL is the coordinator's base URL ("http://host:port").
	URL string
	// Name is the worker's stable identity across deaths and rebirths; it
	// keys the coordinator's poison-vs-flaky accounting (default
	// "<hostname>-<pid>").
	Name string
	// Slots bounds concurrently simulated cells (default 1).
	Slots int
	// SimWorkers is each machine's intra-simulation goroutine budget
	// (harness.Runner.SimWorkers semantics).
	SimWorkers int
	// Chaos drives the client-side network fault injector and the
	// worker-kill point (simulator-level chaos comes from the coordinator
	// via the join handshake, so it cannot skew from the local path).
	Chaos chaos.Config
	// Log receives worker lifecycle events (nil = slog.Default).
	Log *slog.Logger
}

// worker is one joined incarnation's runtime state.
type worker struct {
	cfg    WorkerConfig
	log    *slog.Logger
	client *http.Client
	tr     *Transport
	join   JoinResponse

	genCtx    context.Context
	genCancel context.CancelFunc
	reason    string
	reasonMu  sync.Mutex
}

// RunWorker joins the coordinator at cfg.URL and simulates claimed cells
// until ctx is canceled. Each injected worker-kill (or Rejoin demand from
// the coordinator) ends the current incarnation abruptly — in-flight cells
// are abandoned without a result, so their leases expire — and the worker
// rejoins as a fresh incarnation under the same stable name, modeling
// kill-plus-respawn without leaving the process.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Slots < 1 {
		cfg.Slots = 1
	}
	if cfg.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		cfg.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.Log == nil {
		cfg.Log = slog.Default()
	}
	for gen := 1; ; gen++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		w := &worker{cfg: cfg, log: cfg.Log.With("worker", cfg.Name, "gen", gen)}
		var inj *chaos.Injector
		if cfg.Chaos.NetEnabled() {
			inj = chaos.New(cfg.Chaos, fmt.Sprintf("%s/gen%d", cfg.Name, gen))
		}
		w.tr = &Transport{In: inj}
		w.client = &http.Client{Transport: w.tr, Timeout: 30 * time.Second}
		w.genCtx, w.genCancel = context.WithCancel(ctx)
		w.run()
		w.genCancel()
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.log.Info("fleet worker incarnation ended, rejoining", "why", w.getReason())
		// A beat before rejoining: long enough that the dead incarnation's
		// leases are clearly someone else's problem, short enough to keep
		// the fleet saturated.
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(harness.BackoffDelay(cfg.Name, gen, 100*time.Millisecond, time.Second)):
		}
	}
}

func (w *worker) die(reason string) {
	w.reasonMu.Lock()
	if w.reason == "" {
		w.reason = reason
	}
	w.reasonMu.Unlock()
	w.genCancel()
}

func (w *worker) getReason() string {
	w.reasonMu.Lock()
	defer w.reasonMu.Unlock()
	if w.reason == "" {
		return "context canceled"
	}
	return w.reason
}

// run joins and drives one incarnation's slot loops until death.
func (w *worker) run() {
	for attempt := 0; ; attempt++ {
		var jr JoinResponse
		err := w.post("join", JoinRequest{V: protoVersion, Name: w.cfg.Name, Slots: w.cfg.Slots}, &jr)
		if err == nil {
			w.join = jr
			break
		}
		w.log.Debug("fleet join failed, retrying", "err", err)
		select {
		case <-w.genCtx.Done():
			return
		case <-time.After(harness.BackoffDelay(w.cfg.Name+"|join", attempt, 100*time.Millisecond, 2*time.Second)):
		}
	}
	w.log.Info("fleet worker joined", "id", w.join.Worker, "scale", w.join.Scale,
		"slots", w.cfg.Slots, "attrib", w.join.Attrib)
	var wg sync.WaitGroup
	for s := 0; s < w.cfg.Slots; s++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			w.slotLoop(slot)
		}(s)
	}
	wg.Wait()
}

// slotLoop claims and simulates cells until the incarnation dies.
func (w *worker) slotLoop(slot int) {
	poll := time.Duration(w.join.PollMS) * time.Millisecond
	if poll <= 0 {
		poll = 150 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		if w.genCtx.Err() != nil {
			return
		}
		if w.tr.Draw(chaos.PointWorkerKill) {
			// Simulated SIGKILL: abandon every in-flight cell on this
			// incarnation, silently. Leases expire; the coordinator
			// reassigns.
			w.die("injected worker-kill")
			return
		}
		var cr ClaimResponse
		if err := w.post("claim", ClaimRequest{Worker: w.join.Worker}, &cr); err != nil {
			select {
			case <-w.genCtx.Done():
				return
			case <-time.After(harness.BackoffDelay(w.join.Worker+"|claim", attempt, 100*time.Millisecond, 2*time.Second)):
			}
			continue
		}
		if cr.Rejoin {
			w.die("coordinator demanded rejoin")
			return
		}
		if cr.None || cr.Cell == nil {
			select {
			case <-w.genCtx.Done():
				return
			case <-time.After(poll):
			}
			continue
		}
		w.runCell(slot, *cr.Cell, cr.Lease)
	}
}

// runCell simulates one leased cell and delivers its outcome.
func (w *worker) runCell(slot int, cell Cell, lease uint64) {
	log := w.log.With("slot", slot, "bench", cell.Bench, "lease", lease)
	if got := harness.MemoKey(cell.Bench, cell.Cfg); got != cell.Key {
		// A corrupted payload must never be simulated under the wrong
		// identity: refuse it as a classified failure.
		log.Error("fleet cell key mismatch", "want", cell.Key, "got", got)
		w.deliver(cell.Key, lease, nil, nil, simerr.Errorf(simerr.BadProgram, "fleet.worker",
			"memo key mismatch: coordinator sent %q, worker derived %q", cell.Key, got))
		return
	}
	r := harness.NewRunner(cell.Scale)
	r.Workers = w.cfg.Slots
	r.SimWorkers = w.cfg.SimWorkers
	r.Attrib = w.join.Attrib
	r.AttribTopN = w.join.AttribTopN
	r.Timeout = time.Duration(w.join.TimeoutMS) * time.Millisecond
	r.Chaos = w.join.SimChaos
	if cell.Wgen != "" {
		g, err := wgen.Load(cell.Wgen)
		var p *isa.Program
		if err == nil {
			p, err = g.Program()
		}
		if err != nil {
			w.deliver(cell.Key, lease, nil, nil, simerr.Classify("fleet.worker", err, simerr.BadProgram))
			return
		}
		r.RegisterProgram(cell.Bench, p)
	}
	cellCtx, cellCancel := context.WithCancel(w.genCtx)
	defer cellCancel()
	r.Ctx = cellCtx
	tap := &sta.ProgressTap{}
	r.MakeTap = func(string, string) *sta.ProgressTap { return tap }

	hbDone := make(chan struct{})
	go w.heartbeats(cell.Key, lease, tap, cellCtx, cellCancel, hbDone)

	res, err := r.Result(cell.Bench, cell.Cfg)
	cellCancel()
	<-hbDone

	if w.genCtx.Err() != nil {
		return // killed mid-cell: say nothing, let the lease expire
	}
	if err != nil && simerr.KindOf(err) == simerr.Canceled && cellCtx.Err() != nil {
		log.Info("fleet cell abandoned (lease revoked)")
		return // the coordinator canceled us; the cell belongs to someone else
	}
	var rep *attrib.Report
	if err == nil && w.join.Attrib {
		rep, err = r.AttribReport(cell.Bench, cell.Cfg)
	}
	if err != nil {
		log.Warn("fleet cell failed", "kind", simerr.KindOf(err).String(), "err", err)
	} else {
		log.Info("fleet cell done", "cycles", res.Stats.Cycles)
	}
	w.deliver(cell.Key, lease, res, rep, err)
}

// heartbeats renews the lease until the cell context ends, publishing the
// tap's live cycle count so the coordinator's stall detector sees forward
// progress. A Cancel answer revokes the cell (cancel its context); a
// Rejoin answer kills the incarnation.
func (w *worker) heartbeats(key string, lease uint64, tap *sta.ProgressTap, ctx context.Context, cancel context.CancelFunc, done chan<- struct{}) {
	defer close(done)
	period := time.Duration(w.join.HeartbeatMS) * time.Millisecond
	if period <= 0 {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		cycle, commits := tap.Latest()
		var hr HeartbeatResponse
		err := w.post("heartbeat", HeartbeatRequest{
			Worker: w.join.Worker, Lease: lease, Key: key, Cycle: cycle, Commits: commits,
		}, &hr)
		if err != nil {
			continue // transient; the next beat retries, the lease has slack
		}
		if hr.Rejoin {
			w.die("coordinator demanded rejoin (heartbeat)")
			cancel()
			return
		}
		if hr.Cancel {
			cancel()
			return
		}
	}
}

// deliver posts a cell outcome at-least-once: network failures retry under
// deterministic backoff until acknowledged or the incarnation dies (then
// the lease expires and the cell is reassigned — duplicate deliveries are
// idempotent coordinator-side either way).
func (w *worker) deliver(key string, lease uint64, res *sta.Result, rep *attrib.Report, serr error) {
	req := ResultRequest{Worker: w.join.Worker, Lease: lease, Key: key, Result: res, Attrib: rep}
	if serr != nil {
		req.ErrKind = simerr.KindOf(serr).String()
		req.ErrMsg = serr.Error()
	}
	for attempt := 0; attempt < 15; attempt++ {
		var rr ResultResponse
		err := w.post("result", req, &rr)
		if err == nil {
			if rr.Rejoin {
				w.die("coordinator demanded rejoin (result)")
			}
			return
		}
		select {
		case <-w.genCtx.Done():
			return
		case <-time.After(harness.BackoffDelay(key+"|result", attempt, 100*time.Millisecond, 2*time.Second)):
		}
	}
	w.log.Warn("fleet result delivery abandoned", "key_tag", key)
}

// post sends one JSON exchange through the (possibly chaos-wrapped)
// client. Any transport, status, or decode failure is one error — the
// caller treats them all as transient.
func (w *worker) post(op string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(w.genCtx, http.MethodPost,
		w.cfg.URL+"/fleet/v1/"+op, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := w.client.Do(hreq)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, hresp.Body)
		hresp.Body.Close()
	}()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		return fmt.Errorf("fleet: %s: %s: %s", op, hresp.Status, bytes.TrimSpace(msg))
	}
	if err := json.NewDecoder(hresp.Body).Decode(resp); err != nil {
		return fmt.Errorf("fleet: %s: decode: %w", op, err) // truncation lands here
	}
	return nil
}
