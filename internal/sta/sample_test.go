package sta

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/sample"
	"repro/internal/workload"
)

// mixedProgram alternates long sequential ALU/memory phases with small
// parallel regions, several times over. The sequential phases give the
// sampling controller safepoints to cut at; regimes with short periods
// force fast-forward legs that cross whole parallel regions functionally.
func mixedProgram(t testing.TB, phases, seqIters, parIters int) *isa.Program {
	t.Helper()
	b := asm.New()
	arr := b.Alloc("arr", 8*(parIters+80), 0)
	scratch := b.Alloc("scratch", 8*64, 0)
	for i := 0; i < parIters; i++ {
		b.InitWord(arr+uint64(8*i), int64(1000+i*17))
	}
	for ph := 0; ph < phases; ph++ {
		// Sequential phase: a tight loop with a strided load/store so the
		// fast-forward warming paths (L1D, L1I, predictor) all see traffic.
		b.Li(1, 0)
		b.Li(2, int64(seqIters))
		b.Li(3, int64(scratch))
		seq := fmt.Sprintf("seq%d", ph)
		b.Label(seq)
		b.OpI(isa.ANDI, 4, 1, 63)
		b.OpI(isa.SLLI, 4, 4, 3)
		b.Op3(isa.ADD, 4, 4, 3)
		b.Ld(5, 0, 4)
		b.Op3(isa.ADD, 5, 5, 1)
		b.St(5, 0, 4)
		b.OpI(isa.ADDI, 1, 1, 1)
		b.Br(isa.BLT, 1, 2, seq)
		// Parallel phase: the scaleLoop body over arr.
		b.Li(1, 0)
		b.Li(2, int64(parIters))
		b.Li(3, int64(arr))
		b.Begin(1, 2, 3)
		body := fmt.Sprintf("body%d", ph)
		cont := fmt.Sprintf("cont%d", ph)
		after := fmt.Sprintf("after%d", ph)
		b.Label(body)
		b.Op3(isa.ADD, 9, 1, 0)
		b.OpI(isa.ADDI, 1, 1, 1)
		b.Fork(body)
		b.Tsagd()
		b.OpI(isa.SLLI, 5, 9, 3)
		b.Op3(isa.ADD, 5, 5, 3)
		b.Ld(6, 0, 5)
		b.Li(7, 3)
		b.Op3(isa.DIV, 6, 6, 7)
		b.Op3(isa.ADD, 6, 6, 9)
		b.St(6, 0, 5)
		b.Br(isa.BLT, 1, 2, cont)
		b.Abort()
		b.Jmp(after)
		b.Label(cont)
		b.Thend()
		b.Label(after)
	}
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runSampledMode runs prog under a sampling regime in one stepping mode.
func runSampledMode(t testing.TB, cfg Config, prog *isa.Program, sc sample.Config, mode parModeSpec, skip bool) *Result {
	t.Helper()
	m, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	m.Workers = mode.workers
	m.DisableParallel = mode.disable
	m.DisableSkip = !skip
	m.Sample = sc
	r, err := m.Run()
	if err != nil {
		t.Fatalf("%s skip=%v: %v", mode.name, skip, err)
	}
	return r
}

// TestSampledExactEquivalence pins the sampled-exact contract: a regime
// whose single measurement window is the whole run (sample.Exact) never
// fast-forwards, so every deterministic counter, the memory checksum, and
// the architectural registers are byte-identical to a fully detailed run —
// across the full stepping-mode matrix — and the attached estimate
// degenerates to the exact cycle count.
func TestSampledExactEquivalence(t *testing.T) {
	type caseSpec struct {
		name string
		prog *isa.Program
	}
	cases := []caseSpec{
		{"mixed", mixedProgram(t, 2, 2000, 48)},
	}
	for _, w := range workload.All()[:2] {
		p, err := w.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, caseSpec{w.Short, p})
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := cfgTU(8)
			cfg.WrongThreadExec = true
			cfg.Core.WrongPathExec = true
			ref := runMachine(t, cfg, c.prog)
			for _, mode := range parModes() {
				for _, skip := range []bool{true, false} {
					got := runSampledMode(t, cfg, c.prog, sample.Exact(), mode, skip)
					tag := fmt.Sprintf("%s skip=%v", mode.name, skip)
					sp := got.Stats.Sampled
					if sp == nil {
						t.Fatalf("%s: sampled run carries no estimate", tag)
					}
					detail := got.Stats
					detail.Sampled = nil
					if detail != ref.Stats {
						t.Errorf("%s: counters diverge from detailed run\nref: %+v\ngot: %+v", tag, ref.Stats, detail)
					}
					if got.MemCheck != ref.MemCheck || got.IntRegs != ref.IntRegs {
						t.Errorf("%s: architectural state diverges", tag)
					}
					if sp.FFInsts != 0 {
						t.Errorf("%s: exact regime fast-forwarded %d instructions", tag, sp.FFInsts)
					}
					if sp.EstCycles != float64(ref.Stats.Cycles) {
						t.Errorf("%s: estimate %.0f, want exact %d", tag, sp.EstCycles, ref.Stats.Cycles)
					}
				}
			}
		})
	}
}

// sampleRegime is the test regime: small enough windows that a mixed
// program yields many of them, with fast-forward legs crossing parallel
// regions.
func sampleRegime() sample.Config {
	return sample.Config{WarmupInsts: 1000, MeasureInsts: 2000, PeriodInsts: 12000}
}

// TestSamplingDeterminism pins that a sampled run is one deterministic
// simulation: every stepping mode — sequential or parallel workers, with
// or without event skip — produces the identical estimate, identical
// detailed counters, and identical architectural state. Phase transitions
// quantize to safepoints, which exist identically in all modes.
func TestSamplingDeterminism(t *testing.T) {
	prog := mixedProgram(t, 3, 4000, 48)
	cfg := cfgTU(8)
	cfg.WrongThreadExec = true
	cfg.Core.WrongPathExec = true
	var ref *Result
	for _, mode := range parModes() {
		for _, skip := range []bool{true, false} {
			got := runSampledMode(t, cfg, prog, sampleRegime(), mode, skip)
			tag := fmt.Sprintf("%s skip=%v", mode.name, skip)
			if got.Stats.Sampled == nil {
				t.Fatalf("%s: no estimate attached", tag)
			}
			if ref == nil {
				ref = got
				if got.Stats.Sampled.FFInsts == 0 {
					t.Fatal("regime never fast-forwarded; the matrix is vacuous")
				}
				if got.Stats.Sampled.Windows < 3 {
					t.Fatalf("only %d windows; the matrix is vacuous", got.Stats.Sampled.Windows)
				}
				continue
			}
			detail, refDetail := got.Stats, ref.Stats
			detail.Sampled, refDetail.Sampled = nil, nil
			if detail != refDetail {
				t.Errorf("%s: detailed counters diverge\nref: %+v\ngot: %+v", tag, refDetail, detail)
			}
			if *got.Stats.Sampled != *ref.Stats.Sampled {
				t.Errorf("%s: estimates diverge\nref: %+v\ngot: %+v", tag, *ref.Stats.Sampled, *got.Stats.Sampled)
			}
			if got.MemCheck != ref.MemCheck || got.IntRegs != ref.IntRegs {
				t.Errorf("%s: architectural state diverges", tag)
			}
		}
	}
}

// TestSamplingArchitecturallyExact pins the property everything else rests
// on: whatever the regime, a sampled run ends with exactly the memory
// image of the detailed run — fast-forward is functional execution of the
// same program, not an approximation of it. (Registers are not compared:
// the detailed machine leaves PoisonValue in registers a FORK mask never
// transferred, so when a fast-forward crosses the final parallel region
// the functional register file legitimately holds real values where the
// detailed one holds poison. Memory is the architectural contract.)
func TestSamplingArchitecturallyExact(t *testing.T) {
	prog := mixedProgram(t, 3, 4000, 48)
	cfg := cfgTU(8)
	ref := runMachine(t, cfg, prog)
	for _, sc := range []sample.Config{
		sampleRegime(),
		{WarmupInsts: 0, MeasureInsts: 500, PeriodInsts: 5000},
		{WarmupInsts: 5000, MeasureInsts: 5000, PeriodInsts: 40000},
	} {
		got := runSampledMode(t, cfg, prog, sc, parModes()[0], true)
		if got.MemCheck != ref.MemCheck {
			t.Errorf("%s: memory checksum %#x, detailed %#x", sc.Key(), got.MemCheck, ref.MemCheck)
		}
	}
}

// TestSamplingAccuracy is the estimator's smoke gate (mirrored by the CI
// sampling-accuracy job): on a mostly sequential program the sampled
// cycle estimate must land near the detailed truth, the detailed coverage
// must actually shrink, and the interval must be ordered around the point
// estimate.
func TestSamplingAccuracy(t *testing.T) {
	prog := mixedProgram(t, 4, 20000, 48)
	cfg := cfgTU(8)
	ref := runMachine(t, cfg, prog)
	sc := sample.Config{WarmupInsts: 2000, MeasureInsts: 4000, PeriodInsts: 40000}
	got := runSampledMode(t, cfg, prog, sc, parModes()[0], true)
	sp := got.Stats.Sampled
	if sp == nil {
		t.Fatal("no estimate attached")
	}
	if sp.Windows < 5 {
		t.Fatalf("only %d windows closed; regime mismatched to program length", sp.Windows)
	}
	if sp.FFInsts == 0 {
		t.Fatal("nothing was fast-forwarded")
	}
	if covered := float64(sp.DetailedInsts) / float64(sp.DetailedInsts+sp.FFInsts); covered > 0.5 {
		t.Errorf("detailed coverage %.0f%%; sampling is not sampling", covered*100)
	}
	truth := float64(ref.Stats.Cycles)
	relErr := (sp.EstCycles - truth) / truth
	if relErr < 0 {
		relErr = -relErr
	}
	if relErr > 0.10 {
		t.Errorf("cycle estimate %.0f vs detailed %.0f: %.1f%% error, want <=10%%",
			sp.EstCycles, truth, relErr*100)
	}
	if !(sp.EstCyclesLo <= sp.EstCycles && sp.EstCycles <= sp.EstCyclesHi) {
		t.Errorf("interval [%.0f, %.0f] does not bracket the estimate %.0f",
			sp.EstCyclesLo, sp.EstCyclesHi, sp.EstCycles)
	}
	if !(sp.IPCLo <= sp.IPC && sp.IPC <= sp.IPCHi) {
		t.Errorf("IPC interval [%.3f, %.3f] does not bracket %.3f", sp.IPCLo, sp.IPCHi, sp.IPC)
	}
	// The detailed run must agree with the sampled run architecturally.
	if got.MemCheck != ref.MemCheck {
		t.Errorf("memory checksum diverges: %#x vs %#x", got.MemCheck, ref.MemCheck)
	}
}

// TestFastForwardZeroAllocs pins the fast-forward hot path: once the
// engine and its warming hooks exist (built at run start), bulk functional
// execution — interpreter steps, cache warming, predictor warming —
// allocates nothing. Sampled throughput rides on this staying true.
func TestFastForwardZeroAllocs(t *testing.T) {
	cfg := cfgTU(2)
	prog := allocLoop(t, 500_000_000)
	m, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	m.Sample = sample.Config{WarmupInsts: 1000, MeasureInsts: 1000, PeriodInsts: 1 << 40}
	m.initSample()
	tu := &m.tus[0]
	m.ffTU = tu.id
	m.eng.Int = &tu.core.IntRegs
	m.eng.FP = &tu.core.FPRegs
	m.eng.Reset(prog.Entry)
	// Prime: first touches allocate memory-image pages and grow cache-side
	// structures; steady state must not.
	if _, err := m.eng.StepN(200_000); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if m.eng.Halted {
			t.Fatal("loop halted during the guard; raise iters")
		}
		if _, err := m.eng.StepN(10_000); err != nil {
			t.Fatal(err)
		}
		m.sampler.AddFF(10_000)
	})
	if allocs != 0 {
		t.Fatalf("fast-forward allocates %.3f allocs per 10k-instruction chunk, want 0", allocs)
	}
}
