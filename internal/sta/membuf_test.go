package sta

import (
	"testing"

	"repro/internal/memimg"
)

func TestMemBufOwnStore(t *testing.T) {
	m := newMemBuf(8)
	m.writeOwn(0x100, 7)
	v, st := m.lookup(0x100, 0)
	if st != mbHit || v != 7 {
		t.Fatalf("lookup = %d,%v", v, st)
	}
	// Overwrite keeps a single slot.
	m.writeOwn(0x100, 9)
	if m.pendingStores() != 1 {
		t.Errorf("pendingStores = %d", m.pendingStores())
	}
	v, _ = m.lookup(0x100, 0)
	if v != 9 {
		t.Errorf("overwritten value = %d", v)
	}
}

func TestMemBufAnnounceStallsUntilDelivered(t *testing.T) {
	m := newMemBuf(8)
	m.announce(0x200, 10)
	if _, st := m.lookup(0x200, 20); st != mbStall {
		t.Fatal("announced-but-undelivered entry should stall")
	}
	m.deliver(0x200, 42, 15)
	if _, st := m.lookup(0x200, 12); st != mbStall {
		t.Fatal("entry should stall before availability cycle")
	}
	v, st := m.lookup(0x200, 15)
	if st != mbHit || v != 42 {
		t.Fatalf("lookup after delivery = %d,%v", v, st)
	}
}

func TestMemBufMiss(t *testing.T) {
	m := newMemBuf(8)
	if _, st := m.lookup(0x300, 0); st != mbMiss {
		t.Fatal("empty buffer should miss")
	}
}

func TestMemBufOwnWinsOverUpstream(t *testing.T) {
	m := newMemBuf(8)
	m.announce(0x400, 0)
	m.deliver(0x400, 1, 0)
	m.writeOwn(0x400, 2)
	v, st := m.lookup(0x400, 100)
	if st != mbHit || v != 2 {
		t.Fatalf("own store must win: %d,%v", v, st)
	}
}

func TestMemBufDrainOrder(t *testing.T) {
	m := newMemBuf(8)
	m.writeOwn(0x10, 1)
	m.writeOwn(0x20, 2)
	m.writeOwn(0x30, 3)
	var addrs []uint64
	for {
		s, ok := m.drainOne()
		if !ok {
			break
		}
		addrs = append(addrs, s.addr)
	}
	if len(addrs) != 3 || addrs[0] != 0x10 || addrs[1] != 0x20 || addrs[2] != 0x30 {
		t.Errorf("drain order = %#v", addrs)
	}
	if m.pendingStores() != 0 {
		t.Error("stores remain after drain")
	}
}

func TestMemBufDrainAfterOverwrite(t *testing.T) {
	m := newMemBuf(8)
	m.writeOwn(0x10, 1)
	m.writeOwn(0x20, 2)
	m.writeOwn(0x10, 5) // overwrite in place
	s, _ := m.drainOne()
	if s.addr != 0x10 || s.val != 5 {
		t.Errorf("drained %+v, want latest value at original position", s)
	}
	// A new write after partial drain still works.
	m.writeOwn(0x30, 3)
	s, _ = m.drainOne()
	if s.addr != 0x20 {
		t.Errorf("second drain = %+v", s)
	}
	s, _ = m.drainOne()
	if s.addr != 0x30 || s.val != 3 {
		t.Errorf("third drain = %+v", s)
	}
}

func TestMemBufDrainAllTo(t *testing.T) {
	m := newMemBuf(8)
	img := memimg.New()
	m.writeOwn(0x40, 11)
	m.writeOwn(0x48, 12)
	if n := m.drainAllTo(img); n != 2 {
		t.Errorf("drained %d", n)
	}
	if img.ReadWord(0x40) != 11 || img.ReadWord(0x48) != 12 {
		t.Error("drainAllTo lost values")
	}
}

func TestMemBufInherit(t *testing.T) {
	parent := newMemBuf(8)
	parent.announce(0x100, 5)
	parent.deliver(0x100, 77, 6)
	parent.announce(0x200, 5) // pending, no data
	targets := map[uint64]*mbEntry{
		0x300: {hasVal: true, val: 88},
		0x400: {},
	}
	child := newMemBuf(8)
	child.inheritFrom(parent, targets, 100, 2)
	// Inherited delivered entry available no earlier than fork time.
	if v, st := child.lookup(0x100, 100); st != mbHit || v != 77 {
		t.Errorf("inherited upstream = %d,%v", v, st)
	}
	if _, st := child.lookup(0x200, 200); st != mbStall {
		t.Error("inherited pending entry should stall")
	}
	// Parent's own targets become the child's upstream.
	if _, st := child.lookup(0x300, 101); st != mbStall {
		t.Error("parent target data should respect hop delay")
	}
	if v, st := child.lookup(0x300, 102); st != mbHit || v != 88 {
		t.Errorf("parent target = %d,%v", v, st)
	}
	if _, st := child.lookup(0x400, 200); st != mbStall {
		t.Error("parent pending target should stall")
	}
}

func TestMemBufOverflowCounted(t *testing.T) {
	m := newMemBuf(2)
	m.writeOwn(0x10, 1)
	m.writeOwn(0x20, 2)
	if m.Overflows != 0 {
		t.Fatal("premature overflow")
	}
	m.writeOwn(0x30, 3)
	if m.Overflows == 0 {
		t.Error("overflow not counted")
	}
}

func TestMemBufReset(t *testing.T) {
	m := newMemBuf(8)
	m.writeOwn(0x10, 1)
	m.announce(0x20, 0)
	m.reset()
	if m.size() != 0 || m.pendingStores() != 0 {
		t.Error("reset incomplete")
	}
}
