//go:build race

package sta

// raceMode trims the heaviest test inputs when the race detector (and its
// order-of-magnitude slowdown) is active, keeping `go test -race` within
// the default package timeout on small hosts.
const raceMode = true
