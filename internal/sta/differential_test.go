package sta

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/interp"
	"repro/internal/isa"
	"repro/internal/mem"
)

// slack mirrors workload.Slack for wrong-thread overrun headroom.
const slack = 80

// emitTestRegion is a local copy of the workload package's region
// skeleton (continuation/fork/TSAG/body/exit), used to generate random
// thread-pipelined code without importing unexported helpers.
func emitTestRegion(b *asm.Builder, name string, mask []int, tsag, body func()) {
	b.Begin(mask...)
	b.Label(name + "_body")
	b.Op3(isa.ADD, 9, 1, 0)
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Fork(name + "_body")
	if tsag != nil {
		tsag()
	}
	b.Tsagd()
	body()
	b.Br(isa.BLT, 1, 2, name+"_cont")
	b.Abort()
	b.Jmp(name + "_after")
	b.Label(name + "_cont")
	b.Thend()
	b.Label(name + "_after")
}

// randParallelProgram generates a random but well-formed thread-pipelined
// program: an outer loop of parallel regions whose iteration bodies mix
// random arithmetic, loads from shared read-only data, stores to
// iteration-private output slots, and (optionally) a cross-iteration
// dependence carried through TSA/TST. The generator observes the workload
// discipline from the package comment, so every generated program must
// produce interpreter-identical results on any machine configuration.
func randParallelProgram(rng *rand.Rand, windows, window int, useTST bool) *isa.Program {
	b := asm.New()
	n := windows * window
	shared := b.Alloc("shared", 8*1024, 0)
	out := b.Alloc("out", 8*(n+slack), 0)
	cell := b.Alloc("cell", 8*(n+slack), 0)
	for i := 0; i < 1024; i++ {
		b.InitWord(shared+uint64(8*i), rng.Int63n(1<<40))
	}

	b.Li(3, int64(shared))
	b.Li(4, int64(out))
	b.Li(5, int64(cell))
	b.Li(21, 0)
	b.Li(22, int64(windows))
	b.Li(23, int64(window))

	intOps := []isa.Op{isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR, isa.SLT}
	reg := func() int { return 10 + rng.Intn(8) } // r10..r17 body temps

	hammock := 0
	b.Label("outer")
	b.Op3(isa.MUL, 1, 21, 23)
	b.Op3(isa.ADD, 2, 1, 23)
	emitTestRegion(b, "rnd", []int{1, 2, 3, 4, 5, 21, 22, 23},
		func() {
			if useTST {
				// Announce my target store cell[i].
				b.OpI(isa.SLLI, 18, 9, 3)
				b.Op3(isa.ADD, 18, 18, 5)
				b.Tsa(0, 18)
			}
		},
		func() {
			// Seed every body temp from the iteration index: a forked
			// thread's unforwarded registers are poisoned, so any read
			// before write would (correctly) break the run.
			for rr := 10; rr <= 17; rr++ {
				b.OpI(isa.ADDI, rr, 9, int64(rr*7))
			}
			b.Op3(isa.MUL, 12, 9, 9)
			ops := 6 + rng.Intn(10)
			for k := 0; k < ops; k++ {
				switch rng.Intn(5) {
				case 0, 1:
					b.Op3(intOps[rng.Intn(len(intOps))], reg(), reg(), reg())
				case 2:
					b.OpI(isa.ADDI, reg(), reg(), rng.Int63n(64)-32)
				case 3:
					// Load from shared (read-only in parallel regions).
					b.OpI(isa.ANDI, 19, reg(), 1023)
					b.OpI(isa.SLLI, 19, 19, 3)
					b.Op3(isa.ADD, 19, 19, 3)
					b.Ld(reg(), 0, 19)
				case 4:
					// Short data-dependent hammock.
					hammock++
					lbl := fmt.Sprintf("rnd_h%d", hammock)
					b.Br(isa.BGE, reg(), reg(), lbl)
					b.OpI(isa.ADDI, reg(), reg(), 3)
					b.Label(lbl)
				}
			}
			if useTST {
				// Cross-iteration chain: cell[i] = cell[i-1] + f(temps);
				// iteration 0 of each *window* reads cell[i-1] of the
				// previous window, which has been written back by then.
				b.OpI(isa.SLLI, 18, 9, 3)
				b.Op3(isa.ADD, 18, 18, 5)
				b.Br(isa.BEQ, 9, 0, "rnd_first")
				b.Ld(19, -8, 18)
				b.Jmp("rnd_sum")
				b.Label("rnd_first")
				b.Li(19, 0)
				b.Label("rnd_sum")
				b.Op3(isa.ADD, 19, 19, 10)
				b.Tst(19, 0, 18)
			}
			// Private output: out[i] = mix of temps.
			b.Op3(isa.XOR, 16, 10, 11)
			b.Op3(isa.ADD, 16, 16, 12)
			b.OpI(isa.SLLI, 17, 9, 3)
			b.Op3(isa.ADD, 17, 17, 4)
			b.St(16, 0, 17)
		})
	b.OpI(isa.ADDI, 21, 21, 1)
	b.Br(isa.BLT, 21, 22, "outer")
	// Epilogue (sequential): fold every out[] cell into an accumulator and
	// then give EVERY integer register a value derived from it, so that the
	// soak test can require the machine's complete architectural register
	// file — not just memory — to match the interpreter at halt. (A forked
	// thread's unforwarded registers are intentionally poisoned, so without
	// this the register files would differ by design, not by bug.)
	b.Op3(isa.MUL, 24, 22, 23) // n = windows*window
	b.Li(25, 0)                // acc
	b.Li(26, 0)                // i
	b.Label("fold")
	b.Br(isa.BGE, 26, 24, "folddone")
	b.OpI(isa.SLLI, 27, 26, 3)
	b.Op3(isa.ADD, 27, 27, 4)
	b.Ld(28, 0, 27)
	b.Op3(isa.XOR, 25, 25, 28)
	b.OpI(isa.ADDI, 26, 26, 1)
	b.Jmp("fold")
	b.Label("folddone")
	for k := 1; k < isa.NumIntRegs; k++ {
		if k != 25 {
			b.OpI(isa.ADDI, k, 25, int64(k))
		}
	}
	b.Halt()
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// TestDifferentialParallelPrograms runs random parallel programs on
// several machine shapes and configurations and requires the
// interpreter's exact memory image from all of them.
func TestDifferentialParallelPrograms(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 3
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)*6700417 + 1))
		useTST := seed%2 == 0
		p := randParallelProgram(rng, 3+rng.Intn(3), 8+rng.Intn(9), useTST)
		ref, err := interp.Run(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, tus := range []int{1, 3, 8} {
			cfg := cfgTU(tus)
			if seed%3 == 0 {
				cfg.WrongThreadExec = true
				cfg.Core.WrongPathExec = true
				cfg.Mem.Side = mem.SideWEC
			}
			r := runMachine(t, cfg, p)
			if r.MemCheck != ref.MemCheck {
				t.Fatalf("seed %d, %d TUs (tst=%v): machine %#x, interp %#x",
					seed, tus, useTST, r.MemCheck, ref.MemCheck)
			}
		}
	}
}

// TestDifferentialSoak is the randomized differential soak: at least 200
// distinct seeded programs per run (25 under -short), each executed on a
// rotating machine shape and wrong-execution configuration, requiring the
// interpreter's exact memory image AND complete architectural integer
// register file. Any divergence is reported with its seed so the failing
// program can be replayed deterministically.
func TestDifferentialSoak(t *testing.T) {
	n := 200
	if testing.Short() || raceMode {
		n = 25
	}
	shapes := []int{1, 2, 4, 8}
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(int64(i)*2654435761 + 99))
		useTST := rng.Intn(2) == 0
		p := randParallelProgram(rng, 2, 4+rng.Intn(5), useTST)
		ref, err := interp.Run(p)
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		cfg := cfgTU(shapes[i%len(shapes)])
		switch i % 3 {
		case 1:
			cfg.WrongThreadExec = true
			cfg.Core.WrongPathExec = true
			cfg.Mem.Side = mem.SideWEC
		case 2:
			cfg.Core.WrongPathExec = true
			cfg.Mem.Side = mem.SideVC
		}
		r := runMachine(t, cfg, p)
		if r.MemCheck != ref.MemCheck {
			t.Fatalf("seed %d (tst=%v, %dTU, mode %d): memory %#x, interp %#x",
				i, useTST, cfg.NumTUs, i%3, r.MemCheck, ref.MemCheck)
		}
		if r.IntRegs != ref.IntRegs {
			for k := 0; k < isa.NumIntRegs; k++ {
				if r.IntRegs[k] != ref.IntRegs[k] {
					t.Fatalf("seed %d (tst=%v, %dTU, mode %d): r%d = %d, interp %d",
						i, useTST, cfg.NumTUs, i%3, k, r.IntRegs[k], ref.IntRegs[k])
				}
			}
		}
	}
}
