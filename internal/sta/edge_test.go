package sta

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/interp"
	"repro/internal/isa"
	"repro/internal/mem"
)

// TestSequentialUpdateCoherenceDuringRun: a sequential phase stores to a
// block that an idle TU still caches from the previous region; the update
// protocol must refresh it without invalidating (§3.2.2), and the next
// region's read must see the new value.
func TestSequentialUpdateCoherenceDuringRun(t *testing.T) {
	const n = 8
	b := asm.New()
	arr := b.Alloc("arr", 8*(n+80), 0)
	for i := 0; i < n; i++ {
		b.InitWord(arr+uint64(8*i), int64(i))
	}
	b.Li(25, 0) // outer counter
	b.Label("outer")
	b.Li(1, 0)
	b.Li(2, n)
	b.Li(3, int64(arr))
	b.Begin(1, 2, 3, 25)
	b.Label("body")
	b.Op3(isa.ADD, 9, 1, 0)
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Fork("body")
	b.Tsagd()
	b.OpI(isa.SLLI, 5, 9, 3)
	b.Op3(isa.ADD, 5, 5, 3)
	b.Ld(6, 0, 5)
	b.OpI(isa.ADDI, 6, 6, 10)
	b.St(6, 0, 5)
	b.Br(isa.BLT, 1, 2, "cont")
	b.Abort()
	b.Jmp("after")
	b.Label("cont")
	b.Thend()
	b.Label("after")
	// Sequential phase: overwrite arr[0] directly — other TUs still cache
	// that block from the region.
	b.Li(10, 1000)
	b.St(10, 0, 3)
	b.OpI(isa.ADDI, 25, 25, 1)
	b.Li(26, 3)
	b.Br(isa.BLT, 25, 26, "outer")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := interp.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfgTU(4), p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.MemCheck != ref.MemCheck {
		t.Fatalf("checksum %#x, interp %#x", r.MemCheck, ref.MemCheck)
	}
	if m.Hierarchy().UpdateBus == 0 {
		t.Error("no update-coherence bus traffic recorded")
	}
}

// TestWrongThreadsStalledAtGateDieAtBegin: a wrong thread whose TSAG-chain
// flag never arrives (its predecessor retired or resumed) must not wedge
// the machine; the next BEGIN kills it.
func TestWrongThreadsStalledAtGateDieAtBegin(t *testing.T) {
	// The repeated-regions program with wth exercises this; success is
	// simply termination with the right answer.
	const n, outer = 16, 3
	b := asm.New()
	arr := b.Alloc("arr", 8*(n+80), 0)
	b.Li(25, 0)
	b.Label("outer")
	b.Li(1, 0)
	b.Li(2, n)
	b.Li(3, int64(arr))
	b.Begin(1, 2, 3, 25)
	b.Label("body")
	b.Op3(isa.ADD, 9, 1, 0)
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Fork("body")
	b.Tsagd()
	b.OpI(isa.SLLI, 5, 9, 3)
	b.Op3(isa.ADD, 5, 5, 3)
	b.Ld(6, 0, 5)
	b.OpI(isa.ADDI, 6, 6, 1)
	b.St(6, 0, 5)
	b.Br(isa.BLT, 1, 2, "cont")
	b.Abort()
	b.Jmp("after")
	b.Label("cont")
	b.Thend()
	b.Label("after")
	b.OpI(isa.ADDI, 25, 25, 1)
	b.Li(26, outer)
	b.Br(isa.BLT, 25, 26, "outer")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := interp.Run(p)
	cfg := cfgTU(8)
	cfg.WrongThreadExec = true
	cfg.Core.WrongPathExec = true
	cfg.Mem.Side = mem.SideWEC
	cfg.MaxCycles = 5_000_000
	r := runMachine(t, cfg, p)
	if r.MemCheck != ref.MemCheck {
		t.Fatal("checksum mismatch")
	}
	// arr[i] must equal i's initial value (0) + outer increments.
	if got := r.Stats.Aborts; got != outer {
		t.Errorf("aborts = %d, want %d", got, outer)
	}
}

// TestMemBufOverflowSurfaces: a thread with more buffered stores than the
// 128-entry speculative memory buffer must still complete correctly while
// the overflow statistic records the violation.
func TestMemBufOverflowSurfaces(t *testing.T) {
	const stores = 200
	b := asm.New()
	arr := b.Alloc("arr", 8*(stores+600), 0)
	b.Li(1, 0)
	b.Li(2, 1) // single-iteration region
	b.Li(3, int64(arr))
	b.Begin(1, 2, 3)
	b.Label("body")
	b.Op3(isa.ADD, 9, 1, 0)
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Fork("body")
	b.Tsagd()
	for i := 0; i < stores; i++ {
		b.Li(6, int64(i))
		b.St(6, int64(8*i), 3)
	}
	b.Br(isa.BLT, 1, 2, "cont")
	b.Abort()
	b.Jmp("after")
	b.Label("cont")
	b.Thend()
	b.Label("after")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := interp.Run(p)
	cfg := cfgTU(2)
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.MemCheck != ref.MemCheck {
		t.Fatal("results diverged")
	}
	if m.mbOverflows == 0 {
		t.Error("memory buffer overflow not counted")
	}
}

// TestFP registers are not forwarded at fork: a body that reads an FP
// register set before the region gets poison, and the checksum test would
// catch it — here we verify the poison is actually delivered.
func TestFPNotForwardedAtFork(t *testing.T) {
	b := asm.New()
	out := b.Alloc("out", 8*90, 0)
	b.Fli(1, 2.5) // set before the region; NOT forwarded
	b.Li(1, 0)
	b.Li(2, 2)
	b.Li(3, int64(out))
	b.Begin(1, 2, 3)
	b.Label("body")
	b.Op3(isa.ADD, 9, 1, 0)
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Fork("body")
	b.Tsagd()
	// Store f1's bits: iteration 0 (head, kept its FP file) sees 2.5;
	// iteration 1 (forked) must see poison, NOT 2.5.
	b.OpI(isa.SLLI, 5, 9, 3)
	b.Op3(isa.ADD, 5, 5, 3)
	b.Fst(1, 0, 5)
	b.Br(isa.BLT, 1, 2, "cont")
	b.Abort()
	b.Jmp("after")
	b.Label("cont")
	b.Thend()
	b.Label("after")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfgTU(2), p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	head := m.Image().ReadFloat(out)
	forked := m.Image().ReadWord(out + 8)
	if head != 2.5 {
		t.Errorf("head thread f1 = %g, want 2.5", head)
	}
	if forked == int64(4612811918334230528) /* bits of 2.5 */ {
		t.Error("forked thread silently inherited an unforwarded FP register")
	}
	_ = r
}
