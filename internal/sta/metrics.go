// Metrics wiring: when a metrics.Collector is attached to a Machine, this
// file connects every instrumentation point before the run starts — the
// cores' load-to-use probes, the data units' latency probes, the counter
// registry (scoped per thread unit, per cache, and machine-wide), the
// interval sampler's derived series, and the timeline tracer.
package sta

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// attachAttrib wires the attribution collector into every data unit and,
// when a metrics collector is also attached, into its counter registry and
// timeline. Called once at the top of Run, after attachMetrics.
func (m *Machine) attachAttrib() {
	a := m.Attrib
	if a == nil {
		return
	}
	m.hier.SetAttrib(a)
	if c := m.Metrics; c != nil {
		a.RegisterInto(c.Registry)
		if a.Timeline == nil {
			a.Timeline = c.Timeline
		}
	}
}

// attachMetrics wires the collector into the machine; called once at the
// top of Run. With a nil collector the machine runs uninstrumented: every
// hook site below reduces to an untaken nil check.
func (m *Machine) attachMetrics() {
	c := m.Metrics
	if c == nil {
		return
	}
	for i := range m.tus {
		m.tus[i].core.SetMetrics(c)
	}
	m.hier.SetMetrics(c)
	if c.Timeline != nil {
		if m.Trace != nil {
			m.Trace = trace.Multi{m.Trace, c.Timeline}
		} else {
			m.Trace = c.Timeline
		}
	}
	if c.Registry != nil {
		m.registerCounters()
	}
	if c.Sampler != nil {
		m.registerSeries()
	}
}

// registerCounters exposes every simulator statistic in the registry,
// scoped "tuN" (core counters), "l1dN" (data unit counters), "l2", and
// "machine". Values are read at export time.
func (m *Machine) registerCounters() {
	reg := m.Metrics.Registry
	for i := range m.tus {
		tu := &m.tus[i]
		cs := &tu.core.Stats
		scope := fmt.Sprintf("tu%d", tu.id)
		reg.RegisterFunc(scope, "commits", func() uint64 { return cs.Commits })
		reg.RegisterFunc(scope, "wrong_commits", func() uint64 { return cs.WrongCommits })
		reg.RegisterFunc(scope, "branches", func() uint64 { return cs.Branches })
		reg.RegisterFunc(scope, "mispredicts", func() uint64 { return cs.Mispredicts })
		reg.RegisterFunc(scope, "loads", func() uint64 { return cs.Loads })
		reg.RegisterFunc(scope, "stores", func() uint64 { return cs.Stores })
		reg.RegisterFunc(scope, "wrong_path_loads", func() uint64 { return cs.WrongPathLoadsIssued })
		reg.RegisterFunc(scope, "squashed_insts", func() uint64 { return cs.SquashedInsts })
		reg.RegisterFunc(scope, "fetch_stall_icache", func() uint64 { return cs.FetchStallICache })

		du := m.hier.DUnit(tu.id)
		cscope := fmt.Sprintf("l1d%d", tu.id)
		reg.RegisterFunc(cscope, "accesses", func() uint64 { return du.Accesses })
		reg.RegisterFunc(cscope, "misses", func() uint64 { return du.Misses })
		reg.RegisterFunc(cscope, "traffic", func() uint64 { return du.Traffic })
		reg.RegisterFunc(cscope, "wrong_accesses", func() uint64 { return du.WrongAcc })
		reg.RegisterFunc(cscope, "side_hits", func() uint64 { return du.SideHits })
		reg.RegisterFunc(cscope, "side_inserts", func() uint64 { return du.SideInserts })
		reg.RegisterFunc(cscope, "pref_issued", func() uint64 { return du.PrefIssued })
		reg.RegisterFunc(cscope, "pref_useful", func() uint64 { return du.PrefUseful })
		reg.RegisterFunc(cscope, "wrong_useful", func() uint64 { return du.WrongUseful })
		reg.RegisterFunc(cscope, "update_recv", func() uint64 { return du.UpdateRecv })
	}
	reg.RegisterFunc("l2", "accesses", func() uint64 { return m.hier.L2Accesses })
	reg.RegisterFunc("l2", "misses", func() uint64 { return m.hier.L2Misses })
	reg.RegisterFunc("l2", "dram_fills", func() uint64 { return m.hier.DRAMFills })
	reg.RegisterFunc("l2", "writebacks", func() uint64 { return m.hier.Writebacks })
	reg.RegisterFunc("l2", "update_bus", func() uint64 { return m.hier.UpdateBus })
	reg.RegisterFunc("machine", "forks", func() uint64 { return m.forks })
	reg.RegisterFunc("machine", "aborts", func() uint64 { return m.aborts })
	reg.RegisterFunc("machine", "wrong_threads", func() uint64 { return m.wrongThreads })
	reg.RegisterFunc("machine", "membuf_overflows", func() uint64 { return m.mbOverflows })
}

// registerSeries defines the interval time series: rates from cumulative
// counters, occupancies as levels. Probes run on the simulation goroutine
// at interval boundaries only.
func (m *Machine) registerSeries() {
	s := m.Metrics.Sampler
	sumTU := func(f func(tu *threadUnit) uint64) func() float64 {
		return func() float64 {
			var n uint64
			for i := range m.tus {
				n += f(&m.tus[i])
			}
			return float64(n)
		}
	}
	commits := sumTU(func(tu *threadUnit) uint64 { return tu.core.Stats.Commits })
	l1Acc := sumTU(func(tu *threadUnit) uint64 { return m.hier.DUnit(tu.id).Accesses })
	l1Miss := sumTU(func(tu *threadUnit) uint64 { return m.hier.DUnit(tu.id).Misses })
	sideHits := sumTU(func(tu *threadUnit) uint64 { return m.hier.DUnit(tu.id).SideHits })
	missEvents := sumTU(func(tu *threadUnit) uint64 {
		du := m.hier.DUnit(tu.id)
		return du.Misses + du.SideHits
	})
	wrongAcc := sumTU(func(tu *threadUnit) uint64 { return m.hier.DUnit(tu.id).WrongAcc })

	s.Add("ipc", metrics.PerCycle, commits, nil)
	s.Add("l1d_miss_rate", metrics.Ratio, l1Miss, l1Acc)
	s.Add("l2_miss_rate", metrics.Ratio,
		func() float64 { return float64(m.hier.L2Misses) },
		func() float64 { return float64(m.hier.L2Accesses) })
	s.Add("wec_hit_rate", metrics.Ratio, sideHits, missEvents)
	s.Add("wrong_load_rate", metrics.PerCycle, wrongAcc, nil)
	s.Add("tu_occupancy", metrics.Level, func() float64 {
		n := 0
		for i := range m.tus {
			if m.tus[i].state != tuIdle {
				n++
			}
		}
		return float64(n)
	}, nil)
	s.Add("membuf_occupancy", metrics.Level,
		sumTU(func(tu *threadUnit) uint64 { return uint64(tu.memBuf.size()) }), nil)
	s.Add("forks", metrics.Delta, func() float64 { return float64(m.forks) }, nil)
	s.Add("aborts", metrics.Delta, func() float64 { return float64(m.aborts) }, nil)
}
