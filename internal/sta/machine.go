package sta

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/asm"
	"repro/internal/attrib"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memimg"
	"repro/internal/metrics"
	"repro/internal/sample"
	"repro/internal/simerr"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config describes a whole superthreaded machine.
type Config struct {
	NumTUs int
	Core   core.Config
	Mem    mem.Config

	// ForkDelay is the fixed cost of initiating a thread (§4.1: 4 cycles);
	// TransferPerValue is the additional cost per forwarded register.
	ForkDelay        int
	TransferPerValue int

	// MemBufEntries sizes the speculative memory buffer (§4.1: 128).
	MemBufEntries int

	// WrongThreadExec marks aborted successors wrong instead of killing
	// them (wth configurations).
	WrongThreadExec bool

	// MaxCycles bounds a run; exceeded means deadlock or runaway.
	MaxCycles uint64

	// WatchdogCycles is the forward-progress watchdog window: if no
	// instruction retires across any thread unit (and no thread starts or
	// drains a store) for this many consecutive cycles, the run fails fast
	// with a simerr.Deadlock carrying a full per-TU state dump — far
	// earlier and far more diagnosable than the MaxCycles bound. 0 means
	// DefaultWatchdogCycles.
	WatchdogCycles uint64
}

// DefaultWatchdogCycles is the default forward-progress window. The
// longest legitimate retirement gaps in this machine are a few hundred
// cycles (DRAM round trips, fork transfers, write-back drains), so a
// million-cycle window leaves three orders of magnitude of slack while
// still firing 500x earlier than the default MaxCycles bound.
const DefaultWatchdogCycles = 1_000_000

// DefaultConfig returns the §5.2 default machine: eight 8-issue thread
// units with 8 KB direct-mapped L1 data caches.
func DefaultConfig() Config {
	return Config{
		NumTUs:           8,
		Core:             core.DefaultConfig(),
		Mem:              mem.DefaultConfig(),
		ForkDelay:        4,
		TransferPerValue: 2,
		MemBufEntries:    128,
		MaxCycles:        500_000_000,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumTUs <= 0 || c.NumTUs > 63 {
		return fmt.Errorf("sta: NumTUs %d out of range [1,63]", c.NumTUs)
	}
	if c.ForkDelay < 0 || c.TransferPerValue < 0 {
		return fmt.Errorf("sta: negative fork costs")
	}
	if c.MemBufEntries <= 0 {
		return fmt.Errorf("sta: memory buffer must have entries")
	}
	if err := c.Core.Validate(); err != nil {
		return err
	}
	return c.Mem.Validate()
}

// tuState is a thread unit's lifecycle state.
type tuState uint8

const (
	tuIdle    tuState = iota
	tuRun             // core executing (sequential or thread body)
	tuWBWait          // body finished; waiting to become the oldest thread
	tuWBDrain         // draining the memory buffer to the caches
)

// pendingFork is a committed FORK waiting for its target TU and delay.
type pendingFork struct {
	fromTU    int
	target    int
	mask      int64
	regs      [isa.NumIntRegs]int64
	parentGen uint64 // thread identity of the forking thread
	startAt   uint64 // 0 = not yet scheduled (target TU busy)
}

// Result summarizes one complete program run on the machine.
type Result struct {
	Stats    stats.Sim
	MemCheck uint64
	IntRegs  [isa.NumIntRegs]int64 // architectural registers of the halting TU
}

// Machine is one superthreaded processor executing one program.
type Machine struct {
	// Trace, when non-nil, receives thread-lifecycle events.
	Trace trace.Tracer

	// Metrics, when non-nil, receives cycle-level observability data:
	// counters, interval series, latency histograms, and (when its
	// Timeline is set) a Perfetto-loadable cycle timeline. Attach before
	// Run; a nil collector costs nothing on the simulation's hot paths.
	Metrics *metrics.Collector

	// Attrib, when non-nil, receives fill-provenance and pollution events
	// from every data unit: the prefetch-effectiveness attribution layer.
	// Attach before Run; read results with Attrib.Report after. When
	// Metrics is also attached, the attribution counters register in its
	// registry and pollution/promotion instants go to its timeline.
	Attrib *attrib.Collector

	// DisableSkip forces the machine to step every cycle instead of
	// fast-forwarding over provably idle spans. Results are identical
	// either way (the skip-equivalence test asserts it); the knob exists
	// for that test and for debugging.
	DisableSkip bool

	// Chaos, when non-nil, draws deterministic fault injections (panics,
	// artificial livelocks, slow cycles) at the machine's probability
	// points. Attach before Run; a nil injector costs one untaken nil
	// check per cycle and leaves results bit-identical.
	Chaos *chaos.Injector

	// Tap, when non-nil, receives live progress publications from the run
	// loop: lock-free cycle/commit counters, a throttled sample ring, and
	// a bridged metrics snapshot, all safe to read from other goroutines
	// while the run is in flight (heartbeats, the telemetry HTTP server,
	// the flight recorder). Attach before Run; a nil tap costs one untaken
	// nil check per run-loop iteration.
	Tap *ProgressTap

	// Workers caps the goroutines stepping thread units in parallel.
	// 0 picks automatically (one worker per four TUs, bounded by
	// GOMAXPROCS); 1 forces the plain sequential loop. Results are
	// bit-identical at every setting (the parallel-equivalence test
	// asserts it); the knob trades rendezvous overhead against core
	// throughput.
	Workers int

	// DisableParallel forces the sequential cycle loop regardless of
	// Workers, mirroring DisableSkip: results are identical either way,
	// the knob exists for the equivalence tests and for debugging.
	DisableParallel bool

	// Sample, when enabled, switches the run to SMARTS-style sampled
	// simulation: detailed execution only inside the regime's measurement
	// windows, functional fast-forward with cache/predictor warming in
	// between, and a whole-run statistical estimate (Stats.Sampled) on the
	// result. The zero value is fully detailed simulation. See sample.go.
	Sample sample.Config

	cfg  Config
	prog *isa.Program
	img  *memimg.Image
	hier *mem.Hierarchy

	// tus holds the thread units inline, one contiguous block indexed by
	// TU id: the per-cycle scheduling scans (step, nextWake, classify)
	// walk every TU touching a few scalar fields each, and a value slice
	// keeps those fields at fixed strides instead of chasing one pointer
	// per TU. The slice is sized once at New and never reallocated —
	// cores and the hierarchy hold &tus[i] for the machine's lifetime —
	// so iteration must always go through &m.tus[i], never a range copy.
	tus []threadUnit

	cycle      uint64
	halted     bool
	inParallel bool
	regionMask int64
	pending    *pendingFork
	seqLoops   bool

	// progress counts retirement-class events (committed instructions,
	// drained stores, thread starts and deaths); the watchdog fires when
	// it stays flat for WatchdogCycles. livelocked is set by the chaos
	// injector to freeze every TU so the watchdog provably trips.
	progress   uint64
	livelocked bool

	parCycles    uint64
	forks        uint64
	aborts       uint64
	wrongThreads uint64
	mbOverflows  uint64

	// Parallel-stepping state (see parallel.go). computing is true during
	// a compute phase, when thread units defer cross-TU effects;
	// windowBase anchors a window's per-cycle effect slots. wdLast /
	// wdLastCycle are the forward-progress watchdog's bookkeeping, held on
	// the machine so multi-cycle windows observe progress at the same
	// cycles the sequential loop does.
	par         *parRunner
	computing   bool
	windowBase  uint64
	windowOK    bool
	wdLast      uint64
	wdLastCycle uint64

	// Engagement counters: how many parallel segments and two-cycle
	// windows ran. Tests assert the parallel path is actually exercised.
	statSegments uint64
	statWindows  uint64

	// Sampled-simulation state (see sample.go): the phase controller, the
	// persistent functional engine for fast-forward legs, and the TU its
	// warming hooks currently target.
	sampler *sample.Sampler
	eng     *interp.Engine
	ffTU    int
}

// New builds a machine for the given program.
func New(cfg Config, prog *isa.Program) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hier, err := mem.NewHierarchy(cfg.NumTUs, cfg.Mem)
	if err != nil {
		return nil, err
	}
	img := memimg.New()
	asm.LoadData(prog, img)
	m := &Machine{
		cfg:      cfg,
		prog:     prog,
		img:      img,
		hier:     hier,
		seqLoops: cfg.NumTUs == 1,
	}
	ccfg := cfg.Core
	ccfg.SeqLoops = m.seqLoops
	m.tus = make([]threadUnit, cfg.NumTUs)
	for id := 0; id < cfg.NumTUs; id++ {
		tu := &m.tus[id]
		tu.init(m, id)
		c, err := core.New(ccfg, prog, hier.IUnit(id), tu, tu)
		if err != nil {
			return nil, err
		}
		tu.core = c
	}
	return m, nil
}

// Hierarchy exposes the memory system (stats, tests).
func (m *Machine) Hierarchy() *mem.Hierarchy { return m.hier }

// Image exposes the functional memory.
func (m *Machine) Image() *memimg.Image { return m.img }

// Cycle returns the current cycle count.
func (m *Machine) Cycle() uint64 { return m.cycle }

// Run executes the program to completion and returns aggregate results.
func (m *Machine) Run() (*Result, error) {
	return m.RunContext(context.Background())
}

// RunContext is Run under supervision: panics inside the simulator are
// recovered into simerr.Panic (with stack and machine state), ctx
// cancellation and deadlines end the run with simerr.Canceled/Timeout, the
// forward-progress watchdog turns silent livelocks into simerr.Deadlock,
// and the MaxCycles bound reports simerr.Runaway. Every returned error is
// a *simerr.Error carrying the failure cycle and a per-TU state snapshot.
func (m *Machine) RunContext(ctx context.Context) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			e := simerr.FromPanic("sta.Run", r)
			e.Cycle = m.cycle
			e.TUs = m.Snapshot()
			res, err = nil, e
		}
		// Final publication (success or failure) so late readers — the
		// flight recorder most of all — see the terminal state.
		m.publishProgress(true)
	}()
	m.attachMetrics()
	m.attachAttrib()
	m.attachChaos()
	if m.Sample.Enabled() {
		m.initSample()
	}
	m.tus[0].startMain()
	wd := m.cfg.WatchdogCycles
	if wd == 0 {
		wd = DefaultWatchdogCycles
	}
	nw := m.resolveWorkers()
	if nw > 1 {
		m.startPar(nw)
		defer m.stopPar()
		m.windowOK = m.cfg.TransferPerValue >= 2 &&
			m.cfg.Mem.L2HitLat >= 2 &&
			m.cfg.Mem.MemLat >= m.cfg.Mem.L2HitLat+2
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	m.wdLast, m.wdLastCycle = m.progress, m.cycle
	for iter := uint64(0); !m.halted; iter++ {
		m.observeProgress()
		if m.cycle-m.wdLastCycle >= wd {
			return nil, m.stallError(simerr.Deadlock,
				fmt.Errorf("no instruction retired for %d cycles (watchdog window)", wd))
		}
		if m.cycle >= m.cfg.MaxCycles {
			return nil, m.stallError(simerr.Runaway,
				fmt.Errorf("exceeded %d cycles without halting", m.cfg.MaxCycles))
		}
		if m.Tap != nil && iter&1023 == 0 {
			m.publishProgress(false)
		}
		if done != nil && iter&1023 == 0 {
			select {
			case <-done:
				e := simerr.Classify("sta.Run", ctx.Err(), simerr.Canceled)
				e.Cycle = m.cycle
				e.TUs = m.Snapshot()
				return nil, e
			default:
			}
		}
		if nw > 1 {
			m.stepPar(m.wdLastCycle + wd)
		} else {
			m.step()
		}
		if m.sampler != nil && !m.halted {
			if serr := m.sampleCheck(ctx); serr != nil {
				return nil, serr
			}
		}
		if !m.halted && !m.DisableSkip {
			m.skipIdle(m.wdLastCycle + wd)
		}
	}
	// Drain: let outstanding wrong threads disappear with the machine; the
	// program result is already architectural.
	m.Metrics.Finish(m.cycle)
	m.Attrib.Finish()
	return m.result(), nil
}

// stallError builds the structured Deadlock/Runaway diagnostic.
func (m *Machine) stallError(kind simerr.Kind, cause error) *simerr.Error {
	e := simerr.New(kind, "sta.Run", cause)
	e.Cycle = m.cycle
	e.TUs = m.Snapshot()
	return e
}

// attachChaos wires the fault injector into the cores and the memory
// hierarchy; called once at the top of Run, like attachMetrics.
func (m *Machine) attachChaos() {
	if m.Chaos == nil {
		return
	}
	// Each core draws from its own forked stream, keyed by TU id, so a
	// core's injection sequence depends only on its own step history —
	// never on how TUs interleave across worker goroutines. Machine- and
	// hierarchy-level points stay on the root injector; both fire only
	// from the coordinator.
	for i := range m.tus {
		m.tus[i].core.SetChaos(m.Chaos.Fork(fmt.Sprintf("tu%d", i)))
	}
	m.hier.SetChaos(m.Chaos)
}

// step advances the whole machine one cycle.
func (m *Machine) step() {
	if m.Chaos != nil {
		m.Chaos.Panic(chaos.PointMachineStep)
		if m.Chaos.Hit(chaos.PointLivelock) {
			m.livelocked = true
		}
	}
	if !m.livelocked {
		m.hier.BeginCycle(m.cycle)
		for i := range m.tus {
			m.tus[i].step(m.cycle)
		}
		m.tryStartPending()
		m.hier.Tick(m.cycle)
	}
	m.endCycle()
}

// endCycle advances the clock: the parallel-cycle counter, the cycle
// itself, and the metrics sampler. Shared by the sequential step, the
// parallel step, and window replay so all three account identically.
func (m *Machine) endCycle() {
	if m.inParallel {
		m.parCycles++
	}
	m.cycle++
	if m.Metrics != nil {
		m.Metrics.MaybeSample(m.cycle)
	}
}

// observeProgress records the cycle at which forward progress was last
// seen. The sequential loop calls it once per iteration; window replay
// calls it per replayed cycle, keeping the watchdog's observation points
// identical across stepping modes.
func (m *Machine) observeProgress() {
	if m.progress != m.wdLast {
		m.wdLast, m.wdLastCycle = m.progress, m.cycle
	}
}

// skipIdle fast-forwards the clock over cycles that are provably no-ops:
// every component reports the earliest future cycle at which stepping it
// could change any state, and the span up to the minimum is skipped in one
// jump — the clock and the parallel-cycle counter advance by arithmetic,
// and the metrics sampler replays any crossed sample boundaries in bulk
// (Collector.FastForward), all bit-identical to stepping the empty cycles.
// Called right after step, so m.cycle-1 is the cycle just stepped.
// wdDeadline is the cycle the forward-progress watchdog would fire at; the
// skip stops there so the deadlock diagnostic trips at the same cycle it
// would without skipping.
func (m *Machine) skipIdle(wdDeadline uint64) {
	wake := m.nextWake(m.cycle - 1)
	if wake <= m.cycle {
		return
	}
	if wake > wdDeadline {
		wake = wdDeadline
	}
	if wake > m.cfg.MaxCycles {
		// Stop at the limit so the runaway diagnostic fires at the same
		// cycle it would without skipping.
		wake = m.cfg.MaxCycles
	}
	if wake <= m.cycle {
		return
	}
	from := m.cycle
	if m.inParallel {
		m.parCycles += wake - from
	}
	m.cycle = wake
	if m.Metrics != nil {
		m.Metrics.FastForward(from, wake)
	}
}

// nextWake returns the earliest cycle after the just-stepped cycle at which
// any component of the machine could change state.
func (m *Machine) nextWake(cycle uint64) uint64 {
	wake := m.hier.NextWake(cycle)
	if wake == cycle+1 {
		return wake
	}
	for i := range m.tus {
		w := m.tus[i].nextWake(cycle)
		if w == cycle+1 {
			return w
		}
		if w < wake {
			wake = w
		}
	}
	if pf := m.pending; pf != nil {
		if pf.startAt == 0 {
			// Not yet scheduled: the delay is pinned the cycle the target TU
			// idles. The target idling is itself a stepped event, so only an
			// already-idle target forces stepping now.
			if m.tus[(pf.fromTU+1)%m.cfg.NumTUs].state == tuIdle {
				return cycle + 1
			}
		} else if pf.startAt < wake {
			wake = pf.startAt
			if wake <= cycle {
				wake = cycle + 1
			}
		}
	}
	return wake
}

// tryStartPending launches a waiting fork once its target TU is idle and
// the fork+transfer delay has elapsed.
func (m *Machine) tryStartPending() {
	pf := m.pending
	if pf == nil {
		return
	}
	target := (pf.fromTU + 1) % m.cfg.NumTUs
	tu := &m.tus[target]
	if tu.state != tuIdle {
		return
	}
	if pf.startAt == 0 {
		nvals := bits.OnesCount64(uint64(pf.mask))
		pf.startAt = m.cycle + uint64(m.cfg.ForkDelay+m.cfg.TransferPerValue*nvals)
		return
	}
	if m.cycle < pf.startAt {
		return
	}
	m.pending = nil
	m.startThread(pf, tu)
}

// startThread begins a forked thread on an idle TU. If the forking thread
// has already retired (its write-back completed before this thread could
// start), the new thread is the oldest live thread: its predecessor's
// stores are all in memory and no TSAG flag is owed.
func (m *Machine) startThread(pf *pendingFork, tu *threadUnit) {
	parent := &m.tus[pf.fromTU]
	parentLive := parent.gen == pf.parentGen
	tu.gen++
	tu.state = tuRun
	tu.parMode = true
	tu.wrong = parentLive && parent.wrong
	tu.abortResume = -1
	tu.memBuf.reset()
	tu.tsagDone = false
	tu.tsagChainDone = false
	tu.predChainAt = 0
	tu.hasPredFlag = false
	clear(tu.ownTargets)
	tu.succ = -1
	if parentLive {
		// Link into the thread chain and inherit dependence state.
		tu.pred = pf.fromTU
		parent.succ = tu.id
		hop := uint64(m.cfg.TransferPerValue)
		tu.memBuf.inheritFrom(parent.memBuf, parent.ownTargets, m.cycle, hop)
		// If the parent's TSAG chain is already complete, the flag is en route.
		if parent.tsagChainDone {
			tu.hasPredFlag = true
			tu.predChainAt = m.cycle + hop
		}
	} else {
		tu.pred = -1
	}
	tu.startedAt = m.cycle
	tu.core.StartThread(pf.target, pf.mask, &pf.regs, tu.wrong)
	m.forks++
	m.progress++ // thread starts count as forward progress
	m.emit(tu.id, trace.ThreadStart, int64(pf.target))
}

// emit sends a trace event if a tracer is attached.
func (m *Machine) emit(tuID int, kind trace.Kind, arg int64) {
	if m.Trace != nil {
		m.Trace.Event(trace.Event{Cycle: m.cycle, TU: tuID, Kind: kind, Arg: arg})
	}
}

// forEachSuccessor calls fn(i, s) for each thread strictly after tu in the
// chain, in ring order (i counts from 0), without allocating. The next link
// is read before fn runs, so fn may kill or detach the current node (as the
// abort path does) without cutting the walk short.
func (m *Machine) forEachSuccessor(tu *threadUnit, fn func(i int, s *threadUnit)) {
	seen := 0
	for id := tu.succ; id >= 0 && seen < m.cfg.NumTUs; {
		s := &m.tus[id]
		id = s.succ
		fn(seen, s)
		seen++
	}
}

// result gathers final statistics.
func (m *Machine) result() *Result {
	r := &Result{MemCheck: m.img.Checksum()}
	s := &r.Stats
	s.Cycles = m.cycle
	s.ParCycles = m.parCycles
	s.Forks = m.forks
	s.Aborts = m.aborts
	s.WrongThreads = m.wrongThreads
	for i := range m.tus {
		tu := &m.tus[i]
		cs := tu.core.Stats
		s.Commits += cs.Commits
		s.Branches += cs.Branches
		s.Mispredicts += cs.Mispredicts
		s.WrongPathLoads += cs.WrongPathLoadsIssued
		du := m.hier.DUnit(tu.id)
		s.L1DAccesses += du.Accesses
		s.L1DMisses += du.Misses
		s.L1DTraffic += du.Traffic
		s.WrongLoads += du.WrongAcc
		if du.WrongAcc >= cs.WrongPathLoadsIssued {
			s.WrongThLoads += du.WrongAcc - cs.WrongPathLoadsIssued
		}
		s.WECHits += du.SideHits
		s.WECInserts += du.SideInserts
		s.WrongUseful += du.WrongUseful
		s.PrefIssued += du.PrefIssued
		s.PrefUseful += du.PrefUseful
		s.ParCommits += tu.parCommits
	}
	s.L2Accesses = m.hier.L2Accesses
	s.L2Misses = m.hier.L2Misses
	s.MemAccesses = m.hier.DRAMFills
	s.UpdateTraffic = m.hier.UpdateBus
	for i := range m.tus {
		if m.tus[i].halted {
			r.IntRegs = m.tus[i].core.IntRegs
		}
	}
	if m.sampler != nil {
		s.Sampled = m.sampler.Finish(m.sampleCounters())
	}
	return r
}

// tuStateNames maps tuState values onto the names used in diagnostics.
var tuStateNames = [...]string{
	tuIdle:    "idle",
	tuRun:     "run",
	tuWBWait:  "wb-wait",
	tuWBDrain: "wb-drain",
}

// Snapshot captures every thread unit's pipeline state for diagnostics:
// the lifecycle state, the thread-chain links, the memory-buffer occupancy,
// and the core's ROB-head summary. Used by the watchdog, the panic
// supervisor, and stasim -dump-on-hang.
func (m *Machine) Snapshot() []simerr.TUState {
	out := make([]simerr.TUState, len(m.tus))
	for i := range m.tus {
		tu := &m.tus[i]
		out[i] = simerr.TUState{
			ID:      tu.id,
			State:   tuStateNames[tu.state],
			Wrong:   tu.wrong,
			Running: tu.core.Running(),
			Pred:    tu.pred,
			Succ:    tu.succ,
			MemBuf:  tu.memBuf.size(),
			Head:    tu.core.DebugHead(),
		}
	}
	return out
}
