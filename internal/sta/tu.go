package sta

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/trace"
)

// threadUnit couples one out-of-order core with its thread-pipelining
// state: lifecycle, speculative memory buffer, target-store bookkeeping,
// and the TSAG-chain dependence gate. It implements core.DMem and core.Env.
type threadUnit struct {
	m    *Machine
	id   int
	core *core.Core

	state       tuState
	gen         uint64 // thread identity; bumps whenever the TU's thread changes
	parMode     bool   // executing a parallel-region thread (stores buffered)
	wrong       bool
	pred, succ  int
	abortResume int // pc to resume sequentially after write-back; -1 = none
	halted      bool

	memBuf     *memBuf
	ownTargets map[uint64]*mbEntry // own announced target stores

	// TSAG-chain gate: loads may issue only when every upstream thread has
	// finished its TSAG stage (all target addresses announced).
	tsagDone      bool
	tsagChainDone bool
	hasPredFlag   bool
	predChainAt   uint64

	lastCommits uint64
	lastWrong   uint64 // last observed wrong-thread commit count
	parCommits  uint64
	startedAt   uint64 // cycle the current thread began (metrics lifetime)

	// Parallel-compute capture (see parallel.go): forward-progress deltas
	// per window slot and TSAG chain flags destined for the successor,
	// merged into shared state by the serial commit phase in TU-ID order.
	pendProgress [2]uint64
	pendChain    []pendFlag
	chainHead    int
}

// init prepares a zero-valued thread unit in place. Thread units live in
// the machine's value slice, so they are initialized where they sit rather
// than allocated — the core and hierarchy keep the resulting &m.tus[id]
// pointer for the machine's lifetime.
func (tu *threadUnit) init(m *Machine, id int) {
	*tu = threadUnit{
		m:           m,
		id:          id,
		pred:        -1,
		succ:        -1,
		abortResume: -1,
		memBuf:      newMemBuf(m.cfg.MemBufEntries),
		ownTargets:  make(map[uint64]*mbEntry),
	}
}

// startMain begins sequential execution of the program on this TU.
func (tu *threadUnit) startMain() {
	tu.state = tuRun
	tu.parMode = false
	tu.core.StartMain()
}

func (tu *threadUnit) du() *mem.DUnit { return tu.m.hier.DUnit(tu.id) }

// step advances the TU one machine cycle.
func (tu *threadUnit) step(cycle uint64) {
	tu.updateChain(cycle)
	switch tu.state {
	case tuIdle:
		return
	case tuRun:
		tu.core.Step(cycle)
		delta := tu.core.Stats.Commits - tu.lastCommits
		tu.lastCommits = tu.core.Stats.Commits
		wdelta := tu.core.Stats.WrongCommits - tu.lastWrong
		tu.lastWrong = tu.core.Stats.WrongCommits
		if tu.m.computing {
			tu.pendProgress[cycle-tu.m.windowBase] += delta + wdelta
		} else {
			tu.m.progress += delta + wdelta
		}
		if tu.parMode || (tu.m.seqLoops && tu.m.inParallel) {
			tu.parCommits += delta
		}
	case tuWBWait:
		if tu.pred < 0 {
			tu.state = tuWBDrain
			tu.m.emit(tu.id, trace.WBDrain, int64(tu.memBuf.pendingStores()))
		}
	case tuWBDrain:
		tu.drainWB(cycle)
	}
}

// updateChain propagates TSAG_DONE flags down the thread chain (§2.2,
// Figure 2): a thread's chain completes when its own TSAG stage is done and
// its predecessor's chain flag has arrived over the ring.
func (tu *threadUnit) updateChain(cycle uint64) {
	if !tu.parMode || tu.tsagChainDone || !tu.tsagDone {
		return
	}
	if tu.pred >= 0 && (!tu.hasPredFlag || cycle < tu.predChainAt) {
		return
	}
	tu.tsagChainDone = true
	if tu.succ >= 0 {
		at := cycle + uint64(tu.m.cfg.TransferPerValue)
		if tu.m.computing {
			// Compute phase: the successor write is captured and applied
			// at commit. Exact because the flag is inert until at (the
			// hop is at least one cycle).
			tu.pendChain = append(tu.pendChain, pendFlag{c: cycle, at: at})
			return
		}
		s := &tu.m.tus[tu.succ]
		s.hasPredFlag = true
		s.predChainAt = at
	}
}

// drainWB writes buffered stores to the caches, a port's worth per cycle.
func (tu *threadUnit) drainWB(cycle uint64) {
	tu.m.assertSerial("write-back drain")
	du := tu.du()
	for i := 0; i < tu.m.cfg.Mem.L1DPorts; i++ {
		s, ok := tu.memBuf.drainOne()
		if !ok {
			tu.finishWB(cycle)
			return
		}
		tu.m.img.WriteWord(s.addr, s.val)
		tu.m.progress++ // drained stores count as forward progress
		// Write-back drain: the buffered store lost its issuing PC.
		du.Access(cycle, s.addr, mem.Store, mem.SrcDemand, -1).Release()
	}
	if tu.memBuf.pendingStores() == 0 {
		tu.finishWB(cycle)
	}
}

// finishWB retires the thread or resumes sequential execution after an
// aborting thread's write-back.
func (tu *threadUnit) finishWB(cycle uint64) {
	tu.mbStats()
	if tu.m.Metrics != nil {
		tu.m.Metrics.ObserveThreadLifetime(cycle-tu.startedAt, true)
	}
	// This thread's target stores are now in memory: drop them from live
	// successors' buffers so buffer occupancy stays bounded by the live
	// thread window (a retired thread's slots are freed in real hardware).
	tu.m.forEachSuccessor(tu, func(_ int, s *threadUnit) {
		for addr := range tu.ownTargets {
			delete(s.memBuf.upstream, addr)
		}
	})
	if tu.abortResume >= 0 {
		pc := tu.abortResume
		tu.abortResume = -1
		tu.parMode = false
		tu.pred, tu.succ = -1, -1
		tu.m.inParallel = false
		tu.state = tuRun
		tu.core.ContinueAt(pc)
		tu.m.emit(tu.id, trace.SeqResume, int64(pc))
		return
	}
	// Normal retirement: the successor becomes the oldest thread.
	if tu.succ >= 0 {
		tu.m.tus[tu.succ].pred = -1
	}
	tu.m.emit(tu.id, trace.Retire, 0)
	tu.detach()
}

// detach idles the TU and clears its thread identity.
func (tu *threadUnit) detach() {
	tu.gen++
	tu.state = tuIdle
	tu.parMode = false
	tu.wrong = false
	tu.pred, tu.succ = -1, -1
	tu.abortResume = -1
	tu.tsagDone, tu.tsagChainDone = false, false
	tu.hasPredFlag = false
}

// kill discards the thread entirely (wrong-thread death or abort kill).
func (tu *threadUnit) kill() {
	tu.m.emit(tu.id, trace.Kill, 0)
	tu.mbStats()
	if tu.m.Metrics != nil {
		tu.m.Metrics.ObserveThreadLifetime(tu.m.cycle-tu.startedAt, false)
	}
	tu.core.Kill()
	tu.memBuf.reset()
	tu.detach()
}

func (tu *threadUnit) mbStats() {
	tu.m.mbOverflows += tu.memBuf.Overflows
	tu.memBuf.Overflows = 0
}

// ---- core.DMem implementation ----

// TryLoad performs the run-time dependence check, then the cache access.
// wrong marks wrong-thread execution (a thread running past its abort).
func (tu *threadUnit) TryLoad(cycle uint64, addr uint64, wrong bool, pc int) core.LoadResult {
	if tu.parMode {
		if val, st := tu.memBuf.lookup(addr, cycle); st == mbHit {
			return core.LoadResult{Status: core.LoadForwarded, Value: val}
		} else if st == mbStall {
			return core.LoadResult{Status: core.LoadStall}
		}
	}
	du := tu.du()
	if !du.CanAccept() {
		return core.LoadResult{Status: core.LoadNoPort}
	}
	src := mem.SrcDemand
	if wrong {
		src = mem.SrcWrongThread
	}
	val := tu.m.img.ReadWord(addr & mem.PhysMask)
	req := du.Access(cycle, addr, mem.Load, src, pc)
	return core.LoadResult{Status: core.LoadIssued, Value: val, Req: req}
}

// WrongLoad issues a squashed wrong-path load purely for cache effects.
func (tu *threadUnit) WrongLoad(cycle uint64, addr uint64, pc int) bool {
	du := tu.du()
	if !du.CanAccept() {
		return false
	}
	du.Access(cycle, addr, mem.Load, mem.SrcWrongPath, pc).Release()
	return true
}

// CommitStore routes a committed store: buffered in the speculative memory
// buffer during a parallel thread, written straight through (with update
// coherence) during sequential execution.
func (tu *threadUnit) CommitStore(cycle uint64, addr uint64, val int64, target bool, pc int) {
	if !tu.parMode {
		tu.m.assertSerial("sequential store commit")
		tu.m.img.WriteWord(addr, val)
		tu.du().Access(cycle, addr, mem.Store, mem.SrcDemand, pc).Release()
		tu.m.hier.SequentialUpdate(tu.id, addr)
		return
	}
	tu.memBuf.writeOwn(addr, val)
	if target {
		tu.m.assertSerial("target-store delivery")
		e, ok := tu.ownTargets[addr]
		if !ok {
			e = &mbEntry{}
			tu.ownTargets[addr] = e
		}
		e.hasVal = true
		e.val = val
		hop := uint64(tu.m.cfg.TransferPerValue)
		tu.m.forEachSuccessor(tu, func(i int, s *threadUnit) {
			s.memBuf.deliver(addr, val, cycle+hop*uint64(i+1))
		})
	}
}

// LoadsAllowed gates the computation stage on the TSAG chain.
func (tu *threadUnit) LoadsAllowed() bool {
	return !tu.parMode || tu.tsagChainDone
}

// ---- core.Env implementation ----

// OnBegin opens a parallel region: leftover wrong threads die, and this TU
// becomes the region's head thread.
func (tu *threadUnit) OnBegin(cycle uint64, mask int64) {
	m := tu.m
	m.assertSerial("BEGIN")
	m.inParallel = true
	m.regionMask = mask
	m.emit(tu.id, trace.Begin, mask)
	if m.seqLoops {
		return
	}
	for i := range m.tus {
		if m.tus[i].wrong {
			m.tus[i].kill()
		}
	}
	tu.gen++
	tu.parMode = true
	tu.pred, tu.succ = -1, -1
	tu.startedAt = cycle
	tu.memBuf.reset()
	clear(tu.ownTargets)
	tu.tsagDone, tu.tsagChainDone = false, false
	tu.hasPredFlag = false
}

// OnFork records a committed FORK; the thread starts once the next TU in
// the ring is idle and the fork/transfer delay has elapsed.
func (tu *threadUnit) OnFork(cycle uint64, target int) {
	m := tu.m
	m.assertSerial("FORK")
	if m.seqLoops {
		m.forks++
		return
	}
	if tu.wrong {
		return // wrong threads may not fork (§3.1.2)
	}
	if !tu.parMode {
		panic(fmt.Sprintf("sta: FORK outside a parallel region on tu%d", tu.id))
	}
	if m.pending != nil {
		panic("sta: two pending forks (workload forked twice per iteration?)")
	}
	pf := &pendingFork{fromTU: tu.id, target: target, mask: m.regionMask, parentGen: tu.gen}
	pf.regs = tu.core.IntRegs
	m.pending = pf
	m.emit(tu.id, trace.Fork, int64(target))
	m.tryStartPending()
}

// OnTsagd marks the end of this thread's TSAG stage.
func (tu *threadUnit) OnTsagd(cycle uint64) {
	tu.m.assertSerial("TSAGD")
	if tu.m.seqLoops {
		return
	}
	tu.tsagDone = true
	tu.m.emit(tu.id, trace.Tsagd, 0)
	tu.updateChain(cycle)
}

// OnTsa announces a target-store address to all downstream threads.
func (tu *threadUnit) OnTsa(cycle uint64, addr uint64) {
	tu.m.assertSerial("TSA")
	if tu.m.seqLoops || !tu.parMode {
		return
	}
	if _, ok := tu.ownTargets[addr]; !ok {
		tu.ownTargets[addr] = &mbEntry{}
	}
	hop := uint64(tu.m.cfg.TransferPerValue)
	tu.m.forEachSuccessor(tu, func(i int, s *threadUnit) {
		s.memBuf.announce(addr, cycle+hop*uint64(i+1))
	})
}

// OnThend ends the iteration body: correct threads proceed to write-back,
// wrong threads kill themselves (they never write back, §3.1.2).
func (tu *threadUnit) OnThend(cycle uint64) {
	tu.m.assertSerial("THEND")
	if tu.m.seqLoops {
		return
	}
	if tu.wrong {
		tu.kill()
		return
	}
	tu.m.emit(tu.id, trace.ThreadEnd, 0)
	tu.state = tuWBWait
}

// OnAbort ends the parallel region (correct thread) or kills a wrong
// thread. Successor threads are killed, or marked wrong under wth.
func (tu *threadUnit) OnAbort(cycle uint64, resumePC int) {
	m := tu.m
	m.assertSerial("ABORT")
	if m.seqLoops {
		m.aborts++
		m.inParallel = false
		return
	}
	if tu.wrong {
		tu.kill()
		return
	}
	m.aborts++
	m.emit(tu.id, trace.Abort, int64(resumePC))
	m.forEachSuccessor(tu, func(_ int, s *threadUnit) {
		if m.cfg.WrongThreadExec {
			if !s.wrong {
				s.wrong = true
				s.core.MarkWrong()
				m.wrongThreads++
				m.emit(s.id, trace.WrongMark, 0)
			}
		} else {
			s.kill()
		}
	})
	tu.succ = -1
	m.pending = nil // a pending fork would be an iteration past the exit
	tu.abortResume = resumePC
	tu.state = tuWBWait
}

// neverWake mirrors the components' "no pending events" NextWake value.
const neverWake = ^uint64(0)

// nextWake returns the earliest future cycle at which stepping this TU
// could change state, given cycle was just stepped (see Machine.skipIdle).
func (tu *threadUnit) nextWake(cycle uint64) uint64 {
	wake := uint64(neverWake)
	switch tu.state {
	case tuIdle:
		// Inert until an external event (fork start) re-activates it.
	case tuWBWait:
		if tu.pred < 0 {
			return cycle + 1 // becomes the oldest thread and starts draining
		}
		// Otherwise woken by the predecessor's retirement, a stepped event.
	case tuWBDrain:
		return cycle + 1 // drains stores every cycle
	case tuRun:
		wake = tu.core.NextWake(cycle)
	}
	// The TSAG chain flag can complete independently of the core's state
	// (updateChain runs at the top of every step).
	if tu.parMode && tu.tsagDone && !tu.tsagChainDone {
		if tu.pred < 0 {
			return cycle + 1
		}
		if tu.hasPredFlag {
			if tu.predChainAt <= cycle+1 {
				return cycle + 1
			}
			if tu.predChainAt < wake {
				wake = tu.predChainAt
			}
		}
		// Without the flag, the predecessor's own activity is the wake
		// source; its nextWake covers it.
	}
	return wake
}

// OnHalt stops the machine.
func (tu *threadUnit) OnHalt(cycle uint64) {
	tu.m.assertSerial("HALT")
	tu.halted = true
	tu.m.halted = true
	tu.m.emit(tu.id, trace.Halt, 0)
}
