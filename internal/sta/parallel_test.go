package sta

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/attrib"
	"repro/internal/chaos"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/simerr"
	"repro/internal/wgen"
	"repro/internal/workload"
)

// parMode describes one stepping mode of the equivalence matrix.
type parModeSpec struct {
	name    string
	workers int
	disable bool
}

func parModes() []parModeSpec {
	return []parModeSpec{
		{name: "seq", disable: true},
		{name: "par1", workers: 1},
		{name: "par2", workers: 2},
		{name: "par4", workers: 4},
	}
}

// parRunOut is one run's comparable output: the result, the metrics and
// attribution JSON exports (nil when not attached), and the engagement
// counters of the parallel stepper.
type parRunOut struct {
	res               *Result
	metJS             []byte
	attJS             []byte
	windows, segments uint64
}

// runParMode runs prog in one stepping mode of the equivalence matrix.
func runParMode(t testing.TB, cfg Config, prog *isa.Program, mode parModeSpec, skip bool, observe bool) parRunOut {
	t.Helper()
	m, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	m.Workers = mode.workers
	m.DisableParallel = mode.disable
	m.DisableSkip = !skip
	var col *metrics.Collector
	var ac *attrib.Collector
	if observe {
		col = metrics.NewCollector(500)
		m.Metrics = col
		ac = attrib.NewCollector()
		m.Attrib = ac
	}
	r, err := m.Run()
	if err != nil {
		t.Fatalf("%s: %v", mode.name, err)
	}
	out := parRunOut{res: r, windows: m.statWindows, segments: m.statSegments}
	if col != nil {
		var buf bytes.Buffer
		if err := col.WriteJSON(&buf, r.Stats.Cycles); err != nil {
			t.Fatal(err)
		}
		out.metJS = buf.Bytes()
		var abuf bytes.Buffer
		if err := ac.Report(r.Stats.Cycles).WriteJSON(&abuf); err != nil {
			t.Fatal(err)
		}
		out.attJS = abuf.Bytes()
	}
	return out
}

// TestParallelEquivalenceMatrix is the correctness net for deterministic
// intra-machine parallelism: for every figure benchmark, a machine stepped
// with worker goroutines (1, 2, or 4) must produce bit-identical results —
// stats, memory image, architectural registers, metrics JSON, attribution
// JSON — to the plain sequential loop, with and without event-skip, with
// and without observability attached.
func TestParallelEquivalenceMatrix(t *testing.T) {
	benches := workload.All()
	if raceMode || testing.Short() {
		benches = benches[:2] // race detector slowdown: trim the matrix
	}
	type matrixCase struct {
		name string
		prog *isa.Program
	}
	var cases []matrixCase
	for _, w := range benches {
		p, err := w.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, matrixCase{w.Short, p})
	}
	// One synthesized workload rides the same net: generated programs must
	// hold the bit-identical parallel-stepping guarantee too.
	gw := wgen.Random(0xC0FFEE)
	gp, err := gw.Program()
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, matrixCase{"wgen", gp})
	for _, c := range cases {
		p := c.prog
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.MaxCycles = 20_000_000
			cfg.WrongThreadExec = true
			cfg.Core.WrongPathExec = true
			cfg.Mem.Side = mem.SideWEC
			for _, skip := range []bool{true, false} {
				for _, observe := range []bool{false, true} {
					ref := runParMode(t, cfg, p, parModes()[0], skip, observe)
					for _, mode := range parModes()[1:] {
						got := runParMode(t, cfg, p, mode, skip, observe)
						tag := fmt.Sprintf("%s skip=%v obs=%v", mode.name, skip, observe)
						if got.res.Stats != ref.res.Stats {
							t.Errorf("%s: stats diverge\nseq: %+v\npar: %+v", tag, ref.res.Stats, got.res.Stats)
						}
						if got.res.MemCheck != ref.res.MemCheck {
							t.Errorf("%s: memory %#x vs %#x", tag, got.res.MemCheck, ref.res.MemCheck)
						}
						if got.res.IntRegs != ref.res.IntRegs {
							t.Errorf("%s: architectural registers diverge", tag)
						}
						if !bytes.Equal(got.metJS, ref.metJS) {
							t.Errorf("%s: metrics JSON diverges", tag)
						}
						if !bytes.Equal(got.attJS, ref.attJS) {
							t.Errorf("%s: attribution JSON diverges", tag)
						}
						if mode.workers >= 2 && got.segments == 0 && got.windows == 0 {
							t.Errorf("%s: parallel stepping never engaged", tag)
						}
					}
				}
			}
		})
	}
}

// TestParallelWindowEngages asserts the two-cycle window path actually runs
// on a busy parallel region (the gates are all satisfiable), so the matrix
// above genuinely covers it.
func TestParallelWindowEngages(t *testing.T) {
	p := scaleLoop(t, 48)
	cfg := cfgTU(8)
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	m.Workers = 2
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.statWindows == 0 {
		t.Error("two-cycle window never engaged on a parallel loop")
	}
}

// TestParallelChaosDeterministic drives parallel stepping under chaos
// injection: because every core draws from its own forked stream, an
// injected panic must fire at the same cycle with the same classification
// no matter how many workers step the machine. Run with -race, this is
// also the data-race net for the compute/commit protocol.
func TestParallelChaosDeterministic(t *testing.T) {
	p := scaleLoop(t, 48)
	for _, ccfg := range []chaos.Config{
		{Seed: 7, CorePanic: 2e-3},
		{Seed: 11, MachinePanic: 1e-3},
	} {
		var refErr *simerr.Error
		for i, mode := range parModes() {
			cfg := cfgTU(8)
			m, err := New(cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			m.Workers = mode.workers
			m.DisableParallel = mode.disable
			m.Chaos = chaos.New(ccfg, "parallel-equivalence")
			_, err = m.Run()
			if err == nil {
				t.Fatalf("%s: chaos run unexpectedly succeeded", mode.name)
			}
			var se *simerr.Error
			if !errors.As(err, &se) {
				t.Fatalf("%s: error is not a *simerr.Error: %v", mode.name, err)
			}
			if i == 0 {
				refErr = se
				continue
			}
			if se.Kind != refErr.Kind || se.Cycle != refErr.Cycle {
				t.Errorf("%s: chaos fired (%v, cycle %d); sequential fired (%v, cycle %d)",
					mode.name, se.Kind, se.Cycle, refErr.Kind, refErr.Cycle)
			}
		}
	}
}
