package sta

import (
	"context"
	"fmt"

	"repro/internal/interp"
	"repro/internal/sample"
	"repro/internal/simerr"
	"repro/internal/trace"
)

// SMARTS-style sampled simulation: the run loop hands control to the
// sampling controller (internal/sample) after every stepped cycle, and the
// controller's phase transitions — detailed warmup, measured detail,
// functional fast-forward — are quantized to the machine's *sequential
// quiescent safepoints*: exactly one thread unit running sequential code,
// every other TU idle with a fully quiet core, no parallel region, no
// pending fork, no compute phase in flight. At such a point the machine's
// entire future is determined by architectural state (registers + memory
// image) plus cache/predictor contents, so detailed execution can be
// suspended, replayed functionally with cache and branch-predictor
// warming, and resumed with ContinueAt — architecturally exact, with only
// the warm microarchitectural state approximated (which the next warmup
// window absorbs).
//
// Determinism: the check runs between step/stepPar and skipIdle. Idle
// skips span only provably inert cycles (the virtual instruction count
// cannot change inside one), and two-cycle parallel windows require every
// TU compute-safe — a sequential-running TU is serial-class — so no
// safepoint can appear or disappear inside a skipped span or a window
// interior. Phase transitions therefore land on identical cycle boundaries
// across {sequential, parallel} × {stepped, skip} stepping modes; the
// sampling-determinism tests pin that.

// ffChunk bounds one StepN call during bulk fast-forward, so cancellation
// and overshoot checks run at a sane granularity.
const ffChunk = 1 << 20

// ffOvershootCap bounds how far past its target a fast-forward may chase a
// parallel-region exit before the machine declares the program malformed
// (a region this long would have tripped MaxCycles in detailed mode).
const ffOvershootCap = 1 << 30

// initSample builds the sampling controller and the persistent functional
// engine with its warming hooks. Everything is allocated here, once, so
// the steady-state fast-forward path allocates nothing (pinned by
// TestFastForwardAllocs).
func (m *Machine) initSample() {
	m.sampler = sample.New(m.Sample)
	blockPCs := m.cfg.Mem.L1IBlock / 16
	if blockPCs < 1 {
		blockPCs = 1
	}
	m.eng = &interp.Engine{
		Prog:     m.prog,
		Mem:      m.img,
		BlockPCs: blockPCs,
		Hooks: interp.Hooks{
			Load:   func(addr uint64) { m.hier.DUnit(m.ffTU).WarmLoad(addr) },
			Store:  func(addr uint64) { m.hier.WarmSequentialStore(m.ffTU, addr) },
			Branch: func(pc int, taken bool) { m.tus[m.ffTU].core.Predictor().Warm(pc, taken) },
			Call:   func(ret int) { m.tus[m.ffTU].core.Predictor().WarmCall(ret) },
			Ret:    func() { m.tus[m.ffTU].core.Predictor().WarmRet() },
			Block:  func(pc int) { m.hier.IUnit(m.ffTU).WarmFetch(pc) },
		},
	}
}

// vcount is the virtual instruction clock sampling phases run on: detailed
// correct-path commits across all thread units plus functionally
// fast-forwarded instructions.
func (m *Machine) vcount() uint64 {
	v := m.sampler.FFInsts()
	for i := range m.tus {
		v += m.tus[i].core.Stats.Commits
	}
	return v
}

// sampleCounters snapshots the counters measurement windows difference.
func (m *Machine) sampleCounters() sample.Counters {
	c := sample.Counters{Cycles: m.cycle}
	for i := range m.tus {
		c.Commits += m.tus[i].core.Stats.Commits
		du := m.hier.DUnit(i)
		c.L1DAcc += du.Accesses
		c.L1DMiss += du.Misses
	}
	return c
}

// atSafepoint returns the lone sequential-running thread unit when the
// machine is at a sequential quiescent safepoint, nil otherwise.
func (m *Machine) atSafepoint() *threadUnit {
	if m.inParallel || m.pending != nil || m.halted || m.computing || m.livelocked {
		return nil
	}
	var run *threadUnit
	for i := range m.tus {
		tu := &m.tus[i]
		switch tu.state {
		case tuRun:
			if run != nil || tu.parMode || tu.wrong {
				return nil
			}
			run = tu
		case tuIdle:
			// A detached TU's core may still be draining wrong loads; the
			// fast-forward must not race those requests.
			if !tu.core.Quiet() {
				return nil
			}
		default:
			return nil
		}
	}
	return run
}

// sampleCheck advances the sampling phase machine when the current phase
// has run its course and the machine sits at a safepoint. Called by the
// run loop after every stepped cycle.
func (m *Machine) sampleCheck(ctx context.Context) error {
	s := m.sampler
	if !s.Due(m.vcount()) {
		return nil
	}
	tu := m.atSafepoint()
	if tu == nil {
		return nil
	}
	switch s.Phase() {
	case sample.PhaseWarmup:
		s.BeginMeasure(m.sampleCounters())
	case sample.PhaseMeasure:
		ff := s.EndMeasure(m.sampleCounters(), m.vcount())
		if ff > 0 {
			if err := m.fastForward(ctx, tu, ff); err != nil {
				return err
			}
		}
		s.EndFF(m.vcount())
	}
	return nil
}

// drainHier runs the memory hierarchy — alone — until no queued L2 request
// or in-flight fill remains, fast-forwarding over inert gaps exactly like
// skipIdle. Every TU is quiet at this point, so hierarchy-only cycles are
// what detailed stepping would execute anyway; they count as detailed
// cycles (endCycle) and keep the metrics sampler on its boundaries.
func (m *Machine) drainHier() {
	for {
		wake := m.hier.NextWake(m.cycle - 1)
		if wake == neverWake {
			return
		}
		if wake > m.cycle {
			from := m.cycle
			m.cycle = wake
			if m.Metrics != nil {
				m.Metrics.FastForward(from, wake)
			}
		}
		m.hier.BeginCycle(m.cycle)
		m.hier.Tick(m.cycle)
		m.endCycle()
	}
}

// fastForward suspends detailed execution on tu, drains the memory
// hierarchy, and executes at least ff instructions on the functional
// engine with cache/predictor warming, then resumes detailed execution (or
// halts the machine if the program ends inside the fast-forward). The stop
// point always lies outside a parallel region: resuming detailed execution
// mid-region is unrepresentable (the region's thread-pipelining state
// exists only in detailed mode), so the engine overshoots to the region
// exit when the nominal target lands inside one.
func (m *Machine) fastForward(ctx context.Context, tu *threadUnit, ff uint64) error {
	pc := tu.core.SquashForSample()
	m.drainHier()
	eng := m.eng
	m.ffTU = tu.id
	eng.Int = &tu.core.IntRegs
	eng.FP = &tu.core.FPRegs
	eng.Reset(pc)
	var executed uint64
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	for !eng.Halted {
		var n int64
		switch {
		case executed < ff:
			n = int64(ff - executed)
			if n > ffChunk {
				n = ffChunk
			}
		case eng.InPar:
			// Past the target inside a parallel region: single-step so the
			// engine stops on the first instruction outside it.
			n = 1
		default:
			n = 0
		}
		if n == 0 {
			break
		}
		ran, err := eng.StepN(n)
		executed += uint64(ran)
		if err != nil {
			// A malformed program mid-fast-forward is a simulator-grade
			// failure; surface it through the panic supervisor with the
			// machine snapshot attached.
			m.sampler.AddFF(executed)
			panic(fmt.Sprintf("sta: fast-forward failed after %d instructions: %v", executed, err))
		}
		if executed >= ff+ffOvershootCap {
			m.sampler.AddFF(executed)
			panic(fmt.Sprintf("sta: fast-forward overran its target by %d instructions without leaving the parallel region (pc=%d)", executed-ff, eng.PC))
		}
		if done != nil && executed < ff {
			select {
			case <-done:
				// Leave the machine resumable for the snapshot, account what
				// ran, and surface the cancellation like the run loop does.
				tu.core.ContinueAt(eng.PC)
				m.sampler.AddFF(executed)
				m.progress += executed
				e := simerr.Classify("sta.Run", ctx.Err(), simerr.Canceled)
				e.Cycle = m.cycle
				e.TUs = m.Snapshot()
				return e
			default:
			}
		}
	}
	m.sampler.AddFF(executed)
	m.progress += executed // fast-forwarded instructions are forward progress
	if eng.Halted {
		tu.halted = true
		m.halted = true
		m.emit(tu.id, trace.Halt, 0)
		return nil
	}
	tu.core.ContinueAt(eng.PC)
	return nil
}
