package sta

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// TestTraceLifecycle attaches a Recorder and checks that a parallel run
// emits a coherent thread-lifecycle event stream.
func TestTraceLifecycle(t *testing.T) {
	p := scaleLoop(t, 32)
	cfg := cfgTU(4)
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	var rec trace.Recorder
	m.Trace = &rec
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.Count(trace.Begin) != 1 {
		t.Errorf("begins = %d", rec.Count(trace.Begin))
	}
	if rec.Count(trace.Halt) != 1 {
		t.Errorf("halts = %d", rec.Count(trace.Halt))
	}
	if rec.Count(trace.Abort) != 1 {
		t.Errorf("aborts = %d", rec.Count(trace.Abort))
	}
	forks := rec.Count(trace.Fork)
	starts := rec.Count(trace.ThreadStart)
	if forks == 0 || starts == 0 || starts > forks {
		t.Errorf("forks=%d starts=%d", forks, starts)
	}
	// Every started thread ends exactly one way (retire, kill, or resume);
	// the region's head thread terminates too without a ThreadStart, so
	// one region contributes exactly one extra terminal event.
	ends := rec.Count(trace.Retire) + rec.Count(trace.Kill) + rec.Count(trace.SeqResume)
	if ends != starts+rec.Count(trace.Begin) {
		t.Errorf("starts=%d begins=%d but terminal events=%d",
			starts, rec.Count(trace.Begin), ends)
	}
	// Events are cycle-monotone.
	evs := rec.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Cycle < evs[i-1].Cycle {
			t.Fatalf("event %d out of order: %v after %v", i, evs[i], evs[i-1])
		}
	}
}

// TestTraceWrongThreads checks wrong-mark and kill events under wth.
func TestTraceWrongThreads(t *testing.T) {
	p := scaleLoop(t, 64)
	cfg := cfgTU(4)
	cfg.WrongThreadExec = true
	cfg.Mem.Side = mem.SideWEC
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	var rec trace.Recorder
	m.Trace = &rec
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Count(trace.WrongMark); uint64(got) != r.Stats.WrongThreads {
		t.Errorf("wrong marks traced %d, stats say %d", got, r.Stats.WrongThreads)
	}
	// Wrong threads either kill themselves (their own THEND/ABORT) or are
	// still running when the program halts; terminal events never exceed
	// starts.
	starts := rec.Count(trace.ThreadStart)
	ends := rec.Count(trace.Retire) + rec.Count(trace.Kill) + rec.Count(trace.SeqResume)
	if ends > starts {
		t.Errorf("terminal events %d exceed thread starts %d", ends, starts)
	}
}
