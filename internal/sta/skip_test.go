package sta

import (
	"bytes"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/metrics"
)

// runSkip runs p with the event-skip clock either live (the default) or
// disabled, optionally with a metrics collector attached, and returns the
// result plus the collector's exported JSON (nil when not attached).
func runSkip(t *testing.T, cfg Config, p *isa.Program, disable bool, interval uint64) (*Result, []byte) {
	t.Helper()
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	m.DisableSkip = disable
	var col *metrics.Collector
	if interval > 0 {
		col = metrics.NewCollector(interval)
		m.Metrics = col
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	var js []byte
	if col != nil {
		var buf bytes.Buffer
		if err := col.WriteJSON(&buf, r.Stats.Cycles); err != nil {
			t.Fatal(err)
		}
		js = buf.Bytes()
	}
	return r, js
}

// TestEventSkipEquivalence is the correctness net for the idle-cycle
// fast-forward: for every program shape and configuration, a machine that
// skips provably idle spans must produce bit-identical results — stats,
// memory image, architectural registers — to one that steps every cycle.
func TestEventSkipEquivalence(t *testing.T) {
	progs := map[string]*isa.Program{
		"scale":  scaleLoop(t, 48),
		"prefix": prefixLoop(t, 32),
	}
	for name, p := range progs {
		for _, tus := range []int{1, 4, 8} {
			for _, wrong := range []bool{false, true} {
				cfg := cfgTU(tus)
				if wrong {
					cfg.WrongThreadExec = true
					cfg.Core.WrongPathExec = true
					cfg.Mem.Side = mem.SideWEC
				}
				stepped, _ := runSkip(t, cfg, p, true, 0)
				skipped, _ := runSkip(t, cfg, p, false, 0)
				if stepped.Stats != skipped.Stats {
					t.Errorf("%s %dTU wrong=%v: stats diverge\nstepped: %+v\nskipped: %+v",
						name, tus, wrong, stepped.Stats, skipped.Stats)
				}
				if stepped.MemCheck != skipped.MemCheck {
					t.Errorf("%s %dTU wrong=%v: memory %#x vs %#x",
						name, tus, wrong, stepped.MemCheck, skipped.MemCheck)
				}
				if stepped.IntRegs != skipped.IntRegs {
					t.Errorf("%s %dTU wrong=%v: architectural registers diverge",
						name, tus, wrong)
				}
			}
		}
	}
}

// TestEventSkipMetricsEquivalence requires the interval sampler to observe
// the identical stream of samples whether or not idle spans are skipped:
// MaybeSample is replayed for every fast-forwarded cycle, so the exported
// JSON must match byte for byte.
func TestEventSkipMetricsEquivalence(t *testing.T) {
	p := prefixLoop(t, 32)
	for _, tus := range []int{1, 8} {
		cfg := cfgTU(tus)
		cfg.WrongThreadExec = true
		cfg.Core.WrongPathExec = true
		cfg.Mem.Side = mem.SideWEC
		_, js1 := runSkip(t, cfg, p, true, 500)
		_, js2 := runSkip(t, cfg, p, false, 500)
		if !bytes.Equal(js1, js2) {
			t.Errorf("%dTU: metrics JSON diverges between stepped and skipped runs", tus)
		}
	}
}
