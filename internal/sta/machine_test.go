package sta

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/interp"
	"repro/internal/isa"
	"repro/internal/mem"
)

// scaleLoop builds a parallel loop with independent iterations:
// arr[i] = f(arr[i], i), with a divide chain making each iteration heavy
// enough that thread-level parallelism pays off.
func scaleLoop(t testing.TB, n int) *isa.Program {
	b := asm.New()
	arr := b.Alloc("arr", 8*(n+80), 0)
	for i := 0; i < n; i++ {
		b.InitWord(arr+uint64(8*i), int64(1000+i*17))
	}
	b.Li(1, 0)          // i (continuation var)
	b.Li(2, int64(n))   // n
	b.Li(3, int64(arr)) // base
	b.Begin(1, 2, 3)
	b.Label("body")
	b.Op3(isa.ADD, 9, 1, 0)  // r9 = my i
	b.OpI(isa.ADDI, 1, 1, 1) // r1 = i+1 for the child
	b.Fork("body")
	b.Tsagd()
	// Computation: v = arr[i]; v = v/3/2 + i; arr[i] = v.
	b.OpI(isa.SLLI, 5, 9, 3)
	b.Op3(isa.ADD, 5, 5, 3)
	b.Ld(6, 0, 5)
	b.Li(7, 3)
	b.Op3(isa.DIV, 6, 6, 7)
	b.Li(7, 2)
	b.Op3(isa.DIV, 6, 6, 7)
	b.Op3(isa.ADD, 6, 6, 9)
	b.St(6, 0, 5)
	b.Br(isa.BLT, 1, 2, "cont")
	b.Abort()
	b.Jmp("after")
	b.Label("cont")
	b.Thend()
	b.Label("after")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// prefixLoop builds a parallel loop with a cross-iteration dependence
// carried through target stores: cell[i] = cell[i-1] + arr[i].
func prefixLoop(t testing.TB, n int) *isa.Program {
	b := asm.New()
	arr := b.Alloc("arr", 8*(n+80), 0)
	cell := b.Alloc("cell", 8*(n+80), 0)
	for i := 0; i < n; i++ {
		b.InitWord(arr+uint64(8*i), int64(i+1))
	}
	b.Li(1, 0)           // i
	b.Li(2, int64(n))    // n
	b.Li(3, int64(arr))  // arr base
	b.Li(7, int64(cell)) // cell base
	b.Begin(1, 2, 3, 7)
	b.Label("body")
	b.Op3(isa.ADD, 9, 1, 0)
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Fork("body")
	// TSAG: announce my target store cell[i].
	b.OpI(isa.SLLI, 11, 9, 3)
	b.Op3(isa.ADD, 11, 11, 7)
	b.Tsa(0, 11)
	b.Tsagd()
	// Computation: prev = i == 0 ? 0 : cell[i-1].
	b.Br(isa.BEQ, 9, 0, "first")
	b.Ld(12, -8, 11)
	b.Jmp("sum")
	b.Label("first")
	b.Li(12, 0)
	b.Label("sum")
	b.OpI(isa.SLLI, 13, 9, 3)
	b.Op3(isa.ADD, 13, 13, 3)
	b.Ld(14, 0, 13)
	b.Op3(isa.ADD, 15, 12, 14)
	b.Tst(15, 0, 11)
	b.Br(isa.BLT, 1, 2, "cont")
	b.Abort()
	b.Jmp("after")
	b.Label("cont")
	b.Thend()
	b.Label("after")
	// Sequentially read the final prefix into r20 to exercise post-region
	// coherence.
	b.OpI(isa.ADDI, 21, 2, -1)
	b.OpI(isa.SLLI, 21, 21, 3)
	b.Op3(isa.ADD, 21, 21, 7)
	b.Ld(20, 0, 21)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runMachine(t testing.TB, cfg Config, p *isa.Program) *Result {
	t.Helper()
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func cfgTU(n int) Config {
	cfg := DefaultConfig()
	cfg.NumTUs = n
	cfg.MaxCycles = 20_000_000
	return cfg
}

func TestScaleLoopMatchesInterpAcrossTUCounts(t *testing.T) {
	p := scaleLoop(t, 64)
	ref, err := interp.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("%dTU", n), func(t *testing.T) {
			r := runMachine(t, cfgTU(n), p)
			if r.MemCheck != ref.MemCheck {
				t.Errorf("memory checksum %#x, interp %#x", r.MemCheck, ref.MemCheck)
			}
		})
	}
}

func TestPrefixLoopDependenceCorrectness(t *testing.T) {
	p := prefixLoop(t, 48)
	ref, err := interp.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(48 * 49 / 2)
	if ref.IntRegs[20] != want {
		t.Fatalf("interp r20 = %d, want %d (test program broken)", ref.IntRegs[20], want)
	}
	for _, n := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("%dTU", n), func(t *testing.T) {
			r := runMachine(t, cfgTU(n), p)
			if r.MemCheck != ref.MemCheck {
				t.Errorf("memory checksum %#x, interp %#x", r.MemCheck, ref.MemCheck)
			}
			if r.IntRegs[20] != want {
				t.Errorf("r20 = %d, want %d", r.IntRegs[20], want)
			}
		})
	}
}

func TestThreadParallelSpeedup(t *testing.T) {
	p := scaleLoop(t, 128)
	seq := runMachine(t, cfgTU(1), p)
	par := runMachine(t, cfgTU(4), p)
	if par.Stats.Cycles >= seq.Stats.Cycles {
		t.Errorf("4 TUs (%d cycles) not faster than 1 TU (%d cycles)",
			par.Stats.Cycles, seq.Stats.Cycles)
	}
	if par.Stats.Forks == 0 {
		t.Error("no forks recorded on the parallel machine")
	}
}

func TestWrongThreadExecution(t *testing.T) {
	p := scaleLoop(t, 64)
	ref, _ := interp.Run(p)

	cfg := cfgTU(4)
	cfg.WrongThreadExec = true
	cfg.Mem.Side = mem.SideWEC
	r := runMachine(t, cfg, p)
	if r.Stats.WrongThreads == 0 {
		t.Error("wth configuration produced no wrong threads")
	}
	if r.Stats.WrongThLoads == 0 {
		t.Error("wrong threads issued no wrong loads")
	}
	if r.MemCheck != ref.MemCheck {
		t.Error("wrong-thread execution changed architectural memory")
	}
}

func TestAllConfigsSameResult(t *testing.T) {
	// The paper's invariant: every processor configuration produces
	// identical architectural results; only timing differs.
	p := prefixLoop(t, 32)
	ref, _ := interp.Run(p)
	type variant struct {
		name string
		mut  func(*Config)
	}
	variants := []variant{
		{"orig", func(c *Config) {}},
		{"vc", func(c *Config) { c.Mem.Side = mem.SideVC }},
		{"wp", func(c *Config) { c.Core.WrongPathExec = true; c.Mem.WrongFillsToL1 = true }},
		{"wth", func(c *Config) { c.WrongThreadExec = true; c.Mem.WrongFillsToL1 = true }},
		{"wth-wp", func(c *Config) {
			c.WrongThreadExec = true
			c.Core.WrongPathExec = true
			c.Mem.WrongFillsToL1 = true
		}},
		{"wth-wp-vc", func(c *Config) {
			c.WrongThreadExec = true
			c.Core.WrongPathExec = true
			c.Mem.WrongFillsToL1 = true
			c.Mem.Side = mem.SideVC
		}},
		{"wth-wp-wec", func(c *Config) {
			c.WrongThreadExec = true
			c.Core.WrongPathExec = true
			c.Mem.Side = mem.SideWEC
		}},
		{"nlp", func(c *Config) { c.Mem.Side = mem.SidePB; c.Mem.NextLinePrefetch = true }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := cfgTU(4)
			v.mut(&cfg)
			r := runMachine(t, cfg, p)
			if r.MemCheck != ref.MemCheck {
				t.Errorf("%s: checksum %#x, interp %#x", v.name, r.MemCheck, ref.MemCheck)
			}
		})
	}
}

func TestSequentialProgramOnManyTUs(t *testing.T) {
	// A program with no parallel region runs on TU0 only.
	b := asm.New()
	a := b.Alloc("x", 64, 0)
	b.Li(1, int64(a))
	b.Li(2, 0)
	b.Li(3, 50)
	b.Label("loop")
	b.Op3(isa.ADD, 4, 4, 2)
	b.St(4, 0, 1)
	b.OpI(isa.ADDI, 2, 2, 1)
	b.Br(isa.BLT, 2, 3, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := interp.Run(p)
	r := runMachine(t, cfgTU(4), p)
	if r.MemCheck != ref.MemCheck {
		t.Error("sequential program result mismatch")
	}
	if r.Stats.Forks != 0 {
		t.Error("sequential program forked")
	}
}

func TestParCyclesTracked(t *testing.T) {
	p := scaleLoop(t, 64)
	r := runMachine(t, cfgTU(4), p)
	if r.Stats.ParCycles == 0 || r.Stats.ParCycles > r.Stats.Cycles {
		t.Errorf("ParCycles %d of %d cycles", r.Stats.ParCycles, r.Stats.Cycles)
	}
	if r.Stats.ParCommits == 0 || r.Stats.ParCommits > r.Stats.Commits {
		t.Errorf("ParCommits %d of %d", r.Stats.ParCommits, r.Stats.Commits)
	}
}

func TestRepeatedRegions(t *testing.T) {
	// Outer sequential loop invoking the parallel region several times; the
	// BEGIN of each region must clean up leftover wrong threads.
	b := asm.New()
	const n, outer = 24, 4
	arr := b.Alloc("arr", 8*(n+80), 0)
	for i := 0; i < n; i++ {
		b.InitWord(arr+uint64(8*i), int64(i))
	}
	b.Li(25, 0) // outer counter
	b.Label("outer")
	b.Li(1, 0)
	b.Li(2, int64(n))
	b.Li(3, int64(arr))
	b.Begin(1, 2, 3, 25)
	b.Label("body")
	b.Op3(isa.ADD, 9, 1, 0)
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Fork("body")
	b.Tsagd()
	b.OpI(isa.SLLI, 5, 9, 3)
	b.Op3(isa.ADD, 5, 5, 3)
	b.Ld(6, 0, 5)
	b.OpI(isa.ADDI, 6, 6, 1)
	b.St(6, 0, 5)
	b.Br(isa.BLT, 1, 2, "cont")
	b.Abort()
	b.Jmp("after")
	b.Label("cont")
	b.Thend()
	b.Label("after")
	b.OpI(isa.ADDI, 25, 25, 1)
	b.Li(26, outer)
	b.Br(isa.BLT, 25, 26, "outer")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := interp.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cfgTU(4)
	cfg.WrongThreadExec = true
	cfg.Mem.Side = mem.SideWEC
	cfg.Core.WrongPathExec = true
	r := runMachine(t, cfg, p)
	if r.MemCheck != ref.MemCheck {
		t.Errorf("repeated regions checksum %#x, interp %#x", r.MemCheck, ref.MemCheck)
	}
	if r.Stats.Aborts != outer {
		t.Errorf("aborts = %d, want %d", r.Stats.Aborts, outer)
	}
	// arr[i] must have been incremented exactly `outer` times.
	m, _ := New(cfgTU(1), p)
	_ = m
}

func TestForkDelayCosts(t *testing.T) {
	p := scaleLoop(t, 64)
	fast := cfgTU(4)
	slow := cfgTU(4)
	slow.ForkDelay = 40
	slow.TransferPerValue = 10
	rf := runMachine(t, fast, p)
	rs := runMachine(t, slow, p)
	if rs.Stats.Cycles <= rf.Stats.Cycles {
		t.Errorf("higher fork cost not slower: %d vs %d", rs.Stats.Cycles, rf.Stats.Cycles)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.NumTUs = 0
	if bad.Validate() == nil {
		t.Error("zero TUs accepted")
	}
	bad = DefaultConfig()
	bad.MemBufEntries = 0
	if bad.Validate() == nil {
		t.Error("zero memory buffer accepted")
	}
	bad = DefaultConfig()
	bad.ForkDelay = -1
	if bad.Validate() == nil {
		t.Error("negative fork delay accepted")
	}
}

func TestRunawayDetection(t *testing.T) {
	b := asm.New()
	b.Label("spin")
	b.Jmp("spin")
	p, _ := b.Build()
	cfg := cfgTU(1)
	cfg.MaxCycles = 5000
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("infinite loop not detected")
	}
}
