package sta

import (
	"reflect"
	"testing"

	"repro/internal/attrib"
	"repro/internal/interp"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/wgen"
)

// TestWgenDifferentialSoak is the generator-driven differential soak: the
// randomized-builder soak above promoted to the wgen genome space. At
// least 500 distinct genomes per full run (40 under -short or -race), each
// expanded to a program and executed on a rotating machine shape and
// wrong-execution configuration, requiring the interpreter's exact memory
// image AND complete architectural integer register file. Any divergence
// reports the genome's canonical line so the failing program replays with
// `stasim -wgen-genome '<line>'`.
func TestWgenDifferentialSoak(t *testing.T) {
	n := 500
	if testing.Short() || raceMode {
		n = 40
	}
	shapes := []int{1, 2, 4, 8}
	for i := 0; i < n; i++ {
		g := wgen.Random(uint64(i)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03)
		p, err := g.Program()
		if err != nil {
			t.Fatalf("genome %d %s: %v", i, g.Canonical(), err)
		}
		ref, err := interp.Run(p)
		if err != nil {
			t.Fatalf("genome %d %s: interp: %v", i, g.Canonical(), err)
		}
		cfg := cfgTU(shapes[i%len(shapes)])
		switch i % 3 {
		case 1:
			cfg.WrongThreadExec = true
			cfg.Core.WrongPathExec = true
			cfg.Mem.Side = mem.SideWEC
		case 2:
			cfg.Core.WrongPathExec = true
			cfg.Mem.Side = mem.SideVC
		}
		m, err := New(cfg, p)
		if err != nil {
			t.Fatalf("genome %d %s: %v", i, g.Canonical(), err)
		}
		if i%5 == 4 {
			m.Workers = 4
		}
		r, err := m.Run()
		if err != nil {
			t.Fatalf("genome %d %s: %v", i, g.Canonical(), err)
		}
		if r.MemCheck != ref.MemCheck {
			t.Fatalf("genome %d (%dTU, mode %d): memory %#x, interp %#x\n%s",
				i, cfg.NumTUs, i%3, r.MemCheck, ref.MemCheck, g.Canonical())
		}
		if r.IntRegs != ref.IntRegs {
			for k := 0; k < isa.NumIntRegs; k++ {
				if r.IntRegs[k] != ref.IntRegs[k] {
					t.Fatalf("genome %d (%dTU, mode %d): r%d = %d, interp %d\n%s",
						i, cfg.NumTUs, i%3, k, r.IntRegs[k], ref.IntRegs[k], g.Canonical())
				}
			}
		}
	}
}

// TestWgenCoverageSignalDeterministic pins the coverage signal: for a
// fixed genome, the behavior signature extracted from the counter and
// attribution registries must be identical across {seq,par4} stepping ×
// {stepped,skip} clocking — the signal depends on what the machine did,
// never on how it was stepped. A nondeterministic signal would make the
// coverage-guided search's trajectory (and the soak-smoke monotonicity
// assertion) irreproducible.
func TestWgenCoverageSignalDeterministic(t *testing.T) {
	g := wgen.Random(424242)
	p, err := g.Program()
	if err != nil {
		t.Fatal(err)
	}
	cfg := cfgTU(8)
	cfg.WrongThreadExec = true
	cfg.Core.WrongPathExec = true
	cfg.Mem.Side = mem.SideWEC
	var ref []string
	for _, mode := range []parModeSpec{{name: "seq", disable: true}, {name: "par4", workers: 4}} {
		for _, skip := range []bool{true, false} {
			out := runParMode(t, cfg, p, mode, skip, true)
			rep := attribReport(t, cfg, p, mode, skip)
			sig := wgen.Buckets(&out.res.Stats, rep)
			if len(sig) == 0 {
				t.Fatalf("%s skip=%v: empty behavior signature", mode.name, skip)
			}
			if ref == nil {
				ref = sig
			} else if !reflect.DeepEqual(ref, sig) {
				t.Errorf("%s skip=%v: signature diverges\nref: %v\ngot: %v", mode.name, skip, ref, sig)
			}
		}
	}
}

// attribReport reruns prog in one mode with only attribution attached and
// returns the sealed report (runParMode keeps its collector private).
func attribReport(t *testing.T, cfg Config, p *isa.Program, mode parModeSpec, skip bool) *attrib.Report {
	t.Helper()
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	m.Workers = mode.workers
	m.DisableParallel = mode.disable
	m.DisableSkip = !skip
	ac := attrib.NewCollector()
	m.Attrib = ac
	r, err := m.Run()
	if err != nil {
		t.Fatalf("%s: %v", mode.name, err)
	}
	return ac.Report(r.Stats.Cycles)
}

// TestWgenWorkloadExercisesSpeculation guards the generator's value to the
// wrong-execution study: across a small genome sample on a WEC-enabled
// machine, at least one genome must produce wrong-execution loads, WEC
// insertions, forks, and mispredicted branches. A generator that never
// reaches the speculative machinery would still pass the differential
// soak — and be useless for the paper's experiments.
func TestWgenWorkloadExercisesSpeculation(t *testing.T) {
	var agg struct{ wrong, wec, forks, misp uint64 }
	for seed := uint64(1); seed <= 12; seed++ {
		g := wgen.Random(seed * 7919)
		p, err := g.Program()
		if err != nil {
			t.Fatal(err)
		}
		cfg := cfgTU(8)
		cfg.WrongThreadExec = true
		cfg.Core.WrongPathExec = true
		cfg.Mem.Side = mem.SideWEC
		r := runMachine(t, cfg, p)
		agg.wrong += r.Stats.WrongLoads
		agg.wec += r.Stats.WECInserts
		agg.forks += r.Stats.Forks
		agg.misp += r.Stats.Mispredicts
	}
	if agg.forks == 0 {
		t.Error("no genome forked a thread")
	}
	if agg.misp == 0 {
		t.Error("no genome mispredicted a branch")
	}
	if agg.wrong == 0 {
		t.Error("no genome issued wrong-execution loads")
	}
	if agg.wec == 0 {
		t.Error("no genome inserted into the WEC")
	}
}
