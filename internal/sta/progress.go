// Live progress publication: when a ProgressTap is attached to a Machine,
// the run loop periodically publishes its cycle and commit counters into
// lock-free atomics (read by heartbeat printers and the telemetry HTTP
// server), keeps a bounded ring of throttled progress samples (dumped by
// the flight recorder when the run dies), and bridges the metrics registry
// into a snapshot other goroutines may read. With a nil tap the whole
// mechanism is one untaken nil check per loop iteration.
package sta

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// ProgressSample is one throttled observation of a running machine.
type ProgressSample struct {
	Wall    time.Time `json:"wall"`
	Cycle   uint64    `json:"cycle"`
	Commits uint64    `json:"commits"`
	// PerTU is the per-thread-unit committed-instruction count at the
	// sample, indexed by TU id.
	PerTU []uint64 `json:"per_tu,omitempty"`
}

// DefaultTapRing bounds a ProgressTap's sample ring unless RingSize
// overrides it: enough history to reconstruct the last ~30 seconds of a
// run at the default sampling period.
const DefaultTapRing = 128

// DefaultTapPeriod is the minimum wall-clock spacing of ring samples (and
// registry bridge snapshots). Atomic cycle/commit publication is not
// throttled; only the heavier ring/bridge work is.
const DefaultTapPeriod = 250 * time.Millisecond

// ProgressTap receives live progress from one running machine. Attach to
// Machine.Tap before Run. The publishing side is the simulation goroutine;
// every reader-facing method is safe to call concurrently with the run.
type ProgressTap struct {
	// Period throttles ring samples and registry bridging (0 means
	// DefaultTapPeriod). RingSize bounds the sample ring (0 means
	// DefaultTapRing). Set before the run starts.
	Period   time.Duration
	RingSize int

	cycle   atomic.Uint64
	commits atomic.Uint64

	mu       sync.Mutex
	started  time.Time
	ring     []ProgressSample
	head     int // next write position
	count    int
	bridge   []metrics.KV
	lastTick time.Time
}

// Latest returns the most recently published cycle and total commit count.
func (t *ProgressTap) Latest() (cycle, commits uint64) {
	return t.cycle.Load(), t.commits.Load()
}

// Started returns the wall-clock time of the first publication (zero until
// the run's first publish).
func (t *ProgressTap) Started() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.started
}

// Samples returns the ring's contents oldest-first.
func (t *ProgressTap) Samples() []ProgressSample {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ProgressSample, 0, t.count)
	start := t.head - t.count
	for i := 0; i < t.count; i++ {
		j := start + i
		if j < 0 {
			j += len(t.ring)
		}
		out = append(out, t.ring[j])
	}
	return out
}

// Counters returns the latest bridged metrics-registry snapshot (nil when
// the machine has no collector or no bridge tick has happened yet).
func (t *ProgressTap) Counters() []metrics.KV {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]metrics.KV, len(t.bridge))
	copy(out, t.bridge)
	return out
}

// Rate estimates simulated cycles per wall second from the sample ring:
// the span between the oldest and newest retained samples. A young run
// (fewer than two throttled samples) falls back to the average since the
// first publication.
func (t *ProgressTap) Rate() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count >= 2 {
		newest := t.at(t.count - 1)
		oldest := t.at(0)
		if dt := newest.Wall.Sub(oldest.Wall).Seconds(); dt > 0 {
			return float64(newest.Cycle-oldest.Cycle) / dt
		}
	}
	if !t.started.IsZero() {
		if dt := time.Since(t.started).Seconds(); dt > 0 {
			return float64(t.cycle.Load()) / dt
		}
	}
	return 0
}

// at returns the i-th retained sample (0 = oldest). Caller holds mu.
func (t *ProgressTap) at(i int) ProgressSample {
	j := t.head - t.count + i
	if j < 0 {
		j += len(t.ring)
	}
	return t.ring[j]
}

func (t *ProgressTap) period() time.Duration {
	if t.Period > 0 {
		return t.Period
	}
	return DefaultTapPeriod
}

func (t *ProgressTap) push(s ProgressSample) {
	if t.ring == nil {
		n := t.RingSize
		if n <= 0 {
			n = DefaultTapRing
		}
		t.ring = make([]ProgressSample, n)
	}
	t.ring[t.head] = s
	t.head = (t.head + 1) % len(t.ring)
	if t.count < len(t.ring) {
		t.count++
	}
}

// publishProgress pushes the machine's progress into the attached tap.
// Called from the run loop every 1024 iterations (and from the failure
// paths with force=true so the flight recorder sees the dying state).
// Between worker rendezvous the coordinator is the only goroutine touching
// simulator state, so the reads below are race-free; readers only ever see
// the atomics and the mutex-guarded copies.
func (m *Machine) publishProgress(force bool) {
	t := m.Tap
	if t == nil {
		return
	}
	var commits uint64
	for i := range m.tus {
		commits += m.tus[i].core.Stats.Commits
	}
	t.cycle.Store(m.cycle)
	t.commits.Store(commits)
	now := time.Now()
	t.mu.Lock()
	if t.started.IsZero() {
		t.started = now
	}
	if force || now.Sub(t.lastTick) >= t.period() {
		t.lastTick = now
		per := make([]uint64, len(m.tus))
		for i := range m.tus {
			per[i] = m.tus[i].core.Stats.Commits
		}
		t.push(ProgressSample{Wall: now, Cycle: m.cycle, Commits: commits, PerTU: per})
		if m.Metrics != nil && m.Metrics.Registry != nil {
			t.bridge = m.Metrics.Registry.Snapshot()
		}
	}
	t.mu.Unlock()
}
