package sta_test

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/config"
	"repro/internal/sta"
)

// Example runs a textual thread-pipelined program on a 4-TU machine in the
// wth-wp-wec configuration and reports the result plus the paper's key
// counters.
func Example() {
	prog, err := asm.Parse(`
		.data arr 720 64
		li r1, 0
		li r2, 16
		li r3, &arr
		begin r1, r2, r3
	body:
		add  r9, r1, r0
		addi r1, r1, 1
		fork body
		tsagd
		slli r5, r9, 3
		add  r5, r5, r3
		st   r9, 0(r5)
		blt  r1, r2, cont
		abort
		jmp  after
	cont:
		thend
	after:
		halt
	`)
	if err != nil {
		panic(err)
	}
	cfg := config.Main(4)
	if err := config.Apply(config.WTHWPWEC, &cfg); err != nil {
		panic(err)
	}
	m, err := sta.New(cfg, prog)
	if err != nil {
		panic(err)
	}
	res, err := m.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println("forks:", res.Stats.Forks)
	fmt.Println("aborts:", res.Stats.Aborts)
	fmt.Println("arr[7]:", m.Image().ReadWord(uint64(prog.Symbols["arr"])+56))
	// Output:
	// forks: 15
	// aborts: 1
	// arr[7]: 7
}
