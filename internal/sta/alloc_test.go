package sta

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// allocLoop is a long tight ALU loop: no memory traffic, no forks, so a
// warmed machine steps it in pure steady state for as long as the guard
// needs.
func allocLoop(t testing.TB, iters int64) *isa.Program {
	t.Helper()
	b := asm.New()
	b.Li(1, 0)
	b.Li(2, iters)
	b.Label("loop")
	b.OpI(isa.ADDI, 3, 1, 7)
	b.Op3(isa.XOR, 3, 3, 2)
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Br(isa.BLT, 1, 2, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestStepSteadyStateZeroAllocs pins the per-cycle allocation cost of the
// uninstrumented machine: with no collector, no trace, no chaos, and no
// progress tap attached, a steady-state cycle must not allocate at all.
// This is the contract the telemetry layer's nil-check hooks ride on — if
// attaching observability moves any per-cycle work onto the heap, or the
// disabled path regresses, this fails before the perfbench gate does.
func TestStepSteadyStateZeroAllocs(t *testing.T) {
	cfg := cfgTU(1)
	cfg.NumTUs = 1
	m, err := New(cfg, allocLoop(t, 50_000_000))
	if err != nil {
		t.Fatal(err)
	}
	m.DisableParallel = true
	// Mirror RunContext's setup for the sequential path, then warm up past
	// cold-start growth (caches, queues, pools).
	m.attachMetrics()
	m.attachAttrib()
	m.tus[0].startMain()
	for i := 0; i < 20_000 && !m.halted; i++ {
		m.step()
	}
	if m.halted {
		t.Fatal("warmup exhausted the loop; raise iters")
	}
	allocs := testing.AllocsPerRun(10_000, func() {
		if m.halted {
			t.Fatal("loop halted during the guard; raise iters")
		}
		m.step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state step allocates %.3f allocs/cycle, want 0 with telemetry detached", allocs)
	}
}

// TestStepSteadyStateZeroAllocsWithTap is the same guard with a progress
// tap attached and pre-warmed: between throttled ring samples, publication
// is two atomic stores plus a commit-count sweep — still allocation-free.
// (publishProgress itself runs every 1024 run-loop iterations; here it is
// called per step to bound its own cost, with the ring sample forced once
// beforehand so the throttle path is the one measured.)
func TestStepSteadyStateZeroAllocsWithTap(t *testing.T) {
	cfg := cfgTU(1)
	cfg.NumTUs = 1
	m, err := New(cfg, allocLoop(t, 50_000_000))
	if err != nil {
		t.Fatal(err)
	}
	m.DisableParallel = true
	m.Tap = &ProgressTap{}
	m.attachMetrics()
	m.attachAttrib()
	m.tus[0].startMain()
	for i := 0; i < 20_000 && !m.halted; i++ {
		m.step()
	}
	if m.halted {
		t.Fatal("warmup exhausted the loop; raise iters")
	}
	m.publishProgress(true) // prime the ring so PerTU backing exists
	allocs := testing.AllocsPerRun(10_000, func() {
		m.step()
		m.publishProgress(false)
	})
	// The throttle opens every DefaultTapPeriod, pushing one ring sample
	// (a PerTU slice): amortized over 10k steps that rounds to 0, but give
	// the guard headroom for one tick landing inside the measured window.
	if allocs > 0.01 {
		t.Fatalf("tapped steady-state step allocates %.3f allocs/cycle, want ~0", allocs)
	}
}
