// Package sta implements the superthreaded architecture: a ring of thread
// units (out-of-order cores from package core) executing loop iterations
// under the thread-pipelining model — continuation, TSAG, computation, and
// write-back stages — with run-time data dependence checking through
// per-thread speculative memory buffers and target-store forwarding over a
// unidirectional communication ring.
//
// The package also implements the paper's two wrong-execution modes:
// wrong-path load continuation lives in package core; wrong-thread
// execution (§3.1.2) lives here — on an abort, speculative successor
// threads are marked wrong instead of killed, keep executing (their loads
// tagged wrong for the memory system), cannot fork, and kill themselves at
// their own abort/thread-end or at the next parallel region's BEGIN.
package sta

import "repro/internal/memimg"

// mbEntry is one upstream slot of a speculative memory buffer: a
// target-store address announced by an upstream thread, optionally carrying
// its data once the upstream target store commits. AvailAt models the
// unidirectional-ring transfer delay (two cycles per value per hop).
type mbEntry struct {
	hasVal  bool
	val     int64
	availAt uint64
}

// ownStore is a committed store of this thread, buffered until write-back.
type ownStore struct {
	addr uint64
	val  int64
}

// memBuf is one thread's speculative memory buffer (§2.1: fully
// associative, 128 entries in the paper). Capacity is tracked as a
// statistic: workloads are sized to fit, and Overflows flags violations.
type memBuf struct {
	capacity int
	upstream map[uint64]*mbEntry
	ownIdx   map[uint64]int // addr -> index into own (latest store wins)
	own      []ownStore
	drainPos int // own[:drainPos] already written back

	Overflows uint64
}

func newMemBuf(capacity int) *memBuf {
	return &memBuf{
		capacity: capacity,
		upstream: make(map[uint64]*mbEntry),
		ownIdx:   make(map[uint64]int),
	}
}

func (m *memBuf) reset() {
	clear(m.upstream)
	clear(m.ownIdx)
	m.own = m.own[:0]
	m.drainPos = 0
}

func (m *memBuf) size() int { return len(m.upstream) + len(m.ownIdx) }

func (m *memBuf) checkCapacity() {
	if m.size() > m.capacity {
		m.Overflows++
	}
}

// announce records an upstream target-store address (TSA), visible to
// dependence checking from availAt.
func (m *memBuf) announce(addr uint64, availAt uint64) {
	if e, ok := m.upstream[addr]; ok {
		if availAt < e.availAt {
			e.availAt = availAt
		}
		return
	}
	m.upstream[addr] = &mbEntry{availAt: availAt}
	m.checkCapacity()
}

// deliver records upstream target-store data (TST) for addr.
func (m *memBuf) deliver(addr uint64, val int64, availAt uint64) {
	e, ok := m.upstream[addr]
	if !ok {
		e = &mbEntry{}
		m.upstream[addr] = e
		m.checkCapacity()
	}
	e.hasVal = true
	e.val = val
	if availAt > e.availAt {
		e.availAt = availAt
	}
}

// writeOwn buffers a committed store of this thread.
func (m *memBuf) writeOwn(addr uint64, val int64) {
	if i, ok := m.ownIdx[addr]; ok {
		m.own[i].val = val
		return
	}
	m.ownIdx[addr] = len(m.own)
	m.own = append(m.own, ownStore{addr: addr, val: val})
	m.checkCapacity()
}

// lookupStatus is the outcome of a dependence check for a load.
type lookupStatus uint8

const (
	mbMiss  lookupStatus = iota // not in the buffer: go to the cache
	mbHit                       // value available now
	mbStall                     // announced upstream, data not yet here
)

// lookup performs the run-time dependence check for a load at cycle.
func (m *memBuf) lookup(addr uint64, cycle uint64) (int64, lookupStatus) {
	if i, ok := m.ownIdx[addr]; ok {
		return m.own[i].val, mbHit
	}
	if e, ok := m.upstream[addr]; ok {
		if !e.hasVal || cycle < e.availAt {
			return 0, mbStall
		}
		return e.val, mbHit
	}
	return 0, mbMiss
}

// inheritFrom seeds a freshly forked thread's buffer with everything its
// parent knows: the parent's upstream entries (including in-flight ones,
// availability preserved) and the parent's own announced target stores.
// This closes the fork/forward race without modelling per-link queues.
func (m *memBuf) inheritFrom(parent *memBuf, parentTargets map[uint64]*mbEntry, forkAt uint64, hopDelay uint64) {
	for addr, e := range parent.upstream {
		avail := e.availAt + hopDelay
		if avail < forkAt {
			avail = forkAt
		}
		ne := &mbEntry{hasVal: e.hasVal, val: e.val, availAt: avail}
		m.upstream[addr] = ne
	}
	for addr, e := range parentTargets {
		avail := forkAt + hopDelay
		ne := &mbEntry{hasVal: e.hasVal, val: e.val, availAt: avail}
		m.upstream[addr] = ne
	}
	m.checkCapacity()
}

// drainOne pops the oldest buffered own store for write-back. ok reports
// whether a store was available. A cursor (drainPos) is advanced instead of
// reslicing own, so ownIdx keeps absolute indices and needs no rebuild.
func (m *memBuf) drainOne() (ownStore, bool) {
	if m.drainPos >= len(m.own) {
		return ownStore{}, false
	}
	s := m.own[m.drainPos]
	if i, ok := m.ownIdx[s.addr]; ok && i == m.drainPos {
		delete(m.ownIdx, s.addr)
	}
	m.drainPos++
	return s, true
}

// pendingStores reports how many own stores await write-back.
func (m *memBuf) pendingStores() int { return len(m.own) - m.drainPos }

// drainAllTo writes every buffered store to the image immediately
// (functional effect only; timing is charged by the caller).
func (m *memBuf) drainAllTo(img *memimg.Image) int {
	pending := m.own[m.drainPos:]
	n := len(pending)
	for _, s := range pending {
		img.WriteWord(s.addr, s.val)
	}
	m.own = m.own[:0]
	m.drainPos = 0
	clear(m.ownIdx)
	return n
}
