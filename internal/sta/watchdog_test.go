package sta

import (
	"context"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/chaos"
	"repro/internal/isa"
	"repro/internal/simerr"
)

// livelockProgram builds a workload that silently livelocks the machine: a
// parallel region whose head thread commits THEND without ever forking a
// successor or aborting. The thread retires, every TU idles, and the
// machine never halts — the shape of hang the MaxCycles bound would only
// diagnose 500M cycles later.
func livelockProgram(t *testing.T) *isa.Program {
	t.Helper()
	b := asm.New()
	b.Li(1, 0)
	b.Begin(1)
	b.Thend()
	b.Halt() // never reached: no thread survives the region
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// spinProgram builds a program that keeps retiring instructions forever
// (runaway, not deadlock): an unconditional jump loop.
func spinProgram(t *testing.T) *isa.Program {
	t.Helper()
	b := asm.New()
	b.Label("spin")
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Jmp("spin")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func watchdogConfig(wd uint64) Config {
	cfg := DefaultConfig()
	cfg.NumTUs = 2
	cfg.WatchdogCycles = wd
	return cfg
}

// TestWatchdogTripsOnLivelock pins the forward-progress watchdog contract:
// a livelocked machine fails with simerr.Deadlock at roughly the watchdog
// window — far before MaxCycles — and the error carries a non-empty per-TU
// pipeline snapshot.
func TestWatchdogTripsOnLivelock(t *testing.T) {
	const wd = 50_000
	m, err := New(watchdogConfig(wd), livelockProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	if err == nil {
		t.Fatal("livelocked machine ran to completion")
	}
	if k := simerr.KindOf(err); k != simerr.Deadlock {
		t.Fatalf("kind = %v, want Deadlock (%v)", k, err)
	}
	var e *simerr.Error
	if !errorsAs(err, &e) {
		t.Fatalf("error %T is not *simerr.Error", err)
	}
	if e.Cycle < wd || e.Cycle > wd+1_000 {
		t.Errorf("tripped at cycle %d, want ~%d (well before MaxCycles %d)",
			e.Cycle, wd, m.cfg.MaxCycles)
	}
	if len(e.TUs) != 2 {
		t.Fatalf("snapshot has %d TUs, want 2", len(e.TUs))
	}
	for _, tu := range e.TUs {
		if tu.State == "" || tu.Head == "" {
			t.Errorf("empty TU state in snapshot: %+v", tu)
		}
	}
}

// TestWatchdogSkipEquivalence asserts the event-skip clock does not move
// the cycle the watchdog fires at.
func TestWatchdogSkipEquivalence(t *testing.T) {
	trip := func(disableSkip bool) uint64 {
		m, err := New(watchdogConfig(20_000), livelockProgram(t))
		if err != nil {
			t.Fatal(err)
		}
		m.DisableSkip = disableSkip
		_, err = m.Run()
		var e *simerr.Error
		if !errorsAs(err, &e) || e.Kind != simerr.Deadlock {
			t.Fatalf("disableSkip=%v: %v", disableSkip, err)
		}
		return e.Cycle
	}
	stepped, skipped := trip(true), trip(false)
	if stepped != skipped {
		t.Errorf("watchdog fired at cycle %d stepped but %d skipped", stepped, skipped)
	}
}

// TestRunawayStillDiagnosed pins the MaxCycles path: a spinning program
// that keeps retiring never trips the watchdog but fails as Runaway at the
// bound, with machine state attached.
func TestRunawayStillDiagnosed(t *testing.T) {
	cfg := watchdogConfig(0) // default window
	cfg.MaxCycles = 30_000
	m, err := New(cfg, spinProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	var e *simerr.Error
	if !errorsAs(err, &e) || e.Kind != simerr.Runaway {
		t.Fatalf("want Runaway, got %v", err)
	}
	if e.Cycle < 30_000 || len(e.TUs) == 0 {
		t.Errorf("runaway diagnostics incomplete: cycle=%d TUs=%d", e.Cycle, len(e.TUs))
	}
}

// TestRunContextCancellation covers the Canceled and Timeout kinds.
func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := New(watchdogConfig(0), spinProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunContext(ctx); simerr.KindOf(err) != simerr.Canceled {
		t.Errorf("pre-canceled context: kind = %v (%v)", simerr.KindOf(err), err)
	}

	tctx, tcancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer tcancel()
	m2, err := New(watchdogConfig(0), spinProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.RunContext(tctx); simerr.KindOf(err) != simerr.Timeout {
		t.Errorf("deadline: kind = %v (%v)", simerr.KindOf(err), err)
	}
}

// TestChaosLivelockInjection proves the chaos livelock point freezes the
// machine and the watchdog classifies it as Deadlock, and the chaos panic
// point is recovered into simerr.Panic with a stack.
func TestChaosLivelockInjection(t *testing.T) {
	cfg := watchdogConfig(10_000)
	m, err := New(cfg, spinProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	m.Chaos = chaos.New(chaos.Config{Seed: 1, Livelock: 1}, "livelock-test")
	_, err = m.Run()
	if k := simerr.KindOf(err); k != simerr.Deadlock {
		t.Errorf("chaos livelock kind = %v (%v)", k, err)
	}

	m2, err := New(cfg, spinProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	m2.Chaos = chaos.New(chaos.Config{Seed: 1, MachinePanic: 1}, "panic-test")
	_, err = m2.Run()
	var e *simerr.Error
	if !errorsAs(err, &e) || e.Kind != simerr.Panic {
		t.Fatalf("chaos panic: %v", err)
	}
	if len(e.Stack) == 0 || len(e.TUs) == 0 {
		t.Error("panic error missing stack or machine snapshot")
	}
}

// TestChaosOffBitIdentical asserts that attaching a zero-probability chaos
// injector perturbs nothing: stats, architectural state, and cycle counts
// stay bit-identical to an uninstrumented run.
func TestChaosOffBitIdentical(t *testing.T) {
	run := func(inj *chaos.Injector) *Result {
		m, err := New(watchdogConfig(0), livelockFreeProgram(t))
		if err != nil {
			t.Fatal(err)
		}
		m.Chaos = inj
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	bare := run(nil)
	zero := run(chaos.New(chaos.Config{Seed: 99}, "off"))
	if bare.Stats != zero.Stats || bare.MemCheck != zero.MemCheck || bare.IntRegs != zero.IntRegs {
		t.Errorf("zero-probability chaos perturbed the run:\nbare: %+v\nzero: %+v", bare.Stats, zero.Stats)
	}
}

// livelockFreeProgram is a small well-formed program that halts.
func livelockFreeProgram(t *testing.T) *isa.Program {
	t.Helper()
	b := asm.New()
	scratch := b.Alloc("scratch", 128*8, 8)
	b.Li(10, int64(scratch))
	b.Li(1, 0)
	b.Li(2, 64)
	b.Label("loop")
	b.OpI(isa.SLLI, 11, 1, 3)
	b.Op3(isa.ADD, 11, 11, 10)
	b.Ld(12, 0, 11)
	b.OpI(isa.ADDI, 12, 12, 3)
	b.St(12, 0, 11)
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Br(isa.BLT, 1, 2, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// errorsAs is a tiny local alias to keep test call sites readable.
func errorsAs(err error, target **simerr.Error) bool {
	if err == nil {
		return false
	}
	for e := err; e != nil; {
		if se, ok := e.(*simerr.Error); ok {
			*target = se
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}
