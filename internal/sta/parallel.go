package sta

import (
	"runtime"
	"sync/atomic"

	"repro/internal/chaos"
)

// Deterministic intra-machine parallelism.
//
// Stepping a cycle is split into a compute phase and a commit phase. The
// compute phase steps thread units on worker goroutines; a TU's compute may
// mutate only its own state (core, L1 ports, memory buffer), so every
// cross-TU effect is captured into per-TU queues (mem.Hierarchy's deferred
// effects, the core's deferred observations, and the pendChain/pendProgress
// fields below). The serial commit phase replays those queues in TU-ID
// order, which is exactly the order sequential stepping produces them in —
// so the L2 queue, cache LRU state, metrics streams, and attribution
// streams are bit-identical no matter how the goroutines interleave.
//
// Not every TU is compute-safe every cycle. classify sorts them:
//
//   - idle TUs: stepping is a no-op (detach cleared parMode, so updateChain
//     returns immediately).
//   - running parMode TUs with no control op in flight (core.CtlQuiet):
//     commits are plain ALU/LD/ST traffic; parMode stores only write the
//     TU's own memory buffer. The superthreaded control ops (BEGIN, FORK,
//     TSA, TSAGD, THEND, ABORT, HALT, TST) — the only commits with cross-TU
//     reach — need at least two cycles from dispatch to commit, so CtlQuiet
//     at the top of a cycle rules them out for that cycle and the next.
//   - wb-wait TUs with a live predecessor: a pure own-state poll.
//
// Everything else (sequential-mode execution with write-through stores and
// update coherence, write-back drains, any TU with a control op in flight)
// is serial-class and is stepped inline, alone, between parallel segments.
// Segments are maximal runs of safe TUs, so the global effect order is the
// TU order — the sequential order.
//
// When every TU is safe and the memory system, sampler, watchdog, and
// pending-fork state provably cannot interact for two cycles, a two-cycle
// window runs both compute steps per TU with a single barrier, then replays
// the commit one cycle slice at a time. The TSAG chain flag needs
// TransferPerValue >= 2 to stay invisible across the unsynchronized second
// cycle; fills must take at least two cycles (L2HitLat >= 2, MemLat >=
// L2HitLat+2) for the same reason. Windows are disabled under chaos
// injection so every probability point draws once per cycle, exactly as the
// sequential loop does.

// TU classification for one cycle.
const (
	clSafe   uint8 = iota // compute phase may run on a worker
	clSerial              // must step alone, in TU order, on the coordinator
)

// pendFlag is a TSAG chain-completion flag captured during compute: the
// successor's hasPredFlag/predChainAt write, tagged with the cycle it
// happened on. Applying it at end of cycle is exact because the flag is
// inert until predChainAt (at least one cycle away).
type pendFlag struct {
	c, at uint64
}

type parJob struct {
	lo, hi int
	cycle  uint64
	ncyc   int
}

type parPanic struct {
	set bool
	tu  int
	val any
}

// parRunner owns the worker pool: n-1 spinning goroutines plus the
// coordinator, rendezvousing on a generation counter. All job fields are
// published before the gen increment and read after observing it, so the
// atomics carry the happens-before edges.
type parRunner struct {
	m      *Machine
	n      int
	class  []uint8
	job    parJob
	gen    atomic.Uint32
	busy   atomic.Int32
	quit   atomic.Bool
	panics []parPanic
}

func (m *Machine) startPar(n int) {
	m.par = &parRunner{
		m:      m,
		n:      n,
		class:  make([]uint8, len(m.tus)),
		panics: make([]parPanic, n),
	}
	for w := 1; w < n; w++ {
		go m.par.workerLoop(w)
	}
}

func (m *Machine) stopPar() {
	if m.par != nil {
		m.par.quit.Store(true)
		m.par = nil
	}
}

// resolveWorkers picks the worker count for this run. 0 is automatic:
// one worker per four TUs, capped by GOMAXPROCS, so small machines and
// starved hosts fall back to the plain sequential loop. Anything below two
// means sequential. Tracing is incompatible (events would interleave) and
// a zero TransferPerValue would make chain flags visible in the cycle they
// are set, defeating end-of-cycle replay.
func (m *Machine) resolveWorkers() int {
	if m.DisableParallel || m.Trace != nil || m.seqLoops ||
		m.cfg.NumTUs < 2 || m.cfg.TransferPerValue < 1 {
		return 1
	}
	w := m.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
		if lim := m.cfg.NumTUs / 4; w > lim {
			w = lim
		}
	}
	if w < 2 {
		return 1
	}
	if w > m.cfg.NumTUs {
		w = m.cfg.NumTUs
	}
	return w
}

func (p *parRunner) workerLoop(w int) {
	seen := uint32(0)
	for {
		for p.gen.Load() == seen {
			if p.quit.Load() {
				return
			}
			runtime.Gosched()
		}
		seen = p.gen.Load()
		p.runShard(w)
		p.busy.Add(-1)
	}
}

// runShard steps this worker's TUs (lo+w, lo+w+n, ...) for the job's cycle
// span. A panic is captured with the TU it struck so the coordinator can
// surface the one sequential stepping would have hit first.
func (p *parRunner) runShard(w int) {
	defer func() {
		if r := recover(); r != nil {
			p.panics[w].set = true
			p.panics[w].val = r
		}
	}()
	job := p.job
	m := p.m
	for t := job.lo + w; t < job.hi; t += p.n {
		p.panics[w].tu = t
		for k := 0; k < job.ncyc; k++ {
			if k > 0 {
				m.hier.BeginCycleTU(t)
			}
			m.tus[t].step(job.cycle + uint64(k))
		}
	}
}

// classify buckets every TU for this cycle and reports whether all are safe.
func (m *Machine) classify() bool {
	allSafe := true
	for i := range m.tus {
		tu := &m.tus[i]
		c := clSafe
		switch tu.state {
		case tuRun:
			if !tu.parMode || !tu.core.CtlQuiet() {
				c = clSerial
			}
		case tuWBWait:
			if tu.pred < 0 {
				c = clSerial // transitions to drain this cycle
			}
		case tuWBDrain:
			c = clSerial
		}
		if c == clSerial {
			allSafe = false
		}
		m.par.class[i] = c
	}
	return allSafe
}

// runSegment computes TUs [lo,hi) for ncyc cycles on the worker pool, with
// cross-TU effect capture on. On return, capture is off and any worker
// panic has been re-raised (lowest TU first, matching sequential order).
func (m *Machine) runSegment(lo, hi int, cycle uint64, ncyc int) {
	m.statSegments++
	p := m.par
	for t := lo; t < hi; t++ {
		m.hier.SetCompute(t, true)
		m.tus[t].core.SetObsDefer(true)
	}
	m.computing = true
	m.windowBase = cycle
	for i := range p.panics {
		p.panics[i] = parPanic{}
	}
	p.job = parJob{lo: lo, hi: hi, cycle: cycle, ncyc: ncyc}
	p.busy.Store(int32(p.n - 1))
	p.gen.Add(1)
	p.runShard(0)
	for p.busy.Load() != 0 {
		runtime.Gosched()
	}
	m.computing = false
	for t := lo; t < hi; t++ {
		m.hier.SetCompute(t, false)
		m.tus[t].core.SetObsDefer(false)
	}
	first := -1
	var val any
	for w := range p.panics {
		if p.panics[w].set && (first < 0 || p.panics[w].tu < first) {
			first, val = p.panics[w].tu, p.panics[w].val
		}
	}
	if first >= 0 {
		panic(val)
	}
}

// flushTU replays one TU's captured cross-TU effects for cycle wc (slice k
// of the window): forward progress, TSAG chain flags, and the memory
// hierarchy's effect queue. Callers invoke it in TU-ID order.
func (m *Machine) flushTU(t int, wc uint64, k int) {
	tu := &m.tus[t]
	m.progress += tu.pendProgress[k]
	tu.pendProgress[k] = 0
	for tu.chainHead < len(tu.pendChain) && tu.pendChain[tu.chainHead].c <= wc {
		pf := tu.pendChain[tu.chainHead]
		tu.chainHead++
		if tu.succ >= 0 {
			s := &m.tus[tu.succ]
			s.hasPredFlag = true
			s.predChainAt = pf.at
		}
	}
	if tu.chainHead == len(tu.pendChain) {
		tu.pendChain = tu.pendChain[:0]
		tu.chainHead = 0
	}
	m.hier.FlushDeferred(t, wc)
}

// stepPar advances the machine one cycle (or a two-cycle window) using the
// worker pool. wdDeadline is the cycle the forward-progress watchdog would
// fire at; windows never extend past it, so the deadlock diagnostic trips
// at the same cycle as sequential stepping.
func (m *Machine) stepPar(wdDeadline uint64) {
	if m.Chaos != nil {
		m.Chaos.Panic(chaos.PointMachineStep)
		if m.Chaos.Hit(chaos.PointLivelock) {
			m.livelocked = true
		}
	}
	if m.livelocked {
		m.endCycle()
		return
	}
	m.hier.BeginCycle(m.cycle)
	allSafe := m.classify()
	if allSafe && m.windowOK && m.Chaos == nil && m.pending == nil &&
		m.cycle+2 <= wdDeadline && m.cycle+2 <= m.cfg.MaxCycles &&
		m.cycle > 0 && m.hier.NextWake(m.cycle-1) > m.cycle {
		ns := m.Metrics.NextSample()
		if ns == 0 || ns != m.cycle+1 {
			m.stepWindow()
			return
		}
	}
	n := len(m.tus)
	i := 0
	for i < n {
		if m.par.class[i] == clSerial {
			m.tus[i].step(m.cycle)
			i++
			continue
		}
		j := i + 1
		for j < n && m.par.class[j] != clSerial {
			j++
		}
		if j-i == 1 {
			// A lone safe TU needs no capture: stepping it inline produces
			// its effects directly, already in TU order.
			m.tus[i].step(m.cycle)
		} else {
			m.runSegment(i, j, m.cycle, 1)
			for t := i; t < j; t++ {
				m.flushTU(t, m.cycle, 0)
				m.tus[t].core.FlushObservations()
			}
		}
		i = j
	}
	m.tryStartPending()
	m.hier.Tick(m.cycle)
	m.endCycle()
}

// stepWindow runs a two-cycle window: one rendezvous computes both cycles
// for every TU, then the commit replays each cycle slice — deferred
// effects, forward progress, the shared-level Tick, the cycle counters, and
// the watchdog observation — exactly as two sequential iterations would.
func (m *Machine) stepWindow() {
	m.statWindows++
	c := m.cycle
	m.runSegment(0, len(m.tus), c, 2)
	for k := 0; k < 2; k++ {
		wc := c + uint64(k)
		for t := range m.tus {
			m.flushTU(t, wc, k)
		}
		m.hier.Tick(wc)
		m.endCycle()
		if k == 0 {
			m.observeProgress()
		}
	}
	for i := range m.tus {
		m.tus[i].core.FlushObservations()
	}
}

// assertSerial guards the cross-TU mutation paths: none may run during a
// parallel compute phase. A failure here means a classification bug, not a
// user error — the panic surfaces through the usual simerr supervision.
func (m *Machine) assertSerial(what string) {
	if m.computing {
		panic("sta: " + what + " during parallel compute phase (classification bug)")
	}
}
