//go:build !race

package sta

const raceMode = false
