// Package bpred implements the branch-prediction hardware of one thread
// unit: a bimodal (2-bit saturating counter) direction predictor, a
// set-associative branch target buffer, and a return-address stack. The
// structures match the sim-outorder defaults the paper's SIMCA simulator
// inherits (§4.1: 4-way, 1024-entry BTB).
package bpred

import "fmt"

// Config sizes the predictor.
type Config struct {
	Dir            DirKind // direction scheme (default bimodal)
	BimodalEntries int     // direction table size (power of two)
	HistoryBits    int     // global history length for gshare/comb
	BTBEntries     int     // total BTB entries
	BTBAssoc       int
	RASEntries     int
}

// Default returns the configuration used throughout the paper.
func Default() Config {
	return Config{
		Dir:            DirBimodal,
		BimodalEntries: 2048,
		HistoryBits:    10,
		BTBEntries:     1024,
		BTBAssoc:       4,
		RASEntries:     8,
	}
}

// Predictor is one thread unit's branch predictor. Not safe for concurrent
// use.
type Predictor struct {
	cfg     Config
	dir     DirPredictor
	btbTags [][]uint64
	btbTgts [][]int
	btbLRU  [][]uint64
	btbClk  uint64
	ras     []int
	rasTop  int

	// Statistics.
	Lookups     uint64
	Mispredicts uint64
	BTBHits     uint64
	BTBMisses   uint64
}

// New builds a predictor; sizes must be powers of two where indexed.
func New(cfg Config) (*Predictor, error) {
	if cfg.BimodalEntries <= 0 || cfg.BimodalEntries&(cfg.BimodalEntries-1) != 0 {
		return nil, fmt.Errorf("bpred: bimodal entries %d not a power of two", cfg.BimodalEntries)
	}
	if cfg.BTBAssoc <= 0 || cfg.BTBEntries%cfg.BTBAssoc != 0 {
		return nil, fmt.Errorf("bpred: BTB %d entries not divisible by assoc %d", cfg.BTBEntries, cfg.BTBAssoc)
	}
	sets := cfg.BTBEntries / cfg.BTBAssoc
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("bpred: BTB set count %d not a power of two", sets)
	}
	if cfg.RASEntries <= 0 {
		return nil, fmt.Errorf("bpred: RAS entries must be positive")
	}
	hist := cfg.HistoryBits
	if hist == 0 {
		hist = 10
	}
	dir, err := NewDir(cfg.Dir, cfg.BimodalEntries, hist)
	if err != nil {
		return nil, err
	}
	p := &Predictor{
		cfg:     cfg,
		dir:     dir,
		btbTags: make([][]uint64, sets),
		btbTgts: make([][]int, sets),
		btbLRU:  make([][]uint64, sets),
		ras:     make([]int, cfg.RASEntries),
	}
	for i := 0; i < sets; i++ {
		p.btbTags[i] = make([]uint64, cfg.BTBAssoc)
		p.btbTgts[i] = make([]int, cfg.BTBAssoc)
		p.btbLRU[i] = make([]uint64, cfg.BTBAssoc)
		for j := range p.btbTags[i] {
			p.btbTags[i][j] = ^uint64(0)
		}
	}
	return p, nil
}

// PredictDirection returns the predicted direction for the branch at pc.
func (p *Predictor) PredictDirection(pc int) bool {
	p.Lookups++
	return p.dir.Predict(pc)
}

// UpdateDirection trains the direction predictor with the resolved outcome
// and counts mispredictions against the given prediction.
func (p *Predictor) UpdateDirection(pc int, taken, predicted bool) {
	if taken != predicted {
		p.Mispredicts++
	}
	p.dir.Update(pc, taken)
}

// Warm trains the direction predictor with a functionally executed branch
// outcome without touching the lookup/misprediction statistics. The
// sampled-simulation fast-forward path uses it so the predictor enters each
// measurement window in the state a detailed run would have built, while
// reported accuracy still reflects detailed execution only.
func (p *Predictor) Warm(pc int, taken bool) {
	p.dir.Update(pc, taken)
}

// WarmCall/WarmRet mirror JAL/JR on the return-address stack during
// fast-forward, keeping call-depth alignment across measurement windows.
func (p *Predictor) WarmCall(ret int) { p.PushRAS(ret) }

// WarmRet pops the RAS (see WarmCall); an empty stack is a no-op.
func (p *Predictor) WarmRet() { p.PopRAS() }

// LookupTarget consults the BTB for pc's branch target.
func (p *Predictor) LookupTarget(pc int) (int, bool) {
	sets := len(p.btbTags)
	set := pc & (sets - 1)
	tag := uint64(pc)
	for j := range p.btbTags[set] {
		if p.btbTags[set][j] == tag {
			p.btbClk++
			p.btbLRU[set][j] = p.btbClk
			p.BTBHits++
			return p.btbTgts[set][j], true
		}
	}
	p.BTBMisses++
	return 0, false
}

// UpdateTarget installs pc -> target in the BTB.
func (p *Predictor) UpdateTarget(pc, target int) {
	sets := len(p.btbTags)
	set := pc & (sets - 1)
	tag := uint64(pc)
	vi := 0
	for j := range p.btbTags[set] {
		if p.btbTags[set][j] == tag {
			vi = j
			goto install
		}
	}
	for j := range p.btbTags[set] {
		if p.btbTags[set][j] == ^uint64(0) {
			vi = j
			goto install
		}
		if p.btbLRU[set][j] < p.btbLRU[set][vi] {
			vi = j
		}
	}
install:
	p.btbClk++
	p.btbTags[set][vi] = tag
	p.btbTgts[set][vi] = target
	p.btbLRU[set][vi] = p.btbClk
}

// PushRAS records a return address on a call.
func (p *Predictor) PushRAS(ret int) {
	p.ras[p.rasTop%len(p.ras)] = ret
	p.rasTop++
}

// PopRAS predicts a return target; ok is false when the stack is empty.
func (p *Predictor) PopRAS() (int, bool) {
	if p.rasTop == 0 {
		return 0, false
	}
	p.rasTop--
	return p.ras[p.rasTop%len(p.ras)], true
}

// Accuracy returns the fraction of direction lookups that were correct.
func (p *Predictor) Accuracy() float64 {
	if p.Lookups == 0 {
		return 1
	}
	return 1 - float64(p.Mispredicts)/float64(p.Lookups)
}
