package bpred

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{BimodalEntries: 0, BTBEntries: 16, BTBAssoc: 4, RASEntries: 8},
		{BimodalEntries: 100, BTBEntries: 16, BTBAssoc: 4, RASEntries: 8},
		{BimodalEntries: 128, BTBEntries: 15, BTBAssoc: 4, RASEntries: 8},
		{BimodalEntries: 128, BTBEntries: 24, BTBAssoc: 4, RASEntries: 8}, // 6 sets
		{BimodalEntries: 128, BTBEntries: 16, BTBAssoc: 4, RASEntries: 0},
	}
	for _, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if _, err := New(Default()); err != nil {
		t.Fatal(err)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	p := mustNew(t, Default())
	pc := 100
	for i := 0; i < 10; i++ {
		pred := p.PredictDirection(pc)
		p.UpdateDirection(pc, true, pred)
	}
	if !p.PredictDirection(pc) {
		t.Error("always-taken branch predicted not-taken after training")
	}
	for i := 0; i < 10; i++ {
		pred := p.PredictDirection(pc)
		p.UpdateDirection(pc, false, pred)
	}
	if p.PredictDirection(pc) {
		t.Error("always-not-taken branch predicted taken after training")
	}
}

func TestBimodalHysteresis(t *testing.T) {
	p := mustNew(t, Default())
	pc := 4
	// Saturate taken.
	for i := 0; i < 4; i++ {
		p.UpdateDirection(pc, true, true)
	}
	// One not-taken must not flip the prediction (2-bit hysteresis).
	p.UpdateDirection(pc, false, true)
	if !p.PredictDirection(pc) {
		t.Error("single anomaly flipped a saturated 2-bit counter")
	}
}

func TestMispredictCounting(t *testing.T) {
	p := mustNew(t, Default())
	p.UpdateDirection(0, true, false)
	p.UpdateDirection(0, true, true)
	if p.Mispredicts != 1 {
		t.Errorf("mispredicts = %d, want 1", p.Mispredicts)
	}
}

func TestAccuracyOnBiasedStream(t *testing.T) {
	p := mustNew(t, Default())
	rng := rand.New(rand.NewSource(42))
	// 90% taken branch at one PC: bimodal should approach 90% accuracy.
	correct, total := 0, 0
	for i := 0; i < 10000; i++ {
		taken := rng.Float64() < 0.9
		pred := p.PredictDirection(64)
		if pred == taken {
			correct++
		}
		total++
		p.UpdateDirection(64, taken, pred)
	}
	acc := float64(correct) / float64(total)
	if acc < 0.8 {
		t.Errorf("bimodal accuracy %.3f too low on 90%% biased stream", acc)
	}
}

func TestBTBHitAfterInstall(t *testing.T) {
	p := mustNew(t, Default())
	if _, ok := p.LookupTarget(12); ok {
		t.Fatal("cold BTB hit")
	}
	p.UpdateTarget(12, 99)
	tgt, ok := p.LookupTarget(12)
	if !ok || tgt != 99 {
		t.Fatalf("BTB lookup = %d,%v", tgt, ok)
	}
	// Re-install with a new target replaces.
	p.UpdateTarget(12, 7)
	tgt, _ = p.LookupTarget(12)
	if tgt != 7 {
		t.Errorf("BTB target after update = %d", tgt)
	}
}

func TestBTBLRUReplacement(t *testing.T) {
	// 4 entries, 4-way => 1 set.
	p := mustNew(t, Config{BimodalEntries: 16, BTBEntries: 4, BTBAssoc: 4, RASEntries: 4})
	for pc := 0; pc < 4; pc++ {
		p.UpdateTarget(pc, pc*10)
	}
	p.LookupTarget(0) // 0 is MRU
	p.UpdateTarget(100, 1000)
	if _, ok := p.LookupTarget(1); ok {
		t.Error("LRU entry survived replacement")
	}
	if _, ok := p.LookupTarget(0); !ok {
		t.Error("MRU entry was replaced")
	}
}

func TestRAS(t *testing.T) {
	p := mustNew(t, Default())
	if _, ok := p.PopRAS(); ok {
		t.Fatal("empty RAS popped")
	}
	p.PushRAS(10)
	p.PushRAS(20)
	if v, ok := p.PopRAS(); !ok || v != 20 {
		t.Errorf("pop = %d,%v", v, ok)
	}
	if v, ok := p.PopRAS(); !ok || v != 10 {
		t.Errorf("pop = %d,%v", v, ok)
	}
}

func TestRASWraparound(t *testing.T) {
	p := mustNew(t, Config{BimodalEntries: 16, BTBEntries: 4, BTBAssoc: 4, RASEntries: 2})
	p.PushRAS(1)
	p.PushRAS(2)
	p.PushRAS(3) // overwrites 1
	if v, _ := p.PopRAS(); v != 3 {
		t.Errorf("pop = %d, want 3", v)
	}
	if v, _ := p.PopRAS(); v != 2 {
		t.Errorf("pop = %d, want 2", v)
	}
}

func TestPCAliasing(t *testing.T) {
	// Two PCs that alias in a tiny bimodal table share a counter; ensure
	// indexing masks rather than overflowing.
	p := mustNew(t, Config{BimodalEntries: 2, BTBEntries: 4, BTBAssoc: 4, RASEntries: 2})
	for i := 0; i < 5; i++ {
		p.UpdateDirection(0, true, p.PredictDirection(0))
	}
	if !p.PredictDirection(2) { // aliases with pc 0
		t.Error("aliased PC should share the trained counter")
	}
}

func TestAccuracyMetric(t *testing.T) {
	p := mustNew(t, Default())
	if p.Accuracy() != 1 {
		t.Error("accuracy of untouched predictor should be 1")
	}
	pred := p.PredictDirection(0)
	p.UpdateDirection(0, !pred, pred)
	if p.Accuracy() >= 1 {
		t.Error("accuracy did not drop after a miss")
	}
}

// mustNew builds a predictor from a known-valid configuration, failing the
// test on a constructor error (the panicking MustNew was removed when
// config validation moved to returned errors).
func mustNew(t *testing.T, cfg Config) *Predictor {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
