package bpred

import (
	"math/rand"
	"testing"
)

func accuracyOn(t *testing.T, kind DirKind, pattern func(i int) (pc int, taken bool), n int) float64 {
	t.Helper()
	d, err := NewDir(kind, 4096, 12)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < n; i++ {
		pc, taken := pattern(i)
		if d.Predict(pc) == taken {
			correct++
		}
		d.Update(pc, taken)
	}
	return float64(correct) / float64(n)
}

func TestNewDirValidation(t *testing.T) {
	if _, err := NewDir(DirBimodal, 100, 10); err == nil {
		t.Error("non-power-of-two table accepted")
	}
	if _, err := NewDir(DirGshare, 1024, 0); err == nil {
		t.Error("zero history accepted")
	}
	if _, err := NewDir(DirKind(99), 1024, 10); err == nil {
		t.Error("unknown kind accepted")
	}
	for _, k := range []DirKind{DirBimodal, DirGshare, DirComb, DirTaken} {
		if _, err := NewDir(k, 1024, 8); err != nil {
			t.Errorf("%v: %v", k, err)
		}
		if k.String() == "" {
			t.Errorf("%v has no name", k)
		}
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	// A period-4 pattern (TTNT) at one PC: bimodal cannot track it, gshare
	// with history can learn it nearly perfectly.
	pat := []bool{true, true, false, true}
	pattern := func(i int) (int, bool) { return 64, pat[i%len(pat)] }
	g := accuracyOn(t, DirGshare, pattern, 4000)
	b := accuracyOn(t, DirBimodal, pattern, 4000)
	if g < 0.95 {
		t.Errorf("gshare accuracy %.3f on periodic pattern", g)
	}
	if g <= b {
		t.Errorf("gshare (%.3f) should beat bimodal (%.3f) on history patterns", g, b)
	}
}

func TestCombAtLeastAsGoodAsParts(t *testing.T) {
	// Mixed workload: one biased branch plus one history-dependent branch.
	rng := rand.New(rand.NewSource(99))
	pat := []bool{true, false, false, true}
	pattern := func(i int) (int, bool) {
		if i%2 == 0 {
			return 10, rng.Float64() < 0.95 // strongly biased
		}
		return 20, pat[(i/2)%len(pat)]
	}
	c := accuracyOn(t, DirComb, pattern, 20000)
	b := accuracyOn(t, DirBimodal, pattern, 20000)
	if c < b-0.02 {
		t.Errorf("comb (%.3f) materially worse than bimodal (%.3f)", c, b)
	}
	if c < 0.85 {
		t.Errorf("comb accuracy %.3f too low on mixed workload", c)
	}
}

func TestTakenPredictor(t *testing.T) {
	d, _ := NewDir(DirTaken, 1024, 8)
	if !d.Predict(0) {
		t.Error("static taken predicted not-taken")
	}
	d.Update(0, false) // no-op, must not panic
	if !d.Predict(0) {
		t.Error("static predictor trained?")
	}
}

func TestRandomBranchesNearChance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pattern := func(i int) (int, bool) { return 32, rng.Intn(2) == 0 }
	for _, k := range []DirKind{DirBimodal, DirGshare, DirComb} {
		acc := accuracyOn(t, k, pattern, 20000)
		if acc < 0.40 || acc > 0.60 {
			t.Errorf("%v accuracy %.3f on random branches (expected ~0.5)", k, acc)
		}
	}
}

func TestPredictorWithGshareConfig(t *testing.T) {
	cfg := Default()
	cfg.Dir = DirGshare
	p := mustNew(t, cfg)
	pat := []bool{true, false, false}
	for i := 0; i < 3000; i++ {
		taken := pat[i%3]
		pred := p.PredictDirection(8)
		p.UpdateDirection(8, taken, pred)
	}
	if p.Accuracy() < 0.85 {
		t.Errorf("gshare-backed Predictor accuracy %.3f", p.Accuracy())
	}
}
