package bpred

import "fmt"

// DirKind selects the direction-prediction scheme of a thread unit.
type DirKind uint8

// Direction predictor schemes (sim-outorder's -bpred flavors).
const (
	DirBimodal DirKind = iota // per-PC 2-bit counters (the paper's default)
	DirGshare                 // global history XOR PC into 2-bit counters
	DirComb                   // bimodal + gshare with a per-PC chooser
	DirTaken                  // static predict-taken (accuracy floor)
)

// String names the scheme.
func (k DirKind) String() string {
	switch k {
	case DirBimodal:
		return "bimodal"
	case DirGshare:
		return "gshare"
	case DirComb:
		return "comb"
	case DirTaken:
		return "taken"
	}
	return fmt.Sprintf("dir(%d)", uint8(k))
}

// DirPredictor is a direction-prediction scheme: predict by PC, then train
// with the resolved outcome. Implementations are not safe for concurrent
// use.
type DirPredictor interface {
	Predict(pc int) bool
	Update(pc int, taken bool)
}

// NewDir builds a direction predictor of the given kind and table size
// (entries must be a power of two; history bits apply to gshare/comb).
func NewDir(kind DirKind, entries, historyBits int) (DirPredictor, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("bpred: table entries %d not a power of two", entries)
	}
	switch kind {
	case DirBimodal:
		return newBimodalDir(entries), nil
	case DirGshare:
		if historyBits <= 0 || historyBits > 30 {
			return nil, fmt.Errorf("bpred: history bits %d out of range", historyBits)
		}
		return newGshareDir(entries, historyBits), nil
	case DirComb:
		g, err := NewDir(DirGshare, entries, historyBits)
		if err != nil {
			return nil, err
		}
		return &combDir{
			bim:     newBimodalDir(entries),
			gsh:     g.(*gshareDir),
			chooser: newCounterTable(entries),
		}, nil
	case DirTaken:
		return takenDir{}, nil
	}
	return nil, fmt.Errorf("bpred: unknown direction scheme %d", kind)
}

// counterTable is an array of 2-bit saturating counters, weakly taken.
type counterTable struct {
	c    []uint8
	mask int
}

func newCounterTable(entries int) *counterTable {
	t := &counterTable{c: make([]uint8, entries), mask: entries - 1}
	for i := range t.c {
		t.c[i] = 2
	}
	return t
}

func (t *counterTable) taken(idx int) bool { return t.c[idx&t.mask] >= 2 }

func (t *counterTable) train(idx int, up bool) {
	i := idx & t.mask
	if up {
		if t.c[i] < 3 {
			t.c[i]++
		}
	} else if t.c[i] > 0 {
		t.c[i]--
	}
}

type bimodalDir struct{ t *counterTable }

func newBimodalDir(entries int) *bimodalDir {
	return &bimodalDir{t: newCounterTable(entries)}
}

func (b *bimodalDir) Predict(pc int) bool       { return b.t.taken(pc) }
func (b *bimodalDir) Update(pc int, taken bool) { b.t.train(pc, taken) }

// gshareDir XORs a global branch-history register with the PC.
type gshareDir struct {
	t       *counterTable
	history int
	hmask   int
}

func newGshareDir(entries, historyBits int) *gshareDir {
	return &gshareDir{t: newCounterTable(entries), hmask: (1 << historyBits) - 1}
}

func (g *gshareDir) idx(pc int) int { return pc ^ g.history }

func (g *gshareDir) Predict(pc int) bool { return g.t.taken(g.idx(pc)) }

func (g *gshareDir) Update(pc int, taken bool) {
	g.t.train(g.idx(pc), taken)
	g.history = ((g.history << 1) | b2i(taken)) & g.hmask
}

// combDir picks per-PC between bimodal and gshare with a chooser table.
type combDir struct {
	bim     *bimodalDir
	gsh     *gshareDir
	chooser *counterTable // >=2 means "use gshare"
}

func (c *combDir) Predict(pc int) bool {
	if c.chooser.taken(pc) {
		return c.gsh.Predict(pc)
	}
	return c.bim.Predict(pc)
}

func (c *combDir) Update(pc int, taken bool) {
	bw := c.bim.Predict(pc) == taken
	gw := c.gsh.Predict(pc) == taken
	if bw != gw {
		c.chooser.train(pc, gw)
	}
	c.bim.Update(pc, taken)
	c.gsh.Update(pc, taken)
}

type takenDir struct{}

func (takenDir) Predict(int) bool { return true }
func (takenDir) Update(int, bool) {}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
