package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/chaos"
	"repro/internal/simerr"
	"repro/internal/sta"
)

// ledgerVersion is bumped whenever the on-disk entry format changes.
const ledgerVersion = 1

// ledgerHeader is the first line of a ledger file. The scale is recorded so
// a resume cannot silently mix results from differently-sized workloads.
type ledgerHeader struct {
	V     int `json:"v"`
	Scale int `json:"scale"`
}

// ledgerEntry is one completed simulation: the memoization key and its
// full result. stats.Sim and the architectural registers are integers, so
// the entry round-trips bit-identically through JSON.
type ledgerEntry struct {
	Key    string      `json:"key"`
	Result *sta.Result `json:"result"`
}

// Ledger journals completed simulation results to disk as JSON lines so an
// interrupted suite can resume without re-simulating finished cells. The
// first line is a header; each later line is one entry, flushed to the
// file as it completes, so a killed process loses at most the entry being
// written. A torn final line is detected and dropped on the next open.
//
// Appends are serialized internally; one Ledger may back a whole worker
// pool.
type Ledger struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	chaos *chaos.Injector
}

// OpenLedger opens (creating if needed) the ledger at path and returns it
// together with every intact entry already journaled there. A truncated
// trailing line — the signature of a run killed mid-append — is discarded
// and the file truncated back to the last good entry. Opening a ledger
// written at a different version or workload scale is an error rather than
// a silent mix of incompatible results.
func OpenLedger(path string, scale int) (*Ledger, map[string]*sta.Result, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, simerr.Classify("harness.ledger", err, simerr.IO)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, simerr.Classify("harness.ledger", err, simerr.IO)
	}
	prior := make(map[string]*sta.Result)
	off := 0
	for first := true; off < len(data); first = false {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: the append was interrupted mid-line
		}
		line := data[off : off+nl]
		if first {
			var h ledgerHeader
			if err := json.Unmarshal(line, &h); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("harness: ledger %s: corrupt header (delete the file to start over): %w", path, err)
			}
			if h.V != ledgerVersion || h.Scale != scale {
				f.Close()
				return nil, nil, fmt.Errorf("harness: ledger %s was written at v%d scale %d, want v%d scale %d (match -scale or delete the file)",
					path, h.V, h.Scale, ledgerVersion, scale)
			}
		} else {
			var e ledgerEntry
			if err := json.Unmarshal(line, &e); err != nil || e.Result == nil {
				break // torn or corrupt entry: drop it and everything after
			}
			prior[e.Key] = e.Result
		}
		off += nl + 1
	}
	if off < len(data) {
		// A torn (or corrupt) tail is being cut off. Truncation must reach
		// stable storage before anything is appended after it: without the
		// fsync pair, power loss after new appends could resurrect old tail
		// bytes past the new entries, corrupting the journal mid-file
		// instead of at its end.
		if err := f.Truncate(int64(off)); err != nil {
			f.Close()
			return nil, nil, simerr.Classify("harness.ledger", err, simerr.IO)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, simerr.Classify("harness.ledger", err, simerr.IO)
		}
		if err := syncDir(path); err != nil {
			f.Close()
			return nil, nil, simerr.Classify("harness.ledger", err, simerr.IO)
		}
	}
	if _, err := f.Seek(int64(off), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, simerr.Classify("harness.ledger", err, simerr.IO)
	}
	l := &Ledger{f: f, path: path}
	if off == 0 {
		hdr, _ := json.Marshal(ledgerHeader{V: ledgerVersion, Scale: scale})
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, nil, simerr.Classify("harness.ledger", err, simerr.IO)
		}
	}
	return l, prior, nil
}

// syncDir fsyncs the directory holding path, making a just-performed
// truncation (or rename) durable across power loss.
func syncDir(path string) error {
	dir := filepath.Dir(path)
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// SetChaos attaches (or with nil detaches) a fault injector whose
// ledger-write point makes Append fail transiently.
func (l *Ledger) SetChaos(in *chaos.Injector) { l.chaos = in }

// Path returns the ledger's file path.
func (l *Ledger) Path() string { return l.path }

// Append journals one completed result. Failures are IO-kind (and so
// retried by the Runner's IO retry policy).
func (l *Ledger) Append(key string, res *sta.Result) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.chaos.FailWrite(); err != nil {
		return simerr.Classify("harness.ledger", err, simerr.IO)
	}
	line, err := json.Marshal(ledgerEntry{Key: key, Result: res})
	if err != nil {
		return simerr.Classify("harness.ledger", err, simerr.IO)
	}
	if _, err := l.f.Write(append(line, '\n')); err != nil {
		return simerr.Classify("harness.ledger", err, simerr.IO)
	}
	return nil
}

// Close flushes and closes the underlying file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	if err != nil {
		return simerr.Classify("harness.ledger", err, simerr.IO)
	}
	return nil
}
