package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/config"
	"repro/internal/simerr"
	"repro/internal/sta"
)

// smallCfg is a cheap 2-TU machine for supervision tests.
func smallCfg(t *testing.T) sta.Config {
	t.Helper()
	cfg := config.Main(2)
	if err := config.Apply(config.WTHWPWEC, &cfg); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestLedgerRoundTripAndTornTail pins the on-disk contract: entries written
// by one process are read back bit-identically by the next, and a torn
// trailing line (a run killed mid-append) is dropped instead of poisoning
// the resume.
func TestLedgerRoundTripAndTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	led, prior, err := OpenLedger(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 0 {
		t.Fatalf("fresh ledger has %d entries", len(prior))
	}
	r1 := &sta.Result{MemCheck: 0xabc}
	r1.Stats.Cycles = 123456
	r1.IntRegs[3] = -7
	r2 := &sta.Result{MemCheck: 0xdef}
	r2.Stats.Cycles = 99
	if err := led.Append("cell-a", r1); err != nil {
		t.Fatal(err)
	}
	if err := led.Append("cell-b", r2); err != nil {
		t.Fatal(err)
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a kill mid-append: a partial line with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"cell-c","resu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	led2, prior2, err := OpenLedger(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer led2.Close()
	if len(prior2) != 2 {
		t.Fatalf("reopened ledger has %d entries, want 2 (torn tail dropped)", len(prior2))
	}
	got := prior2["cell-a"]
	if got == nil || *got != *r1 {
		t.Errorf("cell-a did not round-trip: %+v", got)
	}
	if prior2["cell-b"].MemCheck != 0xdef {
		t.Errorf("cell-b did not round-trip")
	}
	// The torn bytes must be gone: appending now yields a parseable file.
	if err := led2.Append("cell-c", r2); err != nil {
		t.Fatal(err)
	}
	led2.Close()
	_, prior3, err := OpenLedger(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior3) != 3 {
		t.Errorf("after truncate+append: %d entries, want 3", len(prior3))
	}
}

// TestLedgerScaleMismatch: resuming at a different workload scale must be
// refused, not silently mixed.
func TestLedgerScaleMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	led, _, err := OpenLedger(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	led.Close()
	if _, _, err := OpenLedger(path, 2); err == nil {
		t.Fatal("scale-mismatched ledger opened without error")
	}
}

// TestLedgerChaosFailuresAreIO: injected write failures classify as IO (the
// retryable kind) and really fail the append.
func TestLedgerChaosFailuresAreIO(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	led, _, err := OpenLedger(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	led.SetChaos(chaos.New(chaos.Config{Seed: 3, LedgerFail: 1}, "test"))
	err = led.Append("k", &sta.Result{})
	if simerr.KindOf(err) != simerr.IO {
		t.Fatalf("injected append failure kind = %v (%v)", simerr.KindOf(err), err)
	}
}

// TestRetryIO pins the retry policy: IO-kind failures are retried up to the
// cap, other kinds fail immediately.
func TestRetryIO(t *testing.T) {
	r := &Runner{RetryBackoff: time.Microsecond}
	calls := 0
	err := r.retryIO("test", "key", nil, func() error {
		calls++
		if calls < 3 {
			return simerr.Errorf(simerr.IO, "test", "transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("transient IO: err=%v calls=%d, want nil after 3", err, calls)
	}

	calls = 0
	err = r.retryIO("test", "key", nil, func() error {
		calls++
		return simerr.Errorf(simerr.BadProgram, "test", "permanent")
	})
	if err == nil || calls != 1 {
		t.Errorf("non-IO failure: err=%v calls=%d, want immediate error", err, calls)
	}

	calls = 0
	err = r.retryIO("test", "key", nil, func() error {
		calls++
		return simerr.Errorf(simerr.IO, "test", "always down")
	})
	if err == nil || calls != 4 {
		t.Errorf("exhausted retries: err=%v calls=%d, want error after 1+3 attempts", err, calls)
	}
}

// TestResultSupervision covers the isolation contract end to end: a chaos
// panic becomes a Panic-kind error (not a crashed process), the cell is
// quarantined so the next lookup fails fast, and healthy cells in the same
// batch still complete and the batch reports a SuiteError.
func TestResultSupervision(t *testing.T) {
	bench := Benches()[0].Short
	good := smallCfg(t)
	bad := smallCfg(t)
	bad.Mem.L1DSize = 12345 // invalid: rejected by the cache constructor

	r := NewRunner(1)
	err := r.batch([]job{{bench, good}, {bench, bad}})
	se, ok := err.(*SuiteError)
	if !ok {
		t.Fatalf("batch error %T, want *SuiteError (%v)", err, err)
	}
	if len(se.Failures) != 1 || se.Total != 2 {
		t.Fatalf("SuiteError %d/%d failures, want 1/2: %v", len(se.Failures), se.Total, se)
	}
	if kinds := se.Kinds(); kinds[simerr.BadProgram] != 1 {
		t.Errorf("failure kinds = %v, want bad-program", kinds)
	}
	// The healthy cell completed despite its neighbour failing.
	if _, err := r.Result(bench, good); err != nil {
		t.Errorf("healthy cell quarantined too: %v", err)
	}
	// The bad cell fails fast from quarantine now.
	if _, err := r.Result(bench, bad); simerr.KindOf(err) != simerr.BadProgram {
		t.Errorf("quarantined lookup kind = %v", simerr.KindOf(err))
	}

	// Chaos panic isolation.
	rc := NewRunner(1)
	rc.Chaos = chaos.Config{Seed: 1, MachinePanic: 1}
	_, err = rc.Result(bench, good)
	if simerr.KindOf(err) != simerr.Panic {
		t.Fatalf("chaos panic kind = %v (%v)", simerr.KindOf(err), err)
	}
	var e *simerr.Error
	if !errorsAsSim(err, &e) || len(e.Stack) == 0 {
		t.Error("recovered panic lost its stack")
	}
}

// TestRunnerTimeout: a machine slowed by chaos must fail with Timeout when
// the per-run wall-clock budget expires.
func TestRunnerTimeout(t *testing.T) {
	r := NewRunner(1)
	r.Timeout = 5 * time.Millisecond
	r.Chaos = chaos.Config{Seed: 1, SlowCycle: 1, SlowCycleSleep: 50 * time.Microsecond}
	_, err := r.Result(Benches()[0].Short, smallCfg(t))
	if simerr.KindOf(err) != simerr.Timeout {
		t.Fatalf("kind = %v (%v), want Timeout", simerr.KindOf(err), err)
	}
}

// TestChaosDeterministicAcrossRunners: the same seed must fault the same
// cells with the same kinds regardless of process or scheduling, which is
// what makes the CI chaos suite reproducible.
func TestChaosDeterministicAcrossRunners(t *testing.T) {
	bench := Benches()[0].Short
	cfgA := smallCfg(t)
	cfgB := config.Main(2) // orig
	jobs := []job{{bench, cfgA}, {bench, cfgB}}
	collect := func() map[string]simerr.Kind {
		r := NewRunner(1)
		r.Workers = 2
		r.Chaos = chaos.Config{Seed: 42, MachinePanic: 1e-4}
		out := make(map[string]simerr.Kind)
		if err := r.batch(jobs); err != nil {
			se := err.(*SuiteError)
			for k, ferr := range se.Failures {
				out[k] = simerr.KindOf(ferr)
			}
		}
		return out
	}
	first, second := collect(), collect()
	if len(first) != len(second) {
		t.Fatalf("chaos outcomes differ across runs: %v vs %v", first, second)
	}
	for k, kind := range first {
		if second[k] != kind {
			t.Errorf("cell %q: kind %v vs %v", shortKey(k), kind, second[k])
		}
	}
	if len(first) == 0 {
		t.Log("note: seed 42 faulted no cells at this probability")
	}
}

// TestResumeSkipsSimulation: results journaled by one runner are replayed
// bit-identically by a prefilled runner without re-simulating.
func TestResumeSkipsSimulation(t *testing.T) {
	bench := Benches()[0].Short
	cfg := smallCfg(t)
	path := filepath.Join(t.TempDir(), "ledger.jsonl")

	led, _, err := OpenLedger(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner(1)
	r1.Ledger = led
	want, err := r1.Result(bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	led.Close()

	led2, prior, err := OpenLedger(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer led2.Close()
	if len(prior) != 1 {
		t.Fatalf("journal has %d entries, want 1", len(prior))
	}
	r2 := NewRunner(1)
	var progress bytes.Buffer
	r2.Verbose = &progress
	r2.Prefill(prior)
	got, err := r2.Result(bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Errorf("resumed result diverges:\nwant %+v\n got %+v", want, got)
	}
	if progress.Len() != 0 {
		t.Errorf("prefilled cell was re-simulated: %s", progress.String())
	}
}

// TestSupervisedBitIdentical: with chaos off, the whole supervision stack
// (context, timeout, ledger journaling) must not change a single counter
// relative to a bare runner.
func TestSupervisedBitIdentical(t *testing.T) {
	bench := Benches()[0].Short
	cfg := smallCfg(t)

	bare := NewRunner(1)
	want, err := bare.Result(bench, cfg)
	if err != nil {
		t.Fatal(err)
	}

	led, _, err := OpenLedger(filepath.Join(t.TempDir(), "l.jsonl"), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	sup := NewRunner(1)
	sup.Timeout = time.Hour
	sup.Ledger = led
	got, err := sup.Result(bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Errorf("supervision perturbed the run:\nbare %+v\n sup %+v", want.Stats, got.Stats)
	}
}

// errorsAsSim is a local unwrap helper mirroring errors.As for *simerr.Error.
func errorsAsSim(err error, target **simerr.Error) bool {
	for e := err; e != nil; {
		if se, ok := e.(*simerr.Error); ok {
			*target = se
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}
