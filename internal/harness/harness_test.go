package harness

import (
	"strings"
	"testing"

	"repro/internal/config"
)

func TestByID(t *testing.T) {
	for _, e := range All() {
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%s) = %v, %v", e.ID, got.ID, err)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentIDsCoverPaper(t *testing.T) {
	want := []string{"table2", "table3", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17"}
	ids := map[string]bool{}
	for _, e := range All() {
		ids[e.ID] = true
	}
	for _, id := range want {
		if !ids[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestTable2AndTable3(t *testing.T) {
	r := NewRunner(1)
	tbl, err := table2(r)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, b := range Benches() {
		if !strings.Contains(out, b.Name) {
			t.Errorf("table2 missing %s:\n%s", b.Name, out)
		}
	}
	tbl3, err := table3(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl3.String(), "16") {
		t.Error("table3 output looks wrong")
	}
}

func TestResultMemoized(t *testing.T) {
	r := NewRunner(1)
	cfg := config.Main(2)
	a, err := r.Result("gzip", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Result("gzip", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical run not memoized")
	}
	// A different configuration is a different key.
	cfg2 := config.Main(2)
	cfg2.Mem.L1DSize = 4 * 1024
	c, err := r.Result("gzip", cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("distinct configurations shared a memo entry")
	}
}

func TestResultValidatesArchitecture(t *testing.T) {
	// Every Result call checks the machine's memory image against the
	// functional reference; a passing run is itself the assertion. Run one
	// wrong-execution config to cover the interesting path.
	r := NewRunner(1)
	cfg := config.Main(4)
	if err := config.Apply(config.WTHWPWEC, &cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Result("vpr", cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBatchPropagatesErrors(t *testing.T) {
	r := NewRunner(1)
	bad := config.Main(8)
	bad.MemBufEntries = 0 // invalid machine
	if err := r.batch([]job{{"mcf", bad}}); err == nil {
		t.Fatal("invalid machine accepted by batch")
	}
}

func TestUnknownBenchmark(t *testing.T) {
	r := NewRunner(1)
	if _, err := r.Result("nope", config.Main(1)); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// TestFig17Shape runs the cheapest real experiment end to end and checks
// the paper-shape claims: the WEC increases L1 traffic but reduces misses
// on the benchmarks where wrong execution fires.
func TestFig17Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment in -short mode")
	}
	r := NewRunner(1)
	tbl, err := fig17(r)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "average") {
		t.Fatalf("fig17 output missing average:\n%s", out)
	}
	// mcf must show a traffic increase (wrong loads) and a miss reduction.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "mcf") {
			fields := strings.Fields(line)
			if len(fields) != 3 {
				t.Fatalf("unexpected fig17 row: %q", line)
			}
			if !strings.HasPrefix(fields[1], "+") {
				t.Errorf("mcf traffic should increase: %q", line)
			}
			if strings.HasPrefix(fields[2], "-") {
				t.Errorf("mcf misses should not increase: %q", line)
			}
		}
	}
}
