//go:build !race

package harness

const raceMode = false
