package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/sta"
)

// TestLedgerConcurrentInterleavedProducers models a fleet sweep's ledger:
// many producers append concurrently, and — because duplicate jobs,
// reassigned leases, and resumed runs all re-deliver cells — the same cell
// may be journaled more than once by different producers. The contract is
// convergence: a reopen yields exactly one (deterministic, identical)
// result per cell, no matter how appends interleaved.
func TestLedgerConcurrentInterleavedProducers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	led, _, err := OpenLedger(path, 1)
	if err != nil {
		t.Fatal(err)
	}

	const cells = 40
	const producers = 8
	result := func(i int) *sta.Result {
		r := &sta.Result{MemCheck: uint64(i) * 31}
		r.Stats.Cycles = uint64(1000 + i)
		r.IntRegs[1] = int64(i)
		return r
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// Each producer owns a stripe of cells plus an overlap with the
			// next stripe, so every overlapped cell is appended twice by two
			// distinct interleaved goroutines.
			for i := 0; i < cells; i++ {
				if i%producers != p && (i+1)%producers != p {
					continue
				}
				if err := led.Append(fmt.Sprintf("cell-%02d", i), result(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	_, prior, err := OpenLedger(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != cells {
		t.Fatalf("reopened ledger has %d distinct cells, want %d", len(prior), cells)
	}
	for i := 0; i < cells; i++ {
		got := prior[fmt.Sprintf("cell-%02d", i)]
		if got == nil || *got != *result(i) {
			t.Errorf("cell-%02d did not converge: %+v", i, got)
		}
	}
}

// TestLedgerResumeIsByteStable: reopening a ledger (including one with a
// torn tail) settles the file into a stable byte state — a second reopen
// reads and rewrites nothing. This is what makes "SIGKILL the coordinator,
// resume, SIGKILL it again" converge instead of drifting.
func TestLedgerResumeIsByteStable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	led, _, err := OpenLedger(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := &sta.Result{MemCheck: 7}
	r.Stats.Cycles = 42
	if err := led.Append("cell-a", r); err != nil {
		t.Fatal(err)
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Tear the tail, as a kill mid-append would.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"cell-b","res`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	for round := 0; round < 2; round++ {
		led, prior, err := OpenLedger(path, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(prior) != 1 || prior["cell-a"] == nil {
			t.Fatalf("round %d: prior = %v", round, prior)
		}
		if err := led.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(clean) {
			t.Fatalf("round %d: resumed ledger bytes differ from pre-tear state:\n%q\nwant\n%q", round, got, clean)
		}
	}
}

// TestBackoffDelayDeterministic pins the shared retry/reassignment jitter
// contract: pure in (key, attempt, base, max), capped exponential shape,
// jitter within [0.75, 1.25), and decorrelated across keys.
func TestBackoffDelayDeterministic(t *testing.T) {
	base, max := 5*time.Millisecond, 250*time.Millisecond
	for attempt := 0; attempt < 12; attempt++ {
		a := BackoffDelay("cell-x", attempt, base, max)
		b := BackoffDelay("cell-x", attempt, base, max)
		if a != b {
			t.Fatalf("attempt %d: not deterministic (%v vs %v)", attempt, a, b)
		}
		// The un-jittered delay doubles per attempt, capped.
		raw := base << attempt
		if raw > max || raw <= 0 {
			raw = max
		}
		lo := time.Duration(float64(raw) * 0.75)
		hi := time.Duration(float64(raw) * 1.25)
		if a < lo || a >= hi {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", attempt, a, lo, hi)
		}
	}
	// Distinct keys draw distinct jitter (thundering-herd decorrelation):
	// with 8 keys at the same attempt, at least two must differ.
	seen := map[time.Duration]bool{}
	for i := 0; i < 8; i++ {
		seen[BackoffDelay(fmt.Sprintf("cell-%d", i), 3, base, max)] = true
	}
	if len(seen) < 2 {
		t.Error("jitter does not vary across keys")
	}
	// Zero base/max fall back to the documented defaults rather than
	// degenerating to zero sleeps.
	if d := BackoffDelay("cell-x", 0, 0, 0); d <= 0 {
		t.Errorf("default-parameter delay = %v, want > 0", d)
	}
}
