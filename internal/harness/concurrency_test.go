package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
)

// TestConcurrentRunnerWithMetrics drives the worker pool with several
// workers, a shared Verbose writer, and per-run metrics collectors all at
// once. Run under -race (the CI does) it is the proof that the sampler and
// progress plumbing stay race-free across workers.
func TestConcurrentRunnerWithMetrics(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer

	r := NewRunner(1)
	r.Workers = 4
	r.Verbose = &buf
	r.MetricsInterval = 500
	r.MetricsDir = dir

	var jobs []job
	for _, bench := range []string{"gzip", "vpr", "mcf"} {
		for _, name := range []config.Name{config.Orig, config.WTHWPWEC} {
			cfg := config.Main(2)
			if err := config.Apply(name, &cfg); err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, job{bench, cfg})
		}
	}
	if err := r.batch(jobs); err != nil {
		t.Fatal(err)
	}

	// Every completed run wrote one progress line to the shared writer.
	lines := strings.Count(buf.String(), "\n")
	if lines != len(jobs) {
		t.Errorf("verbose lines = %d, want %d:\n%s", lines, len(jobs), buf.String())
	}

	// Every run exported a metrics file, and each parses past the header.
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(jobs) {
		t.Errorf("metrics files = %d, want %d (%v)", len(files), len(jobs), files)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{`"cycles"`, `"counters"`, `"series"`} {
			if !strings.Contains(string(data), want) {
				t.Errorf("%s missing %s", filepath.Base(f), want)
			}
		}
	}
}
