package harness

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/config"
	"repro/internal/simerr"
	"repro/internal/sta"
	"repro/internal/stats"
)

// table2 reports per-benchmark dynamic instruction counts and the fraction
// executed inside parallel regions, from the functional reference.
func table2(r *Runner) (*stats.Table, error) {
	t := &stats.Table{Header: []string{
		"Benchmark", "Suite", "Whole (K inst)", "Targeted loops (K inst)", "Fraction parallelized",
	}}
	for _, b := range Benches() {
		ref, err := r.Reference(b.Short)
		if err != nil {
			return nil, err
		}
		frac := float64(ref.ParInsts) / float64(ref.Insts)
		t.AddRow(b.Name, b.Suite,
			fmt.Sprintf("%.1f", float64(ref.Insts)/1e3),
			fmt.Sprintf("%.1f", float64(ref.ParInsts)/1e3),
			fmt.Sprintf("%.1f%%", frac*100))
	}
	return t, nil
}

// table3 prints the constant-total-capacity scaling rows.
func table3(r *Runner) (*stats.Table, error) {
	t := &stats.Table{Header: []string{
		"# of TUs", "Issue rate", "ROB", "INT ALU", "INT MULT", "FP ALU", "FP MULT", "L1 data (KB)",
	}}
	for _, row := range config.Table3Rows()[1:] {
		t.AddRow(
			fmt.Sprint(row.TUs), fmt.Sprint(row.Issue), fmt.Sprint(row.ROB),
			fmt.Sprint(row.IntALU), fmt.Sprint(row.IntMul),
			fmt.Sprint(row.FPALU), fmt.Sprint(row.FPMul), fmt.Sprint(row.L1DKBytes))
	}
	return t, nil
}

// fig8 compares thread-level against instruction-level parallelism in the
// parallelized portions: Table 3 machine shapes against a single-thread
// single-issue baseline, measured over parallel-region cycles only.
func fig8(r *Runner) (*stats.Table, error) {
	rows := config.Table3Rows()
	base := rows[0].Machine()
	var jobs []job
	for _, b := range Benches() {
		jobs = append(jobs, job{b.Short, base})
		for _, row := range rows[1:] {
			jobs = append(jobs, job{b.Short, row.Machine()})
		}
	}
	if err := r.batch(jobs); err != nil {
		return nil, err
	}
	hdr := []string{"Benchmark"}
	for _, row := range rows[1:] {
		hdr = append(hdr, row.Label())
	}
	t := &stats.Table{Header: hdr}
	perCol := make([][]float64, len(rows)-1)
	for _, b := range Benches() {
		bres, err := r.Result(b.Short, base)
		if err != nil {
			return nil, err
		}
		cells := []string{b.Short}
		for i, row := range rows[1:] {
			res, err := r.Result(b.Short, row.Machine())
			if err != nil {
				return nil, err
			}
			sp := stats.Speedup(bres.Stats.ParCycles, res.Stats.ParCycles)
			perCol[i] = append(perCol[i], sp)
			cells = append(cells, fmt.Sprintf("%.2fx", sp))
		}
		t.AddRow(cells...)
	}
	avg := []string{"average"}
	for _, col := range perCol {
		avg = append(avg, fmt.Sprintf("%.2fx", stats.WeightedAverageSpeedup(col)))
	}
	t.AddRow(avg...)
	return t, nil
}

var tuSweep = []int{1, 2, 4, 8, 16}

// fig9 reports whole-program speedups of orig and wth-wp-wec machines with
// 1-16 TUs against the single-TU orig machine.
func fig9(r *Runner) (*stats.Table, error) {
	cs := new(cfgset)
	mk := cs.main
	var jobs []job
	for _, b := range Benches() {
		for _, n := range tuSweep {
			jobs = append(jobs, job{b.Short, mk(config.Orig, n)})
			jobs = append(jobs, job{b.Short, mk(config.WTHWPWEC, n)})
		}
	}
	if err := cs.Err(); err != nil {
		return nil, err
	}
	if err := r.batch(jobs); err != nil {
		return nil, err
	}
	hdr := []string{"Benchmark"}
	for _, n := range tuSweep[1:] {
		hdr = append(hdr, fmt.Sprintf("orig %dTU", n))
	}
	for _, n := range tuSweep {
		hdr = append(hdr, fmt.Sprintf("wec %dTU", n))
	}
	t := &stats.Table{Header: hdr}
	for _, b := range Benches() {
		baseRes, err := r.Result(b.Short, mk(config.Orig, 1))
		if err != nil {
			return nil, err
		}
		cells := []string{b.Short}
		for _, n := range tuSweep[1:] {
			res, err := r.Result(b.Short, mk(config.Orig, n))
			if err != nil {
				return nil, err
			}
			cells = append(cells, stats.Pct(stats.RelativeSpeedupPct(baseRes.Stats.Cycles, res.Stats.Cycles)))
		}
		for _, n := range tuSweep {
			res, err := r.Result(b.Short, mk(config.WTHWPWEC, n))
			if err != nil {
				return nil, err
			}
			cells = append(cells, stats.Pct(stats.RelativeSpeedupPct(baseRes.Stats.Cycles, res.Stats.Cycles)))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// fig10 reports the wth-wp-wec speedup over the orig machine with the same
// thread-unit count.
func fig10(r *Runner) (*stats.Table, error) {
	cs := new(cfgset)
	mk := cs.main
	var jobs []job
	for _, b := range Benches() {
		for _, n := range tuSweep {
			jobs = append(jobs, job{b.Short, mk(config.Orig, n)})
			jobs = append(jobs, job{b.Short, mk(config.WTHWPWEC, n)})
		}
	}
	if err := cs.Err(); err != nil {
		return nil, err
	}
	if err := r.batch(jobs); err != nil {
		return nil, err
	}
	hdr := []string{"Benchmark"}
	for _, n := range tuSweep {
		hdr = append(hdr, fmt.Sprintf("%dTU", n))
	}
	t := &stats.Table{Header: hdr}
	perCol := make([][]float64, len(tuSweep))
	for _, b := range Benches() {
		cells := []string{b.Short}
		for i, n := range tuSweep {
			or, err := r.Result(b.Short, mk(config.Orig, n))
			if err != nil {
				return nil, err
			}
			we, err := r.Result(b.Short, mk(config.WTHWPWEC, n))
			if err != nil {
				return nil, err
			}
			perCol[i] = append(perCol[i], stats.Speedup(or.Stats.Cycles, we.Stats.Cycles))
			cells = append(cells, stats.Pct(stats.RelativeSpeedupPct(or.Stats.Cycles, we.Stats.Cycles)))
		}
		t.AddRow(cells...)
	}
	avg := []string{"average"}
	for _, col := range perCol {
		avg = append(avg, stats.Pct((stats.WeightedAverageSpeedup(col)-1)*100))
	}
	t.AddRow(avg...)
	return t, nil
}

// cfgset builds the machine configurations one experiment sweeps over,
// accumulating the first construction error instead of panicking; the
// experiment checks Err once after assembling its job list, before any
// simulation runs.
type cfgset struct{ err error }

func (cs *cfgset) note(err error) {
	if cs.err == nil && err != nil {
		cs.err = err
	}
}

// Err returns the first configuration-construction error, classified into
// the taxonomy.
func (cs *cfgset) Err() error {
	if cs.err == nil {
		return nil
	}
	return simerr.Classify("harness.config", cs.err, simerr.BadProgram)
}

// main builds the main machine with tus thread units in the named
// configuration.
func (cs *cfgset) main(name config.Name, tus int) sta.Config {
	cfg := config.Main(tus)
	cs.note(config.Apply(name, &cfg))
	return cfg
}

// at8 builds an 8-TU machine in the named configuration, applying mut to
// the base machine first.
func (cs *cfgset) at8(name config.Name, mut func(*sta.Config)) sta.Config {
	cfg := config.Main(8)
	if mut != nil {
		mut(&cfg)
	}
	cs.note(config.Apply(name, &cfg))
	return cfg
}

// fig11 compares all configurations at 8 TUs against orig.
func fig11(r *Runner) (*stats.Table, error) {
	cs := new(cfgset)
	names := config.Names()
	var jobs []job
	for _, b := range Benches() {
		for _, n := range names {
			jobs = append(jobs, job{b.Short, cs.at8(n, nil)})
		}
	}
	if err := cs.Err(); err != nil {
		return nil, err
	}
	if err := r.batch(jobs); err != nil {
		return nil, err
	}
	hdr := []string{"Benchmark"}
	for _, n := range names[1:] {
		hdr = append(hdr, string(n))
	}
	t := &stats.Table{Header: hdr}
	perCol := make([][]float64, len(names)-1)
	for _, b := range Benches() {
		or, err := r.Result(b.Short, cs.at8(config.Orig, nil))
		if err != nil {
			return nil, err
		}
		cells := []string{b.Short}
		for i, n := range names[1:] {
			res, err := r.Result(b.Short, cs.at8(n, nil))
			if err != nil {
				return nil, err
			}
			perCol[i] = append(perCol[i], stats.Speedup(or.Stats.Cycles, res.Stats.Cycles))
			cells = append(cells, stats.Pct(stats.RelativeSpeedupPct(or.Stats.Cycles, res.Stats.Cycles)))
		}
		t.AddRow(cells...)
	}
	avg := []string{"average"}
	for _, col := range perCol {
		avg = append(avg, stats.Pct((stats.WeightedAverageSpeedup(col)-1)*100))
	}
	t.AddRow(avg...)
	return t, nil
}

// fig12 sweeps L1 associativity (direct-mapped vs 4-way) for the victim
// cache and WEC configurations; each row's baseline is orig at the same
// associativity.
func fig12(r *Runner) (*stats.Table, error) {
	cs := new(cfgset)
	assocs := []int{1, 4}
	names := []config.Name{config.VC, config.WTHWPVC, config.WTHWPWEC}
	mkA := func(name config.Name, assoc int) sta.Config {
		return cs.at8(name, func(c *sta.Config) { c.Mem.L1DAssoc = assoc })
	}
	var jobs []job
	for _, b := range Benches() {
		for _, a := range assocs {
			jobs = append(jobs, job{b.Short, mkA(config.Orig, a)})
			for _, n := range names {
				jobs = append(jobs, job{b.Short, mkA(n, a)})
			}
		}
	}
	if err := cs.Err(); err != nil {
		return nil, err
	}
	if err := r.batch(jobs); err != nil {
		return nil, err
	}
	hdr := []string{"Config"}
	for _, b := range Benches() {
		hdr = append(hdr, b.Short)
	}
	hdr = append(hdr, "average")
	t := &stats.Table{Header: hdr}
	for _, a := range assocs {
		for _, n := range names {
			cells := []string{fmt.Sprintf("%dway %s", a, n)}
			var col []float64
			for _, b := range Benches() {
				or, err := r.Result(b.Short, mkA(config.Orig, a))
				if err != nil {
					return nil, err
				}
				res, err := r.Result(b.Short, mkA(n, a))
				if err != nil {
					return nil, err
				}
				col = append(col, stats.Speedup(or.Stats.Cycles, res.Stats.Cycles))
				cells = append(cells, stats.Pct(stats.RelativeSpeedupPct(or.Stats.Cycles, res.Stats.Cycles)))
			}
			cells = append(cells, stats.Pct((stats.WeightedAverageSpeedup(col)-1)*100))
			t.AddRow(cells...)
		}
	}
	return t, nil
}

// fig13 sweeps the L1 data cache size, reporting execution time normalized
// to orig with the smallest L1.
func fig13(r *Runner) (*stats.Table, error) {
	cs := new(cfgset)
	sizes := []int{4, 8, 16, 32} // KB
	mkS := func(name config.Name, kb int) sta.Config {
		return cs.at8(name, func(c *sta.Config) { c.Mem.L1DSize = kb * 1024 })
	}
	var jobs []job
	for _, b := range Benches() {
		for _, kb := range sizes {
			jobs = append(jobs, job{b.Short, mkS(config.Orig, kb)})
			jobs = append(jobs, job{b.Short, mkS(config.WTHWPWEC, kb)})
		}
	}
	if err := cs.Err(); err != nil {
		return nil, err
	}
	if err := r.batch(jobs); err != nil {
		return nil, err
	}
	hdr := []string{"Config"}
	for _, b := range Benches() {
		hdr = append(hdr, b.Short)
	}
	t := &stats.Table{Header: hdr}
	for _, name := range []config.Name{config.Orig, config.WTHWPWEC} {
		for _, kb := range sizes {
			cells := []string{fmt.Sprintf("%s %dk", name, kb)}
			for _, b := range Benches() {
				base, err := r.Result(b.Short, mkS(config.Orig, sizes[0]))
				if err != nil {
					return nil, err
				}
				res, err := r.Result(b.Short, mkS(name, kb))
				if err != nil {
					return nil, err
				}
				cells = append(cells, fmt.Sprintf("%.3f",
					float64(res.Stats.Cycles)/float64(base.Stats.Cycles)))
			}
			t.AddRow(cells...)
		}
	}
	return t, nil
}

// fig14 sweeps the shared L2 size (the paper's 128/256/512 KB progression,
// scaled 1:2:4 to this repo's workload footprints as 32/64/128 KB).
func fig14(r *Runner) (*stats.Table, error) {
	cs := new(cfgset)
	sizes := []int{32, 64, 128} // KB
	mkS := func(name config.Name, kb int) sta.Config {
		return cs.at8(name, func(c *sta.Config) { c.Mem.L2Size = kb * 1024 })
	}
	var jobs []job
	for _, b := range Benches() {
		for _, kb := range sizes {
			jobs = append(jobs, job{b.Short, mkS(config.Orig, kb)})
			jobs = append(jobs, job{b.Short, mkS(config.WTHWPWEC, kb)})
		}
	}
	if err := cs.Err(); err != nil {
		return nil, err
	}
	if err := r.batch(jobs); err != nil {
		return nil, err
	}
	hdr := []string{"Config"}
	for _, b := range Benches() {
		hdr = append(hdr, b.Short)
	}
	t := &stats.Table{Header: hdr}
	for _, name := range []config.Name{config.Orig, config.WTHWPWEC} {
		for _, kb := range sizes {
			cells := []string{fmt.Sprintf("%s %dk", name, kb)}
			for _, b := range Benches() {
				base, err := r.Result(b.Short, mkS(config.Orig, sizes[0]))
				if err != nil {
					return nil, err
				}
				res, err := r.Result(b.Short, mkS(name, kb))
				if err != nil {
					return nil, err
				}
				cells = append(cells, fmt.Sprintf("%.3f",
					float64(res.Stats.Cycles)/float64(base.Stats.Cycles)))
			}
			t.AddRow(cells...)
		}
	}
	return t, nil
}

// sweepSideSizes builds the Figure 15/16 style comparisons: relative
// speedup over orig for each (configuration, side-buffer entries) pair.
func sweepSideSizes(r *Runner, names []config.Name, sizes []int) (*stats.Table, error) {
	cs := new(cfgset)
	mkE := func(name config.Name, entries int) sta.Config {
		return cs.at8(name, func(c *sta.Config) { c.Mem.SideEntries = entries })
	}
	var jobs []job
	for _, b := range Benches() {
		jobs = append(jobs, job{b.Short, cs.at8(config.Orig, nil)})
		for _, n := range names {
			for _, e := range sizes {
				jobs = append(jobs, job{b.Short, mkE(n, e)})
			}
		}
	}
	if err := cs.Err(); err != nil {
		return nil, err
	}
	if err := r.batch(jobs); err != nil {
		return nil, err
	}
	hdr := []string{"Config"}
	for _, b := range Benches() {
		hdr = append(hdr, b.Short)
	}
	hdr = append(hdr, "average")
	t := &stats.Table{Header: hdr}
	for _, n := range names {
		for _, e := range sizes {
			cells := []string{fmt.Sprintf("%s %d", n, e)}
			var col []float64
			for _, b := range Benches() {
				or, err := r.Result(b.Short, cs.at8(config.Orig, nil))
				if err != nil {
					return nil, err
				}
				res, err := r.Result(b.Short, mkE(n, e))
				if err != nil {
					return nil, err
				}
				col = append(col, stats.Speedup(or.Stats.Cycles, res.Stats.Cycles))
				cells = append(cells, stats.Pct(stats.RelativeSpeedupPct(or.Stats.Cycles, res.Stats.Cycles)))
			}
			cells = append(cells, stats.Pct((stats.WeightedAverageSpeedup(col)-1)*100))
			t.AddRow(cells...)
		}
	}
	return t, nil
}

// fig15 compares WEC sizes against victim cache sizes (4/8/16 entries).
func fig15(r *Runner) (*stats.Table, error) {
	return sweepSideSizes(r,
		[]config.Name{config.VC, config.WTHWPVC, config.WTHWPWEC},
		[]int{4, 8, 16})
}

// fig16 compares the WEC against next-line prefetch buffers (8/16/32).
func fig16(r *Runner) (*stats.Table, error) {
	return sweepSideSizes(r,
		[]config.Name{config.NLP, config.WTHWPWEC},
		[]int{8, 16, 32})
}

// fig17 reports the wth-wp-wec L1 data-traffic increase and miss-count
// reduction relative to orig.
func fig17(r *Runner) (*stats.Table, error) {
	cs := new(cfgset)
	var jobs []job
	for _, b := range Benches() {
		jobs = append(jobs, job{b.Short, cs.at8(config.Orig, nil)})
		jobs = append(jobs, job{b.Short, cs.at8(config.WTHWPWEC, nil)})
	}
	if err := cs.Err(); err != nil {
		return nil, err
	}
	if err := r.batch(jobs); err != nil {
		return nil, err
	}
	t := &stats.Table{Header: []string{
		"Benchmark", "L1 traffic increase", "L1 miss reduction",
	}}
	var trafficSum, missSum float64
	for _, b := range Benches() {
		or, err := r.Result(b.Short, cs.at8(config.Orig, nil))
		if err != nil {
			return nil, err
		}
		we, err := r.Result(b.Short, cs.at8(config.WTHWPWEC, nil))
		if err != nil {
			return nil, err
		}
		traffic := 100 * (float64(we.Stats.L1DTraffic) - float64(or.Stats.L1DTraffic)) /
			float64(or.Stats.L1DTraffic)
		miss := 100 * (float64(or.Stats.L1DMisses) - float64(we.Stats.L1DMisses)) /
			float64(or.Stats.L1DMisses)
		trafficSum += traffic
		missSum += miss
		t.AddRow(b.Short, fmt.Sprintf("%+.1f%%", traffic), fmt.Sprintf("%+.1f%%", miss))
	}
	n := float64(len(Benches()))
	t.AddRow("average", fmt.Sprintf("%+.1f%%", trafficSum/n), fmt.Sprintf("%+.1f%%", missSum/n))
	return t, nil
}

// ablation isolates the WEC's three roles (DESIGN.md decision 3): wrong
// fill isolation, victim caching, and next-line prefetching on wrong hits.
// Each row disables one role of the full wth-wp-wec configuration.
func ablation(r *Runner) (*stats.Table, error) {
	cs := new(cfgset)
	variants := []struct {
		name string
		mut  func(*sta.Config)
	}{
		{"wth-wp-wec (full)", nil},
		{"  -victim role", func(c *sta.Config) { c.Mem.WECNoVictim = true }},
		{"  -next-line role", func(c *sta.Config) { c.Mem.WECNoNextLine = true }},
		{"  -both", func(c *sta.Config) {
			c.Mem.WECNoVictim = true
			c.Mem.WECNoNextLine = true
		}},
	}
	var jobs []job
	for _, b := range Benches() {
		jobs = append(jobs, job{b.Short, cs.at8(config.Orig, nil)})
		for _, v := range variants {
			jobs = append(jobs, job{b.Short, cs.at8(config.WTHWPWEC, v.mut)})
		}
	}
	if err := cs.Err(); err != nil {
		return nil, err
	}
	if err := r.batch(jobs); err != nil {
		return nil, err
	}
	hdr := []string{"Config"}
	for _, b := range Benches() {
		hdr = append(hdr, b.Short)
	}
	hdr = append(hdr, "average")
	t := &stats.Table{Header: hdr}
	for _, v := range variants {
		cells := []string{v.name}
		var col []float64
		for _, b := range Benches() {
			or, err := r.Result(b.Short, cs.at8(config.Orig, nil))
			if err != nil {
				return nil, err
			}
			res, err := r.Result(b.Short, cs.at8(config.WTHWPWEC, v.mut))
			if err != nil {
				return nil, err
			}
			col = append(col, stats.Speedup(or.Stats.Cycles, res.Stats.Cycles))
			cells = append(cells, stats.Pct(stats.RelativeSpeedupPct(or.Stats.Cycles, res.Stats.Cycles)))
		}
		cells = append(cells, stats.Pct((stats.WeightedAverageSpeedup(col)-1)*100))
		t.AddRow(cells...)
	}
	return t, nil
}

// gainDecomp decomposes where each speculative configuration's gain comes
// from, using the attribution layer: relative speedup over orig at 8 TUs
// beside the classification of every speculative fill (useful, late,
// useless, polluting) and the side buffer's victim-cache hits, summed over
// the benchmark suite. wth-wp fills wrong blocks straight into the L1 (no
// side buffer), nlp prefetches without wrong execution, vc is a victim
// cache alone, and wth-wp-wec combines all three roles.
func gainDecomp(r *Runner) (*stats.Table, error) {
	cs := new(cfgset)
	prevOn, prevTop := r.Attrib, r.AttribTopN
	r.Attrib = true
	defer func() { r.Attrib, r.AttribTopN = prevOn, prevTop }()
	names := []config.Name{config.WTHWP, config.NLP, config.VC, config.WTHWPWEC}
	var jobs []job
	for _, b := range Benches() {
		jobs = append(jobs, job{b.Short, cs.at8(config.Orig, nil)})
		for _, n := range names {
			jobs = append(jobs, job{b.Short, cs.at8(n, nil)})
		}
	}
	if err := cs.Err(); err != nil {
		return nil, err
	}
	if err := r.batch(jobs); err != nil {
		return nil, err
	}
	t := &stats.Table{Header: []string{
		"Config", "speedup", "spec fills", "useful", "late", "useless", "polluting", "victim hits",
	}}
	for _, n := range names {
		var col []float64
		var spec, useful, late, useless, polluting, victims uint64
		for _, b := range Benches() {
			or, err := r.Result(b.Short, cs.at8(config.Orig, nil))
			if err != nil {
				return nil, err
			}
			res, err := r.Result(b.Short, cs.at8(n, nil))
			if err != nil {
				return nil, err
			}
			rep, err := r.AttribReport(b.Short, cs.at8(n, nil))
			if err != nil {
				return nil, err
			}
			col = append(col, stats.Speedup(or.Stats.Cycles, res.Stats.Cycles))
			spec += rep.SpecFills.Total()
			useful += rep.Useful.Total()
			late += rep.Late.Total()
			useless += rep.Useless.Total()
			polluting += rep.Polluting.Total()
			victims += rep.VictimHits
		}
		frac := func(n uint64) string {
			if spec == 0 {
				return fmt.Sprintf("%d", n)
			}
			return fmt.Sprintf("%d (%.0f%%)", n, 100*float64(n)/float64(spec))
		}
		t.AddRow(string(n),
			stats.Pct((stats.WeightedAverageSpeedup(col)-1)*100),
			fmt.Sprint(spec), frac(useful), frac(late), frac(useless),
			fmt.Sprint(polluting), fmt.Sprint(victims))
	}
	return t, nil
}

// table1 records which of the paper's Table 1 program transformations each
// kernel archetype models (loop coalescing, loop unrolling, statement
// reordering to increase overlap).
func table1(r *Runner) (*stats.Table, error) {
	rows := []struct{ bench, coalescing, unrolling, reordering string }{
		{"175.vpr", " ", "x", "x"},
		{"164.gzip", " ", "x", "x"},
		{"181.mcf", "x", " ", "x"},
		{"197.parser", " ", "x", " "},
		{"183.equake", "x", "x", "x"},
		{"177.mesa", "x", "x", " "},
	}
	t := &stats.Table{Header: []string{"Benchmark", "Loop Coalescing", "Loop Unrolling", "Statement Reordering"}}
	for _, row := range rows {
		t.AddRow(row.bench, row.coalescing, row.unrolling, row.reordering)
	}
	return t, nil
}

// extLatency is the paper's §7 future-work item "the effects of memory
// latency": the orig and wth-wp-wec configurations across DRAM round-trip
// latencies. Longer memories leave more latency for wrong execution to
// hide, so the WEC's edge should grow.
func extLatency(r *Runner) (*stats.Table, error) {
	cs := new(cfgset)
	lats := []int{100, 200, 400}
	mk := func(name config.Name, lat int) sta.Config {
		return cs.at8(name, func(c *sta.Config) { c.Mem.MemLat = lat })
	}
	var jobs []job
	for _, b := range Benches() {
		for _, lat := range lats {
			jobs = append(jobs, job{b.Short, mk(config.Orig, lat)})
			jobs = append(jobs, job{b.Short, mk(config.WTHWPWEC, lat)})
		}
	}
	if err := cs.Err(); err != nil {
		return nil, err
	}
	if err := r.batch(jobs); err != nil {
		return nil, err
	}
	hdr := []string{"Latency"}
	for _, b := range Benches() {
		hdr = append(hdr, b.Short)
	}
	hdr = append(hdr, "average")
	t := &stats.Table{Header: hdr}
	for _, lat := range lats {
		cells := []string{fmt.Sprintf("%d cycles", lat)}
		var col []float64
		for _, b := range Benches() {
			or, err := r.Result(b.Short, mk(config.Orig, lat))
			if err != nil {
				return nil, err
			}
			we, err := r.Result(b.Short, mk(config.WTHWPWEC, lat))
			if err != nil {
				return nil, err
			}
			col = append(col, stats.Speedup(or.Stats.Cycles, we.Stats.Cycles))
			cells = append(cells, stats.Pct(stats.RelativeSpeedupPct(or.Stats.Cycles, we.Stats.Cycles)))
		}
		cells = append(cells, stats.Pct((stats.WeightedAverageSpeedup(col)-1)*100))
		t.AddRow(cells...)
	}
	return t, nil
}

// extBlockSize is the paper's §7 future-work item "the effects of the
// block size": WEC speedup with 32/64/128-byte L1 blocks.
func extBlockSize(r *Runner) (*stats.Table, error) {
	cs := new(cfgset)
	sizes := []int{32, 64, 128}
	mk := func(name config.Name, bs int) sta.Config {
		return cs.at8(name, func(c *sta.Config) { c.Mem.L1DBlock = bs })
	}
	var jobs []job
	for _, b := range Benches() {
		for _, bs := range sizes {
			jobs = append(jobs, job{b.Short, mk(config.Orig, bs)})
			jobs = append(jobs, job{b.Short, mk(config.WTHWPWEC, bs)})
		}
	}
	if err := cs.Err(); err != nil {
		return nil, err
	}
	if err := r.batch(jobs); err != nil {
		return nil, err
	}
	hdr := []string{"Block"}
	for _, b := range Benches() {
		hdr = append(hdr, b.Short)
	}
	hdr = append(hdr, "average")
	t := &stats.Table{Header: hdr}
	for _, bs := range sizes {
		cells := []string{fmt.Sprintf("%dB", bs)}
		var col []float64
		for _, b := range Benches() {
			or, err := r.Result(b.Short, mk(config.Orig, bs))
			if err != nil {
				return nil, err
			}
			we, err := r.Result(b.Short, mk(config.WTHWPWEC, bs))
			if err != nil {
				return nil, err
			}
			col = append(col, stats.Speedup(or.Stats.Cycles, we.Stats.Cycles))
			cells = append(cells, stats.Pct(stats.RelativeSpeedupPct(or.Stats.Cycles, we.Stats.Cycles)))
		}
		cells = append(cells, stats.Pct((stats.WeightedAverageSpeedup(col)-1)*100))
		t.AddRow(cells...)
	}
	return t, nil
}

// extBpred is the paper's §7 future-work item "the relationship of the
// branch prediction accuracy to the performance of the WEC": the WEC's
// speedup under direction predictors of increasing quality. Worse
// prediction means more wrong-path execution to harvest.
func extBpred(r *Runner) (*stats.Table, error) {
	cs := new(cfgset)
	kinds := []bpred.DirKind{bpred.DirTaken, bpred.DirBimodal, bpred.DirGshare, bpred.DirComb}
	mk := func(name config.Name, kind bpred.DirKind) sta.Config {
		return cs.at8(name, func(c *sta.Config) { c.Core.Bpred.Dir = kind })
	}
	var jobs []job
	for _, b := range Benches() {
		for _, k := range kinds {
			jobs = append(jobs, job{b.Short, mk(config.Orig, k)})
			jobs = append(jobs, job{b.Short, mk(config.WTHWPWEC, k)})
		}
	}
	if err := cs.Err(); err != nil {
		return nil, err
	}
	if err := r.batch(jobs); err != nil {
		return nil, err
	}
	hdr := []string{"Predictor"}
	for _, b := range Benches() {
		hdr = append(hdr, b.Short)
	}
	hdr = append(hdr, "average", "accuracy")
	t := &stats.Table{Header: hdr}
	for _, k := range kinds {
		cells := []string{k.String()}
		var col []float64
		var accSum float64
		for _, b := range Benches() {
			or, err := r.Result(b.Short, mk(config.Orig, k))
			if err != nil {
				return nil, err
			}
			we, err := r.Result(b.Short, mk(config.WTHWPWEC, k))
			if err != nil {
				return nil, err
			}
			col = append(col, stats.Speedup(or.Stats.Cycles, we.Stats.Cycles))
			accSum += or.Stats.BranchAccuracy()
			cells = append(cells, stats.Pct(stats.RelativeSpeedupPct(or.Stats.Cycles, we.Stats.Cycles)))
		}
		cells = append(cells, stats.Pct((stats.WeightedAverageSpeedup(col)-1)*100))
		cells = append(cells, fmt.Sprintf("%.1f%%", 100*accSum/float64(len(Benches()))))
		t.AddRow(cells...)
	}
	return t, nil
}
