package harness

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRun regenerates every table and figure once on a
// shared runner (memoization makes the union far cheaper than the sum) and
// sanity-checks each output's structure. This is the end-to-end test of
// the whole reproduction pipeline.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in -short mode")
	}
	r := NewRunner(1)
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(r)
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Header) < 2 {
				t.Fatalf("%s: header too small: %v", e.ID, tbl.Header)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s: no rows", e.ID)
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Errorf("%s row %d: %d cells, header has %d",
						e.ID, i, len(row), len(tbl.Header))
				}
			}
			// CSV renders without panicking and includes the header.
			if !strings.HasPrefix(tbl.CSV(), tbl.Header[0]) {
				t.Errorf("%s: CSV missing header", e.ID)
			}
		})
	}
}

// pctCell parses a "+12.3%" cell.
func pctCell(t *testing.T, cell string) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimPrefix(cell, "+"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse percentage %q", cell)
	}
	return v
}

// TestFig11PaperShape asserts the headline qualitative claims of the
// paper's Figure 11 on the regenerated data: the WEC configuration's
// average beats the victim cache decisively and is the best or tied-best
// overall; wp alone is negligible.
func TestFig11PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment in -short mode")
	}
	r := NewRunner(1)
	tbl, err := fig11(r)
	if err != nil {
		t.Fatal(err)
	}
	// Last row is the weighted average; columns follow config.Names()[1:].
	avg := tbl.Rows[len(tbl.Rows)-1]
	if avg[0] != "average" {
		t.Fatalf("last row is %q, want average", avg[0])
	}
	idx := map[string]int{}
	for i, h := range tbl.Header {
		idx[h] = i
	}
	vc := pctCell(t, avg[idx["vc"]])
	wp := pctCell(t, avg[idx["wp"]])
	wec := pctCell(t, avg[idx["wth-wp-wec"]])
	nlp := pctCell(t, avg[idx["nlp"]])
	if wec < 3 {
		t.Errorf("WEC average %+.1f%% too small — reproduction regressed", wec)
	}
	if wec <= vc {
		t.Errorf("WEC (%.1f%%) must beat the victim cache (%.1f%%)", wec, vc)
	}
	if wec < nlp {
		t.Errorf("WEC (%.1f%%) must be at least next-line prefetching (%.1f%%)", wec, nlp)
	}
	if wp > 1.5 || wp < -1.5 {
		t.Errorf("wp alone should be negligible, got %+.1f%%", wp)
	}
	// mcf must be the biggest winner (paper: 18.5%).
	var mcfGain float64
	for _, row := range tbl.Rows {
		if row[0] == "mcf" {
			mcfGain = pctCell(t, row[idx["wth-wp-wec"]])
		}
	}
	for _, row := range tbl.Rows[:len(tbl.Rows)-1] {
		if g := pctCell(t, row[idx["wth-wp-wec"]]); g > mcfGain {
			t.Errorf("%s (%+.1f%%) beats mcf (%+.1f%%): winner changed", row[0], g, mcfGain)
		}
	}
}
