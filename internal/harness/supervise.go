package harness

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"repro/internal/attrib"
	"repro/internal/chaos"
	"repro/internal/simerr"
	"repro/internal/sta"
	"repro/internal/telemetry"
)

// SuiteError aggregates every failed cell of a batch that kept going past
// individual failures (the quarantine policy): the healthy cells finished
// and were memoized/journaled, and this error reports the rest.
type SuiteError struct {
	Total    int              // distinct cells the batch attempted
	Failures map[string]error // memo key -> classified failure
	// RunID is the telemetry run identity, when a telemetry.Run was
	// attached — it names the span JSONL and flight dumps describing each
	// failure.
	RunID string
	// Ledger is the results-ledger path, when one was attached — resuming
	// with the same ledger skips every cell that did finish.
	Ledger string
}

// Error summarizes the damage by failure kind; per-cell detail is in
// Failures (render with Detail).
func (e *SuiteError) Error() string {
	kinds := e.Kinds()
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k.String())
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		for k, c := range kinds {
			if k.String() == n {
				parts = append(parts, fmt.Sprintf("%d %s", c, n))
			}
		}
	}
	msg := fmt.Sprintf("harness: %d of %d cells failed (%s)",
		len(e.Failures), e.Total, strings.Join(parts, ", "))
	if e.RunID != "" {
		msg += fmt.Sprintf("; telemetry run %s", e.RunID)
	}
	if e.Ledger != "" {
		msg += fmt.Sprintf("; ledger %s (finished cells resume from it)", e.Ledger)
	}
	return msg
}

// Kinds counts the quarantined failures by taxonomy kind.
func (e *SuiteError) Kinds() map[simerr.Kind]int {
	kinds := make(map[simerr.Kind]int)
	for _, err := range e.Failures {
		kinds[simerr.KindOf(err)]++
	}
	return kinds
}

// Detail renders one line per quarantined cell, sorted by key for
// deterministic output.
func (e *SuiteError) Detail() string {
	keys := make([]string, 0, len(e.Failures))
	for k := range e.Failures {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "  %v\n", e.Failures[k])
	}
	return b.String()
}

// shortKey compresses a memo key into the same 8-hex-digit tag the metrics
// and attribution exports use, so error messages, file names, and ledger
// keys cross-reference.
func shortKey(k string) string {
	h := fnv.New32a()
	h.Write([]byte(k))
	return fmt.Sprintf("%08x", h.Sum32())
}

// quarantine classifies and records a failed cell so later lookups fail
// fast instead of re-running known-bad work, and tags the error with the
// cell identity.
func (r *Runner) quarantine(k, bench string, err error) error {
	e := simerr.Classify("harness.Result", err, simerr.Unknown)
	if e.Bench == "" {
		e.Bench = bench
	}
	if e.Config == "" {
		e.Config = "cfg-" + shortKey(k)
	}
	if e.Run == "" && r.Telemetry != nil {
		e.Run = r.Telemetry.ID
	}
	r.mu.Lock()
	if r.failed == nil {
		r.failed = make(map[string]error)
	}
	r.failed[k] = e
	r.mu.Unlock()
	return e
}

// runSupervised executes one machine run under the supervision policy:
// context cancellation, the per-run wall-clock timeout, and — when chaos
// is enabled — a deterministic fault injector salted with the memo key, so
// worker scheduling order cannot change which cells fault. Panic recovery
// and the forward-progress watchdog live inside RunContext itself.
func (r *Runner) runSupervised(k string, m *sta.Machine, cell *telemetry.Cell) (*sta.Result, error) {
	ctx := r.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if r.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.Timeout)
		defer cancel()
	}
	if r.Chaos.Enabled() {
		m.Chaos = chaos.New(r.Chaos, k)
		if r.Telemetry != nil {
			m.Chaos.Hook = r.Telemetry.NoteFault
		}
	}
	if cell == nil {
		return m.RunContext(ctx)
	}
	// The machine invocation gets its own span under the cell, so the
	// timeline separates build/reference/validation time from simulation.
	sim := r.Telemetry.StartSpan("sim", "RunContext", cell.Span)
	res, err := m.RunContext(ctx)
	var cycles uint64
	if res != nil {
		cycles = res.Stats.Cycles
	} else if se := (*simerr.Error)(nil); simerrAs(err, &se) {
		cycles = se.Cycle
	}
	sim.EndAt(cycles, telemetry.OutcomeOf(err), err)
	return res, err
}

// runRemote offers one cell to the Remote executor, tracing the exchange
// as a "remote" span when telemetry is attached (mirroring the "sim" span
// of a local run).
func (r *Runner) runRemote(bench string, cfg sta.Config, cell *telemetry.Cell) (*sta.Result, *attrib.Report, bool, error) {
	ctx := r.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	var sp *telemetry.Span
	if cell != nil && r.Telemetry != nil {
		sp = r.Telemetry.StartSpan("remote", "fleet", cell.Span)
	}
	res, rep, handled, err := r.Remote(ctx, bench, cfg)
	if sp != nil {
		var cycles uint64
		if res != nil {
			cycles = res.Stats.Cycles
		}
		outcome := telemetry.OutcomeOf(err)
		if !handled {
			outcome = "declined"
		}
		sp.EndAt(cycles, outcome, err)
	}
	return res, rep, handled, err
}

// simerrAs is errors.As pinned to *simerr.Error.
func simerrAs(err error, target **simerr.Error) bool {
	return errors.As(err, target)
}

// BackoffDelay returns the capped-exponential retry delay for an attempt
// (0-based), scaled by a deterministic jitter factor in [0.75, 1.25) drawn
// from a stream seeded by key — typically the cell's memo key. The same
// (key, attempt, base, max) always yields the same delay, so retry
// schedules are reproducible in tests; distinct keys decorrelate, so a
// thundering herd of failed cells (or fleet lease reassignments, which
// share this function) spreads out instead of retrying in lockstep.
func BackoffDelay(key string, attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	if max <= 0 {
		max = 250 * time.Millisecond
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// splitmix64 over FNV(key) and the attempt number: a pure function,
	// well-decorrelated across both inputs.
	h := fnv.New64a()
	h.Write([]byte(key))
	s := h.Sum64() + (uint64(attempt)+1)*0x9E3779B97F4A7C15
	s ^= s >> 30
	s *= 0xBF58476D1CE4E5B9
	s ^= s >> 27
	s *= 0x94D049BB133111EB
	s ^= s >> 31
	frac := float64(s>>11) / float64(1<<53) // [0, 1)
	return time.Duration(float64(d) * (0.75 + 0.5*frac))
}

// retryIO runs op, retrying IO-kind failures with capped exponential
// backoff under deterministic seeded jitter (see BackoffDelay; key is the
// cell's memo key); any other kind (or exhausted retries) is returned
// as-is. IO failures are the only class the supervisor treats as
// transient. With telemetry attached, each re-attempt is counted, logged,
// and traced as a "retry" span under the cell.
func (r *Runner) retryIO(opName, key string, cell *telemetry.Cell, op func() error) error {
	retries := r.Retries
	if retries == 0 {
		retries = 3
	}
	if retries < 0 {
		retries = 0
	}
	const maxBackoff = 250 * time.Millisecond
	var err error
	for attempt := 0; ; attempt++ {
		var sp *telemetry.Span
		if attempt > 0 && r.Telemetry != nil {
			var parent *telemetry.Span
			if cell != nil {
				parent = cell.Span
			}
			sp = r.Telemetry.StartSpan("retry", fmt.Sprintf("%s retry %d", opName, attempt), parent)
		}
		err = op()
		sp.End(telemetry.OutcomeOf(err), err)
		if err == nil || attempt >= retries || simerr.KindOf(err) != simerr.IO {
			return err
		}
		if r.Telemetry != nil {
			r.Telemetry.NoteRetry(opName, attempt+1, err)
		}
		time.Sleep(BackoffDelay(key+"|"+opName, attempt, r.RetryBackoff, maxBackoff))
	}
}

// classifyIO wraps a write-path error into the IO kind (nil stays nil).
func classifyIO(op string, err error) error {
	if err == nil {
		return nil
	}
	return simerr.Classify(op, err, simerr.IO)
}

// Prefill seeds the memoization table with previously-journaled results
// (see OpenLedger), so a resumed suite skips every finished cell.
func (r *Runner) Prefill(results map[string]*sta.Result) {
	r.mu.Lock()
	for k, res := range results {
		r.results[k] = res
	}
	r.mu.Unlock()
}
