// Package harness regenerates every table and figure of the paper's
// evaluation (§5). Each experiment maps onto the per-experiment index in
// DESIGN.md and prints the same rows/series the paper reports. Results are
// memoized per (benchmark, machine configuration), and batches run on a
// worker pool sized to the host.
package harness

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/attrib"
	"repro/internal/chaos"
	"repro/internal/interp"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/runstore"
	"repro/internal/sample"
	"repro/internal/simerr"
	"repro/internal/sta"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Runner executes simulations with memoization and a worker pool.
type Runner struct {
	// Scale multiplies every benchmark's window count (1 = quick default).
	Scale int
	// Workers bounds concurrent simulations; 0 means GOMAXPROCS.
	Workers int
	// SimWorkers is each machine's intra-simulation goroutine budget
	// (sta.Machine.Workers). 0 divides GOMAXPROCS across the concurrent
	// cells, so a wide batch keeps machines sequential while a lone big
	// machine gets the whole host; negative forces sequential stepping.
	SimWorkers int
	// Verbose, when non-nil, receives one progress line per completed
	// simulation. Writes are serialized; any io.Writer is safe.
	Verbose io.Writer

	// MetricsInterval, when positive, attaches a metrics collector with
	// an interval sampler of that many cycles to every simulation. Each
	// run gets its own collector, so worker concurrency stays race-free.
	MetricsInterval uint64
	// MetricsDir, when set with MetricsInterval, receives one metrics
	// JSON file per (benchmark, configuration) run.
	MetricsDir string

	// Attrib attaches a fill-attribution collector to every simulation;
	// reports are memoized beside the results (see AttribReport). A
	// result cached without attribution is re-simulated when its report
	// is first needed.
	Attrib bool
	// AttribDir, when set with Attrib, receives one attribution JSON
	// report per (benchmark, configuration) run.
	AttribDir string
	// AttribTopN bounds the per-PC table in each report (0 = default).
	AttribTopN int

	// Ctx, when non-nil, cancels in-flight and pending simulations (wire
	// it to signal.NotifyContext for graceful SIGINT handling).
	Ctx context.Context
	// Timeout bounds each simulation's wall-clock time; 0 means no limit.
	// Expiry fails that cell with a Timeout-kind error.
	Timeout time.Duration
	// Chaos, when any probability is set, attaches a deterministic fault
	// injector to every simulation, salted with the cell's memo key.
	Chaos chaos.Config
	// Retries bounds re-attempts of transient IO-kind failures (metrics,
	// attribution, and ledger writes). 0 means the default (3); negative
	// disables retrying.
	Retries int
	// RetryBackoff is the initial IO retry delay, doubled per attempt and
	// capped; 0 means the default (5ms).
	RetryBackoff time.Duration
	// Ledger, when non-nil, journals each completed cell so an interrupted
	// suite can resume (see OpenLedger and Prefill).
	Ledger *Ledger
	// Archive, when non-nil, archives every fresh completed cell's
	// manifest (config hash, provenance, deterministic counters, artifact
	// references) into the content-addressed run store, through the same
	// retry policy as the other export paths. The put happens before the
	// ledger append, so a journaled cell is always archived: an
	// interrupted sweep resumed from its ledger converges on exactly one
	// manifest per cell.
	Archive *runstore.Store
	// ArchiveTool names the producing CLI in manifests ("" = "harness").
	ArchiveTool string
	// ArchiveRev is the git revision stamped on manifests (best-effort;
	// see runstore.GitRev).
	ArchiveRev string
	// Telemetry, when non-nil, scopes this runner's work under a live
	// telemetry run: every fresh cell opens a span and publishes progress
	// through a sta.ProgressTap (visible on the run's HTTP introspection
	// server), failures stamp the run/span identity onto their errors and
	// dump the flight recorder, and suite progress is logged structurally
	// instead of through Verbose.
	Telemetry *telemetry.Run

	// Sample, when enabled, runs every cell as a SMARTS-style sampled
	// simulation (sta.Machine.Sample): detailed execution only inside
	// measurement windows, functional fast-forward in between, and a
	// whole-run estimate with confidence intervals on each result. Sampled
	// cells memoize, journal, and archive under the sampled memo key
	// (runstore.MemoKeySampled), so they can never be silently compared
	// against detailed runs. The architectural cross-check against the
	// functional reference still applies — fast-forward is exact on memory.
	Sample sample.Config

	// Remote, when non-nil, is offered every cell before the in-process
	// simulation path: the fleet coordinator's dispatch hook. A handled
	// cell's deterministic result (and attribution report, when Attrib is
	// set) comes back over the wire and flows through exactly the same
	// validation, archive, and ledger tail as a local run — so remote and
	// local sweeps are bit-identical. handled=false (no workers ever
	// connected, unshardable bench) falls back to the in-process path.
	// Cells needing a live metrics collector (MetricsInterval > 0) always
	// run locally.
	Remote RemoteExec
	// MakeTap, when non-nil (and Telemetry is not attached), supplies a
	// progress tap for each fresh local simulation — the fleet worker uses
	// it to publish live cycle counts into its lease heartbeats.
	MakeTap func(bench, key string) *sta.ProgressTap

	mu      sync.Mutex
	results map[string]*sta.Result
	attribs map[string]*attrib.Report
	progs   map[string]*isa.Program
	refs    map[string]*interp.Result
	failed  map[string]error // quarantined cells: memo key -> first failure

	vmu       sync.Mutex
	completed int
}

// NewRunner returns a Runner at the given workload scale.
func NewRunner(scale int) *Runner {
	if scale < 1 {
		scale = 1
	}
	return &Runner{
		Scale:   scale,
		results: make(map[string]*sta.Result),
		attribs: make(map[string]*attrib.Report),
		progs:   make(map[string]*isa.Program),
		refs:    make(map[string]*interp.Result),
	}
}

// Benches returns the benchmark list in the paper's order.
func Benches() []*workload.Workload { return workload.All() }

// RegisterProgram installs a pre-built program under a bench name, giving
// it the exact cell lifecycle of a hand-written workload: memoization,
// reference interpretation, ledger journaling, and archive manifests. This
// is how synthesized workloads (wgen) enter the harness — their bench name
// embeds the genome hash, so the memo keys, ledger entries, and manifests
// of generated cells are greppable by genome.
func (r *Runner) RegisterProgram(bench string, p *isa.Program) {
	r.mu.Lock()
	r.progs[bench] = p
	r.mu.Unlock()
}

// program builds (and caches) a benchmark binary.
func (r *Runner) program(bench string) (*isa.Program, error) {
	r.mu.Lock()
	p, ok := r.progs[bench]
	r.mu.Unlock()
	if ok {
		return p, nil
	}
	w, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	p, err = w.Build(r.Scale)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.progs[bench] = p
	r.mu.Unlock()
	return p, nil
}

// Reference runs (and caches) the functional interpreter for a benchmark.
func (r *Runner) Reference(bench string) (*interp.Result, error) {
	r.mu.Lock()
	ref, ok := r.refs[bench]
	r.mu.Unlock()
	if ok {
		return ref, nil
	}
	p, err := r.program(bench)
	if err != nil {
		return nil, err
	}
	ref, err = interp.Run(p)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.refs[bench] = ref
	r.mu.Unlock()
	return ref, nil
}

type job struct {
	bench string
	cfg   sta.Config
}

// RemoteExec executes one cell somewhere else — the fleet coordinator
// implements it. It returns the cell's deterministic result plus, when the
// producing worker ran with attribution attached, its report. handled=false
// means the executor declined the cell (no workers ever connected, bench
// not shardable) and the Runner must simulate in-process; a non-nil err
// with handled=true quarantines the cell with the classified failure.
type RemoteExec func(ctx context.Context, bench string, cfg sta.Config) (res *sta.Result, rep *attrib.Report, handled bool, err error)

// MemoKey renders the memoization key for a (benchmark, configuration)
// cell — the identity under which results are cached, journaled to the
// ledger, and content-addressed in the run archive. The rendering lives in
// runstore so every producer and consumer of archive hashes agrees on it.
func MemoKey(bench string, cfg sta.Config) string {
	return runstore.MemoKey(bench, cfg)
}

// key renders this runner's memo key for a cell: the detailed key, plus
// the canonical sampling suffix when the runner executes sampled
// simulations — so sampled and detailed results never share a memo slot,
// a ledger entry, or an archive address.
func (r *Runner) key(bench string, cfg sta.Config) string {
	if r.Sample.Enabled() {
		return runstore.MemoKeySampled(bench, cfg,
			r.Sample.WarmupInsts, r.Sample.MeasureInsts, r.Sample.PeriodInsts)
	}
	return MemoKey(bench, cfg)
}

// Result runs one simulation (memoized) and validates the architectural
// outcome against the functional reference. Every fresh run is also checked
// against the cross-counter statistic invariants, and — when Attrib is set —
// against the attribution report's internal accounting.
//
// Runs are supervised: panics anywhere in the cell become Panic-kind
// errors instead of killing the process, Ctx/Timeout bound the run, IO
// failures on the export paths are retried, and a failed cell is
// quarantined so later lookups fail fast (see SuiteError).
func (r *Runner) Result(bench string, cfg sta.Config) (res *sta.Result, err error) {
	k := r.key(bench, cfg)
	var cell *telemetry.Cell
	defer func() {
		if rec := recover(); rec != nil {
			res, err = nil, r.quarantine(k, bench, simerr.FromPanic("harness.Result", rec))
		}
		// Telemetry finalization sees the recovered error too: a failed
		// cell ends its span with the simerr outcome and dumps the
		// flight recorder; a successful one records the final cycle.
		if cell == nil {
			return
		}
		if err != nil {
			cell.Fail(err)
		} else if res != nil {
			cell.Done(res.Stats.Cycles)
		}
	}()
	r.mu.Lock()
	if qerr, bad := r.failed[k]; bad {
		r.mu.Unlock()
		return nil, qerr
	}
	res, ok := r.results[k]
	if ok && r.Attrib && r.attribs[k] == nil {
		ok = false // cached without attribution: simulate again for the report
	}
	r.mu.Unlock()
	if ok {
		return res, nil
	}
	if r.Telemetry != nil {
		cell = r.Telemetry.StartCell(bench, "cfg-"+shortKey(k), r.Chaos.Seed)
	}
	p, err := r.program(bench)
	if err != nil {
		return nil, r.quarantine(k, bench, simerr.Classify("harness.Result", err, simerr.BadProgram))
	}
	ref, err := r.Reference(bench)
	if err != nil {
		return nil, r.quarantine(k, bench, simerr.Classify("harness.Result", err, simerr.BadProgram))
	}
	var (
		col        *metrics.Collector
		rep        *attrib.Report
		simWorkers int
		remote     bool
	)
	simStart := time.Now()
	if r.Remote != nil && r.MetricsInterval == 0 && !r.Sample.Enabled() {
		// (Sampled cells always run locally: the remote protocol carries
		// neither the sampling regime nor the estimate.)
		rres, rrep, handled, rerr := r.runRemote(bench, cfg, cell)
		if handled {
			remote = true
			if rerr != nil {
				return nil, r.quarantine(k, bench, rerr)
			}
			if rres == nil || (r.Attrib && rrep == nil) {
				return nil, r.quarantine(k, bench, simerr.Errorf(simerr.Unknown, "harness.Result",
					"remote executor returned an incomplete cell (result %v, attrib wanted %v)",
					rres != nil, r.Attrib))
			}
			res, rep = rres, rrep
		}
	}
	if !remote {
		m, err := sta.New(cfg, p)
		if err != nil {
			return nil, r.quarantine(k, bench, simerr.Classify("harness.Result", err, simerr.BadProgram))
		}
		m.Sample = r.Sample
		switch {
		case r.SimWorkers > 0:
			m.Workers = r.SimWorkers
		case r.SimWorkers < 0:
			m.DisableParallel = true
		default:
			// Split the host between concurrent cells; the machine's own
			// heuristic further trims the share for small TU counts.
			cells := r.Workers
			if cells <= 0 {
				cells = runtime.GOMAXPROCS(0)
			}
			if w := runtime.GOMAXPROCS(0) / cells; w > 1 {
				m.Workers = w
			} else {
				m.DisableParallel = true
			}
		}
		if r.MetricsInterval > 0 {
			// Per-run collector: nothing is shared between workers.
			col = metrics.NewCollector(r.MetricsInterval)
			m.Metrics = col
		}
		var ac *attrib.Collector
		if r.Attrib {
			ac = attrib.NewCollector()
			ac.TopN = r.AttribTopN
			m.Attrib = ac
		}
		if cell != nil {
			m.Tap = cell.Tap
		} else if r.MakeTap != nil {
			m.Tap = r.MakeTap(bench, k)
		}
		simWorkers = m.Workers
		if m.DisableParallel {
			simWorkers = 0
		}
		res, err = r.runSupervised(k, m, cell)
		if err != nil {
			return nil, r.quarantine(k, bench, err)
		}
		if ac != nil {
			rep = ac.Report(res.Stats.Cycles)
		}
	}
	simWall := time.Since(simStart)
	if res.MemCheck != ref.MemCheck {
		return nil, r.quarantine(k, bench, simerr.Errorf(simerr.BadProgram, "harness.Result",
			"architectural mismatch: machine %#x, reference %#x (configuration changed results)",
			res.MemCheck, ref.MemCheck))
	}
	if err := res.Stats.CheckInvariants(); err != nil {
		return nil, r.quarantine(k, bench, simerr.Classify("harness.Result", err, simerr.BadProgram))
	}
	if col != nil && r.MetricsDir != "" {
		err := r.retryIO("harness.metrics", k, cell, func() error {
			return classifyIO("harness.metrics", r.writeMetrics(bench, k, col, res.Stats.Cycles))
		})
		if err != nil {
			return nil, r.quarantine(k, bench, err)
		}
	}
	if rep != nil {
		// Remote reports get the same internal-accounting check as local
		// ones: a corrupted wire payload must not poison the memo table.
		if err := rep.CheckInternal(); err != nil {
			return nil, r.quarantine(k, bench, simerr.Classify("harness.Result", err, simerr.BadProgram))
		}
		if r.AttribDir != "" {
			err := r.retryIO("harness.attrib", k, cell, func() error {
				return classifyIO("harness.attrib", r.writeAttrib(bench, k, rep))
			})
			if err != nil {
				return nil, r.quarantine(k, bench, err)
			}
		}
	}
	if r.Archive != nil {
		man := runstore.New(bench, r.Scale, cfg, res)
		man.Tool = r.ArchiveTool
		if man.Tool == "" {
			man.Tool = "harness"
		}
		man.GitRev = r.ArchiveRev
		man.WallSeconds = simWall.Seconds()
		man.Workers = simWorkers
		if r.Chaos.Enabled() {
			man.Seed = r.Chaos.Seed
		}
		if r.Telemetry != nil {
			man.RunID = r.Telemetry.ID
			if dir := r.Telemetry.Dir(); dir != "" {
				man.Artifacts = map[string]string{"spans": filepath.Join(dir, "spans.jsonl")}
			}
		}
		if col != nil && r.MetricsDir != "" {
			if man.Artifacts == nil {
				man.Artifacts = map[string]string{}
			}
			man.Artifacts["metrics"] = filepath.Join(r.MetricsDir, exportName(bench, k, ".json"))
		}
		if rep != nil && r.AttribDir != "" {
			if man.Artifacts == nil {
				man.Artifacts = map[string]string{}
			}
			man.Artifacts["attrib"] = filepath.Join(r.AttribDir, exportName(bench, k, ".attrib.json"))
		}
		if rep != nil {
			man.Attrib = runstore.SummarizeAttrib(rep)
		}
		err := r.retryIO("harness.archive", k, cell, func() error {
			return classifyIO("harness.archive", r.Archive.Put(man))
		})
		if err != nil {
			return nil, r.quarantine(k, bench, err)
		}
	}
	if r.Ledger != nil {
		err := r.retryIO("harness.ledger", k, cell, func() error { return r.Ledger.Append(k, res) })
		if err != nil {
			return nil, r.quarantine(k, bench, err)
		}
		if r.Telemetry != nil {
			r.Telemetry.NoteLedgerAppend()
		}
	}
	r.mu.Lock()
	r.results[k] = res
	if rep != nil {
		r.attribs[k] = rep
	}
	r.mu.Unlock()
	// With telemetry attached, cell completion is logged structurally (see
	// telemetry.Cell.Done) instead of through the ad-hoc progress line.
	if r.Verbose != nil && r.Telemetry == nil {
		r.vmu.Lock()
		r.completed++
		fmt.Fprintf(r.Verbose, "  [%3d] done %-8s %11d cycles\n", r.completed, bench, res.Stats.Cycles)
		r.vmu.Unlock()
	}
	return res, nil
}

// exportName names a per-cell export file: the benchmark plus the short
// memo-key hash (so sweep points do not collide) plus a suffix. The same
// tag appears in ledger keys, telemetry spans, and archive manifests.
func exportName(bench, key, suffix string) string {
	return bench + "-" + shortKey(key) + suffix
}

// writeMetrics exports one run's collector as JSON under MetricsDir.
func (r *Runner) writeMetrics(bench, key string, col *metrics.Collector, cycles uint64) error {
	f, err := os.Create(filepath.Join(r.MetricsDir, exportName(bench, key, ".json")))
	if err != nil {
		return fmt.Errorf("harness: metrics export: %w", err)
	}
	if err := col.WriteJSON(f, cycles); err != nil {
		f.Close()
		return fmt.Errorf("harness: metrics export: %w", err)
	}
	return f.Close()
}

// AttribReport returns the attribution report memoized for a simulation,
// running it (with attribution attached) if needed.
func (r *Runner) AttribReport(bench string, cfg sta.Config) (*attrib.Report, error) {
	k := r.key(bench, cfg)
	r.mu.Lock()
	rep := r.attribs[k]
	r.mu.Unlock()
	if rep != nil {
		return rep, nil
	}
	if !r.Attrib {
		return nil, fmt.Errorf("harness: attribution not enabled (set Runner.Attrib)")
	}
	if _, err := r.Result(bench, cfg); err != nil {
		return nil, err
	}
	r.mu.Lock()
	rep = r.attribs[k]
	r.mu.Unlock()
	return rep, nil
}

// writeAttrib exports one run's attribution report as JSON under AttribDir,
// named like writeMetrics output with an .attrib.json suffix.
func (r *Runner) writeAttrib(bench, key string, rep *attrib.Report) error {
	f, err := os.Create(filepath.Join(r.AttribDir, exportName(bench, key, ".attrib.json")))
	if err != nil {
		return fmt.Errorf("harness: attrib export: %w", err)
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("harness: attrib export: %w", err)
	}
	return f.Close()
}

// batch runs all jobs concurrently, memoizing results. A failed cell does
// not abort the batch: the failure is quarantined, every other cell still
// runs (and is journaled, when a ledger is attached), and the batch
// returns a *SuiteError aggregating everything that went wrong.
func (r *Runner) batch(jobs []job) error {
	if r.Telemetry != nil && r.Ledger != nil && r.Telemetry.LedgerPath() == "" {
		r.Telemetry.SetLedger(r.Ledger.Path())
	}
	if r.Telemetry != nil && r.Archive != nil && r.Telemetry.ArchivePath() == "" {
		r.Telemetry.SetArchive(r.Archive.Root())
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	jobc := make(chan job)
	var (
		wg       sync.WaitGroup
		fmu      sync.Mutex
		failures map[string]error
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobc {
				if _, err := r.Result(j.bench, j.cfg); err != nil {
					fmu.Lock()
					if failures == nil {
						failures = make(map[string]error)
					}
					failures[r.key(j.bench, j.cfg)] = err
					fmu.Unlock()
				}
			}
		}()
	}
	for _, j := range jobs {
		jobc <- j
	}
	close(jobc)
	wg.Wait()
	if len(failures) > 0 {
		e := &SuiteError{Total: len(jobs), Failures: failures}
		if r.Telemetry != nil {
			e.RunID = r.Telemetry.ID
		}
		if r.Ledger != nil {
			e.Ledger = r.Ledger.Path()
		}
		return e
	}
	return nil
}

// Experiment is one reproducible table or figure. Run returns the result
// as a structured table; render it with Table.String (aligned text) or
// Table.CSV.
type Experiment struct {
	ID    string // "table2", "fig8" ... "fig17", extensions
	Title string
	Run   func(r *Runner) (*stats.Table, error)
}

// RunTo executes the experiment and writes its rendered table to w.
func (e Experiment) RunTo(r *Runner, w io.Writer) error {
	t, err := e.Run(r)
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(w, t.String())
	return err
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table 1: program transformations modeled per kernel", Run: table1},
		{ID: "table2", Title: "Table 2: dynamic instruction counts and fraction parallelized", Run: table2},
		{ID: "table3", Title: "Table 3: per-TU resource scaling", Run: table3},
		{ID: "fig8", Title: "Figure 8: TLP vs ILP in the parallelized portions", Run: fig8},
		{ID: "fig9", Title: "Figure 9: whole-program speedup vs a single-TU baseline", Run: fig9},
		{ID: "fig10", Title: "Figure 10: wth-wp-wec speedup over same-TU-count orig", Run: fig10},
		{ID: "fig11", Title: "Figure 11: relative speedup of all configurations (8 TUs)", Run: fig11},
		{ID: "fig12", Title: "Figure 12: sensitivity to L1 associativity", Run: fig12},
		{ID: "fig13", Title: "Figure 13: sensitivity to L1 data cache size", Run: fig13},
		{ID: "fig14", Title: "Figure 14: sensitivity to L2 cache size", Run: fig14},
		{ID: "fig15", Title: "Figure 15: WEC size versus victim cache size", Run: fig15},
		{ID: "fig16", Title: "Figure 16: WEC versus next-line prefetch buffer size", Run: fig16},
		{ID: "fig17", Title: "Figure 17: L1 traffic increase and miss reduction", Run: fig17},
		{ID: "ablate", Title: "Ablation: the WEC's three roles in isolation (extension)", Run: ablation},
		{ID: "gain", Title: "Gain decomposition: fill attribution for WEC vs vc vs nlp vs wth-wp (extension)", Run: gainDecomp},
		{ID: "ext-latency", Title: "Extension (paper §7): memory-latency sensitivity of the WEC", Run: extLatency},
		{ID: "ext-block", Title: "Extension (paper §7): L1 block-size sensitivity of the WEC", Run: extBlockSize},
		{ID: "ext-bpred", Title: "Extension (paper §7): branch-prediction accuracy vs WEC benefit", Run: extBpred},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}
