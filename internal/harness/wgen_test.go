package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/runstore"
	"repro/internal/simerr"
	"repro/internal/wgen"
)

// TestWgenCellThroughHarness: a generated program registered under its
// genome-hash bench name gets the full cell lifecycle — memoized result,
// ledger journal entry, and archive manifest — and the genome hash is
// recoverable from every one of those identities.
func TestWgenCellThroughHarness(t *testing.T) {
	g := wgen.Random(0xBEEF)
	p, err := g.Program()
	if err != nil {
		t.Fatal(err)
	}
	bench := g.BenchName()
	cfg := smallCfg(t)

	dir := t.TempDir()
	led, _, err := OpenLedger(filepath.Join(dir, "ledger.jsonl"), 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := runstore.Open(filepath.Join(dir, "runs"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	r := NewRunner(1)
	r.RegisterProgram(bench, p)
	r.Ledger = led
	r.Archive = st
	res, err := r.Result(bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	// The memo key embeds the genome hash.
	k := MemoKey(bench, cfg)
	if !strings.Contains(k, g.Hash()) {
		t.Errorf("memo key %q does not embed genome hash %s", k, g.Hash())
	}
	// The ledger journaled the cell under that key.
	raw, err := os.ReadFile(filepath.Join(dir, "ledger.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), g.Hash()) {
		t.Errorf("ledger does not mention genome hash %s", g.Hash())
	}
	// The archive manifest names the bench and carries the result counters.
	if st.Len() != 1 {
		t.Fatalf("archive has %d manifests, want 1", st.Len())
	}
	man := st.All()[0]
	if man.Bench != bench {
		t.Errorf("manifest bench %q, want %q", man.Bench, bench)
	}
	if man.Stats != res.Stats || man.MemCheck != res.MemCheck {
		t.Error("manifest counters diverge from the result")
	}

	// Memoized re-request: same pointer, no new manifest.
	res2, err := r.Result(bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res {
		t.Error("second request was not memoized")
	}
	if st.Len() != 1 {
		t.Errorf("memoized re-request grew the archive to %d", st.Len())
	}
}

// TestWgenCellDeterministicAcrossRunners: the same genome on two fresh
// runners (zero chaos) produces bit-identical counters and memory
// checksums — generated cells obey the same reproducibility contract as
// hand-written benches.
func TestWgenCellDeterministicAcrossRunners(t *testing.T) {
	g := wgen.Random(0x5EED)
	p, err := g.Program()
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(t)
	run := func() (uint64, uint64) {
		r := NewRunner(1)
		r.RegisterProgram(g.BenchName(), p)
		res, err := r.Result(g.BenchName(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cycles, res.MemCheck
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 || m1 != m2 {
		t.Fatalf("generated cell not reproducible: (%d,%#x) vs (%d,%#x)", c1, m1, c2, m2)
	}
}

// TestWgenCellUnderChaos: a generated cell driven into a certain panic is
// quarantined like any other cell — the fault surfaces as a classified
// simulator error, not a process crash, and later lookups fail fast.
func TestWgenCellUnderChaos(t *testing.T) {
	g := wgen.Random(0xC4A05)
	p, err := g.Program()
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(1)
	r.RegisterProgram(g.BenchName(), p)
	r.Chaos = chaos.Config{Seed: 7, MachinePanic: 1}
	_, err = r.Result(g.BenchName(), smallCfg(t))
	if err == nil {
		t.Fatal("certain-panic chaos produced no error")
	}
	if simerr.KindOf(err) != simerr.Panic {
		t.Fatalf("chaos fault not classified as panic: %v", err)
	}
	// Quarantined: the second lookup fails fast with the same cell identity.
	if _, err2 := r.Result(g.BenchName(), smallCfg(t)); err2 == nil {
		t.Fatal("quarantined cell returned a result")
	}
}
