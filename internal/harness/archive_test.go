package harness

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/runstore"
)

// TestArchiveManifestOnFreshCell: a runner with an archive attached writes
// one manifest per fresh cell, carrying the same memo key, counters, and
// checksum the ledger journals.
func TestArchiveManifestOnFreshCell(t *testing.T) {
	dir := t.TempDir()
	st, err := runstore.Open(filepath.Join(dir, "runs"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	bench := Benches()[0].Short
	cfg := smallCfg(t)
	r := NewRunner(1)
	r.Archive = st
	res, err := r.Result(bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("archive has %d cells, want 1", st.Len())
	}
	m := st.All()[0]
	if m.MemoKey != MemoKey(bench, cfg) {
		t.Errorf("manifest memo key %q does not match harness key", m.MemoKey)
	}
	if m.Stats != res.Stats || m.MemCheck != res.MemCheck {
		t.Errorf("manifest counters diverge from the result")
	}
	if m.Tool != "harness" {
		t.Errorf("default tool %q, want harness", m.Tool)
	}
	if m.Config != "wth-wp-wec" {
		t.Errorf("config inferred as %q", m.Config)
	}
	// A memoized re-request must not duplicate the manifest.
	if _, err := r.Result(bench, cfg); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Errorf("memoized re-request grew the archive to %d", st.Len())
	}
}

// TestArchiveResumeConvergesToOneManifestPerCell is the interrupted-sweep
// contract: a sweep killed partway (after journaling and archiving some
// cells — including a torn archive-index tail from the kill) and resumed
// with the ledger's prior results converges on exactly one manifest and
// one per-cell file per cell, with no duplicates from the replayed tail.
func TestArchiveResumeConvergesToOneManifestPerCell(t *testing.T) {
	dir := t.TempDir()
	ledgerPath := filepath.Join(dir, "ledger.jsonl")
	archiveDir := filepath.Join(dir, "runs")
	cfg := smallCfg(t)
	benches := []string{Benches()[0].Short, Benches()[1].Short, Benches()[2].Short}

	// Phase 1: the sweep gets through the first two cells, then is killed —
	// mid-append to the archive index, for good measure.
	led, _, err := OpenLedger(ledgerPath, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := runstore.Open(archiveDir)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner(1)
	r1.Ledger = led
	r1.Archive = st
	for _, b := range benches[:2] {
		if _, err := r1.Result(b, cfg); err != nil {
			t.Fatal(err)
		}
	}
	led.Close()
	st.Close()
	f, err := os.OpenFile(filepath.Join(archiveDir, "index.jsonl"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"cell_key":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Phase 2: resume. The ledger replays the finished cells; the archive
	// drops its torn tail; the runner re-runs the whole sweep.
	led2, prior, err := OpenLedger(ledgerPath, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer led2.Close()
	if len(prior) != 2 {
		t.Fatalf("ledger replayed %d cells, want 2", len(prior))
	}
	st2, err := runstore.Open(archiveDir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("reopened archive has %d cells, want 2 (archived before journaled)", st2.Len())
	}
	r2 := NewRunner(1)
	r2.Ledger = led2
	r2.Archive = st2
	r2.Prefill(prior)
	for _, b := range benches {
		if _, err := r2.Result(b, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if st2.Len() != 3 {
		t.Fatalf("after resume: %d manifests, want exactly 3 (one per cell)", st2.Len())
	}
	// Exactly one per-cell file per cell, all under one config directory.
	files, err := filepath.Glob(filepath.Join(archiveDir, "c*", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("archive tree has %d cell files, want 3: %v", len(files), files)
	}
	seen := make(map[string]bool)
	for _, m := range st2.All() {
		if seen[m.CellKey] {
			t.Errorf("duplicate cell key %s", m.CellKey)
		}
		seen[m.CellKey] = true
	}
}
