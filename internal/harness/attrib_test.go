package harness

import (
	"strings"
	"testing"

	"repro/internal/config"
)

// TestAttribReconcilesMcfWEC pins the acceptance identity between the
// attribution layer and the pre-existing DUnit counters on the mcf WEC-8
// configuration. In a WEC every speculative fill carries the wrong flag, so:
//
//   - every "useful" classification is a correct-path side hit on a
//     wrong-fetched block: Useful == WrongUseful;
//   - every issued prefetch either becomes its own speculative fill or is
//     merged into by a demand (late): SpecFills.Prefetch + Late.Prefetch ==
//     PrefIssued;
//   - every side-buffer insert is a speculative fill or a victim capture:
//     SpecFills + VictimInserts == WECInserts.
func TestAttribReconcilesMcfWEC(t *testing.T) {
	r := NewRunner(1)
	r.Attrib = true
	cfg := new(cfgset).at8(config.WTHWPWEC, nil)
	res, err := r.Result("mcf", cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.AttribReport("mcf", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CheckInternal(); err != nil {
		t.Fatal(err)
	}
	s := &res.Stats
	if rep.SpecFills.Total() == 0 || rep.Useful.Total() == 0 {
		t.Fatalf("degenerate run: spec=%+v useful=%+v", rep.SpecFills, rep.Useful)
	}
	if got, want := rep.Useful.Total(), s.WrongUseful; got != want {
		t.Errorf("useful %d != WrongUseful %d", got, want)
	}
	if got, want := rep.SpecFills.Prefetch+rep.Late.Prefetch, s.PrefIssued; got != want {
		t.Errorf("prefetch fills %d + late %d != PrefIssued %d",
			rep.SpecFills.Prefetch, rep.Late.Prefetch, want)
	}
	if got, want := rep.SpecFills.Total()+rep.VictimInserts, s.WECInserts; got != want {
		t.Errorf("spec fills %d + victim inserts %d != WECInserts %d",
			rep.SpecFills.Total(), rep.VictimInserts, want)
	}
	if rep.Cycles != s.Cycles {
		t.Errorf("report cycles %d != run cycles %d", rep.Cycles, s.Cycles)
	}
}

// TestAttribRerunOnCachedResult: a result memoized without attribution is
// re-simulated when its report is first requested, deterministically.
func TestAttribRerunOnCachedResult(t *testing.T) {
	r := NewRunner(1)
	cfg := config.Main(2)
	res1, err := r.Result("gzip", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AttribReport("gzip", cfg); err == nil {
		t.Fatal("report produced with attribution disabled")
	}
	r.Attrib = true
	rep, err := r.AttribReport("gzip", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Cycles != res1.Stats.Cycles {
		t.Fatalf("re-simulated run diverged: report %+v vs %d cycles", rep, res1.Stats.Cycles)
	}
	res2, err := r.Result("gzip", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Cycles != res1.Stats.Cycles {
		t.Errorf("cycles changed across rerun: %d vs %d", res2.Stats.Cycles, res1.Stats.Cycles)
	}
}

// TestGainDecomposition runs the gain experiment end to end and checks the
// table's shape and that attribution state was restored on the runner.
func TestGainDecomposition(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full benchmark suite")
	}
	r := NewRunner(1)
	tbl, err := gainDecomp(r)
	if err != nil {
		t.Fatal(err)
	}
	if r.Attrib {
		t.Error("gainDecomp leaked Attrib=true on the runner")
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4:\n%s", len(tbl.Rows), tbl.String())
	}
	out := tbl.String()
	for _, want := range []string{"wth-wp-wec", "vc", "nlp", "useful", "polluting", "victim hits"} {
		if !strings.Contains(out, want) {
			t.Errorf("gain table missing %q:\n%s", want, out)
		}
	}
	// The victim-cache row must attribute its benefit to victim hits, not
	// to speculative fills (it has none).
	for _, row := range tbl.Rows {
		if row[0] == "vc" && row[2] != "0" {
			t.Errorf("vc row reports speculative fills: %v", row)
		}
	}
}
