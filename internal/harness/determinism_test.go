package harness

import (
	"testing"

	"repro/internal/attrib"
	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/sta"
	"repro/internal/workload"
)

// runOnce builds a fresh machine for prog and runs it, optionally with
// metrics and attribution collectors attached, bypassing the Runner's
// memoization so repeated runs really repeat the simulation.
func runOnce(t *testing.T, cfg sta.Config, w *workload.Workload, collect bool) *sta.Result {
	t.Helper()
	p, err := w.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sta.New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if collect {
		m.Metrics = metrics.NewCollector(1000)
		m.Attrib = attrib.NewCollector()
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestSimulationDeterminism pins the repeatability contract the whole
// perf-regression net rests on: for every benchmark and for both the orig
// and wth-wp-wec machines, two fresh simulations produce bit-identical
// cycle counts and stats.Sim — and attaching the metrics + attribution
// collectors must not perturb a single counter (collector-identical
// streams). Any map-iteration-order or pointer-identity dependence in the
// hot loops shows up here as a diff.
func TestSimulationDeterminism(t *testing.T) {
	benches := Benches()
	if testing.Short() || raceMode {
		benches = benches[:2]
	}
	for _, w := range benches {
		for _, name := range []config.Name{config.Orig, config.WTHWPWEC} {
			cfg := config.Main(8)
			if err := config.Apply(name, &cfg); err != nil {
				t.Fatal(err)
			}
			bare1 := runOnce(t, cfg, w, false)
			bare2 := runOnce(t, cfg, w, false)
			col1 := runOnce(t, cfg, w, true)
			col2 := runOnce(t, cfg, w, true)
			for i, r := range []*sta.Result{bare2, col1, col2} {
				if r.Stats != bare1.Stats {
					t.Errorf("%s/%s run %d: stats diverge\nfirst: %+v\n this: %+v",
						w.Name, name, i+2, bare1.Stats, r.Stats)
				}
				if r.Stats.Cycles != bare1.Stats.Cycles {
					t.Errorf("%s/%s run %d: %d cycles vs %d",
						w.Name, name, i+2, r.Stats.Cycles, bare1.Stats.Cycles)
				}
				if r.MemCheck != bare1.MemCheck || r.IntRegs != bare1.IntRegs {
					t.Errorf("%s/%s run %d: architectural state diverges", w.Name, name, i+2)
				}
			}
		}
	}
}
