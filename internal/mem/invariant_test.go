package mem

import (
	"math/rand"
	"testing"

	"repro/internal/attrib"
)

// driveRandom throws a random mix of correct/wrong loads and stores at a
// hierarchy and checks structural invariants after every cycle:
//
//  1. a block is never valid in both the L1 and the side buffer (the
//     paper's swap keeps them exclusive);
//  2. the side buffer never exceeds its entry count;
//  3. every issued request eventually completes with a plausible latency.
//
// An attribution collector rides along; after the run the cross-counter
// invariants between the DUnit statistics and the attribution report are
// asserted (see checkCounterInvariants).
func driveRandom(t *testing.T, cfg Config, seed int64, steps int) {
	t.Helper()
	h, err := NewHierarchy(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ac := attrib.NewCollector()
	h.SetAttrib(ac)
	rng := rand.New(rand.NewSource(seed))
	type pending struct {
		req    *Request
		issued uint64
	}
	var outstanding []pending
	var cyc uint64
	for step := 0; step < steps; step++ {
		h.BeginCycle(cyc)
		for tu := 0; tu < 2; tu++ {
			d := h.DUnit(tu)
			for d.CanAccept() && rng.Intn(2) == 0 {
				addr := uint64(rng.Intn(64)) * 64 * uint64(1+rng.Intn(3))
				kind := Load
				if rng.Intn(4) == 0 {
					kind = Store
				}
				src := SrcDemand
				switch rng.Intn(6) {
				case 0:
					src = SrcWrongPath
				case 1:
					src = SrcWrongThread
				}
				if kind == Store {
					src = SrcDemand
				}
				req := d.Access(cyc, addr, kind, src, rng.Intn(32))
				outstanding = append(outstanding, pending{req, cyc})
			}
		}
		h.Tick(cyc)
		// Invariants.
		for tu := 0; tu < 2; tu++ {
			d := h.DUnit(tu)
			if d.Side() == nil {
				continue
			}
			inL1 := map[uint64]bool{}
			for _, b := range d.L1().ResidentBlocks() {
				inL1[b] = true
			}
			res := d.Side().ResidentBlocks()
			if len(res) > d.Side().Blocks() {
				t.Fatalf("cycle %d: side buffer overfull (%d)", cyc, len(res))
			}
			if cfg.Side == SideWEC || cfg.Side == SideVC {
				for _, b := range res {
					if inL1[b] {
						t.Fatalf("cycle %d tu%d: block %#x in both L1 and side buffer", cyc, tu, b)
					}
				}
			}
		}
		cyc++
	}
	// Drain and check completions.
	for i := 0; i < 1000; i++ {
		h.BeginCycle(cyc)
		h.Tick(cyc)
		cyc++
	}
	for _, p := range outstanding {
		if !p.req.Done {
			t.Fatalf("request for %#x issued at %d never completed", p.req.Addr, p.issued)
		}
		lat := p.req.DoneCycle - p.issued
		if lat > uint64(2*cfg.MemLat) {
			t.Errorf("request for %#x took %d cycles (> 2x MemLat)", p.req.Addr, lat)
		}
	}
	for tu := 0; tu < 2; tu++ {
		checkCounterInvariants(t, h.DUnit(tu))
	}
	rep := ac.Report(cyc)
	if err := rep.CheckInternal(); err != nil {
		t.Errorf("attribution accounting broken: %v", err)
	}
}

// checkCounterInvariants asserts the cross-counter relations that must hold
// for any access mix on any configuration.
func checkCounterInvariants(t *testing.T, d *DUnit) {
	t.Helper()
	if d.WrongUseful > d.SideHits {
		t.Errorf("WrongUseful %d > SideHits %d", d.WrongUseful, d.SideHits)
	}
	if d.PrefUseful > d.PrefIssued {
		t.Errorf("PrefUseful %d > PrefIssued %d", d.PrefUseful, d.PrefIssued)
	}
	if d.SideInserts < d.WrongUseful {
		t.Errorf("SideInserts %d < WrongUseful %d (side hits on wrong-fetched blocks)",
			d.SideInserts, d.WrongUseful)
	}
	if d.Misses > d.Accesses {
		t.Errorf("Misses %d > Accesses %d", d.Misses, d.Accesses)
	}
	if d.SideHits > d.Accesses-d.Misses {
		t.Errorf("SideHits %d > hits %d", d.SideHits, d.Accesses-d.Misses)
	}
	if d.Traffic != d.Accesses+d.WrongAcc {
		t.Errorf("Traffic %d != Accesses %d + WrongAcc %d", d.Traffic, d.Accesses, d.WrongAcc)
	}
}

func TestRandomInvariantsWEC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Side = SideWEC
	cfg.L1DSize = 1024 // tiny L1 so evictions and swaps are constant
	for seed := int64(0); seed < 6; seed++ {
		driveRandom(t, cfg, seed, 3000)
	}
}

func TestRandomInvariantsVC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Side = SideVC
	cfg.L1DSize = 1024
	driveRandom(t, cfg, 42, 3000)
}

func TestRandomInvariantsPB(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Side = SidePB
	cfg.NextLinePrefetch = true
	cfg.L1DSize = 1024
	driveRandom(t, cfg, 43, 3000)
}

func TestRandomInvariantsPolluting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WrongFillsToL1 = true
	cfg.L1DSize = 1024
	driveRandom(t, cfg, 44, 3000)
}

func TestRandomInvariantsAblations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Side = SideWEC
	cfg.WECNoVictim = true
	cfg.L1DSize = 1024
	driveRandom(t, cfg, 45, 2000)
	cfg.WECNoVictim = false
	cfg.WECNoNextLine = true
	driveRandom(t, cfg, 46, 2000)
}

// TestWECAblationKnobs verifies each knob's direct behavioural effect.
func TestWECAblationKnobs(t *testing.T) {
	mk := func(mut func(*Config)) (*Hierarchy, *DUnit) {
		cfg := DefaultConfig()
		cfg.Side = SideWEC
		if mut != nil {
			mut(&cfg)
		}
		h, err := NewHierarchy(1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h, h.DUnit(0)
	}
	fill := func(h *Hierarchy, d *DUnit, addr uint64, src Source) {
		var cyc uint64
		h.BeginCycle(cyc)
		r := d.Access(cyc, addr, Load, src, -1)
		h.Tick(cyc)
		cyc++
		for i := 0; i < 400 && !r.Done; i++ {
			h.BeginCycle(cyc)
			h.Tick(cyc)
			cyc++
		}
	}
	// WECNoVictim: an L1 eviction must not enter the WEC.
	h, d := mk(func(c *Config) { c.WECNoVictim = true })
	fill(h, d, 0x1000, SrcDemand)
	fill(h, d, 0x1000+8192, SrcDemand) // conflicts in the 8KB DM L1
	if d.Side().Probe(0x1000) {
		t.Error("WECNoVictim: victim entered the WEC")
	}
	// WECNoNextLine: a correct hit on a wrong block must not prefetch.
	h, d = mk(func(c *Config) { c.WECNoNextLine = true })
	fill(h, d, 0x2000, SrcWrongPath) // wrong fill into WEC
	h.BeginCycle(10_000)
	d.Access(10_000, 0x2000, Load, SrcDemand, -1) // correct hit in WEC
	h.Tick(10_000)
	if d.PrefIssued != 0 {
		t.Errorf("WECNoNextLine: %d prefetches issued", d.PrefIssued)
	}
}
