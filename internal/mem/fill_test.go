package mem

import (
	"testing"

	"repro/internal/attrib"
)

// The tests below pin down the DUnit.fill routing matrix: where a completed
// miss lands (L1, side buffer, or dropped) for demand, wrong-execution, and
// prefetch-only fills under each side-buffer kind and the WrongFillsToL1
// knob — and how the attribution layer classifies each outcome.

// fillRig is one 1-TU hierarchy with an attached attribution collector.
type fillRig struct {
	t   *testing.T
	h   *Hierarchy
	d   *DUnit
	ac  *attrib.Collector
	cyc uint64
}

func newFillRig(t *testing.T, mut func(*Config)) *fillRig {
	t.Helper()
	cfg := DefaultConfig()
	cfg.L1DSize = 1024 // 16 direct-mapped blocks: conflicts on demand
	if mut != nil {
		mut(&cfg)
	}
	h, err := NewHierarchy(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ac := attrib.NewCollector()
	h.SetAttrib(ac)
	return &fillRig{t: t, h: h, d: h.DUnit(0), ac: ac}
}

// access issues one access and runs the hierarchy until it completes.
func (r *fillRig) access(addr uint64, kind AccessKind, src Source, pc int) *Request {
	r.t.Helper()
	r.h.BeginCycle(r.cyc)
	req := r.d.Access(r.cyc, addr, kind, src, pc)
	r.h.Tick(r.cyc)
	r.cyc++
	for i := 0; i < 600 && !req.Done; i++ {
		r.h.BeginCycle(r.cyc)
		r.h.Tick(r.cyc)
		r.cyc++
	}
	if !req.Done {
		r.t.Fatalf("access to %#x never completed", addr)
	}
	return req
}

// drain runs n idle cycles (lets prefetch fills land).
func (r *fillRig) drain(n int) {
	for i := 0; i < n; i++ {
		r.h.BeginCycle(r.cyc)
		r.h.Tick(r.cyc)
		r.cyc++
	}
}

func (r *fillRig) report() *attrib.Report {
	r.t.Helper()
	rep := r.ac.Report(r.cyc)
	if err := rep.CheckInternal(); err != nil {
		r.t.Fatal(err)
	}
	return rep
}

func TestFillDemand(t *testing.T) {
	for _, side := range []SideBufKind{SideNone, SideWEC, SideVC, SidePB} {
		r := newFillRig(t, func(c *Config) { c.Side = side })
		r.access(0x1000, Load, SrcDemand, 3)
		if !r.d.L1().Probe(0x1000) {
			t.Errorf("side=%v: demand fill not in L1", side)
		}
		rep := r.report()
		if rep.DemandFills != 1 || rep.SpecFills.Total() != 0 {
			t.Errorf("side=%v: demand=%d spec=%+v", side, rep.DemandFills, rep.SpecFills)
		}
	}
}

func TestFillDemandVictimCapture(t *testing.T) {
	// A demand fill's L1 victim is captured by the WEC and VC, but not by
	// the PB or a WEC with the victim role ablated.
	cases := []struct {
		name     string
		mut      func(*Config)
		captured bool
	}{
		{"wec", func(c *Config) { c.Side = SideWEC }, true},
		{"vc", func(c *Config) { c.Side = SideVC }, true},
		{"pb", func(c *Config) { c.Side = SidePB }, false},
		{"wec-novictim", func(c *Config) { c.Side = SideWEC; c.WECNoVictim = true }, false},
		{"none", nil, false},
	}
	for _, tc := range cases {
		r := newFillRig(t, tc.mut)
		r.access(0x0, Load, SrcDemand, 3)
		r.access(0x400, Load, SrcDemand, 4) // conflicts in the 1KB DM L1
		got := r.d.Side() != nil && r.d.Side().Probe(0x0)
		if got != tc.captured {
			t.Errorf("%s: victim captured = %v, want %v", tc.name, got, tc.captured)
		}
		rep := r.report()
		if wantV := uint64(0); tc.captured {
			wantV = 1
			if rep.VictimInserts != wantV {
				t.Errorf("%s: victim inserts = %d", tc.name, rep.VictimInserts)
			}
		}
	}
}

func TestFillWrongRouting(t *testing.T) {
	// Where a wrong-execution fill lands, per configuration.
	cases := []struct {
		name           string
		mut            func(*Config)
		inL1, inSide   bool
		origin         string // expected nonzero spec origin, "" = dropped
	}{
		{"wec", func(c *Config) { c.Side = SideWEC }, false, true, "wrong_path"},
		{"pb", func(c *Config) { c.Side = SidePB }, false, true, "wrong_path"},
		{"vc", func(c *Config) { c.Side = SideVC }, false, false, ""},
		{"none", nil, false, false, ""},
		{"none-fills-l1", func(c *Config) { c.WrongFillsToL1 = true }, true, false, "wrong_path"},
		{"vc-fills-l1", func(c *Config) { c.Side = SideVC; c.WrongFillsToL1 = true }, true, false, "wrong_path"},
	}
	for _, tc := range cases {
		r := newFillRig(t, tc.mut)
		r.access(0x2000, Load, SrcWrongPath, 7)
		if got := r.d.L1().Probe(0x2000); got != tc.inL1 {
			t.Errorf("%s: in L1 = %v, want %v", tc.name, got, tc.inL1)
		}
		if got := r.d.Side() != nil && r.d.Side().Probe(0x2000); got != tc.inSide {
			t.Errorf("%s: in side = %v, want %v", tc.name, got, tc.inSide)
		}
		rep := r.report()
		if tc.origin == "" {
			if rep.SpecFills.Total() != 0 {
				t.Errorf("%s: dropped fill recorded: %+v", tc.name, rep.SpecFills)
			}
		} else if rep.SpecFills.WrongPath != 1 {
			t.Errorf("%s: spec fills = %+v", tc.name, rep.SpecFills)
		}
	}
}

func TestFillWrongThenUseful(t *testing.T) {
	// A correct-path touch of a wrong-fetched WEC block: WrongUseful and the
	// attribution's useful classification must agree.
	r := newFillRig(t, func(c *Config) { c.Side = SideWEC })
	r.access(0x2000, Load, SrcWrongThread, 7)
	r.access(0x2000, Load, SrcDemand, 3)
	if r.d.WrongUseful != 1 {
		t.Errorf("WrongUseful = %d", r.d.WrongUseful)
	}
	if !r.d.L1().Probe(0x2000) { // promoted by the swap
		t.Error("touched block not promoted to L1")
	}
	rep := r.report()
	if rep.Useful.WrongThread != 1 || rep.Useless.Total() != 0 {
		t.Errorf("useful=%+v useless=%+v", rep.Useful, rep.Useless)
	}
}

func TestFillWrongEvictedUseless(t *testing.T) {
	// Wrong fills evicted from a 2-entry WEC untouched are useless.
	r := newFillRig(t, func(c *Config) {
		c.Side = SideWEC
		c.SideEntries = 2
	})
	for i := 0; i < 3; i++ {
		r.access(0x2000+uint64(i)*64, Load, SrcWrongPath, 7)
	}
	rep := r.report()
	if rep.Useless.WrongPath != 1 || rep.Resident.WrongPath != 2 {
		t.Errorf("useless=%+v resident=%+v", rep.Useless, rep.Resident)
	}
}

func TestFillPolluting(t *testing.T) {
	// WrongFillsToL1: a wrong fill displaces a correct-path block from the
	// direct-mapped L1; the prompt re-miss is attributed as pollution.
	r := newFillRig(t, func(c *Config) { c.WrongFillsToL1 = true })
	r.access(0x0, Load, SrcDemand, 3)
	r.access(0x400, Load, SrcWrongPath, 7) // same L1 set
	if r.d.L1().Probe(0x0) {
		t.Fatal("wrong fill did not displace the demand block")
	}
	r.access(0x0, Load, SrcDemand, 3)
	rep := r.report()
	if rep.PollutionEvictions.WrongPath != 1 || rep.Polluting.WrongPath != 1 {
		t.Errorf("evictions=%+v polluting=%+v", rep.PollutionEvictions, rep.Polluting)
	}
}

func TestFillPrefetchOnly(t *testing.T) {
	// nlp: a demand miss issues a tagged next-line prefetch whose fill goes
	// to the prefetch buffer; the later demand touch makes it useful.
	r := newFillRig(t, func(c *Config) {
		c.Side = SidePB
		c.NextLinePrefetch = true
	})
	r.access(0x1000, Load, SrcDemand, 3)
	r.drain(400) // let the prefetch fill land
	if r.d.PrefIssued != 1 {
		t.Fatalf("PrefIssued = %d", r.d.PrefIssued)
	}
	if !r.d.Side().Probe(0x1040) {
		t.Fatal("prefetched block not in the PB")
	}
	rep := r.report()
	if rep.SpecFills.Prefetch != 1 {
		t.Fatalf("spec fills = %+v", rep.SpecFills)
	}
	// The touch: pulls the block into L1 and counts PrefUseful; the next
	// line is prefetched in turn (tagged prefetch chaining).
	r.access(0x1040, Load, SrcDemand, 4)
	if r.d.PrefUseful != 1 {
		t.Errorf("PrefUseful = %d", r.d.PrefUseful)
	}
	if rep := r.ac.Report(r.cyc); rep.Useful.Prefetch != 1 {
		t.Errorf("useful = %+v", rep.Useful)
	}
}

func TestFillWECNextLinePrefetch(t *testing.T) {
	// WEC: a correct hit on a wrong-fetched block prefetches the next line
	// into the WEC, marked wrong so chaining continues (§3.2.1).
	r := newFillRig(t, func(c *Config) { c.Side = SideWEC })
	r.access(0x2000, Load, SrcWrongPath, 7)
	r.access(0x2000, Load, SrcDemand, 3) // WEC hit -> next-line prefetch
	r.drain(400)
	if r.d.PrefIssued != 1 {
		t.Fatalf("PrefIssued = %d", r.d.PrefIssued)
	}
	if !r.d.Side().Probe(0x2040) {
		t.Fatal("next-line block not in the WEC")
	}
	rep := r.report()
	if rep.SpecFills.Prefetch != 1 || rep.SpecFills.WrongPath != 1 {
		t.Errorf("spec fills = %+v", rep.SpecFills)
	}
}

func TestFillLateMerge(t *testing.T) {
	// A wrong-path load opens the MSHR entry; a correct demand to the same
	// block merges into it before the fill: classified late, and the fill
	// itself lands in the L1 as a demand fill.
	r := newFillRig(t, func(c *Config) { c.Side = SideWEC })
	r.h.BeginCycle(r.cyc)
	wrong := r.d.Access(r.cyc, 0x3000, Load, SrcWrongPath, 7)
	r.h.Tick(r.cyc)
	r.cyc++
	r.h.BeginCycle(r.cyc)
	demand := r.d.Access(r.cyc, 0x3000, Load, SrcDemand, 3)
	r.h.Tick(r.cyc)
	r.cyc++
	for i := 0; i < 600 && !(wrong.Done && demand.Done); i++ {
		r.h.BeginCycle(r.cyc)
		r.h.Tick(r.cyc)
		r.cyc++
	}
	if !wrong.Done || !demand.Done {
		t.Fatal("merged requests never completed")
	}
	if !r.d.L1().Probe(0x3000) {
		t.Error("late fill not in L1")
	}
	if r.d.Side().Probe(0x3000) {
		t.Error("late fill duplicated into the WEC")
	}
	rep := r.report()
	if rep.Late.WrongPath != 1 || rep.SpecFills.Total() != 0 || rep.DemandFills != 1 {
		t.Errorf("late=%+v spec=%+v demand=%d", rep.Late, rep.SpecFills, rep.DemandFills)
	}
}
