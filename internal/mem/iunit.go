package mem

import "repro/internal/cache"

// IUnit is one thread unit's instruction-fetch port: a private L1
// instruction cache backed by the shared L2. Fetch is modeled at block
// granularity: the core asks whether the block containing a PC is resident;
// a miss starts a fill and the core stalls until it lands. One outstanding
// instruction miss per unit, which matches an in-order front end.
type IUnit struct {
	h   *Hierarchy
	tu  int
	cfg Config
	l1i *cache.Cache

	pending      bool
	pendingBlock uint64

	// Statistics.
	Fetches uint64
	Misses  uint64
}

// init prepares a zero-valued instruction unit in place (IUnits live in
// the hierarchy's value slice).
func (iu *IUnit) init(h *Hierarchy, tu int, cfg Config) error {
	l1i, err := cache.New(cache.Params{
		SizeBytes: cfg.L1ISize, Assoc: cfg.L1IAssoc, BlockBytes: cfg.L1IBlock,
	})
	if err != nil {
		return err
	}
	*iu = IUnit{h: h, tu: tu, cfg: cfg, l1i: l1i}
	return nil
}

// instAddr maps an instruction index to its simulated byte address in the
// code region of the shared address space.
func instAddr(pc int) uint64 { return instBase + uint64(pc)*16 }

// FetchReady reports whether the block holding pc is in the I-cache. On a
// miss it starts the fill (if none is outstanding) and returns false; the
// core should retry each cycle until the fill lands.
func (iu *IUnit) FetchReady(cycle uint64, pc int) bool {
	addr := instAddr(pc)
	block := iu.l1i.BlockAddr(addr)
	if iu.pending {
		return false
	}
	iu.Fetches++
	if _, hit := iu.l1i.Access(addr, false); hit {
		return true
	}
	iu.Misses++
	iu.pending = true
	iu.pendingBlock = block
	iu.h.toL2(cycle, iu.tu, true, block)
	return false
}

// fill receives the missing instruction block from the L2.
func (iu *IUnit) fill(block uint64) {
	iu.l1i.Insert(block, 0, false)
	if iu.pending && block == iu.pendingBlock {
		iu.pending = false
	}
}

// Reset restores power-on state.
func (iu *IUnit) Reset() {
	iu.l1i.Reset()
	iu.pending = false
	iu.Fetches, iu.Misses = 0, 0
}
