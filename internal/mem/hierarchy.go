package mem

import (
	"repro/internal/attrib"
	"repro/internal/cache"
	"repro/internal/chaos"
	"repro/internal/metrics"
)

// instBase places instruction addresses in a disjoint region of the shared
// L2's address space so code and data never alias.
const instBase = uint64(1) << 40

// Hierarchy owns the shared portion of the memory system (unified L2 and
// DRAM) and the per-thread-unit L1 units. Drive it with BeginCycle at the
// top of every simulated cycle and Tick at the bottom.
type Hierarchy struct {
	cfg    Config
	l2     *cache.Cache
	l2MSHR *cache.MSHRFile

	// Per-TU units and effect queues live inline, indexed by TU id: the
	// per-cycle sweeps (BeginCycle, SequentialUpdate, warming) touch every
	// unit, and value slices keep them contiguous instead of one pointer
	// dereference per TU. Sized once at NewHierarchy and never reallocated
	// — DUnit/IUnit hand out &dunits[i]/&iunits[i] pointers that must stay
	// valid for the hierarchy's lifetime.
	dunits []DUnit
	iunits []IUnit

	// l2Queue is a ring: l2qHead indexes the front, new requests append.
	// The backing array is reused once the queue drains.
	l2Queue []l2Req
	l2qHead int
	fills   []fill  // binary min-heap ordered by at
	def     []tuDef // per-TU deferred-effect queues (parallel stepping)
	cycle   uint64
	chaos   *chaos.Injector

	// Statistics.
	L2Accesses uint64
	L2Misses   uint64
	DRAMFills  uint64
	Writebacks uint64
	UpdateBus  uint64 // sequential-mode coherence bus transactions
}

type l2Req struct {
	block uint64 // L1-block-aligned address (instBase-tagged for code)
	ready uint64
	tu    int
	isI   bool
}

type fill struct {
	at    uint64
	block uint64
	tu    int
	isI   bool
}

// pushFill inserts a fill into the min-heap. Hand-written sift-up (same
// algorithm and tie-breaking as container/heap) so pushing a fill does not
// box the value into an interface and allocate.
func (h *Hierarchy) pushFill(f fill) {
	h.fills = append(h.fills, f)
	j := len(h.fills) - 1
	for j > 0 {
		i := (j - 1) / 2
		if h.fills[i].at <= h.fills[j].at {
			break
		}
		h.fills[i], h.fills[j] = h.fills[j], h.fills[i]
		j = i
	}
}

// popFill removes and returns the earliest fill (container/heap's sift-down
// order, so delivery order of same-cycle fills is unchanged).
func (h *Hierarchy) popFill() fill {
	fs := h.fills
	n := len(fs) - 1
	fs[0], fs[n] = fs[n], fs[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && fs[j2].at < fs[j].at {
			j = j2
		}
		if fs[j].at >= fs[i].at {
			break
		}
		fs[i], fs[j] = fs[j], fs[i]
		i = j
	}
	v := fs[n]
	h.fills = fs[:n]
	return v
}

// NewHierarchy builds the memory system for nTU thread units.
func NewHierarchy(nTU int, cfg Config) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l2, err := cache.New(cache.Params{
		SizeBytes: cfg.L2Size, Assoc: cfg.L2Assoc, BlockBytes: cfg.L2Block,
	})
	if err != nil {
		return nil, err
	}
	h := &Hierarchy{
		cfg:    cfg,
		l2:     l2,
		l2MSHR: cache.NewMSHRFile(cfg.L2MSHRs),
	}
	h.dunits = make([]DUnit, nTU)
	h.iunits = make([]IUnit, nTU)
	h.def = make([]tuDef, nTU)
	for tu := 0; tu < nTU; tu++ {
		if err := h.dunits[tu].init(h, tu, cfg); err != nil {
			return nil, err
		}
		if err := h.iunits[tu].init(h, tu, cfg); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// DUnit returns thread unit tu's data port.
func (h *Hierarchy) DUnit(tu int) *DUnit { return &h.dunits[tu] }

// IUnit returns thread unit tu's instruction port.
func (h *Hierarchy) IUnit(tu int) *IUnit { return &h.iunits[tu] }

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// L2 exposes the shared cache for tests.
func (h *Hierarchy) L2() *cache.Cache { return h.l2 }

// SetMetrics attaches an observability collector to every data unit.
func (h *Hierarchy) SetMetrics(c *metrics.Collector) {
	for i := range h.dunits {
		h.dunits[i].SetMetrics(c)
	}
}

// SetAttrib attaches an attribution collector to every data unit.
func (h *Hierarchy) SetAttrib(a *attrib.Collector) {
	for i := range h.dunits {
		h.dunits[i].SetAttrib(a)
	}
}

// SetChaos attaches (or detaches, with nil) a fault injector; its
// slow-cycle point fires inside Tick.
func (h *Hierarchy) SetChaos(in *chaos.Injector) { h.chaos = in }

// BeginCycle resets per-cycle port state; call before stepping the cores.
func (h *Hierarchy) BeginCycle(cycle uint64) {
	h.cycle = cycle
	for i := range h.dunits {
		h.dunits[i].beginCycle()
	}
}

// toL2 enqueues a fill request for an L1 block. During a parallel compute
// phase the request is captured into the TU's effect queue instead, and
// joins the shared FIFO at commit time in TU-ID order.
func (h *Hierarchy) toL2(cycle uint64, tu int, isI bool, block uint64) {
	if q := &h.def[tu]; q.active {
		q.push(defEffect{kind: efToL2, cycle: cycle, a: block, flag: isI})
		return
	}
	h.l2Queue = append(h.l2Queue, l2Req{block: block, ready: cycle + 1, tu: tu, isI: isI})
}

// writeback models a dirty eviction below the L1s. Writebacks consume L2
// bandwidth statistics but, as in sim-outorder, do not delay demand fills.
func (h *Hierarchy) writeback(tu int, cycle uint64, block uint64) {
	if q := &h.def[tu]; q.active {
		q.push(defEffect{kind: efWriteback, cycle: cycle, a: block})
		return
	}
	h.Writebacks++
	h.l2.Insert(block, 0, true)
}

// SequentialUpdate propagates a store executed during sequential execution
// to every other (idle) thread unit's private caches via the shared bus
// update protocol of §3.2.2. It adds bus traffic but no stall cycles.
func (h *Hierarchy) SequentialUpdate(srcTU int, addr uint64) {
	for tu := range h.dunits {
		if tu == srcTU {
			continue
		}
		if h.dunits[tu].applyUpdate(addr) {
			h.UpdateBus++
		}
	}
}

// Tick advances the shared levels by one cycle: the L2 accepts one request,
// DRAM completions fill the L2, and finished fills are delivered to the L1
// units. Call after stepping the cores each cycle.
func (h *Hierarchy) Tick(cycle uint64) {
	if h.chaos != nil {
		h.chaos.SlowCycle()
	}
	// L2 accepts one request per cycle, FIFO.
	if h.l2qHead < len(h.l2Queue) && h.l2Queue[h.l2qHead].ready <= cycle {
		req := h.l2Queue[h.l2qHead]
		h.l2qHead++
		if h.l2qHead == len(h.l2Queue) {
			// Drained: reuse the backing array from the start.
			h.l2Queue = h.l2Queue[:0]
			h.l2qHead = 0
		} else if h.l2qHead >= 64 {
			// Compact occasionally so a long-lived queue can't grow without
			// bound behind a stale head region.
			n := copy(h.l2Queue, h.l2Queue[h.l2qHead:])
			h.l2Queue = h.l2Queue[:n]
			h.l2qHead = 0
		}
		h.serviceL2(cycle, req)
	}
	// Deliver due fills.
	for len(h.fills) > 0 && h.fills[0].at <= cycle {
		f := h.popFill()
		switch {
		case f.tu < 0:
			h.completeDRAM(f.at, f.block)
		case f.isI:
			h.iunits[f.tu].fill(f.block)
		default:
			h.dunits[f.tu].fill(f.block, f.at)
		}
	}
}

// NextWake returns the earliest future cycle at which Tick could have any
// effect: the front L2 queue entry becoming ready or the earliest pending
// fill. neverWake when both are empty.
func (h *Hierarchy) NextWake(cycle uint64) uint64 {
	w := uint64(neverWake)
	if h.l2qHead < len(h.l2Queue) {
		w = h.l2Queue[h.l2qHead].ready
	}
	if len(h.fills) > 0 && h.fills[0].at < w {
		w = h.fills[0].at
	}
	if w != neverWake && w <= cycle {
		w = cycle + 1
	}
	return w
}

// serviceL2 performs one L2 lookup for an L1 miss.
func (h *Hierarchy) serviceL2(cycle uint64, req l2Req) {
	h.L2Accesses++
	l2block := h.l2.BlockAddr(req.block)
	if _, hit := h.l2.Access(l2block, false); hit {
		h.pushFill(fill{
			at:    cycle + uint64(h.cfg.L2HitLat) - 1,
			block: req.block,
			tu:    req.tu,
			isI:   req.isI,
		})
		return
	}
	h.L2Misses++
	// Encode the waiting L1 request into an opaque MSHR token:
	// block<<7 | isI<<6 | tu. Block addresses stay below 2^41 (instBase is
	// 1<<40) and nTU below 64, so the token fits an int64 losslessly.
	tok := int64(req.block)<<7 | int64(req.tu)
	if req.isI {
		tok |= 1 << 6
	}
	allocated, ok := h.l2MSHR.Add(l2block, tok)
	if !ok {
		// L2 MSHRs exhausted: service without merging at full latency.
		h.pushFill(fill{
			at:    cycle + uint64(h.cfg.MemLat) - 1,
			block: req.block,
			tu:    req.tu,
			isI:   req.isI,
		})
		h.DRAMFills++
		return
	}
	if allocated {
		// DRAM completes the L2 fill; waiters are released then.
		h.pushFill(fill{
			at:    cycle + uint64(h.cfg.MemLat) - uint64(h.cfg.L2HitLat) - 1,
			block: l2block,
			tu:    -1, // sentinel: DRAM->L2 fill
		})
	}
}

// completeDRAM is invoked via the fill heap sentinel (tu == -1): the L2
// block arrives from memory, is inserted into the L2, and all merged L1
// waiters receive their fills after the L2 pass-through latency.
func (h *Hierarchy) completeDRAM(cycle uint64, l2block uint64) {
	h.DRAMFills++
	victim := h.l2.Insert(l2block, 0, false)
	_ = victim // L2 victims write back to DRAM; no further state to model.
	for _, tok := range h.l2MSHR.Complete(l2block) {
		h.pushFill(fill{
			at:    cycle + uint64(h.cfg.L2HitLat),
			block: uint64(tok) >> 7,
			tu:    int(tok & 63),
			isI:   tok&(1<<6) != 0,
		})
	}
}

// Reset restores the hierarchy to power-on state.
func (h *Hierarchy) Reset() {
	h.l2.Reset()
	h.l2MSHR.Reset()
	for i := range h.dunits {
		h.dunits[i].Reset()
	}
	for i := range h.iunits {
		h.iunits[i].Reset()
	}
	h.l2Queue, h.l2qHead = nil, 0
	h.fills = nil
	for i := range h.def {
		h.def[i] = tuDef{}
	}
	h.L2Accesses, h.L2Misses, h.DRAMFills, h.Writebacks, h.UpdateBus = 0, 0, 0, 0, 0
}
