package mem

import (
	"container/heap"

	"repro/internal/attrib"
	"repro/internal/cache"
	"repro/internal/metrics"
)

// instBase places instruction addresses in a disjoint region of the shared
// L2's address space so code and data never alias.
const instBase = uint64(1) << 40

// Hierarchy owns the shared portion of the memory system (unified L2 and
// DRAM) and the per-thread-unit L1 units. Drive it with BeginCycle at the
// top of every simulated cycle and Tick at the bottom.
type Hierarchy struct {
	cfg    Config
	l2     *cache.Cache
	l2MSHR *cache.MSHRFile
	dunits []*DUnit
	iunits []*IUnit

	l2Queue []l2Req
	fills   fillHeap
	nextID  int64
	cycle   uint64

	// Statistics.
	L2Accesses uint64
	L2Misses   uint64
	DRAMFills  uint64
	Writebacks uint64
	UpdateBus  uint64 // sequential-mode coherence bus transactions
}

type l2Req struct {
	block uint64 // L1-block-aligned address (instBase-tagged for code)
	ready uint64
	tu    int
	isI   bool
}

type fill struct {
	at    uint64
	block uint64
	tu    int
	isI   bool
}

type fillHeap []fill

func (h fillHeap) Len() int           { return len(h) }
func (h fillHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h fillHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *fillHeap) Push(x any)        { *h = append(*h, x.(fill)) }
func (h *fillHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// NewHierarchy builds the memory system for nTU thread units.
func NewHierarchy(nTU int, cfg Config) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l2, err := cache.New(cache.Params{
		SizeBytes: cfg.L2Size, Assoc: cfg.L2Assoc, BlockBytes: cfg.L2Block,
	})
	if err != nil {
		return nil, err
	}
	h := &Hierarchy{
		cfg:    cfg,
		l2:     l2,
		l2MSHR: cache.NewMSHRFile(cfg.L2MSHRs),
	}
	for tu := 0; tu < nTU; tu++ {
		du, err := newDUnit(h, tu, cfg)
		if err != nil {
			return nil, err
		}
		h.dunits = append(h.dunits, du)
		iu, err := newIUnit(h, tu, cfg)
		if err != nil {
			return nil, err
		}
		h.iunits = append(h.iunits, iu)
	}
	return h, nil
}

// DUnit returns thread unit tu's data port.
func (h *Hierarchy) DUnit(tu int) *DUnit { return h.dunits[tu] }

// IUnit returns thread unit tu's instruction port.
func (h *Hierarchy) IUnit(tu int) *IUnit { return h.iunits[tu] }

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// L2 exposes the shared cache for tests.
func (h *Hierarchy) L2() *cache.Cache { return h.l2 }

// SetMetrics attaches an observability collector to every data unit.
func (h *Hierarchy) SetMetrics(c *metrics.Collector) {
	for _, d := range h.dunits {
		d.SetMetrics(c)
	}
}

// SetAttrib attaches an attribution collector to every data unit.
func (h *Hierarchy) SetAttrib(a *attrib.Collector) {
	for _, d := range h.dunits {
		d.SetAttrib(a)
	}
}

// BeginCycle resets per-cycle port state; call before stepping the cores.
func (h *Hierarchy) BeginCycle(cycle uint64) {
	h.cycle = cycle
	for _, d := range h.dunits {
		d.beginCycle()
	}
}

// toL2 enqueues a fill request for an L1 block.
func (h *Hierarchy) toL2(cycle uint64, tu int, isI bool, block uint64) {
	h.l2Queue = append(h.l2Queue, l2Req{block: block, ready: cycle + 1, tu: tu, isI: isI})
}

// writeback models a dirty eviction below the L1s. Writebacks consume L2
// bandwidth statistics but, as in sim-outorder, do not delay demand fills.
func (h *Hierarchy) writeback(block uint64) {
	h.Writebacks++
	h.l2.Insert(block, 0, true)
}

// SequentialUpdate propagates a store executed during sequential execution
// to every other (idle) thread unit's private caches via the shared bus
// update protocol of §3.2.2. It adds bus traffic but no stall cycles.
func (h *Hierarchy) SequentialUpdate(srcTU int, addr uint64) {
	for tu, d := range h.dunits {
		if tu == srcTU {
			continue
		}
		if d.applyUpdate(addr) {
			h.UpdateBus++
		}
	}
}

// Tick advances the shared levels by one cycle: the L2 accepts one request,
// DRAM completions fill the L2, and finished fills are delivered to the L1
// units. Call after stepping the cores each cycle.
func (h *Hierarchy) Tick(cycle uint64) {
	// L2 accepts one request per cycle, FIFO.
	if len(h.l2Queue) > 0 && h.l2Queue[0].ready <= cycle {
		req := h.l2Queue[0]
		h.l2Queue = h.l2Queue[1:]
		h.serviceL2(cycle, req)
	}
	// Deliver due fills.
	for len(h.fills) > 0 && h.fills[0].at <= cycle {
		f := heap.Pop(&h.fills).(fill)
		switch {
		case f.tu < 0:
			h.completeDRAM(f.at, f.block)
		case f.isI:
			h.iunits[f.tu].fill(f.block)
		default:
			h.dunits[f.tu].fill(f.block, f.at)
		}
	}
}

// serviceL2 performs one L2 lookup for an L1 miss.
func (h *Hierarchy) serviceL2(cycle uint64, req l2Req) {
	h.L2Accesses++
	l2block := h.l2.BlockAddr(req.block)
	if _, hit := h.l2.Access(l2block, false); hit {
		heap.Push(&h.fills, fill{
			at:    cycle + uint64(h.cfg.L2HitLat) - 1,
			block: req.block,
			tu:    req.tu,
			isI:   req.isI,
		})
		return
	}
	h.L2Misses++
	// Encode the waiting L1 request into an opaque MSHR token:
	// block<<7 | isI<<6 | tu. Block addresses stay below 2^41 (instBase is
	// 1<<40) and nTU below 64, so the token fits an int64 losslessly.
	tok := int64(req.block)<<7 | int64(req.tu)
	if req.isI {
		tok |= 1 << 6
	}
	allocated, ok := h.l2MSHR.Add(l2block, tok)
	if !ok {
		// L2 MSHRs exhausted: service without merging at full latency.
		heap.Push(&h.fills, fill{
			at:    cycle + uint64(h.cfg.MemLat) - 1,
			block: req.block,
			tu:    req.tu,
			isI:   req.isI,
		})
		h.DRAMFills++
		return
	}
	if allocated {
		// DRAM completes the L2 fill; waiters are released then.
		heap.Push(&h.fills, fill{
			at:    cycle + uint64(h.cfg.MemLat) - uint64(h.cfg.L2HitLat) - 1,
			block: l2block,
			tu:    -1, // sentinel: DRAM->L2 fill
		})
	}
}

// completeDRAM is invoked via the fill heap sentinel (tu == -1): the L2
// block arrives from memory, is inserted into the L2, and all merged L1
// waiters receive their fills after the L2 pass-through latency.
func (h *Hierarchy) completeDRAM(cycle uint64, l2block uint64) {
	h.DRAMFills++
	victim := h.l2.Insert(l2block, 0, false)
	_ = victim // L2 victims write back to DRAM; no further state to model.
	for _, tok := range h.l2MSHR.Complete(l2block) {
		heap.Push(&h.fills, fill{
			at:    cycle + uint64(h.cfg.L2HitLat),
			block: uint64(tok) >> 7,
			tu:    int(tok & 63),
			isI:   tok&(1<<6) != 0,
		})
	}
}

// Reset restores the hierarchy to power-on state.
func (h *Hierarchy) Reset() {
	h.l2.Reset()
	h.l2MSHR.Reset()
	for _, d := range h.dunits {
		d.Reset()
	}
	for _, iu := range h.iunits {
		iu.Reset()
	}
	h.l2Queue = nil
	h.fills = nil
	h.L2Accesses, h.L2Misses, h.DRAMFills, h.Writebacks, h.UpdateBus = 0, 0, 0, 0, 0
}
