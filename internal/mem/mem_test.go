package mem

import (
	"testing"

	"repro/internal/cache"
)

// run drives the hierarchy for n cycles with no new requests.
func run(h *Hierarchy, from *uint64, n int) {
	for i := 0; i < n; i++ {
		h.BeginCycle(*from)
		h.Tick(*from)
		*from++
	}
}

func newH(t *testing.T, nTU int, mut func(*Config)) *Hierarchy {
	t.Helper()
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	h, err := NewHierarchy(nTU, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.L1DPorts = 0
	if bad.Validate() == nil {
		t.Error("zero ports accepted")
	}
	bad = good
	bad.L2HitLat = good.L1HitLat
	if bad.Validate() == nil {
		t.Error("non-increasing latency accepted")
	}
	bad = good
	bad.Side = SideWEC
	bad.SideEntries = 0
	if bad.Validate() == nil {
		t.Error("side buffer with zero entries accepted")
	}
	bad = good
	bad.L2Block = 32
	if bad.Validate() == nil {
		t.Error("L2 block smaller than L1 accepted")
	}
}

func TestDemandMissLatencyFromDRAM(t *testing.T) {
	h := newH(t, 1, nil)
	d := h.DUnit(0)
	var cyc uint64
	h.BeginCycle(cyc)
	req := d.Access(cyc, 0x1000, Load, SrcDemand, -1)
	if req.Done {
		t.Fatal("cold miss completed instantly")
	}
	h.Tick(cyc)
	cyc++
	limit := cyc + 400
	for !req.Done && cyc < limit {
		run(h, &cyc, 1)
	}
	if !req.Done {
		t.Fatal("fill never arrived")
	}
	got := req.DoneCycle
	want := uint64(DefaultConfig().MemLat)
	if got < want-2 || got > want+2 {
		t.Errorf("DRAM fill latency = %d, want about %d", got, want)
	}
	if h.L2Misses != 1 || h.DRAMFills != 1 {
		t.Errorf("L2Misses=%d DRAMFills=%d", h.L2Misses, h.DRAMFills)
	}
}

func TestHitLatency(t *testing.T) {
	h := newH(t, 1, nil)
	d := h.DUnit(0)
	var cyc uint64
	h.BeginCycle(cyc)
	req := d.Access(cyc, 0x1000, Load, SrcDemand, -1)
	h.Tick(cyc)
	cyc++
	for !req.Done {
		run(h, &cyc, 1)
	}
	h.BeginCycle(cyc)
	req2 := d.Access(cyc, 0x1008, Load, SrcDemand, -1) // same block
	if !req2.Done || req2.DoneCycle != cyc+uint64(DefaultConfig().L1HitLat) {
		t.Errorf("hit: done=%v at %d", req2.Done, req2.DoneCycle)
	}
}

func TestL2HitLatency(t *testing.T) {
	h := newH(t, 1, nil)
	d := h.DUnit(0)
	var cyc uint64
	// Bring 0x1000 into L1+L2, then evict it from the direct-mapped L1 with
	// a conflicting address (8KB DM: 0x1000 + 8192 maps to the same set).
	h.BeginCycle(cyc)
	r1 := d.Access(cyc, 0x1000, Load, SrcDemand, -1)
	h.Tick(cyc)
	cyc++
	for !r1.Done {
		run(h, &cyc, 1)
	}
	h.BeginCycle(cyc)
	r2 := d.Access(cyc, 0x1000+8192, Load, SrcDemand, -1)
	h.Tick(cyc)
	cyc++
	for !r2.Done {
		run(h, &cyc, 1)
	}
	if d.L1().Probe(0x1000) {
		t.Fatal("conflicting block did not evict")
	}
	// Re-access 0x1000: L1 miss, L2 hit (same L2 block fetched earlier).
	h.BeginCycle(cyc)
	start := cyc
	r3 := d.Access(cyc, 0x1000, Load, SrcDemand, -1)
	h.Tick(cyc)
	cyc++
	for !r3.Done {
		run(h, &cyc, 1)
	}
	lat := r3.DoneCycle - start
	want := uint64(DefaultConfig().L2HitLat)
	if lat < want-2 || lat > want+2 {
		t.Errorf("L2 hit latency = %d, want about %d", lat, want)
	}
}

func TestMSHRMergeSameBlock(t *testing.T) {
	h := newH(t, 1, nil)
	d := h.DUnit(0)
	var cyc uint64
	h.BeginCycle(cyc)
	r1 := d.Access(cyc, 0x2000, Load, SrcDemand, -1)
	r2 := d.Access(cyc, 0x2010, Load, SrcDemand, -1) // same 64B block
	h.Tick(cyc)
	cyc++
	for !r1.Done || !r2.Done {
		run(h, &cyc, 1)
	}
	if r1.DoneCycle != r2.DoneCycle {
		t.Errorf("merged requests completed at %d and %d", r1.DoneCycle, r2.DoneCycle)
	}
	if h.L2Accesses != 1 {
		t.Errorf("L2Accesses = %d, want 1 (merged)", h.L2Accesses)
	}
}

func TestPortLimit(t *testing.T) {
	h := newH(t, 1, nil)
	d := h.DUnit(0)
	h.BeginCycle(0)
	if !d.CanAccept() {
		t.Fatal("fresh unit refuses access")
	}
	d.Access(0, 0x100, Load, SrcDemand, -1)
	d.Access(0, 0x200, Load, SrcDemand, -1)
	if d.CanAccept() {
		t.Error("third access in one cycle accepted with 2 ports")
	}
	h.Tick(0)
	h.BeginCycle(1)
	if !d.CanAccept() {
		t.Error("ports did not reset at cycle boundary")
	}
}

// fillWait drives until a request completes.
func fillWait(t *testing.T, h *Hierarchy, cyc *uint64, reqs ...*Request) {
	t.Helper()
	for n := 0; n < 10000; n++ {
		done := true
		for _, r := range reqs {
			if !r.Done {
				done = false
			}
		}
		if done {
			return
		}
		run(h, cyc, 1)
	}
	t.Fatal("requests never completed")
}

func TestWrongFillGoesToWECNotL1(t *testing.T) {
	h := newH(t, 1, func(c *Config) { c.Side = SideWEC })
	d := h.DUnit(0)
	var cyc uint64
	h.BeginCycle(cyc)
	r := d.Access(cyc, 0x3000, Load, SrcWrongPath, -1) // wrong-execution load
	h.Tick(cyc)
	cyc++
	fillWait(t, h, &cyc, r)
	if d.L1().Probe(0x3000) {
		t.Error("wrong fill polluted L1 despite WEC")
	}
	if !d.Side().Probe(0x3000) {
		t.Error("wrong fill missing from WEC")
	}
	fl, _ := d.Side().Flags(0x3000)
	if fl&cache.FlagWrong == 0 {
		t.Error("wrong fill not flagged")
	}
}

func TestWrongFillPollutesL1WithoutWEC(t *testing.T) {
	h := newH(t, 1, func(c *Config) { c.WrongFillsToL1 = true }) // wp/wth
	d := h.DUnit(0)
	var cyc uint64
	h.BeginCycle(cyc)
	r := d.Access(cyc, 0x3000, Load, SrcWrongPath, -1)
	h.Tick(cyc)
	cyc++
	fillWait(t, h, &cyc, r)
	if !d.L1().Probe(0x3000) {
		t.Error("wp config should fill L1 with wrong loads")
	}
}

func TestWECHitSwapsIntoL1(t *testing.T) {
	h := newH(t, 1, func(c *Config) { c.Side = SideWEC })
	d := h.DUnit(0)
	var cyc uint64
	// Wrong load fills WEC.
	h.BeginCycle(cyc)
	r := d.Access(cyc, 0x3000, Load, SrcWrongPath, -1)
	h.Tick(cyc)
	cyc++
	fillWait(t, h, &cyc, r)
	// Occupy the conflicting L1 set so the swap has a victim.
	h.BeginCycle(cyc)
	r2 := d.Access(cyc, 0x3000+8192, Load, SrcDemand, -1)
	h.Tick(cyc)
	cyc++
	fillWait(t, h, &cyc, r2)
	// Correct-path access to the wrong-fetched block: L1 miss, WEC hit.
	h.BeginCycle(cyc)
	start := cyc
	r3 := d.Access(cyc, 0x3000, Load, SrcDemand, -1)
	if !r3.Done || r3.DoneCycle != start+1 {
		t.Errorf("WEC hit should complete like an L1 hit; done=%v at %d", r3.Done, r3.DoneCycle)
	}
	h.Tick(cyc)
	cyc++
	if !d.L1().Probe(0x3000) {
		t.Error("WEC hit did not promote block to L1")
	}
	if d.Side().Probe(0x3000) {
		t.Error("block still in WEC after swap")
	}
	if !d.Side().Probe(0x3000 + 8192) {
		t.Error("L1 victim not swapped into WEC")
	}
	if d.SideHits != 1 || d.WrongUseful != 1 {
		t.Errorf("SideHits=%d WrongUseful=%d", d.SideHits, d.WrongUseful)
	}
	// The hit on a wrong-fetched block must have triggered a next-line
	// prefetch into the WEC.
	if d.PrefIssued != 1 {
		t.Fatalf("PrefIssued = %d, want 1", d.PrefIssued)
	}
	for i := 0; i < 400; i++ {
		run(h, &cyc, 1)
	}
	if !d.Side().Probe(0x3040) {
		t.Error("next-line prefetch result not in WEC")
	}
}

// TestL1WECExclusive is the paper's structural invariant: a block is never
// valid in both the L1 and the WEC (DESIGN.md decision 4).
func TestL1WECExclusive(t *testing.T) {
	h := newH(t, 1, func(c *Config) { c.Side = SideWEC; c.SideEntries = 4; c.L1DSize = 512 })
	d := h.DUnit(0)
	var cyc uint64
	addrs := []uint64{0, 64, 512, 576, 1024, 0, 512, 64, 2048, 0}
	wrong := []bool{false, true, false, true, false, true, false, false, true, false}
	for i, a := range addrs {
		h.BeginCycle(cyc)
		if d.CanAccept() && !d.MSHRFull() {
			src := SrcDemand
			if wrong[i] {
				src = SrcWrongPath
			}
			d.Access(cyc, a, Load, src, -1)
		}
		h.Tick(cyc)
		cyc++
		run(h, &cyc, 250) // let every fill land
		inL1 := make(map[uint64]bool)
		for _, b := range d.L1().ResidentBlocks() {
			inL1[b] = true
		}
		for _, b := range d.Side().ResidentBlocks() {
			if inL1[b] {
				t.Fatalf("block %#x valid in both L1 and WEC after access %d", b, i)
			}
		}
	}
}

func TestVictimCacheBehaviour(t *testing.T) {
	h := newH(t, 1, func(c *Config) { c.Side = SideVC })
	d := h.DUnit(0)
	var cyc uint64
	h.BeginCycle(cyc)
	r1 := d.Access(cyc, 0x4000, Load, SrcDemand, -1)
	h.Tick(cyc)
	cyc++
	fillWait(t, h, &cyc, r1)
	// Conflict evicts 0x4000 into the VC.
	h.BeginCycle(cyc)
	r2 := d.Access(cyc, 0x4000+8192, Load, SrcDemand, -1)
	h.Tick(cyc)
	cyc++
	fillWait(t, h, &cyc, r2)
	if !d.Side().Probe(0x4000) {
		t.Fatal("victim not in VC")
	}
	// Re-access: VC hit at L1-hit latency.
	h.BeginCycle(cyc)
	r3 := d.Access(cyc, 0x4000, Load, SrcDemand, -1)
	if !r3.Done {
		t.Fatal("VC hit did not complete immediately")
	}
	if d.SideHits != 1 {
		t.Errorf("SideHits = %d", d.SideHits)
	}
	// VC never receives prefetches.
	if d.PrefIssued != 0 {
		t.Error("victim cache issued a prefetch")
	}
}

func TestNLPTaggedPrefetch(t *testing.T) {
	h := newH(t, 1, func(c *Config) {
		c.Side = SidePB
		c.NextLinePrefetch = true
	})
	d := h.DUnit(0)
	var cyc uint64
	// Demand miss on block 0 issues prefetch of block 1.
	h.BeginCycle(cyc)
	r1 := d.Access(cyc, 0x5000, Load, SrcDemand, -1)
	h.Tick(cyc)
	cyc++
	fillWait(t, h, &cyc, r1)
	if d.PrefIssued != 1 {
		t.Fatalf("prefetch on miss not issued: %d", d.PrefIssued)
	}
	run(h, &cyc, 300)
	if !d.Side().Probe(0x5040) {
		t.Fatal("prefetched block not in PB")
	}
	// Demand access to the prefetched block: PB hit promotes to L1 and
	// (tagged) issues the next prefetch.
	h.BeginCycle(cyc)
	r2 := d.Access(cyc, 0x5040, Load, SrcDemand, -1)
	if !r2.Done {
		t.Fatal("PB hit should complete at hit latency")
	}
	h.Tick(cyc)
	cyc++
	if !d.L1().Probe(0x5040) {
		t.Error("PB hit did not promote to L1")
	}
	if d.PrefIssued != 2 {
		t.Errorf("tagged prefetch on first hit not issued: %d", d.PrefIssued)
	}
	if d.PrefUseful != 1 {
		t.Errorf("PrefUseful = %d", d.PrefUseful)
	}
}

func TestPrefetchNotDuplicated(t *testing.T) {
	h := newH(t, 1, func(c *Config) { c.Side = SideWEC })
	d := h.DUnit(0)
	var cyc uint64
	h.BeginCycle(cyc)
	r := d.Access(cyc, 0x6000, Load, SrcWrongPath, -1)
	h.Tick(cyc)
	cyc++
	fillWait(t, h, &cyc, r)
	// Two correct hits on the same wrong-fetched block: the block is
	// promoted on the first, so only one prefetch can trigger; and a
	// prefetch for a block already in flight or resident must not repeat.
	h.BeginCycle(cyc)
	d.Access(cyc, 0x6000, Load, SrcDemand, -1)
	h.Tick(cyc)
	cyc++
	h.BeginCycle(cyc)
	d.Access(cyc, 0x6000, Load, SrcDemand, -1)
	h.Tick(cyc)
	cyc++
	if d.PrefIssued != 1 {
		t.Errorf("PrefIssued = %d, want 1", d.PrefIssued)
	}
}

func TestStoreMissFetchesAndDirties(t *testing.T) {
	h := newH(t, 1, nil)
	d := h.DUnit(0)
	var cyc uint64
	h.BeginCycle(cyc)
	r := d.Access(cyc, 0x7000, Store, SrcDemand, -1)
	h.Tick(cyc)
	cyc++
	fillWait(t, h, &cyc, r)
	if !d.L1().Probe(0x7000) {
		t.Fatal("store miss did not allocate")
	}
	// Evicting the dirty block must produce a writeback.
	h.BeginCycle(cyc)
	r2 := d.Access(cyc, 0x7000+8192, Load, SrcDemand, -1)
	h.Tick(cyc)
	cyc++
	fillWait(t, h, &cyc, r2)
	if h.Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", h.Writebacks)
	}
}

func TestSequentialUpdateCoherence(t *testing.T) {
	h := newH(t, 2, func(c *Config) { c.Side = SideWEC })
	var cyc uint64
	// TU1 caches block 0x8000.
	h.BeginCycle(cyc)
	r := h.DUnit(1).Access(cyc, 0x8000, Load, SrcDemand, -1)
	h.Tick(cyc)
	cyc++
	fillWait(t, h, &cyc, r)
	// TU0 stores to it during sequential execution.
	h.SequentialUpdate(0, 0x8000)
	if h.UpdateBus != 1 {
		t.Errorf("UpdateBus = %d, want 1", h.UpdateBus)
	}
	if h.DUnit(1).UpdateRecv != 1 {
		t.Errorf("TU1 UpdateRecv = %d", h.DUnit(1).UpdateRecv)
	}
	// Block remains resident (update, not invalidate protocol).
	if !h.DUnit(1).L1().Probe(0x8000) {
		t.Error("update protocol invalidated the block")
	}
	// An update to an uncached block generates no bus traffic.
	h.SequentialUpdate(0, 0x9000)
	if h.UpdateBus != 1 {
		t.Error("uncached update counted as bus traffic")
	}
}

func TestInstructionFetch(t *testing.T) {
	h := newH(t, 1, nil)
	iu := h.IUnit(0)
	var cyc uint64
	h.BeginCycle(cyc)
	if iu.FetchReady(cyc, 0) {
		t.Fatal("cold I-cache hit")
	}
	h.Tick(cyc)
	cyc++
	for i := 0; i < 400 && !func() bool {
		h.BeginCycle(cyc)
		ok := iu.FetchReady(cyc, 0)
		h.Tick(cyc)
		cyc++
		return ok
	}(); i++ {
	}
	h.BeginCycle(cyc)
	if !iu.FetchReady(cyc, 1) { // same 64B block (4 insts of 16B)
		t.Error("same-block PC missed after fill")
	}
	if !iu.FetchReady(cyc, 3) {
		t.Error("block boundary wrong")
	}
	if iu.FetchReady(cyc, 4) { // next block
		t.Error("next block should miss")
	}
	h.Tick(cyc)
}

func TestSeparateTUsDontShareL1(t *testing.T) {
	h := newH(t, 2, nil)
	var cyc uint64
	h.BeginCycle(cyc)
	r := h.DUnit(0).Access(cyc, 0xA000, Load, SrcDemand, -1)
	h.Tick(cyc)
	cyc++
	fillWait(t, h, &cyc, r)
	if h.DUnit(1).L1().Probe(0xA000) {
		t.Error("TU1 L1 shares contents with TU0")
	}
	// But the shared L2 now holds it: TU1's miss is an L2 hit.
	h.BeginCycle(cyc)
	start := cyc
	r2 := h.DUnit(1).Access(cyc, 0xA000, Load, SrcDemand, -1)
	h.Tick(cyc)
	cyc++
	fillWait(t, h, &cyc, r2)
	if r2.DoneCycle-start > uint64(DefaultConfig().L2HitLat)+2 {
		t.Errorf("TU1 did not benefit from shared L2: latency %d", r2.DoneCycle-start)
	}
}

func TestReset(t *testing.T) {
	h := newH(t, 1, func(c *Config) { c.Side = SideWEC })
	d := h.DUnit(0)
	var cyc uint64
	h.BeginCycle(cyc)
	d.Access(cyc, 0x100, Load, SrcDemand, -1)
	h.Tick(cyc)
	cyc++
	run(h, &cyc, 300)
	h.Reset()
	if d.L1().Probe(0x100) || d.Accesses != 0 || h.L2Accesses != 0 {
		t.Error("Reset incomplete")
	}
}
