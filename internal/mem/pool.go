package mem

// neverWake is the NextWake value of a component with no pending events.
const neverWake = ^uint64(0)

// reqPool recycles Request objects so the steady-state access path performs
// no heap allocation. Requests are handed out by get, and return to the free
// list once both owners have dropped them: the issuing core (held, cleared
// by Request.Release) and the memory system (pending, cleared when the MSHR
// chain drains at fill time). Fire-and-forget callers release immediately;
// hit-path requests complete synchronously and recycle on release.
type reqPool struct {
	free []*Request
}

const reqSlabSize = 64

func (p *reqPool) get() *Request {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free = p.free[:n-1]
		return r
	}
	// Grow by a slab so the free list settles after a short warm-up.
	slab := make([]Request, reqSlabSize)
	for i := 1; i < reqSlabSize; i++ {
		slab[i].pool = p
		p.free = append(p.free, &slab[i])
	}
	slab[0].pool = p
	return &slab[0]
}

func (p *reqPool) put(r *Request) {
	*r = Request{pool: r.pool}
	p.free = append(p.free, r)
}

// Release returns the request to its pool once the issuing core no longer
// needs it. A request still pending in an MSHR stays live until its fill
// arrives; releasing is then just dropping the core's claim. Safe on nil
// and on requests not managed by a pool (tests building them directly).
func (r *Request) Release() {
	if r == nil || !r.held {
		return
	}
	r.held = false
	if !r.pending && r.pool != nil {
		r.pool.put(r)
	}
}

// dmshrEntry tracks one outstanding L1 block miss. Waiting requests chain
// intrusively through Request.next in arrival order (head..tail).
type dmshrEntry struct {
	block uint64
	head  *Request
	tail  *Request
	valid bool
}

// dMSHR is the per-DUnit miss-status holding register file. Entries are a
// fixed array scanned linearly (file sizes are single digits to low tens),
// and waiters chain through the requests themselves, so neither a miss nor
// a merge allocates.
type dMSHR struct {
	entries []dmshrEntry
	n       int
}

func newDMSHR(max int) dMSHR {
	if max <= 0 {
		max = 1
	}
	return dMSHR{entries: make([]dmshrEntry, max)}
}

func (f *dMSHR) lookup(block uint64) bool {
	for i := range f.entries {
		if f.entries[i].valid && f.entries[i].block == block {
			return true
		}
	}
	return false
}

func (f *dMSHR) full() bool { return f.n >= len(f.entries) }

// add registers req as waiting on block. allocated reports that a new entry
// opened (the caller must issue the fill); ok is false when the file is
// full and the block has no entry.
func (f *dMSHR) add(block uint64, req *Request) (allocated, ok bool) {
	var free *dmshrEntry
	for i := range f.entries {
		e := &f.entries[i]
		if e.valid {
			if e.block == block {
				req.pending = true
				req.next = nil
				e.tail.next = req
				e.tail = req
				return false, true
			}
			continue
		}
		if free == nil {
			free = e
		}
	}
	if free == nil {
		return false, false
	}
	req.pending = true
	req.next = nil
	free.block = block
	free.head, free.tail = req, req
	free.valid = true
	f.n++
	return true, true
}

// complete removes block's entry, returning the waiter chain head (arrival
// order). Completing an absent block is a simulator bug and panics.
func (f *dMSHR) complete(block uint64) *Request {
	for i := range f.entries {
		e := &f.entries[i]
		if e.valid && e.block == block {
			head := e.head
			e.head, e.tail = nil, nil
			e.valid = false
			f.n--
			return head
		}
	}
	panic("mem: MSHR complete for absent block")
}

func (f *dMSHR) reset() {
	for i := range f.entries {
		f.entries[i] = dmshrEntry{}
	}
	f.n = 0
}
