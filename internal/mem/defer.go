package mem

import "repro/internal/attrib"

// Deferred side-effect capture for parallel TU stepping.
//
// When sta steps thread units on worker goroutines, each TU's compute phase
// may only mutate its own state. Everything an L1 port would normally push
// into shared state — L2 fill requests, dirty writebacks, and observer
// (metrics/attribution) events, all of which either mutate shared structures
// or must interleave in TU order — is instead recorded into that TU's
// private effect queue, tagged with the simulated cycle it occurred on. The
// serial commit phase replays the queues in (cycle, TU-ID) order, so the L2
// queue order, L2 LRU state, and every observer stream are bit-identical to
// sequential stepping no matter how the goroutines interleaved.
//
// With capture disabled (the default, and always in sequential mode) every
// effect takes its old direct path; the only added cost is one branch.

// Effect kinds. The payload fields of defEffect are overloaded per kind.
const (
	efToL2 uint8 = iota // a=block, flag=isI
	efWriteback         // a=block
	efMemAccess         // pc, a=issued, b=done, flag=wrong (metrics)
	efWECPromotion      // a=residency cycles (metrics)
	efWrongIssue        // pc (attrib)
	efDemandAccess      // pc, a=block, flag=miss (attrib)
	efSpecTouch         // a=block (attrib)
	efVictimHit         // a=block (attrib)
	efPromote           // a=block (attrib)
	efEvict             // a=addr, o1=cause, pc=causePC (attrib)
	efLateFill          // o1=origin, pc (attrib)
	efFill              // a=block, o1=origin, pc, st=structure (attrib)
	efVictimCapture     // a=block (attrib)
)

// defEffect is one captured side effect. A tagged union keeps the capture
// path allocation-free (the queue's backing array is reused run-long).
type defEffect struct {
	cycle uint64
	a, b  uint64
	pc    int
	kind  uint8
	o1    uint8
	st    uint8
	flag  bool
}

// tuDef is one thread unit's effect queue. Exactly one worker goroutine
// appends to it during a compute phase; only the coordinator reads it during
// the commit phase. head marks how far replay has consumed the queue, so a
// multi-cycle window can drain it one cycle slice at a time.
type tuDef struct {
	active  bool
	head    int
	effects []defEffect
}

func (q *tuDef) push(e defEffect) { q.effects = append(q.effects, e) }

// SetCompute switches effect capture for one TU's ports on or off. While on,
// Access/FetchReady record cross-TU effects instead of applying them.
func (h *Hierarchy) SetCompute(tu int, on bool) { h.def[tu].active = on }

// Deferring reports whether tu's ports are currently capturing effects.
func (h *Hierarchy) Deferring(tu int) bool { return h.def[tu].active }

// BeginCycleTU resets one TU's per-cycle port state. The parallel stepping
// window uses it between batched cycles, where the global BeginCycle (which
// walks every TU) must not run.
func (h *Hierarchy) BeginCycleTU(tu int) { h.dunits[tu].beginCycle() }

// FlushDeferred replays tu's captured effects with cycle <= upTo against the
// shared state, in capture order. The caller is responsible for invoking it
// in TU-ID order (and, for multi-cycle windows, once per cycle slice) so the
// global replay order matches sequential stepping.
func (h *Hierarchy) FlushDeferred(tu int, upTo uint64) {
	q := &h.def[tu]
	d := &h.dunits[tu]
	i := q.head
	for ; i < len(q.effects); i++ {
		e := &q.effects[i]
		if e.cycle > upTo {
			break
		}
		switch e.kind {
		case efToL2:
			h.l2Queue = append(h.l2Queue, l2Req{block: e.a, ready: e.cycle + 1, tu: tu, isI: e.flag})
		case efWriteback:
			h.Writebacks++
			h.l2.Insert(e.a, 0, true)
		case efMemAccess:
			d.metrics.ObserveMemAccess(tu, e.pc, e.a, e.b, e.flag)
		case efWECPromotion:
			d.metrics.ObserveWECPromotion(e.a)
		case efWrongIssue:
			d.attrib.OnWrongIssue(e.pc)
		case efDemandAccess:
			d.attrib.OnDemandAccess(tu, e.pc, e.a, e.cycle, e.flag)
		case efSpecTouch:
			d.attrib.OnSpecTouch(tu, e.a, e.cycle)
		case efVictimHit:
			d.attrib.OnVictimHit(tu, e.a, e.cycle)
		case efPromote:
			d.attrib.OnPromote(tu, e.a)
		case efEvict:
			d.attrib.OnEvict(tu, e.a, attrib.Origin(e.o1), e.pc, e.cycle)
		case efLateFill:
			d.attrib.OnLateFill(attrib.Origin(e.o1), e.pc)
		case efFill:
			d.attrib.OnFill(tu, e.a, attrib.Origin(e.o1), e.pc, e.cycle, attrib.Structure(e.st))
		case efVictimCapture:
			d.attrib.OnVictimCapture(tu, e.a, e.cycle)
		}
	}
	q.head = i
	if q.head == len(q.effects) {
		q.effects = q.effects[:0]
		q.head = 0
	}
}

// --- DUnit capture wrappers -------------------------------------------------
//
// Each wrapper takes the simulated cycle the effect belongs to and either
// applies it directly (capture off) or records it. The nil checks on the
// collectors mirror the original call sites, so a queue never accumulates
// events no collector would observe.

func (d *DUnit) q() *tuDef { return &d.h.def[d.tu] }

func (d *DUnit) obsMemAccess(cycle uint64, req *Request, at uint64) {
	if q := d.q(); q.active {
		q.push(defEffect{kind: efMemAccess, cycle: cycle, pc: req.PC, a: req.Issued, b: at, flag: req.Wrong()})
		return
	}
	d.metrics.ObserveMemAccess(d.tu, req.PC, req.Issued, at, req.Wrong())
}

func (d *DUnit) obsWECPromotion(cycle, residency uint64) {
	if q := d.q(); q.active {
		q.push(defEffect{kind: efWECPromotion, cycle: cycle, a: residency})
		return
	}
	d.metrics.ObserveWECPromotion(residency)
}

func (d *DUnit) obsWrongIssue(cycle uint64, pc int) {
	if q := d.q(); q.active {
		q.push(defEffect{kind: efWrongIssue, cycle: cycle, pc: pc})
		return
	}
	d.attrib.OnWrongIssue(pc)
}

func (d *DUnit) obsDemandAccess(cycle uint64, pc int, block uint64, miss bool) {
	if q := d.q(); q.active {
		q.push(defEffect{kind: efDemandAccess, cycle: cycle, pc: pc, a: block, flag: miss})
		return
	}
	d.attrib.OnDemandAccess(d.tu, pc, block, cycle, miss)
}

func (d *DUnit) obsSpecTouch(cycle uint64, block uint64) {
	if q := d.q(); q.active {
		q.push(defEffect{kind: efSpecTouch, cycle: cycle, a: block})
		return
	}
	d.attrib.OnSpecTouch(d.tu, block, cycle)
}

func (d *DUnit) obsVictimHit(cycle uint64, block uint64) {
	if q := d.q(); q.active {
		q.push(defEffect{kind: efVictimHit, cycle: cycle, a: block})
		return
	}
	d.attrib.OnVictimHit(d.tu, block, cycle)
}

func (d *DUnit) obsPromote(cycle uint64, block uint64) {
	if q := d.q(); q.active {
		q.push(defEffect{kind: efPromote, cycle: cycle, a: block})
		return
	}
	d.attrib.OnPromote(d.tu, block)
}

func (d *DUnit) obsEvict(cycle uint64, addr uint64, cause attrib.Origin, causePC int) {
	if q := d.q(); q.active {
		q.push(defEffect{kind: efEvict, cycle: cycle, a: addr, o1: uint8(cause), pc: causePC})
		return
	}
	d.attrib.OnEvict(d.tu, addr, cause, causePC, cycle)
}

func (d *DUnit) obsLateFill(cycle uint64, origin attrib.Origin, pc int) {
	if q := d.q(); q.active {
		q.push(defEffect{kind: efLateFill, cycle: cycle, o1: uint8(origin), pc: pc})
		return
	}
	d.attrib.OnLateFill(origin, pc)
}

func (d *DUnit) obsFill(cycle uint64, block uint64, origin attrib.Origin, pc int, s attrib.Structure) {
	if q := d.q(); q.active {
		q.push(defEffect{kind: efFill, cycle: cycle, a: block, o1: uint8(origin), pc: pc, st: uint8(s)})
		return
	}
	d.attrib.OnFill(d.tu, block, origin, pc, cycle, s)
}

func (d *DUnit) obsVictimCapture(cycle uint64, block uint64) {
	if q := d.q(); q.active {
		q.push(defEffect{kind: efVictimCapture, cycle: cycle, a: block})
		return
	}
	d.attrib.OnVictimCapture(d.tu, block, cycle)
}
