// Package mem implements the simulated memory hierarchy of the
// superthreaded processor: per-thread-unit L1 instruction and data caches
// with an optional side buffer (victim cache, next-line prefetch buffer, or
// the Wrong Execution Cache), a shared unified L2, and a fixed-latency
// DRAM. Timing is cycle-driven: thread units issue requests through their
// DUnit/IUnit, and Hierarchy.Tick advances the L2 and DRAM pipelines,
// delivering fills back to the requesting unit.
//
// The WEC policy follows Figure 6 of the paper:
//
//   - correct-path L1 hit: normal hit;
//   - correct-path L1 miss, WEC hit: block swaps with the L1 victim and, if
//     the block was fetched by wrong execution, a next-line prefetch into
//     the WEC is issued;
//   - correct-path miss in both: fill L1 from below, L1 victim into the WEC
//     (victim-cache behaviour);
//   - wrong-execution miss in both: fill the WEC only, eliminating
//     pollution;
//   - wrong-execution hit (either structure): LRU refresh only.
package mem

import "fmt"

// SideBufKind selects the structure placed beside the L1 data cache.
type SideBufKind uint8

// Side-buffer kinds for the paper's processor configurations.
const (
	SideNone SideBufKind = iota // orig, wp, wth, wth-wp
	SideVC                      // victim cache (vc, wth-wp-vc)
	SideWEC                     // wrong execution cache (wth-wp-wec)
	SidePB                      // prefetch buffer for next-line prefetch (nlp)
)

// String returns the configuration-file name of the side buffer kind.
func (k SideBufKind) String() string {
	switch k {
	case SideNone:
		return "none"
	case SideVC:
		return "vc"
	case SideWEC:
		return "wec"
	case SidePB:
		return "pb"
	}
	return fmt.Sprintf("sidebuf(%d)", uint8(k))
}

// Config describes one thread unit's private caches plus the shared levels.
// All units of a machine share the L2/DRAM parameters.
type Config struct {
	// L1 data cache (per TU).
	L1DSize  int // bytes
	L1DAssoc int // 1 = direct mapped; 0 = fully associative
	L1DBlock int // bytes
	L1DPorts int // processor accesses accepted per cycle
	L1DMSHRs int

	// Side buffer beside the L1D.
	Side        SideBufKind
	SideEntries int

	// Behaviour knobs (see paper §4.3 configuration list).
	WrongFillsToL1   bool // wp/wth without a WEC: wrong fills pollute L1
	NextLinePrefetch bool // nlp: tagged next-line prefetch into the PB

	// Ablation knobs (DESIGN.md decision 3): disable individual WEC roles.
	WECNoVictim   bool // WEC does not receive L1 victims
	WECNoNextLine bool // no next-line prefetch on correct hits to wrong blocks

	// L1 instruction cache (per TU).
	L1ISize  int
	L1IAssoc int
	L1IBlock int

	// Shared unified L2.
	L2Size  int
	L2Assoc int
	L2Block int
	L2MSHRs int

	// Latencies in cycles.
	L1HitLat int // load-to-use on an L1 hit
	L2HitLat int // L1 miss serviced by L2
	MemLat   int // L1 miss serviced by DRAM (round trip, §4.1: 200)
}

// DefaultConfig returns the paper's §5.2 defaults: 8 KB direct-mapped L1D
// with 64-byte blocks and two ports, 32 KB 2-way L1I, 512 KB 4-way unified
// L2 with 128-byte blocks, 200-cycle memory round trip, and an 8-entry
// fully-associative side buffer (kind chosen by the processor config).
func DefaultConfig() Config {
	return Config{
		L1DSize:  8 * 1024,
		L1DAssoc: 1,
		L1DBlock: 64,
		L1DPorts: 2,
		L1DMSHRs: 8,

		Side:        SideNone,
		SideEntries: 8,

		L1ISize:  32 * 1024,
		L1IAssoc: 2,
		L1IBlock: 64,

		// The paper's L2 is 512 KB against MinneSPEC footprints of tens of
		// megabytes. Our kernels are ~100x smaller, so the shared L2 is
		// scaled to 64 KB to preserve the paper's footprint:L2 ratio; the
		// Fig. 14 sweep keeps the paper's 1:2:4 size progression.
		L2Size:  64 * 1024,
		L2Assoc: 4,
		L2Block: 128,
		L2MSHRs: 16,

		L1HitLat: 1,
		L2HitLat: 12,
		MemLat:   200,
	}
}

// Validate reports configuration errors before any structure is built.
func (c Config) Validate() error {
	if c.L1DPorts <= 0 {
		return fmt.Errorf("mem: L1D ports must be positive")
	}
	if c.L1DMSHRs <= 0 || c.L2MSHRs <= 0 {
		return fmt.Errorf("mem: MSHR counts must be positive")
	}
	if c.L1HitLat <= 0 || c.L2HitLat <= c.L1HitLat || c.MemLat <= c.L2HitLat {
		return fmt.Errorf("mem: latencies must increase down the hierarchy")
	}
	if c.Side != SideNone && c.SideEntries <= 0 {
		return fmt.Errorf("mem: side buffer needs a positive entry count")
	}
	if c.L2Block < c.L1DBlock {
		return fmt.Errorf("mem: L2 block (%d) smaller than L1 block (%d)", c.L2Block, c.L1DBlock)
	}
	return nil
}

// AccessKind distinguishes demand loads, demand stores, and prefetches.
type AccessKind uint8

// Access kinds.
const (
	Load AccessKind = iota
	Store
	Prefetch
)

// PhysBits is the simulated physical address width. Speculative and
// wrong-execution loads can compute wild addresses (e.g. from registers a
// forked thread never received); like real hardware, the memory system
// truncates every data access to the physical space instead of faulting.
const PhysBits = 38

// PhysMask truncates an address to the physical space.
const PhysMask = (uint64(1) << PhysBits) - 1

// Source identifies the execution mode that issued an access: correct-path
// demand, wrong-path load continuation (a squashed load kept running for its
// cache effects), or a wrong thread executing past its abort point.
type Source uint8

// Access sources.
const (
	SrcDemand Source = iota
	SrcWrongPath
	SrcWrongThread
)

// String returns the report name of the source.
func (s Source) String() string {
	switch s {
	case SrcDemand:
		return "demand"
	case SrcWrongPath:
		return "wrong-path"
	case SrcWrongThread:
		return "wrong-thread"
	}
	return fmt.Sprintf("source(%d)", uint8(s))
}

// Wrong reports whether the source is wrong execution of either kind.
func (s Source) Wrong() bool { return s != SrcDemand }

// Request is one outstanding data access. The issuing core polls Done.
type Request struct {
	ID     int64
	Addr   uint64
	Kind   AccessKind
	Src    Source // execution mode that issued the access
	PC     int    // issuing instruction; -1 when unknown (e.g. write-back drain)
	Issued uint64 // cycle the access entered the memory system

	Done      bool
	DoneCycle uint64 // cycle at which the value is available

	// Pool plumbing (see reqPool): next chains the request on an MSHR
	// wait-list; held marks the issuing core's claim (dropped via Release)
	// and pending the memory system's (dropped when the fill arrives).
	// The request returns to its pool only when both are clear.
	next    *Request
	held    bool
	pending bool
	pool    *reqPool
}

// Wrong reports whether wrong execution issued the request.
func (r *Request) Wrong() bool { return r.Src.Wrong() }
