package mem

import (
	"repro/internal/attrib"
	"repro/internal/cache"
	"repro/internal/metrics"
)

// DUnit is one thread unit's data-side memory port: the private L1 data
// cache, the optional side buffer (victim cache, prefetch buffer, or WEC),
// and the MSHRs tracking outstanding misses. Cores must check CanAccept
// before calling Access in a given cycle; each access consumes one L1 port.
type DUnit struct {
	h    *Hierarchy
	tu   int
	cfg  Config
	l1   *cache.Cache
	side *cache.Cache // nil when cfg.Side == SideNone
	mshr dMSHR        // outstanding misses; waiters chain through Request.next

	// pool and nextID are per-DUnit (not shared on the Hierarchy) so that
	// parallel compute phases allocate requests without touching shared
	// state. IDs are unique per port, which is all Request.ID promises.
	pool   reqPool
	nextID int64

	portsUsed int

	// metrics, when non-nil, observes access latencies and side-buffer
	// promotion timeliness; sideInsertAt then tracks when each resident
	// side-buffer block was inserted.
	metrics      *metrics.Collector
	sideInsertAt map[uint64]uint64

	// attrib, when non-nil, receives fill provenance, eviction, and touch
	// events for the prefetch-effectiveness attribution layer.
	attrib *attrib.Collector

	// Statistics (correct-path demand unless stated otherwise).
	Accesses    uint64 // correct-path demand accesses
	Misses      uint64 // correct-path demand misses (both structures)
	Traffic     uint64 // every processor access incl. wrong execution
	WrongAcc    uint64 // wrong-execution accesses
	SideHits    uint64 // correct-path L1 misses that hit the side buffer
	SideInserts uint64
	PrefIssued  uint64
	PrefUseful  uint64 // correct demand touch of a prefetched block
	WrongUseful uint64 // correct demand touch of a wrong-fetched block
	UpdateRecv  uint64 // sequential-coherence updates applied
}

// init prepares a zero-valued data unit in place: DUnits live in the
// hierarchy's value slice, so they are initialized where they sit.
func (d *DUnit) init(h *Hierarchy, tu int, cfg Config) error {
	l1, err := cache.New(cache.Params{
		SizeBytes: cfg.L1DSize, Assoc: cfg.L1DAssoc, BlockBytes: cfg.L1DBlock,
	})
	if err != nil {
		return err
	}
	*d = DUnit{
		h:    h,
		tu:   tu,
		cfg:  cfg,
		l1:   l1,
		mshr: newDMSHR(cfg.L1DMSHRs),
	}
	if cfg.Side != SideNone {
		d.side, err = cache.NewFullyAssoc(cfg.SideEntries, cfg.L1DBlock)
		if err != nil {
			return err
		}
	}
	return nil
}

// L1 exposes the L1 tag array for tests and invariant checks.
func (d *DUnit) L1() *cache.Cache { return d.l1 }

// Side exposes the side buffer tag array (nil if none).
func (d *DUnit) Side() *cache.Cache { return d.side }

// SetMetrics attaches (or detaches, with nil) an observability collector.
func (d *DUnit) SetMetrics(c *metrics.Collector) {
	d.metrics = c
	if c != nil && d.side != nil && d.sideInsertAt == nil {
		d.sideInsertAt = make(map[uint64]uint64)
	}
}

// SetAttrib attaches (or detaches, with nil) an attribution collector.
func (d *DUnit) SetAttrib(a *attrib.Collector) { d.attrib = a }

// CanAccept reports whether another access fits in this cycle's ports.
func (d *DUnit) CanAccept() bool { return d.portsUsed < d.cfg.L1DPorts }

// MSHRFull reports whether a new miss could not be tracked right now.
func (d *DUnit) MSHRFull() bool { return d.mshr.full() }

func (d *DUnit) beginCycle() { d.portsUsed = 0 }

// specFlags masks the provenance bits a speculative fill leaves on a block.
const specFlags = cache.FlagWrong | cache.FlagPrefetch

// Access issues a data access at the given cycle and returns the tracking
// request. The caller must have checked CanAccept. Completion is indicated
// by req.Done with the value available at req.DoneCycle. src tags the
// issuing execution mode; pc is the issuing instruction (-1 if unknown).
//
// The routing logic implements Figure 6 of the paper; see the package
// comment for a summary.
func (d *DUnit) Access(cycle uint64, addr uint64, kind AccessKind, src Source, pc int) *Request {
	addr &= PhysMask
	d.portsUsed++
	d.Traffic++
	block := d.l1.BlockAddr(addr)
	req := d.pool.get()
	req.ID = d.nextID
	req.Addr = addr
	req.Kind = kind
	req.Src = src
	req.PC = pc
	req.Issued = cycle
	req.held = true
	d.nextID++

	if src.Wrong() {
		d.WrongAcc++
		if d.attrib != nil {
			d.obsWrongIssue(cycle, pc)
		}
		return d.accessWrong(cycle, block, req)
	}

	d.Accesses++
	flags, hit := d.l1.Access(addr, kind == Store)
	if hit {
		if d.attrib != nil {
			d.obsDemandAccess(cycle, pc, block, false)
			if flags&specFlags != 0 {
				d.obsSpecTouch(cycle, block)
			}
		}
		d.notePrefetchProvenance(flags)
		// Tagged next-line prefetch: first demand hit to a prefetched block
		// triggers a prefetch of the next line (nlp configuration).
		if d.cfg.NextLinePrefetch && flags&cache.FlagPrefetch != 0 {
			d.issuePrefetch(cycle, d.l1.NextBlock(addr), pc)
		}
		d.complete(cycle, req, cycle+uint64(d.cfg.L1HitLat))
		return req
	}

	// L1 miss: the side buffer is probed in parallel.
	if d.side != nil {
		if sflags, shit := d.side.Access(block, false); shit {
			d.SideHits++
			d.notePrefetchProvenance(sflags)
			if sflags&cache.FlagWrong != 0 {
				d.WrongUseful++
			}
			if d.attrib != nil {
				d.obsDemandAccess(cycle, pc, block, false)
				if sflags&specFlags != 0 {
					d.obsSpecTouch(cycle, block)
				} else {
					d.obsVictimHit(cycle, block)
				}
			}
			if d.metrics != nil {
				if at, ok := d.sideInsertAt[block]; ok {
					d.obsWECPromotion(cycle, cycle-at)
					delete(d.sideInsertAt, block)
				}
			}
			// Swap: the block moves into L1; the L1 victim moves into the
			// side buffer (WEC and VC behaviour; the PB promotes without
			// keeping a victim, matching a conventional prefetch buffer).
			d.side.Remove(block)
			if d.attrib != nil {
				d.obsPromote(cycle, block)
			}
			victim := d.l1.Insert(block, 0, kind == Store)
			if victim.Valid {
				if d.sideTakesVictims() {
					d.sideInsert(cycle, victim.Addr, victim.Flags, victim.Dirty,
						attrib.OriginVictim, -1, attrib.OriginDemand, -1)
				} else {
					if victim.Dirty {
						d.h.writeback(d.tu, cycle, victim.Addr)
					}
					if d.attrib != nil {
						d.obsEvict(cycle, victim.Addr, attrib.OriginDemand, -1)
					}
				}
			}
			// A correct-path hit on a wrong-fetched block in the WEC
			// initiates a next-line prefetch whose result goes to the WEC;
			// likewise the first hit to a tagged-prefetched block in the PB.
			if d.cfg.Side == SideWEC && !d.cfg.WECNoNextLine && sflags&cache.FlagWrong != 0 {
				d.issuePrefetch(cycle, d.l1.NextBlock(addr), pc)
			} else if d.cfg.NextLinePrefetch && sflags&cache.FlagPrefetch != 0 {
				d.issuePrefetch(cycle, d.l1.NextBlock(addr), pc)
			}
			d.complete(cycle, req, cycle+uint64(d.cfg.L1HitLat))
			return req
		}
	}

	// Miss in both structures: demand fill from below.
	d.Misses++
	if d.attrib != nil {
		d.obsDemandAccess(cycle, pc, block, true)
	}
	if d.cfg.NextLinePrefetch {
		// Tagged prefetch initiates on every demand miss.
		d.issuePrefetch(cycle, d.l1.NextBlock(addr), pc)
	}
	d.miss(cycle, block, req)
	return req
}

// accessWrong handles a wrong-execution load: hits refresh LRU state only,
// misses fill the WEC when present (or L1 when the configuration lets wrong
// fills pollute, as in wp/wth without a WEC).
func (d *DUnit) accessWrong(cycle uint64, block uint64, req *Request) *Request {
	if d.l1.Touch(block) {
		d.complete(cycle, req, cycle+uint64(d.cfg.L1HitLat))
		return req
	}
	if d.side != nil && d.side.Touch(block) {
		d.complete(cycle, req, cycle+uint64(d.cfg.L1HitLat))
		return req
	}
	d.miss(cycle, block, req)
	return req
}

// miss registers the request in the MSHRs and forwards it to the L2 when it
// opens a new entry. An MSHR-full condition completes the request late, at
// a pessimistic memory latency, rather than stalling the simulator.
func (d *DUnit) miss(cycle uint64, block uint64, req *Request) {
	allocated, ok := d.mshr.add(block, req)
	if !ok {
		d.complete(cycle, req, cycle+uint64(d.cfg.MemLat))
		return
	}
	if allocated {
		d.h.toL2(cycle, d.tu, false, block)
	}
}

// issuePrefetch requests block into the side buffer if it is not already
// resident or in flight. pc is the demand instruction that triggered it.
func (d *DUnit) issuePrefetch(cycle uint64, block uint64, pc int) {
	if d.side == nil && !d.cfg.NextLinePrefetch {
		return
	}
	if d.l1.Probe(block) || (d.side != nil && d.side.Probe(block)) || d.mshr.lookup(block) {
		return
	}
	if d.mshr.full() {
		return
	}
	req := d.pool.get()
	req.ID = d.nextID
	req.Addr = block
	req.Kind = Prefetch
	req.Src = SrcDemand
	req.PC = pc
	req.Issued = cycle
	d.nextID++
	d.PrefIssued++
	allocated, ok := d.mshr.add(block, req)
	if !ok {
		d.pool.put(req)
		return
	}
	if allocated {
		d.h.toL2(cycle, d.tu, false, block)
	}
}

// originOf maps a request to its attribution fill origin.
func originOf(req *Request) attrib.Origin {
	switch {
	case req.Kind == Prefetch:
		return attrib.OriginPrefetch
	case req.Src == SrcWrongPath:
		return attrib.OriginWrongPath
	case req.Src == SrcWrongThread:
		return attrib.OriginWrongThread
	}
	return attrib.OriginDemand
}

// fill delivers a block from the lower hierarchy at the given cycle,
// walking the MSHR entry's intrusive waiter chain in arrival order.
func (d *DUnit) fill(block uint64, cycle uint64) {
	chain := d.mshr.complete(block)
	demand := false // any correct-path demand waiter
	store := false
	prefetchOnly := true // only prefetch waiters
	wrongOnly := true    // only wrong-execution waiters (no correct demand)
	allocOrigin, allocPC := attrib.OriginDemand, -1
	first := true
	demandPC := -1
	for req := chain; req != nil; {
		next := req.next
		req.next = nil
		if first {
			// The chain head is the request that opened the MSHR entry.
			allocOrigin, allocPC = originOf(req), req.PC
			first = false
		}
		switch {
		case req.Kind == Prefetch:
		case req.Src.Wrong():
			prefetchOnly = false
		default:
			demand = true
			prefetchOnly = false
			wrongOnly = false
			if demandPC < 0 {
				demandPC = req.PC
			}
			if req.Kind == Store {
				store = true
			}
		}
		d.complete(cycle, req, cycle)
		req.pending = false
		if !req.held {
			d.pool.put(req)
		}
		req = next
	}

	switch {
	case demand:
		// Correct-path fill goes to L1; the victim goes to the WEC/VC.
		if d.attrib != nil {
			if allocOrigin.Spec() {
				// A speculative request opened this entry and a correct
				// demand merged into it: right block, partially hidden
				// latency ("late" prefetch).
				d.obsLateFill(cycle, allocOrigin, allocPC)
			}
			d.obsFill(cycle, block, attrib.OriginDemand, demandPC, attrib.StructL1)
		}
		victim := d.l1.Insert(block, 0, store)
		if victim.Valid {
			if d.sideTakesVictims() {
				d.sideInsert(cycle, victim.Addr, victim.Flags, victim.Dirty,
					attrib.OriginVictim, -1, attrib.OriginDemand, -1)
			} else {
				if victim.Dirty {
					d.h.writeback(d.tu, cycle, victim.Addr)
				}
				if d.attrib != nil {
					d.obsEvict(cycle, victim.Addr, attrib.OriginDemand, -1)
				}
			}
		}
	case prefetchOnly && wrongOnly:
		// Pure prefetch fill: into the side buffer when one exists, else
		// (nlp without PB cannot happen; PB is required) drop into L1.
		fl := uint8(cache.FlagPrefetch)
		if d.cfg.Side == SideWEC {
			// WEC prefetches chain: mark them wrong-fetched so a later
			// correct-path hit triggers the next line (§3.2.1).
			fl |= cache.FlagWrong
		}
		if d.side != nil {
			d.sideInsert(cycle, block, fl, false, allocOrigin, allocPC, allocOrigin, allocPC)
		} else {
			d.fillL1Polluting(cycle, block, fl, allocOrigin, allocPC)
		}
	default:
		// Wrong-execution fill (possibly merged with prefetches).
		if d.cfg.Side == SideWEC {
			d.sideInsert(cycle, block, cache.FlagWrong, false, allocOrigin, allocPC, allocOrigin, allocPC)
		} else if d.cfg.WrongFillsToL1 {
			d.fillL1Polluting(cycle, block, cache.FlagWrong, allocOrigin, allocPC)
		} else if d.side != nil && d.cfg.Side == SidePB {
			d.sideInsert(cycle, block, cache.FlagWrong, false, allocOrigin, allocPC, allocOrigin, allocPC)
		}
		// With SideVC and !WrongFillsToL1 the block is dropped entirely
		// (pure orig semantics never reach here: orig issues no wrong loads).
	}
}

// fillL1Polluting inserts a wrong-execution or prefetch block directly into
// L1 (the wp/wth configurations), sending the victim to the VC if present.
// origin/pc attribute the speculative fill that displaces the victim.
func (d *DUnit) fillL1Polluting(cycle uint64, block uint64, flags uint8, origin attrib.Origin, pc int) {
	if d.attrib != nil {
		d.obsFill(cycle, block, origin, pc, attrib.StructL1)
	}
	victim := d.l1.Insert(block, flags, false)
	if victim.Valid {
		if d.cfg.Side == SideVC {
			d.sideInsert(cycle, victim.Addr, victim.Flags, victim.Dirty,
				attrib.OriginVictim, -1, origin, pc)
		} else {
			if victim.Dirty {
				d.h.writeback(d.tu, cycle, victim.Addr)
			}
			if d.attrib != nil {
				d.obsEvict(cycle, victim.Addr, origin, pc)
			}
		}
	}
}

// sideTakesVictims reports whether L1 victims are captured by the side
// buffer (victim caches always; the WEC unless ablated).
func (d *DUnit) sideTakesVictims() bool {
	switch d.cfg.Side {
	case SideVC:
		return true
	case SideWEC:
		return !d.cfg.WECNoVictim
	}
	return false
}

// sideInsert places a block in the side buffer. origin/pc describe the
// block's own provenance (a speculative fill or an L1 victim capture);
// cause/causePC describe the root event, so a side-buffer eviction this
// insert forces can be attributed to the speculation that started the
// cascade.
func (d *DUnit) sideInsert(cycle uint64, block uint64, flags uint8, dirty bool,
	origin attrib.Origin, pc int, cause attrib.Origin, causePC int) {
	d.SideInserts++
	victim := d.side.Insert(block, flags, dirty)
	if victim.Valid && victim.Dirty {
		d.h.writeback(d.tu, cycle, victim.Addr)
	}
	if d.metrics != nil {
		d.sideInsertAt[block] = cycle
		if victim.Valid {
			delete(d.sideInsertAt, victim.Addr)
		}
	}
	if d.attrib != nil {
		if victim.Valid {
			d.obsEvict(cycle, victim.Addr, cause, causePC)
		}
		if origin == attrib.OriginVictim {
			d.obsVictimCapture(cycle, block)
		} else {
			d.obsFill(cycle, block, origin, pc, attrib.StructSide)
		}
	}
}

func (d *DUnit) notePrefetchProvenance(flags uint8) {
	if flags&cache.FlagPrefetch != 0 {
		d.PrefUseful++
	}
}

// complete finishes a request. cycle is the simulated cycle the completion
// is decided on (the access cycle for hits, the fill cycle for misses) and
// tags the deferred metrics event; at is the value-availability cycle.
func (d *DUnit) complete(cycle uint64, req *Request, at uint64) {
	req.Done = true
	req.DoneCycle = at
	if d.metrics != nil && req.Kind != Prefetch {
		d.obsMemAccess(cycle, req, at)
	}
}

// applyUpdate receives a sequential-mode coherence update: if the block is
// cached here it is refreshed in place (update protocol, §3.2.2). Returns
// whether any structure held the block.
func (d *DUnit) applyUpdate(addr uint64) bool {
	block := d.l1.BlockAddr(addr)
	hit := false
	if d.l1.Probe(block) {
		d.l1.SetDirty(block)
		hit = true
	}
	if d.side != nil && d.side.Probe(block) {
		hit = true
	}
	if hit {
		d.UpdateRecv++
	}
	return hit
}

// Reset clears all cache contents, MSHRs, and statistics.
func (d *DUnit) Reset() {
	d.l1.Reset()
	if d.side != nil {
		d.side.Reset()
	}
	d.mshr.reset()
	if d.sideInsertAt != nil {
		d.sideInsertAt = make(map[uint64]uint64)
	}
	d.portsUsed = 0
	d.Accesses, d.Misses, d.Traffic, d.WrongAcc = 0, 0, 0, 0
	d.SideHits, d.SideInserts, d.PrefIssued, d.PrefUseful = 0, 0, 0, 0
	d.WrongUseful, d.UpdateRecv = 0, 0
}
