package mem

// Functional cache warming for sampled simulation. Between detailed
// measurement windows the machine fast-forwards on the functional
// interpreter; these entry points replay the fast-forwarded memory
// references into the tag arrays — L1, side buffer, and the shared L2 — so
// each window starts from the cache state a detailed run would have built.
//
// Warming is deliberately invisible to everything the detailed simulator
// reports: no statistics counters, no MSHRs, no latency, no metrics or
// attribution events, no port arbitration. Blocks land instantly (perfect
// memory), which is the standard SMARTS-style functional-warming
// approximation; the per-window detailed warmup on top of it absorbs the
// residual state error.

// WarmLoad replays one fast-forwarded load into the tag arrays.
func (d *DUnit) WarmLoad(addr uint64) {
	addr &= PhysMask
	block := d.l1.BlockAddr(addr)
	if d.l1.Touch(block) {
		return
	}
	if d.side != nil && d.side.Touch(block) {
		// Promote like a demand side-buffer hit: the block swaps into L1.
		d.side.Remove(block)
		d.warmInsertL1(block, false)
		return
	}
	d.h.WarmL2(block)
	d.warmInsertL1(block, false)
}

// WarmStore replays one fast-forwarded store into the tag arrays.
func (d *DUnit) WarmStore(addr uint64) {
	addr &= PhysMask
	block := d.l1.BlockAddr(addr)
	if d.l1.Touch(block) {
		d.l1.SetDirty(block)
		return
	}
	if d.side != nil && d.side.Touch(block) {
		d.side.Remove(block)
		d.warmInsertL1(block, true)
		return
	}
	d.h.WarmL2(block)
	d.warmInsertL1(block, true)
}

// warmInsertL1 fills block into L1, routing the victim the way a demand
// fill would: captured by the side buffer when the configuration keeps
// victims, written back to the L2 when dirty otherwise.
func (d *DUnit) warmInsertL1(block uint64, dirty bool) {
	victim := d.l1.Insert(block, 0, dirty)
	if !victim.Valid {
		return
	}
	if d.sideTakesVictims() {
		sv := d.side.Insert(victim.Addr, victim.Flags, victim.Dirty)
		if sv.Valid && sv.Dirty {
			d.h.warmWriteback(sv.Addr)
		}
		return
	}
	if victim.Dirty {
		d.h.warmWriteback(victim.Addr)
	}
}

// warmUpdate mirrors the sequential-mode update protocol functionally: a
// resident copy is refreshed in place (no bus-traffic accounting).
func (d *DUnit) warmUpdate(addr uint64) {
	block := d.l1.BlockAddr(addr)
	if d.l1.Probe(block) {
		d.l1.SetDirty(block)
	}
}

// WarmFetch replays one fast-forwarded instruction-block reference into
// the I-cache (pc granularity; callers typically invoke it once per block
// crossing, not per instruction).
func (iu *IUnit) WarmFetch(pc int) {
	addr := instAddr(pc)
	block := iu.l1i.BlockAddr(addr)
	if iu.l1i.Touch(block) {
		return
	}
	iu.h.WarmL2(block)
	iu.l1i.Insert(block, 0, false)
}

// WarmL2 touches or fills a block in the shared L2.
func (h *Hierarchy) WarmL2(block uint64) {
	l2block := h.l2.BlockAddr(block)
	if h.l2.Touch(l2block) {
		return
	}
	h.l2.Insert(l2block, 0, false)
}

// warmWriteback lands a dirty L1/side victim in the L2 without traffic
// accounting.
func (h *Hierarchy) warmWriteback(block uint64) {
	h.l2.Insert(h.l2.BlockAddr(block), 0, true)
}

// WarmSequentialStore replays a fast-forwarded store executed in
// sequential mode: the issuing TU's caches take the store, every other
// TU's resident copy is refreshed (the §3.2.2 update protocol, minus the
// bus statistics).
func (h *Hierarchy) WarmSequentialStore(srcTU int, addr uint64) {
	for tu := range h.dunits {
		if tu == srcTU {
			h.dunits[tu].WarmStore(addr)
		} else {
			h.dunits[tu].warmUpdate(addr)
		}
	}
}
