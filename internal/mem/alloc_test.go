package mem

import "testing"

// TestAccessHitPathZeroAllocs pins the steady-state cost of the L1 access
// path: once the pool is primed and the block is resident, a demand load
// that hits in the L1 must not allocate at all. This is the contract the
// request slab/freelist and the intrusive MSHR chains exist to provide;
// any map insert, slice growth, or interface boxing on the hit path shows
// up here as a failure.
func TestAccessHitPathZeroAllocs(t *testing.T) {
	h := newH(t, 1, nil)
	d := h.DUnit(0)
	var cyc uint64

	// Warm the block (cold miss all the way to DRAM) and prime the pool.
	h.BeginCycle(cyc)
	req := d.Access(cyc, 0x1000, Load, SrcDemand, -1)
	h.Tick(cyc)
	cyc++
	for !req.Done {
		run(h, &cyc, 1)
	}
	req.Release()

	allocs := testing.AllocsPerRun(1000, func() {
		h.BeginCycle(cyc)
		r := d.Access(cyc, 0x1000, Load, SrcDemand, -1)
		if !r.Done {
			t.Fatal("expected an L1 hit on a warmed block")
		}
		r.Release()
		h.Tick(cyc)
		cyc++
	})
	if allocs != 0 {
		t.Fatalf("L1 hit path allocates %.2f allocs/op, want 0", allocs)
	}
}

// TestAccessMissSteadyStateZeroAllocs covers the miss path once warm: with
// the request pool primed and the MSHR file at steady state, an L1 miss
// that hits in the L2 must also run allocation-free (the fill heap and L2
// queue reuse their backing arrays).
func TestAccessMissSteadyStateZeroAllocs(t *testing.T) {
	h := newH(t, 1, nil)
	d := h.DUnit(0)
	var cyc uint64

	// Pull two conflicting blocks through once so both are L2-resident and
	// every backing array has grown to steady-state capacity.
	l1Sets := uint64(DefaultConfig().L1DSize)
	addrA, addrB := uint64(0x2000), uint64(0x2000+l1Sets)
	for _, a := range []uint64{addrA, addrB, addrA, addrB} {
		h.BeginCycle(cyc)
		r := d.Access(cyc, a, Load, SrcDemand, -1)
		h.Tick(cyc)
		cyc++
		for !r.Done {
			run(h, &cyc, 1)
		}
		r.Release()
	}

	allocs := testing.AllocsPerRun(200, func() {
		// addrA and addrB conflict in the direct-mapped L1, so each access
		// misses L1 and round-trips through the L2 queue and fill heap.
		h.BeginCycle(cyc)
		r := d.Access(cyc, addrA, Load, SrcDemand, -1)
		h.Tick(cyc)
		cyc++
		for !r.Done {
			run(h, &cyc, 1)
		}
		r.Release()
		h.BeginCycle(cyc)
		r = d.Access(cyc, addrB, Load, SrcDemand, -1)
		h.Tick(cyc)
		cyc++
		for !r.Done {
			run(h, &cyc, 1)
		}
		r.Release()
	})
	if allocs != 0 {
		t.Fatalf("steady-state miss path allocates %.2f allocs/op, want 0", allocs)
	}
}
