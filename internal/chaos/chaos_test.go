package chaos

import (
	"errors"
	"testing"
	"time"
)

// drawPattern records the first n decisions of one point.
func drawPattern(in *Injector, p Point, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = in.Hit(p)
	}
	return out
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	for p := Point(0); p < numPoints; p++ {
		if in.Hit(p) {
			t.Fatalf("nil injector fired %v", p)
		}
	}
	in.Panic(PointMachineStep) // must not panic
	in.SlowCycle()
	if err := in.FailWrite(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroConfigNeverFires(t *testing.T) {
	in := New(Config{Seed: 7}, "mcf|cfg")
	for i := 0; i < 10000; i++ {
		for p := Point(0); p < numPoints; p++ {
			if in.Hit(p) {
				t.Fatalf("zero-probability point %v fired", p)
			}
		}
	}
	if (Config{}).Enabled() {
		t.Error("zero config reports Enabled")
	}
	if !(Config{Livelock: 0.1}).Enabled() {
		t.Error("non-zero config reports disabled")
	}
}

func TestDeterminismAcrossInstances(t *testing.T) {
	cfg := Config{Seed: 42, MachinePanic: 0.01, CorePanic: 0.02, Livelock: 0.005, SlowCycle: 0.03, LedgerFail: 0.1}
	a := New(cfg, "gzip|orig")
	b := New(cfg, "gzip|orig")
	for p := Point(0); p < numPoints; p++ {
		pa := drawPattern(a, p, 5000)
		pb := drawPattern(b, p, 5000)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("point %v draw %d differs between identical injectors", p, i)
			}
		}
	}
}

func TestSaltSeparatesStreams(t *testing.T) {
	cfg := Config{Seed: 42, MachinePanic: 0.5}
	a := drawPattern(New(cfg, "mcf|a"), PointMachineStep, 64)
	b := drawPattern(New(cfg, "mcf|b"), PointMachineStep, 64)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different salts produced identical draw streams")
	}
}

func TestProbabilityRoughlyHonored(t *testing.T) {
	cfg := Config{Seed: 1, LedgerFail: 0.25}
	in := New(cfg, "x")
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if in.Hit(PointLedgerWrite) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if got < 0.23 || got > 0.27 {
		t.Errorf("hit rate %.4f for probability 0.25", got)
	}
}

func TestProbabilityOneAlwaysFires(t *testing.T) {
	in := New(Config{Seed: 3, Livelock: 1}, "x")
	for i := 0; i < 100; i++ {
		if !in.Hit(PointLivelock) {
			t.Fatal("probability-1 point failed to fire")
		}
	}
}

func TestPanicRaisesInjected(t *testing.T) {
	in := New(Config{Seed: 9, CorePanic: 1}, "mesa|wec")
	defer func() {
		r := recover()
		inj, ok := r.(Injected)
		if !ok {
			t.Fatalf("recovered %T, want Injected", r)
		}
		if inj.Point != PointCoreStep || inj.Salt != "mesa|wec" {
			t.Errorf("injected = %+v", inj)
		}
	}()
	in.Panic(PointCoreStep)
	t.Fatal("Panic did not panic")
}

func TestFailWrite(t *testing.T) {
	in := New(Config{Seed: 5, LedgerFail: 1}, "x")
	err := in.FailWrite()
	var inj Injected
	if !errors.As(err, &inj) || inj.Point != PointLedgerWrite {
		t.Fatalf("FailWrite = %v", err)
	}
}

func TestSlowCycleSleeps(t *testing.T) {
	in := New(Config{Seed: 5, SlowCycle: 1, SlowCycleSleep: 2 * time.Millisecond}, "x")
	start := time.Now()
	in.SlowCycle()
	if time.Since(start) < time.Millisecond {
		t.Error("SlowCycle did not sleep")
	}
}

func TestPointNames(t *testing.T) {
	if PointLivelock.String() != "livelock" || Point(200).String() != "point(200)" {
		t.Error("point naming broken")
	}
}
