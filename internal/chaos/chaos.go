// Package chaos is a deterministic, seeded fault injector for the run
// supervision layer. Tests (and the CI chaos suite) attach an Injector to
// the simulator's probability points — panics in the sta and core step
// loops, artificial livelocks, slow cycles in the memory hierarchy, and
// transient write failures in the results ledger — to prove the supervisor
// isolates, classifies, quarantines, and resumes correctly.
//
// Determinism contract: every decision is a pure function of (Config.Seed,
// salt, point, draw index). Each simulation derives its own Injector from
// the suite seed and its run key, so worker-pool scheduling order cannot
// change which runs are faulted. With a nil *Injector every probe is an
// untaken nil check, and the machine's behaviour is bit-identical to an
// uninstrumented run.
package chaos

import (
	"fmt"
	"hash/fnv"
	"time"
)

// Point identifies one injection site in the simulator.
type Point uint8

// The injection sites.
const (
	// PointMachineStep injects a panic at the top of sta.Machine.step.
	PointMachineStep Point = iota
	// PointCoreStep injects a panic inside core.Core.Step.
	PointCoreStep
	// PointLivelock freezes every thread unit (no further retirement) so
	// the forward-progress watchdog must fire.
	PointLivelock
	// PointSlowCycle sleeps SlowCycle wall-clock time inside
	// mem.Hierarchy.Tick, so per-run timeouts can trip on a live machine.
	PointSlowCycle
	// PointLedgerWrite fails a results-ledger append with a transient
	// error, exercising the IO retry path.
	PointLedgerWrite
	// PointNetDrop discards an HTTP response on the fleet wire (the request
	// still reaches the server, so side effects happen — the receiver must
	// be idempotent).
	PointNetDrop
	// PointNetDelay stalls an HTTP exchange by NetDelaySleep, creating
	// heartbeat and lease-expiry races.
	PointNetDelay
	// PointNetDup replays an HTTP request a second time before delivering
	// the second response, exercising duplicate-delivery idempotency.
	PointNetDup
	// PointNetTrunc truncates an HTTP response body mid-JSON, so clients
	// must treat parse failures as transient.
	PointNetTrunc
	// PointWorkerKill abruptly kills a fleet worker mid-cell: in-flight
	// simulations are abandoned without a result, leases expire, and the
	// coordinator must reassign.
	PointWorkerKill
	numPoints
)

var pointNames = [numPoints]string{
	PointMachineStep: "machine-step-panic",
	PointCoreStep:    "core-step-panic",
	PointLivelock:    "livelock",
	PointSlowCycle:   "slow-cycle",
	PointLedgerWrite: "ledger-write-fail",
	PointNetDrop:     "net-drop",
	PointNetDelay:    "net-delay",
	PointNetDup:      "net-dup",
	PointNetTrunc:    "net-trunc",
	PointWorkerKill:  "worker-kill",
}

// String names the injection point.
func (p Point) String() string {
	if p < numPoints {
		return pointNames[p]
	}
	return fmt.Sprintf("point(%d)", uint8(p))
}

// Config sets per-point injection probabilities (0 disables a point, 1
// fires on the first draw). The zero value injects nothing.
type Config struct {
	Seed uint64

	// Per-draw probabilities. Step-loop points draw once per simulated
	// cycle (machine) or core step, so probabilities there should be tiny
	// (e.g. 1e-6); ledger probabilities draw once per append.
	MachinePanic float64
	CorePanic    float64
	Livelock     float64
	SlowCycle    float64
	LedgerFail   float64

	// Network fault probabilities, drawn once per HTTP exchange (or, for
	// WorkerKill, once per heartbeat/claim tick). These drive the fleet
	// protocol soak and never touch the simulator itself, so they are
	// excluded from Enabled (see NetEnabled).
	NetDrop    float64
	NetDelay   float64
	NetDup     float64
	NetTrunc   float64
	WorkerKill float64

	// SlowCycleSleep is the wall-clock pause per SlowCycle hit
	// (default 1ms).
	SlowCycleSleep time.Duration
	// NetDelaySleep is the wall-clock stall per NetDelay hit
	// (default 50ms).
	NetDelaySleep time.Duration
}

// Enabled reports whether any simulator-level point can fire (network
// points are deliberately excluded: they change wire behaviour, never
// simulated state).
func (c Config) Enabled() bool {
	return c.MachinePanic > 0 || c.CorePanic > 0 || c.Livelock > 0 ||
		c.SlowCycle > 0 || c.LedgerFail > 0
}

// NetEnabled reports whether any network-level point can fire.
func (c Config) NetEnabled() bool {
	return c.NetDrop > 0 || c.NetDelay > 0 || c.NetDup > 0 ||
		c.NetTrunc > 0 || c.WorkerKill > 0
}

func (c Config) prob(p Point) float64 {
	switch p {
	case PointMachineStep:
		return c.MachinePanic
	case PointCoreStep:
		return c.CorePanic
	case PointLivelock:
		return c.Livelock
	case PointSlowCycle:
		return c.SlowCycle
	case PointLedgerWrite:
		return c.LedgerFail
	case PointNetDrop:
		return c.NetDrop
	case PointNetDelay:
		return c.NetDelay
	case PointNetDup:
		return c.NetDup
	case PointNetTrunc:
		return c.NetTrunc
	case PointWorkerKill:
		return c.WorkerKill
	}
	return 0
}

// Injected is the panic value raised at panic points, so supervisors (and
// tests) can tell injected faults from real simulator bugs.
type Injected struct {
	Point Point
	Salt  string
}

func (i Injected) Error() string {
	return fmt.Sprintf("chaos: injected %s fault (%s)", i.Point, i.Salt)
}

// Injector draws deterministic fault decisions for one simulation run (or
// one ledger). A nil Injector never fires. Not safe for concurrent use:
// attach one injector per machine, like a metrics collector.
type Injector struct {
	// Hook, when non-nil, observes every fault the instant it fires (before
	// the panic is raised / the sleep starts / the error returns), so the
	// telemetry layer can journal injected faults as structured events. It
	// runs on whichever goroutine drew the decision and so must be safe for
	// concurrent use. Forked children inherit the parent's hook.
	Hook func(p Point, salt string)

	cfg  Config
	salt string
	// thresholds[p] compares directly against the raw xorshift draw so the
	// hot-path check is one integer compare.
	thresholds [numPoints]uint64
	states     [numPoints]uint64
	sleep      time.Duration
	netSleep   time.Duration
}

// New derives a run-scoped injector from the suite configuration and a
// salt (typically the harness memoization key), so each (bench, config)
// cell draws an independent, reproducible fault stream.
func New(cfg Config, salt string) *Injector {
	in := &Injector{cfg: cfg, salt: salt, sleep: cfg.SlowCycleSleep, netSleep: cfg.NetDelaySleep}
	if in.sleep <= 0 {
		in.sleep = time.Millisecond
	}
	if in.netSleep <= 0 {
		in.netSleep = 50 * time.Millisecond
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", salt, cfg.Seed)
	base := h.Sum64()
	for p := Point(0); p < numPoints; p++ {
		// splitmix64 over (base, point) gives well-separated streams.
		s := base + (uint64(p)+1)*0x9E3779B97F4A7C15
		s ^= s >> 30
		s *= 0xBF58476D1CE4E5B9
		s ^= s >> 27
		s *= 0x94D049BB133111EB
		s ^= s >> 31
		if s == 0 {
			s = 1
		}
		in.states[p] = s
		prob := cfg.prob(p)
		switch {
		case prob <= 0:
			in.thresholds[p] = 0
		case prob >= 1:
			in.thresholds[p] = ^uint64(0)
		default:
			in.thresholds[p] = uint64(prob * float64(1<<63) * 2)
		}
	}
	return in
}

// Fork derives a child injector whose streams are independent of the
// parent's but still a pure function of (Config.Seed, parent salt, sub).
// The parallel stepping path gives every thread unit its own forked
// injector so core-step draws consume per-TU streams: which cycle a fault
// fires on then cannot depend on how many worker goroutines interleave the
// TU steps. A nil parent forks to nil.
func (in *Injector) Fork(sub string) *Injector {
	if in == nil {
		return nil
	}
	child := New(in.cfg, in.salt+"|"+sub)
	child.Hook = in.Hook
	return child
}

// Hit draws one decision for the point. Nil receivers and zero-probability
// points never fire.
func (in *Injector) Hit(p Point) bool {
	if in == nil || in.thresholds[p] == 0 {
		return false
	}
	s := in.states[p]
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	in.states[p] = s
	hit := s < in.thresholds[p]
	if hit && in.Hook != nil {
		in.Hook(p, in.salt)
	}
	return hit
}

// Panic raises an Injected panic if the point fires this draw.
func (in *Injector) Panic(p Point) {
	if in.Hit(p) {
		panic(Injected{Point: p, Salt: in.salt})
	}
}

// SlowCycle sleeps the configured pause if the slow-cycle point fires.
func (in *Injector) SlowCycle() {
	if in.Hit(PointSlowCycle) {
		time.Sleep(in.sleep)
	}
}

// NetDelaySleep returns the configured per-hit network stall.
func (in *Injector) NetDelaySleep() time.Duration {
	if in == nil {
		return 0
	}
	return in.netSleep
}

// Salt returns the injector's derivation salt ("" for nil).
func (in *Injector) Salt() string {
	if in == nil {
		return ""
	}
	return in.salt
}

// FailWrite returns a transient error if the ledger-write point fires.
func (in *Injector) FailWrite() error {
	if in.Hit(PointLedgerWrite) {
		return Injected{Point: PointLedgerWrite, Salt: in.salt}
	}
	return nil
}
