package sample

import (
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero is disabled", Config{}, true},
		{"standard regime", Config{WarmupInsts: 1000, MeasureInsts: 2000, PeriodInsts: 12000}, true},
		{"no warmup", Config{MeasureInsts: 500, PeriodInsts: 5000}, true},
		{"exact", Exact(), true},
		{"no measure", Config{WarmupInsts: 1000, PeriodInsts: 12000}, false},
		{"period too small", Config{WarmupInsts: 1000, MeasureInsts: 2000, PeriodInsts: 3000}, false},
		{"period equals w+m", Config{WarmupInsts: 1, MeasureInsts: 1, PeriodInsts: 2}, false},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !Exact().Enabled() {
		t.Error("Exact() must be an enabled regime")
	}
}

func TestConfigKey(t *testing.T) {
	k := Config{WarmupInsts: 1000, MeasureInsts: 2000, PeriodInsts: 12000}.Key()
	for _, want := range []string{"1000", "2000", "12000", "sample"} {
		if !strings.Contains(k, want) {
			t.Errorf("key %q missing %q", k, want)
		}
	}
	k2 := Config{WarmupInsts: 1000, MeasureInsts: 2000, PeriodInsts: 24000}.Key()
	if k == k2 {
		t.Errorf("different regimes share key %q", k)
	}
}

// TestSamplerPhaseProtocol walks one full period through the controller
// and checks the window accounting and the re-based second period.
func TestSamplerPhaseProtocol(t *testing.T) {
	cfg := Config{WarmupInsts: 100, MeasureInsts: 200, PeriodInsts: 1000}
	s := New(cfg)
	if s.Phase() != PhaseWarmup {
		t.Fatalf("initial phase %v, want warmup", s.Phase())
	}
	if s.Due(99) || !s.Due(100) {
		t.Fatal("warmup boundary must be exactly WarmupInsts")
	}
	s.BeginMeasure(Counters{Cycles: 50, Commits: 110, L1DAcc: 10, L1DMiss: 2})
	if s.Phase() != PhaseMeasure {
		t.Fatalf("phase %v after BeginMeasure", s.Phase())
	}
	if s.Due(299) || !s.Due(300) {
		t.Fatal("measure boundary must be warmup+measure")
	}
	// Overshoot to vcount 320 (safepoint quantization): FF leg must aim at
	// the period end, not a full period from here.
	ff := s.EndMeasure(Counters{Cycles: 150, Commits: 330, L1DAcc: 40, L1DMiss: 8}, 320)
	if ff != 680 {
		t.Fatalf("ff leg %d insts, want 680 (period end 1000 - vcount 320)", ff)
	}
	w := s.Windows()
	if len(w) != 1 || w[0] != (Window{Cycles: 100, Commits: 220, L1DAcc: 30, L1DMiss: 6}) {
		t.Fatalf("window deltas %+v", w)
	}
	s.AddFF(ff)
	// FF exits a parallel region late: the next period re-bases at the
	// actual vcount so overshoot does not compound.
	s.EndFF(1040)
	if s.Phase() != PhaseWarmup {
		t.Fatalf("phase %v after EndFF", s.Phase())
	}
	if s.Due(1139) || !s.Due(1140) {
		t.Fatal("second warmup boundary must re-base at the actual vcount")
	}
	if s.FFInsts() != 680 {
		t.Fatalf("FFInsts %d, want 680", s.FFInsts())
	}
}

// TestSamplerMeasureOvershootSkipsFF: a measured window that ran past the
// whole period (long parallel region) returns a zero FF leg.
func TestSamplerMeasureOvershootSkipsFF(t *testing.T) {
	s := New(Config{WarmupInsts: 100, MeasureInsts: 200, PeriodInsts: 1000})
	s.BeginMeasure(Counters{})
	if ff := s.EndMeasure(Counters{Cycles: 900, Commits: 1500}, 1500); ff != 0 {
		t.Fatalf("ff leg %d after overshooting the period, want 0", ff)
	}
}

func TestFinishEstimate(t *testing.T) {
	cfg := Config{WarmupInsts: 100, MeasureInsts: 200, PeriodInsts: 1000}
	s := New(cfg)
	// Two identical windows of IPC 2.0, then 1000 FF instructions.
	s.BeginMeasure(Counters{})
	s.EndMeasure(Counters{Cycles: 100, Commits: 200, L1DAcc: 50, L1DMiss: 5}, 300)
	s.AddFF(1000)
	s.EndFF(1300)
	s.BeginMeasure(Counters{Cycles: 150, Commits: 1400, L1DAcc: 70, L1DMiss: 7})
	final := Counters{Cycles: 250, Commits: 1600, L1DAcc: 120, L1DMiss: 12}
	sp := s.Finish(final)
	if sp.Windows != 2 {
		t.Fatalf("windows %d, want 2 (Finish closes the open one)", sp.Windows)
	}
	if sp.IPC != 2.0 {
		t.Fatalf("IPC %v, want 2.0", sp.IPC)
	}
	// 250 detailed cycles + 1000 FF insts at IPC 2 = 750.
	if sp.EstCycles != 750 {
		t.Fatalf("EstCycles %v, want 750", sp.EstCycles)
	}
	if !(sp.EstCyclesLo <= sp.EstCycles && sp.EstCycles <= sp.EstCyclesHi) {
		t.Fatalf("interval [%v, %v] does not bracket %v", sp.EstCyclesLo, sp.EstCyclesHi, sp.EstCycles)
	}
	if sp.FFInsts != 1000 || sp.DetailedCycles != 250 || sp.DetailedInsts != 1600 {
		t.Fatalf("accounting: %+v", sp)
	}
	if sp.L1DMiss != 0.1 {
		t.Fatalf("L1D miss %v, want 0.1", sp.L1DMiss)
	}
}

// TestFinishNoWindows: halting inside the first warmup falls back to the
// run's own rates with a degenerate interval.
func TestFinishNoWindows(t *testing.T) {
	s := New(Config{WarmupInsts: 1 << 40, MeasureInsts: 10, PeriodInsts: 1 << 41})
	sp := s.Finish(Counters{Cycles: 100, Commits: 150, L1DAcc: 20, L1DMiss: 4})
	if sp.Windows != 0 {
		t.Fatalf("windows %d, want 0", sp.Windows)
	}
	if sp.IPC != 1.5 || sp.IPCLo != 1.5 || sp.IPCHi != 1.5 {
		t.Fatalf("IPC fallback %v [%v, %v], want degenerate 1.5", sp.IPC, sp.IPCLo, sp.IPCHi)
	}
	if sp.EstCycles != 100 {
		t.Fatalf("EstCycles %v with no FF, want the detailed 100", sp.EstCycles)
	}
}
