// Package sample is the SMARTS-style sampling controller for the sta
// machine: it decides, in virtual-instruction time, when detailed
// simulation switches between warmup, measurement, and functional
// fast-forward, records per-window measurements, and turns them into the
// whole-run estimate (stats.Sampled) a sampled run reports.
//
// The controller itself is machine-agnostic: the sta run loop feeds it a
// virtual instruction count (detailed correct-path commits plus
// fast-forwarded instructions) and Counters snapshots at phase
// transitions; all actual pipeline squashing, hierarchy draining, and
// functional execution happens in internal/sta. Phase boundaries are
// quantized to the machine's sequential quiescent safepoints, so windows
// can overshoot their nominal lengths — every estimator here weights by
// what each window actually measured, not by the nominal config.
package sample

import (
	"fmt"

	"repro/internal/stats"
)

// Config selects a sampling regime. The virtual-instruction axis is
// divided into periods of PeriodInsts; each period starts with
// WarmupInsts of detailed-but-unmeasured simulation (absorbing the state
// error functional warming leaves behind), then MeasureInsts of measured
// detailed simulation, and fast-forwards the remainder functionally.
type Config struct {
	WarmupInsts  uint64
	MeasureInsts uint64
	PeriodInsts  uint64
	Seed         uint64  // bootstrap RNG seed; 0 = package default
	Confidence   float64 // CI mass; 0 = 0.95
}

// Enabled reports whether the config describes an actual sampling regime.
// The zero Config is disabled (fully detailed simulation).
func (c Config) Enabled() bool {
	return c.MeasureInsts > 0 && c.PeriodInsts > c.WarmupInsts+c.MeasureInsts
}

// Validate rejects configs that are non-zero but do not describe a
// runnable regime.
func (c Config) Validate() error {
	if c.WarmupInsts == 0 && c.MeasureInsts == 0 && c.PeriodInsts == 0 {
		return nil // disabled
	}
	if c.MeasureInsts == 0 {
		return fmt.Errorf("sample: measure window must be positive")
	}
	if c.PeriodInsts <= c.WarmupInsts+c.MeasureInsts {
		return fmt.Errorf("sample: period (%d) must exceed warmup+measure (%d)",
			c.PeriodInsts, c.WarmupInsts+c.MeasureInsts)
	}
	return nil
}

// Key renders the regime's canonical memo-key suffix.
func (c Config) Key() string {
	return stats.SampleKey(c.WarmupInsts, c.MeasureInsts, c.PeriodInsts)
}

// Exact returns the degenerate regime whose single measurement window is
// the whole run: warmup zero, a measure window no program exhausts, and a
// period that still satisfies Enabled. A machine running under Exact never
// fast-forwards, so its counters are byte-identical to a detailed run —
// the equivalence tests pin that.
func Exact() Config {
	return Config{WarmupInsts: 0, MeasureInsts: 1 << 62, PeriodInsts: 1 << 63}
}

// Counters is the machine state the controller samples at phase
// transitions: total cycles, correct-path commits, and correct-path L1D
// demand accesses/misses, summed over thread units.
type Counters struct {
	Cycles  uint64
	Commits uint64
	L1DAcc  uint64
	L1DMiss uint64
}

// Window is one closed measurement window's deltas.
type Window struct {
	Cycles  uint64
	Commits uint64
	L1DAcc  uint64
	L1DMiss uint64
}

// Phase is the controller's current regime phase.
type Phase int

const (
	PhaseWarmup  Phase = iota // detailed, unmeasured
	PhaseMeasure              // detailed, measured
	PhaseFF                   // functional fast-forward
)

// Sampler drives one run's sampling regime. Not safe for concurrent use;
// the sta run loop calls it between cycles, outside the parallel workers.
type Sampler struct {
	cfg        Config
	phase      Phase
	periodBase uint64 // vcount where the current period began
	boundary   uint64 // vcount ending the current warmup/measure phase
	ffInsts    uint64
	windows    []Window
	snap       Counters
}

// New builds a sampler positioned at the start of the first period's
// warmup. The windows slice is preallocated so steady-state operation
// allocates nothing (the fast-forward path is pinned alloc-free).
func New(cfg Config) *Sampler {
	return &Sampler{
		cfg:      cfg,
		boundary: cfg.WarmupInsts,
		windows:  make([]Window, 0, 1024),
	}
}

// Config returns the regime this sampler runs.
func (s *Sampler) Config() Config { return s.cfg }

// Phase returns the current phase.
func (s *Sampler) Phase() Phase { return s.phase }

// FFInsts returns the instructions fast-forwarded so far. The machine adds
// it to detailed commits to form the virtual instruction count.
func (s *Sampler) FFInsts() uint64 { return s.ffInsts }

// Windows returns the closed measurement windows (read-only view).
func (s *Sampler) Windows() []Window { return s.windows }

// Due reports whether the current detailed phase (warmup or measure) has
// run its course at virtual instruction count vcount. The machine then
// waits for the next safepoint before transitioning, so overshoot is
// expected.
func (s *Sampler) Due(vcount uint64) bool { return vcount >= s.boundary }

// BeginMeasure transitions warmup -> measure, snapshotting the counters
// the window's deltas are taken against.
func (s *Sampler) BeginMeasure(now Counters) {
	s.snap = now
	s.phase = PhaseMeasure
	s.boundary = s.periodBase + s.cfg.WarmupInsts + s.cfg.MeasureInsts
}

// EndMeasure closes the measurement window at the given counters and
// returns how many instructions to fast-forward to reach the end of the
// period. Zero means the measured window already overshot the whole
// period (long parallel region); the caller skips the FF leg and calls
// EndFF immediately.
func (s *Sampler) EndMeasure(now Counters, vcount uint64) (ffInsts uint64) {
	s.windows = append(s.windows, delta(now, s.snap))
	s.phase = PhaseFF
	if target := s.periodBase + s.cfg.PeriodInsts; vcount < target {
		return target - vcount
	}
	return 0
}

// AddFF accumulates functionally executed instructions. The fast-forward
// leg calls it per chunk so the virtual clock stays current.
func (s *Sampler) AddFF(n uint64) { s.ffInsts += n }

// EndFF transitions fast-forward -> warmup of the next period. vcount is
// the virtual instruction count where detailed simulation resumes; the
// next period is re-based there so overshoot (fast-forward must exit any
// parallel region before stopping) never compounds across periods.
func (s *Sampler) EndFF(vcount uint64) {
	s.periodBase = vcount
	s.phase = PhaseWarmup
	s.boundary = vcount + s.cfg.WarmupInsts
}

func delta(now, snap Counters) Window {
	return Window{
		Cycles:  now.Cycles - snap.Cycles,
		Commits: now.Commits - snap.Commits,
		L1DAcc:  now.L1DAcc - snap.L1DAcc,
		L1DMiss: now.L1DMiss - snap.L1DMiss,
	}
}

// Finish closes any open measurement window at the final counters and
// builds the whole-run estimate. The point estimates are ratio-of-sums
// over the windows (each window weighted by what it measured), the
// intervals percentile bootstraps of that ratio; the cycle estimate prices
// the fast-forwarded instructions at the measured IPC on top of the
// cycles actually simulated in detail.
func (s *Sampler) Finish(final Counters) *stats.Sampled {
	if s.phase == PhaseMeasure {
		s.windows = append(s.windows, delta(final, s.snap))
	}
	sp := &stats.Sampled{
		WarmupInsts:    s.cfg.WarmupInsts,
		MeasureInsts:   s.cfg.MeasureInsts,
		PeriodInsts:    s.cfg.PeriodInsts,
		Windows:        len(s.windows),
		DetailedCycles: final.Cycles,
		DetailedInsts:  final.Commits,
		FFInsts:        s.ffInsts,
	}
	cycles := make([]float64, len(s.windows))
	commits := make([]float64, len(s.windows))
	acc := make([]float64, len(s.windows))
	miss := make([]float64, len(s.windows))
	for i, w := range s.windows {
		cycles[i] = float64(w.Cycles)
		commits[i] = float64(w.Commits)
		acc[i] = float64(w.L1DAcc)
		miss[i] = float64(w.L1DMiss)
	}
	sp.IPC = ratio(sum(commits), sum(cycles))
	sp.IPCLo, sp.IPCHi = stats.BootstrapRatioCI(commits, cycles, 0, s.cfg.Seed, s.cfg.Confidence)
	sp.L1DMiss = ratio(sum(miss), sum(acc))
	sp.L1DMissLo, sp.L1DMissHi = stats.BootstrapRatioCI(miss, acc, 0, s.cfg.Seed, s.cfg.Confidence)
	if len(s.windows) == 0 {
		// Halted inside the first warmup: no windows, but the whole run was
		// detailed, so fall back to the run's own rates.
		sp.IPC = ratio(float64(final.Commits), float64(final.Cycles))
		sp.IPCLo, sp.IPCHi = sp.IPC, sp.IPC
		sp.L1DMiss = ratio(float64(final.L1DMiss), float64(final.L1DAcc))
		sp.L1DMissLo, sp.L1DMissHi = sp.L1DMiss, sp.L1DMiss
	}
	sp.EstCycles = estCycles(final.Cycles, s.ffInsts, sp.IPC)
	// IPC interval maps inversely onto the cycle interval.
	sp.EstCyclesLo = estCycles(final.Cycles, s.ffInsts, sp.IPCHi)
	sp.EstCyclesHi = estCycles(final.Cycles, s.ffInsts, sp.IPCLo)
	return sp
}

// estCycles prices ff functional instructions at the given IPC on top of
// the detailed cycle count. A non-positive IPC (possible only in
// degenerate runs with no commits) falls back to one cycle per
// instruction so the estimate stays finite and ordered.
func estCycles(detailed, ff uint64, ipc float64) float64 {
	if ff == 0 {
		return float64(detailed)
	}
	if ipc <= 0 {
		return float64(detailed) + float64(ff)
	}
	return float64(detailed) + float64(ff)/ipc
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func ratio(n, d float64) float64 {
	if d == 0 {
		return 0
	}
	return n / d
}
