// Package stats provides the counters gathered during simulation and the
// derived metrics the paper reports: speedups relative to a baseline, and
// the execution-time-weighted average speedup across a benchmark suite
// (Lilja, "Measuring Computer Performance", the paper's reference [10]),
// which gives each benchmark equal importance regardless of its length.
package stats

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Sim aggregates the counters of one simulation run.
type Sim struct {
	Cycles     uint64
	Commits    uint64 // correct-path committed instructions
	ParCycles  uint64 // cycles spent inside parallel regions
	ParCommits uint64

	Forks        uint64
	Aborts       uint64
	WrongThreads uint64 // threads marked wrong instead of killed

	Branches    uint64 // committed conditional branches
	Mispredicts uint64

	// L1 data-cache behaviour, summed over thread units; correct-path
	// demand accesses only, matching how the paper counts misses.
	L1DAccesses uint64
	L1DMisses   uint64
	L1DTraffic  uint64 // all processor->L1 accesses incl. wrong execution

	WrongLoads     uint64 // wrong-path + wrong-thread loads issued to memory
	WrongPathLoads uint64
	WrongThLoads   uint64

	WECHits       uint64 // correct-path L1 misses that hit in the WEC
	WrongUseful   uint64 // WEC hits on wrong-fetched blocks specifically
	WECInserts    uint64
	VCHits        uint64
	PrefIssued    uint64 // prefetches issued (WEC next-line or NLP)
	PrefUseful    uint64 // prefetched blocks later hit by correct path
	L2Accesses    uint64
	L2Misses      uint64
	MemAccesses   uint64 // DRAM fills
	UpdateTraffic uint64 // sequential-mode coherence updates on the shared bus

	// Sampled carries the whole-run statistical estimate of a sampled
	// simulation; nil for fully detailed runs. When non-nil, the counters
	// above cover only the cycles simulated in detail (see sampled.go).
	Sampled *Sampled `json:"sampled,omitempty"`
}

// IPC returns committed instructions per cycle.
func (s *Sim) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Commits) / float64(s.Cycles)
}

// L1DMissRate returns the correct-path L1 data miss ratio.
func (s *Sim) L1DMissRate() float64 {
	if s.L1DAccesses == 0 {
		return 0
	}
	return float64(s.L1DMisses) / float64(s.L1DAccesses)
}

// BranchAccuracy returns the committed conditional-branch prediction rate.
func (s *Sim) BranchAccuracy() float64 {
	if s.Branches == 0 {
		return 1
	}
	return 1 - float64(s.Mispredicts)/float64(s.Branches)
}

// Add accumulates other into s (used to merge per-TU counters).
func (s *Sim) Add(other *Sim) {
	s.Cycles += other.Cycles
	s.Commits += other.Commits
	s.ParCycles += other.ParCycles
	s.ParCommits += other.ParCommits
	s.Forks += other.Forks
	s.Aborts += other.Aborts
	s.WrongThreads += other.WrongThreads
	s.Branches += other.Branches
	s.Mispredicts += other.Mispredicts
	s.L1DAccesses += other.L1DAccesses
	s.L1DMisses += other.L1DMisses
	s.L1DTraffic += other.L1DTraffic
	s.WrongLoads += other.WrongLoads
	s.WrongPathLoads += other.WrongPathLoads
	s.WrongThLoads += other.WrongThLoads
	s.WECHits += other.WECHits
	s.WrongUseful += other.WrongUseful
	s.WECInserts += other.WECInserts
	s.VCHits += other.VCHits
	s.PrefIssued += other.PrefIssued
	s.PrefUseful += other.PrefUseful
	s.L2Accesses += other.L2Accesses
	s.L2Misses += other.L2Misses
	s.MemAccesses += other.MemAccesses
	s.UpdateTraffic += other.UpdateTraffic
}

// CheckInvariants verifies the cross-counter relations that must hold for
// any run on any configuration: a violated relation means a counter is
// being bumped on the wrong path, not that the workload is unusual. The
// harness asserts this after every simulation.
func (s *Sim) CheckInvariants() error {
	rels := []struct {
		name     string
		lhs, rhs uint64 // lhs must be <= rhs
	}{
		{"WrongUseful <= WECHits", s.WrongUseful, s.WECHits},
		{"PrefUseful <= PrefIssued", s.PrefUseful, s.PrefIssued},
		{"WrongUseful <= WECInserts", s.WrongUseful, s.WECInserts},
		{"L1DMisses <= L1DAccesses", s.L1DMisses, s.L1DAccesses},
		{"WECHits <= L1D hits", s.WECHits, s.L1DAccesses - s.L1DMisses},
		{"L1DAccesses <= L1DTraffic", s.L1DAccesses, s.L1DTraffic},
		{"Mispredicts <= Branches", s.Mispredicts, s.Branches},
		{"ParCycles <= Cycles", s.ParCycles, s.Cycles},
		{"L2Misses <= L2Accesses", s.L2Misses, s.L2Accesses},
		{"WrongPathLoads+WrongThLoads <= WrongLoads", s.WrongPathLoads + s.WrongThLoads, s.WrongLoads},
	}
	for _, r := range rels {
		if r.lhs > r.rhs {
			return fmt.Errorf("stats: invariant %s violated: %d > %d", r.name, r.lhs, r.rhs)
		}
	}
	return nil
}

// Speedup returns baselineCycles/cycles: >1 means faster than baseline.
func Speedup(baselineCycles, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(baselineCycles) / float64(cycles)
}

// RelativeSpeedupPct returns the percentage improvement over a baseline,
// the form used by the paper's figures (e.g. +9.7%).
func RelativeSpeedupPct(baselineCycles, cycles uint64) float64 {
	return (Speedup(baselineCycles, cycles) - 1) * 100
}

// WeightedAverageSpeedup computes the execution-time weighted average of
// per-benchmark speedups: total baseline time over total optimized time,
// with each benchmark's baseline normalized to 1 so every benchmark counts
// equally. This is the harmonic-style mean of speedups the paper uses.
func WeightedAverageSpeedup(speedups []float64) float64 {
	if len(speedups) == 0 {
		return 0
	}
	var denom float64
	for _, s := range speedups {
		if s <= 0 {
			return 0
		}
		denom += 1 / s
	}
	return float64(len(speedups)) / denom
}

// Pct formats a ratio change as a signed percentage string.
func Pct(v float64) string { return fmt.Sprintf("%+.1f%%", v) }

// Table renders rows with aligned columns for harness output.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with space-aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// SortedKeys returns the keys of m in sorted order (deterministic output).
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CSV renders the table as RFC-4180-style comma-separated values, quoting
// cells that contain commas or quotes.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// JSON renders the table as a JSON object {"header":[...],"rows":[[...]]}.
func (t *Table) JSON() (string, error) {
	out, err := json.Marshal(struct {
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}{t.Header, t.Rows})
	if err != nil {
		return "", err
	}
	return string(out), nil
}
