// Sampled-simulation estimates: when a run executes only measurement
// windows in detail and fast-forwards the rest on the functional
// interpreter, the deterministic counters in Sim cover the detailed windows
// only, and a Sampled record carries the whole-run point estimates with
// confidence intervals. A nil Sampled pointer marks a fully detailed run;
// the memo-key suffix derived from SampleKey keeps sampled and detailed
// runs from ever silently comparing as equals anywhere downstream (harness
// memoization, the ledger, runstore manifests, simql diffs).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sampled is the statistical estimate attached to a sampled run's Sim.
type Sampled struct {
	// Configuration echo (instruction counts per sampling period). These
	// feed SampleKey, so two runs with different sampling regimes hash to
	// different memo keys.
	WarmupInsts  uint64 `json:"warmup_insts"`
	MeasureInsts uint64 `json:"measure_insts"`
	PeriodInsts  uint64 `json:"period_insts"`

	// Coverage: what actually ran in detail vs. functionally.
	Windows        int    `json:"windows"`         // closed measurement windows
	DetailedCycles uint64 `json:"detailed_cycles"` // == Sim.Cycles
	DetailedInsts  uint64 `json:"detailed_insts"`  // correct-path commits simulated in detail
	FFInsts        uint64 `json:"ff_insts"`        // instructions fast-forwarded functionally

	// Point estimates with percentile-bootstrap 95% intervals over the
	// per-window measurements. EstCycles is the headline: detailed cycles
	// plus the fast-forwarded instructions at the measured IPC.
	EstCycles   float64 `json:"est_cycles"`
	EstCyclesLo float64 `json:"est_cycles_lo"`
	EstCyclesHi float64 `json:"est_cycles_hi"`
	IPC         float64 `json:"ipc"`
	IPCLo       float64 `json:"ipc_lo"`
	IPCHi       float64 `json:"ipc_hi"`
	L1DMiss     float64 `json:"l1d_miss"`
	L1DMissLo   float64 `json:"l1d_miss_lo"`
	L1DMissHi   float64 `json:"l1d_miss_hi"`
}

// SampleKey renders a sampling regime as the canonical memo-key suffix.
// Every producer (the harness memoizer, runstore manifests, the CLIs) must
// derive the suffix through this one function so content addresses agree.
func SampleKey(warmup, measure, period uint64) string {
	return fmt.Sprintf("sample{w:%d,m:%d,p:%d}", warmup, measure, period)
}

// Key returns the memo-key suffix of this estimate's sampling regime.
func (sp *Sampled) Key() string {
	return SampleKey(sp.WarmupInsts, sp.MeasureInsts, sp.PeriodInsts)
}

// EstCycles returns the run's best whole-run cycle estimate: the sampled
// estimate when one is attached, the exact detailed count otherwise.
// Cross-run consumers (speedup tables, diffs) use this so sampled and
// detailed results flow through the same arithmetic.
func (s *Sim) EstCycles() float64 {
	if s.Sampled != nil {
		return s.Sampled.EstCycles
	}
	return float64(s.Cycles)
}

// EstIPC returns the best whole-run IPC estimate (see EstCycles).
func (s *Sim) EstIPC() float64 {
	if s.Sampled != nil {
		return s.Sampled.IPC
	}
	return s.IPC()
}

// EstL1DMissRate returns the best whole-run L1D miss-rate estimate.
func (s *Sim) EstL1DMissRate() float64 {
	if s.Sampled != nil {
		return s.Sampled.L1DMiss
	}
	return s.L1DMissRate()
}

// BootstrapCI returns the percentile bootstrap confidence interval of the
// mean of xs: boot resamples with replacement, drawn from a deterministic
// xorshift64 stream so the same inputs always produce the same interval.
// (Shared by runstore's paired diffs and the sampling estimator.)
func BootstrapCI(xs []float64, boot int, seed uint64, conf float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	if len(xs) == 1 {
		return xs[0], xs[0]
	}
	boot, conf, rng := bootParams(boot, conf, seed)
	means := make([]float64, boot)
	n := uint64(len(xs))
	for i := range means {
		var s float64
		for j := 0; j < len(xs); j++ {
			s += xs[xorshift(&rng)%n]
		}
		means[i] = s / float64(len(xs))
	}
	return percentiles(means, boot, conf)
}

// BootstrapRatioCI bootstraps the ratio-of-sums estimator sum(num)/sum(den)
// over paired observations — the form window-weighted rates take (IPC =
// commits/cycles, miss rate = misses/accesses). Resampling happens over
// whole pairs, deterministic in seed. Degenerate inputs (one pair, or a
// resample with zero denominator) collapse to the point estimate.
func BootstrapRatioCI(num, den []float64, boot int, seed uint64, conf float64) (lo, hi float64) {
	if len(num) == 0 || len(num) != len(den) {
		return 0, 0
	}
	point := ratioOfSums(num, den, nil)
	if len(num) == 1 {
		return point, point
	}
	boot, conf, rng := bootParams(boot, conf, seed)
	ratios := make([]float64, boot)
	idx := make([]int, len(num))
	n := uint64(len(num))
	for i := range ratios {
		for j := range idx {
			idx[j] = int(xorshift(&rng) % n)
		}
		ratios[i] = ratioOfSums(num, den, idx)
		if math.IsNaN(ratios[i]) || math.IsInf(ratios[i], 0) {
			ratios[i] = point
		}
	}
	return percentiles(ratios, boot, conf)
}

func ratioOfSums(num, den []float64, idx []int) float64 {
	var sn, sd float64
	if idx == nil {
		for i := range num {
			sn += num[i]
			sd += den[i]
		}
	} else {
		for _, i := range idx {
			sn += num[i]
			sd += den[i]
		}
	}
	if sd == 0 {
		return 0
	}
	return sn / sd
}

func bootParams(boot int, conf float64, seed uint64) (int, float64, uint64) {
	if boot <= 0 {
		boot = 10000
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return boot, conf, seed
}

func xorshift(rng *uint64) uint64 {
	*rng ^= *rng << 13
	*rng ^= *rng >> 7
	*rng ^= *rng << 17
	return *rng
}

func percentiles(vals []float64, boot int, conf float64) (lo, hi float64) {
	sort.Float64s(vals)
	alpha := (1 - conf) / 2
	loIdx := int(math.Floor(alpha * float64(boot)))
	hiIdx := int(math.Ceil((1-alpha)*float64(boot))) - 1
	if loIdx < 0 {
		loIdx = 0
	}
	if hiIdx >= boot {
		hiIdx = boot - 1
	}
	return vals[loIdx], vals[hiIdx]
}
