package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestIPC(t *testing.T) {
	s := &Sim{Cycles: 100, Commits: 250}
	if s.IPC() != 2.5 {
		t.Errorf("IPC = %g", s.IPC())
	}
	if (&Sim{}).IPC() != 0 {
		t.Error("zero-cycle IPC should be 0")
	}
}

func TestMissRate(t *testing.T) {
	s := &Sim{L1DAccesses: 200, L1DMisses: 50}
	if s.L1DMissRate() != 0.25 {
		t.Errorf("miss rate = %g", s.L1DMissRate())
	}
	if (&Sim{}).L1DMissRate() != 0 {
		t.Error("zero-access miss rate should be 0")
	}
}

func TestBranchAccuracy(t *testing.T) {
	s := &Sim{Branches: 100, Mispredicts: 8}
	if s.BranchAccuracy() != 0.92 {
		t.Errorf("accuracy = %g", s.BranchAccuracy())
	}
	if (&Sim{}).BranchAccuracy() != 1 {
		t.Error("no-branch accuracy should be 1")
	}
}

func TestAdd(t *testing.T) {
	a := &Sim{Cycles: 1, Commits: 2, L1DMisses: 3, WECHits: 4}
	b := &Sim{Cycles: 10, Commits: 20, L1DMisses: 30, WECHits: 40}
	a.Add(b)
	if a.Cycles != 11 || a.Commits != 22 || a.L1DMisses != 33 || a.WECHits != 44 {
		t.Errorf("Add result = %+v", a)
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(200, 100) != 2 {
		t.Error("2x speedup wrong")
	}
	if RelativeSpeedupPct(110, 100) != 10.000000000000009 &&
		math.Abs(RelativeSpeedupPct(110, 100)-10) > 1e-9 {
		t.Errorf("relative pct = %g", RelativeSpeedupPct(110, 100))
	}
	if Speedup(100, 0) != 0 {
		t.Error("zero-cycle speedup should be 0")
	}
}

func TestWeightedAverageSpeedup(t *testing.T) {
	// Equal speedups: average equals them.
	if got := WeightedAverageSpeedup([]float64{2, 2, 2}); math.Abs(got-2) > 1e-12 {
		t.Errorf("uniform average = %g", got)
	}
	// Harmonic mean of {1, 3}: 2/(1 + 1/3) = 1.5.
	if got := WeightedAverageSpeedup([]float64{1, 3}); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("average = %g, want 1.5", got)
	}
	if WeightedAverageSpeedup(nil) != 0 {
		t.Error("empty input should give 0")
	}
	if WeightedAverageSpeedup([]float64{1, 0}) != 0 {
		t.Error("non-positive speedup should give 0")
	}
}

func TestWeightedAverageBounds(t *testing.T) {
	// The weighted average always lies between min and max speedup.
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		sp := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			sp[i] = 0.5 + float64(r)/64
			lo = math.Min(lo, sp[i])
			hi = math.Max(hi, sp[i])
		}
		avg := WeightedAverageSpeedup(sp)
		return avg >= lo-1e-9 && avg <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Header: []string{"bench", "speedup"}}
	tbl.AddRow("mcf", "+18.5%")
	tbl.AddRow("vpr", "+3.0%")
	out := tbl.String()
	if !strings.Contains(out, "bench") || !strings.Contains(out, "+18.5%") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"c": 1, "a": 2, "b": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}

func TestPct(t *testing.T) {
	if Pct(9.73) != "+9.7%" {
		t.Errorf("Pct = %q", Pct(9.73))
	}
	if Pct(-1.5) != "-1.5%" {
		t.Errorf("Pct = %q", Pct(-1.5))
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Header: []string{"a", "b"}}
	tbl.AddRow("x,y", `q"r`)
	tbl.AddRow("plain", "2")
	got := tbl.CSV()
	want := "a,b\n\"x,y\",\"q\"\"r\"\nplain,2\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestTableJSON(t *testing.T) {
	tbl := &Table{Header: []string{"a"}}
	tbl.AddRow("1")
	got, err := tbl.JSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"header":["a"],"rows":[["1"]]}`
	if got != want {
		t.Errorf("JSON = %s, want %s", got, want)
	}
}
