// Package attrib implements the prefetch-effectiveness and cache-pollution
// attribution layer: an opt-in collector that sits beside metrics.Collector
// and answers *why* the speculative fill mechanisms (wrong-path loads,
// wrong-thread loads, next-line prefetch) help or hurt.
//
// The collector keeps a block-provenance table for every thread unit's L1 +
// side-buffer pair, recording who brought each resident block in (correct
// demand, wrong-path load, wrong-thread load, next-line prefetch, or an L1
// victim capture), from which instruction (PC), and when. Every speculative
// fill is classified exactly once:
//
//   - useful: a correct-path demand access touched the block before it was
//     evicted from the unit;
//   - late: a correct demand merged into the still-in-flight MSHR entry a
//     wrong/prefetch request had opened — the speculation chose the right
//     block but did not fully hide the latency;
//   - useless: the block was evicted from the unit untouched;
//   - resident: still untouched in a cache when the run ended.
//
// Pollution is attributed through a shadow table: when a speculative fill
// (or the victim cascade it triggers) pushes a correct-path block out of the
// unit, the displaced block address is remembered; a correct demand miss on
// it within Window cycles counts as one polluting event against the
// speculative fill's origin and PC.
//
// Per-load-PC profiles aggregate the same events by issuing instruction, so
// a report can show which loads drive the traffic, the misses, and the
// useful or polluting speculation.
//
// Like the metrics package, every hook tolerates a nil receiver and the
// instrumented hot paths in internal/mem guard each call site with a nil
// check, so detached runs pay one untaken branch per site.
package attrib

import (
	"fmt"

	"repro/internal/metrics"
)

// Origin identifies who caused a fill (or an eviction) in the L1/side pair.
type Origin uint8

// Fill origins. OriginDemand and OriginVictim describe correct-path data;
// the other three are the speculative mechanisms under study.
const (
	OriginDemand      Origin = iota // correct-path demand fill
	OriginWrongPath                 // squashed wrong-path load continuation
	OriginWrongThread               // load issued by a wrong-thread
	OriginPrefetch                  // tagged next-line prefetch
	OriginVictim                    // L1 victim captured by the side buffer
	numOrigins
)

// String returns the report name of the origin.
func (o Origin) String() string {
	switch o {
	case OriginDemand:
		return "demand"
	case OriginWrongPath:
		return "wrong_path"
	case OriginWrongThread:
		return "wrong_thread"
	case OriginPrefetch:
		return "prefetch"
	case OriginVictim:
		return "victim"
	}
	return fmt.Sprintf("origin(%d)", uint8(o))
}

// Spec reports whether the origin is one of the speculative fill sources.
func (o Origin) Spec() bool {
	return o == OriginWrongPath || o == OriginWrongThread || o == OriginPrefetch
}

// Structure locates a block within a thread unit's data-side pair.
type Structure uint8

// Structures of the provenance table key.
const (
	StructL1 Structure = iota
	StructSide
)

// Record is one live row of the block-provenance table.
type Record struct {
	Origin    Origin
	PC        int // issuing instruction; -1 when unknown (e.g. victims)
	TU        int
	FillCycle uint64
	Struct    Structure
	Touched   bool // a correct-path demand access has claimed the block
}

// shadowEntry remembers a correct-path block displaced by speculation.
type shadowEntry struct {
	evictedAt uint64
	by        Origin
	byPC      int
}

// unit is the per-thread-unit state: provenance records for resident blocks
// (bounded by L1 blocks + side entries) and the displaced-block shadow table.
type unit struct {
	records map[uint64]*Record
	shadow  map[uint64]shadowEntry
}

// PCProfile aggregates one load PC's memory behaviour.
type PCProfile struct {
	PC          int    `json:"pc"`
	Accesses    uint64 `json:"accesses"`     // correct-path demand accesses
	Misses      uint64 `json:"misses"`       // missed both L1 and side buffer
	WrongIssues uint64 `json:"wrong_issues"` // wrong-execution issues
	SpecFills   uint64 `json:"spec_fills"`   // speculative fills this PC caused
	Useful      uint64 `json:"useful"`
	Late        uint64 `json:"late"`
	Useless     uint64 `json:"useless"`
	Polluting   uint64 `json:"polluting"` // re-misses caused by this PC's fills
}

// Defaults for the tunable collector knobs.
const (
	// DefaultWindow is the pollution re-miss window in cycles: a displaced
	// correct-path block re-missed within this many cycles of its eviction
	// counts as pollution. An L1 working-set turnover at the paper's miss
	// rates is a few thousand cycles; 2000 keeps the attribution causal.
	DefaultWindow = 2000
	// DefaultTopN bounds the per-PC table emitted in reports.
	DefaultTopN = 20
	// maxShadow bounds each unit's displaced-block shadow table.
	maxShadow = 4096
)

// Collector is the attribution sink for one simulation run. Attach it to
// sta.Machine.Attrib before Run; read the results with Report.
//
// All hook methods tolerate a nil receiver. The collector is not safe for
// concurrent use — one collector per machine, like metrics.Collector.
type Collector struct {
	// Window is the pollution re-miss window in cycles (0 = DefaultWindow).
	Window uint64
	// TopN bounds the per-PC rows in Report (0 = DefaultTopN).
	TopN int
	// Timeline, when non-nil, receives pollution and useful-promotion
	// instant events on the owning thread unit's memory track.
	Timeline *metrics.Timeline

	units []*unit
	pcs   map[int]*PCProfile

	specFills       [numOrigins]uint64 // spec fills inserted into the unit
	late            [numOrigins]uint64 // demand merged into spec MSHR entry
	useful          [numOrigins]uint64
	useless         [numOrigins]uint64
	resident        [numOrigins]uint64 // untouched at end of run (Finish)
	polluting       [numOrigins]uint64 // displaced block re-missed in window
	pollutionEvicts [numOrigins]uint64 // correct blocks displaced by origin

	demandFills   uint64
	victimInserts uint64
	victimHits    uint64 // correct-path side hits on non-speculative blocks
	refills       uint64 // fills overwriting a live record (expected 0)
	shadowDropped uint64 // shadow-table insertions refused at capacity
	finished      bool
}

// NewCollector returns a collector with default knobs.
func NewCollector() *Collector {
	return &Collector{pcs: make(map[int]*PCProfile)}
}

func (a *Collector) window() uint64 {
	if a.Window > 0 {
		return a.Window
	}
	return DefaultWindow
}

func (a *Collector) unit(tu int) *unit {
	for tu >= len(a.units) {
		a.units = append(a.units, &unit{
			records: make(map[uint64]*Record),
			shadow:  make(map[uint64]shadowEntry),
		})
	}
	return a.units[tu]
}

func (a *Collector) pc(pc int) *PCProfile {
	if a.pcs == nil {
		a.pcs = make(map[int]*PCProfile)
	}
	p, ok := a.pcs[pc]
	if !ok {
		p = &PCProfile{PC: pc}
		a.pcs[pc] = p
	}
	return p
}

// OnDemandAccess records one correct-path demand access from pc. missBoth
// marks accesses that missed the L1 and the side buffer; those are checked
// against the shadow table for pollution attribution.
func (a *Collector) OnDemandAccess(tu, pc int, block, cycle uint64, missBoth bool) {
	if a == nil {
		return
	}
	p := a.pc(pc)
	p.Accesses++
	if !missBoth {
		return
	}
	p.Misses++
	u := a.unit(tu)
	se, ok := u.shadow[block]
	if !ok {
		return
	}
	delete(u.shadow, block)
	if cycle-se.evictedAt > a.window() {
		return
	}
	a.polluting[se.by]++
	if se.byPC >= 0 {
		a.pc(se.byPC).Polluting++
	}
	if a.Timeline != nil {
		a.Timeline.AttribInstant(tu, "pollution", cycle, map[string]any{
			"block": block, "by": se.by.String(), "age": cycle - se.evictedAt,
		})
	}
}

// OnWrongIssue records one wrong-execution access issued from pc.
func (a *Collector) OnWrongIssue(pc int) {
	if a == nil {
		return
	}
	a.pc(pc).WrongIssues++
}

// OnFill records a block entering the unit: a demand fill into the L1 or a
// speculative fill into the side buffer (or the L1 in polluting configs).
func (a *Collector) OnFill(tu int, block uint64, origin Origin, pc int, cycle uint64, st Structure) {
	if a == nil {
		return
	}
	u := a.unit(tu)
	if _, exists := u.records[block]; exists {
		a.refills++
	}
	rec := &Record{Origin: origin, PC: pc, TU: tu, FillCycle: cycle, Struct: st}
	if origin.Spec() {
		a.specFills[origin]++
		if pc >= 0 {
			a.pc(pc).SpecFills++
		}
	} else {
		// Demand fills are born claimed: their eviction is never "useless",
		// and displacing them can be pollution.
		rec.Touched = true
		a.demandFills++
	}
	u.records[block] = rec
	// The block is back in the unit; a pending shadow entry is obsolete.
	delete(u.shadow, block)
}

// OnLateFill records a fill whose MSHR entry was opened by a speculative
// request but which a correct demand access merged into: right block, too
// late to fully hide the latency. The fill itself is a demand fill.
func (a *Collector) OnLateFill(origin Origin, pc int) {
	if a == nil || !origin.Spec() {
		return
	}
	a.late[origin]++
	if pc >= 0 {
		a.pc(pc).Late++
	}
}

// OnVictimCapture records an L1 victim moving into the side buffer. The
// block stays in the unit: its provenance record (if any) moves with it,
// otherwise a victim-origin record is created.
func (a *Collector) OnVictimCapture(tu int, block, cycle uint64) {
	if a == nil {
		return
	}
	a.victimInserts++
	u := a.unit(tu)
	if rec, ok := u.records[block]; ok {
		rec.Struct = StructSide
		return
	}
	u.records[block] = &Record{
		Origin: OriginVictim, PC: -1, TU: tu,
		FillCycle: cycle, Struct: StructSide, Touched: true,
	}
}

// OnSpecTouch classifies a correct-path demand touch of a block whose cache
// flags still carried speculative provenance: the fill was useful.
func (a *Collector) OnSpecTouch(tu int, block, cycle uint64) {
	if a == nil {
		return
	}
	rec, ok := a.unit(tu).records[block]
	if !ok || rec.Touched {
		return
	}
	rec.Touched = true
	if !rec.Origin.Spec() {
		return
	}
	a.useful[rec.Origin]++
	if rec.PC >= 0 {
		a.pc(rec.PC).Useful++
	}
	if a.Timeline != nil {
		a.Timeline.AttribInstant(tu, "useful-"+rec.Origin.String(), cycle, map[string]any{
			"block": block, "age": cycle - rec.FillCycle,
		})
	}
}

// OnVictimHit records a correct-path side-buffer hit on a block with no
// speculative provenance: the side buffer acting in its victim-cache role.
func (a *Collector) OnVictimHit(tu int, block, cycle uint64) {
	if a == nil {
		return
	}
	a.victimHits++
	if rec, ok := a.unit(tu).records[block]; ok {
		rec.Touched = true
	}
}

// OnPromote records a side-buffer block swapping into the L1.
func (a *Collector) OnPromote(tu int, block uint64) {
	if a == nil {
		return
	}
	if rec, ok := a.unit(tu).records[block]; ok {
		rec.Struct = StructL1
	}
}

// OnEvict records a block leaving the unit entirely (not a victim capture).
// cause identifies what displaced it: an untouched speculative block becomes
// useless; a correct-path block displaced by speculation enters the shadow
// table so a near-term re-miss can be attributed as pollution.
func (a *Collector) OnEvict(tu int, block uint64, cause Origin, causePC int, cycle uint64) {
	if a == nil {
		return
	}
	u := a.unit(tu)
	rec, ok := u.records[block]
	if !ok {
		return
	}
	delete(u.records, block)
	if rec.Origin.Spec() && !rec.Touched {
		a.useless[rec.Origin]++
		if rec.PC >= 0 {
			a.pc(rec.PC).Useless++
		}
		return
	}
	if !cause.Spec() {
		return
	}
	a.pollutionEvicts[cause]++
	if len(u.shadow) >= maxShadow {
		for b, se := range u.shadow {
			if cycle-se.evictedAt > a.window() {
				delete(u.shadow, b)
			}
		}
		if len(u.shadow) >= maxShadow {
			a.shadowDropped++
			return
		}
	}
	u.shadow[block] = shadowEntry{evictedAt: cycle, by: cause, byPC: causePC}
}

// Finish seals the run: every speculative record still untouched in a cache
// is counted resident (neither useful nor evicted). Idempotent; Report calls
// it automatically.
func (a *Collector) Finish() {
	if a == nil || a.finished {
		return
	}
	a.finished = true
	for _, u := range a.units {
		for _, rec := range u.records {
			if rec.Origin.Spec() && !rec.Touched {
				a.resident[rec.Origin]++
			}
		}
	}
}

// RegisterInto exposes the aggregate attribution counters in a metrics
// registry under the "attrib" scope.
func (a *Collector) RegisterInto(reg *metrics.Registry) {
	if a == nil || reg == nil {
		return
	}
	sum := func(arr *[numOrigins]uint64) func() uint64 {
		return func() uint64 {
			var n uint64
			for _, v := range arr {
				n += v
			}
			return n
		}
	}
	reg.RegisterFunc("attrib", "spec_fills", sum(&a.specFills))
	reg.RegisterFunc("attrib", "useful", sum(&a.useful))
	reg.RegisterFunc("attrib", "late", sum(&a.late))
	reg.RegisterFunc("attrib", "useless", sum(&a.useless))
	reg.RegisterFunc("attrib", "polluting", sum(&a.polluting))
	reg.RegisterFunc("attrib", "demand_fills", func() uint64 { return a.demandFills })
	reg.RegisterFunc("attrib", "victim_inserts", func() uint64 { return a.victimInserts })
	reg.RegisterFunc("attrib", "victim_hits", func() uint64 { return a.victimHits })
}
