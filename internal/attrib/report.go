package attrib

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// OriginCounts splits a classification count by speculative origin.
type OriginCounts struct {
	WrongPath   uint64 `json:"wrong_path"`
	WrongThread uint64 `json:"wrong_thread"`
	Prefetch    uint64 `json:"prefetch"`
}

// Total sums the three origins.
func (o OriginCounts) Total() uint64 { return o.WrongPath + o.WrongThread + o.Prefetch }

func fromArray(arr *[numOrigins]uint64) OriginCounts {
	return OriginCounts{
		WrongPath:   arr[OriginWrongPath],
		WrongThread: arr[OriginWrongThread],
		Prefetch:    arr[OriginPrefetch],
	}
}

// Report is the attribution export schema (pinned by a golden-file test).
type Report struct {
	Cycles uint64 `json:"cycles"`
	Window uint64 `json:"window"`

	// Fill provenance.
	DemandFills   uint64       `json:"demand_fills"`
	VictimInserts uint64       `json:"victim_inserts"`
	SpecFills     OriginCounts `json:"spec_fills"`

	// Classification of every speculative fill (and the late merges that
	// never became fills of their own).
	Useful   OriginCounts `json:"useful"`
	Late     OriginCounts `json:"late"`
	Useless  OriginCounts `json:"useless"`
	Resident OriginCounts `json:"resident"`

	// Pollution: correct-path blocks displaced by speculation, and the
	// subset re-missed by correct demand within the window.
	PollutionEvictions OriginCounts `json:"pollution_evictions"`
	Polluting          OriginCounts `json:"polluting"`

	// Side-buffer victim-cache role.
	VictimHits uint64 `json:"victim_hits"`

	// Diagnostics: refills overwrote a live provenance record (expected 0);
	// shadow-table insertions refused at the capacity bound.
	Refills       uint64 `json:"refills"`
	ShadowDropped uint64 `json:"shadow_dropped"`

	TopPCs []PCProfile `json:"top_pcs"`
}

// Report seals the collector and builds the exportable report. cycles is
// the run length (stats.Sim.Cycles).
func (a *Collector) Report(cycles uint64) *Report {
	if a == nil {
		return nil
	}
	a.Finish()
	r := &Report{
		Cycles:             cycles,
		Window:             a.window(),
		DemandFills:        a.demandFills,
		VictimInserts:      a.victimInserts,
		SpecFills:          fromArray(&a.specFills),
		Useful:             fromArray(&a.useful),
		Late:               fromArray(&a.late),
		Useless:            fromArray(&a.useless),
		Resident:           fromArray(&a.resident),
		PollutionEvictions: fromArray(&a.pollutionEvicts),
		Polluting:          fromArray(&a.polluting),
		VictimHits:         a.victimHits,
		Refills:            a.refills,
		ShadowDropped:      a.shadowDropped,
	}
	top := a.TopN
	if top <= 0 {
		top = DefaultTopN
	}
	profiles := make([]PCProfile, 0, len(a.pcs))
	for _, p := range a.pcs {
		profiles = append(profiles, *p)
	}
	sort.Slice(profiles, func(i, j int) bool {
		wi := profiles[i].Accesses + profiles[i].WrongIssues
		wj := profiles[j].Accesses + profiles[j].WrongIssues
		if wi != wj {
			return wi > wj
		}
		return profiles[i].PC < profiles[j].PC
	})
	if len(profiles) > top {
		profiles = profiles[:top]
	}
	r.TopPCs = profiles
	return r
}

// CheckInternal verifies the report's own accounting identity: every
// speculative fill is classified exactly once as useful, useless, or
// resident (late merges are demand fills and counted separately).
func (r *Report) CheckInternal() error {
	check := func(name string, fills, useful, useless, resident uint64) error {
		if fills != useful+useless+resident {
			return fmt.Errorf("attrib: %s fills %d != useful %d + useless %d + resident %d",
				name, fills, useful, useless, resident)
		}
		return nil
	}
	if err := check("wrong_path", r.SpecFills.WrongPath, r.Useful.WrongPath, r.Useless.WrongPath, r.Resident.WrongPath); err != nil {
		return err
	}
	if err := check("wrong_thread", r.SpecFills.WrongThread, r.Useful.WrongThread, r.Useless.WrongThread, r.Resident.WrongThread); err != nil {
		return err
	}
	if err := check("prefetch", r.SpecFills.Prefetch, r.Useful.Prefetch, r.Useless.Prefetch, r.Resident.Prefetch); err != nil {
		return err
	}
	for name, oc := range map[string]struct{ sub, sup OriginCounts }{
		"polluting>evictions": {r.Polluting, r.PollutionEvictions},
	} {
		if oc.sub.WrongPath > oc.sup.WrongPath || oc.sub.WrongThread > oc.sup.WrongThread || oc.sub.Prefetch > oc.sup.Prefetch {
			return fmt.Errorf("attrib: %s violated: %+v > %+v", name, oc.sub, oc.sup)
		}
	}
	if r.Refills != 0 {
		return fmt.Errorf("attrib: %d fills overwrote a live provenance record", r.Refills)
	}
	return nil
}

// WriteJSON writes the report with a stable, indented schema.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

func pct(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

// WriteText renders a human-readable summary. label, when non-nil, maps a
// PC to a source label (e.g. the nearest program symbol) for the top table.
func (r *Report) WriteText(w io.Writer, label func(pc int) string) error {
	spec := r.SpecFills.Total()
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("attribution over %d cycles (pollution window %d)\n", r.Cycles, r.Window)
	p("fills: %d demand, %d victim captures, %d speculative\n",
		r.DemandFills, r.VictimInserts, spec)
	row := func(name string, f, u, l, ul, res, pol uint64) {
		if f == 0 && l == 0 {
			return
		}
		p("  %-12s %8d fills: %6d useful (%.1f%%), %5d late, %6d useless (%.1f%%), %5d resident, %5d polluting\n",
			name, f, u, pct(u, f), l, ul, pct(ul, f), res, pol)
	}
	row("wrong-path", r.SpecFills.WrongPath, r.Useful.WrongPath, r.Late.WrongPath,
		r.Useless.WrongPath, r.Resident.WrongPath, r.Polluting.WrongPath)
	row("wrong-thread", r.SpecFills.WrongThread, r.Useful.WrongThread, r.Late.WrongThread,
		r.Useless.WrongThread, r.Resident.WrongThread, r.Polluting.WrongThread)
	row("prefetch", r.SpecFills.Prefetch, r.Useful.Prefetch, r.Late.Prefetch,
		r.Useless.Prefetch, r.Resident.Prefetch, r.Polluting.Prefetch)
	if spec == 0 {
		p("  no speculative fills\n")
	}
	p("pollution: %d correct-path blocks displaced by speculation, %d re-missed in window\n",
		r.PollutionEvictions.Total(), r.Polluting.Total())
	p("victim-cache role: %d side hits on non-speculative blocks\n", r.VictimHits)
	if r.ShadowDropped > 0 {
		p("note: %d displaced blocks not tracked (shadow table full)\n", r.ShadowDropped)
	}
	if len(r.TopPCs) == 0 {
		return nil
	}
	p("top load PCs:\n")
	p("  %6s %-20s %9s %8s %8s %7s %7s %6s %8s %9s\n",
		"pc", "label", "accesses", "misses", "wrong", "fills", "useful", "late", "useless", "polluting")
	for _, e := range r.TopPCs {
		name := ""
		if label != nil {
			name = label(e.PC)
		}
		p("  %6d %-20s %9d %8d %8d %7d %7d %6d %8d %9d\n",
			e.PC, name, e.Accesses, e.Misses, e.WrongIssues, e.SpecFills,
			e.Useful, e.Late, e.Useless, e.Polluting)
	}
	return nil
}
