package attrib

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The golden files pin the attribution export schemas: the JSON report and
// the text summary. Regenerate after an intentional schema change with:
//
//	go test ./internal/attrib -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// goldenCollector replays a small deterministic event stream exercising
// every classification: useful, late, useless, resident, polluting, a
// victim capture, and a victim hit.
func goldenCollector() *Collector {
	a := NewCollector()
	a.Window = 500
	a.TopN = 3

	// Correct-path warmup: two demand fills.
	a.OnDemandAccess(0, 10, 0x1000, 5, true)
	a.OnFill(0, 0x1000, OriginDemand, 10, 40, StructL1)
	a.OnDemandAccess(0, 11, 0x2000, 6, true)
	a.OnFill(0, 0x2000, OriginDemand, 11, 41, StructL1)

	// Wrong-path fill later touched by the correct path: useful.
	a.OnWrongIssue(20)
	a.OnFill(0, 0x3000, OriginWrongPath, 20, 100, StructSide)
	a.OnDemandAccess(0, 10, 0x3000, 150, false)
	a.OnSpecTouch(0, 0x3000, 150)
	a.OnPromote(0, 0x3000)

	// The promotion swap captures an L1 victim into the side buffer; a
	// later correct access hits it there: the victim-cache role.
	a.OnVictimCapture(0, 0x1000, 150)
	a.OnDemandAccess(0, 11, 0x1000, 180, false)
	a.OnVictimHit(0, 0x1000, 180)

	// Wrong-thread fill that displaces a correct block (pollution: the
	// block is re-missed within the window) and is evicted untouched.
	a.OnWrongIssue(21)
	a.OnFill(1, 0x4000, OriginWrongThread, 21, 200, StructL1)
	a.OnFill(1, 0x5000, OriginDemand, 12, 90, StructL1)
	a.OnEvict(1, 0x5000, OriginWrongThread, 21, 200)
	a.OnDemandAccess(1, 12, 0x5000, 400, true)
	a.OnEvict(1, 0x4000, OriginDemand, 12, 410)

	// A prefetch whose MSHR entry a demand merged into (late), and one
	// still untouched at the end of the run (resident).
	a.OnLateFill(OriginPrefetch, 13)
	a.OnFill(0, 0x6000, OriginDemand, 13, 500, StructL1)
	a.OnFill(0, 0x7000, OriginPrefetch, 13, 600, StructSide)
	return a
}

func TestGoldenAttribJSON(t *testing.T) {
	rep := goldenCollector().Report(1000)
	if err := rep.CheckInternal(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Schema sanity, independent of the byte-exact golden.
	var e struct {
		Cycles    uint64             `json:"cycles"`
		SpecFills map[string]uint64  `json:"spec_fills"`
		Useful    map[string]uint64  `json:"useful"`
		TopPCs    []map[string]int64 `json:"top_pcs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if e.Cycles != 1000 || e.SpecFills["wrong_path"] != 1 || e.Useful["wrong_path"] != 1 {
		t.Errorf("cycles=%d spec=%v useful=%v", e.Cycles, e.SpecFills, e.Useful)
	}
	if len(e.TopPCs) != 3 {
		t.Errorf("top_pcs rows = %d, want TopN=3", len(e.TopPCs))
	}
	checkGolden(t, "attrib.golden.json", buf.Bytes())
}

func TestGoldenAttribText(t *testing.T) {
	rep := goldenCollector().Report(1000)
	var buf bytes.Buffer
	labels := map[int]string{10: "loop_a", 11: "loop_b"}
	if err := rep.WriteText(&buf, func(pc int) string { return labels[pc] }); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "attrib.golden.txt", buf.Bytes())
}
