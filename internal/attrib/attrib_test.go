package attrib

import (
	"strings"
	"testing"
)

// reconcile asserts the report's internal accounting and returns it.
func reconcile(t *testing.T, a *Collector, cycles uint64) *Report {
	t.Helper()
	rep := a.Report(cycles)
	if err := rep.CheckInternal(); err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestUsefulLifecycle(t *testing.T) {
	a := NewCollector()
	a.OnFill(0, 0x1000, OriginWrongPath, 7, 10, StructSide)
	a.OnDemandAccess(0, 3, 0x1000, 50, false)
	a.OnSpecTouch(0, 0x1000, 50)
	rep := reconcile(t, a, 100)
	if rep.SpecFills.WrongPath != 1 || rep.Useful.WrongPath != 1 {
		t.Errorf("spec=%+v useful=%+v", rep.SpecFills, rep.Useful)
	}
	// A second touch of the same block must not double-count.
	a2 := NewCollector()
	a2.OnFill(0, 0x1000, OriginWrongPath, 7, 10, StructSide)
	a2.OnSpecTouch(0, 0x1000, 50)
	a2.OnSpecTouch(0, 0x1000, 60)
	if rep := reconcile(t, a2, 100); rep.Useful.WrongPath != 1 {
		t.Errorf("double-counted touch: %+v", rep.Useful)
	}
}

func TestUselessAndResident(t *testing.T) {
	a := NewCollector()
	a.OnFill(0, 0x1000, OriginWrongThread, 7, 10, StructSide)
	a.OnFill(0, 0x2000, OriginPrefetch, 8, 20, StructSide)
	a.OnEvict(0, 0x1000, OriginDemand, -1, 500) // evicted untouched
	rep := reconcile(t, a, 1000)
	if rep.Useless.WrongThread != 1 {
		t.Errorf("useless = %+v", rep.Useless)
	}
	if rep.Resident.Prefetch != 1 { // still in the cache at Finish
		t.Errorf("resident = %+v", rep.Resident)
	}
	// An untouched spec eviction is never pollution, whatever evicted it.
	if rep.PollutionEvictions.Total() != 0 {
		t.Errorf("pollution evictions = %+v", rep.PollutionEvictions)
	}
}

func TestLate(t *testing.T) {
	a := NewCollector()
	a.OnLateFill(OriginPrefetch, 7)
	a.OnFill(0, 0x1000, OriginDemand, 3, 10, StructL1)
	rep := reconcile(t, a, 100)
	if rep.Late.Prefetch != 1 || rep.DemandFills != 1 || rep.SpecFills.Total() != 0 {
		t.Errorf("late=%+v demand=%d spec=%+v", rep.Late, rep.DemandFills, rep.SpecFills)
	}
	// Late merges into a demand-allocated entry are impossible; guard anyway.
	a.OnLateFill(OriginDemand, 3)
	if rep := a.Report(100); rep.Late.Total() != 1 {
		t.Errorf("demand late counted: %+v", rep.Late)
	}
}

func TestPollutionWindow(t *testing.T) {
	mk := func() *Collector {
		a := NewCollector()
		a.Window = 100
		a.OnFill(0, 0x1000, OriginDemand, 3, 10, StructL1) // correct-path block
		a.OnFill(0, 0x2000, OriginWrongPath, 7, 50, StructL1)
		a.OnEvict(0, 0x1000, OriginWrongPath, 7, 50) // displaced by speculation
		return a
	}
	// Re-miss inside the window is pollution, charged to the wrong PC.
	a := mk()
	a.OnDemandAccess(0, 3, 0x1000, 120, true)
	rep := reconcile(t, a, 200)
	if rep.Polluting.WrongPath != 1 || rep.PollutionEvictions.WrongPath != 1 {
		t.Errorf("polluting=%+v evicts=%+v", rep.Polluting, rep.PollutionEvictions)
	}
	found := false
	for _, p := range rep.TopPCs {
		if p.PC == 7 && p.Polluting == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("pollution not charged to PC 7: %+v", rep.TopPCs)
	}
	// Re-miss outside the window is not.
	a = mk()
	a.OnDemandAccess(0, 3, 0x1000, 500, true)
	if rep := reconcile(t, a, 600); rep.Polluting.Total() != 0 {
		t.Errorf("stale re-miss counted: %+v", rep.Polluting)
	}
	// A re-fill of the displaced block clears the shadow entry.
	a = mk()
	a.OnFill(0, 0x1000, OriginDemand, 3, 60, StructL1)
	a.OnEvict(0, 0x1000, OriginDemand, -1, 70)
	a.OnDemandAccess(0, 3, 0x1000, 80, true)
	if rep := reconcile(t, a, 200); rep.Polluting.Total() != 0 {
		t.Errorf("refetched block still counted polluting: %+v", rep.Polluting)
	}
}

func TestVictimCapturePreservesProvenance(t *testing.T) {
	// wrong fill -> side, promoted to L1 untouched is impossible (promotion
	// implies a demand touch); instead: wrong fill into L1 (polluting
	// config), captured as a victim, then touched in the side buffer.
	a := NewCollector()
	a.OnFill(0, 0x1000, OriginWrongThread, 7, 10, StructL1)
	a.OnVictimCapture(0, 0x1000, 50)
	a.OnSpecTouch(0, 0x1000, 90)
	rep := reconcile(t, a, 100)
	if rep.Useful.WrongThread != 1 {
		t.Errorf("provenance lost across victim capture: %+v", rep.Useful)
	}
	if rep.VictimInserts != 1 {
		t.Errorf("victim inserts = %d", rep.VictimInserts)
	}
	// A capture of an untracked block creates a touched victim record.
	a2 := NewCollector()
	a2.OnVictimCapture(0, 0x3000, 10)
	a2.OnEvict(0, 0x3000, OriginWrongPath, 7, 20)
	rep2 := reconcile(t, a2, 100)
	if rep2.Useless.Total() != 0 {
		t.Errorf("victim eviction counted useless: %+v", rep2.Useless)
	}
	if rep2.PollutionEvictions.WrongPath != 1 {
		t.Errorf("victim displaced by speculation not shadowed: %+v", rep2.PollutionEvictions)
	}
}

func TestVictimHit(t *testing.T) {
	a := NewCollector()
	a.OnVictimCapture(0, 0x1000, 10)
	a.OnVictimHit(0, 0x1000, 50)
	rep := reconcile(t, a, 100)
	if rep.VictimHits != 1 || rep.Useful.Total() != 0 {
		t.Errorf("victimHits=%d useful=%+v", rep.VictimHits, rep.Useful)
	}
}

func TestPerPCProfile(t *testing.T) {
	a := NewCollector()
	a.TopN = 2
	for pc := 0; pc < 5; pc++ {
		for i := 0; i <= pc; i++ {
			a.OnDemandAccess(0, pc, uint64(0x1000*pc), 10, false)
		}
	}
	rep := reconcile(t, a, 100)
	if len(rep.TopPCs) != 2 {
		t.Fatalf("TopN not applied: %d rows", len(rep.TopPCs))
	}
	if rep.TopPCs[0].PC != 4 || rep.TopPCs[1].PC != 3 {
		t.Errorf("top PCs not sorted by traffic: %+v", rep.TopPCs)
	}
	if rep.TopPCs[0].Accesses != 5 {
		t.Errorf("accesses = %d", rep.TopPCs[0].Accesses)
	}
}

func TestNilCollectorHooksAreNoOps(t *testing.T) {
	var a *Collector
	a.OnDemandAccess(0, 1, 0x1000, 10, true)
	a.OnWrongIssue(1)
	a.OnFill(0, 0x1000, OriginWrongPath, 1, 10, StructSide)
	a.OnLateFill(OriginPrefetch, 1)
	a.OnVictimCapture(0, 0x1000, 10)
	a.OnSpecTouch(0, 0x1000, 10)
	a.OnVictimHit(0, 0x1000, 10)
	a.OnPromote(0, 0x1000)
	a.OnEvict(0, 0x1000, OriginDemand, -1, 10)
	a.Finish()
	a.RegisterInto(nil)
	if rep := a.Report(100); rep != nil {
		t.Errorf("nil collector produced a report: %+v", rep)
	}
}

func TestShadowTableBound(t *testing.T) {
	a := NewCollector()
	a.Window = 1 << 60 // nothing expires: force the capacity path
	for i := 0; i < maxShadow+10; i++ {
		b := uint64(i) * 64
		a.OnFill(0, b, OriginDemand, 3, 10, StructL1)
		a.OnEvict(0, b, OriginWrongPath, 7, 20)
	}
	rep := reconcile(t, a, 100)
	if rep.ShadowDropped != 10 {
		t.Errorf("shadow dropped = %d, want 10", rep.ShadowDropped)
	}
}

func TestCheckInternalCatchesImbalance(t *testing.T) {
	a := NewCollector()
	a.OnFill(0, 0x1000, OriginWrongPath, 7, 10, StructSide)
	rep := a.Report(100)
	rep.Resident.WrongPath = 0 // break the partition by hand
	if err := rep.CheckInternal(); err == nil {
		t.Error("unbalanced report passed CheckInternal")
	}
	rep2 := NewCollector().Report(100)
	rep2.Refills = 1
	if err := rep2.CheckInternal(); err == nil {
		t.Error("refill diagnostic not reported")
	}
}

func TestWriteTextSummary(t *testing.T) {
	a := NewCollector()
	a.OnFill(0, 0x1000, OriginWrongPath, 7, 10, StructSide)
	a.OnSpecTouch(0, 0x1000, 50)
	a.OnDemandAccess(0, 7, 0x2000, 60, false)
	var sb strings.Builder
	rep := reconcile(t, a, 100)
	if err := rep.WriteText(&sb, func(pc int) string { return "lbl" }); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"wrong-path", "useful", "top load PCs", "lbl"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
