package config

import (
	"testing"

	"repro/internal/mem"
)

func TestApplyAllNamesValid(t *testing.T) {
	for _, n := range Names() {
		cfg := Main(8)
		if err := Apply(n, &cfg); err != nil {
			t.Errorf("%s: %v", n, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: invalid machine: %v", n, err)
		}
	}
	cfg := Main(8)
	if err := Apply("bogus", &cfg); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestApplySemantics(t *testing.T) {
	check := func(n Name, wth, wp bool, side mem.SideBufKind, pollute, nlp bool) {
		t.Helper()
		cfg := Main(8)
		if err := Apply(n, &cfg); err != nil {
			t.Fatal(err)
		}
		if cfg.WrongThreadExec != wth || cfg.Core.WrongPathExec != wp ||
			cfg.Mem.Side != side || cfg.Mem.WrongFillsToL1 != pollute ||
			cfg.Mem.NextLinePrefetch != nlp {
			t.Errorf("%s: got wth=%v wp=%v side=%v pollute=%v nlp=%v",
				n, cfg.WrongThreadExec, cfg.Core.WrongPathExec, cfg.Mem.Side,
				cfg.Mem.WrongFillsToL1, cfg.Mem.NextLinePrefetch)
		}
	}
	check(Orig, false, false, mem.SideNone, false, false)
	check(VC, false, false, mem.SideVC, false, false)
	check(WP, false, true, mem.SideNone, true, false)
	check(WTH, true, false, mem.SideNone, true, false)
	check(WTHWP, true, true, mem.SideNone, true, false)
	check(WTHWPVC, true, true, mem.SideVC, true, false)
	check(WTHWPWEC, true, true, mem.SideWEC, false, false)
	check(NLP, false, false, mem.SidePB, false, true)
}

func TestApplyResetsPriorState(t *testing.T) {
	cfg := Main(8)
	if err := Apply(WTHWPWEC, &cfg); err != nil {
		t.Fatal(err)
	}
	if err := Apply(Orig, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.WrongThreadExec || cfg.Core.WrongPathExec || cfg.Mem.Side != mem.SideNone {
		t.Error("Apply(Orig) did not clear previous configuration")
	}
}

func TestTable3Invariants(t *testing.T) {
	rows := Table3Rows()
	if len(rows) != 6 {
		t.Fatalf("want 6 rows (reference + 5 shapes), got %d", len(rows))
	}
	// Reference machine: 1 TU, single issue.
	if rows[0].TUs != 1 || rows[0].Issue != 1 {
		t.Error("row 0 must be the 1TUx1 reference")
	}
	for _, row := range rows[1:] {
		if row.TUs*row.Issue != 16 {
			t.Errorf("%s: total issue capacity %d, want 16", row.Label(), row.TUs*row.Issue)
		}
		if row.TUs*row.L1DKBytes != 32 {
			t.Errorf("%s: total L1D %dKB, want 32", row.Label(), row.TUs*row.L1DKBytes)
		}
		cfg := row.Machine()
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", row.Label(), err)
		}
		if cfg.Core.IssueWidth != row.Issue || cfg.Mem.L1DSize != row.L1DKBytes*1024 {
			t.Errorf("%s: machine does not reflect row", row.Label())
		}
	}
}

func TestMainScaling(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		cfg := Main(n)
		if cfg.NumTUs != n {
			t.Errorf("Main(%d).NumTUs = %d", n, cfg.NumTUs)
		}
		// §5.2: per-TU resources stay constant.
		if cfg.Core.IssueWidth != 8 || cfg.Mem.L1DSize != 8*1024 {
			t.Errorf("Main(%d) changed per-TU resources", n)
		}
	}
}

// TestInferRoundTrips: Infer must reverse Apply for every paper
// configuration, be insensitive to free parameters (geometry, TU count),
// and refuse machines no configuration produces.
func TestInferRoundTrips(t *testing.T) {
	for _, n := range Names() {
		cfg := Main(4)
		cfg.Mem.SideEntries = 32 // free parameter: must not break inference
		cfg.Mem.L1DSize = 16 * 1024
		if err := Apply(n, &cfg); err != nil {
			t.Fatal(err)
		}
		got, ok := Infer(cfg)
		if !ok || got != n {
			t.Errorf("Infer(Apply(%s)) = %q, %v", n, got, ok)
		}
	}
	// Ablation knobs take the machine outside the paper's eight configs.
	cfg := Main(8)
	if err := Apply(WTHWPWEC, &cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Mem.WECNoVictim = true
	if name, ok := Infer(cfg); ok {
		t.Errorf("WEC ablation inferred as %q", name)
	}
	// A hand-rolled speculation mix matching no Name is not inferred.
	cfg = Main(8)
	cfg.WrongThreadExec = true
	cfg.Core.WrongPathExec = false
	cfg.Mem.Side = mem.SidePB
	cfg.Mem.NextLinePrefetch = false
	if name, ok := Infer(cfg); ok {
		t.Errorf("non-paper machine inferred as %q", name)
	}
}
