// Package config names the processor configurations evaluated in the paper
// (§4.3) and the two thread-unit scaling schemes used by its experiments:
// the constant-total-capacity scaling of Table 3 (used for the §5.1
// baseline study, Figure 8) and the constant-per-TU resources of §5.2
// (used everywhere else).
package config

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sta"
)

// Name identifies one of the paper's processor configurations.
type Name string

// The eight configurations of §4.3.
const (
	Orig     Name = "orig"       // baseline superthreaded processor
	VC       Name = "vc"         // orig + victim cache
	WP       Name = "wp"         // wrong-path load continuation
	WTH      Name = "wth"        // wrong-thread execution
	WTHWP    Name = "wth-wp"     // both wrong-execution modes
	WTHWPVC  Name = "wth-wp-vc"  // both + victim cache
	WTHWPWEC Name = "wth-wp-wec" // both + Wrong Execution Cache
	NLP      Name = "nlp"        // next-line tagged prefetching
)

// Names lists all configurations in the paper's presentation order.
func Names() []Name {
	return []Name{Orig, VC, WP, WTH, WTHWP, WTHWPVC, WTHWPWEC, NLP}
}

// Apply mutates cfg to the named configuration. The side-buffer entry
// count (WEC/VC/PB size) is taken from cfg.Mem.SideEntries, so callers can
// sweep sizes (Figures 15 and 16) by setting it before Apply.
func Apply(name Name, cfg *sta.Config) error {
	cfg.WrongThreadExec = false
	cfg.Core.WrongPathExec = false
	cfg.Mem.Side = mem.SideNone
	cfg.Mem.WrongFillsToL1 = false
	cfg.Mem.NextLinePrefetch = false
	switch name {
	case Orig:
	case VC:
		cfg.Mem.Side = mem.SideVC
	case WP:
		cfg.Core.WrongPathExec = true
		cfg.Mem.WrongFillsToL1 = true
	case WTH:
		cfg.WrongThreadExec = true
		cfg.Mem.WrongFillsToL1 = true
	case WTHWP:
		cfg.Core.WrongPathExec = true
		cfg.WrongThreadExec = true
		cfg.Mem.WrongFillsToL1 = true
	case WTHWPVC:
		cfg.Core.WrongPathExec = true
		cfg.WrongThreadExec = true
		cfg.Mem.WrongFillsToL1 = true
		cfg.Mem.Side = mem.SideVC
	case WTHWPWEC:
		cfg.Core.WrongPathExec = true
		cfg.WrongThreadExec = true
		cfg.Mem.Side = mem.SideWEC
	case NLP:
		cfg.Mem.Side = mem.SidePB
		cfg.Mem.NextLinePrefetch = true
	default:
		return fmt.Errorf("config: unknown configuration %q", name)
	}
	return nil
}

// Infer reverses Apply: it names the paper configuration whose speculation
// settings match cfg, by probing every Name against the same machine. The
// five fields Apply controls (wrong-thread execution, wrong-path
// continuation, side-buffer kind, wrong-fill routing, next-line prefetch)
// are the discriminator; cache geometry and TU count are free, so a
// Figure 13 cell still infers as "wth-wp-wec". Machines matching no paper
// configuration (e.g. WEC ablation variants) return ok=false.
func Infer(cfg sta.Config) (Name, bool) {
	if cfg.Mem.WECNoVictim || cfg.Mem.WECNoNextLine {
		return "", false
	}
	for _, n := range Names() {
		probe := cfg
		if err := Apply(n, &probe); err != nil {
			continue
		}
		if probe.WrongThreadExec == cfg.WrongThreadExec &&
			probe.Core.WrongPathExec == cfg.Core.WrongPathExec &&
			probe.Mem.Side == cfg.Mem.Side &&
			probe.Mem.WrongFillsToL1 == cfg.Mem.WrongFillsToL1 &&
			probe.Mem.NextLinePrefetch == cfg.Mem.NextLinePrefetch {
			return n, true
		}
	}
	return "", false
}

// Main returns the §5.2 machine with the given thread-unit count: every TU
// is an 8-issue out-of-order core with a private 8 KB direct-mapped L1 data
// cache; total cache capacity grows with the TU count.
func Main(tus int) sta.Config {
	cfg := sta.DefaultConfig()
	cfg.NumTUs = tus
	return cfg
}

// Table3 lists the paper's constant-total-capacity scaling: TU count,
// per-TU issue width, reorder buffer, FU counts, and L1 data size chosen so
// every row can exploit at most 16 instructions per cycle and 32 KB of
// total L1 data cache.
type Table3 struct {
	TUs       int
	Issue     int
	ROB       int
	IntALU    int
	IntMul    int
	FPALU     int
	FPMul     int
	L1DKBytes int
}

// Table3Rows returns the five machine shapes of Table 3 plus the
// single-thread single-issue reference machine in row 0.
func Table3Rows() []Table3 {
	return []Table3{
		{TUs: 1, Issue: 1, ROB: 8, IntALU: 1, IntMul: 1, FPALU: 1, FPMul: 1, L1DKBytes: 2},
		{TUs: 1, Issue: 16, ROB: 128, IntALU: 16, IntMul: 8, FPALU: 16, FPMul: 8, L1DKBytes: 32},
		{TUs: 2, Issue: 8, ROB: 64, IntALU: 8, IntMul: 4, FPALU: 8, FPMul: 4, L1DKBytes: 16},
		{TUs: 4, Issue: 4, ROB: 32, IntALU: 4, IntMul: 2, FPALU: 4, FPMul: 2, L1DKBytes: 8},
		{TUs: 8, Issue: 2, ROB: 16, IntALU: 2, IntMul: 1, FPALU: 2, FPMul: 1, L1DKBytes: 4},
		{TUs: 16, Issue: 1, ROB: 8, IntALU: 1, IntMul: 1, FPALU: 1, FPMul: 1, L1DKBytes: 2},
	}
}

// Label names a Table 3 row like the paper's Figure 8 legend.
func (t Table3) Label() string {
	return fmt.Sprintf("%dTUx%d", t.TUs, t.Issue)
}

// Machine builds the sta configuration for a Table 3 row.
func (t Table3) Machine() sta.Config {
	cfg := sta.DefaultConfig()
	cfg.NumTUs = t.TUs
	cc := core.DefaultConfig()
	cc.IssueWidth = t.Issue
	cc.ROBSize = t.ROB
	cc.LSQSize = t.ROB
	cc.IntALU = t.IntALU
	cc.IntMul = t.IntMul
	cc.FPAdd = t.FPALU
	cc.FPMul = t.FPMul
	cfg.Core = cc
	cfg.Mem.L1DSize = t.L1DKBytes * 1024
	return cfg
}
