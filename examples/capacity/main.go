// Capacity: the paper's Figure 13 in miniature. Sweeps the L1 data cache
// size on the equake-like kernel and shows that the WEC's benefit shrinks
// as the L1 grows — and that a small L1 plus an 8-entry WEC can outrun a
// much larger L1 without one (§5.3.2: "an excellent use of chip area").
//
// Run with: go run ./examples/capacity
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/sta"
	"repro/internal/workload"
)

func run(name config.Name, l1kb int) *sta.Result {
	w, err := workload.ByName("equake")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := w.Build(1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := config.Main(8)
	cfg.Mem.L1DSize = l1kb * 1024
	if err := config.Apply(name, &cfg); err != nil {
		log.Fatal(err)
	}
	m, err := sta.New(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("183.equake stand-in, 8 TUs: L1 size sweep (cycles, lower is better)")
	fmt.Printf("%8s %12s %12s %10s\n", "L1 size", "orig", "wth-wp-wec", "wec gain")
	for _, kb := range []int{4, 8, 16, 32} {
		orig := run(config.Orig, kb)
		wec := run(config.WTHWPWEC, kb)
		gain := 100 * (float64(orig.Stats.Cycles)/float64(wec.Stats.Cycles) - 1)
		fmt.Printf("%6dKB %12d %12d %+9.1f%%\n",
			kb, orig.Stats.Cycles, wec.Stats.Cycles, gain)
	}
	fmt.Println("\nCompare a small L1 with a WEC against a doubled L1 without one:")
	small := run(config.WTHWPWEC, 4)
	big := run(config.Orig, 8)
	fmt.Printf("  4KB L1 + 8-entry WEC: %d cycles\n", small.Stats.Cycles)
	fmt.Printf("  8KB L1, no WEC:       %d cycles\n", big.Stats.Cycles)
	if small.Stats.Cycles < big.Stats.Cycles {
		fmt.Println("  -> the WEC is the better use of the area (paper §5.3.2)")
	} else {
		fmt.Println("  -> on this kernel the larger L1 wins; see EXPERIMENTS.md")
	}
}
