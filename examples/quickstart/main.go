// Quickstart: assemble a small thread-pipelined parallel loop with the
// Builder API, validate it on the functional interpreter, then run it on a
// four-thread-unit superthreaded machine and print timing statistics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/interp"
	"repro/internal/isa"
	"repro/internal/sta"
)

func main() {
	const n = 64

	// A parallel loop in thread-pipelining form: each iteration i computes
	// arr[i] = arr[i]*5 + i. r1 carries the continuation variable; the
	// BEGIN mask lists every register a forked thread needs.
	b := asm.New()
	arr := b.Alloc("arr", 8*(n+80), 0)
	for i := 0; i < n; i++ {
		b.InitWord(arr+uint64(8*i), int64(100+i))
	}
	b.Li(1, 0)          // i
	b.Li(2, n)          // trip count
	b.Li(3, int64(arr)) // base address
	b.Begin(1, 2, 3)
	b.Label("body")
	b.Op3(isa.ADD, 9, 1, 0)  // r9 = my iteration index
	b.OpI(isa.ADDI, 1, 1, 1) // continuation variable for the child
	b.Fork("body")
	b.Tsagd()
	b.OpI(isa.SLLI, 5, 9, 3)
	b.Op3(isa.ADD, 5, 5, 3)
	b.Ld(6, 0, 5)
	b.Li(7, 5)
	b.Op3(isa.MUL, 6, 6, 7)
	b.Op3(isa.ADD, 6, 6, 9)
	b.St(6, 0, 5)
	b.Br(isa.BLT, 1, 2, "cont")
	b.Abort() // loop exit: kill speculative successors
	b.Jmp("after")
	b.Label("cont")
	b.Thend()
	b.Label("after")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Functional golden run.
	ref, err := interp.Run(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interpreter: %d instructions, %d forks, arr[10] = %d\n",
		ref.Insts, ref.Forks, ref.Mem.ReadWord(arr+80))

	// Cycle-accurate run on a 4-TU superthreaded machine.
	cfg := sta.DefaultConfig()
	cfg.NumTUs = 4
	m, err := sta.New(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine:     %d cycles, IPC %.2f, %d forks, %d aborts\n",
		res.Stats.Cycles, res.Stats.IPC(), res.Stats.Forks, res.Stats.Aborts)
	if res.MemCheck == ref.MemCheck {
		fmt.Println("architectural state matches the interpreter ✓")
	} else {
		log.Fatalf("MISMATCH: machine %#x, interpreter %#x", res.MemCheck, ref.MemCheck)
	}
}
