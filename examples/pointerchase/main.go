// Pointerchase: the headline result on one benchmark. Runs the mcf-like
// pointer-chasing kernel on an 8-TU machine in the baseline configuration
// and with wrong-execution + WEC, and shows where the speedup comes from
// (wrong loads issued, WEC hits, miss reduction) — the paper's §5.2 story.
//
// Run with: go run ./examples/pointerchase
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/sta"
	"repro/internal/stats"
	"repro/internal/workload"
)

func run(name config.Name) *sta.Result {
	w, err := workload.ByName("mcf")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := w.Build(1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := config.Main(8)
	if err := config.Apply(name, &cfg); err != nil {
		log.Fatal(err)
	}
	m, err := sta.New(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("181.mcf stand-in on 8 thread units")
	orig := run(config.Orig)
	wec := run(config.WTHWPWEC)
	if orig.MemCheck != wec.MemCheck {
		log.Fatal("configurations disagree architecturally — simulator bug")
	}

	fmt.Printf("\n%-26s %12s %12s\n", "", "orig", "wth-wp-wec")
	fmt.Printf("%-26s %12d %12d\n", "cycles", orig.Stats.Cycles, wec.Stats.Cycles)
	fmt.Printf("%-26s %12d %12d\n", "L1D misses", orig.Stats.L1DMisses, wec.Stats.L1DMisses)
	fmt.Printf("%-26s %12d %12d\n", "L1D traffic", orig.Stats.L1DTraffic, wec.Stats.L1DTraffic)
	fmt.Printf("%-26s %12d %12d\n", "wrong loads issued", orig.Stats.WrongLoads, wec.Stats.WrongLoads)
	fmt.Printf("%-26s %12d %12d\n", "wrong threads", orig.Stats.WrongThreads, wec.Stats.WrongThreads)
	fmt.Printf("%-26s %12d %12d\n", "WEC hits (correct path)", orig.Stats.WECHits, wec.Stats.WECHits)
	fmt.Printf("%-26s %12d %12d\n", "  ...on wrong-fetched", orig.Stats.WrongUseful, wec.Stats.WrongUseful)

	fmt.Printf("\nspeedup from wrong execution + WEC: %s\n",
		stats.Pct(stats.RelativeSpeedupPct(orig.Stats.Cycles, wec.Stats.Cycles)))
	fmt.Printf("miss reduction: %.1f%%, traffic increase: %.1f%%\n",
		100*(1-float64(wec.Stats.L1DMisses)/float64(orig.Stats.L1DMisses)),
		100*(float64(wec.Stats.L1DTraffic)/float64(orig.Stats.L1DTraffic)-1))
	fmt.Println("\n(The wrongly-forked threads keep walking the chains past the loop")
	fmt.Println(" exit; their fills land in the WEC and the next parallel region's")
	fmt.Println(" correct walks hit them instead of missing to L2/memory.)")
}
