// Wrongpath: demonstrates wrong-path load continuation (paper §3.1.1,
// Figure 3) on a single thread unit. An alternating branch defeats the
// 2-bit predictor and resolves within a couple of cycles, so the loads
// fetched down the wrong side of the hammock are address-ready but not yet
// issued when the misprediction is discovered. With wp execution those
// loads continue to memory after the recovery; with the WEC their fills are
// isolated from the L1 and picked up by the next iterations of the other
// direction — which reference the very same blocks.
//
// Run with: go run ./examples/wrongpath
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sta"
	"repro/internal/stats"
)

// build returns a single-threaded loop whose hammock direction is decided
// by a data-dependent control bit (unpredictable, like a search compare).
// Both sides index their table by block (i>>3), so the wrong side's loads
// prefetch exactly the block the other direction needs a few iterations
// later. The block addresses are computed up front, so by the time the
// loaded control bit resolves the branch, the wrong side's loads are
// address-ready (Figure 3's loads C and D).
func build() *asm.Builder {
	const n = 4096
	b := asm.New()
	ta := b.Alloc("ta", 64*(n/16+1), 0)
	tb := b.Alloc("tb", 64*(n/16+1), 0)
	ctl := b.Alloc("ctl", 8*n, 0)
	seed := uint64(0x9E3779B97F4A7C15)
	for i := 0; i <= n/16; i++ {
		b.InitWord(ta+uint64(64*i), int64(3*i))
		b.InitWord(ta+uint64(64*i)+8, int64(3*i+1))
		b.InitWord(tb+uint64(64*i), int64(5*i))
		b.InitWord(tb+uint64(64*i)+8, int64(5*i+1))
	}
	for i := 0; i < n; i++ {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		b.InitWord(ctl+uint64(8*i), int64(seed&1))
	}
	b.Li(1, 0) // i
	b.Li(2, n)
	b.Li(4, int64(ta))
	b.Li(5, int64(tb))
	b.Li(7, int64(ctl))
	b.Li(6, 0) // acc
	// Warm both tables into the shared L2 (they fit), so wrong-path fills
	// complete quickly enough to be consumed from the WEC.
	b.Li(10, int64(ta))
	b.Li(11, int64(ta)+64*(n/16+1))
	b.Label("warma")
	b.Ld(12, 0, 10)
	b.OpI(isa.ADDI, 10, 10, 64)
	b.Br(isa.BLT, 10, 11, "warma")
	b.Li(10, int64(tb))
	b.Li(11, int64(tb)+64*(n/16+1))
	b.Label("warmb")
	b.Ld(12, 0, 10)
	b.OpI(isa.ADDI, 10, 10, 64)
	b.Br(isa.BLT, 10, 11, "warmb")
	b.Label("loop")
	b.OpI(isa.SRAI, 12, 1, 4)  // block index i>>4
	b.OpI(isa.SLLI, 12, 12, 6) // *64 bytes
	b.Op3(isa.ADD, 13, 12, 4)  // table A block address
	b.Op3(isa.ADD, 17, 12, 5)  // table B block address
	b.OpI(isa.SLLI, 11, 1, 3)
	b.Op3(isa.ADD, 11, 11, 7)
	b.Ld(11, 0, 11) // random control bit: ~50% mispredicted
	b.Br(isa.BNE, 11, 0, "odd")
	b.Ld(14, 0, 13)
	b.Op3(isa.ADD, 6, 6, 14)
	b.Jmp("next")
	b.Label("odd")
	b.Ld(14, 0, 17)
	b.Op3(isa.SUB, 6, 6, 14)
	b.Label("next")
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Br(isa.BLT, 1, 2, "loop")
	b.Halt()
	return b
}

func run(wp bool) *sta.Result {
	prog, err := build().Build()
	if err != nil {
		log.Fatal(err)
	}
	cfg := sta.DefaultConfig()
	cfg.NumTUs = 1
	// A narrow memory pipe (one L1 port, two MSHRs) keeps ready loads
	// queued at branch-resolution time — the situation of Figure 3, where
	// loads C and D are still "waiting for a free port".
	cfg.Mem.L1DPorts = 1
	cfg.Mem.L1DMSHRs = 2
	cfg.Core.WrongPathExec = wp
	if wp {
		cfg.Mem.Side = mem.SideWEC
	}
	m, err := sta.New(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("wrong-path load continuation on a single thread unit")
	orig := run(false)
	wp := run(true)
	if orig.MemCheck != wp.MemCheck {
		log.Fatal("architectural mismatch — wrong-path execution altered results")
	}
	fmt.Printf("%-22s %12s %12s\n", "", "orig", "wp+wec")
	fmt.Printf("%-22s %12d %12d\n", "cycles", orig.Stats.Cycles, wp.Stats.Cycles)
	fmt.Printf("%-22s %12d %12d\n", "mispredicts", orig.Stats.Mispredicts, wp.Stats.Mispredicts)
	fmt.Printf("%-22s %12d %12d\n", "wrong-path loads", orig.Stats.WrongPathLoads, wp.Stats.WrongPathLoads)
	fmt.Printf("%-22s %12d %12d\n", "L1D misses", orig.Stats.L1DMisses, wp.Stats.L1DMisses)
	fmt.Printf("%-22s %12d %12d\n", "WEC inserts", orig.Stats.WECInserts, wp.Stats.WECInserts)
	fmt.Printf("%-22s %12d %12d\n", "WEC hits", orig.Stats.WECHits, wp.Stats.WECHits)
	fmt.Printf("%-22s %12d %12d\n", "  ...on wrong-fetched", orig.Stats.WrongUseful, wp.Stats.WrongUseful)
	fmt.Printf("\nspeedup: %s\n", stats.Pct(stats.RelativeSpeedupPct(orig.Stats.Cycles, wp.Stats.Cycles)))
}
