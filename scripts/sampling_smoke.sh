#!/usr/bin/env bash
# Sampling-accuracy smoke: run a short sampled sweep against detailed
# references and check the statistical contract end to end, through the
# real stasim CLI rather than the unit-test harness.
#
# For every figure benchmark at scale 4 under the standard dense regime
# (2k warmup + 4k measured per 40k-instruction period):
#
#   1. The sampled run's final memory checksum must equal the detailed
#      run's — fast-forwarding through the golden interpreter is
#      architecturally exact, always, for every program.
#   2. On the benchmarks whose phase behavior matches the sampling
#      assumptions (vpr, gzip: many windows, homogeneous phases), the
#      detailed cycle count must fall inside the sampled run's own 95%
#      bootstrap CI.
#   3. Everywhere the estimate must stay within a coarse 35% tripwire of
#      the truth — phase-heterogeneous programs (equake's parallel bursts,
#      parser's skewed tail) carry a documented bias the CI does not
#      model, but it must not silently grow.
#
# The per-benchmark numbers (truth, estimate, CI, coverage, error) are
# written to $outdir/sampling_report.txt for upload as a CI artifact.
#
# Usage: scripts/sampling_smoke.sh [artifact-dir]
set -euo pipefail

outdir=${1:-sampling-artifacts}
cd "$(dirname "$0")/.."
mkdir -p "$outdir"
report="$outdir/sampling_report.txt"
: > "$report"

go build -o "$outdir/stasim" ./cmd/stasim
regime=(-sample-warmup 2000 -sample-measure 4000 -sample-period 40000)

# Benchmarks whose detailed truth must land inside the sampled CI.
bracket="vpr gzip"

fail=0
for b in vpr gzip mcf parser equake mesa; do
    det=$("$outdir/stasim" -bench "$b" -scale 4 -config wth-wp-wec -tus 8)
    smp=$("$outdir/stasim" -bench "$b" -scale 4 -config wth-wp-wec -tus 8 "${regime[@]}")

    truth=$(awk '/^cycles /{print $2}' <<<"$det")
    dsum=$(awk '/^memory checksum/{print $3}' <<<"$det")
    ssum=$(awk '/^memory checksum/{print $3}' <<<"$smp")
    read -r est lo hi < <(awk '/est\. cycles/{gsub(/[][,]/,""); print $3, $4, $5}' <<<"$smp")
    cover=$(sed -n 's/.*(\([0-9.]*\)% coverage).*/\1/p' <<<"$smp")
    windows=$(awk '/^sampling /{print $2}' <<<"$smp")

    err=$(awk -v e="$est" -v t="$truth" 'BEGIN{printf "%.1f", (e-t)/t*100}')
    in_ci=$(awk -v t="$truth" -v lo="$lo" -v hi="$hi" 'BEGIN{print (lo<=t && t<=hi) ? "yes" : "no"}')
    printf '%-8s truth=%-8s est=%-8s ci=[%s, %s] windows=%-4s coverage=%s%% err=%s%% in_ci=%s\n' \
        "$b" "$truth" "$est" "$lo" "$hi" "$windows" "$cover" "$err" "$in_ci" | tee -a "$report"

    if [[ "$dsum" != "$ssum" ]]; then
        echo "FAIL: $b sampled memory checksum $ssum != detailed $dsum" | tee -a "$report" >&2
        fail=1
    fi
    if [[ " $bracket " == *" $b "* && "$in_ci" != yes ]]; then
        echo "FAIL: $b detailed truth $truth outside sampled CI [$lo, $hi]" | tee -a "$report" >&2
        fail=1
    fi
    if awk -v e="$err" 'BEGIN{exit !(e > 35 || e < -35)}'; then
        echo "FAIL: $b estimate error ${err}% exceeds the 35% tripwire" | tee -a "$report" >&2
        fail=1
    fi
done

if [[ "$fail" != 0 ]]; then
    echo "FAIL: sampling smoke found violations (see $report)" >&2
    exit 1
fi
echo "PASS: sampled sweep architecturally exact; estimates within contract ($report)"
