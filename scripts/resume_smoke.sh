#!/usr/bin/env bash
# Resume smoke test: kill an experiment suite mid-run, resume it from the
# results ledger, and assert the resumed tables are bit-identical to an
# uninterrupted run. Exercises SIGINT handling, ledger journaling, torn-tail
# recovery, and -resume prefill end to end.
set -euo pipefail

exp=${1:-fig10}
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

go build -o "$work/experiments" ./cmd/experiments

# Reference: one clean uninterrupted run.
"$work/experiments" -run "$exp" -format csv > "$work/ref.csv"

# Interrupted run: journal to a ledger, SIGINT partway through.
"$work/experiments" -run "$exp" -format csv -ledger "$work/ledger.jsonl" \
    > "$work/partial.csv" 2> "$work/partial.err" &
pid=$!
sleep 2
kill -INT "$pid" 2>/dev/null || true
rc=0
wait "$pid" || rc=$?
echo "interrupted run exited $rc with $(grep -c '"key"' "$work/ledger.jsonl" || true) journaled cells"

# Resume from the ledger and compare against the clean run.
"$work/experiments" -run "$exp" -format csv -ledger "$work/ledger.jsonl" -resume \
    > "$work/resumed.csv"

if ! cmp -s "$work/ref.csv" "$work/resumed.csv"; then
    echo "FAIL: resumed tables differ from the uninterrupted run" >&2
    diff "$work/ref.csv" "$work/resumed.csv" >&2 || true
    exit 1
fi
echo "PASS: resumed tables are bit-identical to the uninterrupted run"
