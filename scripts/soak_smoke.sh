#!/usr/bin/env bash
# Workload-synthesis soak smoke: a bounded coverage-guided run of the
# generator through the harness. Asserts (1) the loop completes with zero
# differential mismatches, (2) the printed coverage counter is monotonically
# non-decreasing, (3) the final coverage grew past the first step (the
# search is actually discovering behavior, not idling), and (4) coverage-
# adding genomes were archived to the corpus directory. On a mismatch the
# harness quarantines the cell, the loop exits nonzero, and the failing
# genome's canonical line lands in the corpus directory (failing-*.wgen) —
# upload that directory as a CI artifact to reproduce with
# `stasim -wgen-genome "$(cat failing-*.wgen)"`.
#
# Usage: scripts/soak_smoke.sh [out-dir] [count]
set -euo pipefail

out=${1:-$(mktemp -d)}
count=${2:-150}
mkdir -p "$out"
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

go build -o "$work/experiments" ./cmd/experiments

# The count bounds the run (~150 programs comfortably fits a 60s budget);
# -timeout additionally bounds any single simulation.
"$work/experiments" -run wgen -wgen-seed 7 -wgen-count "$count" \
    -wgen-corpus "$out/corpus" -timeout 60s \
    | tee "$out/soak.log"

# Coverage is a union, so the printed counter must never decrease.
awk '
  $3 == "cov" {
    if ($4 + 0 < prev) { print "coverage shrank: " $0; exit 1 }
    prev = $4 + 0; n++
  }
  END {
    if (n == 0) { print "no wgen step lines in log"; exit 1 }
    print "steps " n ", final coverage " prev
  }
' "$out/soak.log"

# The search must discover behavior beyond its first program.
first=$(awk '$3 == "cov" { print $4 + 0; exit }' "$out/soak.log")
final=$(awk '$3 == "cov" { v = $4 + 0 } END { print v }' "$out/soak.log")
if [ "$final" -le "$first" ]; then
    echo "FAIL: coverage never grew past the first step ($first -> $final)" >&2
    exit 1
fi

# Coverage-adding genomes were archived, and every one is a valid genome
# whose filename matches its content hash (spot-checked by replaying one).
ls "$out/corpus"/g*.wgen > /dev/null
if ls "$out/corpus"/failing-*.wgen > /dev/null 2>&1; then
    echo "FAIL: soak reported success but a failing genome was archived" >&2
    exit 1
fi
go build -o "$work/stasim" ./cmd/stasim
sample=$(ls "$out/corpus"/g*.wgen | head -1)
"$work/stasim" -wgen-genome "$sample" -config wth-wp-wec | grep -q 'memory checksum'

echo "PASS: $count-program soak, coverage monotone $first -> $final, $(ls "$out/corpus"/g*.wgen | wc -l) genomes archived"
echo "artifacts in $out"
