#!/usr/bin/env bash
# Fleet smoke test: run a figure sweep through the distributed coordinator/
# worker fleet while killing things, and assert the surviving output is
# bit-identical to a pure in-process run. Four acts:
#
#   1. Reference: one clean in-process run with a ledger and an archive.
#   2. Fleet under fire: a coordinator on a fixed port with three workers
#      (two `experiments -fleet-connect`, one `stasim -fleet-connect`).
#      One worker is SIGKILLed mid-sweep (its leases must expire and the
#      cells reassign), then the coordinator itself is SIGKILLed and
#      resumed from its ledger journal. Final CSV must be byte-identical
#      to the reference, the ledgers canonically equal (last-wins by memo
#      key), and the archives equal modulo provenance.
#   3. Archive fast path: a coordinator pointed at the reference archive
#      with NO workers must answer the whole sweep from content-addressed
#      manifests — before its generous local-fallback timer could fire.
#   4. Network chaos soak: two workers with seeded drop/delay/dup/trunc/
#      self-kill fault injection; the sweep must still converge to the
#      byte-identical CSV (at-least-once delivery made idempotent).
#
# Usage: scripts/fleet_smoke.sh [out-dir]   (artifacts land in out-dir)
set -euo pipefail

out=${1:-$(mktemp -d)}
mkdir -p "$out"
work=$(mktemp -d)
exp=fig10
port=9381

pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/experiments" ./cmd/experiments
go build -o "$work/stasim" ./cmd/stasim

# --- Act 1: in-process reference ------------------------------------------
"$work/experiments" -run "$exp" -format csv \
    -ledger "$out/ref-ledger.jsonl" -archive "$out/ref-runs" > "$out/ref.csv"
echo "reference: $(grep -c '"key"' "$out/ref-ledger.jsonl") cells journaled"

# --- Act 2: fleet sweep with a worker kill and a coordinator kill ---------
start_worker() { # start_worker <binary> <name> -> appends pid to pids
    "$work/$1" -fleet-connect "http://127.0.0.1:$port" -fleet-name "$2" \
        2>> "$out/workers.err" &
    pids+=($!)
}
start_worker experiments w1
start_worker experiments w2
start_worker stasim w3

"$work/experiments" -run "$exp" -format csv -fleet-listen "127.0.0.1:$port" \
    -fleet-lease 1s -ledger "$out/fleet-ledger.jsonl" -archive "$out/fleet-runs" \
    > "$out/fleet.csv" 2> "$out/coord.err" &
coord=$!

# SIGKILL one worker mid-sweep: its leases must expire and reassign.
sleep 1
kill -KILL "${pids[0]}" 2>/dev/null || true
echo "killed worker w1 (pid ${pids[0]}) mid-sweep"

# Then SIGKILL the coordinator itself: the ledger journal is the only
# survivor. Workers keep retrying against the dead port.
sleep 1.5
kill -KILL "$coord" 2>/dev/null || true
wait "$coord" 2>/dev/null || true
done_cells=$(grep -c '"key"' "$out/fleet-ledger.jsonl" || true)
echo "killed coordinator with $done_cells cells journaled"

# Resume from the journal on the same port; the surviving workers rejoin
# as fresh incarnations and finish the sweep.
timeout 120 "$work/experiments" -run "$exp" -format csv \
    -fleet-listen "127.0.0.1:$port" -fleet-lease 1s \
    -ledger "$out/fleet-ledger.jsonl" -resume -archive "$out/fleet-runs" \
    > "$out/fleet.csv" 2>> "$out/coord.err"

if ! cmp -s "$out/ref.csv" "$out/fleet.csv"; then
    echo "FAIL: fleet tables differ from the in-process run" >&2
    diff "$out/ref.csv" "$out/fleet.csv" >&2 || true
    exit 1
fi
echo "PASS: fleet tables are byte-identical to the in-process run"

# Ledgers: entry ORDER differs (cells finish in fleet-arrival order, and a
# reassigned cell may be journaled twice), but the last-wins key->result
# map must be identical.
python3 - "$out/ref-ledger.jsonl" "$out/fleet-ledger.jsonl" <<'EOF'
import json, sys
def canon(path):
    cells = {}
    with open(path) as f:
        for i, line in enumerate(f):
            doc = json.loads(line)
            if i == 0:  # header
                doc.pop("v", None)
                hdr = doc
                continue
            cells[doc["key"]] = doc["result"]
    return hdr, cells
(h1, c1), (h2, c2) = canon(sys.argv[1]), canon(sys.argv[2])
assert h1 == h2, f"ledger headers differ: {h1} vs {h2}"
assert c1.keys() == c2.keys(), \
    f"ledger cell sets differ: {sorted(c1.keys() ^ c2.keys())}"
for k in c1:
    assert c1[k] == c2[k], f"ledger results differ for {k}"
print(f"PASS: ledgers canonically identical ({len(c1)} cells)")
EOF

# Archives: manifests must match modulo provenance (who simulated it,
# when, at what wall clock) — the architectural payload is the contract.
python3 - "$out/ref-runs" "$out/fleet-runs" <<'EOF'
import json, pathlib, sys
PROVENANCE = {"tool", "git_rev", "run_id", "wall_seconds", "generated",
              "workers", "seed", "artifacts"}
def canon(root):
    cells = {}
    for p in pathlib.Path(root).glob("*/*.json"):
        m = json.loads(p.read_text())
        for k in PROVENANCE:
            m.pop(k, None)
        cells[m["cell_key"]] = m
    return cells
a, b = canon(sys.argv[1]), canon(sys.argv[2])
assert a.keys() == b.keys(), \
    f"archive cell sets differ: {sorted(a.keys() ^ b.keys())}"
for k in a:
    assert a[k] == b[k], f"manifests differ for {k}:\n{a[k]}\n{b[k]}"
print(f"PASS: archives identical modulo provenance ({len(a)} manifests)")
EOF

# --- Act 3: archive fast path ---------------------------------------------
# No workers, a 60s fallback timer, a 30s budget: the only way to finish
# in time is answering every cell from the reference archive.
timeout 30 "$work/experiments" -run "$exp" -format csv \
    -fleet-listen "127.0.0.1:$((port + 1))" -fleet-fallback 60s \
    -archive "$out/ref-runs" > "$out/cached.csv" 2> "$out/cached-coord.err"
echo "archive answered $(grep -c 'answered from archive' "$out/cached-coord.err") cells"
if ! cmp -s "$out/ref.csv" "$out/cached.csv"; then
    echo "FAIL: archive-served tables differ from the in-process run" >&2
    diff "$out/ref.csv" "$out/cached.csv" >&2 || true
    exit 1
fi
echo "PASS: sweep answered entirely from the content-addressed archive"

# --- Act 4: seeded network chaos soak -------------------------------------
chaos_port=$((port + 2))
for name in c1 c2; do
    "$work/experiments" -fleet-connect "http://127.0.0.1:$chaos_port" \
        -fleet-name "$name" -fleet-chaos-seed 7 \
        -fleet-chaos-drop 0.10 -fleet-chaos-delay 0.10 \
        -fleet-chaos-dup 0.10 -fleet-chaos-trunc 0.10 \
        -fleet-chaos-kill 0.03 2>> "$out/workers.err" &
    pids+=($!)
done
timeout 300 "$work/experiments" -run "$exp" -format csv \
    -fleet-listen "127.0.0.1:$chaos_port" -fleet-lease 1s \
    > "$out/chaos.csv" 2> "$out/chaos-coord.err"
if ! cmp -s "$out/ref.csv" "$out/chaos.csv"; then
    echo "FAIL: tables under network chaos differ from the in-process run" >&2
    diff "$out/ref.csv" "$out/chaos.csv" >&2 || true
    exit 1
fi
echo "PASS: network-chaos sweep converged to the byte-identical tables"

echo "fleet smoke: all acts passed (artifacts in $out)"
