#!/usr/bin/env bash
# Cross-run analytics smoke test: archive a mini-sweep (three benchmarks
# under the original machine and two WEC sizes), then exercise every simql
# surface end to end — list, a self-comparison that must sit exactly at
# zero, a degraded-config comparison that must trip the regression exit
# code, the Pareto frontier, and the HTML dashboard (which must be fully
# self-contained: no external scripts, styles, or fonts).
#
# Usage: scripts/analytics_smoke.sh [artifact-dir]
# If an artifact directory is given, report.html is copied there for upload.
set -euo pipefail

artifacts=${1:-}
cd "$(dirname "$0")/.."
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

go build -o "$work/stasim" ./cmd/stasim
go build -o "$work/simql" ./cmd/simql
runs="$work/runs"

# Mini-sweep: 3 benchmarks x {orig, WEC-2, WEC-16} on the 8-TU machine.
# The WEC cells carry fill attribution so the dashboard's fill-class
# panel has data.
for b in mcf gzip vpr; do
    "$work/stasim" -bench "$b" -config orig -archive "$runs" > /dev/null
    "$work/stasim" -bench "$b" -config wth-wp-wec -side 2 -attrib -archive "$runs" > /dev/null
    "$work/stasim" -bench "$b" -config wth-wp-wec -side 16 -attrib -archive "$runs" > /dev/null
done

cells=$("$work/simql" list -root "$runs" | tail -n +2 | grep -c .)
if [[ "$cells" -ne 9 ]]; then
    echo "FAIL: archive holds $cells cells, want 9" >&2
    "$work/simql" list -root "$runs" >&2
    exit 1
fi

# Re-archiving an identical cell must be a no-op (content addressing).
"$work/stasim" -bench mcf -config orig -archive "$runs" > /dev/null
cells2=$("$work/simql" list -root "$runs" | tail -n +2 | grep -c .)
if [[ "$cells2" -ne 9 ]]; then
    echo "FAIL: re-archiving an identical run grew the archive to $cells2 cells" >&2
    exit 1
fi

# Self-comparison: the simulator is deterministic, so A vs A is exactly
# zero on every metric and must exit 0.
if ! "$work/simql" diff -root "$runs" "config=wth-wp-wec,side=16" "config=wth-wp-wec,side=16" > "$work/self.txt"; then
    echo "FAIL: self-comparison tripped the regression exit code" >&2
    cat "$work/self.txt" >&2
    exit 1
fi
grep -q '+0.00%' "$work/self.txt" || {
    echo "FAIL: self-comparison is not exactly zero:" >&2
    cat "$work/self.txt" >&2
    exit 1
}

# Degraded config: dropping from WEC-16 back to orig must flag a
# significant IPC regression and exit nonzero (positive delta = B better,
# so B=orig is the regression side).
if "$work/simql" diff -root "$runs" "config=wth-wp-wec,side=16" "config=orig" > "$work/regress.txt"; then
    echo "FAIL: WEC-16 -> orig did not trip the regression exit code" >&2
    cat "$work/regress.txt" >&2
    exit 1
fi
grep -q 'REGRESSED' "$work/regress.txt" || {
    echo "FAIL: nonzero exit without a REGRESSED verdict:" >&2
    cat "$work/regress.txt" >&2
    exit 1
}

# Pareto frontier over the three configurations.
"$work/simql" pareto -root "$runs" -base "config=orig" > "$work/pareto.txt"
grep -q 'frontier' "$work/pareto.txt" || {
    echo "FAIL: pareto output missing frontier markers:" >&2
    cat "$work/pareto.txt" >&2
    exit 1
}

# Dashboard: must render, carry the speedup and fill-class panels, and be
# fully self-contained (zero external references).
"$work/simql" report -root "$runs" -base "config=orig" -perf-history "" -o "$work/report.html"
for panel in chart-speedup chart-fillclass; do
    grep -q "$panel" "$work/report.html" || {
        echo "FAIL: report.html is missing $panel" >&2
        exit 1
    }
done
ext=$(grep -c 'src=\|href=' "$work/report.html" || true)
if [[ "$ext" -ne 0 ]]; then
    echo "FAIL: report.html carries $ext external references (src=/href=)" >&2
    grep -n 'src=\|href=' "$work/report.html" >&2
    exit 1
fi

if [[ -n "$artifacts" ]]; then
    mkdir -p "$artifacts"
    cp "$work/report.html" "$artifacts/report.html"
    cp "$work/self.txt" "$work/regress.txt" "$work/pareto.txt" "$artifacts/"
fi
echo "PASS: archive, diff (self + regression), pareto, and self-contained report all check out"
