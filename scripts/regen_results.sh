#!/usr/bin/env bash
# Regenerate results_all.txt — the checked-in raw output of
# `go run ./cmd/experiments -run all` that EXPERIMENTS.md quotes — and
# assert the simulator still reproduces it bit-for-bit, modulo the one
# nondeterministic part: the per-experiment wall-clock suffix
# ("(fig8 in 3.0s)" -> "(fig8)" after normalization).
#
# Usage:
#   scripts/regen_results.sh           # check: fail if tables drifted
#   scripts/regen_results.sh -update   # rewrite results_all.txt in place
set -euo pipefail

mode=check
if [[ "${1:-}" == "-update" || "${1:-}" == "--update" ]]; then
    mode=update
fi

cd "$(dirname "$0")/.."
committed=results_all.txt
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

go build -o "$work/experiments" ./cmd/experiments
"$work/experiments" -run all > "$work/fresh.txt"

# The timing suffix is the only field allowed to differ between runs.
normalize() { sed -E 's/^\((.+) in [0-9.]+s\)$/(\1)/' "$1"; }

if [[ "$mode" == "update" ]]; then
    cp "$work/fresh.txt" "$committed"
    echo "updated $committed ($(grep -c '' "$committed") lines)"
    exit 0
fi

if [[ ! -f "$committed" ]]; then
    echo "FAIL: $committed is missing — run scripts/regen_results.sh -update" >&2
    exit 1
fi

normalize "$committed" > "$work/committed.norm"
normalize "$work/fresh.txt" > "$work/fresh.norm"

if ! cmp -s "$work/committed.norm" "$work/fresh.norm"; then
    echo "FAIL: regenerated tables differ from the committed $committed" >&2
    echo "      (diff below; if the change is intended, run scripts/regen_results.sh -update)" >&2
    diff "$work/committed.norm" "$work/fresh.norm" >&2 || true
    exit 1
fi
echo "PASS: regenerated tables are bit-identical to $committed (modulo timing)"
