#!/usr/bin/env bash
# Telemetry smoke test: run a scaled-down sweep with the live introspection
# server attached, curl every endpoint while cells are in flight, assert
# the Prometheus exposition is well-formed, then force a failure and check
# the flight recorder dumped. Artifacts (span journal, flight dump, curled
# endpoint bodies) land in the directory given by $1 (default: a temp dir).
set -euo pipefail

out=${1:-$(mktemp -d)}
mkdir -p "$out"
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

go build -o "$work/experiments" ./cmd/experiments

addr=127.0.0.1:9180

# A sweep big enough to still be running when we curl (scale grows the
# workloads; fig12 is an 8-benchmark x 6-associativity sweep).
"$work/experiments" -run fig12 -scale 6 \
    -telemetry-addr "$addr" -telemetry-dir "$out" \
    2> "$out/suite.log" &
pid=$!

# Wait for the server to come up.
for i in $(seq 1 50); do
    curl -sf "http://$addr/healthz" > /dev/null 2>&1 && break
    sleep 0.2
done
curl -sf "http://$addr/healthz" | grep -qx ok

# Capture the live endpoints mid-run.
curl -sf "http://$addr/metrics" > "$out/metrics.prom"
curl -sf "http://$addr/runs"    > "$out/runs.json"

# Prometheus exposition well-formedness: every non-comment line is
# `name{labels} value`, and every sample's name has HELP and TYPE headers
# somewhere before it.
awk '
  /^# HELP / { help[$3] = 1; next }
  /^# TYPE / { if (!help[$3]) { print "TYPE before HELP: " $0; exit 1 }
               type[$3] = 1; next }
  /^$/ { next }
  {
    if ($0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+$/) {
      print "malformed sample: " $0; exit 1
    }
    name = $0; sub(/[{ ].*/, "", name)
    if (!help[name] || !type[name]) { print "unheaded sample: " $0; exit 1 }
  }
' "$out/metrics.prom"
grep -q '^sta_suite_info{run="' "$out/metrics.prom"
grep -q '^sta_suite_cells_done_total ' "$out/metrics.prom"

# /runs is JSON and names the same run as /metrics.
python3 - "$out" <<'EOF'
import json, re, sys
out = sys.argv[1]
doc = json.load(open(f"{out}/runs.json"))
run = re.search(r'sta_suite_info\{run="([^"]+)"\}', open(f"{out}/metrics.prom").read()).group(1)
assert doc["run"] == run, (doc["run"], run)
assert isinstance(doc["cells"], list)
EOF

wait "$pid"
echo "live sweep finished; $(wc -l < "$out/spans.jsonl") spans journaled"

# Span journal converts to a Perfetto trace.
"$work/experiments" -span-timeline "$out/spans.jsonl" > /dev/null
python3 -m json.tool "$out/spans.jsonl.trace.json" > /dev/null

# Forced failure: seeded chaos panics every cell; each must produce a
# flight-recorder dump next to the span journal.
if "$work/experiments" -run fig8 -workers 2 -chaos-seed 9 -chaos-panic 1 \
    -telemetry-dir "$out" 2>> "$out/suite.log"; then
    echo "FAIL: chaos suite unexpectedly succeeded" >&2
    exit 1
fi
ls "$out"/flight-*.json > /dev/null
for f in "$out"/flight-*.json; do
    python3 -m json.tool "$f" > /dev/null
done
grep -q 'flight=' "$out/suite.log"

echo "PASS: telemetry endpoints healthy, Prometheus output well-formed, flight recorder dumped"
echo "artifacts in $out"
